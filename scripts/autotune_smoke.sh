#!/usr/bin/env bash
# Closed-loop precision autotuning smoke test (DESIGN.md §15).
#
# Phase A — full-mode reference: four full-precision jobs of one scenario
# shape (distinct step counts) on a 2-worker fleet. Their state hashes are
# the bit-exact reference, and — because every executed result feeds the
# autotuner — they also warm the decision table's full-mode evidence.
#
# Phase B — learned demotion: auto-mode submissions of the same shape must
# walk the ladder down one shadow-verified rung at a time
# (full → mixed → min → half). Each demotion must be committed only after
# a cross-node bit-identical shadow run (dispatch_verify_total{match}),
# and an auto job at the frontier must render auto→half with a
# `$/experiment saved` summary line.
#
# Phase C — crash durability: SIGKILL the coordinator mid-life; a restart
# over the same journal must recover the learned table (GET /v1/autotune
# shows the committed rung immediately) and resolve a fresh auto point
# demoted without re-warming.
#
# Phase D — revert on numerical failure: workers restarted with an armed
# runner.nan fault; the next demoted run must escalate, and the escalation
# must revert the committed rung (reverts counter, floor in the table) so
# later auto points resolve above the refuted mode.
#
# Phase E — budgets bound the loop: an auto submission with budgets
# tighter than any measured fidelity must resolve to full and reproduce
# the Phase A reference state hash bit-for-bit from cache.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}

work=$(mktemp -d)
daemon_pid=""
worker1_pid=""
worker2_pid=""
cleanup() {
    [ -n "$worker1_pid" ] && kill -9 "$worker1_pid" 2>/dev/null || true
    [ -n "$worker2_pid" ] && kill -9 "$worker2_pid" 2>/dev/null || true
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

fetch() { curl -sf "$1" 2>/dev/null || wget -qO- "$1"; }

$GO build -o "$work/precisiond" ./cmd/precisiond
$GO build -o "$work/precision-worker" ./cmd/precision-worker
$GO build -o "$work/precision-client" ./cmd/precision-client

# start_daemon <logfile> <extra flags...>; sets $daemon_pid and $addr.
start_daemon() {
    local logf=$1; shift
    "$work/precisiond" -addr 127.0.0.1:0 "$@" >"$logf" 2>&1 &
    daemon_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$logf")
        [ -n "$addr" ] && break
        kill -0 "$daemon_pid" 2>/dev/null || { cat "$logf"; fail "daemon died on startup"; }
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$logf"; fail "daemon never announced its address"; }
}

start_worker() {
    local logf=$1; shift
    "$work/precision-worker" -coordinator "http://$addr" "$@" >"$logf" 2>&1 &
    local pid=$!
    for _ in $(seq 1 100); do
        grep -q '^registered as ' "$logf" && break
        kill -0 "$pid" 2>/dev/null || { cat "$logf"; fail "worker died on startup"; }
        sleep 0.1
    done
    grep -q '^registered as ' "$logf" || { cat "$logf"; fail "worker never registered"; }
    echo "$pid"
}

# metric <url> <name>: current value of an exposition line (empty = absent).
metric() {
    fetch "$1" | sed -n "s/^$2 //p" | head -n1
}

# One scenario shape throughout: only mode/steps/budgets vary, so the
# whole smoke warms exactly one autotune entry.
spec_json() { # <mode> <steps>
    printf '{"app":"clamr","mode":"%s","steps":%d,"nx":32,"ny":32,"max_level":1,"amr_interval":10,"line_cut_n":16}' "$1" "$2"
}

# submit <outfile> <mode> <steps> [client flags...]
submit() {
    local outf=$1 mode=$2 steps=$3; shift 3
    spec_json "$mode" "$steps" \
        | "$work/precision-client" -addr "http://$addr" -spec - -retry 30 "$@" \
        >"$outf" 2>"$outf.err" \
        || { cat "$outf.err" "$outf"; fail "submission $mode/steps=$steps failed"; }
}

# committed/floor/ref_steps of the (single) learned table entry.
table_field() { # <field> — string-valued
    fetch "http://$addr/v1/autotune" | grep -o "\"$1\":\"[a-z]*\"" | head -n1 | cut -d'"' -f4
}
table_ref_steps() {
    fetch "http://$addr/v1/autotune" | grep -o '"ref_steps":[0-9]*' | head -n1 | cut -d: -f2
}

# wait_committed <mode> <tries>: poll until the table commits the rung.
wait_committed() {
    local want=$1 tries=$2 got=""
    for _ in $(seq 1 "$tries"); do
        got=$(table_field committed || true)
        [ "$got" = "$want" ] && return 0
        sleep 0.5
    done
    fetch "http://$addr/v1/autotune" >&2 || true
    fail "table never committed $want (stuck at '${got:-absent}')"
}

# ---------- Phase A: full-mode reference, table warm-up -------------------

echo "== phase A: full-mode reference on a 2-worker fleet"
start_daemon "$work/daemon.log" -workers 0 -cache "$work/cache" \
    -journal "$work/journal.ndjson" -lease-ttl 3s -autotune-warm 2
worker1_pid=$(start_worker "$work/worker1.log" -name tune-a -slots 2 -arch Haswell)
worker2_pid=$(start_worker "$work/worker2.log" -name tune-b -slots 2 -arch Haswell)

for steps in 40 50 60 70; do
    submit "$work/ref_$steps.out" full "$steps"
    grep -q 'cached=false' "$work/ref_$steps.out" \
        || { cat "$work/ref_$steps.out"; fail "reference steps=$steps did not execute"; }
done
ref_state() { grep -o 'state=[0-9a-f]*' "$work/ref_$1.out" | head -n1 | cut -d= -f2; }
[ -n "$(ref_state 40)" ] || fail "reference run printed no state hash"
echo "   4 full-mode references recorded (state $(ref_state 40) @40 ...)"

# ---------- Phase B: shadow-verified demotion down the ladder -------------

echo "== phase B: auto sweeps demote full -> mixed -> min -> half"
# The full runs above already warmed the table; the first probe (mixed)
# fires on its own. Each subsequent rung needs fresh executions at the new
# frontier, so every pass submits unseen step counts.
wait_committed mixed 120
submit "$work/auto_m1.out" auto 41
submit "$work/auto_m2.out" auto 51
grep -q 'auto→mixed' "$work/auto_m1.out" "$work/auto_m2.out" \
    || { cat "$work/auto_m1.out" "$work/auto_m2.out"; fail "auto did not resolve to the committed mixed rung"; }
wait_committed min 120
submit "$work/auto_n1.out" auto 42
submit "$work/auto_n2.out" auto 52
wait_committed half 120
submit "$work/auto_h1.out" auto 43
grep -q 'auto→half' "$work/auto_h1.out" \
    || { cat "$work/auto_h1.out"; fail "auto did not resolve to the committed half rung"; }
grep -q '/experiment saved' "$work/auto_h1.out" \
    || { cat "$work/auto_h1.out"; fail "demoted run printed no \$/experiment-saved summary"; }

demotions=$(metric "http://$addr/metrics" precisiond_autotune_demotions_total)
[ "${demotions:-0}" -ge 3 ] || fail "demotions counter = ${demotions:-absent}, want >= 3"
verified=$(metric "http://$addr/metrics" 'dispatch_verify_total{outcome="match"}')
[ "${verified:-0}" -ge 3 ] || fail "bit-identical shadow verifications = ${verified:-absent}, want >= 3"
fetch "http://$addr/v1/autotune" | grep -q '"verified":true' \
    || fail "learned table reports no shadow-verified evidence"
echo "   table committed half after $demotions shadow-verified demotions ($verified cross-node matches)"

# ---------- Phase C: SIGKILL'd coordinator recovers the table -------------

echo "== phase C: SIGKILL coordinator, recover learned table from journal"
kill -9 "$worker1_pid" "$worker2_pid" "$daemon_pid" 2>/dev/null || true
wait "$worker1_pid" "$worker2_pid" "$daemon_pid" 2>/dev/null || true
worker1_pid=""; worker2_pid=""; daemon_pid=""

start_daemon "$work/daemon2.log" -workers 0 -cache "$work/cache" \
    -journal "$work/journal.ndjson" -lease-ttl 3s -autotune-warm 2
worker1_pid=$(start_worker "$work/worker1b.log" -name tune-a -slots 2 -arch Haswell)
worker2_pid=$(start_worker "$work/worker2b.log" -name tune-b -slots 2 -arch Haswell)

committed=$(table_field committed || true)
[ "$committed" = "half" ] \
    || fail "recovered table committed '${committed:-absent}', want half straight from the journal"
submit "$work/auto_rec.out" auto 80
grep -q 'auto→half' "$work/auto_rec.out" \
    || { cat "$work/auto_rec.out"; fail "recovered coordinator did not resolve demoted immediately"; }
echo "   restart resolved auto→half with no re-warm-up"

# ---------- Phase D: injected NaN forces revert + re-escalation -----------

echo "== phase D: runner.nan at the demoted rung reverts the table"
kill -9 "$worker1_pid" "$worker2_pid" 2>/dev/null || true
wait "$worker1_pid" "$worker2_pid" 2>/dev/null || true
worker1_pid=$(start_worker "$work/worker1c.log" -name tune-a -slots 2 -arch Haswell \
    -faults 'runner.nan=n:1')
worker2_pid=$(start_worker "$work/worker2c.log" -name tune-b -slots 2 -arch Haswell \
    -faults 'runner.nan=n:1')

submit "$work/auto_nan.out" auto 81   # resolves half, hits the NaN, escalates
reverts=""
for _ in $(seq 1 50); do
    reverts=$(metric "http://$addr/metrics" precisiond_autotune_reverts_total)
    [ "${reverts:-0}" -ge 1 ] && break
    sleep 0.2
done
[ "${reverts:-0}" -ge 1 ] || fail "reverts counter = ${reverts:-absent} after injected NaN, want >= 1"
floor=$(table_field floor || true)
[ -n "$floor" ] || fail "escalation left no floor in the learned table"
submit "$work/auto_post.out" auto 82
grep -q 'auto→half' "$work/auto_post.out" \
    && { cat "$work/auto_post.out"; fail "table still resolves the refuted half rung"; }
grep -Eq 'auto→(min|mixed|full)' "$work/auto_post.out" \
    || { cat "$work/auto_post.out"; fail "post-revert auto resolution missing"; }
echo "   NaN reverted the demotion (floor=$floor, reverts=$reverts)"

# ---------- Phase E: tight budgets resolve full, bit-match reference ------

echo "== phase E: budgets tighter than any evidence resolve to full"
ref_steps=$(table_ref_steps)
case "$ref_steps" in 40|50|60|70) ;; *) fail "table ref_steps=$ref_steps not in the reference sweep";; esac
submit "$work/auto_tight.out" full "$ref_steps" -max-mass-error 1e-15 -max-linecut-linf 1e-15
grep -q 'auto→full' "$work/auto_tight.out" \
    || { cat "$work/auto_tight.out"; fail "tight budgets did not resolve to full"; }
tight_state=$(grep -o 'state=[0-9a-f]*' "$work/auto_tight.out" | head -n1 | cut -d= -f2)
[ "$tight_state" = "$(ref_state "$ref_steps")" ] \
    || fail "budgeted full run state $tight_state != reference $(ref_state "$ref_steps") at steps=$ref_steps"
grep -q 'cached=true' "$work/auto_tight.out" \
    || { cat "$work/auto_tight.out"; fail "auto-resolved full did not dedup onto the cached reference"; }
echo "   tight-budget auto bit-matched the full-mode reference from cache"

echo "autotune-smoke OK (demotions=$demotions verified=$verified reverts=$reverts floor=$floor)"
