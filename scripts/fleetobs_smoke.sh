#!/usr/bin/env bash
# Fleet observability smoke test (DESIGN.md §14).
#
# Phase A — reference digest, observability off: run a single-shape campaign
# against a plain single-node daemon with energy accounting disabled
# (-arch '') and record its result_digest. The run must print no energy
# line — nothing to account with, nothing invented.
#
# Phase B — fully-instrumented fleet: the same campaign as one POST
# /v1/campaigns against a fleet-only coordinator with -trace-export armed
# and two workers serving /metrics on -read-addr, one Haswell and one
# Tesla P100. The sweep must
#   * produce a bit-identical result_digest to the uninstrumented
#     reference (tracing, federation and pricing ride outside the result
#     hash),
#   * stitch >=1 worker-side solve span (tagged node=worker) into every
#     job's GET /v1/jobs/{id}/trace,
#   * dump a Chrome trace_event file per completed job into the
#     -trace-export directory,
#   * converge GET /metrics/fleet to the exact sum of the two workers'
#     own /metrics scrapes, and
#   * price the campaign: a client energy line covering all jobs,
#     nonzero precisiond_job_joules_total, and per-worker arch +
#     joules_total in GET /v1/workers.
#
# Phase C — cache stability: resubmit the identical campaign; every job
# must dedup against the cache and the energy line (joules, dollars,
# $/experiment) must come back bit-for-bit identical — modeled energy
# derives from deterministic counters, never from wall time.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}

work=$(mktemp -d)
daemon_pid=""
worker1_pid=""
worker2_pid=""
cleanup() {
    [ -n "$worker1_pid" ] && kill -9 "$worker1_pid" 2>/dev/null || true
    [ -n "$worker2_pid" ] && kill -9 "$worker2_pid" 2>/dev/null || true
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

fetch() { curl -sf "$1" 2>/dev/null || wget -qO- "$1"; }

$GO build -o "$work/precisiond" ./cmd/precisiond
$GO build -o "$work/precision-worker" ./cmd/precision-worker
$GO build -o "$work/precision-client" ./cmd/precision-client

# start_daemon <logfile> <extra flags...>; sets $daemon_pid and $addr.
start_daemon() {
    local logf=$1; shift
    "$work/precisiond" -addr 127.0.0.1:0 "$@" >"$logf" 2>&1 &
    daemon_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$logf")
        [ -n "$addr" ] && break
        kill -0 "$daemon_pid" 2>/dev/null || { cat "$logf"; fail "daemon died on startup"; }
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$logf"; fail "daemon never announced its address"; }
}

start_worker() {
    local logf=$1; shift
    "$work/precision-worker" -coordinator "http://$addr" "$@" >"$logf" 2>&1 &
    local pid=$!
    for _ in $(seq 1 100); do
        grep -q '^registered as ' "$logf" && break
        kill -0 "$pid" 2>/dev/null || { cat "$logf"; fail "worker died on startup"; }
        sleep 0.1
    done
    grep -q '^registered as ' "$logf" || { cat "$logf"; fail "worker never registered"; }
    echo "$pid"
}

# metric <url> <name>: current value of an exposition line (empty = absent).
metric() {
    fetch "$1" | sed -n "s/^$2 //p" | head -n1
}

# Eight jobs of one shape: enough to spread across both workers' slots and
# to exercise per-job trace stitching without dragging the smoke out.
cat >"$work/camp.json" <<'EOF'
{
  "tenant": "fleetobs-smoke",
  "generator": {
    "kind": "grid",
    "base": {"app": "clamr", "mode": "full", "steps": 400, "nx": 64, "ny": 32,
             "max_level": 1, "amr_interval": 10, "line_cut_n": 16},
    "axes": [
      {"field": "nx", "values": [32, 40, 48, 56, 64, 72, 80, 88]}
    ]
  }
}
EOF

# ---------- Phase A: uninstrumented single-node reference -----------------

echo "== phase A: single-node reference, energy accounting off"
start_daemon "$work/ref.log" -cache "$work/ref-cache" -workers 2 -arch ''
"$work/precision-client" -addr "http://$addr" -campaign "$work/camp.json" -retry 10 \
    >"$work/ref.out" 2>"$work/ref.err" || { cat "$work/ref.err"; fail "reference campaign failed"; }
ref_digest=$(sed -n 's/^result_digest=//p' "$work/ref.out")
[ -n "$ref_digest" ] || fail "reference run printed no result_digest"
grep -q 'total=8 completed=8' "$work/ref.out" || { cat "$work/ref.out"; fail "reference campaign incomplete"; }
grep -q '^energy:' "$work/ref.out" \
    && fail "energy line printed with accounting disabled (-arch '')"
kill "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "   reference digest $ref_digest"

# ---------- Phase B: instrumented 2-worker fleet --------------------------

echo "== phase B: fleet coordinator + Haswell worker + Tesla P100 worker"
start_daemon "$work/fleet.log" -workers 0 -cache "$work/fleet-cache" \
    -lease-ttl 3s -trace-export "$work/traces"
worker1_pid=$(start_worker "$work/worker1.log" -name obs-haswell -slots 2 \
    -read-addr 127.0.0.1:0 -arch Haswell)
worker2_pid=$(start_worker "$work/worker2.log" -name obs-p100 -slots 2 \
    -read-addr 127.0.0.1:0 -arch 'Tesla P100')

"$work/precision-client" -addr "http://$addr" -campaign "$work/camp.json" -retry 30 \
    >"$work/fleet.out" 2>"$work/fleet.err" \
    || { cat "$work/fleet.err"; cat "$work/fleet.out"; fail "fleet campaign failed"; }
grep -q 'total=8 completed=8' "$work/fleet.out" || { cat "$work/fleet.out"; fail "fleet campaign incomplete"; }

# Bit-identity: the fully-instrumented fleet must reproduce the
# uninstrumented reference exactly — observability never touches results.
fleet_digest=$(sed -n 's/^result_digest=//p' "$work/fleet.out")
[ "$fleet_digest" = "$ref_digest" ] \
    || fail "instrumented fleet digest $fleet_digest != reference $ref_digest"
echo "   fleet digest matches the uninstrumented reference"

# Every job's stitched trace carries the worker-side subtree: a solve span,
# tagged node=worker by the graft.
job_ids=$(fetch "http://$addr/v1/jobs" | grep -o '"id":"job-[0-9]*"' | cut -d'"' -f4 | sort -u)
njobs=$(echo "$job_ids" | grep -c . || true)
[ "$njobs" = 8 ] || fail "expected 8 jobs in GET /v1/jobs, got $njobs"
for id in $job_ids; do
    trace=$(fetch "http://$addr/v1/jobs/$id/trace")
    echo "$trace" | grep -q '"name":"solve"' \
        || fail "job $id trace has no worker-side solve span"
    echo "$trace" | grep -q '"key":"node","value":"worker"' \
        || fail "job $id trace has no node=worker span"
done
echo "   all 8 job traces carry a stitched node=worker solve span"

# -trace-export dumped a Chrome trace_event timeline per completed job.
ndumps=$(ls "$work/traces" 2>/dev/null | grep -c . || true)
[ "$ndumps" -ge 8 ] || fail "trace-export wrote $ndumps files, want >=8"
grep -q '"traceEvents"' "$work/traces"/* || fail "trace-export files are not Chrome trace_event JSON"
grep -q '"solve"' "$work/traces"/* || fail "trace-export dumps carry no solve span"

# Federation: GET /metrics/fleet must converge (on the scrape cadence,
# lease-ttl/3 = 1s here) to the exact sum of both workers' own /metrics.
# Lease counts are quiescent once the campaign is done, so the sum is
# stable; poll until the coordinator's last scrape reflects it.
read_addrs=$(fetch "http://$addr/v1/workers" | grep -o '"read_addr":"[^"]*"' | cut -d'"' -f4)
naddrs=$(echo "$read_addrs" | grep -c . || true)
[ "$naddrs" = 2 ] || fail "expected 2 worker read addrs, got $naddrs"
lease_sum=0
for ra in $read_addrs; do
    v=$(metric "$ra/metrics" 'precision_worker_leases_total{outcome="ok"}')
    [ -n "$v" ] || fail "worker at $ra exports no ok-lease counter"
    lease_sum=$((lease_sum + v))
done
[ "$lease_sum" -ge 8 ] || fail "workers completed $lease_sum leases, want >=8"
fleet_leases=""
for _ in $(seq 1 100); do
    fleet_leases=$(metric "http://$addr/metrics/fleet" 'precision_worker_leases_total{outcome="ok"}')
    [ "$fleet_leases" = "$lease_sum" ] && break
    sleep 0.2
done
[ "$fleet_leases" = "$lease_sum" ] \
    || fail "/metrics/fleet ok-leases ${fleet_leases:-absent} != per-worker sum $lease_sum"
echo "   /metrics/fleet matches the per-worker scrape sum ($lease_sum ok leases)"

# Pricing: the client printed one energy line covering all 8 jobs, the
# coordinator counts nonzero joules for the sweep's app/mode, and the fleet
# view attributes arch + accumulated joules per worker.
energy_line=$(grep '^energy: ' "$work/fleet.out" || true)
[ -n "$energy_line" ] || { cat "$work/fleet.out"; fail "no energy line in instrumented campaign output"; }
echo "$energy_line" | grep -q '^energy: jobs=8 ' || fail "energy line does not cover all 8 jobs: $energy_line"
joules=$(metric "http://$addr/metrics" 'precisiond_job_joules_total{app="clamr",mode="full"}')
[ -n "$joules" ] || fail "coordinator exports no precisiond_job_joules_total for the sweep"
awk -v j="$joules" 'BEGIN{ exit !(j > 0) }' || fail "precisiond_job_joules_total = $joules, want > 0"
workers_view=$(fetch "http://$addr/v1/workers")
echo "$workers_view" | grep -q '"arch":"Haswell"' || fail "fleet view lists no Haswell worker"
echo "$workers_view" | grep -q '"arch":"Tesla P100"' || fail "fleet view lists no Tesla P100 worker"
wj_sum=$(echo "$workers_view" | grep -o '"joules_total":[0-9.eE+-]*' | cut -d: -f2 \
    | awk '{s += $1} END {printf "%g", s}')
awk -v s="$wj_sum" 'BEGIN{ exit !(s > 0) }' \
    || fail "per-worker joules_total sum to ${wj_sum:-0}, want > 0"
echo "   $energy_line"

# ---------- Phase C: modeled energy is cache-stable -----------------------

echo "== phase C: resubmit from cache, energy must be bit-identical"
"$work/precision-client" -addr "http://$addr" -campaign "$work/camp.json" -retry 10 \
    >"$work/rerun.out" 2>"$work/rerun.err" \
    || { cat "$work/rerun.err"; fail "cached resubmission failed"; }
grep -q 'total=8 completed=8 deduped=8' "$work/rerun.out" \
    || { cat "$work/rerun.out"; fail "resubmission did not dedup every job from cache"; }
rerun_digest=$(sed -n 's/^result_digest=//p' "$work/rerun.out")
[ "$rerun_digest" = "$ref_digest" ] || fail "cached rerun digest $rerun_digest != reference $ref_digest"
rerun_energy=$(grep '^energy: ' "$work/rerun.out" || true)
[ "$rerun_energy" = "$energy_line" ] \
    || fail "cached rerun energy drifted: '$rerun_energy' != '$energy_line'"
echo "   cached rerun reproduced the energy line bit-for-bit"

echo "fleetobs-smoke OK (digest $ref_digest; $energy_line)"
