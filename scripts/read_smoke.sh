#!/usr/bin/env bash
# Tiered read-path smoke test (DESIGN.md §11).
#
# Run the quick paper sweep twice against a fleet-only coordinator with two
# replica-serving workers, and assert the second pass never touches the
# coordinator's disk:
#   * the daemon runs with a deliberately tiny -hot-bytes so its hot tier
#     admits nothing — the second pass's cache probes must be served by the
#     fleet replica tier (hash -> worker read index, digest-verified),
#   * the client replays with -replay-cache, so every second-pass result
#     body is an If-None-Match revalidation: 100% 304s, zero bytes moved,
#   * disk_hits and puts must not grow during the second pass (nothing was
#     re-read from disk, nothing was recomputed), and
#   * the second pass's payload bytes are bit-identical to the first's.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}

work=$(mktemp -d)
daemon_pid=""
worker1_pid=""
worker2_pid=""
cleanup() {
    [ -n "$worker1_pid" ] && kill -9 "$worker1_pid" 2>/dev/null || true
    [ -n "$worker2_pid" ] && kill -9 "$worker2_pid" 2>/dev/null || true
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

fetch() { curl -sf "$1" 2>/dev/null || wget -qO- "$1"; }

$GO build -o "$work/precisiond" ./cmd/precisiond
$GO build -o "$work/precision-worker" ./cmd/precision-worker
$GO build -o "$work/precision-client" ./cmd/precision-client

start_daemon() {
    local logf=$1; shift
    "$work/precisiond" -addr 127.0.0.1:0 "$@" >"$logf" 2>&1 &
    daemon_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$logf")
        [ -n "$addr" ] && break
        kill -0 "$daemon_pid" 2>/dev/null || { cat "$logf"; fail "daemon died on startup"; }
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$logf"; fail "daemon never announced its address"; }
}

start_worker() {
    local logf=$1; shift
    "$work/precision-worker" -coordinator "http://$addr" "$@" >"$logf" 2>&1 &
    local pid=$!
    for _ in $(seq 1 100); do
        grep -q '^registered as ' "$logf" && break
        kill -0 "$pid" 2>/dev/null || { cat "$logf"; fail "worker died on startup"; }
        sleep 0.1
    done
    grep -q '^registered as ' "$logf" || { cat "$logf"; fail "worker never registered"; }
    echo "$pid"
}

# cstat <key>: integer field from the current /v1/cache/stats snapshot.
cstat() {
    fetch "http://$addr/v1/cache/stats" | grep -o "\"$1\":[0-9]*" | head -n1 | cut -d: -f2
}

# metric <name>: current value from /metrics (empty when absent).
metric() {
    fetch "http://$addr/metrics" | sed -n "s/^$1 //p" | head -n1
}

echo "== fleet-only coordinator (tiny hot tier) + 2 replica-serving workers"
start_daemon "$work/daemon.log" -workers 0 -cache "$work/cache" \
    -hot-bytes 512 -lease-ttl 3s
worker1_pid=$(start_worker "$work/worker1.log" -slots 2 -read-addr 127.0.0.1:0)
worker2_pid=$(start_worker "$work/worker2.log" -slots 2 -read-addr 127.0.0.1:0)

echo "== pass 1: cold sweep (computes everything, workers pull replicas)"
"$work/precision-client" -addr "http://$addr" -sweep quick -retry 10 -json \
    -replay-cache "$work/replay" >"$work/pass1.json" 2>"$work/pass1.err" \
    || { cat "$work/pass1.err"; fail "cold sweep failed"; }
total=$(grep -c . "$work/pass1.json")
[ "$total" -ge 2 ] || fail "cold sweep produced only $total results"

# Before pass 2, wait for the fleet read index to cover the whole sweep:
# workers report held hashes on heartbeats, so coverage lags completion by
# a beat or two.
covered=""
for _ in $(seq 1 200); do
    replicas=$(fetch "http://$addr/v1/workers" | grep -o '"replica_hashes":[0-9]*' | cut -d: -f2)
    if [ -n "$replicas" ] && [ "$replicas" -ge "$total" ]; then covered=yes; break; fi
    sleep 0.1
done
[ -n "$covered" ] || fail "replica index never covered the sweep (${replicas:-0}/$total hashes)"
echo "   replica index covers $replicas/$total spec hashes"

disk1=$(cstat disk_hits); puts1=$(cstat puts)
hot1=$(cstat hot_hits); remote1=$(cstat remote_hits)

echo "== pass 2: warm replay (must not touch the coordinator's disk)"
"$work/precision-client" -addr "http://$addr" -sweep quick -retry 10 -json \
    -replay-cache "$work/replay" >"$work/pass2.json" 2>"$work/pass2.err" \
    || { cat "$work/pass2.err"; fail "warm sweep failed"; }

disk2=$(cstat disk_hits); puts2=$(cstat puts)
hot2=$(cstat hot_hits); remote2=$(cstat remote_hits)

# Bit-identity: the warm pass returned exactly the cold pass's bytes.
cmp -s "$work/pass1.json" "$work/pass2.json" \
    || fail "warm-pass payloads differ from the cold pass"

# Zero disk growth, zero recompute: the second pass lived entirely in the
# hot/replica/304 tiers.
[ "$disk2" -eq "$disk1" ] || fail "disk_hits grew on the warm pass: $disk1 -> $disk2"
[ "$puts2" -eq "$puts1" ] || fail "results were recomputed on the warm pass: puts $puts1 -> $puts2"

# Every warm-pass probe was served above the disk tier...
served=$(( (hot2 - hot1) + (remote2 - remote1) ))
[ "$served" -ge "$total" ] \
    || fail "only $served/$total warm probes served from hot/replica tiers"
# ...with the replica tier doing real work (the tiny hot tier admits nothing).
[ "$((remote2 - remote1))" -ge 1 ] || fail "no replica reads on the warm pass"

# And every result body was a revalidation: N/N 304s, zero bytes moved.
grep -q "replay-cache: $total/$total results revalidated (304)" "$work/pass2.err" \
    || { cat "$work/pass2.err"; fail "warm pass did not revalidate every result"; }
etag304=$(metric 'precisiond_result_reads_total{source="etag_304"}')
[ -n "$etag304" ] && [ "$etag304" -ge "$total" ] \
    || fail "etag_304 reads = ${etag304:-absent}, want >= $total"
remote_metric=$(metric 'precisiond_cache_events_total{event="remote_hit"}')

echo "read-smoke OK ($total results; warm pass: $((remote2 - remote1)) replica reads, $((hot2 - hot1)) hot hits, $etag304 etag-304s, disk_hits delta 0, remote_hit metric ${remote_metric:-0})"
