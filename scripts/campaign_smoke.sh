#!/usr/bin/env bash
# Campaign API smoke test (DESIGN.md §12).
#
# Phase A — reference digest: expand the smoke grid CLIENT-side with
# `precision-client -grid` against a plain single-node daemon. The printed
# result_digest (sha-256 over sorted "spec_hash state_hash" pairs) is the
# ground truth a server-side campaign must bit-match.
#
# Phase B — fleet campaign under chaos: submit the same spec file as ONE
# `POST /v1/campaigns` to a fleet-only coordinator (journal on, two
# workers). Mid-campaign, SIGKILL a worker (lease expiry must re-dispatch
# its jobs) and then SIGKILL the coordinator itself mid-expansion and
# restart it over the same journal/cache — the campaign must resume under
# its original ID and finish with the Phase A digest, zero failed jobs.
# While the campaign saturates the queue, an interactive POST /v1/jobs
# must still be admitted and complete (ReserveInteractive + WFQ).
#
# Phase C — warm resubmit: the identical campaign re-submitted to the
# surviving coordinator must complete with every job deduped from cache
# and the same digest.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}

work=$(mktemp -d)
daemon_pid=""
worker1_pid=""
worker2_pid=""
client_pid=""
cleanup() {
    [ -n "$client_pid" ] && kill "$client_pid" 2>/dev/null || true
    [ -n "$worker1_pid" ] && kill -9 "$worker1_pid" 2>/dev/null || true
    [ -n "$worker2_pid" ] && kill -9 "$worker2_pid" 2>/dev/null || true
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

fetch() { curl -sf "$1" 2>/dev/null || wget -qO- "$1"; }

$GO build -o "$work/precisiond" ./cmd/precisiond
$GO build -o "$work/precision-worker" ./cmd/precision-worker
$GO build -o "$work/precision-client" ./cmd/precision-client

# start_daemon <logfile> <extra flags...>; sets $daemon_pid and $addr.
start_daemon() {
    local logf=$1; shift
    "$work/precisiond" "$@" >"$logf" 2>&1 &
    daemon_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$logf")
        [ -n "$addr" ] && break
        kill -0 "$daemon_pid" 2>/dev/null || { cat "$logf"; fail "daemon died on startup"; }
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$logf"; fail "daemon never announced its address"; }
}

start_worker() {
    local logf=$1; shift
    "$work/precision-worker" -coordinator "http://$addr" "$@" >"$logf" 2>&1 &
    local pid=$!
    for _ in $(seq 1 100); do
        grep -q '^registered as ' "$logf" && break
        kill -0 "$pid" 2>/dev/null || { cat "$logf"; fail "worker died on startup"; }
        sleep 0.1
    done
    grep -q '^registered as ' "$logf" || { cat "$logf"; fail "worker never registered"; }
    echo "$pid"
}

# campaign_field <json> <key>: integer aggregate field from a campaign view.
jfield() { echo "$1" | grep -o "\"$2\":[0-9]*" | head -n1 | cut -d: -f2; }

# The smoke grid: 3 precision modes x 6 step counts = 18 jobs, sized so the
# campaign stays in flight long enough to be shot at.
cat >"$work/camp.json" <<'EOF'
{
  "tenant": "smoke",
  "generator": {
    "kind": "grid",
    "base": {"app": "clamr", "mode": "full", "steps": 400, "nx": 96, "ny": 48,
             "max_level": 1, "amr_interval": 10, "line_cut_n": 16},
    "axes": [
      {"field": "mode",  "values": ["min", "mixed", "full"]},
      {"field": "steps", "values": [400, 500, 600, 700, 800, 900]}
    ]
  }
}
EOF

# ---------- Phase A: client-side expansion = reference digest -------------

echo "== phase A: client-side grid expansion (single node) for the reference digest"
start_daemon "$work/ref.log" -addr 127.0.0.1:0 -cache "$work/ref-cache" -workers 2
"$work/precision-client" -addr "http://$addr" -grid "$work/camp.json" -retry 10 \
    >"$work/ref.out" 2>"$work/ref.err" || { cat "$work/ref.err"; fail "reference grid run failed"; }
ref_digest=$(sed -n 's/^result_digest=//p' "$work/ref.out")
[ -n "$ref_digest" ] || fail "reference run printed no result_digest"
grep -q 'total=18 completed=18' "$work/ref.out" || { cat "$work/ref.out"; fail "reference grid incomplete"; }
kill "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "   reference digest $ref_digest"

# ---------- Phase B: one POST /v1/campaigns vs a chaos-ridden fleet -------

echo "== phase B: fleet campaign (journal on, 2 workers)"
camp_flags=(-cache "$work/camp-cache" -journal "$work/camp.journal"
            -workers 0 -queue-depth 8 -campaign-slots 4 -lease-ttl 3s)
start_daemon "$work/camp1.log" -addr 127.0.0.1:0 "${camp_flags[@]}"
camp_addr=$addr
worker1_pid=$(start_worker "$work/worker1.log" -slots 2)
worker2_pid=$(start_worker "$work/worker2.log" -slots 2)

"$work/precision-client" -addr "http://$camp_addr" -campaign "$work/camp.json" -retry 40 \
    >"$work/camp.out" 2>"$work/camp.err" &
client_pid=$!

# Wait for the campaign to be visibly in flight, then SIGKILL worker 1:
# its leased jobs must be re-dispatched after lease expiry.
view=""
for _ in $(seq 1 400); do
    view=$(fetch "http://$camp_addr/v1/campaigns" || true)
    done_n=$(jfield "$view" completed); done_n=${done_n:-0}
    if [ "$done_n" -ge 1 ]; then break; fi
    sleep 0.05
done
[ "${done_n:-0}" -ge 1 ] || fail "campaign never completed a first job"
kill -9 "$worker1_pid"; worker1_pid=""
echo "   worker 1 SIGKILL'd after $done_n completions"

# While the campaign holds the queue, interactive POST /v1/jobs must still
# get through the reserve (and not time out behind the bulk flow).
echo '{"app": "clamr", "mode": "full", "steps": 12, "nx": 16, "ny": 16, "max_level": 1, "amr_interval": 5}' >"$work/inter.json"
start_ns=$(date +%s)
"$work/precision-client" -addr "http://$camp_addr" -spec "$work/inter.json" -retry 10 \
    >"$work/inter.out" 2>&1 || { cat "$work/inter.out"; fail "interactive job starved behind the campaign"; }
inter_secs=$(( $(date +%s) - start_ns ))
[ "$inter_secs" -le 60 ] || fail "interactive job took ${inter_secs}s behind the campaign"
echo "   interactive job completed in ${inter_secs}s mid-campaign"

# SIGKILL the coordinator mid-campaign (and the surviving worker with it),
# restart over the same journal/cache on the same address: the campaign
# must resume under its original ID.
camp_id=$(echo "$view" | grep -o '"id":"camp-[0-9]*"' | head -n1 | cut -d'"' -f4)
[ -n "$camp_id" ] || fail "no campaign id in view: $view"
status=$(fetch "http://$camp_addr/v1/campaigns/$camp_id" | grep -o '"status":"[a-z]*"' | head -n1 | cut -d'"' -f4)
kill -9 "$daemon_pid"; wait "$daemon_pid" 2>/dev/null || true; daemon_pid=""
kill -9 "$worker2_pid"; wait "$worker2_pid" 2>/dev/null || true; worker2_pid=""
echo "   coordinator SIGKILL'd (campaign $camp_id was $status)"
[ "$status" = running ] || fail "campaign already $status before the coordinator was killed; grow the grid"

start_daemon "$work/camp2.log" -addr "$camp_addr" "${camp_flags[@]}"
grep -q 'recovered campaigns from journal' "$work/camp2.log" \
    || { cat "$work/camp2.log"; fail "restarted coordinator recovered no campaigns"; }
worker1_pid=$(start_worker "$work/worker3.log" -slots 2)
worker2_pid=$(start_worker "$work/worker4.log" -slots 2)

recovered=$(fetch "http://$camp_addr/v1/campaigns/$camp_id") \
    || fail "campaign $camp_id lost across the restart"
echo "   campaign $camp_id resumed after restart"

# The submitting client rides out the restart on its retry loop and prints
# the final digest.
wait "$client_pid" || { cat "$work/camp.err"; cat "$work/camp.out"; fail "campaign client failed"; }
client_pid=""
camp_digest=$(sed -n 's/^result_digest=//p' "$work/camp.out")
grep -q "campaign $camp_id completed: total=18 completed=18" "$work/camp.out" \
    || { cat "$work/camp.out"; fail "campaign did not complete all 18 jobs"; }
grep -q 'failed=0' "$work/camp.out" || { cat "$work/camp.out"; fail "campaign lost jobs"; }
grep -q '^mass_error:' "$work/camp.out" || fail "final aggregates carry no mass-error quantiles"
grep -q '^line_cut_delta:' "$work/camp.out" || fail "final aggregates carry no line-cut deltas"
[ "$camp_digest" = "$ref_digest" ] \
    || fail "campaign digest $camp_digest != client-side reference $ref_digest"
echo "   campaign digest matches the client-side reference"

# ---------- Phase C: warm resubmit is all dedup ---------------------------

echo "== phase C: warm resubmit (every job must dedup from cache)"
"$work/precision-client" -addr "http://$camp_addr" -campaign "$work/camp.json" -retry 10 \
    >"$work/warm.out" 2>"$work/warm.err" || { cat "$work/warm.err"; fail "warm campaign failed"; }
grep -q 'total=18 completed=18 deduped=18' "$work/warm.out" \
    || { cat "$work/warm.out"; fail "warm resubmit recomputed instead of deduping"; }
warm_digest=$(sed -n 's/^result_digest=//p' "$work/warm.out")
[ "$warm_digest" = "$ref_digest" ] || fail "warm digest $warm_digest != reference $ref_digest"

dedup_metric=$(fetch "http://$camp_addr/metrics" | sed -n 's/^precisiond_campaign_jobs_total{outcome="deduped"} //p')
[ -n "$dedup_metric" ] && [ "$dedup_metric" -ge 18 ] \
    || fail "campaign dedup metric = ${dedup_metric:-absent}, want >= 18"

echo "campaign-smoke OK (18 jobs; digest $ref_digest; warm dedup metric $dedup_metric)"
