#!/usr/bin/env bash
# Chaos smoke test for precisiond's fault-tolerance layer (DESIGN.md §7).
#
# Phase A — crash/restart bit-identity: run the quick sweep against a
# daemon with fault injection armed (10% cache-put failures, 10% journal
# fsync failures, one worker stall), SIGKILL the daemon mid-sweep, restart
# it over the same journal/cache/checkpoints, and assert the completed
# sweep's per-spec final-state hashes are bit-identical to an undisturbed
# reference run — with no job lost and none run twice.
#
# Phase B — numerical-guard escalation: with an injected NaN guard trip,
# a min-precision submission must complete one rung up (mixed) and record
# the escalation in its result; an invalid spec must still be rejected
# outright (permanent errors are not retried).
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}

work=$(mktemp -d)
daemon_pid=""
client_pid=""
cleanup() {
    [ -n "$client_pid" ] && kill "$client_pid" 2>/dev/null || true
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

fetch() { curl -sf "$1" 2>/dev/null || wget -qO- "$1"; }

$GO build -o "$work/precisiond" ./cmd/precisiond
$GO build -o "$work/precision-client" ./cmd/precision-client

# start_daemon <logfile> <extra flags...>; sets $daemon_pid and $addr.
start_daemon() {
    local logf=$1; shift
    "$work/precisiond" -addr 127.0.0.1:0 "$@" >"$logf" 2>&1 &
    daemon_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$logf")
        [ -n "$addr" ] && break
        kill -0 "$daemon_pid" 2>/dev/null || { cat "$logf"; fail "daemon died on startup"; }
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$logf"; fail "daemon never announced its address"; }
}

# extract_pairs <json-lines-file>: sorted "spec_hash state_hash" per result.
extract_pairs() {
    sed -n 's/.*"spec_hash":"\([0-9a-f]*\)".*"state_hash":"\([0-9a-f]*\)".*/\1 \2/p' "$1" | sort
}

# ---------- Phase A: crash/restart bit-identity under injected faults ----

echo "== phase A: reference sweep (no faults)"
start_daemon "$work/ref.log" -cache "$work/ref-cache"
"$work/precision-client" -addr "http://$addr" -sweep quick -json >"$work/ref.json"
kill "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
extract_pairs "$work/ref.json" >"$work/ref.pairs"
[ -s "$work/ref.pairs" ] || fail "reference sweep produced no results"

echo "== phase A: chaos sweep (faults armed, SIGKILL mid-sweep)"
export PRECISIOND_FAULT_SEED=42
export PRECISIOND_FAULTS="cache.put=p:0.1,journal.sync=p:0.1,worker.stall=n:6"
chaos_flags=(-cache "$work/chaos-cache" -journal "$work/chaos.journal"
             -ckpt-dir "$work/chaos-ckpt" -ckpt-every 10
             -job-timeout 8s -grace 1s)
start_daemon "$work/chaos1.log" "${chaos_flags[@]}"

"$work/precision-client" -addr "http://$addr" -sweep quick -retry 20 -json >"$work/chaos1.json" 2>"$work/chaos1.err" &
client_pid=$!

# SIGKILL as soon as the sweep is visibly in flight: jobs admitted and at
# least one running, so the journal owes queued and in-flight work.
killed=""
for _ in $(seq 1 200); do
    jobs=$(fetch "http://$addr/v1/jobs" || true)
    if echo "$jobs" | grep -q '"status":"running"'; then
        kill -9 "$daemon_pid"
        killed=yes
        break
    fi
    sleep 0.05
done
[ -n "$killed" ] || fail "never observed a running job to kill"
wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
wait "$client_pid" 2>/dev/null || true   # first client may have died with the daemon
client_pid=""

echo "== phase A: restart over the same journal/cache/checkpoints"
start_daemon "$work/chaos2.log" "${chaos_flags[@]}"
grep -q 'recovered' "$work/chaos2.log" || fail "restarted daemon recovered nothing from the journal"
"$work/precision-client" -addr "http://$addr" -sweep quick -retry 20 -json >"$work/chaos2.json" \
    || fail "post-restart sweep did not complete (jobs lost?)"
extract_pairs "$work/chaos2.json" >"$work/chaos.pairs"

diff -u "$work/ref.pairs" "$work/chaos.pairs" >/dev/null \
    || { diff -u "$work/ref.pairs" "$work/chaos.pairs" >&2 || true
         fail "state hashes after SIGKILL/restart differ from undisturbed run"; }

# No job may complete twice: at most one done record per job in the journal.
dups=$(grep -o '"type":"done","job_id":"[^"]*"' "$work/chaos.journal" | sort | uniq -d)
[ -z "$dups" ] || fail "duplicated done records in journal: $dups"
kill "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
unset PRECISIOND_FAULTS PRECISIOND_FAULT_SEED

# ---------- Phase B: numerical-guard precision escalation -----------------

echo "== phase B: injected NaN escalates min -> mixed"
start_daemon "$work/esc.log" -cache "$work/esc-cache" -faults "runner.nan=n:1"
cat >"$work/min.json" <<'EOF'
{"app": "clamr", "mode": "min", "steps": 30, "nx": 16, "ny": 16, "max_level": 1, "amr_interval": 5}
EOF
"$work/precision-client" -addr "http://$addr" -spec "$work/min.json" -json >"$work/esc.json" \
    || fail "escalated job did not complete"
grep -q '"from_mode":"min"' "$work/esc.json" || fail "result records no escalation: $(cat "$work/esc.json")"
grep -q '"to_mode":"mixed"' "$work/esc.json" || fail "escalation did not climb to mixed: $(cat "$work/esc.json")"
grep -q '"mode":"mixed"' "$work/esc.json" || fail "result does not report the executed (mixed) spec"

# Permanent errors are rejected outright, never retried or escalated.
if echo '{"app":"nope","mode":"full","steps":1}' | "$work/precision-client" -addr "http://$addr" -spec - >/dev/null 2>&1; then
    fail "invalid spec was accepted"
fi

echo "chaos-smoke OK"
