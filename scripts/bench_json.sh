#!/usr/bin/env bash
# Benchmark trajectories (ISSUE 6 + ISSUE 7 + ISSUE 9 satellites).
#
# Default mode: run the tiered read-path benchmarks and write BENCH_6.json,
# the campaign-expansion benchmark into BENCH_7.json, and the observability
# hot-path benchmarks (per-job trace lifecycle with worker-subtree stitch,
# fleet-metrics federation) into BENCH_9.json — one record per bench with
# ns/op, ops/sec, B/op and allocs/op (for the campaign bench, ops/sec is
# specs expanded+hashed per second). The files are committed so the
# trajectory is versioned alongside the code.
#
# --check mode (the CI regression gate): re-run the benches on this
# machine and compare against the committed BENCH_*.json files. Two
# kinds of assertion:
#   * machine-independent ratios, checked against the FRESH numbers — a
#     hot-tier hit must be >=10x faster than a cold disk hit at >=10x
#     fewer allocs/op, and a 304 must do no worse than the cold disk read
#     (these encode the PR's acceptance criteria and hold on any host);
#   * alloc regression vs the committed baseline — allocs/op is
#     machine-independent, so any tracked bench allocating >20% more than
#     the committed number fails the gate. Raw ns/op is NOT compared
#     across machines (a faster or slower CI host would make the gate
#     meaningless); the ratio checks carry the wall-clock contract.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}
OUT=BENCH_6.json
OUT7=BENCH_7.json
OUT9=BENCH_9.json
MODE=${1:-generate}

raw=$(mktemp)
raw7=$(mktemp)
raw9=$(mktemp)
trap 'rm -f "$raw" "$raw7" "$raw9"' EXIT

echo "== running read-path benchmarks (this takes ~10s)"
$GO test -run '^$' -bench 'ReadPath' -benchmem -benchtime=1s \
    ./internal/serve/cache/ ./internal/serve/api/ | tee "$raw" | grep -E '^Benchmark' || {
    echo "FAIL: benchmarks did not run"; exit 1; }

echo "== running campaign-expansion benchmark"
$GO test -run '^$' -bench 'CampaignExpand' -benchmem -benchtime=1s \
    ./internal/serve/campaign/ | tee "$raw7" | grep -E '^Benchmark' || {
    echo "FAIL: campaign benchmark did not run"; exit 1; }

echo "== running observability hot-path benchmarks"
$GO test -run '^$' -bench 'Obs(JobTrace|StitchSnapshot|Federate)' -benchmem -benchtime=1s \
    ./internal/obs/ | tee "$raw9" | grep -E '^Benchmark' || {
    echo "FAIL: observability benchmarks did not run"; exit 1; }

# Parse `BenchmarkName-N  iters  ns/op  B/op  allocs/op` lines into JSON.
parse_json() { # parse_json <raw-file>
    awk '
/^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name); sub(/^Benchmark/, "", name)
    ns = $3; bytes = $5; allocs = $7
    ops = (ns > 0) ? 1e9 / ns : 0
    printf "%s{\"name\":\"%s\",\"ns_per_op\":%s,\"ops_per_sec\":%.0f,\"bytes_per_op\":%s,\"allocs_per_op\":%s}", sep, name, ns, ops, bytes, allocs
    sep = ",\n    "
}' "$1"
}
json=$(parse_json "$raw")
json7=$(parse_json "$raw7")
json9=$(parse_json "$raw9")

if [ -z "$json" ] || [ -z "$json7" ] || [ -z "$json9" ]; then
    echo "FAIL: no benchmark lines parsed"; exit 1
fi

get() { # get <file> <bench-name> <field>
    awk -v n="$2" -v f="$3" 'BEGIN{RS=","} $0 ~ "\""n"\"" || found {found=1}
        found && $0 ~ "\""f"\"" {gsub(/[^0-9.]/,"",$0); print; exit}' "$1"
}

check_ratios() { # check_ratios <json-file>
    local f=$1
    local cold_ns hot_ns cold_allocs hot_allocs etag_ns
    cold_ns=$(get "$f" ReadPathColdDisk ns_per_op)
    hot_ns=$(get "$f" ReadPathHotTier ns_per_op)
    cold_allocs=$(get "$f" ReadPathColdDisk allocs_per_op)
    hot_allocs=$(get "$f" ReadPathHotTier allocs_per_op)
    etag_ns=$(get "$f" ReadPath304 ns_per_op)
    [ -n "$cold_ns" ] && [ -n "$hot_ns" ] || { echo "FAIL: benches missing from $f"; return 1; }
    echo "   cold disk: ${cold_ns} ns/op, ${cold_allocs} allocs/op"
    echo "   hot tier:  ${hot_ns} ns/op, ${hot_allocs} allocs/op"
    echo "   etag 304:  ${etag_ns} ns/op"
    awk -v c="$cold_ns" -v h="$hot_ns" 'BEGIN{ exit !(h*10 <= c) }' || {
        echo "FAIL: hot-tier hit is not >=10x faster than a cold disk hit"; return 1; }
    awk -v c="$cold_allocs" -v h="$hot_allocs" 'BEGIN{ hh = (h<1)?1:h; exit !(hh*10 <= c) }' || {
        echo "FAIL: hot-tier hit does not allocate >=10x less than a cold disk hit"; return 1; }
    awk -v c="$cold_ns" -v e="$etag_ns" 'BEGIN{ exit !(e <= c) }' || {
        echo "FAIL: a 304 revalidation costs more than the cold disk read it replaces"; return 1; }
    echo "   ratio gates OK (hot >=10x faster, >=10x fewer allocs, 304 <= cold disk)"
}

# alloc_gate <committed-json> <fresh-json> <bench...>: allocs/op is
# machine-independent, so any tracked bench allocating >20% more than the
# committed number fails. Returns nonzero on any regression.
alloc_gate() {
    local committed=$1 fresh=$2 bench base now fail=0; shift 2
    for bench in "$@"; do
        base=$(get "$committed" "$bench" allocs_per_op)
        now=$(get "$fresh" "$bench" allocs_per_op)
        [ -n "$base" ] && [ -n "$now" ] || { echo "FAIL: $bench missing"; fail=1; continue; }
        if awk -v b="$base" -v n="$now" 'BEGIN{ exit !(n > b*1.2 && n > b+1) }'; then
            echo "FAIL: $bench allocs/op regressed: $base -> $now (>20%)"
            fail=1
        else
            echo "   $bench allocs/op: $base -> $now OK"
        fi
    done
    return "$fail"
}

if [ "$MODE" = "--check" ]; then
    [ -f "$OUT" ] || { echo "FAIL: no committed $OUT to gate against"; exit 1; }
    [ -f "$OUT7" ] || { echo "FAIL: no committed $OUT7 to gate against"; exit 1; }
    [ -f "$OUT9" ] || { echo "FAIL: no committed $OUT9 to gate against"; exit 1; }
    fresh=$(mktemp); fresh7=$(mktemp); fresh9=$(mktemp)
    trap 'rm -f "$raw" "$raw7" "$raw9" "$fresh" "$fresh7" "$fresh9"' EXIT
    printf '%s\n' "$json" > "$fresh"
    printf '%s\n' "$json7" > "$fresh7"
    printf '%s\n' "$json9" > "$fresh9"
    echo "== fresh-run ratio gates"
    check_ratios "$fresh"
    fail=0
    echo "== alloc regression gate vs committed $OUT (>20% fails)"
    alloc_gate "$OUT" "$fresh" ReadPathColdDisk ReadPathHotTier ReadPath304 || fail=1
    echo "== alloc regression gate vs committed $OUT7 (>20% fails)"
    alloc_gate "$OUT7" "$fresh7" CampaignExpand || fail=1
    specs_sec=$(get "$fresh7" CampaignExpand ops_per_sec)
    echo "   campaign expansion: ${specs_sec:-?} specs/sec"
    echo "== alloc regression gate vs committed $OUT9 (>20% fails: instrumentation must stay off the hot path)"
    alloc_gate "$OUT9" "$fresh9" ObsJobTrace ObsStitchSnapshot ObsFederate || fail=1
    [ "$fail" = 0 ] || exit 1
    echo "PASS: bench regression gate"
    exit 0
fi

cat > "$OUT" <<EOF
{
  "schema": "bench-trajectory/v1",
  "issue": 6,
  "description": "Tiered read path: cold disk hit vs hot-tier hit vs ETag 304 revalidation.",
  "command": "make bench-json",
  "benchmarks": [
    $json
  ]
}
EOF
cat > "$OUT7" <<EOF
{
  "schema": "bench-trajectory/v1",
  "issue": 7,
  "description": "Campaign lazy expansion: cursor walk + spec normalization + content-address hash per expanded spec (the dedup key derivation every admission pays).",
  "command": "make bench-json",
  "benchmarks": [
    $json7
  ]
}
EOF
cat > "$OUT9" <<EOF
{
  "schema": "bench-trajectory/v1",
  "issue": 9,
  "description": "Fleet observability hot path: per-job trace lifecycle (spans + worker-subtree stitch + snapshot), the stitch snapshot alone, and one GET /metrics/fleet federation of four worker scrapes.",
  "command": "make bench-json",
  "benchmarks": [
    $json9
  ]
}
EOF
echo "== wrote $OUT, $OUT7 and $OUT9"
check_ratios "$OUT"
echo "   campaign expansion: $(get "$OUT7" CampaignExpand ops_per_sec) specs/sec at $(get "$OUT7" CampaignExpand allocs_per_op) allocs/spec"
