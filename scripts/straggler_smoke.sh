#!/usr/bin/env bash
# Fleet health & straggler defense smoke test (DESIGN.md §13).
#
# Phase A — reference digest: run a single-shape campaign (one app/mode/step
# shape, an nx axis) against a plain single-node daemon and record its
# result_digest.
#
# Phase B — straggler fleet: run the same campaign as one POST /v1/campaigns
# against a fleet-only coordinator with three workers, one of them armed
# with worker.slow=x:4 (every run inflated 4×). The sweep must
#   * complete within a wall-clock bound (hedged re-dispatch absorbs the
#     straggler instead of serializing behind it),
#   * produce a bit-identical result_digest to the healthy reference,
#   * journal at least one hedge_verified record (a hedged pair whose two
#     completions hash-matched — the free cross-node verify),
#   * leave zero duplicate done records in the journal, and
#   * end with the slow worker quarantined in GET /v1/workers while the
#     healthy workers stay admissible.
#
# Phase C — graceful drain: SIGTERM a healthy worker; it must deregister
# cleanly (exit 0, "drain started" logged) and the coordinator must drop it
# from the fleet view and observe its drain duration.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}

work=$(mktemp -d)
daemon_pid=""
worker1_pid=""
worker2_pid=""
worker3_pid=""
client_pid=""
cleanup() {
    [ -n "$client_pid" ] && kill "$client_pid" 2>/dev/null || true
    [ -n "$worker1_pid" ] && kill -9 "$worker1_pid" 2>/dev/null || true
    [ -n "$worker2_pid" ] && kill -9 "$worker2_pid" 2>/dev/null || true
    [ -n "$worker3_pid" ] && kill -9 "$worker3_pid" 2>/dev/null || true
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

fetch() { curl -sf "$1" 2>/dev/null || wget -qO- "$1"; }

$GO build -o "$work/precisiond" ./cmd/precisiond
$GO build -o "$work/precision-worker" ./cmd/precision-worker
$GO build -o "$work/precision-client" ./cmd/precision-client

# start_daemon <logfile> <extra flags...>; sets $daemon_pid and $addr.
start_daemon() {
    local logf=$1; shift
    "$work/precisiond" -addr 127.0.0.1:0 "$@" >"$logf" 2>&1 &
    daemon_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$logf")
        [ -n "$addr" ] && break
        kill -0 "$daemon_pid" 2>/dev/null || { cat "$logf"; fail "daemon died on startup"; }
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$logf"; fail "daemon never announced its address"; }
}

start_worker() {
    local logf=$1; shift
    "$work/precision-worker" -coordinator "http://$addr" "$@" >"$logf" 2>&1 &
    local pid=$!
    for _ in $(seq 1 100); do
        grep -q '^registered as ' "$logf" && break
        kill -0 "$pid" 2>/dev/null || { cat "$logf"; fail "worker died on startup"; }
        sleep 0.1
    done
    grep -q '^registered as ' "$logf" || { cat "$logf"; fail "worker never registered"; }
    echo "$pid"
}

worker_id() { sed -n 's/^registered as \(worker-[0-9]*\) .*/\1/p' "$1"; }

# metric <name>: current value from /metrics (empty when absent).
metric() {
    fetch "http://$addr/metrics" | sed -n "s/^$1 //p" | head -n1
}

# worker_health <worker-id>: health state from GET /v1/workers. Each worker
# object serializes id before health, so the first health after the id is
# that worker's.
worker_health() {
    fetch "http://$addr/v1/workers" \
        | grep -o "\"id\":\"$1\".*" | grep -o '"health":"[a-z]*"' \
        | head -n1 | cut -d'"' -f4
}

# One shape only (clamr|full|800): the coordinator's per-shape latency ring
# needs samples before it can judge a completion "slow", and hedging needs a
# p99 for the same shape. 16 nx values = 16 jobs of identical arithmetic
# depth on different grids — distinct spec hashes, one shape. The runs are
# sized heavy enough that a 4x-padded straggler visibly outlives the hedge
# deadline, yet light enough that its inflated uploads still land within
# the post-campaign observation window below.
cat >"$work/camp.json" <<'EOF'
{
  "tenant": "straggler-smoke",
  "generator": {
    "kind": "grid",
    "base": {"app": "clamr", "mode": "full", "steps": 800, "nx": 96, "ny": 48,
             "max_level": 1, "amr_interval": 10, "line_cut_n": 16},
    "axes": [
      {"field": "nx", "values": [64, 68, 72, 76, 80, 84, 88, 92,
                                 96, 100, 104, 108, 112, 116, 120, 124]}
    ]
  }
}
EOF

# ---------- Phase A: healthy single-node reference digest -----------------

echo "== phase A: single-node reference campaign"
start_daemon "$work/ref.log" -cache "$work/ref-cache" -workers 2
"$work/precision-client" -addr "http://$addr" -campaign "$work/camp.json" -retry 10 \
    >"$work/ref.out" 2>"$work/ref.err" || { cat "$work/ref.err"; fail "reference campaign failed"; }
ref_digest=$(sed -n 's/^result_digest=//p' "$work/ref.out")
[ -n "$ref_digest" ] || fail "reference run printed no result_digest"
grep -q 'total=16 completed=16' "$work/ref.out" || { cat "$work/ref.out"; fail "reference campaign incomplete"; }
kill "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
echo "   reference digest $ref_digest"

# ---------- Phase B: 3-worker fleet with one 4x straggler -----------------

echo "== phase B: fleet-only coordinator + 2 healthy workers + 1 slow worker"
start_daemon "$work/fleet.log" -workers 0 -cache "$work/fleet-cache" \
    -journal "$work/fleet.journal" -lease-ttl 3s \
    -hedge-budget 0.5 -hedge-after 500ms
worker1_pid=$(start_worker "$work/worker1.log" -name steady-a -slots 2)
worker2_pid=$(start_worker "$work/worker2.log" -name steady-b -slots 2)
# The straggler: four slots so it strands four leases at once, every run
# padded to 4x its real duration — alive and heartbeating, just sick.
worker3_pid=$(start_worker "$work/worker3.log" -name slowpoke -slots 4 \
    -faults 'worker.slow=x:4')
slow_id=$(worker_id "$work/worker3.log")
[ -n "$slow_id" ] || fail "could not parse the slow worker's ID"

start_s=$SECONDS
"$work/precision-client" -addr "http://$addr" -campaign "$work/camp.json" -retry 30 \
    >"$work/fleet.out" 2>"$work/fleet.err" \
    || { cat "$work/fleet.err"; cat "$work/fleet.out"; fail "fleet campaign failed"; }
elapsed=$(( SECONDS - start_s ))

# Wall-clock bound: a 4x straggler holding 4 of 8 slots must not serialize
# the sweep — hedges re-dispatch its leases onto the healthy workers.
[ "$elapsed" -le 120 ] || fail "fleet campaign took ${elapsed}s with one straggler (bound 120s)"
grep -q 'total=16 completed=16' "$work/fleet.out" || { cat "$work/fleet.out"; fail "fleet campaign incomplete"; }
grep -q 'failed=0' "$work/fleet.out" || { cat "$work/fleet.out"; fail "fleet campaign lost jobs"; }

# Bit-identity: placement (and hedging) never changes results.
fleet_digest=$(sed -n 's/^result_digest=//p' "$work/fleet.out")
[ "$fleet_digest" = "$ref_digest" ] \
    || fail "fleet digest $fleet_digest != healthy reference $ref_digest"
echo "   fleet digest matches the healthy reference (${elapsed}s)"

# The campaign finishes on the hedge winners, but the straggler's own
# inflated uploads trail in afterwards (lease kept alive by heartbeats).
# Quarantine needs three of those scored penSlow, so poll up to 90s — once
# the breaker trips we also know the hedged pairs both-landed.
slow_health=""
for _ in $(seq 1 300); do
    slow_health=$(worker_health "$slow_id")
    [ "$slow_health" = quarantined ] && break
    sleep 0.3
done
[ "$slow_health" = quarantined ] \
    || fail "slow worker $slow_id health = ${slow_health:-absent}, want quarantined"

# At least one hedged pair landed both completions hash-identical and was
# journaled as the audit record.
hedge_records=$(grep -c '"type":"hedge_verified"' "$work/fleet.journal" || true)
[ "${hedge_records:-0}" -ge 1 ] || fail "no hedge_verified record in the journal"
grep -q '"type":"hedge_verified".*"outcome":"verified"' "$work/fleet.journal" \
    || fail "hedge records exist but none verified hash-identical"
hedged=$(metric 'precisiond_hedges_total{outcome="fired"}')
[ -n "$hedged" ] && [ "$hedged" -ge 1 ] || fail "no hedge fired (metric ${hedged:-absent})"

# Exactly-once: hedged duplicates must not double-complete any job.
dups=$(grep -o '"type":"done","job_id":"[^"]*"' "$work/fleet.journal" | sort | uniq -d)
[ -z "$dups" ] || fail "duplicated done records in journal: $dups"

# Healthy workers stay admissible while the breaker holds the straggler.
for logf in "$work/worker1.log" "$work/worker2.log"; do
    wid=$(worker_id "$logf")
    h=$(worker_health "$wid")
    [ "$h" = quarantined ] && fail "healthy worker $wid ended quarantined"
done
quarantined=$(metric 'precisiond_worker_health{state="quarantined"}')
[ "${quarantined:-0}" = 1 ] || fail "worker_health{quarantined} = ${quarantined:-absent}, want 1"
echo "   slow worker $slow_id quarantined ($hedge_records hedge_verified records, $hedged hedges fired)"

# ---------- Phase C: graceful drain ---------------------------------------

echo "== phase C: SIGTERM drain of a healthy worker"
kill -TERM "$worker1_pid"
drained=""
for _ in $(seq 1 100); do
    kill -0 "$worker1_pid" 2>/dev/null || { drained=yes; break; }
    sleep 0.1
done
[ -n "$drained" ] || fail "worker did not exit within 10s of SIGTERM"
worker1_pid=""
# The worker is not this shell's child (start_worker forks it from a command
# substitution), so assert the clean-exit log lines instead of its status.
grep -q 'drain started' "$work/worker1.log" || { cat "$work/worker1.log"; fail "worker logged no drain"; }
grep -q 'deregistered' "$work/worker1.log" || { cat "$work/worker1.log"; fail "worker never deregistered cleanly"; }
drain_obs=$(metric 'precisiond_worker_drain_seconds_count')
[ -n "$drain_obs" ] && [ "$drain_obs" -ge 1 ] \
    || fail "coordinator observed no drain duration (metric ${drain_obs:-absent})"
steady_a=$(worker_id "$work/worker1.log")
fetch "http://$addr/v1/workers" | grep -q "\"id\":\"$steady_a\"" \
    && fail "drained worker $steady_a still listed in the fleet view"
echo "   worker $steady_a drained, deregistered and dropped from the fleet"

echo "straggler-smoke OK (digest $ref_digest; ${elapsed}s; hedge_verified=$hedge_records)"
