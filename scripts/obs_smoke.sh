#!/usr/bin/env bash
# Observability smoke test: start precisiond with metrics, logging and the
# debug listener enabled, run one job (twice, for a cache hit), then assert
# the daemon's telemetry is live — /metrics exposes a non-zero run-duration
# histogram and cache counters, the job's trace endpoint returns a complete
# closed timeline, the client renders it with -trace, and the pprof mux
# answers on the debug port.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}

work=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    [ -n "$daemon_pid" ] && wait "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

fetch() { curl -sf "$1" 2>/dev/null || wget -qO- "$1"; }

$GO build -o "$work/precisiond" ./cmd/precisiond
$GO build -o "$work/precision-client" ./cmd/precision-client

"$work/precisiond" -addr 127.0.0.1:0 -debug-addr 127.0.0.1:0 \
    -cache "$work/cache" -journal "$work/journal.ndjson" \
    -log-level debug >"$work/daemon.log" 2>&1 &
daemon_pid=$!

addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$work/daemon.log")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$work/daemon.log"; echo "FAIL: daemon died" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$work/daemon.log"; echo "FAIL: daemon never announced its address" >&2; exit 1; }
debug_addr=""
for _ in $(seq 1 50); do
    debug_addr=$(sed -n 's/.*msg="debug server up (pprof + metrics)" addr=//p' "$work/daemon.log" | head -1)
    [ -n "$debug_addr" ] && break
    sleep 0.1
done
[ -n "$debug_addr" ] || { cat "$work/daemon.log"; echo "FAIL: no debug listener" >&2; exit 1; }

cat >"$work/spec.json" <<'EOF'
{"app": "clamr", "mode": "full", "steps": 5, "nx": 16, "ny": 16, "max_level": 1, "amr_interval": 5}
EOF

# Run the job, then resubmit for a cache hit; -trace prints the timeline.
"$work/precision-client" -addr "http://$addr" -spec "$work/spec.json" -trace | tee "$work/first.out"
grep -q 'queue_wait' "$work/first.out" || { echo "FAIL: -trace printed no queue_wait span" >&2; exit 1; }
grep -q 'attempt.*outcome=ok' "$work/first.out" || { echo "FAIL: -trace printed no successful attempt" >&2; exit 1; }
"$work/precision-client" -addr "http://$addr" -spec "$work/spec.json" >/dev/null

# /metrics: valid exposition with non-zero run-duration histogram and cache
# counters after the sweep.
fetch "http://$addr/metrics" >"$work/metrics.txt"
grep -q '^# TYPE precisiond_run_duration_seconds histogram$' "$work/metrics.txt" \
    || { echo "FAIL: run-duration family missing" >&2; cat "$work/metrics.txt" >&2; exit 1; }
grep -q '^precisiond_run_duration_seconds_count{app="clamr",mode="full"} 1$' "$work/metrics.txt" \
    || { echo "FAIL: run-duration histogram empty" >&2; cat "$work/metrics.txt" >&2; exit 1; }
grep -q '^precisiond_cache_events_total{event="put"} 1$' "$work/metrics.txt" \
    || { echo "FAIL: cache put counter missing" >&2; cat "$work/metrics.txt" >&2; exit 1; }
grep -q '^precisiond_cache_events_total{event="hit"} 1$' "$work/metrics.txt" \
    || { echo "FAIL: cache hit counter missing" >&2; cat "$work/metrics.txt" >&2; exit 1; }
grep -Eq '^precisiond_run_flops_total\{width="64"\} [1-9]' "$work/metrics.txt" \
    || { echo "FAIL: flops counter not populated" >&2; cat "$work/metrics.txt" >&2; exit 1; }

# Trace endpoint: complete, closed timeline for the executed job.
fetch "http://$addr/v1/jobs/job-000001/trace" >"$work/trace.json"
grep -q '"name":"attempt"' "$work/trace.json" || { echo "FAIL: trace has no attempt span" >&2; cat "$work/trace.json" >&2; exit 1; }
grep -q '"open":true' "$work/trace.json" && { echo "FAIL: finished job has open spans" >&2; exit 1; }

# pprof on the debug listener.
fetch "http://$debug_addr/debug/pprof/cmdline" >/dev/null \
    || { echo "FAIL: pprof not served on debug addr" >&2; exit 1; }

echo "obs-smoke OK (api $addr, debug $debug_addr)"
