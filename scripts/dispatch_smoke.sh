#!/usr/bin/env bash
# Distributed-dispatch smoke test (DESIGN.md §9).
#
# Phase A — single-node reference: run the quick paper sweep against a
# plain daemon and record each spec's final-state hash.
#
# Phase B — fleet bit-identity under a worker kill: start a fleet-only
# coordinator (-workers 0, short lease TTL, journaled) plus two
# precision-worker nodes, run the same sweep, SIGKILL one worker while it
# holds a lease mid-sweep, and assert
#   * the sweep still completes (expired leases re-queue under their
#     original job IDs and the surviving worker absorbs them),
#   * the per-spec final-state hashes are bit-identical to the single-node
#     reference (placement never changes results), and
#   * no job completed twice (at most one done record per job ID in the
#     journal) while the lease-expiry/requeue counters prove the kill was
#     actually absorbed, not dodged.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}

work=$(mktemp -d)
daemon_pid=""
worker1_pid=""
worker2_pid=""
client_pid=""
cleanup() {
    [ -n "$client_pid" ] && kill "$client_pid" 2>/dev/null || true
    [ -n "$worker1_pid" ] && kill -9 "$worker1_pid" 2>/dev/null || true
    [ -n "$worker2_pid" ] && kill -9 "$worker2_pid" 2>/dev/null || true
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    wait 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

fetch() { curl -sf "$1" 2>/dev/null || wget -qO- "$1"; }

$GO build -o "$work/precisiond" ./cmd/precisiond
$GO build -o "$work/precision-worker" ./cmd/precision-worker
$GO build -o "$work/precision-client" ./cmd/precision-client

# start_daemon <logfile> <extra flags...>; sets $daemon_pid and $addr.
start_daemon() {
    local logf=$1; shift
    "$work/precisiond" -addr 127.0.0.1:0 "$@" >"$logf" 2>&1 &
    daemon_pid=$!
    addr=""
    for _ in $(seq 1 100); do
        addr=$(sed -n 's/^listening on //p' "$logf")
        [ -n "$addr" ] && break
        kill -0 "$daemon_pid" 2>/dev/null || { cat "$logf"; fail "daemon died on startup"; }
        sleep 0.1
    done
    [ -n "$addr" ] || { cat "$logf"; fail "daemon never announced its address"; }
}

# start_worker <logfile> <extra flags...>; echoes the worker's PID. The
# worker prints "registered as worker-NNN with <url>" once admitted.
start_worker() {
    local logf=$1; shift
    "$work/precision-worker" -coordinator "http://$addr" "$@" >"$logf" 2>&1 &
    local pid=$!
    for _ in $(seq 1 100); do
        grep -q '^registered as ' "$logf" && break
        kill -0 "$pid" 2>/dev/null || { cat "$logf"; fail "worker died on startup"; }
        sleep 0.1
    done
    grep -q '^registered as ' "$logf" || { cat "$logf"; fail "worker never registered"; }
    echo "$pid"
}

# extract_pairs <json-lines-file>: sorted "spec_hash state_hash" per result.
extract_pairs() {
    sed -n 's/.*"spec_hash":"\([0-9a-f]*\)".*"state_hash":"\([0-9a-f]*\)".*/\1 \2/p' "$1" | sort
}

# metric <name>: current value from /metrics (0 when absent).
metric() {
    fetch "http://$addr/metrics" | sed -n "s/^$1 //p" | head -n1
}

# ---------- Phase A: single-node reference sweep --------------------------

echo "== phase A: single-node reference sweep"
start_daemon "$work/ref.log" -cache "$work/ref-cache"
"$work/precision-client" -addr "http://$addr" -sweep quick -json >"$work/ref.json"
kill "$daemon_pid" && wait "$daemon_pid" 2>/dev/null || true
daemon_pid=""
extract_pairs "$work/ref.json" >"$work/ref.pairs"
[ -s "$work/ref.pairs" ] || fail "reference sweep produced no results"

# ---------- Phase B: 2-worker fleet, one SIGKILL'd mid-sweep --------------

echo "== phase B: fleet-only coordinator + 2 workers"
start_daemon "$work/fleet.log" -workers 0 -cache "$work/fleet-cache" \
    -journal "$work/fleet.journal" -lease-ttl 2s
worker1_pid=$(start_worker "$work/worker1.log" -name victim)
worker2_pid=$(start_worker "$work/worker2.log" -name survivor)

"$work/precision-client" -addr "http://$addr" -sweep quick -retry 30 -json >"$work/fleet.json" 2>"$work/fleet.err" &
client_pid=$!

victim_id=$(sed -n 's/^registered as \(worker-[0-9]*\) .*/\1/p' "$work/worker1.log")
[ -n "$victim_id" ] || fail "could not parse the victim's worker ID"

# SIGKILL the victim once the fleet view shows both single-slot workers
# holding leases (fleet-level active_leases is the final JSON field): the
# kill must strand real leased work, not an idle node.
killed=""
for _ in $(seq 1 400); do
    view=$(fetch "http://$addr/v1/workers" || true)
    if echo "$view" | grep -q '"active_leases":2}$'; then
        kill -9 "$worker1_pid"
        killed=yes
        break
    fi
    sleep 0.05
done
[ -n "$killed" ] || fail "victim worker never held a lease to strand"
wait "$worker1_pid" 2>/dev/null || true
worker1_pid=""
echo "   killed $victim_id mid-lease"

# The sweep must still complete: expired leases re-queue and the survivor
# absorbs them.
wait "$client_pid" || { cat "$work/fleet.err"; fail "fleet sweep did not complete after the worker kill"; }
client_pid=""
extract_pairs "$work/fleet.json" >"$work/fleet.pairs"

diff -u "$work/ref.pairs" "$work/fleet.pairs" >/dev/null \
    || { diff -u "$work/ref.pairs" "$work/fleet.pairs" >&2 || true
         fail "fleet state hashes differ from the single-node reference"; }

# The kill was absorbed, not dodged: leases expired and jobs re-queued.
expired=$(metric 'dispatch_leases_total{event="expired"}')
requeued=$(metric 'precisiond_jobs_total{event="requeued"}')
[ -n "$expired" ] && [ "$expired" -ge 1 ] || fail "no lease expiry recorded (expired=${expired:-absent})"
[ -n "$requeued" ] && [ "$requeued" -ge 1 ] || fail "no requeue recorded (requeued=${requeued:-absent})"

# Exactly-once: at most one done record per job in the journal.
dups=$(grep -o '"type":"done","job_id":"[^"]*"' "$work/fleet.journal" | sort | uniq -d)
[ -z "$dups" ] || fail "duplicated done records in journal: $dups"

# Nothing is still owed: every admitted job reached a terminal state.
stats=$(fetch "http://$addr/v1/cache/stats")
echo "$stats" | grep -q '"queue_depth":0' || fail "queue not drained: $stats"

echo "dispatch-smoke OK (expired=$expired requeued=$requeued)"
