#!/usr/bin/env bash
# Smoke test for the experiment service: build precisiond and
# precision-client, start the daemon on a free port with a fresh cache,
# submit the same small CLAMR job twice, and assert the second submission is
# served from the cache without recompute.
set -euo pipefail

cd "$(dirname "$0")/.."
GO=${GO:-go}

work=$(mktemp -d)
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill "$daemon_pid" 2>/dev/null || true
    [ -n "$daemon_pid" ] && wait "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

$GO build -o "$work/precisiond" ./cmd/precisiond
$GO build -o "$work/precision-client" ./cmd/precision-client

"$work/precisiond" -addr 127.0.0.1:0 -cache "$work/cache" >"$work/daemon.log" 2>&1 &
daemon_pid=$!

# The daemon prints "listening on <host:port>" once the socket is open.
addr=""
for _ in $(seq 1 50); do
    addr=$(sed -n 's/^listening on //p' "$work/daemon.log")
    [ -n "$addr" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || { cat "$work/daemon.log"; echo "FAIL: daemon died" >&2; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$work/daemon.log"; echo "FAIL: daemon never announced its address" >&2; exit 1; }

cat >"$work/spec.json" <<'EOF'
{"app": "clamr", "mode": "full", "steps": 5, "nx": 16, "ny": 16, "max_level": 1, "amr_interval": 5}
EOF

"$work/precision-client" -addr "http://$addr" -spec "$work/spec.json" | tee "$work/first.out"
grep -q 'cached=false' "$work/first.out" || { echo "FAIL: first submission unexpectedly cached" >&2; exit 1; }

"$work/precision-client" -addr "http://$addr" -spec "$work/spec.json" | tee "$work/second.out"
grep -q 'cached=true' "$work/second.out" || { echo "FAIL: second submission not served from cache" >&2; exit 1; }

# Byte-identical result payloads across both submissions.
"$work/precision-client" -addr "http://$addr" -spec "$work/spec.json" -json >"$work/third.json"
"$work/precision-client" -addr "http://$addr" -spec "$work/spec.json" -json >"$work/fourth.json"
cmp "$work/third.json" "$work/fourth.json" || { echo "FAIL: cached payload not byte-identical" >&2; exit 1; }

# The stats endpoint must agree: one execution, the rest cache hits.
stats=$(curl -sf "http://$addr/v1/cache/stats" 2>/dev/null) || stats=$(wget -qO- "http://$addr/v1/cache/stats")
echo "$stats" | grep -q '"executed":1,' || { echo "FAIL: stats report recompute: $stats" >&2; exit 1; }

echo "serve-smoke OK ($addr, stats: $stats)"
