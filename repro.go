// Package repro is a from-scratch Go reproduction of "Thoughtful Precision
// in Mini-apps" (Fogerty et al., IEEE CLUSTER 2017): two DOE-style
// mini-apps — a cell-based AMR shallow-water code in the mold of CLAMR and
// a 3-D spectral element compressible-flow code in the mold of SELF — run
// at selectable precision (half/minimum/mixed/full), instrumented for
// operation counts and memory traffic, projected onto the paper's CPU/GPU
// test matrix by a roofline machine model, and assessed for solution
// fidelity, energy and cloud cost.
//
// This root package is the public facade: it re-exports the precision
// vocabulary, the two mini-app constructors, the study runners, and the
// experiment harness that regenerates every table and figure of the
// paper's evaluation section (see bench_test.go and cmd/paperbench).
//
// Layout:
//
//	internal/fp16      software IEEE binary16
//	internal/precision precision modes and error metrics
//	internal/reduce    reproducible global sums (§III.C)
//	internal/mesh      cell-based quadtree AMR with hash neighbor finding
//	internal/clamr     shallow-water mini-app (CLAMR analogue)
//	internal/spectral  Legendre/GLL spectral-element machinery
//	internal/self      compressible-flow SEM mini-app (SELF analogue)
//	internal/arch      roofline models of the paper's platforms
//	internal/compiler  GNU/Intel code-generation profiles (Table IV)
//	internal/cost      AWS cost model (Table VII)
//	internal/analysis  line cuts, differences, asymmetry (Figures 1–5)
//	internal/core      study orchestration and precision heuristics
package repro

import (
	"repro/internal/arch"
	"repro/internal/clamr"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/precision"
	"repro/internal/self"
)

// Mode re-exports the precision mode type.
type Mode = precision.Mode

// Precision modes (see internal/precision for the storage/compute pairs).
const (
	Half  = precision.Half
	Min   = precision.Min
	Mixed = precision.Mixed
	Full  = precision.Full
)

// Modes lists the paper's three CLAMR modes; AllModes adds Half.
var (
	Modes    = precision.Modes
	AllModes = precision.AllModes
)

// ParseMode parses a mode name ("min", "mixed", "full", "half", plus
// "single"/"double" aliases).
func ParseMode(s string) (Mode, error) { return precision.Parse(s) }

// CLAMRConfig and SELFConfig re-export the mini-app configurations.
type (
	CLAMRConfig = clamr.Config
	SELFConfig  = self.Config
)

// CLAMRRunner and SELFRunner re-export the precision-erased mini-app
// interfaces.
type (
	CLAMRRunner = clamr.Runner
	SELFRunner  = self.Runner
)

// Kernel selection for the CLAMR finite-difference study (Table III).
const (
	KernelUnvectorized = clamr.KernelCell
	KernelVectorized   = clamr.KernelFace
)

// NewDamBreak builds a CLAMR runner on the paper's cylindrical dam-break
// problem at the given precision.
func NewDamBreak(mode Mode, cfg CLAMRConfig) (CLAMRRunner, error) {
	b := cfg.Bounds
	if b == (mesh.Bounds{}) {
		b = mesh.UnitBounds
		cfg.Bounds = b
	}
	ic := clamr.DamBreak(b, 10, 2, 0.15*b.Width(), 0.05*b.Width())
	return clamr.New(mode, cfg, ic)
}

// NewThermalBubble builds a SELF runner on the paper's rising warm-blob
// problem at the given precision.
func NewThermalBubble(mode Mode, cfg SELFConfig) (SELFRunner, error) {
	return self.New(mode, cfg)
}

// RunCLAMRStudy and RunSELFStudy re-export the instrumented study runners.
var (
	RunCLAMRStudy = core.RunCLAMR
	RunSELFStudy  = core.RunSELF
)

// CLAMRResult and SELFResult re-export the study result types.
type (
	CLAMRResult = core.CLAMRResult
	SELFResult  = core.SELFResult
)

// RecommendMode re-exports the paper's §VIII precision-choice heuristic.
var RecommendMode = core.RecommendMode

// Platform specifications of the paper's test matrix.
var (
	CLAMRPlatforms = arch.CLAMRSpecs
	SELFPlatforms  = arch.SELFSpecs
)
