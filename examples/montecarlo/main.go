// Montecarlo prices a European call option by simulation at different
// precision treatments — the paper's prior-work thread ([10], mixed-
// precision Monte Carlo for financial engineering) and a third algorithm
// class for the precision methodology: per-path math tolerates single
// precision (sampling noise dominates), but a long naive single-precision
// accumulation visibly biases the price until a reproducible sum (§III.C)
// protects it.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro"
	"repro/internal/montecarlo"
	"repro/internal/reduce"
)

func main() {
	paths := flag.Int("paths", 1<<20, "Monte Carlo paths")
	flag.Parse()

	p := montecarlo.Params{S0: 100, Strike: 105, Rate: 0.02, Vol: 0.25, T: 1}
	fmt.Printf("European call: S0=%.0f K=%.0f r=%.2f σ=%.2f T=%.0fy — Black–Scholes %.6f\n\n",
		p.S0, p.Strike, p.Rate, p.Vol, p.T, p.BlackScholesCall())

	configs := []struct {
		label string
		cfg   montecarlo.Config
	}{
		{"double paths + Neumaier sum", montecarlo.Config{Paths: *paths, Seed: 1, PathMode: repro.Full, SumMethod: reduce.Neumaier}},
		{"single paths + reproducible sum", montecarlo.Config{Paths: *paths, Seed: 1, PathMode: repro.Min, SumMethod: reduce.Reproducible}},
		{"single paths + naive f32 sum", montecarlo.Config{Paths: *paths, Seed: 1, PathMode: repro.Min, SumMethod: reduce.Naive}},
	}
	for _, c := range configs {
		res, err := montecarlo.Price(p, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		bias, err := montecarlo.AccumulationBias(p, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s price %.6f  (vs BS %.2e, accumulation bias %.2e)\n",
			c.label, res.Price, res.RelError, bias)
	}
	fmt.Println("\nthe paper's pattern, third algorithm class: demote the local math,")
	fmt.Println("protect the global reduction (§III.C) — the naive single-precision")
	fmt.Println("sum is the only configuration whose error is numerical, not statistical.")
}
