// Costplanner applies the paper's §VI cost analysis to a user-described
// campaign: given measured runtimes and checkpoint sizes per precision, it
// prices compute and storage on the AWS-style model and reports the saving
// each reduced-precision mode buys — the decision the paper's Table VII
// supports.
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/cost"
)

func main() {
	var (
		fullSec  = flag.Float64("full-sec", 31.3, "measured full-precision runtime (s)")
		minSec   = flag.Float64("min-sec", 26.3, "measured minimum-precision runtime (s)")
		mixedSec = flag.Float64("mixed-sec", 31.0, "measured mixed-precision runtime (s)")
		fullGB   = flag.Float64("full-gb", 0.128, "full-precision checkpoint size (GB)")
		minGB    = flag.Float64("min-gb", 0.086, "reduced-precision checkpoint size (GB)")
	)
	flag.Parse()

	price := func(name string, sec, gb float64) cost.Breakdown {
		bd, err := cost.AWS2017.Cost(cost.PaperCLAMRScenario(sec, gb))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s compute $%8.2f   storage $%8.2f   total $%8.2f\n",
			name, bd.Compute, bd.Storage, bd.Total)
		return bd
	}

	fmt.Println("Monthly campaign cost (EC2 c4.8xlarge + S3, the paper's scaling rules):")
	min := price("min", *minSec, *minGB)
	mixed := price("mixed", *mixedSec, *minGB)
	full := price("full", *fullSec, *fullGB)

	fmt.Printf("\nminimum precision saves %.0f%%, mixed saves %.0f%% — the paper reports\n",
		100*cost.Savings(min, full), 100*cost.Savings(mixed, full))
	fmt.Println("23% and 15% for its CLAMR campaign; plug in your own -full-sec/-min-sec.")
}
