// Thermalbubble runs the SELF analogue's rising warm-blob experiment at
// single and double precision (paper §V.B, Figures 4–5): the density
// anomaly along the center line is visually identical between precisions,
// the difference sits about two orders below the solution, and the
// single-precision asymmetry is biased where double oscillates around zero.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/analysis"
	"repro/internal/metrics"
)

func main() {
	cfg := repro.SELFConfig{Elements: 4, Order: 5}
	const steps = 40

	type run struct {
		mode repro.Mode
		res  repro.SELFResult
	}
	var runs []run
	for _, mode := range []repro.Mode{repro.Min, repro.Full} {
		res, err := repro.RunSELFStudy(mode, cfg, steps, 160)
		if err != nil {
			log.Fatal(err)
		}
		runs = append(runs, run{mode, res})
		fmt.Printf("%-6v wall %-12v mem %-10s DOF %d\n",
			mode, res.WallTime.Round(1000), metrics.Bytes(res.StateBytes), res.DOF)
	}

	single, double := runs[0].res.LineCut, runs[1].res.LineCut
	single.Label, double.Label = "Single", "Double"

	fmt.Println("\nDensity anomaly along the x center line:")
	fmt.Print(analysis.ASCIIPlot(12, 72, double, single))

	diff := analysis.Diff(double, single)
	fmt.Printf("\nmax|Double-Single| = %.3g  (%.1f orders below the %.3g anomaly scale)\n",
		diff.MaxAbs(), analysis.OrdersBelow(diff, double), double.MaxAbs())

	aS, aD := analysis.Asymmetry(single), analysis.Asymmetry(double)
	fmt.Printf("\nasymmetry — double: max %.3g, bias %.3g, positive fraction %.2f\n",
		aD.MaxAbs(), aD.Bias(), aD.PositiveFraction())
	fmt.Printf("asymmetry — single: max %.3g, bias %.3g, positive fraction %.2f\n",
		aS.MaxAbs(), aS.Bias(), aS.PositiveFraction())
}
