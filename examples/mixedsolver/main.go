// Mixedsolver demonstrates the classic mixed-precision technique of the
// paper's prior work ([4] extended-precision BLAS, [6] Buttari et al.):
// iterative refinement solves a Poisson system to double-precision
// accuracy while running ~99% of its flops in single precision — and pure
// single-precision CG is shown stalling at its round-off floor.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/internal/solvers"
)

func main() {
	n := flag.Int("grid", 48, "Poisson grid size per dimension (N = grid²)")
	tol := flag.Float64("tol", 1e-12, "target relative residual")
	flag.Parse()

	m, err := solvers.Poisson2D(*n)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b := make([]float64, m.N)
	for i := range b {
		b[i] = rng.Float64()*2 - 1
	}
	fmt.Printf("system: 2-D Poisson, %d unknowns, %d nonzeros, target %.0e\n\n", m.N, m.NNZ(), *tol)

	x := make([]float64, m.N)
	stCG := solvers.CG(m, b, x, *tol, 20000)
	fmt.Printf("double CG        : %4d iters, residual %.2e, flops f64=%d f32=%d\n",
		stCG.InnerIterations, stCG.RelResidual, stCG.Counters.Flops64, stCG.Counters.Flops32)

	_, st32 := solvers.CG32(m, b, *tol, 20000)
	fmt.Printf("single CG        : %4d iters, residual %.2e  ← stalls at single round-off\n",
		st32.InnerIterations, st32.RelResidual)

	_, stIR := solvers.SolveIR(m, b, solvers.IROptions{Tol: *tol})
	fmt.Printf("mixed IR         : %d outer × %d inner, residual %.2e, %.0f%% of flops single\n",
		stIR.OuterIterations, stIR.InnerIterations, stIR.RelResidual, 100*stIR.SingleFlopFraction())

	costCG := float64(stCG.Counters.Flops64)
	costIR := float64(stIR.Counters.Flops64) + 0.5*float64(stIR.Counters.Flops32)
	fmt.Printf("\nbandwidth-weighted cost (f32 = ½ f64): CG %.3g, IR %.3g → IR saves %.0f%%\n",
		costCG, costIR, 100*(1-costIR/costCG))
	fmt.Println("— the paper's thesis on another algorithm class: spend precision only")
	fmt.Println("  where the numerics demand it (the residual), run the bulk reduced.")
}
