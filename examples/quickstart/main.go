// Quickstart: run the dam-break mini-app at the paper's three precision
// modes, compare runtime, memory, checkpoint size and solution fidelity —
// the whole study in ~30 lines of API.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/analysis"
	"repro/internal/metrics"
)

func main() {
	cfg := repro.CLAMRConfig{NX: 64, NY: 64, MaxLevel: 1, AMRInterval: 15}
	const steps = 100

	results := map[repro.Mode]repro.CLAMRResult{}
	for _, mode := range repro.Modes { // Min, Mixed, Full
		res, err := repro.RunCLAMRStudy(mode, cfg, steps, 128)
		if err != nil {
			log.Fatal(err)
		}
		results[mode] = res
		fmt.Printf("%-6v wall %-12v mem %-10s checkpoint %-10s mass drift %.2g\n",
			mode, res.WallTime.Round(1000),
			metrics.Bytes(res.StateBytes),
			metrics.Bytes(uint64(res.CheckpointBytes)),
			res.MassError)
	}

	// Fidelity: how far below the solution do the precision differences sit?
	full := results[repro.Full].LineCut
	for _, mode := range []repro.Mode{repro.Min, repro.Mixed} {
		diff := analysis.Diff(full, results[mode].LineCut)
		fmt.Printf("max|Full-%v| = %.3g  (%.1f orders below the solution)\n",
			mode, diff.MaxAbs(), analysis.OrdersBelow(diff, full))
	}

	// And what the paper's heuristics would pick for this workload:
	mode := repro.RecommendMode(6 /*digits*/, true /*memory-bound*/, 2 /*DP:SP*/, false)
	fmt.Printf("recommended precision for a 6-digit bandwidth-bound run: %v\n", mode)
}
