// Precisiontuner shows the §III.B tool story end-to-end: an automated
// search assigns per-variable precisions to a CLAMR-like flux kernel, then
// the paper's heuristic (§VIII) is compared against the search result.
package main

import (
	"fmt"
	"log"
	"math"

	"repro"
	"repro/internal/tuner"
)

// miniFlux is a one-dimensional shallow-water flux sweep with a mass
// audit: the structure of CLAMR's finite_diff in eight tunable variables.
func miniFlux(r *tuner.Rounder) []float64 {
	const n = 512
	g := r.R("gravity", 9.8)
	h := make([]float64, n)
	hu := make([]float64, n)
	for i := range h {
		x := float64(i) / n
		h[i] = r.R("state_h", 2+8*math.Exp(-(x-0.5)*(x-0.5)*50))
		hu[i] = r.R("state_hu", 0.1*math.Sin(6.28*x)*h[i])
	}
	var mass float64
	newH := make([]float64, n)
	for i := 1; i < n-1; i++ {
		uL := r.R("vel", hu[i-1]/h[i-1])
		uR := r.R("vel", hu[i+1]/h[i+1])
		cL := r.R("wavespeed", math.Sqrt(g*h[i-1]))
		cR := r.R("wavespeed", math.Sqrt(g*h[i+1]))
		s := math.Max(math.Abs(uL)+cL, math.Abs(uR)+cR)
		fL := r.R("flux", hu[i-1]+0.5*s*(h[i]-h[i-1]))
		fR := r.R("flux", hu[i+1]-0.5*s*(h[i+1]-h[i]))
		newH[i] = r.R("update", h[i]-0.001*(fR-fL))
		// The audit accumulates the per-cell mass *change* — a global sum
		// of small cancelling terms, the paper's §III.C sensitive spot.
		mass = r.R("mass_sum", mass+(newH[i]-h[i]))
	}
	return []float64{mass, newH[n/4], newH[n/2]}
}

func main() {
	tn, err := tuner.New(miniFlux)
	if err != nil {
		log.Fatal(err)
	}
	res := tn.SearchGreedy(1e-6)
	fmt.Println("Automated mixed-precision search over a shallow-water flux kernel")
	fmt.Println("(bound: 1e-6 relative on mass audit and sampled heights)")
	fmt.Println()
	fmt.Print(res)
	fmt.Printf("\nweighted cost saving vs all-double: %.0f%%\n\n", 100*res.Saving())

	// Compare with the paper's coarse heuristic for this workload class.
	sumKeptWide := res.Assignment["mass_sum"] == tuner.Double
	rec := repro.RecommendMode(6, true, 2, sumKeptWide)
	fmt.Printf("paper §VIII heuristic for the same workload: %v\n", rec)
	if sumKeptWide {
		fmt.Println("(the search independently keeps the global mass audit wide — the")
		fmt.Println(" paper's §III.C conclusion — while demoting the local flux math)")
	} else {
		fmt.Println("(at this bound even the mass audit tolerates reduced precision)")
	}
}
