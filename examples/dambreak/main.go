// Dambreak reproduces the paper's Figure 1–3 workflow on the cylindrical
// dam break: line cuts at every precision, pairwise differences, the
// mirror-asymmetry diagnostic, and the resolution-vs-precision trade
// (minimum precision at double the resolution for roughly the cost of full
// precision at base resolution).
package main

import (
	"fmt"
	"log"
	"os"

	"repro"
	"repro/internal/analysis"
)

func main() {
	cfg := repro.CLAMRConfig{NX: 64, NY: 64, MaxLevel: 2, AMRInterval: 20}
	const steps = 300

	// --- Figure 1: line cuts and differences ---
	cuts := map[repro.Mode]analysis.Series{}
	for _, mode := range repro.Modes {
		res, err := repro.RunCLAMRStudy(mode, cfg, steps, 192)
		if err != nil {
			log.Fatal(err)
		}
		cuts[mode] = res.LineCut
	}
	full := cuts[repro.Full]
	fmt.Println("Solution overlay (all precisions visually identical):")
	fmt.Print(analysis.ASCIIPlot(12, 72, full, cuts[repro.Mixed], cuts[repro.Min]))

	// A 2-D view of the wave field at full precision.
	fullRun, err := repro.NewDamBreak(repro.Full, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := fullRun.Run(steps); err != nil {
		log.Fatal(err)
	}
	const raster = 96
	field, err := fullRun.Mesh().Rasterize(fullRun.HeightF64(), raster, raster)
	if err != nil {
		log.Fatal(err)
	}
	hm, err := analysis.Heatmap(field, raster, raster, 20, 64)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nHeight field (2-D, full precision):")
	fmt.Print(hm)

	for _, pair := range []struct {
		a, b repro.Mode
	}{{repro.Full, repro.Min}, {repro.Full, repro.Mixed}, {repro.Mixed, repro.Min}} {
		d := analysis.Diff(cuts[pair.a], cuts[pair.b])
		fmt.Printf("max|%v-%v| = %.3g (%.1f orders below solution)\n",
			pair.a, pair.b, d.MaxAbs(), analysis.OrdersBelow(d, full))
	}

	// --- Figure 2: asymmetry amplification ---
	fmt.Println("\nMirror asymmetry of the (ideally symmetric) solution:")
	for _, mode := range repro.Modes {
		a := analysis.Asymmetry(cuts[mode])
		fmt.Printf("  %-6v max %.3g (%.1f orders below solution)\n",
			mode, a.MaxAbs(), analysis.OrdersBelow(a, cuts[mode]))
	}

	// --- Figure 3: spend the precision savings on resolution ---
	hiCfg := cfg
	hiCfg.NX, hiCfg.NY = cfg.NX*2, cfg.NY*2
	hi, err := repro.NewDamBreak(repro.Min, hiCfg)
	if err != nil {
		log.Fatal(err)
	}
	lo, err := repro.NewDamBreak(repro.Full, cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := lo.Run(steps); err != nil {
		log.Fatal(err)
	}
	for hi.Time() < lo.Time() {
		if err := hi.Step(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nMin-HiRes: %d cells at t=%.4g   Full-LoRes: %d cells at t=%.4g\n",
		hi.Mesh().NumCells(), hi.Time(), lo.Mesh().NumCells(), lo.Time())
	fmt.Println("(the high-resolution reduced-precision run resolves more structure;")
	fmt.Println(" see cmd/paperbench -exp fig3 for the quantified comparison)")

	// Optional: dump the figure data.
	if len(os.Args) > 1 {
		f, err := os.Create(os.Args[1])
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		if err := analysis.WriteCSV(f, full, cuts[repro.Mixed], cuts[repro.Min]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("line cuts written to %s\n", os.Args[1])
	}
}
