package repro

import (
	"context"
	"fmt"
	"math"
	"strings"

	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/clamr"
	"repro/internal/compiler"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/self"
)

// Scale selects the problem sizes the experiment harness runs. The paper's
// qualitative results (who wins, by what factor) are scale-stable; Quick
// keeps every experiment in CI range, Paper approaches the paper's sizes.
type Scale int

const (
	// QuickScale: seconds per experiment (CI, go test -bench).
	QuickScale Scale = iota
	// StandardScale: tens of seconds.
	StandardScale
	// PaperScale: the paper's problem sizes (1920² CLAMR grid, 20³×8³
	// SELF). Minutes to hours; cmd/paperbench only.
	PaperScale
)

// ParseScale parses "quick", "standard" or "paper".
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "quick", "":
		return QuickScale, nil
	case "standard", "std":
		return StandardScale, nil
	case "paper", "full":
		return PaperScale, nil
	default:
		return QuickScale, fmt.Errorf("unknown scale %q", s)
	}
}

// Session memoizes mini-app runs so the table experiments share them the
// way the paper's tables share measurements.
type Session struct {
	Scale Scale

	ctx       context.Context
	clamrRuns map[string]core.CLAMRResult
	selfRuns  map[string]core.SELFResult
}

// NewSession creates an experiment session at the given scale.
func NewSession(scale Scale) *Session {
	return NewSessionContext(context.Background(), scale)
}

// NewSessionContext creates a session whose mini-app runs stop between
// steps once ctx is cancelled; RunExperiment then returns an error wrapping
// ctx.Err(). This is the plumbing cmd/paperbench and the experiment daemon
// share for SIGINT handling.
func NewSessionContext(ctx context.Context, scale Scale) *Session {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Session{
		Scale:     scale,
		ctx:       ctx,
		clamrRuns: make(map[string]core.CLAMRResult),
		selfRuns:  make(map[string]core.SELFResult),
	}
}

// CLAMRPerfConfig is the Table I–III configuration at this session's scale
// (paper: 1920² coarse grid, 2 AMR levels, 200 iterations).
func (s *Session) CLAMRPerfConfig(kernel clamr.Kernel) (clamr.Config, int) {
	switch s.Scale {
	case PaperScale:
		return clamr.Config{NX: 1920, NY: 1920, MaxLevel: 2, Kernel: kernel, AMRInterval: 20}, 200
	case StandardScale:
		return clamr.Config{NX: 192, NY: 192, MaxLevel: 2, Kernel: kernel, AMRInterval: 20}, 150
	default:
		return clamr.Config{NX: 48, NY: 48, MaxLevel: 1, Kernel: kernel, AMRInterval: 15}, 60
	}
}

// CLAMRFigConfig is the Figure 1–3 configuration at this session's scale
// (paper: 64² grid, 2 AMR levels, 1000 iterations).
func (s *Session) CLAMRFigConfig() (clamr.Config, int) {
	switch s.Scale {
	case PaperScale:
		return clamr.Config{NX: 64, NY: 64, MaxLevel: 2, Kernel: clamr.KernelFace, AMRInterval: 20}, 1000
	case StandardScale:
		return clamr.Config{NX: 64, NY: 64, MaxLevel: 2, Kernel: clamr.KernelFace, AMRInterval: 20}, 300
	default:
		return clamr.Config{NX: 48, NY: 48, MaxLevel: 1, Kernel: clamr.KernelFace, AMRInterval: 15}, 100
	}
}

// SELFStudyConfig is the Table IV–VI / Figure 4–5 configuration at this
// session's scale (paper: 20³ elements at order 7, 100 RK3 steps ≈ 24M DOF).
func (s *Session) SELFStudyConfig(mm self.MathMode) (self.Config, int) {
	switch s.Scale {
	case PaperScale:
		return self.Config{Elements: 20, Order: 7, MathMode: mm}, 100
	case StandardScale:
		return self.Config{Elements: 6, Order: 6, MathMode: mm}, 40
	default:
		return self.Config{Elements: 3, Order: 4, MathMode: mm}, 15
	}
}

// LineCutN is the line-cut sampling resolution at this session's scale.
func (s *Session) LineCutN() int {
	if s.Scale == QuickScale {
		return 96
	}
	return 256
}

// runCLAMR memoizes a (mode, kernel, variant) CLAMR study run.
func (s *Session) runCLAMR(mode Mode, kernel clamr.Kernel, fig bool) (core.CLAMRResult, error) {
	key := fmt.Sprintf("%v/%v/fig=%v", mode, kernel, fig)
	if r, ok := s.clamrRuns[key]; ok {
		return r, nil
	}
	var cfg clamr.Config
	var steps int
	if fig {
		cfg, steps = s.CLAMRFigConfig()
	} else {
		cfg, steps = s.CLAMRPerfConfig(kernel)
	}
	r, err := core.RunCLAMROpts(mode, cfg, steps, s.LineCutN(), core.RunOptions{Ctx: s.ctx})
	if err != nil {
		return core.CLAMRResult{}, fmt.Errorf("clamr %s: %w", key, err)
	}
	s.clamrRuns[key] = r
	return r, nil
}

// runSELF memoizes a (mode, math mode) SELF study run.
func (s *Session) runSELF(mode Mode, mm self.MathMode) (core.SELFResult, error) {
	key := fmt.Sprintf("%v/%v", mode, mm)
	if r, ok := s.selfRuns[key]; ok {
		return r, nil
	}
	cfg, steps := s.SELFStudyConfig(mm)
	r, err := core.RunSELFOpts(mode, cfg, steps, s.LineCutN(), core.RunOptions{Ctx: s.ctx})
	if err != nil {
		return core.SELFResult{}, fmt.Errorf("self %s: %w", key, err)
	}
	s.selfRuns[key] = r
	return r, nil
}

// Output is the result of one experiment: rendered text plus, for figures,
// the underlying series (CSV-able by the caller).
type Output struct {
	Text   string
	Series []analysis.Series
}

// Experiment binds a paper table/figure to its regeneration.
type Experiment struct {
	ID    string
	Title string
	Run   func(*Session) (Output, error)
}

// Experiments lists every table and figure of the paper's evaluation, in
// paper order.
var Experiments = []Experiment{
	{"table1", "Table I: CLAMR runtime and memory across architectures and precisions", (*Session).Table1},
	{"table2", "Table II: estimated CLAMR energy use", (*Session).Table2},
	{"table3", "Table III: CLAMR finite_diff vectorization × precision, checkpoint size", (*Session).Table3},
	{"table4", "Table IV: nonvectorized SELF, GNU vs Intel compiler profiles", (*Session).Table4},
	{"table5", "Table V: SELF runtime and memory across architectures and precisions", (*Session).Table5},
	{"table6", "Table VI: estimated SELF energy use", (*Session).Table6},
	{"table7", "Table VII: AWS cost model", (*Session).Table7},
	{"fig1", "Figure 1: CLAMR line cuts per precision and pairwise differences", (*Session).Fig1},
	{"fig2", "Figure 2: CLAMR height asymmetry per precision", (*Session).Fig2},
	{"fig3", "Figure 3: minimum-precision high-resolution vs full-precision low-resolution", (*Session).Fig3},
	{"fig4", "Figure 4: SELF density-anomaly line cut, single vs double", (*Session).Fig4},
	{"fig5", "Figure 5: SELF perturbation-density asymmetry", (*Session).Fig5},
}

// RunExperiment runs one experiment by ID ("table1".."table7",
// "fig1".."fig5").
func (s *Session) RunExperiment(id string) (Output, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e.Run(s)
		}
	}
	return Output{}, fmt.Errorf("unknown experiment %q", id)
}

// Paper problem sizes the workload extrapolation targets: CLAMR 1920²
// coarse cells (×1.3 average AMR overhead) for 200 iterations; SELF 20³
// elements × 8³ nodes for 100 RK3 steps.
const (
	paperCLAMRCells = 1920 * 1920 * 1.3
	paperCLAMRSteps = 200
	paperSELFNodes  = 20 * 20 * 20 * 8 * 8 * 8
	paperSELFSteps  = 100
)

// scaleCLAMRWorkload extrapolates a measured run to the paper's problem
// size. The kernels' counters are exact linear tallies in cell-steps, so
// this is exact for the same configuration shape; launches scale with
// steps only and resident state with cells only.
func scaleCLAMRWorkload(r core.CLAMRResult, w arch.Workload) arch.Workload {
	measured := float64(r.Cells) * float64(r.Steps)
	f := paperCLAMRCells * paperCLAMRSteps / measured
	launchesPerStep := float64(w.Counters.KernelLaunches) / float64(r.Steps)
	w.Counters = w.Counters.Scale(f)
	w.Counters.KernelLaunches = uint64(launchesPerStep * paperCLAMRSteps)
	w.SerialOps = uint64(paperCLAMRCells * paperCLAMRSteps)
	w.StateBytes = uint64(float64(w.StateBytes) * paperCLAMRCells / float64(r.Cells))
	return w
}

// scaleSELFWorkload is the SELF counterpart (node-steps).
func scaleSELFWorkload(r core.SELFResult, w arch.Workload) arch.Workload {
	nodes := float64(r.DOF) / 5
	measured := nodes * float64(r.Steps)
	f := paperSELFNodes * paperSELFSteps / measured
	launchesPerStep := float64(w.Counters.KernelLaunches) / float64(r.Steps)
	w.Counters = w.Counters.Scale(f)
	w.Counters.KernelLaunches = uint64(launchesPerStep * paperSELFSteps)
	w.SerialOps = uint64(float64(w.SerialOps) * paperSELFNodes / nodes * paperSELFSteps / float64(r.Steps))
	w.StateBytes = uint64(float64(w.StateBytes) * paperSELFNodes / nodes)
	return w
}

// clamrWorkloads gathers the three precision workloads of the performance
// configuration, extrapolated to the paper's problem size.
func (s *Session) clamrWorkloads() ([]core.CLAMRResult, []arch.Workload, error) {
	results := make([]core.CLAMRResult, 0, 3)
	workloads := make([]arch.Workload, 0, 3)
	for _, mode := range Modes {
		r, err := s.runCLAMR(mode, clamr.KernelFace, false)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, r)
		workloads = append(workloads, scaleCLAMRWorkload(r, r.Workload()))
	}
	return results, workloads, nil
}

// Table1 predicts CLAMR runtime/memory per architecture × precision.
func (s *Session) Table1() (Output, error) {
	results, workloads, err := s.clamrWorkloads()
	if err != nil {
		return Output{}, err
	}
	t := core.Table{
		Title: "Table I — CLAMR runtime (s, modeled) and memory (GB) per architecture",
		Headers: []string{"Arch", "Mem Min", "Mem Mixed", "Mem Full",
			"Run Min", "Run Mixed", "Run Full", "Speedup"},
	}
	for _, row := range arch.Table(CLAMRPlatforms, workloads) {
		t.AddRow(row.Arch,
			core.FormatGB(uint64(row.MemGB[0]*1e9)), core.FormatGB(uint64(row.MemGB[1]*1e9)), core.FormatGB(uint64(row.MemGB[2]*1e9)),
			core.FormatDuration(row.Times[0]), core.FormatDuration(row.Times[1]), core.FormatDuration(row.Times[2]),
			core.FormatSpeedup(row.Speedup))
	}
	text := t.String() + fmt.Sprintf(
		"\nHost measured (this machine): Min %.3gs  Mixed %.3gs  Full %.3gs  (%d cells, %d steps)\n",
		results[0].WallTime.Seconds(), results[1].WallTime.Seconds(), results[2].WallTime.Seconds(),
		results[2].Cells, results[2].Steps)
	return Output{Text: text}, nil
}

// Table2 prices the Table1 rows in joules.
func (s *Session) Table2() (Output, error) {
	_, workloads, err := s.clamrWorkloads()
	if err != nil {
		return Output{}, err
	}
	t := core.Table{
		Title:   "Table II — estimated CLAMR energy use (J) = nominal power × modeled runtime",
		Headers: []string{"Arch", "Min", "Mixed", "Full"},
	}
	for _, row := range arch.Table(CLAMRPlatforms, workloads) {
		t.AddRow(row.Arch,
			core.FormatJoules(row.Energy[0]), core.FormatJoules(row.Energy[1]), core.FormatJoules(row.Energy[2]))
	}
	return Output{Text: t.String()}, nil
}

// Table3 compares the unvectorized and vectorized finite_diff kernels per
// precision (host-measured) and checkpoint sizes.
func (s *Session) Table3() (Output, error) {
	t := core.Table{
		Title:   "Table III — CLAMR finite_diff time (host s) and checkpoint size",
		Headers: []string{"", "Min", "Mixed", "Full"},
	}
	rows := map[clamr.Kernel][]string{}
	var ckpt []string
	for _, kernel := range []clamr.Kernel{clamr.KernelCell, clamr.KernelFace} {
		for _, mode := range Modes {
			r, err := s.runCLAMR(mode, kernel, false)
			if err != nil {
				return Output{}, err
			}
			rows[kernel] = append(rows[kernel], fmt.Sprintf("%.3g", r.FiniteDiffTime.Seconds()))
			if kernel == clamr.KernelFace {
				ckpt = append(ckpt, fmt.Sprintf("%.2fMB", float64(r.CheckpointBytes)/1e6))
			}
		}
	}
	t.AddRow(append([]string{"finite_diff unvectorized"}, rows[clamr.KernelCell]...)...)
	t.AddRow(append([]string{"finite_diff vectorized"}, rows[clamr.KernelFace]...)...)
	t.AddRow(append([]string{"checkpoint file size"}, ckpt...)...)
	return Output{Text: t.String()}, nil
}

// Table4 re-compiles the nonvectorized SELF workload under the GNU and
// Intel profiles and prices them on Haswell.
func (s *Session) Table4() (Output, error) {
	single, err := s.runSELF(Min, self.MathNative)
	if err != nil {
		return Output{}, err
	}
	double, err := s.runSELF(Full, self.MathNative)
	if err != nil {
		return Output{}, err
	}
	wS := scaleSELFWorkload(single, single.Workload())
	wD := scaleSELFWorkload(double, double.Workload())
	wS.Vectorized, wD.Vectorized = false, false
	t := core.Table{
		Title:   "Table IV — nonvectorized SELF runtime (s, modeled on Haswell) per compiler profile",
		Headers: []string{"Compiler", "Single", "Double"},
	}
	for _, p := range compiler.Profiles {
		t.AddRow(p.Name,
			fmt.Sprintf("%.3g", p.Predict(arch.Haswell, wS)),
			fmt.Sprintf("%.3g", p.Predict(arch.Haswell, wD)))
	}
	gnuS, gnuD := compiler.GNU.Predict(arch.Haswell, wS), compiler.GNU.Predict(arch.Haswell, wD)
	note := "\nGNU single > GNU double: " + yesNo(gnuS > gnuD) +
		" (the paper's anomaly; caused here by promotion of single-precision math through the double libm)\n"
	return Output{Text: t.String() + note}, nil
}

func yesNo(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}

// selfWorkloads gathers single and double SELF workloads, extrapolated to
// the paper's problem size.
func (s *Session) selfWorkloads() ([]core.SELFResult, []arch.Workload, error) {
	var results []core.SELFResult
	var workloads []arch.Workload
	for _, mode := range []Mode{Min, Full} {
		r, err := s.runSELF(mode, self.MathNative)
		if err != nil {
			return nil, nil, err
		}
		results = append(results, r)
		workloads = append(workloads, scaleSELFWorkload(r, r.Workload()))
	}
	return results, workloads, nil
}

// Table5 predicts SELF runtime/memory per architecture × precision.
func (s *Session) Table5() (Output, error) {
	results, workloads, err := s.selfWorkloads()
	if err != nil {
		return Output{}, err
	}
	t := core.Table{
		Title:   "Table V — SELF runtime (s, modeled) and memory (GB) per architecture",
		Headers: []string{"Arch", "Mem Single", "Mem Double", "Run Single", "Run Double", "Speedup"},
	}
	for _, row := range arch.Table(SELFPlatforms, workloads) {
		t.AddRow(row.Arch,
			core.FormatGB(uint64(row.MemGB[0]*1e9)), core.FormatGB(uint64(row.MemGB[1]*1e9)),
			core.FormatDuration(row.Times[0]), core.FormatDuration(row.Times[1]),
			core.FormatSpeedup(row.Speedup))
	}
	text := t.String() + fmt.Sprintf(
		"\nHost measured (this machine): Single %.3gs  Double %.3gs  (%d DOF, %d steps)\n",
		results[0].WallTime.Seconds(), results[1].WallTime.Seconds(), results[1].DOF, results[1].Steps)
	return Output{Text: text}, nil
}

// Table6 prices the Table5 rows in joules.
func (s *Session) Table6() (Output, error) {
	_, workloads, err := s.selfWorkloads()
	if err != nil {
		return Output{}, err
	}
	t := core.Table{
		Title:   "Table VI — estimated SELF energy use (J)",
		Headers: []string{"Arch", "Single", "Double"},
	}
	for _, row := range arch.Table(SELFPlatforms, workloads) {
		t.AddRow(row.Arch, core.FormatJoules(row.Energy[0]), core.FormatJoules(row.Energy[1]))
	}
	return Output{Text: t.String()}, nil
}

// Table7 prices the paper's usage scenarios with our measured precision
// ratios applied to the paper's Haswell baselines, so magnitudes stay
// comparable to Table VII while the ratios are this reproduction's.
func (s *Session) Table7() (Output, error) {
	clamrResults, clamrWorkloads, err := s.clamrWorkloads()
	if err != nil {
		return Output{}, err
	}
	_, selfWorkloads, err := s.selfWorkloads()
	if err != nil {
		return Output{}, err
	}
	// Modeled Haswell runtimes → precision ratios.
	cT := make([]float64, 3)
	for i, w := range clamrWorkloads {
		cT[i] = arch.Haswell.Predict(w).Seconds()
	}
	sT := make([]float64, 2)
	for i, w := range selfWorkloads {
		sT[i] = arch.Haswell.Predict(w).Seconds()
	}
	const clamrBaseSec, selfBaseSec = 31.3, 270.4 // paper's Haswell full runs
	ckptRatioMin := float64(clamrResults[0].CheckpointBytes) / float64(clamrResults[2].CheckpointBytes)
	ckptRatioMixed := float64(clamrResults[1].CheckpointBytes) / float64(clamrResults[2].CheckpointBytes)

	type column struct {
		name string
		bd   cost.Breakdown
	}
	var cols []column
	add := func(name string, sc cost.Scenario) error {
		bd, err := cost.AWS2017.Cost(sc)
		if err != nil {
			return err
		}
		cols = append(cols, column{name, bd})
		return nil
	}
	if err := add("CLAMR Min", cost.PaperCLAMRScenario(clamrBaseSec*cT[0]/cT[2], 0.128*ckptRatioMin)); err != nil {
		return Output{}, err
	}
	if err := add("CLAMR Mixed", cost.PaperCLAMRScenario(clamrBaseSec*cT[1]/cT[2], 0.128*ckptRatioMixed)); err != nil {
		return Output{}, err
	}
	if err := add("CLAMR Full", cost.PaperCLAMRScenario(clamrBaseSec, 0.128)); err != nil {
		return Output{}, err
	}
	if err := add("SELF Single", cost.PaperSELFScenario(selfBaseSec*sT[0]/sT[1], 1.0)); err != nil {
		return Output{}, err
	}
	if err := add("SELF Double", cost.PaperSELFScenario(selfBaseSec, 1.0)); err != nil {
		return Output{}, err
	}

	t := core.Table{
		Title:   "Table VII — AWS cost model (paper baselines × this reproduction's ratios)",
		Headers: []string{"Scenario", "Compute $", "Storage $", "Total $"},
	}
	for _, c := range cols {
		t.AddRow(c.name,
			fmt.Sprintf("%.2f", c.bd.Compute),
			fmt.Sprintf("%.2f", c.bd.Storage),
			fmt.Sprintf("%.2f", c.bd.Total))
	}
	sav := fmt.Sprintf("\nCLAMR: min saves %.0f%%, mixed saves %.0f%% vs full;  SELF: single saves %.0f%% vs double\n",
		100*cost.Savings(cols[0].bd, cols[2].bd),
		100*cost.Savings(cols[1].bd, cols[2].bd),
		100*cost.Savings(cols[3].bd, cols[4].bd))
	return Output{Text: t.String() + sav}, nil
}

// Fig1 renders the CLAMR line cuts per precision plus pairwise differences.
func (s *Session) Fig1() (Output, error) {
	cuts := make(map[Mode]analysis.Series, 3)
	for _, mode := range Modes {
		r, err := s.runCLAMR(mode, clamr.KernelFace, true)
		if err != nil {
			return Output{}, err
		}
		cuts[mode] = r.LineCut
	}
	dFullMin := analysis.Diff(cuts[Full], cuts[Min])
	dFullMixed := analysis.Diff(cuts[Full], cuts[Mixed])
	dMixedMin := analysis.Diff(cuts[Mixed], cuts[Min])

	var b strings.Builder
	b.WriteString("Figure 1 — CLAMR height along the center line (all precisions overlap)\n")
	b.WriteString(analysis.ASCIIPlot(14, 72, cuts[Full], cuts[Mixed], cuts[Min]))

	// 2-D context for the cut: the full-precision wave field (re-run; the
	// memoized study result does not retain the mesh).
	cfgFig, stepsFig := s.CLAMRFigConfig()
	if runner, err := NewDamBreak(Full, cfgFig); err == nil {
		if err := runner.Run(stepsFig); err == nil {
			const raster = 96
			if field, err := runner.Mesh().Rasterize(runner.HeightF64(), raster, raster); err == nil {
				if hm, err := analysis.Heatmap(field, raster, raster, 16, 64); err == nil {
					b.WriteString("\n2-D height field (full precision):\n")
					b.WriteString(hm)
				}
			}
		}
	}
	fmt.Fprintf(&b, "\nmax|Full-Min|   = %.3g  (%.1f orders below the %.3g solution scale)\n",
		dFullMin.MaxAbs(), analysis.OrdersBelow(dFullMin, cuts[Full]), cuts[Full].MaxAbs())
	fmt.Fprintf(&b, "max|Full-Mixed| = %.3g  (%.1f orders below)\n",
		dFullMixed.MaxAbs(), analysis.OrdersBelow(dFullMixed, cuts[Full]))
	fmt.Fprintf(&b, "max|Mixed-Min|  = %.3g  (%.1f orders below)\n",
		dMixedMin.MaxAbs(), analysis.OrdersBelow(dMixedMin, cuts[Full]))
	return Output{
		Text:   b.String(),
		Series: []analysis.Series{cuts[Full], cuts[Mixed], cuts[Min], dFullMin, dFullMixed, dMixedMin},
	}, nil
}

// Fig2 renders the CLAMR height asymmetry per precision.
func (s *Session) Fig2() (Output, error) {
	var b strings.Builder
	b.WriteString("Figure 2 — CLAMR height asymmetry y(c+d) − y(c−d) per precision\n")
	var series []analysis.Series
	var ref analysis.Series
	for _, mode := range Modes {
		r, err := s.runCLAMR(mode, clamr.KernelFace, true)
		if err != nil {
			return Output{}, err
		}
		asym := analysis.Asymmetry(r.LineCut)
		asym.Label = mode.String()
		series = append(series, asym)
		if mode == Full {
			ref = r.LineCut
		}
		fmt.Fprintf(&b, "%-6s max asymmetry %.3g  (%.1f orders below solution)\n",
			mode.String(), asym.MaxAbs(), analysis.OrdersBelow(asym, r.LineCut))
	}
	_ = ref
	b.WriteString(analysis.ASCIIPlot(12, 72, series...))
	return Output{Text: b.String(), Series: series}, nil
}

// Fig3 compares a minimum-precision high-resolution run against a
// full-precision low-resolution run at (nearly) the same simulation time.
func (s *Session) Fig3() (Output, error) {
	cfgLo, steps := s.CLAMRFigConfig()
	loRes, err := core.RunCLAMROpts(Full, cfgLo, steps, s.LineCutN(), core.RunOptions{Ctx: s.ctx})
	if err != nil {
		return Output{}, err
	}
	// High resolution: double the coarse grid, minimum precision, run to
	// the same simulation time.
	cfgHi := cfgLo
	cfgHi.NX *= 2
	cfgHi.NY *= 2
	ic := clamr.DamBreak(cfgHi.Bounds, 10, 2, 0.15, 0.05)
	loTime, err := s.simTimeOf(cfgLo, steps)
	if err != nil {
		return Output{}, err
	}
	hi, err := NewDamBreak(Min, cfgHi)
	_ = ic
	if err != nil {
		return Output{}, err
	}
	for hi.Time() < loTime {
		if err := s.ctx.Err(); err != nil {
			return Output{}, fmt.Errorf("fig3 cancelled: %w", err)
		}
		if err := hi.Step(); err != nil {
			return Output{}, err
		}
	}
	hiCut, err := core.CLAMRLineCut(hi, s.LineCutN())
	if err != nil {
		return Output{}, err
	}
	hiCut.Label = "Min-HiRes"
	lo := loRes.LineCut
	lo.Label = "Full-LoRes"

	// Structural richness: total variation of the cut (more resolved
	// detail ⇒ larger total variation at the front).
	tv := func(s analysis.Series) float64 {
		var v float64
		for i := 1; i < s.Len(); i++ {
			v += math.Abs(s.Y[i] - s.Y[i-1])
		}
		return v
	}
	var b strings.Builder
	b.WriteString("Figure 3 — Min-precision high-resolution vs full-precision low-resolution\n")
	b.WriteString(analysis.ASCIIPlot(14, 72, lo, hiCut))
	fmt.Fprintf(&b, "\ntotal variation: Full-LoRes %.4g, Min-HiRes %.4g (more structure: %s)\n",
		tv(lo), tv(hiCut), map[bool]string{true: "Min-HiRes", false: "Full-LoRes"}[tv(hiCut) > tv(lo)])
	fmt.Fprintf(&b, "simulation times: LoRes %.4gs, HiRes %.4gs\n", loTime, hi.Time())
	return Output{Text: b.String(), Series: []analysis.Series{lo, hiCut}}, nil
}

// simTimeOf runs a throwaway full-precision simulation to learn the
// simulation time reached after the given number of steps.
func (s *Session) simTimeOf(cfg clamr.Config, steps int) (float64, error) {
	r, err := NewDamBreak(Full, cfg)
	if err != nil {
		return 0, err
	}
	for r.StepCount() < steps {
		if err := s.ctx.Err(); err != nil {
			return 0, fmt.Errorf("fig3 reference cancelled: %w", err)
		}
		if err := r.Step(); err != nil {
			return 0, err
		}
	}
	return r.Time(), nil
}

// Fig4 renders the SELF density-anomaly line cut, single vs double.
func (s *Session) Fig4() (Output, error) {
	single, err := s.runSELF(Min, self.MathNative)
	if err != nil {
		return Output{}, err
	}
	double, err := s.runSELF(Full, self.MathNative)
	if err != nil {
		return Output{}, err
	}
	sc, dc := single.LineCut, double.LineCut
	sc.Label, dc.Label = "Single", "Double"
	diff := analysis.Diff(dc, sc)
	var b strings.Builder
	b.WriteString("Figure 4 — SELF density anomaly along the x center line\n")
	b.WriteString(analysis.ASCIIPlot(14, 72, dc, sc))
	fmt.Fprintf(&b, "\nmax|Double-Single| = %.3g (%.1f orders below the %.3g solution scale)\n",
		diff.MaxAbs(), analysis.OrdersBelow(diff, dc), dc.MaxAbs())
	return Output{Text: b.String(), Series: []analysis.Series{dc, sc, diff}}, nil
}

// Fig5 renders the SELF perturbation-density asymmetry, single vs double,
// including the paper's observation that the single-precision asymmetry is
// biased positive while double oscillates around zero.
func (s *Session) Fig5() (Output, error) {
	single, err := s.runSELF(Min, self.MathNative)
	if err != nil {
		return Output{}, err
	}
	double, err := s.runSELF(Full, self.MathNative)
	if err != nil {
		return Output{}, err
	}
	aS := analysis.Asymmetry(single.LineCut)
	aD := analysis.Asymmetry(double.LineCut)
	aS.Label, aD.Label = "Single", "Double"
	var b strings.Builder
	b.WriteString("Figure 5 — SELF density-anomaly asymmetry\n")
	b.WriteString(analysis.ASCIIPlot(12, 72, aD, aS))
	fmt.Fprintf(&b, "\nDouble: max %.3g, bias %.3g, positive fraction %.2f\n",
		aD.MaxAbs(), aD.Bias(), aD.PositiveFraction())
	fmt.Fprintf(&b, "Single: max %.3g, bias %.3g, positive fraction %.2f\n",
		aS.MaxAbs(), aS.Bias(), aS.PositiveFraction())
	return Output{Text: b.String(), Series: []analysis.Series{aD, aS}}, nil
}
