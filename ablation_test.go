package repro

// Ablations for the extension substrates: zfp-style checkpoint compression
// (the storage trade the paper's §VI declines to model, citing [34]) and
// mixed-precision iterative refinement (the prior-work technique of [4,6]).

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/clamr"
	"repro/internal/cost"
	"repro/internal/mesh"
	"repro/internal/precision"
	"repro/internal/solvers"
	"repro/internal/zfp"
)

// BenchmarkAblationCompression compresses a dam-break height field at
// several rates, reporting compression factor vs full-precision storage
// and the introduced error — the data behind a compressed-checkpoint
// column for Table VII.
func BenchmarkAblationCompression(b *testing.B) {
	cfg := clamr.Config{NX: 64, NY: 64, MaxLevel: 1, Kernel: clamr.KernelFace, AMRInterval: 15}
	r, err := clamr.New(precision.Full, cfg, clamr.DamBreak(mesh.UnitBounds, 10, 2, 0.15, 0.05))
	if err != nil {
		b.Fatal(err)
	}
	if err := r.Run(80); err != nil {
		b.Fatal(err)
	}
	const raster = 128
	field, err := r.Mesh().Rasterize(r.HeightF64(), raster, raster)
	if err != nil {
		b.Fatal(err)
	}
	scale := 0.0
	for _, v := range field {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	for _, rate := range []int{8, 16} {
		name := map[int]string{8: "rate8", 16: "rate16"}[rate]
		b.Run(name, func(b *testing.B) {
			var buf []byte
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = zfp.Compress2D(field, raster, raster, rate)
				if err != nil {
					b.Fatal(err)
				}
			}
			got, _, _, err := zfp.Decompress2D(buf)
			if err != nil {
				b.Fatal(err)
			}
			maxErr := 0.0
			for i := range field {
				if d := math.Abs(field[i] - got[i]); d > maxErr {
					maxErr = d
				}
			}
			ratio := float64(raster*raster*8) / float64(len(buf))
			b.ReportMetric(ratio, "compression-x")
			b.ReportMetric(math.Log10(scale/maxErr), "orders-below")
			// Storage-cost impact under the paper's CLAMR scenario.
			plain, _ := cost.AWS2017.Cost(cost.PaperCLAMRScenario(31.3, 0.128))
			compressed, _ := cost.AWS2017.Cost(cost.PaperCLAMRScenario(31.3, 0.128/ratio))
			b.ReportMetric(100*(1-compressed.Storage/plain.Storage), "storage-saving-%")
		})
	}
}

// BenchmarkAblationMixedIR contrasts double CG against mixed-precision
// iterative refinement at matched accuracy, reporting the single-precision
// flop share and the bandwidth-weighted cost saving.
func BenchmarkAblationMixedIR(b *testing.B) {
	m, err := solvers.Poisson2D(40)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	rhs := make([]float64, m.N)
	for i := range rhs {
		rhs[i] = rng.Float64()*2 - 1
	}
	b.Run("cg-double", func(b *testing.B) {
		var st solvers.Stats
		for i := 0; i < b.N; i++ {
			x := make([]float64, m.N)
			st = solvers.CG(m, rhs, x, 1e-12, 20000)
		}
		b.ReportMetric(-math.Log10(st.RelResidual), "digits")
	})
	b.Run("ir-mixed", func(b *testing.B) {
		var st solvers.Stats
		for i := 0; i < b.N; i++ {
			_, st = solvers.SolveIR(m, rhs, solvers.IROptions{Tol: 1e-12})
		}
		b.ReportMetric(-math.Log10(st.RelResidual), "digits")
		b.ReportMetric(100*st.SingleFlopFraction(), "single-flop-%")
	})
}

// BenchmarkAblationWorkers measures the parallel scaling of the two
// mini-apps' kernels (fork-join over fixed chunks; bit-identical results).
// The gomaxprocs metric records the host parallelism: on a single-core
// machine extra workers can only add synchronisation overhead — the
// feature's guarantee is determinism, the speedup needs cores.
func BenchmarkAblationWorkers(b *testing.B) {
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
	for _, workers := range []int{1, 4} {
		name := map[int]string{1: "clamr-w1", 4: "clamr-w4"}[workers]
		b.Run(name, func(b *testing.B) {
			cfg := clamr.Config{NX: 128, NY: 128, Kernel: clamr.KernelFace, Workers: workers}
			r, err := clamr.New(precision.Full, cfg, clamr.DamBreak(mesh.UnitBounds, 10, 2, 0.15, 0.05))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := r.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
