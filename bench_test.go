package repro

// One benchmark per table and figure of the paper's evaluation section —
// `go test -bench 'Table|Fig'` regenerates every result at quick scale —
// plus the ablation benches DESIGN.md calls out. Per-iteration custom
// metrics surface the quantities the paper reports (speedups, orders of
// magnitude, savings) so `-bench` output is itself a results summary.

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/clamr"
	"repro/internal/core"
	"repro/internal/mesh"
	"repro/internal/precision"
	"repro/internal/reduce"
)

// benchExperiment runs one experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		s := NewSession(QuickScale)
		if _, err := s.RunExperiment(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1CLAMRRuntimeMemory regenerates Table I.
func BenchmarkTable1CLAMRRuntimeMemory(b *testing.B) {
	var titanSpeedup, haswellSpeedup float64
	for i := 0; i < b.N; i++ {
		s := NewSession(QuickScale)
		_, workloads, err := s.clamrWorkloads()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range arch.Table(CLAMRPlatforms, workloads) {
			switch row.Arch {
			case "GTX TITAN X":
				titanSpeedup = row.Speedup
			case "Haswell":
				haswellSpeedup = row.Speedup
			}
		}
	}
	b.ReportMetric(titanSpeedup, "titanX-speedup")
	b.ReportMetric(haswellSpeedup, "haswell-speedup")
}

// BenchmarkTable2CLAMREnergy regenerates Table II.
func BenchmarkTable2CLAMREnergy(b *testing.B) { benchExperiment(b, "table2") }

// BenchmarkTable3Vectorization regenerates Table III: finite_diff host
// times per kernel × precision plus checkpoint sizes.
func BenchmarkTable3Vectorization(b *testing.B) {
	var minVec, fullVec, ckptRatio float64
	for i := 0; i < b.N; i++ {
		s := NewSession(QuickScale)
		rMinV, err := s.runCLAMR(Min, clamr.KernelFace, false)
		if err != nil {
			b.Fatal(err)
		}
		rFullV, err := s.runCLAMR(Full, clamr.KernelFace, false)
		if err != nil {
			b.Fatal(err)
		}
		minVec = rMinV.FiniteDiffTime.Seconds()
		fullVec = rFullV.FiniteDiffTime.Seconds()
		ckptRatio = float64(rMinV.CheckpointBytes) / float64(rFullV.CheckpointBytes)
	}
	b.ReportMetric(fullVec/math.Max(minVec, 1e-12), "vec-full/min-time")
	b.ReportMetric(ckptRatio, "ckpt-min/full")
}

// BenchmarkTable4CompilerProfiles regenerates Table IV.
func BenchmarkTable4CompilerProfiles(b *testing.B) { benchExperiment(b, "table4") }

// BenchmarkTable5SELFRuntimeMemory regenerates Table V.
func BenchmarkTable5SELFRuntimeMemory(b *testing.B) {
	var titanSpeedup float64
	for i := 0; i < b.N; i++ {
		s := NewSession(QuickScale)
		_, workloads, err := s.selfWorkloads()
		if err != nil {
			b.Fatal(err)
		}
		for _, row := range arch.Table(SELFPlatforms, workloads) {
			if row.Arch == "GTX TITAN X" {
				titanSpeedup = row.Speedup
			}
		}
	}
	b.ReportMetric(titanSpeedup, "titanX-speedup")
}

// BenchmarkTable6SELFEnergy regenerates Table VI.
func BenchmarkTable6SELFEnergy(b *testing.B) { benchExperiment(b, "table6") }

// BenchmarkTable7CostModel regenerates Table VII.
func BenchmarkTable7CostModel(b *testing.B) { benchExperiment(b, "table7") }

// BenchmarkFig1LineCuts regenerates Figure 1 and reports the
// orders-of-magnitude separation between solution and precision diffs.
func BenchmarkFig1LineCuts(b *testing.B) {
	var orders float64
	for i := 0; i < b.N; i++ {
		s := NewSession(QuickScale)
		out, err := s.Fig1()
		if err != nil {
			b.Fatal(err)
		}
		orders = analysis.OrdersBelow(out.Series[3], out.Series[0]) // Full-Min vs Full
	}
	b.ReportMetric(orders, "full-min-orders-below")
}

// BenchmarkFig2Asymmetry regenerates Figure 2.
func BenchmarkFig2Asymmetry(b *testing.B) { benchExperiment(b, "fig2") }

// BenchmarkFig3ResolutionTrade regenerates Figure 3.
func BenchmarkFig3ResolutionTrade(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4SELFLineCut regenerates Figure 4.
func BenchmarkFig4SELFLineCut(b *testing.B) {
	var orders float64
	for i := 0; i < b.N; i++ {
		s := NewSession(QuickScale)
		out, err := s.Fig4()
		if err != nil {
			b.Fatal(err)
		}
		orders = analysis.OrdersBelow(out.Series[2], out.Series[0])
	}
	b.ReportMetric(orders, "single-double-orders-below")
}

// BenchmarkFig5SELFAsymmetry regenerates Figure 5.
func BenchmarkFig5SELFAsymmetry(b *testing.B) { benchExperiment(b, "fig5") }

// --- Ablation benches (DESIGN.md §4) ---

// BenchmarkAblationReduce sweeps the global-sum algorithms on an
// ill-conditioned instance, reporting recovered digits — the paper §III.C
// "7 digits → 15 digits" trade against throughput.
func BenchmarkAblationReduce(b *testing.B) {
	xs, exact := reduce.IllConditioned(1<<16, 1e9, 7)
	for _, m := range reduce.Methods {
		b.Run(m.String(), func(b *testing.B) {
			b.SetBytes(int64(len(xs) * 8))
			var got float64
			for i := 0; i < b.N; i++ {
				got = reduce.Sum(xs, m)
			}
			digits := 17.0
			if rel := math.Abs(got-exact) / math.Abs(exact); rel > 0 {
				digits = math.Min(17, -math.Log10(rel))
			}
			b.ReportMetric(digits, "digits")
		})
	}
}

// BenchmarkAblationHalf sweeps the storage/compute precision pairs on the
// dam break, reporting each mode's deviation from full precision — the
// (f16, f32) point shows where the paper's "reduce as far as one can"
// bottoms out.
func BenchmarkAblationHalf(b *testing.B) {
	cfg := clamr.Config{NX: 32, NY: 32, MaxLevel: 0, Kernel: clamr.KernelFace, AMRInterval: 0}
	ic := clamr.DamBreak(mesh.UnitBounds, 10, 2, 0.15, 0.05)
	reference := func() []float64 {
		r, err := clamr.New(precision.Full, cfg, ic)
		if err != nil {
			b.Fatal(err)
		}
		if err := r.Run(40); err != nil {
			b.Fatal(err)
		}
		return r.HeightF64()
	}()
	for _, mode := range []precision.Mode{precision.Half, precision.Min, precision.Mixed} {
		b.Run(mode.String(), func(b *testing.B) {
			var maxDiff float64
			for i := 0; i < b.N; i++ {
				r, err := clamr.New(mode, cfg, ic)
				if err != nil {
					b.Fatal(err)
				}
				if err := r.Run(40); err != nil {
					b.Fatal(err)
				}
				hs := r.HeightF64()
				maxDiff = 0
				for j := range hs {
					if d := math.Abs(hs[j] - reference[j]); d > maxDiff {
						maxDiff = d
					}
				}
			}
			b.ReportMetric(math.Log10(10/math.Max(maxDiff, 1e-18)), "orders-below")
		})
	}
}

// BenchmarkAblationLane compares the cell-centric and face-centric kernels
// across grid sizes: where does the memory-lean "vectorized" layout pull
// ahead?
func BenchmarkAblationLane(b *testing.B) {
	for _, n := range []int{32, 64, 128} {
		for _, kernel := range []clamr.Kernel{clamr.KernelCell, clamr.KernelFace} {
			name := fmt.Sprintf("n%d/%s", n, kernel)
			b.Run(name, func(b *testing.B) {
				cfg := clamr.Config{NX: n, NY: n, MaxLevel: 0, Kernel: kernel, AMRInterval: 0}
				r, err := clamr.New(precision.Min, cfg, clamr.DamBreak(mesh.UnitBounds, 10, 2, 0.15, 0.05))
				if err != nil {
					b.Fatal(err)
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := r.Step(); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(r.Mesh().NumCells()), "cells")
			})
		}
	}
}

// BenchmarkAblationAMR checks whether adaptivity changes the precision
// sensitivity: deviation of Min from Full with and without refinement.
func BenchmarkAblationAMR(b *testing.B) {
	for _, amr := range []bool{false, true} {
		name := map[bool]string{false: "uniform", true: "amr"}[amr]
		b.Run(name, func(b *testing.B) {
			cfg := clamr.Config{NX: 32, NY: 32, Kernel: clamr.KernelFace}
			if amr {
				cfg.MaxLevel = 2
				cfg.AMRInterval = 10
			}
			var orders float64
			for i := 0; i < b.N; i++ {
				full, err := core.RunCLAMR(precision.Full, cfg, 40, 64)
				if err != nil {
					b.Fatal(err)
				}
				min, err := core.RunCLAMR(precision.Min, cfg, 40, 64)
				if err != nil {
					b.Fatal(err)
				}
				diff := analysis.Diff(full.LineCut, min.LineCut)
				orders = analysis.OrdersBelow(diff, full.LineCut)
			}
			b.ReportMetric(orders, "orders-below")
		})
	}
}
