# Build/verify entry points. `make verify` is the tier-1 gate: vet plus the
# full test suite. `make race` runs the race detector over the parallel
# runtime, both mini-app step loops (the packages that dispatch on the
# worker pool) and the experiment service. `make serve-smoke` exercises the
# precisiond daemon end to end: submit a job twice, assert the second is a
# cache hit. `make chaos-smoke` SIGKILLs a fault-injected daemon mid-sweep
# and asserts the recovered sweep is bit-identical (DESIGN.md §7).
# `make obs-smoke` checks the telemetry surface end to end: /metrics
# exposition, job traces, the client's -trace timeline and the pprof debug
# listener (DESIGN.md §8). `make dispatch-smoke` runs the paper sweep on a
# two-node worker fleet, SIGKILLs one worker mid-lease and asserts the
# results are bit-identical to a single-node run (DESIGN.md §9).
# `make read-smoke` runs the paper sweep twice against a 2-worker fleet and
# asserts the second pass is served entirely above the disk tier — replica
# reads plus ETag 304s, zero disk_hits growth (DESIGN.md §11).
# `make campaign-smoke` submits a server-side grid campaign to a 2-worker
# fleet, SIGKILLs a worker and then the coordinator mid-expansion, and
# asserts the resumed campaign's aggregates bit-match a client-side sweep
# and a warm resubmit is all dedup (DESIGN.md §12).
# `make straggler-smoke` runs a campaign against a 3-worker fleet with one
# fault-armed slow worker and asserts hedged re-dispatch absorbs it with a
# bit-identical digest, hash-verified hedge pairs, the straggler ending
# quarantined and a clean SIGTERM drain (DESIGN.md §13).
# `make fleetobs-smoke` runs the same campaign against an uninstrumented
# single node and a fully-instrumented 2-worker fleet (stitched traces,
# /metrics federation, energy/cost accounting) and asserts bit-identical
# digests, a node=worker solve span in every job trace, /metrics/fleet
# summing to the per-worker scrapes, and a cache-stable energy line
# (DESIGN.md §14).
# `make autotune-smoke` warms a 2-worker fleet with full-mode references,
# asserts auto-mode submissions demote one shadow-verified rung at a time,
# SIGKILLs the coordinator and requires the learned table back from the
# journal, injects runner.nan to force a revert, and checks tight budgets
# resolve to full bit-matching the reference (DESIGN.md §15).
# `make bench-par` regenerates the committed pool-vs-spawn dispatch
# numbers in results/. `make bench-json` regenerates the committed
# benchmark trajectories in BENCH_6.json (read path), BENCH_7.json
# (campaign expansion) and BENCH_9.json (observability hot paths);
# `make bench-gate` is the CI regression gate against them.

GO ?= go

.PHONY: build test vet verify race serve-smoke chaos-smoke obs-smoke dispatch-smoke read-smoke campaign-smoke straggler-smoke fleetobs-smoke autotune-smoke bench-par bench-step bench-json bench-gate

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

verify: build vet test

race:
	$(GO) test -race ./internal/par/... ./internal/clamr/... ./internal/self/... ./internal/serve/... ./internal/runner/...

serve-smoke:
	GO="$(GO)" ./scripts/serve_smoke.sh

chaos-smoke:
	GO="$(GO)" ./scripts/chaos_smoke.sh

obs-smoke:
	GO="$(GO)" ./scripts/obs_smoke.sh

dispatch-smoke:
	GO="$(GO)" ./scripts/dispatch_smoke.sh

read-smoke:
	GO="$(GO)" ./scripts/read_smoke.sh

campaign-smoke:
	GO="$(GO)" ./scripts/campaign_smoke.sh

straggler-smoke:
	GO="$(GO)" ./scripts/straggler_smoke.sh

fleetobs-smoke:
	GO="$(GO)" ./scripts/fleetobs_smoke.sh

autotune-smoke:
	GO="$(GO)" ./scripts/autotune_smoke.sh

bench-json:
	GO="$(GO)" ./scripts/bench_json.sh

bench-gate:
	GO="$(GO)" ./scripts/bench_json.sh --check

bench-par:
	$(GO) test ./internal/par/ -run '^$$' -bench BenchmarkParDispatch -benchmem | tee results/par_pool_bench.txt

bench-step:
	$(GO) test ./internal/clamr/ -run '^$$' -bench BenchmarkCLAMRStep -benchmem
	$(GO) test ./internal/self/ -run '^$$' -bench BenchmarkSELFStep -benchmem
