# Build/verify entry points. `make verify` is the tier-1 gate: vet plus the
# full test suite. `make race` runs the race detector over the parallel
# runtime and both mini-app step loops (the packages that dispatch on the
# worker pool). `make bench-par` regenerates the committed pool-vs-spawn
# dispatch numbers in results/.

GO ?= go

.PHONY: build test vet verify race bench-par bench-step

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

verify: build vet test

race:
	$(GO) test -race ./internal/par/... ./internal/clamr/... ./internal/self/...

bench-par:
	$(GO) test ./internal/par/ -run '^$$' -bench BenchmarkParDispatch -benchmem | tee results/par_pool_bench.txt

bench-step:
	$(GO) test ./internal/clamr/ -run '^$$' -bench BenchmarkCLAMRStep -benchmem
	$(GO) test ./internal/self/ -run '^$$' -bench BenchmarkSELFStep -benchmem
