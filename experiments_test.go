package repro

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/clamr"
	"repro/internal/self"
)

func TestParseScale(t *testing.T) {
	cases := map[string]Scale{
		"quick": QuickScale, "": QuickScale,
		"standard": StandardScale, "std": StandardScale,
		"paper": PaperScale, "FULL": PaperScale,
	}
	for in, want := range cases {
		got, err := ParseScale(in)
		if err != nil || got != want {
			t.Errorf("ParseScale(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseScale("enormous"); err == nil {
		t.Error("ParseScale accepted junk")
	}
}

func TestParseModeFacade(t *testing.T) {
	m, err := ParseMode("mixed")
	if err != nil || m != Mixed {
		t.Errorf("ParseMode: %v, %v", m, err)
	}
	if len(Modes) != 3 || len(AllModes) != 4 {
		t.Error("mode lists wrong")
	}
}

func TestFacadeConstructors(t *testing.T) {
	dam, err := NewDamBreak(Min, CLAMRConfig{NX: 16, NY: 16, MaxLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := dam.Run(5); err != nil {
		t.Fatal(err)
	}
	if dam.StepCount() != 5 {
		t.Error("dam break did not advance")
	}
	bubble, err := NewThermalBubble(Full, SELFConfig{Elements: 2, Order: 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := bubble.Run(3); err != nil {
		t.Fatal(err)
	}
	if bubble.Time() <= 0 {
		t.Error("bubble did not advance")
	}
	if len(CLAMRPlatforms) != 5 || len(SELFPlatforms) != 6 {
		t.Error("platform lists wrong")
	}
	if RecommendMode(12, true, 2, false) != Full {
		t.Error("RecommendMode facade broken")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments take a few seconds")
	}
	s := NewSession(QuickScale)
	for _, e := range Experiments {
		out, err := s.RunExperiment(e.ID)
		if err != nil {
			t.Fatalf("%s: %v", e.ID, err)
		}
		if len(out.Text) < 40 {
			t.Errorf("%s: output suspiciously short: %q", e.ID, out.Text)
		}
		if strings.HasPrefix(e.ID, "fig") && len(out.Series) == 0 {
			t.Errorf("%s: figure produced no series", e.ID)
		}
	}
	if _, err := s.RunExperiment("table99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestTable1Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs mini-apps")
	}
	s := NewSession(QuickScale)
	_, workloads, err := s.clamrWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	rows := arch.Table(CLAMRPlatforms, workloads)
	byName := map[string]arch.Row{}
	for _, r := range rows {
		byName[r.Arch] = r
	}
	titan, hsw, k40 := byName["GTX TITAN X"], byName["Haswell"], byName["Tesla K40m"]
	// Paper Table I shape: GPU min-precision speedups exceed CPU speedups;
	// the TITAN X (32:1 DP penalty) exceeds the Kepler datacenter parts.
	if titan.Speedup <= k40.Speedup || k40.Speedup <= hsw.Speedup {
		t.Errorf("speedup ordering: titan %.2f k40 %.2f haswell %.2f",
			titan.Speedup, k40.Speedup, hsw.Speedup)
	}
	// Memory: min ≈ mixed < full on every architecture (same state bytes
	// feed every row).
	for _, r := range rows {
		if !(r.MemGB[0] <= r.MemGB[1] && r.MemGB[1] < r.MemGB[2]) {
			t.Errorf("%s memory ordering: %v", r.Arch, r.MemGB)
		}
	}
	// Mixed runtime ≈ full runtime on GPUs (within 35%): double compute
	// dominates.
	if k40.Times[1].Seconds() < 0.65*k40.Times[2].Seconds() {
		t.Errorf("K40m mixed %.3fs much faster than full %.3fs",
			k40.Times[1].Seconds(), k40.Times[2].Seconds())
	}
}

func TestTable5Shapes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs mini-apps")
	}
	s := NewSession(QuickScale)
	_, workloads, err := s.selfWorkloads()
	if err != nil {
		t.Fatal(err)
	}
	rows := arch.Table(SELFPlatforms, workloads)
	byName := map[string]arch.Row{}
	for _, r := range rows {
		byName[r.Arch] = r
	}
	// Paper Table V shape: TITAN X speedup dwarfs every other platform;
	// P100 (2:1 DP) shows the smallest GPU gain; memory halves at single.
	titan := byName["GTX TITAN X"]
	p100 := byName["Tesla P100"]
	for _, r := range rows {
		if r.Arch != "GTX TITAN X" && titan.Speedup <= r.Speedup {
			t.Errorf("TITAN X speedup %.2f not dominant over %s %.2f",
				titan.Speedup, r.Arch, r.Speedup)
		}
		ratio := r.MemGB[0] / r.MemGB[1]
		if ratio < 0.4 || ratio > 0.6 {
			t.Errorf("%s single/double memory ratio %.2f", r.Arch, ratio)
		}
	}
	for _, gpu := range []string{"Tesla K40m", "Quadro K6000", "GTX TITAN X"} {
		if p100.Speedup >= byName[gpu].Speedup {
			t.Errorf("P100 speedup %.2f not the smallest GPU gain (vs %s %.2f)",
				p100.Speedup, gpu, byName[gpu].Speedup)
		}
	}
}

func TestFig1Fidelity(t *testing.T) {
	if testing.Short() {
		t.Skip("runs mini-apps")
	}
	s := NewSession(QuickScale)
	out, err := s.Fig1()
	if err != nil {
		t.Fatal(err)
	}
	// Series: full, mixed, min cuts + three diffs.
	if len(out.Series) != 6 {
		t.Fatalf("fig1 has %d series", len(out.Series))
	}
	full := out.Series[0]
	for _, diff := range out.Series[3:] {
		orders := analysis.OrdersBelow(diff, full)
		if orders < 4.5 {
			t.Errorf("diff %q only %.1f orders below solution", diff.Label, orders)
		}
	}
	// CSV renders.
	var sb strings.Builder
	if err := analysis.WriteCSV(&sb, out.Series...); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Full") {
		t.Error("CSV missing labels")
	}
}

func TestFig2AsymmetryAmplified(t *testing.T) {
	if testing.Short() {
		t.Skip("runs mini-apps")
	}
	s := NewSession(QuickScale)
	out, err := s.Fig2()
	if err != nil {
		t.Fatal(err)
	}
	var minAsym, fullAsym float64
	for _, series := range out.Series {
		switch series.Label {
		case "Min":
			minAsym = series.MaxAbs()
		case "Full":
			fullAsym = series.MaxAbs()
		}
	}
	// Paper Fig 2: reduced precision amplifies the asymmetry.
	if !(minAsym > fullAsym) {
		t.Errorf("min asymmetry %g not above full %g", minAsym, fullAsym)
	}
}

func TestFig3MoreStructureAtHighRes(t *testing.T) {
	if testing.Short() {
		t.Skip("runs mini-apps")
	}
	s := NewSession(QuickScale)
	out, err := s.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "more structure: Min-HiRes") {
		t.Errorf("Min-HiRes did not show more structure:\n%s", out.Text)
	}
}

func TestTable4GNUInversionInOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs mini-apps")
	}
	s := NewSession(QuickScale)
	out, err := s.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.Text, "GNU single > GNU double: yes") {
		t.Errorf("table4 did not reproduce the GNU inversion:\n%s", out.Text)
	}
}

func TestKernelConstantsExported(t *testing.T) {
	if KernelUnvectorized != clamr.KernelCell || KernelVectorized != clamr.KernelFace {
		t.Error("kernel facade constants wrong")
	}
	if _, err := NewThermalBubble(Half, SELFConfig{Elements: 2, Order: 2}); err == nil {
		t.Error("SELF half mode accepted through facade")
	}
	_ = self.MathNative // facade leaves math mode on the internal config
}

func TestFieldDumpThroughRunner(t *testing.T) {
	dam, err := NewDamBreak(Min, CLAMRConfig{NX: 16, NY: 16, MaxLevel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := dam.Run(10); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	n, err := dam.WriteFieldDump(&nopWriter{&buf}, 64, 64, 8)
	if err != nil {
		t.Fatal(err)
	}
	// 64×64 float64 raw = 32 KiB; at 8 bits/value the dump must be ~4 KiB.
	if n > 8*1024 || n < 1024 {
		t.Errorf("compressed dump %d bytes", n)
	}
	if _, err := dam.WriteFieldDump(&nopWriter{&buf}, 64, 64, 1); err == nil {
		t.Error("invalid rate accepted")
	}
}

// nopWriter adapts a strings.Builder to io.Writer for size-only checks.
type nopWriter struct{ b *strings.Builder }

func (w *nopWriter) Write(p []byte) (int, error) { return len(p), nil }
