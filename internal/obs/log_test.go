package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// fixedLogger returns a logger with a deterministic clock and its buffer.
func fixedLogger(level Level) (*Logger, *strings.Builder) {
	var b strings.Builder
	l := &Logger{mu: &sync.Mutex{}, w: &b, level: level,
		nowFn: func() time.Time { return time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC) }}
	return l, &b
}

func TestLoggerLineFormat(t *testing.T) {
	l, b := fixedLogger(LevelInfo)
	l.Info("job done", Str("job", "job-000001"), Str("note", "two words"))
	want := `ts=2026-08-06T12:00:00.000Z level=info msg="job done" job=job-000001 note="two words"` + "\n"
	if got := b.String(); got != want {
		t.Errorf("line = %q, want %q", got, want)
	}
}

func TestLoggerLevelFiltering(t *testing.T) {
	l, b := fixedLogger(LevelWarn)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	out := b.String()
	if strings.Contains(out, "level=debug") || strings.Contains(out, "level=info") {
		t.Errorf("below-threshold lines emitted:\n%s", out)
	}
	if !strings.Contains(out, "level=warn") || !strings.Contains(out, "level=error") {
		t.Errorf("at-or-above-threshold lines missing:\n%s", out)
	}
	if !l.Enabled(LevelError) || l.Enabled(LevelDebug) {
		t.Error("Enabled thresholds wrong")
	}
}

func TestLoggerWithBindsAttrs(t *testing.T) {
	l, b := fixedLogger(LevelInfo)
	jl := l.With(Str("job", "job-000007"))
	jl.Info("attempt start", Str("mode", "min"))
	line := b.String()
	if !strings.Contains(line, "job=job-000007") || !strings.Contains(line, "mode=min") {
		t.Errorf("bound attrs missing: %q", line)
	}
	// The parent logger is unaffected by the child's bindings.
	b.Reset()
	l.Info("plain")
	if strings.Contains(b.String(), "job=") {
		t.Errorf("parent logger inherited child binding: %q", b.String())
	}
}

func TestLoggerValueQuoting(t *testing.T) {
	l, b := fixedLogger(LevelInfo)
	l.Info("m", Str("a", `has"quote`), Str("b", "has=eq"), Str("c", ""), Str("d", "plain"))
	line := b.String()
	for _, want := range []string{`a="has\"quote"`, `b="has=eq"`, `c=""`, " d=plain"} {
		if !strings.Contains(line, want) {
			t.Errorf("line %q missing %q", line, want)
		}
	}
}

func TestLoggerNilSafe(t *testing.T) {
	var l *Logger
	l.Debug("x")
	l.Info("x")
	l.Warn("x")
	l.Error("x")
	if l.With(Str("a", "b")) != nil {
		t.Error("nil.With should stay nil")
	}
	if l.Enabled(LevelError) {
		t.Error("nil logger reports enabled")
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "": LevelInfo,
		"warn": LevelWarn, "warning": LevelWarn, "ERROR": LevelError,
	} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Error("ParseLevel accepted garbage")
	}
}
