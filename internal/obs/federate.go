package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// ParsedMetrics is one parsed Prometheus text scrape: every series with its
// rendered label block, plus the HELP/TYPE declarations keyed by family
// name. The coordinator keeps one per worker and merges fresh ones into the
// fleet view.
type ParsedMetrics struct {
	// Types and Helps key on the family name from # TYPE / # HELP lines.
	Types map[string]string
	Helps map[string]string
	// Series holds every sample line in input order.
	Series []SeriesPoint
}

// SeriesPoint is one sample line. Labels is the raw rendered label block
// including braces ("" when unlabelled); all workers run the same binary,
// so identical series render identically and the raw block is a stable
// aggregation key.
type SeriesPoint struct {
	Name   string
	Labels string
	Value  float64
}

// ParsePrometheus parses text exposition format (version 0.0.4) as written
// by WritePrometheus. Unparseable sample lines are an error — a worker
// serving garbage should read as a failed scrape, not a silent zero.
func ParsePrometheus(r io.Reader) (*ParsedMetrics, error) {
	out := &ParsedMetrics{Types: map[string]string{}, Helps: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				out.Types[fields[2]] = fields[3]
			} else if len(fields) >= 4 && fields[1] == "HELP" {
				out.Helps[fields[2]] = fields[3]
			}
			continue
		}
		sp, err := parseSeriesLine(line)
		if err != nil {
			return nil, err
		}
		out.Series = append(out.Series, sp)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseSeriesLine splits `name{labels} value` / `name value`. The label
// block may itself contain spaces inside quoted values, so the value is
// taken after the closing brace (or the first space when unlabelled).
func parseSeriesLine(line string) (SeriesPoint, error) {
	var name, labels, val string
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.LastIndexByte(line, '}')
		if j < i {
			return SeriesPoint{}, fmt.Errorf("obs: malformed series line %q", line)
		}
		name, labels, val = line[:i], line[i:j+1], strings.TrimSpace(line[j+1:])
	} else {
		i = strings.IndexByte(line, ' ')
		if i < 0 {
			return SeriesPoint{}, fmt.Errorf("obs: malformed series line %q", line)
		}
		name, val = line[:i], strings.TrimSpace(line[i+1:])
	}
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return SeriesPoint{}, fmt.Errorf("obs: series %s: bad value %q", name, val)
	}
	return SeriesPoint{Name: name, Labels: labels, Value: v}, nil
}

// familyOf maps a series name back to its declaring family: histogram
// component series (_bucket/_sum/_count) roll up to the base name their
// TYPE line declares.
func familyOf(name string, types map[string]string) string {
	if _, ok := types[name]; ok {
		return name
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, suf); ok {
			if types[base] == "histogram" {
				return base
			}
		}
	}
	return name
}

// Federate merges scrapes into one exposition: every series summed across
// scrapes by (name, labels) — counters and gauges add, and histogram
// cumulative buckets/sums/counts add per-le, so the merged histogram is
// exactly the union of observations. Stale workers are the caller's
// problem: pass only the scrapes fresh enough to trust.
func Federate(w io.Writer, scrapes []*ParsedMetrics) error {
	type key struct{ name, labels string }
	sums := map[key]float64{}
	types := map[string]string{}
	helps := map[string]string{}
	var order []key
	for _, s := range scrapes {
		if s == nil {
			continue
		}
		for name, typ := range s.Types {
			types[name] = typ
		}
		for name, help := range s.Helps {
			helps[name] = help
		}
		for _, sp := range s.Series {
			k := key{sp.Name, sp.Labels}
			if _, ok := sums[k]; !ok {
				order = append(order, k)
			}
			sums[k] += sp.Value
		}
	}
	sort.Slice(order, func(i, j int) bool {
		fi, fj := familyOf(order[i].name, types), familyOf(order[j].name, types)
		if fi != fj {
			return fi < fj
		}
		if order[i].name != order[j].name {
			return order[i].name < order[j].name
		}
		return order[i].labels < order[j].labels
	})
	var b strings.Builder
	lastFamily := ""
	for _, k := range order {
		fam := familyOf(k.name, types)
		if fam != lastFamily {
			if typ := types[fam]; typ != "" {
				writeHeader(&b, fam, helps[fam], typ)
			}
			lastFamily = fam
		}
		b.WriteString(k.name)
		b.WriteString(k.labels)
		b.WriteByte(' ')
		b.WriteString(formatFloat(sums[key{k.name, k.labels}]))
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}
