package obs

import (
	"bytes"
	"encoding/json"
)

// chromeEvent is one Chrome trace_event record: a "complete" event ("X")
// with microsecond timestamp and duration, the format about:tracing and
// Perfetto load directly.
type chromeEvent struct {
	Name string            `json:"name"`
	Ph   string            `json:"ph"`
	Ts   float64           `json:"ts"`  // µs since trace epoch
	Dur  float64           `json:"dur"` // µs
	Pid  int               `json:"pid"`
	Tid  int               `json:"tid"`
	Args map[string]string `json:"args,omitempty"`
}

// ChromeTrace renders a trace snapshot as Chrome trace_event JSON.
// Complete events on one thread track must nest, but hedged attempts (and
// their grafted worker subtrees) overlap in time as siblings — so each
// direct child of the root gets its own track (tid = that span's index),
// with the root on track 0. Timestamps are offsets from the trace start,
// which keeps the viewer's time axis starting at zero.
func ChromeTrace(td TraceData) []byte {
	events := make([]chromeEvent, 0, len(td.Spans))
	lane := make([]int, len(td.Spans))
	for i, sp := range td.Spans {
		switch {
		case sp.Parent < 0:
			lane[i] = 0
		case sp.Parent == 0:
			lane[i] = i
		default:
			lane[i] = lane[sp.Parent]
		}
		var args map[string]string
		if len(sp.Attrs) > 0 || sp.Open {
			args = make(map[string]string, len(sp.Attrs)+1)
			for _, a := range sp.Attrs {
				args[a.Key] = a.Value
			}
			if sp.Open {
				args["open"] = "true"
			}
		}
		events = append(events, chromeEvent{
			Name: sp.Name,
			Ph:   "X",
			Ts:   float64(sp.StartNs) / 1e3,
			Dur:  float64(sp.EndNs-sp.StartNs) / 1e3,
			Pid:  1,
			Tid:  lane[i],
			Args: args,
		})
	}
	var buf bytes.Buffer
	buf.WriteString(`{"displayTimeUnit":"ms","traceEvents":`)
	b, err := json.Marshal(events)
	if err != nil {
		b = []byte("[]")
	}
	buf.Write(b)
	buf.WriteString("}")
	return buf.Bytes()
}
