package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// checkWellFormed asserts the structural invariants every snapshot must
// satisfy: parents precede children, children nest inside their parents,
// and no span has negative duration.
func checkWellFormed(t *testing.T, td TraceData) {
	t.Helper()
	for i, sp := range td.Spans {
		if sp.DurationNs < 0 {
			t.Errorf("span %d (%s): negative duration %d", i, sp.Name, sp.DurationNs)
		}
		if sp.EndNs < sp.StartNs {
			t.Errorf("span %d (%s): end %d before start %d", i, sp.Name, sp.EndNs, sp.StartNs)
		}
		if i == 0 {
			if sp.Parent != -1 {
				t.Errorf("root parent = %d, want -1", sp.Parent)
			}
			continue
		}
		if sp.Parent < 0 || sp.Parent >= i {
			t.Fatalf("span %d (%s): parent %d does not precede it", i, sp.Name, sp.Parent)
		}
		p := td.Spans[sp.Parent]
		if sp.StartNs < p.StartNs {
			t.Errorf("span %d (%s) starts before its parent %s", i, sp.Name, p.Name)
		}
		if !p.Open && sp.EndNs > p.EndNs {
			t.Errorf("span %d (%s) ends after its closed parent %s", i, sp.Name, p.Name)
		}
	}
}

func TestTraceNestingAndDurations(t *testing.T) {
	tr := NewTrace("job-000001", "job", Str("app", "clamr"))
	root := tr.Root()
	q := root.Child("queue_wait")
	time.Sleep(time.Millisecond)
	q.End()
	att := root.Child("attempt", Str("mode", "min"))
	att.Event("guard_check")
	att.AggregateChild("phase:flux", 100*time.Microsecond)
	time.Sleep(time.Millisecond)
	att.Annotate(Str("outcome", "ok"))
	att.End()
	root.End()

	td := tr.Snapshot()
	checkWellFormed(t, td)
	if td.JobID != "job-000001" {
		t.Errorf("job id = %q", td.JobID)
	}
	names := make([]string, len(td.Spans))
	for i, sp := range td.Spans {
		names[i] = sp.Name
	}
	want := []string{"job", "queue_wait", "attempt", "guard_check", "phase:flux"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("span order = %v, want %v", names, want)
		}
	}
	for _, sp := range td.Spans {
		if sp.Open {
			t.Errorf("span %s still open after End", sp.Name)
		}
	}
	// The aggregate child is anchored at the attempt's start with the
	// accumulated duration, and marked kind=aggregate.
	agg := td.Spans[4]
	if agg.StartNs != td.Spans[2].StartNs {
		t.Errorf("aggregate start %d != parent start %d", agg.StartNs, td.Spans[2].StartNs)
	}
	if agg.DurationNs != int64(100*time.Microsecond) {
		t.Errorf("aggregate duration = %d, want 100µs", agg.DurationNs)
	}
	if !hasAttr(agg.Attrs, "kind", "aggregate") {
		t.Errorf("aggregate child missing kind=aggregate: %+v", agg.Attrs)
	}
	// Root covers everything.
	if td.DurationNs != td.Spans[0].DurationNs {
		t.Errorf("trace duration %d != root duration %d", td.DurationNs, td.Spans[0].DurationNs)
	}
}

func TestAggregateChildClampsToParent(t *testing.T) {
	tr := NewTrace("j", "job")
	att := tr.Root().Child("attempt")
	time.Sleep(time.Millisecond)
	att.End()
	att.AggregateChild("phase:huge", time.Hour) // longer than the parent
	td := tr.Snapshot()
	checkWellFormed(t, td)
	agg := td.Spans[2]
	if agg.EndNs > td.Spans[1].EndNs {
		t.Errorf("aggregate end %d exceeds parent end %d", agg.EndNs, td.Spans[1].EndNs)
	}
}

func TestSnapshotFreezesOpenSpans(t *testing.T) {
	tr := NewTrace("j", "job")
	att := tr.Root().Child("attempt")
	time.Sleep(time.Millisecond)
	td := tr.Snapshot()
	checkWellFormed(t, td)
	for _, sp := range td.Spans {
		if !sp.Open {
			t.Errorf("span %s should be open", sp.Name)
		}
		if sp.DurationNs <= 0 {
			t.Errorf("open span %s frozen with non-positive duration %d", sp.Name, sp.DurationNs)
		}
	}
	att.End()
	tr.Root().End()
	if td2 := tr.Snapshot(); td2.Spans[1].Open {
		t.Error("attempt still open after End")
	}
}

func TestTraceNilSafety(t *testing.T) {
	var tr *Trace
	root := tr.Root() // zero span
	root.Child("x").Event("y")
	root.Annotate(Str("a", "b"))
	root.AggregateChild("z", time.Second)
	root.End()
	td := tr.Snapshot()
	if len(td.Spans) != 0 {
		t.Error("nil trace produced spans")
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := NewTrace("job-42", "job", Str("mode", "min"))
	tr.Root().Child("queue_wait").End()
	tr.Root().End()
	data, err := json.Marshal(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back TraceData
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.JobID != "job-42" || len(back.Spans) != 2 {
		t.Errorf("round trip lost data: %+v", back)
	}
	checkWellFormed(t, back)
}

func hasAttr(attrs []Attr, key, value string) bool {
	for _, a := range attrs {
		if a.Key == key && a.Value == value {
			return true
		}
	}
	return false
}
