package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Level orders log severities.
type Level int32

// Severity levels, least to most severe.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// ParseLevel maps a flag string to a Level.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return LevelDebug, nil
	case "info", "":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	}
	return LevelInfo, fmt.Errorf("obs: unknown log level %q (want debug|info|warn|error)", s)
}

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int32(l))
}

// Logger is a leveled key=value logger. Lines look like
//
//	ts=2026-08-06T12:00:00.000Z level=info msg="job done" job=job-000001 mode=min
//
// A Logger is safe for concurrent use; With derives a child logger whose
// bound attributes (a job ID, a subsystem) prefix every line, which is how
// the scheduler gets job-correlated logs without threading IDs through every
// call. All methods are nil-safe: a nil *Logger discards everything, so
// optional logging costs one nil check.
type Logger struct {
	mu    *sync.Mutex
	w     io.Writer
	level Level
	bound []Attr
	nowFn func() time.Time
}

// NewLogger writes lines at or above level to w.
func NewLogger(w io.Writer, level Level) *Logger {
	return &Logger{mu: &sync.Mutex{}, w: w, level: level, nowFn: time.Now}
}

// With returns a child logger with attrs bound to every line.
func (l *Logger) With(attrs ...Attr) *Logger {
	if l == nil {
		return nil
	}
	child := *l
	child.bound = append(append([]Attr(nil), l.bound...), attrs...)
	return &child
}

// Enabled reports whether level would be emitted.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= l.level
}

// Debug logs at LevelDebug.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.log(LevelDebug, msg, attrs) }

// Info logs at LevelInfo.
func (l *Logger) Info(msg string, attrs ...Attr) { l.log(LevelInfo, msg, attrs) }

// Warn logs at LevelWarn.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.log(LevelWarn, msg, attrs) }

// Error logs at LevelError.
func (l *Logger) Error(msg string, attrs ...Attr) { l.log(LevelError, msg, attrs) }

func (l *Logger) log(level Level, msg string, attrs []Attr) {
	if !l.Enabled(level) {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(l.nowFn().UTC().Format("2006-01-02T15:04:05.000Z"))
	b.WriteString(" level=")
	b.WriteString(level.String())
	b.WriteString(" msg=")
	writeLogValue(&b, msg)
	for _, a := range l.bound {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		writeLogValue(&b, a.Value)
	}
	for _, a := range attrs {
		b.WriteByte(' ')
		b.WriteString(a.Key)
		b.WriteByte('=')
		writeLogValue(&b, a.Value)
	}
	b.WriteByte('\n')
	l.mu.Lock()
	io.WriteString(l.w, b.String())
	l.mu.Unlock()
}

// writeLogValue quotes values that contain spaces, quotes or control
// characters; bare tokens stay unquoted for grep-ability.
func writeLogValue(b *strings.Builder, v string) {
	plain := v != ""
	for _, r := range v {
		if r <= ' ' || r == '"' || r == '=' || r == 0x7f {
			plain = false
			break
		}
	}
	if plain {
		b.WriteString(v)
		return
	}
	fmt.Fprintf(b, "%q", v)
}
