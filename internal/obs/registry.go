// Package obs is the repository's dependency-free observability layer:
// a metrics registry (counters, gauges, fixed-bucket histograms) exposed in
// the Prometheus text format, a lightweight span/event trace model for job
// timelines, and a leveled key=value structured logger. The serving stack
// (internal/serve, cmd/precisiond) and both mini-app step loops thread their
// instrumentation through it.
//
// Hot-path discipline: instruments are resolved once (a map lookup under a
// lock at construction) and then updated with plain atomics — Counter.Add,
// Gauge.Set and Histogram.Observe allocate nothing and take no locks, so a
// solver step loop can observe every step without perturbing the
// AllocBytes/AllocCount accounting the paper's tables depend on.
// Exposition walks the registry under its lock at scrape time; scrapes are
// rare and never on the solver path.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Default is the process-wide registry: the one cmd/precisiond serves at
// GET /metrics and the one the mini-app step loops pre-resolve their
// instruments from.
var Default = NewRegistry()

// Metric types, as the Prometheus text format names them. typeFloatCounter
// is internal — it exposes as "counter" but stores float64 bits, for
// quantities that accumulate fractionally (joules, dollars).
const (
	typeCounter      = "counter"
	typeGauge        = "gauge"
	typeHistogram    = "histogram"
	typeFloatCounter = "floatcounter"
)

// Registry holds metric families and scrape-time collectors.
type Registry struct {
	mu         sync.Mutex
	families   map[string]*family
	collectors []CollectorFunc
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// family is one named metric with a fixed label schema; children are the
// per-label-value instruments.
type family struct {
	name, help string
	typ        string
	labels     []string
	bounds     []float64 // histograms only

	mu       sync.Mutex
	children map[string]*child
	order    []string
}

// child is one instrument instance: exactly one of counter/gauge/histogram
// storage is live, per the family type.
type child struct {
	labelValues []string
	counter     atomic.Uint64
	gauge       atomic.Int64
	hist        *Histogram
}

// Counter is a monotonically increasing count. The zero-cost handle callers
// keep after resolving it once from the registry.
type Counter struct{ c *child }

// Add increments the counter by n.
func (c Counter) Add(n uint64) {
	if c.c != nil {
		c.c.counter.Add(n)
	}
}

// Inc increments the counter by one.
func (c Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c Counter) Value() uint64 {
	if c.c == nil {
		return 0
	}
	return c.c.counter.Load()
}

// Gauge is a settable instantaneous value.
type Gauge struct{ c *child }

// Set stores v.
func (g Gauge) Set(v int64) {
	if g.c != nil {
		g.c.gauge.Store(v)
	}
}

// Add moves the gauge by delta (negative to decrease).
func (g Gauge) Add(delta int64) {
	if g.c != nil {
		g.c.gauge.Add(delta)
	}
}

// Value returns the current value.
func (g Gauge) Value() int64 {
	if g.c == nil {
		return 0
	}
	return g.c.gauge.Load()
}

// FloatCounter is a monotonically increasing float64 total — the counter
// form for quantities that accumulate in fractions, like modeled joules or
// dollars. Add is a CAS loop on float64 bits (the Histogram.sum technique):
// lock-free and allocation-free.
type FloatCounter struct{ c *child }

// Add accumulates v (must be >= 0 to keep the counter monotonic).
func (c FloatCounter) Add(v float64) {
	if c.c == nil {
		return
	}
	for {
		old := c.c.counter.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if c.c.counter.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current total.
func (c FloatCounter) Value() float64 {
	if c.c == nil {
		return 0
	}
	return math.Float64frombits(c.c.counter.Load())
}

// Histogram is a fixed-bucket distribution. Buckets are cumulative at
// exposition; Observe is a linear scan over the (small, fixed) bounds plus
// three atomic updates — no locks, no allocation.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value. Values equal to a bucket's upper bound land in
// that bucket (Prometheus `le` semantics).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the seconds elapsed since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// CounterVec, GaugeVec and HistogramVec are label-schema'd families whose
// With method resolves (creating on first use) the child for one label-value
// tuple. Resolution locks and may allocate — do it once, keep the handle.
type CounterVec struct{ f *family }

// With resolves the child counter for the given label values. On a zero
// CounterVec (no registry configured) it returns a no-op handle.
func (v CounterVec) With(labelValues ...string) Counter {
	if v.f == nil {
		return Counter{}
	}
	return Counter{c: v.f.child(labelValues)}
}

// GaugeVec is the gauge form of CounterVec.
type GaugeVec struct{ f *family }

// With resolves the child gauge for the given label values; no-op handle on
// a zero GaugeVec.
func (v GaugeVec) With(labelValues ...string) Gauge {
	if v.f == nil {
		return Gauge{}
	}
	return Gauge{c: v.f.child(labelValues)}
}

// FloatCounterVec is the float-counter form of CounterVec.
type FloatCounterVec struct{ f *family }

// With resolves the child float counter for the given label values; no-op
// handle on a zero FloatCounterVec.
func (v FloatCounterVec) With(labelValues ...string) FloatCounter {
	if v.f == nil {
		return FloatCounter{}
	}
	return FloatCounter{c: v.f.child(labelValues)}
}

// HistogramVec is the histogram form of CounterVec.
type HistogramVec struct{ f *family }

// With resolves the child histogram for the given label values; nil (which
// Observe tolerates) on a zero HistogramVec.
func (v HistogramVec) With(labelValues ...string) *Histogram {
	if v.f == nil {
		return nil
	}
	return v.f.child(labelValues).hist
}

// child resolves one label tuple, creating its instrument on first use.
func (f *family) child(labelValues []string) *child {
	if len(labelValues) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %s wants %d label values, got %d", f.name, len(f.labels), len(labelValues)))
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.children[key]; ok {
		return c
	}
	c := &child{labelValues: append([]string(nil), labelValues...)}
	if f.typ == typeHistogram {
		c.hist = newHistogram(f.bounds)
	}
	f.children[key] = c
	f.order = append(f.order, key)
	return c
}

// register returns (creating if needed) the family, enforcing that a name
// is only ever registered with one type and label schema.
func (r *Registry) register(name, help, typ string, labels []string, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: metric %s re-registered as %s with %d labels (have %s with %d)",
				name, typ, len(labels), f.typ, len(f.labels)))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: metric %s re-registered with label %q (have %q)", name, labels[i], f.labels[i]))
			}
		}
		return f
	}
	f := &family{
		name: name, help: help, typ: typ,
		labels:   append([]string(nil), labels...),
		bounds:   append([]float64(nil), bounds...),
		children: map[string]*child{},
	}
	r.families[name] = f
	return f
}

// Counter registers (or finds) an unlabelled counter.
func (r *Registry) Counter(name, help string) Counter {
	return Counter{c: r.register(name, help, typeCounter, nil, nil).child(nil)}
}

// CounterVec registers (or finds) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) CounterVec {
	return CounterVec{f: r.register(name, help, typeCounter, labels, nil)}
}

// Gauge registers (or finds) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	return Gauge{c: r.register(name, help, typeGauge, nil, nil).child(nil)}
}

// GaugeVec registers (or finds) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) GaugeVec {
	return GaugeVec{f: r.register(name, help, typeGauge, labels, nil)}
}

// Histogram registers (or finds) an unlabelled histogram with the given
// bucket upper bounds (strictly increasing; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, typeHistogram, nil, bounds).child(nil).hist
}

// HistogramVec registers (or finds) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) HistogramVec {
	return HistogramVec{f: r.register(name, help, typeHistogram, labels, bounds)}
}

// FloatCounter registers (or finds) an unlabelled float counter.
func (r *Registry) FloatCounter(name, help string) FloatCounter {
	return FloatCounter{c: r.register(name, help, typeFloatCounter, nil, nil).child(nil)}
}

// FloatCounterVec registers (or finds) a labelled float counter family.
func (r *Registry) FloatCounterVec(name, help string, labels ...string) FloatCounterVec {
	return FloatCounterVec{f: r.register(name, help, typeFloatCounter, labels, nil)}
}

// Sample is one scrape-time data point contributed by a collector.
type Sample struct {
	Name  string
	Help  string
	Type  string // "counter" or "gauge"
	Value float64
	// LabelPairs is k1, v1, k2, v2, …
	LabelPairs []string
}

// CollectorFunc contributes samples computed at scrape time (queue depth,
// fault-injection counters, anything whose source of truth lives elsewhere).
type CollectorFunc func(emit func(Sample))

// Collect registers a scrape-time collector.
func (r *Registry) Collect(fn CollectorFunc) {
	r.mu.Lock()
	r.collectors = append(r.collectors, fn)
	r.mu.Unlock()
}

// Bucket presets. DurationBuckets suit request/run latencies from
// microseconds to minutes; StepBuckets suit solver steps; FsyncBuckets suit
// journal fsync latency.
var (
	DurationBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300}
	StepBuckets     = []float64{1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 0.01, 0.03, 0.1, 0.3, 1, 3}
	FsyncBuckets    = []float64{1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 5e-3, 0.01, 0.05, 0.1, 0.5, 1}
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, children sorted by label
// values, histograms as cumulative _bucket/_sum/_count series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	collectors := append([]CollectorFunc(nil), r.collectors...)
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.write(&b)
	}
	writeCollected(&b, collectors)
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler serves WritePrometheus over HTTP.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

func (f *family) write(b *strings.Builder) {
	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	children := make([]*child, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()
	if len(children) == 0 {
		return
	}

	exposTyp := f.typ
	if exposTyp == typeFloatCounter { // exposes as a plain counter
		exposTyp = typeCounter
	}
	writeHeader(b, f.name, f.help, exposTyp)
	for _, c := range children {
		switch f.typ {
		case typeCounter:
			writeSample(b, f.name, f.labels, c.labelValues, "", "", formatUint(c.counter.Load()))
		case typeFloatCounter:
			writeSample(b, f.name, f.labels, c.labelValues, "", "", formatFloat(math.Float64frombits(c.counter.Load())))
		case typeGauge:
			writeSample(b, f.name, f.labels, c.labelValues, "", "", strconv.FormatInt(c.gauge.Load(), 10))
		case typeHistogram:
			h := c.hist
			cum := uint64(0)
			for i, bound := range h.bounds {
				cum += h.counts[i].Load()
				writeSample(b, f.name+"_bucket", f.labels, c.labelValues, "le", formatFloat(bound), formatUint(cum))
			}
			cum += h.counts[len(h.bounds)].Load()
			writeSample(b, f.name+"_bucket", f.labels, c.labelValues, "le", "+Inf", formatUint(cum))
			writeSample(b, f.name+"_sum", f.labels, c.labelValues, "", "", formatFloat(h.Sum()))
			writeSample(b, f.name+"_count", f.labels, c.labelValues, "", "", formatUint(h.count.Load()))
		}
	}
}

// writeCollected renders collector samples grouped by metric name (one
// HELP/TYPE header per name, in first-emitted order).
func writeCollected(b *strings.Builder, collectors []CollectorFunc) {
	var order []string
	grouped := map[string][]Sample{}
	for _, fn := range collectors {
		fn(func(s Sample) {
			if _, ok := grouped[s.Name]; !ok {
				order = append(order, s.Name)
			}
			grouped[s.Name] = append(grouped[s.Name], s)
		})
	}
	sort.Strings(order)
	for _, name := range order {
		samples := grouped[name]
		writeHeader(b, name, samples[0].Help, samples[0].Type)
		for _, s := range samples {
			var labels, values []string
			for i := 0; i+1 < len(s.LabelPairs); i += 2 {
				labels = append(labels, s.LabelPairs[i])
				values = append(values, s.LabelPairs[i+1])
			}
			writeSample(b, name, labels, values, "", "", formatFloat(s.Value))
		}
	}
}

func writeHeader(b *strings.Builder, name, help, typ string) {
	if help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", name, escapeHelp(help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", name, typ)
}

// writeSample writes one series line; extraK/extraV append one more label
// (the histogram `le`).
func writeSample(b *strings.Builder, name string, labels, values []string, extraK, extraV, value string) {
	b.WriteString(name)
	if len(labels) > 0 || extraK != "" {
		b.WriteByte('{')
		first := true
		for i := range labels {
			if !first {
				b.WriteByte(',')
			}
			first = false
			b.WriteString(labels[i])
			b.WriteString(`="`)
			b.WriteString(escapeLabel(values[i]))
			b.WriteByte('"')
		}
		if extraK != "" {
			if !first {
				b.WriteByte(',')
			}
			b.WriteString(extraK)
			b.WriteString(`="`)
			b.WriteString(escapeLabel(extraV))
			b.WriteByte('"')
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// StepDuration pre-resolves the shared per-step duration histogram for one
// mini-app at one precision mode. Both solvers call this once at
// construction so their step loops observe into Default without resolving
// (or allocating) anything per step.
func StepDuration(app, mode string) *Histogram {
	return Default.HistogramVec(
		"miniapp_step_duration_seconds",
		"Wall-clock duration of one solver step.",
		StepBuckets, "app", "mode",
	).With(app, mode)
}
