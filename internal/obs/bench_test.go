package obs

import (
	"strings"
	"testing"
	"time"
)

// workerSideTrace builds the remote snapshot a typical lease ships back:
// root, solve with three phase aggregates, checkpoint.
func workerSideTrace() TraceData {
	tr := NewTrace("job-bench", "worker", Str("worker", "worker-001"))
	solve := tr.Root().Child("solve", Str("mode", "mixed"))
	for _, p := range []string{"hydro", "amr", "reduce"} {
		solve.AggregateChild("phase:"+p, time.Millisecond)
	}
	solve.End()
	tr.Root().AggregateChild("checkpoint", time.Millisecond, Str("bytes", "4096"))
	tr.Root().End()
	return tr.Snapshot()
}

// BenchmarkObsJobTrace is the per-job trace overhead on the scheduler's hot
// path: the full span lifecycle a remotely-executed job pays — root, queue
// wait, attempt with annotations, the worker subtree graft, and the final
// snapshot that lands in the result payload. The bench-gate fails if this
// regresses >20% in allocs/op: always-on tracing must stay cheap.
func BenchmarkObsJobTrace(b *testing.B) {
	remote := workerSideTrace()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := NewTrace("job-000001", "job", Str("app", "clamr"), Str("mode", "mixed"))
		qw := tr.Root().Child("queue_wait")
		qw.End()
		att := tr.Root().Child("attempt", Str("mode", "mixed"), Str("n", "1"))
		att.Event("upload", Str("worker", "worker-001"), Str("bytes", "8192"))
		att.SetRemote(remote)
		att.Annotate(Str("outcome", "ok"), Str("joules", "12.5"), Str("cost_dollars", "0.001"))
		att.End()
		tr.Root().End()
		if td := tr.Snapshot(); len(td.Spans) == 0 {
			b.Fatal("empty snapshot")
		}
	}
}

// BenchmarkObsStitchSnapshot isolates the graft: snapshotting a trace whose
// attempt carries a worker subtree (re-anchor, clamp, parent remap).
func BenchmarkObsStitchSnapshot(b *testing.B) {
	remote := workerSideTrace()
	tr := NewTrace("job-000001", "job")
	att := tr.Root().Child("attempt")
	att.SetRemote(remote)
	att.End()
	tr.Root().End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if td := tr.Snapshot(); len(td.Spans) < len(remote.Spans) {
			b.Fatal("graft missing")
		}
	}
}

// BenchmarkObsFederate is one GET /metrics/fleet render: merge four
// worker scrapes of a realistic exposition (counters, a histogram, float
// counters) and write the summed text form.
func BenchmarkObsFederate(b *testing.B) {
	mk := func() *ParsedMetrics {
		r := NewRegistry()
		lv := r.CounterVec("precision_worker_leases_total", "Leases.", "outcome")
		lv.With("ok").Add(120)
		lv.With("error").Add(3)
		h := r.HistogramVec("precision_worker_run_seconds", "Runs.", DurationBuckets, "app", "mode")
		for _, v := range []float64{0.01, 0.3, 1.2, 8, 40} {
			h.With("clamr", "mixed").Observe(v)
		}
		r.Counter("precision_worker_heartbeats_total", "Beats.").Add(500)
		r.FloatCounter("precision_worker_joules_total", "Joules.").Add(123.5)
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			b.Fatal(err)
		}
		pm, err := ParsePrometheus(strings.NewReader(sb.String()))
		if err != nil {
			b.Fatal(err)
		}
		return pm
	}
	scrapes := []*ParsedMetrics{mk(), mk(), mk(), mk()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var sb strings.Builder
		if err := Federate(&sb, scrapes); err != nil {
			b.Fatal(err)
		}
		if sb.Len() == 0 {
			b.Fatal("empty merge")
		}
	}
}
