package obs

import (
	"sync"
	"time"
)

// Trace is one job's span timeline: a root span covering the job's whole
// lifetime plus nested child spans for queue wait, execution attempts,
// retry backoffs and escalations. Offsets are measured against a single
// monotonic anchor taken at NewTrace, so span arithmetic is immune to wall
// clock steps; StartedAt anchors the timeline in wall time for display.
//
// Traces are cheap (a handful of small structs per job, mutated under one
// mutex on job state transitions — never on the solver step path) and are
// therefore always on.
type Trace struct {
	mu        sync.Mutex
	jobID     string
	startedAt time.Time // wall anchor
	anchor    time.Time // monotonic anchor (same instant)
	spans     []spanRec
}

type spanRec struct {
	name    string
	parent  int // index into spans; -1 for the root
	startNs int64
	endNs   int64 // 0 while open
	attrs   []Attr
	remote  *TraceData // grafted remote subtree (worker-side spans), nil for most spans
}

// Attr is one span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Str builds a string attribute.
func Str(key, value string) Attr { return Attr{Key: key, Value: value} }

// Span is a handle onto one span of a trace.
type Span struct {
	t *Trace
	i int
}

// NewTrace starts a trace whose root span is open from now.
func NewTrace(jobID, rootName string, attrs ...Attr) *Trace {
	now := time.Now()
	t := &Trace{jobID: jobID, startedAt: now, anchor: now}
	t.spans = append(t.spans, spanRec{name: rootName, parent: -1, attrs: attrs})
	return t
}

func (t *Trace) nowNs() int64 { return int64(time.Since(t.anchor)) }

// Root returns the root span.
func (t *Trace) Root() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, i: 0}
}

// Child opens a child span starting now.
func (s Span) Child(name string, attrs ...Attr) Span {
	if s.t == nil {
		return Span{}
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	t.spans = append(t.spans, spanRec{name: name, parent: s.i, startNs: t.nowNs(), attrs: attrs})
	return Span{t: t, i: len(t.spans) - 1}
}

// Event records an instantaneous child span (start == end == now).
func (s Span) Event(name string, attrs ...Attr) {
	if s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.nowNs()
	t.spans = append(t.spans, spanRec{name: name, parent: s.i, startNs: now, endNs: now, attrs: attrs})
}

// AggregateChild records a child span carrying a duration accumulated
// elsewhere (a metrics.Timer phase bucket): it is anchored at the parent's
// start and clamped inside the parent, and marked kind=aggregate so readers
// do not mistake it for a contiguous interval.
func (s Span) AggregateChild(name string, d time.Duration, attrs ...Attr) {
	if s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	p := t.spans[s.i]
	start := p.startNs
	end := start + int64(d)
	if pEnd := p.endNs; pEnd > 0 && end > pEnd {
		end = pEnd
	}
	if end < start {
		end = start
	}
	attrs = append(attrs, Attr{Key: "kind", Value: "aggregate"})
	t.spans = append(t.spans, spanRec{name: name, parent: s.i, startNs: start, endNs: end, attrs: attrs})
}

// PrefixChild records a child span for an interval that ended just now and
// lasted d: it is anchored d before the current instant (clamped to the
// parent's start) and closed at now. Used for waits measured elsewhere and
// reported after the fact — a remote lease wait recorded once the lease is
// granted.
func (s Span) PrefixChild(name string, d time.Duration, attrs ...Attr) {
	if s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	defer t.mu.Unlock()
	end := t.nowNs()
	start := end - int64(d)
	if pStart := t.spans[s.i].startNs; start < pStart {
		start = pStart
	}
	if start > end {
		start = end
	}
	t.spans = append(t.spans, spanRec{name: name, parent: s.i, startNs: start, endNs: end, attrs: attrs})
}

// Annotate appends attributes to the span.
func (s Span) Annotate(attrs ...Attr) {
	if s.t == nil {
		return
	}
	s.t.mu.Lock()
	s.t.spans[s.i].attrs = append(s.t.spans[s.i].attrs, attrs...)
	s.t.mu.Unlock()
}

// SetRemote grafts a remote subtree (a worker's own trace of the leased
// run) under the span. Replacement semantics: a later snapshot — a
// heartbeat's partial trace superseded by the final one on complete —
// overwrites the previous graft, so incremental shipping is idempotent.
// The remote timeline is re-anchored at Snapshot time using the wall-clock
// delta between the two trace anchors; worker spans live outside the
// deterministic result hash, so modest cross-node clock skew only shifts
// display offsets.
func (s Span) SetRemote(td TraceData) {
	if s.t == nil {
		return
	}
	cp := td
	cp.Spans = append([]SpanData(nil), td.Spans...)
	s.t.mu.Lock()
	s.t.spans[s.i].remote = &cp
	s.t.mu.Unlock()
}

// End closes the span now. Ending an already-ended span is a no-op, so a
// terminal path can close the root unconditionally.
func (s Span) End() {
	if s.t == nil {
		return
	}
	t := s.t
	t.mu.Lock()
	if t.spans[s.i].endNs == 0 {
		t.spans[s.i].endNs = t.nowNs()
	}
	t.mu.Unlock()
}

// TraceData is the JSON form of a trace: the wall-time anchor plus every
// span with monotonic offsets from it.
type TraceData struct {
	JobID      string     `json:"job_id"`
	StartedAt  time.Time  `json:"started_at"`
	DurationNs int64      `json:"duration_ns"`
	Spans      []SpanData `json:"spans"`
}

// SpanData is one span. Parent is an index into TraceData.Spans (-1 for the
// root). An open span (job still in flight) has Open=true and EndNs frozen
// at the snapshot instant.
type SpanData struct {
	Name       string `json:"name"`
	Parent     int    `json:"parent"`
	StartNs    int64  `json:"start_ns"`
	EndNs      int64  `json:"end_ns"`
	DurationNs int64  `json:"duration_ns"`
	Open       bool   `json:"open,omitempty"`
	Attrs      []Attr `json:"attrs,omitempty"`
}

// Snapshot freezes the trace for serialization. Safe to call on a live
// trace; open spans are reported up to the snapshot instant. Remote
// subtrees grafted with SetRemote are stitched in after the local spans,
// re-anchored by the wall-clock delta between the two traces and clamped
// inside their host span so skewed worker clocks cannot push spans outside
// the attempt that ran them.
func (t *Trace) Snapshot() TraceData {
	if t == nil {
		return TraceData{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	now := t.nowNs()
	out := TraceData{JobID: t.jobID, StartedAt: t.startedAt, Spans: make([]SpanData, len(t.spans))}
	for i, sp := range t.spans {
		end, open := sp.endNs, false
		if end == 0 { // still open: freeze at the snapshot instant
			end, open = now, true
		}
		out.Spans[i] = SpanData{
			Name:       sp.name,
			Parent:     sp.parent,
			StartNs:    sp.startNs,
			EndNs:      end,
			DurationNs: end - sp.startNs,
			Open:       open,
			Attrs:      append([]Attr(nil), sp.attrs...),
		}
	}
	for i, sp := range t.spans {
		if sp.remote != nil {
			graftRemote(&out, i, sp.remote)
		}
	}
	if len(out.Spans) > 0 {
		out.DurationNs = out.Spans[0].DurationNs
	}
	return out
}

func clampNs(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// graftRemote appends one remote subtree under host span hostIdx:
// offsets shift by the wall-clock anchor delta and clamp inside the host
// span; parent indices remap so the remote root hangs off the host.
func graftRemote(out *TraceData, hostIdx int, rem *TraceData) {
	delta := rem.StartedAt.Sub(out.StartedAt).Nanoseconds()
	host := out.Spans[hostIdx]
	base := len(out.Spans)
	for _, rs := range rem.Spans {
		start := clampNs(rs.StartNs+delta, host.StartNs, host.EndNs)
		end := clampNs(rs.EndNs+delta, host.StartNs, host.EndNs)
		if end < start {
			end = start
		}
		parent := hostIdx
		if rs.Parent >= 0 {
			parent = base + rs.Parent
		}
		out.Spans = append(out.Spans, SpanData{
			Name:       rs.Name,
			Parent:     parent,
			StartNs:    start,
			EndNs:      end,
			DurationNs: end - start,
			Open:       rs.Open,
			Attrs:      append(append([]Attr(nil), rs.Attrs...), Attr{Key: "node", Value: "worker"}),
		})
	}
}
