package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// remoteTrace builds a worker-side TraceData by hand: a root "worker" span
// [0, rootNs] with one "solve" child [childStart, childEnd], anchored at
// startedAt. Hand-built so tests control the clock skew exactly.
func remoteTrace(startedAt time.Time, rootNs, childStart, childEnd int64) TraceData {
	return TraceData{
		JobID:     "job-1",
		StartedAt: startedAt,
		Spans: []SpanData{
			{Name: "worker", Parent: -1, StartNs: 0, EndNs: rootNs, DurationNs: rootNs},
			{Name: "solve", Parent: 0, StartNs: childStart, EndNs: childEnd,
				DurationNs: childEnd - childStart, Attrs: []Attr{Str("mode", "min")}},
		},
	}
}

func findSpan(td TraceData, name string) (SpanData, int, bool) {
	for i, sp := range td.Spans {
		if sp.Name == name {
			return sp, i, true
		}
	}
	return SpanData{}, -1, false
}

func attrValue(sp SpanData, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

func TestSetRemoteGraftsUnderHostSpan(t *testing.T) {
	tr := NewTrace("job-1", "job")
	att := tr.Root().Child("attempt")
	time.Sleep(5 * time.Millisecond)
	att.End()
	snap := tr.Snapshot()
	attData := snap.Spans[1]

	// Remote anchored 1ms after the local trace started: offsets shift by
	// the wall delta so both clocks land on one timeline.
	delta := int64(time.Millisecond)
	att.SetRemote(remoteTrace(snap.StartedAt.Add(time.Duration(delta)), 2e6, 5e5, 1e6))

	out := tr.Snapshot()
	if len(out.Spans) != 4 {
		t.Fatalf("stitched trace has %d spans, want 4 (root, attempt, worker, solve)", len(out.Spans))
	}
	workerSpan, wi, ok := findSpan(out, "worker")
	if !ok {
		t.Fatal("no grafted worker span")
	}
	if workerSpan.Parent != 1 {
		t.Fatalf("worker span parent = %d, want the attempt span (1)", workerSpan.Parent)
	}
	if attrValue(workerSpan, "node") != "worker" {
		t.Fatalf("grafted span missing node=worker attr: %+v", workerSpan.Attrs)
	}
	solve, _, ok := findSpan(out, "solve")
	if !ok {
		t.Fatal("no grafted solve span")
	}
	if solve.Parent != wi {
		t.Fatalf("solve parent = %d, want remapped worker index %d", solve.Parent, wi)
	}
	if attrValue(solve, "mode") != "min" {
		t.Fatal("remote attrs not preserved")
	}
	// Re-anchored: solve started 0.5ms into the remote trace, which itself
	// started delta after ours — its local offset must be 0.5ms + delta
	// (unless clamped, and here the attempt span is ~5ms wide so it isn't).
	if want := int64(5e5) + delta; solve.StartNs != want {
		t.Fatalf("solve StartNs = %d, want re-anchored %d", solve.StartNs, want)
	}
	if solve.StartNs < attData.StartNs || solve.EndNs > attData.EndNs {
		t.Fatalf("grafted span [%d,%d] outside host attempt [%d,%d]",
			solve.StartNs, solve.EndNs, attData.StartNs, attData.EndNs)
	}
}

func TestSetRemoteClampsSkewedClocks(t *testing.T) {
	tr := NewTrace("job-1", "job")
	att := tr.Root().Child("attempt")
	time.Sleep(2 * time.Millisecond)
	att.End()
	snap := tr.Snapshot()
	host := snap.Spans[1]

	// A worker clock an hour ahead would graft far outside the attempt;
	// clamping pins it inside so skew cannot corrupt the timeline.
	att.SetRemote(remoteTrace(snap.StartedAt.Add(time.Hour), 2e6, 5e5, 1e6))
	out := tr.Snapshot()
	for _, sp := range out.Spans[2:] {
		if sp.StartNs < host.StartNs || sp.EndNs > host.EndNs || sp.EndNs < sp.StartNs {
			t.Fatalf("span %q [%d,%d] not clamped into host [%d,%d]",
				sp.Name, sp.StartNs, sp.EndNs, host.StartNs, host.EndNs)
		}
	}
}

func TestSetRemoteReplacesPreviousSnapshot(t *testing.T) {
	tr := NewTrace("job-1", "job")
	att := tr.Root().Child("attempt")
	att.End()
	base := tr.Snapshot().StartedAt

	// Heartbeat partials stream in one after another; only the latest
	// snapshot may survive or spans would duplicate every beat.
	att.SetRemote(remoteTrace(base, 1e6, 1e5, 2e5))
	att.SetRemote(remoteTrace(base, 2e6, 1e5, 9e5))
	out := tr.Snapshot()
	if len(out.Spans) != 4 {
		t.Fatalf("after two SetRemote calls: %d spans, want 4 (replacement, not accumulation)", len(out.Spans))
	}
}

func TestSetRemoteNilSafe(t *testing.T) {
	var s Span
	s.SetRemote(TraceData{}) // must not panic
}

func TestChromeTraceLanesAndUnits(t *testing.T) {
	td := TraceData{
		JobID: "job-1",
		Spans: []SpanData{
			{Name: "job", Parent: -1, StartNs: 0, EndNs: 10e6, DurationNs: 10e6},
			{Name: "attempt", Parent: 0, StartNs: 1e6, EndNs: 5e6, DurationNs: 4e6},
			{Name: "hedge_attempt", Parent: 0, StartNs: 2e6, EndNs: 6e6, DurationNs: 4e6},
			{Name: "solve", Parent: 1, StartNs: 1e6, EndNs: 4e6, DurationNs: 3e6,
				Attrs: []Attr{Str("mode", "min")}, Open: true},
		},
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			Ts   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Pid  int               `json:"pid"`
			Tid  int               `json:"tid"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(ChromeTrace(td), &doc); err != nil {
		t.Fatalf("ChromeTrace emitted invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("%d events, want 4", len(doc.TraceEvents))
	}
	lanes := map[string]int{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q ph = %q, want complete event X", ev.Name, ev.Ph)
		}
		lanes[ev.Name] = ev.Tid
	}
	// Overlapping sibling subtrees (attempt [1,5]ms vs hedge [2,6]ms) would
	// violate X-event nesting on one track; each direct child of the root
	// gets its own lane, descendants inherit.
	if lanes["attempt"] == lanes["hedge_attempt"] {
		t.Fatalf("overlapping siblings share lane %d", lanes["attempt"])
	}
	if lanes["solve"] != lanes["attempt"] {
		t.Fatalf("solve lane %d, want its subtree root's lane %d", lanes["solve"], lanes["attempt"])
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "solve" {
			if ev.Ts != 1e3 || ev.Dur != 3e3 {
				t.Fatalf("solve ts/dur = %v/%v µs, want 1000/3000", ev.Ts, ev.Dur)
			}
			if ev.Args["mode"] != "min" || ev.Args["open"] != "true" {
				t.Fatalf("solve args = %v, want mode + open flag", ev.Args)
			}
		}
	}
}
