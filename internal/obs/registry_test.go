package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "help")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
	// Re-registering the same name+schema returns the same instrument.
	if got := r.Counter("c_total", "help").Value(); got != 5 {
		t.Errorf("re-resolved counter = %d, want 5", got)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h_seconds", "help", []float64{1, 2, 5})
	// Prometheus `le` semantics: a value equal to an upper bound lands in
	// that bucket, not the next one.
	for _, v := range []float64{0.5, 1, 1.5, 2, 5, 7} {
		h.Observe(v)
	}
	want := []uint64{2, 2, 1, 1} // (≤1)=0.5,1  (≤2)=1.5,2  (≤5)=5  (+Inf)=7
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	if got := h.Sum(); got != 17.0 {
		t.Errorf("sum = %g, want 17", got)
	}
}

func TestHistogramNilSafe(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveSince(time.Now())
	if h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil histogram reported observations")
	}
}

func TestVecZeroValueSafe(t *testing.T) {
	var cv CounterVec
	cv.With("x").Inc() // must not panic
	var gv GaugeVec
	gv.With("x").Set(1)
	var hv HistogramVec
	hv.With("x").Observe(1)
	var c Counter
	c.Inc()
	var g Gauge
	g.Add(1)
}

func TestRegisterPanicsOnSchemaMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "help")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m", "help")
}

// TestPrometheusGolden pins the full text exposition: family ordering,
// label rendering, cumulative histogram series, collector output.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_jobs_total", "Total jobs.").Add(3)
	cv := r.CounterVec("t_runs_total", "Runs by mode.", "mode")
	cv.With("min").Add(2)
	cv.With("full").Inc()
	r.Gauge("t_depth", "Queue depth.").Set(7)
	h := r.Histogram("t_lat_seconds", "Latency.", []float64{0.5, 2})
	for _, v := range []float64{0.25, 0.5, 0.75, 4} {
		h.Observe(v)
	}
	r.Collect(func(emit func(Sample)) {
		emit(Sample{Name: "t_extra", Help: "Extra.", Type: "gauge",
			Value: 2.5, LabelPairs: []string{"k", "v"}})
	})

	want := `# HELP t_depth Queue depth.
# TYPE t_depth gauge
t_depth 7
# HELP t_jobs_total Total jobs.
# TYPE t_jobs_total counter
t_jobs_total 3
# HELP t_lat_seconds Latency.
# TYPE t_lat_seconds histogram
t_lat_seconds_bucket{le="0.5"} 2
t_lat_seconds_bucket{le="2"} 3
t_lat_seconds_bucket{le="+Inf"} 4
t_lat_seconds_sum 5.5
t_lat_seconds_count 4
# HELP t_runs_total Runs by mode.
# TYPE t_runs_total counter
t_runs_total{mode="full"} 1
t_runs_total{mode="min"} 2
# HELP t_extra Extra.
# TYPE t_extra gauge
t_extra{k="v"} 2.5
`
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("esc_total", "h", "msg").With("say \"hi\"\nback\\slash").Inc()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `esc_total{msg="say \"hi\"\nback\\slash"} 1` + "\n"
	if !strings.Contains(b.String(), want) {
		t.Errorf("escaped label line missing:\n%s", b.String())
	}
}

// TestRegistryConcurrency hammers resolution, updates and scrapes from many
// goroutines; run under -race this is the data-race check, and the final
// counts must still be exact.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "h")
	h := r.Histogram("conc_seconds", "h", DurationBuckets)
	cv := r.CounterVec("conc_modes_total", "h", "mode")

	const goroutines, iters = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			mode := []string{"min", "mixed", "full"}[g%3]
			for i := 0; i < iters; i++ {
				c.Inc()
				h.Observe(float64(i) * 1e-4)
				cv.With(mode).Inc() // concurrent resolution of shared children
			}
		}(g)
	}
	// Concurrent scrapes must not race the writers.
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	scrapeWG.Wait()

	if got := c.Value(); got != goroutines*iters {
		t.Errorf("counter = %d, want %d", got, goroutines*iters)
	}
	if got := h.Count(); got != goroutines*iters {
		t.Errorf("histogram count = %d, want %d", got, goroutines*iters)
	}
	total := cv.With("min").Value() + cv.With("mixed").Value() + cv.With("full").Value()
	if total != goroutines*iters {
		t.Errorf("labelled counters sum = %d, want %d", total, goroutines*iters)
	}
}

// TestHotPathAllocFree pins the zero-allocation contract the solver step
// loops rely on: updating a resolved instrument never allocates.
func TestHotPathAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "h")
	g := r.Gauge("alloc_gauge", "h")
	h := r.Histogram("alloc_seconds", "h", StepBuckets)
	if n := testing.AllocsPerRun(1000, func() { c.Inc() }); n != 0 {
		t.Errorf("Counter.Inc allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(3) }); n != 0 {
		t.Errorf("Gauge.Set allocates %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(2.5e-4) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %v/op", n)
	}
	step := StepDuration("testapp", "min") // resolved once, like the solvers do
	if n := testing.AllocsPerRun(1000, func() { step.Observe(1e-4) }); n != 0 {
		t.Errorf("StepDuration histogram Observe allocates %v/op", n)
	}
}
