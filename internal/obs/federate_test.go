package obs

import (
	"strings"
	"testing"
)

// scrapeOf renders a registry and parses it back — the round-trip every
// worker scrape takes through the coordinator.
func scrapeOf(t *testing.T, r *Registry) *ParsedMetrics {
	t.Helper()
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	pm, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("own exposition failed to parse: %v", err)
	}
	return pm
}

func seriesValue(pm *ParsedMetrics, name, labels string) (float64, bool) {
	for _, sp := range pm.Series {
		if sp.Name == name && sp.Labels == labels {
			return sp.Value, true
		}
	}
	return 0, false
}

func workerRegistry(t *testing.T, leases float64, lat []float64) *Registry {
	t.Helper()
	r := NewRegistry()
	r.CounterVec("w_leases_total", "Leases by outcome.", "outcome").With("ok").Add(uint64(leases))
	h := r.Histogram("w_run_seconds", "Run time.", []float64{1, 5})
	for _, v := range lat {
		h.Observe(v)
	}
	r.FloatCounter("w_joules_total", "Modeled joules.").Add(leases * 1.5)
	return r
}

func TestFederateSumsAcrossWorkers(t *testing.T) {
	s1 := scrapeOf(t, workerRegistry(t, 3, []float64{0.5, 2}))
	s2 := scrapeOf(t, workerRegistry(t, 4, []float64{0.7, 7}))

	var b strings.Builder
	if err := Federate(&b, []*ParsedMetrics{s1, s2, nil}); err != nil {
		t.Fatal(err)
	}
	merged, err := ParsePrometheus(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("federated output failed to re-parse: %v\n%s", err, b.String())
	}

	if v, ok := seriesValue(merged, "w_leases_total", `{outcome="ok"}`); !ok || v != 7 {
		t.Fatalf("merged leases = %v (found=%v), want 7", v, ok)
	}
	if v, ok := seriesValue(merged, "w_joules_total", ""); !ok || v != 10.5 {
		t.Fatalf("merged joules = %v (found=%v), want 10.5", v, ok)
	}
	// Histogram components sum per-le: cumulative buckets stay cumulative.
	if v, _ := seriesValue(merged, "w_run_seconds_bucket", `{le="1"}`); v != 2 {
		t.Fatalf("merged le=1 bucket = %v, want 2", v)
	}
	if v, _ := seriesValue(merged, "w_run_seconds_bucket", `{le="+Inf"}`); v != 4 {
		t.Fatalf("merged +Inf bucket = %v, want 4", v)
	}
	if v, _ := seriesValue(merged, "w_run_seconds_count", ""); v != 4 {
		t.Fatalf("merged count = %v, want 4", v)
	}
	if v, _ := seriesValue(merged, "w_run_seconds_sum", ""); v != 10.2 {
		t.Fatalf("merged sum = %v, want 10.2", v)
	}
	if typ := merged.Types["w_run_seconds"]; typ != "histogram" {
		t.Fatalf("TYPE of w_run_seconds = %q, want histogram (declared once per family)", typ)
	}
	// The float counter must expose as a plain counter so standard
	// Prometheus tooling scrapes the fleet endpoint unmodified.
	if typ := merged.Types["w_joules_total"]; typ != "counter" {
		t.Fatalf("TYPE of w_joules_total = %q, want counter", typ)
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"w_total notanumber\n",
		"orphan_brace{le=\"1\" 3\n",
		"loneword\n",
	} {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("ParsePrometheus(%q) accepted garbage; a corrupt worker must read as a failed scrape", in)
		}
	}
}

func TestParsePrometheusLabelValueWithSpaces(t *testing.T) {
	pm, err := ParsePrometheus(strings.NewReader(
		"esc_total{msg=\"say hi back\"} 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := seriesValue(pm, "esc_total", `{msg="say hi back"}`); !ok || v != 2 {
		t.Fatalf("series = %+v, want quoted-space label preserved", pm.Series)
	}
}

func TestFloatCounterExposition(t *testing.T) {
	r := NewRegistry()
	r.FloatCounter("f_joules_total", "Joules.").Add(1.25)
	fv := r.FloatCounterVec("f_cost_total", "Dollars.", "app")
	fv.With("clamr").Add(0.5)
	fv.With("clamr").Add(0.25)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE f_joules_total counter",
		"f_joules_total 1.25",
		"# TYPE f_cost_total counter",
		`f_cost_total{app="clamr"} 0.75`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestFloatCounterConcurrentAdds(t *testing.T) {
	c := NewRegistry().FloatCounter("c_total", "h")
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				c.Add(0.5)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if v := c.Value(); v != 2000 {
		t.Fatalf("concurrent float adds lost updates: %v, want 2000", v)
	}
}
