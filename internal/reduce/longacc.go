package reduce

import (
	"math"
	"math/bits"
)

// accWords is the size of the long accumulator in 64-bit words. A float64
// needs bit positions 0 (2^-1074) through 2097 (MSB of MaxFloat64), i.e.
// 2098 bits; 34 words give 2176 bits, leaving 78 headroom bits so ~2^77
// maximal addends can be accumulated before overflow — effectively
// unbounded for any realistic reduction.
const accWords = 34

// LongAccumulator is a Kulisch-style exact fixed-point accumulator: every
// float64 added lands in a 2176-bit two's-complement register scaled by
// 2^-1074, with no rounding whatsoever. Sums are therefore exact, and
// Round() performs the single rounding of the true result — bit-identical
// for any ordering or parallel partitioning of the input.
type LongAccumulator struct {
	w [accWords]uint64 // two's-complement, little-endian, ulp = 2^-1074

	nan    bool
	posInf bool
	negInf bool
}

// NewLongAccumulator returns a zeroed accumulator.
func NewLongAccumulator() *LongAccumulator { return &LongAccumulator{} }

// Reset zeroes the accumulator.
func (a *LongAccumulator) Reset() { *a = LongAccumulator{} }

// Add accumulates x exactly. Infinities and NaNs are tracked out-of-band
// and reproduced by Round with IEEE semantics (+Inf + -Inf = NaN).
func (a *LongAccumulator) Add(x float64) {
	b := math.Float64bits(x)
	exp := int(b>>52) & 0x7ff
	man := b & 0xfffffffffffff
	neg := b>>63 != 0

	if exp == 0x7ff {
		switch {
		case man != 0:
			a.nan = true
		case neg:
			a.negInf = true
		default:
			a.posInf = true
		}
		return
	}
	var pos int
	if exp == 0 {
		if man == 0 {
			return // ±0
		}
		pos = 0 // subnormal: value = man × 2^-1074
	} else {
		man |= 1 << 52
		pos = exp - 1 // normal: value = man × 2^(exp-1075+1) in 2^-1074 ulps
	}
	if neg {
		a.subMagnitude(man, pos)
	} else {
		a.addMagnitude(man, pos)
	}
}

// AddProduct accumulates the exact product x·y using an error-free product
// transformation: both the rounded product and its FMA-recovered error term
// are added, so the accumulated value is exactly x·y whenever the product
// does not overflow.
func (a *LongAccumulator) AddProduct(x, y float64) {
	p, e := TwoProd(x, y)
	a.Add(p)
	a.Add(e)
}

// addMagnitude adds man << pos into the register with carry propagation.
func (a *LongAccumulator) addMagnitude(man uint64, pos int) {
	word, shift := pos/64, uint(pos%64)
	lo := man << shift
	var hi uint64
	if shift > 0 {
		hi = man >> (64 - shift)
	}
	var c uint64
	a.w[word], c = bits.Add64(a.w[word], lo, 0)
	a.w[word+1], c = bits.Add64(a.w[word+1], hi, c)
	for i := word + 2; c != 0 && i < accWords; i++ {
		a.w[i], c = bits.Add64(a.w[i], 0, c)
	}
}

// subMagnitude subtracts man << pos with borrow propagation.
func (a *LongAccumulator) subMagnitude(man uint64, pos int) {
	word, shift := pos/64, uint(pos%64)
	lo := man << shift
	var hi uint64
	if shift > 0 {
		hi = man >> (64 - shift)
	}
	var brw uint64
	a.w[word], brw = bits.Sub64(a.w[word], lo, 0)
	a.w[word+1], brw = bits.Sub64(a.w[word+1], hi, brw)
	for i := word + 2; brw != 0 && i < accWords; i++ {
		a.w[i], brw = bits.Sub64(a.w[i], 0, brw)
	}
}

// Merge adds the contents of other into a (exact). The special-value flags
// are OR-combined.
func (a *LongAccumulator) Merge(other *LongAccumulator) {
	var c uint64
	for i := 0; i < accWords; i++ {
		a.w[i], c = bits.Add64(a.w[i], other.w[i], c)
	}
	a.nan = a.nan || other.nan
	a.posInf = a.posInf || other.posInf
	a.negInf = a.negInf || other.negInf
}

// IsZero reports whether the accumulated (finite) value is exactly zero and
// no special values were seen.
func (a *LongAccumulator) IsZero() bool {
	if a.nan || a.posInf || a.negInf {
		return false
	}
	for _, w := range a.w {
		if w != 0 {
			return false
		}
	}
	return true
}

// Signum returns -1, 0, or +1 according to the sign of the finite
// accumulated value.
func (a *LongAccumulator) Signum() int {
	if a.w[accWords-1]>>63 != 0 {
		return -1
	}
	for _, w := range a.w {
		if w != 0 {
			return 1
		}
	}
	return 0
}

// Round returns the accumulated value correctly rounded (to nearest, ties
// to even) to float64. Special values follow IEEE: any NaN, or both
// infinities, yields NaN; one infinity dominates any finite sum.
func (a *LongAccumulator) Round() float64 {
	switch {
	case a.nan || (a.posInf && a.negInf):
		return math.NaN()
	case a.posInf:
		return math.Inf(1)
	case a.negInf:
		return math.Inf(-1)
	}

	mag := a.w
	negative := mag[accWords-1]>>63 != 0
	if negative {
		// Two's-complement negate: invert and add one.
		var c uint64 = 1
		for i := 0; i < accWords; i++ {
			mag[i], c = bits.Add64(^mag[i], 0, c)
		}
	}

	// Locate the most significant set bit.
	top := -1
	for i := accWords - 1; i >= 0; i-- {
		if mag[i] != 0 {
			top = i*64 + 63 - bits.LeadingZeros64(mag[i])
			break
		}
	}
	if top < 0 {
		return 0
	}

	var result float64
	if top <= 52 {
		// The value fits in 53 bits (all inside word 0): exact.
		result = math.Ldexp(float64(mag[0]), -1074)
	} else {
		// Extract the 53 significand bits [top-52, top], the round bit,
		// and the sticky OR of everything below.
		m := extractBits(&mag, top-52, 53)
		roundBit := extractBits(&mag, top-53, 1)
		sticky := anyBitsBelow(&mag, top-53)
		if roundBit == 1 && (sticky || m&1 == 1) {
			m++
			if m == 1<<53 {
				m >>= 1
				top++
			}
		}
		result = math.Ldexp(float64(m), top-52-1074)
	}
	if negative {
		result = -result
	}
	return result
}

// extractBits returns n (≤ 64) bits of the register starting at absolute
// bit position from (LSB-first). Positions below zero read as zero.
func extractBits(w *[accWords]uint64, from, n int) uint64 {
	if n == 0 {
		return 0
	}
	if from < 0 {
		shift := -from
		if shift >= n {
			return 0
		}
		return extractBits(w, 0, n-shift) << shift
	}
	word, off := from/64, uint(from%64)
	v := w[word] >> off
	if off != 0 && word+1 < accWords {
		v |= w[word+1] << (64 - off)
	}
	if n < 64 {
		v &= 1<<uint(n) - 1
	}
	return v
}

// anyBitsBelow reports whether any bit strictly below absolute position pos
// is set.
func anyBitsBelow(w *[accWords]uint64, pos int) bool {
	if pos <= 0 {
		return false
	}
	word, off := pos/64, uint(pos%64)
	for i := 0; i < word; i++ {
		if w[i] != 0 {
			return true
		}
	}
	return off > 0 && w[word]&(1<<off-1) != 0
}
