// Package reduce implements the global-sum algorithms the paper identifies
// (§III.C) as the most precision-sensitive part of numerical calculations:
// compensated summation (Kahan, Neumaier), pairwise summation, double-double
// accumulation, a pre-rounding reproducible sum in the style of Demmel and
// Nguyen, and an exact Kulisch long accumulator in the style of ExBLAS.
//
// The reproducible methods return bit-identical results under any permutation
// of the input and any degree of parallel decomposition — the property that
// lets the rest of a calculation run at reduced precision while the global
// reductions stay trustworthy.
package reduce

import (
	"math"
)

// Method identifies a summation algorithm.
type Method int

const (
	// Naive is left-to-right recursive summation.
	Naive Method = iota
	// Kahan is classic compensated summation.
	Kahan
	// Neumaier is Kahan-Babuška summation, robust when addends exceed the
	// running sum in magnitude.
	Neumaier
	// Pairwise is recursive pairwise (cascade) summation.
	Pairwise
	// DoubleDouble accumulates in ~106-bit double-double arithmetic.
	DoubleDouble
	// Reproducible is a two-pass pre-rounding sum (Demmel–Nguyen style):
	// permutation-invariant and deterministic in parallel.
	Reproducible
	// LongAcc is an exact Kulisch long-accumulator sum: every float64 is
	// added to a 2144-bit fixed-point register with no rounding at all.
	LongAcc
)

// Methods lists all summation methods in presentation order.
var Methods = []Method{Naive, Kahan, Neumaier, Pairwise, DoubleDouble, Reproducible, LongAcc}

// String returns the method name.
func (m Method) String() string {
	switch m {
	case Naive:
		return "naive"
	case Kahan:
		return "kahan"
	case Neumaier:
		return "neumaier"
	case Pairwise:
		return "pairwise"
	case DoubleDouble:
		return "double-double"
	case Reproducible:
		return "reproducible"
	case LongAcc:
		return "long-accumulator"
	default:
		return "unknown"
	}
}

// IsReproducible reports whether the method yields bit-identical results
// under permutation and parallel decomposition of the input.
func (m Method) IsReproducible() bool { return m == Reproducible || m == LongAcc }

// Sum computes the sum of xs with the given method.
func Sum(xs []float64, m Method) float64 {
	switch m {
	case Naive:
		return SumNaive(xs)
	case Kahan:
		return SumKahan(xs)
	case Neumaier:
		return SumNeumaier(xs)
	case Pairwise:
		return SumPairwise(xs)
	case DoubleDouble:
		return SumDoubleDouble(xs).Float64()
	case Reproducible:
		return SumReproducible(xs)
	case LongAcc:
		acc := NewLongAccumulator()
		for _, x := range xs {
			acc.Add(x)
		}
		return acc.Round()
	default:
		return SumNaive(xs)
	}
}

// SumNaive is left-to-right recursive summation — the baseline whose error
// grows like O(n·u·Σ|x|).
func SumNaive(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// SumKahan is compensated summation: the rounding error of every addition
// is recovered and fed back, giving error independent of n for well-scaled
// data. It loses compensation when an addend exceeds the running sum.
func SumKahan(xs []float64) float64 {
	var s, c float64
	for _, x := range xs {
		y := x - c
		t := s + y
		c = (t - s) - y
		s = t
	}
	return s
}

// SumNeumaier is Kahan–Babuška summation: like Kahan but the branch keeps
// the compensation valid when |x| > |s|.
func SumNeumaier(xs []float64) float64 {
	var s, c float64
	for _, x := range xs {
		t := s + x
		if math.IsInf(t, 0) {
			// Compensation would be Inf-Inf = NaN; the sum has left the
			// finite range, so propagate the infinity IEEE-style.
			s, c = t, 0
			continue
		}
		if math.Abs(s) >= math.Abs(x) {
			c += (s - t) + x
		} else {
			c += (x - t) + s
		}
		s = t
	}
	return s + c
}

// pairwiseBase is the block size below which pairwise summation falls back
// to the naive loop. 128 keeps the recursion shallow while bounding the
// per-block error contribution.
const pairwiseBase = 128

// SumPairwise is cascade summation with O(log n) error growth.
func SumPairwise(xs []float64) float64 {
	if len(xs) <= pairwiseBase {
		return SumNaive(xs)
	}
	mid := len(xs) / 2
	return SumPairwise(xs[:mid]) + SumPairwise(xs[mid:])
}

// SumDoubleDouble accumulates the input in double-double (~106-bit)
// arithmetic and returns the unevaluated pair.
func SumDoubleDouble(xs []float64) DD {
	var acc DD
	for _, x := range xs {
		acc = acc.AddFloat(x)
	}
	return acc
}

// SumReproducible computes a permutation-invariant sum by pre-rounding every
// addend to a common ulp boundary chosen from the global maximum magnitude
// (Demmel & Nguyen's 1-reduction scheme), so that the subsequent additions
// are exact in float64 and therefore order-independent. The discarded low
// bits are themselves summed the same way at a finer boundary, in up to
// three folds, recovering near-full accuracy.
func SumReproducible(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	maxAbs := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > maxAbs || math.IsNaN(a) {
			maxAbs = a
		}
	}
	if maxAbs == 0 || math.IsInf(maxAbs, 0) || math.IsNaN(maxAbs) {
		return SumNaive(xs) // propagate zeros/infs/NaNs conventionally
	}
	n := len(xs)
	// Bits needed so that n additions of pre-rounded values are exact:
	// each addend is a multiple of the slice ulp and |sum| < n·maxAbs,
	// so a float64 holds it exactly if log2(n)+foldBits ≤ 53.
	logN := 0
	for 1<<logN < n {
		logN++
	}
	foldBits := 52 - logN - 1
	if foldBits < 2 {
		// Astronomically long inputs: fall back to double-double, which
		// is order-sensitive only below the 2^-106 level.
		return SumDoubleDouble(xs).Float64()
	}

	const folds = 3
	var total DD
	boundary := math.Ldexp(1, ilogb(maxAbs)-foldBits+1)
	rem := make([]float64, n)
	copy(rem, xs)
	for f := 0; f < folds; f++ {
		var s float64 // exact: all addends share the boundary's grid
		allZero := true
		for i, x := range rem {
			q := prround(x, boundary)
			s += q
			rem[i] = x - q // exact (Sterbenz-style: q is x rounded to a coarser grid)
			if rem[i] != 0 {
				allZero = false
			}
		}
		total = total.AddFloat(s)
		if allZero {
			break
		}
		// Every float64 is an exact multiple of 2^-1074, so the grid never
		// needs to be finer than that; at that grid the next fold is exact
		// and leaves zero remainders.
		boundary = math.Ldexp(boundary, -foldBits)
		if boundary == 0 {
			boundary = math.Ldexp(1, -1074)
		}
	}
	return total.Float64()
}

// prround rounds x to the nearest multiple of boundary (ties to even).
// boundary must be a power of two.
func prround(x, boundary float64) float64 {
	return math.RoundToEven(x/boundary) * boundary
}

// ilogb returns floor(log2(|x|)) for finite nonzero x.
func ilogb(x float64) int {
	_, e := math.Frexp(x)
	return e - 1
}

// Min returns the minimum of xs (order-independent by construction); it
// returns +Inf for an empty slice. NaNs are ignored unless all entries are
// NaN, in which case NaN is returned.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	sawNumber := false
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		sawNumber = true
		if x < m {
			m = x
		}
	}
	if !sawNumber && len(xs) > 0 {
		return math.NaN()
	}
	return m
}

// Max returns the maximum of xs; -Inf for an empty slice, NaN-insensitive
// like Min.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	sawNumber := false
	for _, x := range xs {
		if math.IsNaN(x) {
			continue
		}
		sawNumber = true
		if x > m {
			m = x
		}
	}
	if !sawNumber && len(xs) > 0 {
		return math.NaN()
	}
	return m
}
