package reduce_test

import (
	"fmt"

	"repro/internal/reduce"
)

// The paper's §III.C scenario: an ill-conditioned global sum loses half its
// digits under naive summation and recovers them under the reproducible
// methods, which are also bit-stable under permutation and parallelism.
func ExampleSumReproducible() {
	// 1e17 + 1 − 1e17 + 1: naive left-to-right absorbs the first 1
	// (ulp(1e17) = 16), the reproducible pre-rounding sum does not.
	xs := []float64{1e17, 1, -1e17, 1}
	fmt.Println("naive:       ", reduce.SumNaive(xs))
	fmt.Println("reproducible:", reduce.SumReproducible(xs))
	// Output:
	// naive:        1
	// reproducible: 2
}

func ExampleLongAccumulator() {
	acc := reduce.NewLongAccumulator()
	acc.Add(1e100)
	acc.Add(1)
	acc.Add(-1e100)
	fmt.Println(acc.Round()) // exact: the 1 survives a 10^100 cancellation
	// Output: 1
}

func ExampleParallelSum() {
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = 0.1
	}
	a := reduce.ParallelSum(xs, 4, reduce.LongAcc)
	b := reduce.ParallelSum(xs, 7, reduce.LongAcc)
	fmt.Println(a == b) // bit-identical at any worker count
	// Output: true
}

func ExampleDotDD() {
	// A dot product with catastrophic cancellation: double-double keeps it.
	a := []float64{1e20, 1, -1e20}
	b := []float64{1, 1e-20, 1}
	fmt.Println(reduce.DotDD(a, b).Float64())
	// Output: 1e-20
}
