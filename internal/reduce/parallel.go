package reduce

import (
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// ParallelSum computes the sum of xs using `workers` goroutines, each
// reducing a contiguous chunk with the given serial method, then merging the
// partials in fixed chunk order.
//
// For the reproducible methods (Reproducible, LongAcc) the result is
// bit-identical for every worker count and every permutation within chunks:
// Reproducible partials are merged through a shared pre-rounding boundary
// derived from the global maximum, and LongAcc partial accumulators merge
// exactly. For the other methods the result matches the quality of the
// serial algorithm but may differ in the last bits as workers vary — which
// is precisely the irreproducibility the paper's §III.C warns about.
func ParallelSum(xs []float64, workers int, m Method) float64 {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(xs) {
		workers = len(xs)
	}
	if workers <= 1 {
		return Sum(xs, m)
	}

	switch m {
	case LongAcc:
		return parallelLongAcc(xs, workers).Round()
	case Reproducible:
		return parallelReproducible(xs, workers)
	}

	partials := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := chunkBounds(len(xs), workers, w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w] = Sum(xs[lo:hi], m)
		}(w, lo, hi)
	}
	wg.Wait()
	// Merge partials with a quality-matched serial pass.
	switch m {
	case Kahan:
		return SumKahan(partials)
	case Neumaier:
		return SumNeumaier(partials)
	case Pairwise:
		return SumPairwise(partials)
	case DoubleDouble:
		return SumDoubleDouble(partials).Float64()
	default:
		return SumNaive(partials)
	}
}

// ParallelLongAccumulator exactly accumulates xs in parallel and returns the
// merged accumulator, for callers that want to continue accumulating.
func ParallelLongAccumulator(xs []float64, workers int) *LongAccumulator {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(xs) {
		workers = len(xs)
	}
	if workers < 1 {
		workers = 1
	}
	return parallelLongAcc(xs, workers)
}

func parallelLongAcc(xs []float64, workers int) *LongAccumulator {
	accs := make([]*LongAccumulator, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := chunkBounds(len(xs), workers, w)
		accs[w] = NewLongAccumulator()
		wg.Add(1)
		go func(acc *LongAccumulator, lo, hi int) {
			defer wg.Done()
			for _, x := range xs[lo:hi] {
				acc.Add(x)
			}
		}(accs[w], lo, hi)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		accs[0].Merge(accs[w])
	}
	return accs[0]
}

// parallelReproducible runs the pre-rounding scheme with a globally agreed
// boundary so every partition yields the same bits. Each worker computes an
// exact partial on the shared grid; partial sums merge exactly.
func parallelReproducible(xs []float64, workers int) float64 {
	// Pass 1: global max magnitude (order-independent).
	maxes := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := chunkBounds(len(xs), workers, w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			m := 0.0
			for _, x := range xs[lo:hi] {
				if a := math.Abs(x); a > m || math.IsNaN(a) {
					m = a
				}
			}
			maxes[w] = m
		}(w, lo, hi)
	}
	wg.Wait()
	maxAbs := 0.0
	for _, m := range maxes {
		if m > maxAbs || math.IsNaN(m) {
			maxAbs = m
		}
	}
	if maxAbs == 0 || math.IsInf(maxAbs, 0) || math.IsNaN(maxAbs) {
		return SumNaive(xs)
	}
	// The folds must see the same grid regardless of partitioning, so the
	// bit budget uses the *global* n.
	logN := 0
	for 1<<logN < len(xs) {
		logN++
	}
	foldBits := 52 - logN - 1
	if foldBits < 2 {
		return parallelLongAcc(xs, workers).Round()
	}

	const folds = 3
	type partial struct{ s [folds]float64 }
	parts := make([]partial, workers)
	for w := 0; w < workers; w++ {
		lo, hi := chunkBounds(len(xs), workers, w)
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			boundary := math.Ldexp(1, ilogb(maxAbs)-foldBits+1)
			rem := make([]float64, hi-lo)
			copy(rem, xs[lo:hi])
			for f := 0; f < folds; f++ {
				var s float64
				for i, x := range rem {
					q := prround(x, boundary)
					s += q
					rem[i] = x - q
				}
				parts[w].s[f] = s
				boundary = math.Ldexp(boundary, -foldBits)
				if boundary == 0 {
					boundary = math.Ldexp(1, -1074)
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	// Each fold's partials are exact multiples of that fold's grid; their
	// float64 sums are exact, so merging is order-insensitive. Accumulate
	// the folds in double-double for the final rounding.
	var total DD
	for f := 0; f < folds; f++ {
		var s float64
		for w := range parts {
			s += parts[w].s[f]
		}
		total = total.AddFloat(s)
	}
	return total.Float64()
}

// chunkBounds splits n items into `workers` nearly equal contiguous chunks
// and returns the half-open bounds of chunk w. The split depends only on
// (n, workers, w).
func chunkBounds(n, workers, w int) (lo, hi int) {
	lo = n * w / workers
	hi = n * (w + 1) / workers
	return lo, hi
}

// IllConditioned generates a length-n slice whose naive sum loses roughly
// log10(cond) decimal digits, together with the exact sum (computed with a
// long accumulator). It follows the spirit of Ogita–Rump–Oishi ill-
// conditioned dot-product generation: large cancelling pairs plus a small
// residual signal. Used by the accuracy experiments that reproduce the
// paper's "7 digits → 15 digits" global-sum claim.
func IllConditioned(n int, cond float64, seed int64) (xs []float64, exact float64) {
	if n < 4 {
		n = 4
	}
	rng := rand.New(rand.NewSource(seed))
	xs = make([]float64, 0, n)
	big := cond
	// Cancelling pairs at descending magnitudes.
	for len(xs)+2 <= n/2 {
		v := (rng.Float64() + 0.5) * big
		xs = append(xs, v, -v)
		big = math.Max(big*0.9, 1)
	}
	// Small residual values carrying the true sum.
	for len(xs) < n {
		xs = append(xs, rng.Float64()*2-1)
	}
	// Shuffle so the cancellation is interleaved.
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	acc := NewLongAccumulator()
	for _, x := range xs {
		acc.Add(x)
	}
	return xs, acc.Round()
}
