package reduce

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// bigSum computes the exact sum of xs with math/big and rounds it to
// float64 (round-to-nearest-even), serving as the oracle for the exact
// methods.
func bigSum(xs []float64) float64 {
	acc := new(big.Float).SetPrec(4096)
	tmp := new(big.Float).SetPrec(4096)
	for _, x := range xs {
		acc.Add(acc, tmp.SetFloat64(x))
	}
	f, _ := acc.Float64()
	return f
}

func randSlice(n int, seed int64, scale float64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = (rng.Float64()*2 - 1) * math.Ldexp(scale, rng.Intn(40)-20)
	}
	return xs
}

func TestTwoSumErrorFree(t *testing.T) {
	if err := quick.Check(func(a, b float64) bool {
		a, b = math.Mod(a, 1e100), math.Mod(b, 1e100)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		s, e := TwoSum(a, b)
		// Verify a + b == s + e exactly in big.Float arithmetic.
		ref := new(big.Float).SetPrec(200).SetFloat64(a)
		ref.Add(ref, new(big.Float).SetPrec(200).SetFloat64(b))
		got := new(big.Float).SetPrec(200).SetFloat64(s)
		got.Add(got, new(big.Float).SetPrec(200).SetFloat64(e))
		return ref.Cmp(got) == 0
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestTwoProdErrorFree(t *testing.T) {
	if err := quick.Check(func(a, b float64) bool {
		a, b = math.Mod(a, 1e80), math.Mod(b, 1e80)
		if math.IsNaN(a) || math.IsNaN(b) || a == 0 || b == 0 {
			return true
		}
		// Skip cases where the product over/underflows: the EFT property
		// only holds in range.
		if pa := math.Abs(a) * math.Abs(b); pa > 1e300 || pa < 1e-300 {
			return true
		}
		p, e := TwoProd(a, b)
		ref := new(big.Float).SetPrec(200).SetFloat64(a)
		ref.Mul(ref, new(big.Float).SetPrec(200).SetFloat64(b))
		got := new(big.Float).SetPrec(200).SetFloat64(p)
		got.Add(got, new(big.Float).SetPrec(200).SetFloat64(e))
		return ref.Cmp(got) == 0
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestFastTwoSum(t *testing.T) {
	// Valid when |a| >= |b|.
	if err := quick.Check(func(a, b float64) bool {
		a, b = math.Mod(a, 1e100), math.Mod(b, 1e100)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if math.Abs(a) < math.Abs(b) {
			a, b = b, a
		}
		s1, e1 := FastTwoSum(a, b)
		s2, e2 := TwoSum(a, b)
		return s1 == s2 && e1 == e2
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestDDArithmetic(t *testing.T) {
	a := DDFromFloat(1).AddFloat(math.Ldexp(1, -80)) // 1 + 2^-80
	b := DDFromFloat(-1)
	diff := a.Add(b)
	if diff.Float64() != math.Ldexp(1, -80) {
		t.Errorf("DD cancellation lost the low part: %g", diff.Float64())
	}
	// (x · y) in DD matches big.Float to ~2^-100 relative.
	x := DD{math.Pi, 1.2246467991473532e-16} // extended pi
	y := DD{math.E, 1.4456468917292502e-16}
	p := x.Mul(y)
	ref := new(big.Float).SetPrec(300)
	ref.Mul(bigFromDD(x), bigFromDD(y))
	got := bigFromDD(p)
	ref.Sub(ref, got)
	refAbs, _ := new(big.Float).Abs(ref).Float64()
	if refAbs > math.Ldexp(1, -95) {
		t.Errorf("DD Mul error too large: %g", refAbs)
	}
	if a.Sub(a).Float64() != 0 {
		t.Error("DD Sub of itself nonzero")
	}
	if a.Neg().Neg() != a {
		t.Error("DD double negation changed value")
	}
	if !b.Less(a) || a.Less(b) {
		t.Error("DD Less inconsistent")
	}
	if a.Neg().Abs() != a {
		t.Error("DD Abs failed")
	}
	if got := DDFromFloat(3).MulFloat(4).Float64(); got != 12 {
		t.Errorf("DD MulFloat = %g", got)
	}
}

func bigFromDD(d DD) *big.Float {
	f := new(big.Float).SetPrec(300).SetFloat64(d.Hi)
	return f.Add(f, new(big.Float).SetPrec(300).SetFloat64(d.Lo))
}

func TestDotDD(t *testing.T) {
	a := []float64{1e20, 1, -1e20}
	b := []float64{1, 1e-20, 1}
	// 1e20 + 1e-20 - 1e20 = 1e-20 — pure cancellation.
	got := DotDD(a, b).Float64()
	if got != 1e-20 {
		t.Errorf("DotDD = %g, want 1e-20", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("DotDD did not panic on length mismatch")
		}
	}()
	DotDD([]float64{1}, []float64{1, 2})
}

func TestLongAccumulatorExact(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		xs := randSlice(2000, seed, 1)
		acc := NewLongAccumulator()
		for _, x := range xs {
			acc.Add(x)
		}
		want := bigSum(xs)
		if got := acc.Round(); got != want {
			t.Fatalf("seed %d: LongAcc = %x, bigSum = %x", seed, got, want)
		}
	}
}

func TestLongAccumulatorExtremes(t *testing.T) {
	cases := [][]float64{
		{math.MaxFloat64, math.MaxFloat64, -math.MaxFloat64},
		{math.MaxFloat64, -math.MaxFloat64},
		{5e-324, 5e-324, 5e-324},                    // subnormals
		{5e-324, -5e-324},                           //
		{1e308, 1e-308, -1e308},                     // huge dynamic range
		{1, math.Ldexp(1, -1074), -1},               //
		{math.Ldexp(1, 1000), math.Ldexp(1, -1000)}, //
		{0, math.Copysign(0, -1)},                   //
	}
	for i, xs := range cases {
		acc := NewLongAccumulator()
		for _, x := range xs {
			acc.Add(x)
		}
		want := bigSum(xs)
		if got := acc.Round(); got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
			t.Errorf("case %d: LongAcc = %g, want %g", i, got, want)
		}
	}
	// Overflow beyond float64 range must round to +Inf.
	acc := NewLongAccumulator()
	for i := 0; i < 4; i++ {
		acc.Add(math.MaxFloat64)
	}
	if !math.IsInf(acc.Round(), 1) {
		t.Error("accumulated 4×MaxFloat64 did not round to +Inf")
	}
}

func TestLongAccumulatorSpecials(t *testing.T) {
	acc := NewLongAccumulator()
	acc.Add(math.Inf(1))
	acc.Add(42)
	if !math.IsInf(acc.Round(), 1) {
		t.Error("+Inf did not dominate")
	}
	acc.Add(math.Inf(-1))
	if !math.IsNaN(acc.Round()) {
		t.Error("+Inf + -Inf is not NaN")
	}
	acc.Reset()
	acc.Add(math.NaN())
	if !math.IsNaN(acc.Round()) {
		t.Error("NaN lost")
	}
	acc.Reset()
	if !acc.IsZero() || acc.Signum() != 0 {
		t.Error("reset accumulator not zero")
	}
	acc.Add(-3)
	if acc.Signum() != -1 || acc.IsZero() {
		t.Error("negative accumulator misclassified")
	}
	acc.Add(5)
	if acc.Signum() != 1 {
		t.Error("positive accumulator misclassified")
	}
}

func TestLongAccumulatorMerge(t *testing.T) {
	xs := randSlice(5000, 42, 1e6)
	whole := NewLongAccumulator()
	for _, x := range xs {
		whole.Add(x)
	}
	a, b := NewLongAccumulator(), NewLongAccumulator()
	for i, x := range xs {
		if i%3 == 0 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.Round() != whole.Round() {
		t.Error("merged accumulators disagree with the whole")
	}
}

func TestLongAccumulatorAddProduct(t *testing.T) {
	acc := NewLongAccumulator()
	acc.AddProduct(1e20, 1)
	acc.AddProduct(1, 1e-20)
	acc.AddProduct(-1e20, 1)
	if got := acc.Round(); got != 1e-20 {
		t.Errorf("AddProduct dot = %g, want 1e-20", got)
	}
}

func TestSumMethodsOnBenignData(t *testing.T) {
	xs := randSlice(10000, 7, 1)
	want := bigSum(xs)
	for _, m := range Methods {
		got := Sum(xs, m)
		rel := math.Abs(got-want) / math.Abs(want)
		// All methods should be decent on benign data; the exact methods
		// must hit the correctly rounded result.
		limit := 1e-10
		if m.IsReproducible() || m == DoubleDouble {
			limit = 0
		}
		if rel > limit {
			t.Errorf("%v: rel error %g on benign data", m, rel)
		}
	}
}

func TestNeumaierBeatsKahanOnSpikes(t *testing.T) {
	// The classic case: a huge addend swamps the running sum.
	xs := []float64{1, 1e100, 1, -1e100}
	if got := SumNeumaier(xs); got != 2 {
		t.Errorf("Neumaier = %g, want 2", got)
	}
	if got := SumKahan(xs); got == 2 {
		t.Log("Kahan unexpectedly exact on spike data (platform FMA contraction?)")
	}
	if got := SumNaive(xs); got == 2 {
		t.Error("naive sum unexpectedly exact — test data no longer ill-conditioned")
	}
}

func TestSumReproduciblePermutationInvariance(t *testing.T) {
	xs, _ := IllConditioned(4096, 1e12, 11)
	ref := SumReproducible(xs)
	rng := rand.New(rand.NewSource(13))
	perm := make([]float64, len(xs))
	for trial := 0; trial < 20; trial++ {
		copy(perm, xs)
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if got := SumReproducible(perm); got != ref {
			t.Fatalf("trial %d: permutation changed the reproducible sum: %x vs %x", trial, got, ref)
		}
		// The naive sum, by contrast, typically moves.
	}
}

func TestLongAccPermutationInvariance(t *testing.T) {
	xs, exact := IllConditioned(2048, 1e15, 17)
	rng := rand.New(rand.NewSource(19))
	perm := make([]float64, len(xs))
	copy(perm, xs)
	for trial := 0; trial < 10; trial++ {
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		if got := Sum(perm, LongAcc); got != exact {
			t.Fatalf("long accumulator moved under permutation: %x vs %x", got, exact)
		}
	}
}

func TestParallelWorkerInvariance(t *testing.T) {
	xs, _ := IllConditioned(10000, 1e10, 23)
	for _, m := range []Method{Reproducible, LongAcc} {
		ref := ParallelSum(xs, 1, m)
		for _, workers := range []int{2, 3, 4, 7, 16, 61} {
			if got := ParallelSum(xs, workers, m); got != ref {
				t.Errorf("%v: %d workers changed the result: %x vs %x", m, workers, got, ref)
			}
		}
	}
}

func TestParallelMatchesSerialQuality(t *testing.T) {
	xs := randSlice(50000, 29, 1)
	want := bigSum(xs)
	for _, m := range Methods {
		got := ParallelSum(xs, 8, m)
		rel := math.Abs(got-want) / math.Abs(want)
		if rel > 1e-9 {
			t.Errorf("%v parallel: rel error %g", m, rel)
		}
	}
	// Degenerate worker counts.
	if ParallelSum(xs, 0, Kahan) == 0 {
		t.Error("ParallelSum with auto workers returned zero")
	}
	small := []float64{1, 2, 3}
	if got := ParallelSum(small, 64, Naive); got != 6 {
		t.Errorf("ParallelSum tiny input = %g", got)
	}
}

func TestIllConditionedRecoversDigits(t *testing.T) {
	// Reproduces the paper's §III.C claim: naive global sums carry ~7
	// digits on ill-conditioned data while reproducible/exact methods
	// recover ~15.
	xs, exact := IllConditioned(20000, 1e9, 31)
	if exact == 0 {
		t.Fatal("degenerate ill-conditioned instance")
	}
	digits := func(got float64) float64 {
		r := math.Abs(got-exact) / math.Abs(exact)
		if r == 0 {
			return 17
		}
		return -math.Log10(r)
	}
	naive := digits(SumNaive(xs))
	repro := digits(SumReproducible(xs))
	exactD := digits(Sum(xs, LongAcc))
	if naive > 12 {
		t.Errorf("naive sum too accurate (%.1f digits) — instance not ill-conditioned", naive)
	}
	if repro < 14 {
		t.Errorf("reproducible sum only %.1f digits", repro)
	}
	if exactD < 15 {
		t.Errorf("long accumulator only %.1f digits", exactD)
	}
}

func TestSumEdgeCases(t *testing.T) {
	for _, m := range Methods {
		if got := Sum(nil, m); got != 0 {
			t.Errorf("%v: empty sum = %g", m, got)
		}
		if got := Sum([]float64{42}, m); got != 42 {
			t.Errorf("%v: singleton sum = %g", m, got)
		}
		if got := Sum([]float64{0, 0, 0}, m); got != 0 {
			t.Errorf("%v: zero sum = %g", m, got)
		}
		if got := Sum([]float64{1, math.Inf(1)}, m); !math.IsInf(got, 1) {
			t.Errorf("%v: +Inf lost: %g", m, got)
		}
		if got := Sum([]float64{math.NaN(), 1}, m); !math.IsNaN(got) {
			t.Errorf("%v: NaN lost: %g", m, got)
		}
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 2}
	if Min(xs) != -1 || Max(xs) != 3 {
		t.Error("Min/Max wrong on simple data")
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("Min/Max of empty slices not infinities")
	}
	withNaN := []float64{math.NaN(), 5, math.NaN()}
	if Min(withNaN) != 5 || Max(withNaN) != 5 {
		t.Error("Min/Max did not skip NaNs")
	}
	allNaN := []float64{math.NaN()}
	if !math.IsNaN(Min(allNaN)) || !math.IsNaN(Max(allNaN)) {
		t.Error("Min/Max of all-NaN input is not NaN")
	}
}

func TestMethodStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, m := range Methods {
		s := m.String()
		if s == "unknown" || seen[s] {
			t.Errorf("method %d has bad/duplicate name %q", m, s)
		}
		seen[s] = true
	}
	if Method(99).String() != "unknown" {
		t.Error("unknown method not labelled")
	}
	if Naive.IsReproducible() || !LongAcc.IsReproducible() || !Reproducible.IsReproducible() {
		t.Error("IsReproducible misclassified")
	}
}

func TestReproducibleMatchesExactClosely(t *testing.T) {
	// On data without catastrophic cancellation beyond 3 folds, the
	// pre-rounding sum should match the exact sum to the last bit.
	for seed := int64(0); seed < 5; seed++ {
		xs := randSlice(8192, 100+seed, 1)
		want := bigSum(xs)
		if got := SumReproducible(xs); got != want {
			t.Errorf("seed %d: reproducible %x != exact %x", seed, got, want)
		}
	}
}

func BenchmarkSumMethods(b *testing.B) {
	xs := randSlice(1<<16, 1, 1)
	for _, m := range Methods {
		b.Run(m.String(), func(b *testing.B) {
			b.SetBytes(int64(len(xs) * 8))
			var sink float64
			for i := 0; i < b.N; i++ {
				sink = Sum(xs, m)
			}
			_ = sink
		})
	}
}

func BenchmarkParallelLongAcc(b *testing.B) {
	xs := randSlice(1<<18, 2, 1)
	for _, workers := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "w1", 4: "w4", 8: "w8"}[workers], func(b *testing.B) {
			b.SetBytes(int64(len(xs) * 8))
			for i := 0; i < b.N; i++ {
				ParallelSum(xs, workers, LongAcc)
			}
		})
	}
}
