package reduce

import "math"

// DD is an unevaluated double-double value Hi + Lo with |Lo| ≤ ulp(Hi)/2,
// carrying roughly 106 bits of significand. It implements the error-free
// transformations (TwoSum, TwoProd) the paper's cited reproducible-sum work
// builds on.
type DD struct {
	Hi, Lo float64
}

// DDFromFloat returns x as an exact double-double.
func DDFromFloat(x float64) DD { return DD{Hi: x} }

// TwoSum returns s = fl(a+b) and the exact rounding error e with
// a + b = s + e (Knuth's branch-free error-free transformation).
func TwoSum(a, b float64) (s, e float64) {
	s = a + b
	bv := s - a
	e = (a - (s - bv)) + (b - bv)
	return s, e
}

// FastTwoSum returns s = fl(a+b) and the exact error, valid when |a| ≥ |b|
// (Dekker).
func FastTwoSum(a, b float64) (s, e float64) {
	s = a + b
	e = b - (s - a)
	return s, e
}

// TwoProd returns p = fl(a·b) and the exact error e with a·b = p + e,
// using the hardware fused multiply-add.
func TwoProd(a, b float64) (p, e float64) {
	p = a * b
	e = math.FMA(a, b, -p)
	return p, e
}

// Add returns the double-double sum d + o.
func (d DD) Add(o DD) DD {
	s, e := TwoSum(d.Hi, o.Hi)
	if math.IsInf(s, 0) {
		return DD{Hi: s} // error terms are Inf-Inf = NaN; propagate the Inf
	}
	e += d.Lo + o.Lo
	hi, lo := FastTwoSum(s, e)
	return DD{hi, lo}
}

// AddFloat returns the double-double sum d + x.
func (d DD) AddFloat(x float64) DD {
	s, e := TwoSum(d.Hi, x)
	if math.IsInf(s, 0) {
		return DD{Hi: s}
	}
	e += d.Lo
	hi, lo := FastTwoSum(s, e)
	return DD{hi, lo}
}

// Sub returns d - o.
func (d DD) Sub(o DD) DD { return d.Add(DD{-o.Hi, -o.Lo}) }

// Mul returns the double-double product d · o.
func (d DD) Mul(o DD) DD {
	p, e := TwoProd(d.Hi, o.Hi)
	e += d.Hi*o.Lo + d.Lo*o.Hi
	hi, lo := FastTwoSum(p, e)
	return DD{hi, lo}
}

// MulFloat returns d · x.
func (d DD) MulFloat(x float64) DD { return d.Mul(DD{Hi: x}) }

// Neg returns -d.
func (d DD) Neg() DD { return DD{-d.Hi, -d.Lo} }

// Float64 rounds d to the nearest float64.
func (d DD) Float64() float64 { return d.Hi + d.Lo }

// Abs returns |d|.
func (d DD) Abs() DD {
	if d.Hi < 0 || (d.Hi == 0 && d.Lo < 0) {
		return d.Neg()
	}
	return d
}

// Less reports whether d < o.
func (d DD) Less(o DD) bool {
	if d.Hi != o.Hi {
		return d.Hi < o.Hi
	}
	return d.Lo < o.Lo
}

// DotDD computes the dot product of a and b in double-double arithmetic
// with error-free product transformations (compensated dot product à la
// Ogita, Rump & Oishi). Panics if the lengths differ.
func DotDD(a, b []float64) DD {
	if len(a) != len(b) {
		panic("reduce: DotDD length mismatch")
	}
	var acc DD
	for i := range a {
		p, e := TwoProd(a[i], b[i])
		acc = acc.AddFloat(p)
		acc = acc.AddFloat(e)
	}
	return acc
}
