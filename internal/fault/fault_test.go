package fault

import (
	"errors"
	"testing"
)

func TestUnarmedNeverTrips(t *testing.T) {
	Disarm()
	for i := 0; i < 100; i++ {
		if Hit("cache.put") {
			t.Fatal("unarmed point tripped")
		}
	}
	if Enabled() {
		t.Error("Enabled() true while disarmed")
	}
	if err := Error("anything"); err != nil {
		t.Errorf("Error() = %v while disarmed", err)
	}
}

func TestNthHitTripsExactlyOnce(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("journal.sync=n:3"); err != nil {
		t.Fatal(err)
	}
	trips := 0
	for i := 1; i <= 10; i++ {
		if Hit("journal.sync") {
			trips++
			if i != 3 {
				t.Errorf("tripped on hit %d, want 3", i)
			}
		}
	}
	if trips != 1 {
		t.Errorf("tripped %d times, want exactly 1", trips)
	}
	cs := Counts()
	if len(cs) != 1 || cs[0].Hits != 10 || cs[0].Trips != 1 {
		t.Errorf("Counts() = %+v", cs)
	}
}

func TestAlwaysAndOff(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("a=always,b=off"); err != nil {
		t.Fatal(err)
	}
	if !Hit("a") || Hit("b") {
		t.Error("always/off triggers misbehaved")
	}
	if err := Error("a"); !errors.Is(err, ErrInjected) {
		t.Errorf("Error() = %v, want ErrInjected wrap", err)
	}
}

func TestProbabilisticIsSeededAndDeterministic(t *testing.T) {
	t.Cleanup(func() { SetSeed(1); Disarm() })
	run := func() []bool {
		SetSeed(42)
		if err := Arm("runner.nan=p:0.5"); err != nil {
			t.Fatal(err)
		}
		out := make([]bool, 64)
		for i := range out {
			out[i] = Hit("runner.nan")
		}
		return out
	}
	a, b := run(), run()
	trips := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at hit %d", i)
		}
		if a[i] {
			trips++
		}
	}
	if trips == 0 || trips == len(a) {
		t.Errorf("p:0.5 tripped %d/%d times", trips, len(a))
	}
}

func TestArmRejectsBadSpecs(t *testing.T) {
	t.Cleanup(Disarm)
	for _, spec := range []string{"noeq", "x=p:2", "x=p:nope", "x=n:0", "x=wat", "=p:0.5"} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
	// A failed Arm must not leave a half-armed registry.
	if err := Arm("ok=always"); err != nil {
		t.Fatal(err)
	}
	if !Hit("ok") {
		t.Error("valid re-arm after rejected spec did not take")
	}
}

func TestEveryTripsPeriodically(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("x=e:3"); err != nil {
		t.Fatal(err)
	}
	var got []bool
	for i := 0; i < 9; i++ {
		got = append(got, Hit("x"))
	}
	want := []bool{false, false, true, false, false, true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("e:3 hit pattern = %v, want %v", got, want)
		}
	}
}

func TestParamTripsAlwaysAndCarriesMagnitude(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("worker.slow=x:30,other=always"); err != nil {
		t.Fatal(err)
	}
	if !Hit("worker.slow") || !Hit("worker.slow") {
		t.Fatal("x:<v> point did not trip on every hit")
	}
	v, ok := Param("worker.slow")
	if !ok || v != 30 {
		t.Fatalf("Param(worker.slow) = (%v, %v), want (30, true)", v, ok)
	}
	// Param reads the magnitude without counting a hit.
	var hits uint64
	for _, c := range Counts() {
		if c.Name == "worker.slow" {
			hits = c.Hits
		}
	}
	if hits != 2 {
		t.Fatalf("Param counted a hit: hits = %d, want 2", hits)
	}
	// Non-param points have no magnitude; unknown points neither.
	if _, ok := Param("other"); ok {
		t.Error("Param on an always point reported a magnitude")
	}
	if _, ok := Param("missing"); ok {
		t.Error("Param on an unknown point reported a magnitude")
	}
}

func TestEveryAndParamRejectBadValues(t *testing.T) {
	t.Cleanup(Disarm)
	for _, spec := range []string{"x=e:0", "x=e:nope", "x=x:-1", "x=x:nope"} {
		if err := Arm(spec); err == nil {
			t.Errorf("Arm(%q) accepted", spec)
		}
	}
}
