// Package fault provides named, environment-armed failure points for the
// serving stack's fault-injection harness. A failure point is a call site —
// "cache.put", "journal.sync", "runner.nan", "worker.stall" — that asks the
// registry whether to fail this time. When nothing is armed (the default,
// and the only state production code ever sees) every query is a single
// relaxed atomic load returning false, so the points compile down to
// effectively free guards.
//
// Arming happens explicitly via Arm, or from the environment:
//
//	PRECISIOND_FAULTS="cache.put=p:0.1,journal.sync=n:3,worker.stall=always"
//	PRECISIOND_FAULT_SEED=7
//
// Triggers:
//
//	p:<prob>  trip independently with this probability per hit
//	n:<k>     trip exactly once, on the k-th hit
//	e:<k>     trip on every k-th hit (periodic)
//	x:<v>     trip on every hit, carrying numeric parameter v (see Param)
//	always    trip on every hit
//	off       never trip (registers the point for Counts visibility)
//
// x:<v> exists for degradation points that need a magnitude, not just a
// boolean — worker.slow=x:30 means "inflate run time 30×". Param returns
// the armed value without counting a hit.
//
// Probabilistic points draw from a seeded deterministic PRNG (per-point
// stream derived from the seed and the point name), so a chaos run can be
// replayed. Counts exposes per-point hit/trip counters for assertions.
package fault

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
)

// ErrInjected is the sentinel every injected failure wraps; transient by
// construction (the fault, not the operation, failed).
var ErrInjected = errors.New("fault: injected failure")

// EnvFaults and EnvSeed are the environment variables ArmFromEnv reads.
const (
	EnvFaults = "PRECISIOND_FAULTS"
	EnvSeed   = "PRECISIOND_FAULT_SEED"
)

type triggerKind int

const (
	kindOff triggerKind = iota
	kindProb
	kindNth
	kindEvery
	kindParam
	kindAlways
)

type point struct {
	kind triggerKind
	p    float64
	n    uint64 // kindNth: trip on exactly this hit count; kindEvery: period

	rng *rand.Rand

	hits  uint64
	trips uint64
}

var (
	armed atomic.Bool // fast-path gate: false ⇒ Hit is a single load
	mu    sync.Mutex
	reg   map[string]*point
	seed  int64 = 1
)

// Arm parses a fault spec ("name=trigger,name=trigger,…") and replaces the
// current registry with it. An empty spec disarms everything.
func Arm(spec string) error {
	pts := map[string]*point{}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, trig, ok := strings.Cut(field, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return fmt.Errorf("fault: bad spec entry %q (want name=trigger)", field)
		}
		pt, err := parseTrigger(strings.TrimSpace(trig))
		if err != nil {
			return fmt.Errorf("fault: point %q: %w", name, err)
		}
		pts[name] = pt
	}
	mu.Lock()
	defer mu.Unlock()
	for name, pt := range pts {
		pt.rng = rand.New(rand.NewSource(seed ^ int64(nameHash(name))))
	}
	reg = pts
	armed.Store(len(pts) > 0)
	return nil
}

// SetSeed fixes the PRNG seed for subsequently armed probabilistic points.
func SetSeed(s int64) {
	mu.Lock()
	seed = s
	mu.Unlock()
}

// ArmFromEnv arms from PRECISIOND_FAULTS (a no-op when unset), seeding from
// PRECISIOND_FAULT_SEED when present.
func ArmFromEnv() error {
	if s, ok := os.LookupEnv(EnvSeed); ok {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return fmt.Errorf("fault: %s: %w", EnvSeed, err)
		}
		SetSeed(v)
	}
	spec, ok := os.LookupEnv(EnvFaults)
	if !ok {
		return nil
	}
	return Arm(spec)
}

// Disarm removes every failure point.
func Disarm() {
	mu.Lock()
	reg = nil
	armed.Store(false)
	mu.Unlock()
}

// Enabled reports whether any point is armed — the cheap pre-check callers
// on hot paths can use to skip building error context.
func Enabled() bool { return armed.Load() }

func parseTrigger(s string) (*point, error) {
	switch {
	case s == "always":
		return &point{kind: kindAlways}, nil
	case s == "off":
		return &point{kind: kindOff}, nil
	case strings.HasPrefix(s, "p:"):
		p, err := strconv.ParseFloat(s[2:], 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("bad probability %q", s)
		}
		return &point{kind: kindProb, p: p}, nil
	case strings.HasPrefix(s, "n:"):
		n, err := strconv.ParseUint(s[2:], 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("bad hit count %q", s)
		}
		return &point{kind: kindNth, n: n}, nil
	case strings.HasPrefix(s, "e:"):
		n, err := strconv.ParseUint(s[2:], 10, 64)
		if err != nil || n == 0 {
			return nil, fmt.Errorf("bad period %q", s)
		}
		return &point{kind: kindEvery, n: n}, nil
	case strings.HasPrefix(s, "x:"):
		v, err := strconv.ParseFloat(s[2:], 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("bad parameter %q", s)
		}
		return &point{kind: kindParam, p: v}, nil
	default:
		return nil, fmt.Errorf("unknown trigger %q (want p:<prob>, n:<k>, e:<k>, x:<v>, always or off)", s)
	}
}

func nameHash(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Hit reports whether the named failure point trips on this call. Unarmed
// (or unknown) points never trip and cost one atomic load.
func Hit(name string) bool {
	if !armed.Load() {
		return false
	}
	mu.Lock()
	defer mu.Unlock()
	pt, ok := reg[name]
	if !ok {
		return false
	}
	pt.hits++
	trip := false
	switch pt.kind {
	case kindAlways, kindParam:
		trip = true
	case kindProb:
		trip = pt.rng.Float64() < pt.p
	case kindNth:
		trip = pt.hits == pt.n
	case kindEvery:
		trip = pt.hits%pt.n == 0
	}
	if trip {
		pt.trips++
	}
	return trip
}

// Param returns the numeric parameter of an x:<v>-armed point and whether
// the point is armed with one. It does not count a hit — call Hit to trip
// the point and Param to read its magnitude.
func Param(name string) (float64, bool) {
	if !armed.Load() {
		return 0, false
	}
	mu.Lock()
	defer mu.Unlock()
	pt, ok := reg[name]
	if !ok || pt.kind != kindParam {
		return 0, false
	}
	return pt.p, true
}

// Error returns an ErrInjected-wrapping error when the named point trips,
// nil otherwise — the one-liner form for error-returning call sites.
func Error(name string) error {
	if !Hit(name) {
		return nil
	}
	return fmt.Errorf("%w at %s", ErrInjected, name)
}

// Count is one point's traffic.
type Count struct {
	Name  string `json:"name"`
	Hits  uint64 `json:"hits"`
	Trips uint64 `json:"trips"`
}

// Counts snapshots every armed point's hit/trip counters, sorted by name.
func Counts() []Count {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Count, 0, len(reg))
	for name, pt := range reg {
		out = append(out, Count{Name: name, Hits: pt.hits, Trips: pt.trips})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// RegisterMetrics contributes the armed points' hit/trip counters to a
// metrics registry as scrape-time samples, so chaos runs show up on
// /metrics. Nothing armed ⇒ nothing emitted.
func RegisterMetrics(r *obs.Registry) {
	r.Collect(func(emit func(obs.Sample)) {
		for _, c := range Counts() {
			emit(obs.Sample{
				Name: "fault_injection_hits_total",
				Help: "Times an armed fault point was consulted.", Type: "counter",
				Value: float64(c.Hits), LabelPairs: []string{"point", c.Name},
			})
			emit(obs.Sample{
				Name: "fault_injection_trips_total",
				Help: "Times an armed fault point injected a failure.", Type: "counter",
				Value: float64(c.Trips), LabelPairs: []string{"point", c.Name},
			})
		}
	})
}
