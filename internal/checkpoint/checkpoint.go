// Package checkpoint implements the binary checkpoint format whose on-disk
// size the paper reports (Table III: minimum- and mixed-precision CLAMR
// checkpoints are ~2/3 the size of full-precision ones, because the large
// state arrays are written at storage precision while mesh metadata stays
// fixed-width).
//
// Layout: an 8-byte magic+version, a JSON header (array directory), then
// raw little-endian array payloads in directory order.
package checkpoint

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/fp16"
	"repro/internal/zfp"
)

// Magic identifies checkpoint files ("MPCK" + 3-byte version + pad).
var Magic = [8]byte{'M', 'P', 'C', 'K', 0, 0, 1, 0}

// ElemKind identifies the element encoding of one array.
type ElemKind string

const (
	F16 ElemKind = "f16"
	F32 ElemKind = "f32"
	F64 ElemKind = "f64"
	I32 ElemKind = "i32"
	// ZFP2D is a fixed-rate compressed 2-D field (internal/zfp); its
	// payload length comes from ArrayInfo.Bytes rather than Len×Size.
	ZFP2D ElemKind = "zfp2d"
)

// Size returns bytes per element.
func (k ElemKind) Size() int {
	switch k {
	case F16:
		return 2
	case F32, I32:
		return 4
	case F64:
		return 8
	default:
		return 0
	}
}

// ArrayInfo describes one payload array.
type ArrayInfo struct {
	Name string   `json:"name"`
	Kind ElemKind `json:"kind"`
	Len  int      `json:"len"`
	// Bytes is the payload size for kinds whose encoding is not
	// Len×Size() (ZFP2D).
	Bytes int `json:"bytes,omitempty"`
}

// payloadBytes returns the on-disk payload size of the array.
func (a ArrayInfo) payloadBytes() (int, error) {
	if a.Kind == ZFP2D {
		if a.Bytes <= 0 {
			return 0, fmt.Errorf("checkpoint: zfp array %q missing byte length", a.Name)
		}
		return a.Bytes, nil
	}
	if a.Len < 0 || a.Kind.Size() == 0 {
		return 0, fmt.Errorf("checkpoint: bad array directory entry %+v", a)
	}
	return a.Len * a.Kind.Size(), nil
}

// Header describes a checkpoint.
type Header struct {
	App    string      `json:"app"`
	Step   int         `json:"step"`
	Time   float64     `json:"time"`
	Arrays []ArrayInfo `json:"arrays"`
}

// Writer serialises one checkpoint to an io.Writer.
type Writer struct {
	w      io.Writer
	header Header
	bodies [][]byte
}

// NewWriter starts a checkpoint with the given identity metadata.
func NewWriter(w io.Writer, app string, step int, simTime float64) *Writer {
	return &Writer{w: w, header: Header{App: app, Step: step, Time: simTime}}
}

// AddF64, AddF32, AddF16 and AddI32 append a named array at the given
// encoding. Data is staged until Flush.
func (cw *Writer) AddF64(name string, xs []float64) {
	body := make([]byte, 8*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint64(body[8*i:], math.Float64bits(x))
	}
	cw.add(name, F64, len(xs), body)
}

// AddF32 appends a float32 array.
func (cw *Writer) AddF32(name string, xs []float32) {
	body := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(body[4*i:], math.Float32bits(x))
	}
	cw.add(name, F32, len(xs), body)
}

// AddF16 appends a binary16 array.
func (cw *Writer) AddF16(name string, xs []fp16.Float16) {
	body := make([]byte, 2*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint16(body[2*i:], x.Bits())
	}
	cw.add(name, F16, len(xs), body)
}

// AddI32 appends an int32 array.
func (cw *Writer) AddI32(name string, xs []int32) {
	body := make([]byte, 4*len(xs))
	for i, x := range xs {
		binary.LittleEndian.PutUint32(body[4*i:], uint32(x))
	}
	cw.add(name, I32, len(xs), body)
}

// AddF64Compressed appends a 2-D float64 field compressed with the
// fixed-rate zfp-style codec at `rate` bits per value — the lossy analysis
// dump the paper's storage discussion contemplates (ref [34]).
func (cw *Writer) AddF64Compressed(name string, data []float64, nx, ny, rate int) error {
	buf, err := zfp.Compress2D(data, nx, ny, rate)
	if err != nil {
		return fmt.Errorf("checkpoint: compress %q: %w", name, err)
	}
	cw.header.Arrays = append(cw.header.Arrays, ArrayInfo{
		Name: name, Kind: ZFP2D, Len: nx * ny, Bytes: len(buf),
	})
	cw.bodies = append(cw.bodies, buf)
	return nil
}

func (cw *Writer) add(name string, kind ElemKind, n int, body []byte) {
	cw.header.Arrays = append(cw.header.Arrays, ArrayInfo{Name: name, Kind: kind, Len: n})
	cw.bodies = append(cw.bodies, body)
}

// Flush writes the complete checkpoint and returns the total bytes written.
func (cw *Writer) Flush() (int64, error) {
	var total int64
	n, err := cw.w.Write(Magic[:])
	total += int64(n)
	if err != nil {
		return total, fmt.Errorf("checkpoint: magic: %w", err)
	}
	hdr, err := json.Marshal(cw.header)
	if err != nil {
		return total, fmt.Errorf("checkpoint: header: %w", err)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(hdr)))
	if n, err = cw.w.Write(lenBuf[:]); err != nil {
		return total + int64(n), fmt.Errorf("checkpoint: header length: %w", err)
	}
	total += int64(n)
	if n, err = cw.w.Write(hdr); err != nil {
		return total + int64(n), fmt.Errorf("checkpoint: header body: %w", err)
	}
	total += int64(n)
	for i, body := range cw.bodies {
		if n, err = cw.w.Write(body); err != nil {
			return total + int64(n), fmt.Errorf("checkpoint: array %q: %w", cw.header.Arrays[i].Name, err)
		}
		total += int64(n)
	}
	return total, nil
}

// Checkpoint is a fully read checkpoint.
type Checkpoint struct {
	Header Header
	arrays map[string]any // []float64 | []float32 | []fp16.Float16 | []int32
}

// Read parses a checkpoint from r.
func Read(r io.Reader) (*Checkpoint, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: magic: %w", err)
	}
	if magic != Magic {
		return nil, fmt.Errorf("checkpoint: bad magic %x", magic)
	}
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: header length: %w", err)
	}
	hdrLen := binary.LittleEndian.Uint32(lenBuf[:])
	if hdrLen > 1<<24 {
		return nil, fmt.Errorf("checkpoint: implausible header length %d", hdrLen)
	}
	hdrBytes := make([]byte, hdrLen)
	if _, err := io.ReadFull(r, hdrBytes); err != nil {
		return nil, fmt.Errorf("checkpoint: header body: %w", err)
	}
	ck := &Checkpoint{arrays: make(map[string]any)}
	if err := json.Unmarshal(hdrBytes, &ck.Header); err != nil {
		return nil, fmt.Errorf("checkpoint: header JSON: %w", err)
	}
	for _, info := range ck.Header.Arrays {
		n, err := info.payloadBytes()
		if err != nil {
			return nil, err
		}
		if n > 1<<31 {
			return nil, fmt.Errorf("checkpoint: array %q implausibly large", info.Name)
		}
		body := make([]byte, n)
		if _, err := io.ReadFull(r, body); err != nil {
			return nil, fmt.Errorf("checkpoint: array %q: %w", info.Name, err)
		}
		switch info.Kind {
		case ZFP2D:
			xs, _, _, err := zfp.Decompress2D(body)
			if err != nil {
				return nil, fmt.Errorf("checkpoint: array %q: %w", info.Name, err)
			}
			if len(xs) != info.Len {
				return nil, fmt.Errorf("checkpoint: array %q decompressed to %d values, want %d", info.Name, len(xs), info.Len)
			}
			ck.arrays[info.Name] = xs
		case F64:
			xs := make([]float64, info.Len)
			for i := range xs {
				xs[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
			}
			ck.arrays[info.Name] = xs
		case F32:
			xs := make([]float32, info.Len)
			for i := range xs {
				xs[i] = math.Float32frombits(binary.LittleEndian.Uint32(body[4*i:]))
			}
			ck.arrays[info.Name] = xs
		case F16:
			xs := make([]fp16.Float16, info.Len)
			for i := range xs {
				xs[i] = fp16.FromBits(binary.LittleEndian.Uint16(body[2*i:]))
			}
			ck.arrays[info.Name] = xs
		case I32:
			xs := make([]int32, info.Len)
			for i := range xs {
				xs[i] = int32(binary.LittleEndian.Uint32(body[4*i:]))
			}
			ck.arrays[info.Name] = xs
		}
	}
	return ck, nil
}

// Float64Array returns the named array widened to []float64 regardless of
// its stored encoding (integers are not widened).
func (ck *Checkpoint) Float64Array(name string) ([]float64, error) {
	switch xs := ck.arrays[name].(type) {
	case []float64:
		return xs, nil
	case []float32:
		out := make([]float64, len(xs))
		for i, x := range xs {
			out[i] = float64(x)
		}
		return out, nil
	case []fp16.Float16:
		return fp16.ToSlice64(nil, xs), nil
	case nil:
		return nil, fmt.Errorf("checkpoint: no array %q", name)
	default:
		return nil, fmt.Errorf("checkpoint: array %q is not floating point", name)
	}
}

// Int32Array returns the named int32 array.
func (ck *Checkpoint) Int32Array(name string) ([]int32, error) {
	switch xs := ck.arrays[name].(type) {
	case []int32:
		return xs, nil
	case nil:
		return nil, fmt.Errorf("checkpoint: no array %q", name)
	default:
		return nil, fmt.Errorf("checkpoint: array %q is not int32", name)
	}
}
