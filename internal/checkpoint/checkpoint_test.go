package checkpoint

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/fp16"
)

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, "clamr", 42, 1.5)
	h64 := []float64{1, 2.5, -3, math.Pi}
	h32 := []float32{0.5, -0.25}
	h16 := fp16.FromSlice64([]float64{1, 2, 65504})
	ids := []int32{-1, 0, 7}
	w.AddF64("h64", h64)
	w.AddF32("h32", h32)
	w.AddF16("h16", h16)
	w.AddI32("ids", ids)
	n, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("Flush reported %d bytes, wrote %d", n, buf.Len())
	}

	ck, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Header.App != "clamr" || ck.Header.Step != 42 || ck.Header.Time != 1.5 {
		t.Errorf("header %+v", ck.Header)
	}
	got64, err := ck.Float64Array("h64")
	if err != nil {
		t.Fatal(err)
	}
	for i := range h64 {
		if got64[i] != h64[i] {
			t.Errorf("h64[%d] = %g", i, got64[i])
		}
	}
	got32, err := ck.Float64Array("h32")
	if err != nil {
		t.Fatal(err)
	}
	if got32[0] != 0.5 || got32[1] != -0.25 {
		t.Errorf("h32 = %v", got32)
	}
	got16, err := ck.Float64Array("h16")
	if err != nil {
		t.Fatal(err)
	}
	if got16[2] != 65504 {
		t.Errorf("h16 = %v", got16)
	}
	gotIDs, err := ck.Int32Array("ids")
	if err != nil {
		t.Fatal(err)
	}
	if gotIDs[0] != -1 || gotIDs[2] != 7 {
		t.Errorf("ids = %v", gotIDs)
	}
}

func TestSizeScalesWithPrecision(t *testing.T) {
	// The same logical state written at f32 must be roughly half the f64
	// payload (the paper's 2/3 total comes from fixed-width metadata).
	n := 10000
	xs64 := make([]float64, n)
	xs32 := make([]float32, n)
	meta := make([]int32, n)

	var full, min bytes.Buffer
	wf := NewWriter(&full, "t", 0, 0)
	wf.AddF64("a", xs64)
	wf.AddF64("b", xs64)
	wf.AddF64("c", xs64)
	wf.AddI32("meta", meta)
	nFull, err := wf.Flush()
	if err != nil {
		t.Fatal(err)
	}
	wm := NewWriter(&min, "t", 0, 0)
	wm.AddF32("a", xs32)
	wm.AddF32("b", xs32)
	wm.AddF32("c", xs32)
	wm.AddI32("meta", meta)
	nMin, err := wm.Flush()
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(nMin) / float64(nFull)
	// 3×4+4 over 3×8+4 = 16/28 ≈ 0.571 plus a few header bytes.
	if ratio < 0.5 || ratio > 0.65 {
		t.Errorf("min/full checkpoint ratio = %.3f", ratio)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("short"))); err == nil {
		t.Error("Read accepted truncated magic")
	}
	bad := append([]byte("XXXXXXXX"), 0, 0, 0, 0)
	if _, err := Read(bytes.NewReader(bad)); err == nil {
		t.Error("Read accepted bad magic")
	}
	// Truncated payload.
	var buf bytes.Buffer
	w := NewWriter(&buf, "t", 0, 0)
	w.AddF64("a", make([]float64, 100))
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := Read(bytes.NewReader(trunc)); err == nil {
		t.Error("Read accepted truncated payload")
	}
	// Missing / mistyped arrays.
	buf.Reset()
	w = NewWriter(&buf, "t", 0, 0)
	w.AddI32("ints", []int32{1})
	if _, err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	ck, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Float64Array("missing"); err == nil {
		t.Error("Float64Array found a missing array")
	}
	if _, err := ck.Float64Array("ints"); err == nil {
		t.Error("Float64Array widened an int array")
	}
	if _, err := ck.Int32Array("missing"); err == nil {
		t.Error("Int32Array found a missing array")
	}
}

func TestElemKindSizes(t *testing.T) {
	if F16.Size() != 2 || F32.Size() != 4 || F64.Size() != 8 || I32.Size() != 4 {
		t.Error("element sizes wrong")
	}
	if ElemKind("bogus").Size() != 0 {
		t.Error("unknown kind has nonzero size")
	}
}

func TestCompressedFieldRoundTrip(t *testing.T) {
	const nx, ny = 24, 20
	field := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			field[j*nx+i] = 5 + math.Sin(float64(i)/3)*math.Cos(float64(j)/4)
		}
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, "dump", 3, 0.25)
	if err := w.AddF64Compressed("height", field, nx, ny, 16); err != nil {
		t.Fatal(err)
	}
	w.AddF64("exact", field) // mixing compressed and exact arrays
	n, err := w.Flush()
	if err != nil {
		t.Fatal(err)
	}
	// The file holds one exact array (8 B/value) plus one compressed
	// array: the total must sit well below two raw arrays.
	if n > int64(nx*ny*8)+int64(nx*ny)*3 {
		t.Errorf("compressed checkpoint %d bytes — compression ineffective", n)
	}
	ck, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ck.Float64Array("height")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != nx*ny {
		t.Fatalf("decompressed length %d", len(got))
	}
	worst := 0.0
	for i := range field {
		if d := math.Abs(got[i] - field[i]); d > worst {
			worst = d
		}
	}
	if worst > 1e-4 {
		t.Errorf("compressed field error %g", worst)
	}
	exact, err := ck.Float64Array("exact")
	if err != nil {
		t.Fatal(err)
	}
	if exact[7] != field[7] {
		t.Error("exact array corrupted by compressed sibling")
	}
	// Bad rate propagates as an error.
	w2 := NewWriter(&bytes.Buffer{}, "dump", 0, 0)
	if err := w2.AddF64Compressed("x", field, nx, ny, 1); err == nil {
		t.Error("invalid rate accepted")
	}
}
