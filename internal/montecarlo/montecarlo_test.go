package montecarlo

import (
	"math"
	"testing"

	"repro/internal/precision"
	"repro/internal/reduce"
)

var testParams = Params{S0: 100, Strike: 105, Rate: 0.02, Vol: 0.25, T: 1}

func TestBlackScholesKnownValue(t *testing.T) {
	// Independent check: at-the-money, zero rate, the Black–Scholes call
	// is ≈ 0.3989·S0·σ√T for small σ√T.
	p := Params{S0: 100, Strike: 100, Rate: 0, Vol: 0.1, T: 1}
	got := p.BlackScholesCall()
	approx := 0.3989 * 100 * 0.1
	if math.Abs(got-approx)/approx > 0.02 {
		t.Errorf("BS price %g, approximation %g", got, approx)
	}
	// Monotone in volatility and spot.
	pHigh := p
	pHigh.Vol = 0.3
	if pHigh.BlackScholesCall() <= got {
		t.Error("price not increasing in volatility")
	}
	pIn := p
	pIn.S0 = 120
	if pIn.BlackScholesCall() <= got {
		t.Error("price not increasing in spot")
	}
}

func TestMonteCarloConverges(t *testing.T) {
	cfg := Config{Paths: 400000, Seed: 1, PathMode: precision.Full, SumMethod: reduce.Neumaier}
	res, err := Price(testParams, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// MC error ~ σ/√n ≈ 0.03 on a ~9.3 price → rel ~3e-3.
	if res.RelError > 0.01 {
		t.Errorf("MC price %g vs BS %g (rel %g)", res.Price, res.Reference, res.RelError)
	}
	if res.Counters.Flops64 == 0 || res.Counters.Transcendental64 == 0 {
		t.Error("counters empty")
	}
}

func TestSinglePathMathIsCloseEnough(t *testing.T) {
	// The paper's thesis on this workload: per-path single precision does
	// not harm the estimate (sampling noise dominates), as long as the
	// accumulation is protected.
	full, err := Price(testParams, Config{Paths: 200000, Seed: 2, PathMode: precision.Full, SumMethod: reduce.Reproducible})
	if err != nil {
		t.Fatal(err)
	}
	single, err := Price(testParams, Config{Paths: 200000, Seed: 2, PathMode: precision.Min, SumMethod: reduce.Reproducible})
	if err != nil {
		t.Fatal(err)
	}
	diff := math.Abs(full.Price-single.Price) / full.Price
	if diff > 1e-5 {
		t.Errorf("single-path price differs by %g", diff)
	}
	if diff == 0 {
		t.Error("single-path identical to double — precision plumbing broken")
	}
	if single.Counters.Flops32 == 0 || single.Counters.Flops64 != 0 {
		t.Errorf("single counters wrong: %+v", single.Counters)
	}
}

func TestNaiveSingleAccumulationBias(t *testing.T) {
	// The hazardous configuration: naive float32 accumulation of 10⁶
	// payoffs drifts visibly; a reproducible sum of the same float32
	// payoffs does not.
	cfgBad := Config{Paths: 1 << 20, Seed: 3, PathMode: precision.Min, SumMethod: reduce.Naive}
	biasBad, err := AccumulationBias(testParams, cfgBad)
	if err != nil {
		t.Fatal(err)
	}
	cfgGood := cfgBad
	cfgGood.SumMethod = reduce.Reproducible
	biasGood, err := AccumulationBias(testParams, cfgGood)
	if err != nil {
		t.Fatal(err)
	}
	if biasBad < 100*biasGood {
		t.Errorf("naive f32 accumulation bias %g not ≫ protected bias %g", biasBad, biasGood)
	}
	if biasBad < 1e-6 {
		t.Errorf("naive f32 accumulation bias %g suspiciously small", biasBad)
	}
	if biasGood > 1e-12 {
		t.Errorf("reproducible accumulation bias %g too large", biasGood)
	}
}

func TestSameSeedSamePaths(t *testing.T) {
	// Differences between precisions must be numerical, not statistical:
	// the random stream is identical.
	a, err := Price(testParams, Config{Paths: 1000, Seed: 7, PathMode: precision.Full, SumMethod: reduce.LongAcc})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Price(testParams, Config{Paths: 1000, Seed: 7, PathMode: precision.Full, SumMethod: reduce.LongAcc})
	if err != nil {
		t.Fatal(err)
	}
	if a.Price != b.Price {
		t.Error("same seed produced different prices")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Price(Params{}, Config{Paths: 10}); err == nil {
		t.Error("zero parameters accepted")
	}
	if _, err := Price(testParams, Config{Paths: 0}); err == nil {
		t.Error("zero paths accepted")
	}
	if _, err := AccumulationBias(Params{S0: -1}, Config{Paths: 10}); err == nil {
		t.Error("AccumulationBias accepted bad params")
	}
}

func BenchmarkPricePaths(b *testing.B) {
	for _, mode := range []precision.Mode{precision.Min, precision.Full} {
		b.Run(mode.String(), func(b *testing.B) {
			cfg := Config{Paths: 100000, Seed: 1, PathMode: mode, SumMethod: reduce.Neumaier}
			for i := 0; i < b.N; i++ {
				if _, err := Price(testParams, cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
