// Package montecarlo reproduces the paper's prior-work Monte Carlo thread
// ([10] Brugger et al., mixed-precision multilevel Monte Carlo for
// financial engineering) as a third algorithm class for the precision
// study (§VIII: "a broad range of mini-apps with different classes of
// algorithms"): geometric-Brownian-motion option pricing where the per-path
// arithmetic runs at a selectable precision while the accumulation
// strategy is chosen independently — the same local-math-vs-global-sum
// split the paper's mini-apps exhibit.
package montecarlo

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/metrics"
	"repro/internal/precision"
	"repro/internal/reduce"
)

// Params describes a European call option under geometric Brownian motion.
type Params struct {
	// S0 is the spot price, Strike the exercise price.
	S0, Strike float64
	// Rate is the risk-free rate, Vol the volatility, T the maturity.
	Rate, Vol, T float64
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.S0 <= 0 || p.Strike <= 0 || p.Vol <= 0 || p.T <= 0 {
		return fmt.Errorf("montecarlo: parameters must be positive: %+v", p)
	}
	return nil
}

// BlackScholesCall returns the closed-form price the simulation must
// converge to.
func (p Params) BlackScholesCall() float64 {
	d1 := (math.Log(p.S0/p.Strike) + (p.Rate+p.Vol*p.Vol/2)*p.T) / (p.Vol * math.Sqrt(p.T))
	d2 := d1 - p.Vol*math.Sqrt(p.T)
	phi := func(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }
	return p.S0*phi(d1) - p.Strike*math.Exp(-p.Rate*p.T)*phi(d2)
}

// Config selects the numerical treatment.
type Config struct {
	// Paths is the sample count.
	Paths int
	// Seed fixes the random stream (paths are identical across precisions
	// so differences are purely numerical).
	Seed int64
	// PathMode is the precision of the per-path arithmetic
	// (exp/payoff): Min = float32, Full = float64. Mixed behaves as Full
	// for path math (locals promoted).
	PathMode precision.Mode
	// SumMethod accumulates payoffs (the global reduction).
	SumMethod reduce.Method
}

// Result reports one pricing run.
type Result struct {
	Price     float64
	Reference float64 // Black–Scholes closed form
	RelError  float64
	Counters  metrics.Counters
}

// Price runs the simulation.
func Price(p Params, cfg Config) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	if cfg.Paths <= 0 {
		return Result{}, fmt.Errorf("montecarlo: path count %d must be positive", cfg.Paths)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	drift := (p.Rate - p.Vol*p.Vol/2) * p.T
	diff := p.Vol * math.Sqrt(p.T)
	discount := math.Exp(-p.Rate * p.T)

	payoffs := make([]float64, cfg.Paths)
	var c metrics.Counters
	single := cfg.PathMode == precision.Min || cfg.PathMode == precision.Half
	for i := range payoffs {
		z := rng.NormFloat64()
		if single {
			// Per-path arithmetic entirely in float32.
			st := float32(p.S0) * float32(math.Exp(float64(float32(drift)+float32(diff)*float32(z))))
			pay := st - float32(p.Strike)
			if pay < 0 {
				pay = 0
			}
			payoffs[i] = float64(float32(discount) * pay)
		} else {
			st := p.S0 * math.Exp(drift+diff*z)
			pay := st - p.Strike
			if pay < 0 {
				pay = 0
			}
			payoffs[i] = discount * pay
		}
	}
	if single {
		c.Flops32 = uint64(cfg.Paths) * 6
		c.Transcendental32 = uint64(cfg.Paths)
	} else {
		c.Flops64 = uint64(cfg.Paths) * 6
		c.Transcendental64 = uint64(cfg.Paths)
	}
	c.LoadBytes = uint64(cfg.Paths) * 8
	c.StoreBytes = uint64(cfg.Paths) * 8

	var total float64
	if single && cfg.SumMethod == reduce.Naive {
		// The hazardous configuration the prior work warns about: a long
		// naive accumulation at storage precision.
		var acc float32
		for _, v := range payoffs {
			acc += float32(v)
		}
		total = float64(acc)
	} else {
		total = reduce.Sum(payoffs, cfg.SumMethod)
	}
	price := total / float64(cfg.Paths)
	ref := p.BlackScholesCall()
	return Result{
		Price:     price,
		Reference: ref,
		RelError:  math.Abs(price-ref) / ref,
		Counters:  c,
	}, nil
}

// AccumulationBias isolates the reduction error: it prices the option with
// the given configuration and with the same path precision but an exact
// (long accumulator) sum, returning |price − priceExact| / priceExact —
// pure accumulation error, with the Monte Carlo sampling noise cancelled.
func AccumulationBias(p Params, cfg Config) (float64, error) {
	withSum, err := Price(p, cfg)
	if err != nil {
		return 0, err
	}
	exactCfg := cfg
	exactCfg.SumMethod = reduce.LongAcc
	exact, err := Price(p, exactCfg)
	if err != nil {
		return 0, err
	}
	if exact.Price == 0 {
		return 0, fmt.Errorf("montecarlo: degenerate exact price")
	}
	return math.Abs(withSum.Price-exact.Price) / math.Abs(exact.Price), nil
}
