package arch

import (
	"testing"
	"time"

	"repro/internal/metrics"
)

// clamrLike builds a workload shaped like a CLAMR run at the given storage
// width (bytes/scalar) and compute width.
func clamrLike(storageBytes, computeBytes int, vectorized bool) Workload {
	const cells = 4_000_000
	const faces = 2 * cells
	c := metrics.Counters{
		LoadBytes:      uint64(faces * 6 * storageBytes),
		StoreBytes:     uint64(cells * 3 * storageBytes),
		KernelLaunches: 200,
	}
	flops := uint64(faces*30 + cells*9)
	transc := uint64(faces * 2)
	if computeBytes == 8 {
		c.Flops64, c.Transcendental64 = flops, transc
	} else {
		c.Flops32, c.Transcendental32 = flops, transc
	}
	if storageBytes != computeBytes {
		c.Conversions = uint64(faces * 6)
	}
	return Workload{
		Counters:   c,
		Vectorized: vectorized,
		SerialOps:  cells,
		StateBytes: uint64(cells * 3 * storageBytes),
	}
}

func TestGPUPrecisionSpeedupShape(t *testing.T) {
	min := clamrLike(4, 4, true)
	full := clamrLike(8, 8, true)
	// TITAN X (32:1 SP:DP) must show a much larger min-vs-full speedup
	// than the K40m (3:1), which in turn beats the CPUs (paper Table I:
	// 453% vs 261% vs ~20%).
	su := func(s Spec) float64 {
		return float64(s.Predict(full)) / float64(s.Predict(min))
	}
	titan, k40, hsw := su(TitanX), su(TeslaK40m), su(Haswell)
	if !(titan > k40 && k40 > hsw) {
		t.Errorf("speedup ordering wrong: titan %.2f k40 %.2f haswell %.2f", titan, k40, hsw)
	}
	if titan < 2.0 {
		t.Errorf("TITAN X speedup %.2f, want ≳2 (32:1 DP penalty)", titan)
	}
	if hsw < 1.05 || hsw > 1.6 {
		t.Errorf("Haswell speedup %.2f, want modest", hsw)
	}
}

func TestVectorizationInteraction(t *testing.T) {
	// Paper Table III: scalar code gains little from single precision
	// (~12%), vectorized code gains a lot (~1.9×).
	minScalar := clamrLike(4, 4, false)
	fullScalar := clamrLike(8, 8, false)
	minVec := clamrLike(4, 4, true)
	fullVec := clamrLike(8, 8, true)
	scalarGain := float64(Haswell.Predict(fullScalar)) / float64(Haswell.Predict(minScalar))
	vecGain := float64(Haswell.Predict(fullVec)) / float64(Haswell.Predict(minVec))
	if scalarGain >= vecGain {
		t.Errorf("scalar gain %.2f not below vectorized gain %.2f", scalarGain, vecGain)
	}
	// Vectorizing itself speeds the code up.
	if Haswell.Predict(fullVec) >= Haswell.Predict(fullScalar) {
		t.Error("vectorization did not help")
	}
}

func TestMixedBehavesLikeFullComputeMinMemory(t *testing.T) {
	// Paper Table I GPU rows: mixed runtime ≈ full runtime (compute in
	// double dominates) while memory footprint matches min.
	mixed := clamrLike(4, 8, true)
	full := clamrLike(8, 8, true)
	min := clamrLike(4, 4, true)
	tm, tf, tmin := TeslaK40m.Predict(mixed), TeslaK40m.Predict(full), TeslaK40m.Predict(min)
	if float64(tm) < 0.7*float64(tf) {
		t.Errorf("mixed (%v) much faster than full (%v) on K40m — should be compute-bound", tm, tf)
	}
	if float64(tm) < float64(tmin) {
		t.Errorf("mixed (%v) faster than min (%v)", tm, tmin)
	}
	if mixed.StateBytes != min.StateBytes {
		t.Error("mixed state bytes differ from min")
	}
}

func TestEnergyIsPowerTimesTime(t *testing.T) {
	d := 10 * time.Second
	if got := Haswell.Energy(d); got != 105*10 {
		t.Errorf("Haswell energy = %g", got)
	}
	if got := TitanX.Energy(time.Second); got != 250 {
		t.Errorf("TitanX energy = %g", got)
	}
}

func TestEnergyOrderingFollowsPaper(t *testing.T) {
	// Table II shape: GPUs at min precision use far less energy than CPUs
	// at any precision for the same workload.
	min := clamrLike(4, 4, true)
	full := clamrLike(8, 8, true)
	gpuMin := TitanX.Energy(TitanX.Predict(min))
	cpuFull := Haswell.Energy(Haswell.Predict(full))
	if gpuMin >= cpuFull {
		t.Errorf("TITAN X min energy %.0f J not below Haswell full %.0f J", gpuMin, cpuFull)
	}
	// Min always at or below full on the same platform.
	for _, s := range SELFSpecs {
		if s.Energy(s.Predict(min)) > s.Energy(s.Predict(full)) {
			t.Errorf("%s: min energy above full", s.Name)
		}
	}
}

func TestTable(t *testing.T) {
	min := clamrLike(4, 4, true)
	full := clamrLike(8, 8, true)
	rows := Table(CLAMRSpecs, []Workload{min, full})
	if len(rows) != len(CLAMRSpecs) {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if len(r.Times) != 2 || len(r.Energy) != 2 || len(r.MemGB) != 2 {
			t.Fatalf("row %s malformed: %+v", r.Arch, r)
		}
		if r.Speedup < 1 {
			t.Errorf("%s speedup %.2f < 1", r.Arch, r.Speedup)
		}
		if r.MemGB[0] >= r.MemGB[1] {
			t.Errorf("%s memory not smaller at min", r.Arch)
		}
	}
}

func TestFitsInMemory(t *testing.T) {
	small := Workload{StateBytes: 1 << 30}
	huge := Workload{StateBytes: 1 << 45}
	if !TeslaK40m.FitsInMemory(small) {
		t.Error("1 GiB reported not fitting in 12 GB")
	}
	if TeslaK40m.FitsInMemory(huge) {
		t.Error("32 TiB reported fitting in 12 GB")
	}
}

func TestFindSpec(t *testing.T) {
	s, err := FindSpec("Tesla P100")
	if err != nil || s.DPPeakGF != 5300 {
		t.Errorf("FindSpec P100: %+v, %v", s, err)
	}
	if _, err := FindSpec("Cray-1"); err == nil {
		t.Error("FindSpec accepted unknown platform")
	}
}

func TestClassString(t *testing.T) {
	if CPU.String() != "CPU" || GPU.String() != "GPU" {
		t.Error("class names wrong")
	}
}

func TestLaunchOverheadMatters(t *testing.T) {
	// A tiny workload with many launches is launch-bound on GPUs.
	w := Workload{Counters: metrics.Counters{Flops32: 1000, KernelLaunches: 1_000_000}}
	tGPU := TeslaK40m.Predict(w)
	if tGPU < 5*time.Second {
		t.Errorf("launch overhead missing: %v", tGPU)
	}
	wCPU := TeslaK40m
	wCPU.LaunchOverhead = 0
	if wCPU.Predict(w) > time.Second {
		t.Error("zero-overhead spec still launch-bound")
	}
}
