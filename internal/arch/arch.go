// Package arch models the compute platforms of the paper's evaluation —
// two Intel Xeons and four NVIDIA GPUs — as roofline machines driven by the
// operation/traffic counters the instrumented mini-apps record.
//
// The paper estimates energy as nominal power × runtime; this package does
// exactly that, with runtime predicted from published peak-flops and
// memory-bandwidth specifications. The model is deliberately simple (the
// paper's own is simpler still): kernel time is the max of compute time and
// memory time, de-rated by an achievable-fraction efficiency, plus a launch
// overhead per kernel on devices and a host-side serial fraction.
//
// What the model is for: reproducing the *shape* of Tables I/II/V/VI — who
// wins, by what factor, and why (e.g. the GTX TITAN X's 32:1 SP:DP ratio
// making minimum precision 3–4.5× faster, versus ~25% on CPUs) — not the
// authors' absolute seconds.
package arch

import (
	"fmt"
	"time"

	"repro/internal/metrics"
)

// Class separates host processors from accelerator devices.
type Class int

const (
	// CPU devices run the whole application.
	CPU Class = iota
	// GPU devices run kernels launched from a host.
	GPU
)

// String names the class.
func (c Class) String() string {
	if c == GPU {
		return "GPU"
	}
	return "CPU"
}

// Spec is the published specification sheet of one platform. It carries
// json tags so a worker can ship its profile to the coordinator at
// registration (the energy/cost accounting input).
type Spec struct {
	Name  string `json:"name"`
	Class Class  `json:"class"`
	// Peak single/double precision throughput, GFLOP/s.
	SPPeakGF float64 `json:"sp_peak_gf"`
	DPPeakGF float64 `json:"dp_peak_gf"`
	// Peak memory bandwidth, GB/s.
	MemBWGBs float64 `json:"mem_bw_gbs"`
	// Nominal board/package power, W.
	TDPWatts float64 `json:"tdp_watts"`
	// Device memory, GB (capacity checks).
	MemGB float64 `json:"mem_gb"`
	// VectorWidth64 is the number of float64 SIMD lanes (CPU only); the
	// scalar (unvectorized) profile divides the peak by this.
	VectorWidth64 int `json:"vector_width_64,omitempty"`
	// LaunchOverhead per kernel launch (GPUs).
	LaunchOverhead time.Duration `json:"launch_overhead_ns,omitempty"`
	// Efficiency is the achievable fraction of peak for these irregular
	// mini-app kernels (default 0.10 CPU, 0.25 GPU applied by Predict).
	Efficiency float64 `json:"efficiency,omitempty"`
}

// The paper's test matrix (§IV.E), with published specifications.
var (
	// Haswell is the Intel Xeon E5-2660 v3 (10C, 2.6 GHz, AVX2 FMA).
	Haswell = Spec{
		Name: "Haswell", Class: CPU,
		SPPeakGF: 832, DPPeakGF: 416, MemBWGBs: 68, TDPWatts: 105, MemGB: 64,
		VectorWidth64: 4,
	}
	// Broadwell is the Intel Xeon E5-2695 v4 (18C, 2.1 GHz).
	Broadwell = Spec{
		Name: "Broadwell", Class: CPU,
		SPPeakGF: 1210, DPPeakGF: 605, MemBWGBs: 76.8, TDPWatts: 120, MemGB: 64,
		VectorWidth64: 4,
	}
	// TeslaK40m: Kepler datacenter GPU, 1:3 DP:SP.
	TeslaK40m = Spec{
		Name: "Tesla K40m", Class: GPU,
		SPPeakGF: 4290, DPPeakGF: 1430, MemBWGBs: 288, TDPWatts: 235, MemGB: 12,
		LaunchOverhead: 8 * time.Microsecond,
	}
	// QuadroK6000: Kepler workstation GPU.
	QuadroK6000 = Spec{
		Name: "Quadro K6000", Class: GPU,
		SPPeakGF: 5196, DPPeakGF: 1732, MemBWGBs: 288, TDPWatts: 225, MemGB: 12,
		LaunchOverhead: 8 * time.Microsecond,
	}
	// TeslaP100: Pascal SXM2, 1:2 DP:SP, HBM2.
	TeslaP100 = Spec{
		Name: "Tesla P100", Class: GPU,
		SPPeakGF: 10600, DPPeakGF: 5300, MemBWGBs: 732, TDPWatts: 300, MemGB: 16,
		LaunchOverhead: 5 * time.Microsecond,
	}
	// TitanX is the Maxwell GeForce GTX TITAN X: 32:1 SP:DP — the paper's
	// showcase for why consumer GPUs reward reduced precision.
	TitanX = Spec{
		Name: "GTX TITAN X", Class: GPU,
		SPPeakGF: 6144, DPPeakGF: 192, MemBWGBs: 336, TDPWatts: 250, MemGB: 12,
		LaunchOverhead: 8 * time.Microsecond,
	}
)

// CLAMRSpecs is the platform list of Tables I/II; SELFSpecs that of
// Tables V/VI (which add the P100).
var (
	CLAMRSpecs = []Spec{Haswell, Broadwell, TeslaK40m, QuadroK6000, TitanX}
	SELFSpecs  = []Spec{Haswell, Broadwell, TeslaK40m, QuadroK6000, TeslaP100, TitanX}
)

// Workload characterises one run, as measured by the instrumentation.
type Workload struct {
	Counters metrics.Counters
	// Vectorized selects the SIMD profile on CPUs; GPUs are inherently
	// vector machines and ignore it.
	Vectorized bool
	// SerialOps counts precision-independent work items (mesh management,
	// neighbor hashing, refinement bookkeeping — typically cells × steps).
	// This work does not shrink with reduced precision, which is why the
	// paper's CPU speedups are ~20% while its GPU speedups reach 4.5×.
	SerialOps uint64
	// StateBytes is resident state for the memory-usage columns.
	StateBytes uint64
}

// Model calibration constants. These are effective rates for irregular
// mini-app kernels, chosen so the predicted tables reproduce the paper's
// shapes (orderings and rough factors), not any platform's absolute peak.
const (
	// transcCost is the flop-equivalent cost of one transcendental
	// (sqrt/pow class) evaluation.
	transcCost = 12
	// cpuVecEff / cpuScalarEff: fraction of (SIMD / scalar) peak flops a
	// stencil kernel sustains. Scalar code keeps its single pipeline
	// busier than 4-wide SIMD keeps its lanes, but is compute-bound.
	cpuVecEff    = 0.10
	cpuScalarEff = 0.20
	// cpuScalarSPGain: scalar single precision runs only slightly faster
	// than scalar double (narrower loads ease cache pressure; the paper
	// measured ~12%).
	cpuScalarSPGain = 1.15
	// cpuMemEff: fraction of nominal bandwidth streaming kernels achieve.
	cpuMemEff = 0.50
	// gpuComputeEff / gpuMemEff: device equivalents.
	gpuComputeEff = 0.08
	gpuMemEff     = 0.60
	// gpuDPFloorRatio caps the effective double-precision penalty: on
	// devices with severely throttled DP units (TITAN X, 32:1) real
	// kernels bottom out on address arithmetic and bookkeeping issued at
	// full rate, so effective DP throughput ≥ SP/8.
	gpuDPFloorRatio = 8.0
	// serialOpsPerSecCPU / GPU: throughput of the precision-independent
	// bookkeeping work.
	serialOpsPerSecCPU = 150e6
	serialOpsPerSecGPU = 2.5e9
)

// Predict estimates the wall time of the workload on the platform.
func (s Spec) Predict(w Workload) time.Duration {
	var computeSec, memSec, serialSec float64
	c := w.Counters
	f32 := float64(c.Flops32) + float64(c.Flops16) + transcCost*float64(c.Transcendental32)
	f64 := float64(c.Flops64) + transcCost*float64(c.Transcendental64)
	// Conversions cost roughly one op at the wider width.
	f64 += float64(c.Conversions)
	bytes := float64(c.TotalBytes())

	if s.Class == CPU {
		spPeak, dpPeak := s.SPPeakGF, s.DPPeakGF
		eff := cpuVecEff
		if !w.Vectorized && s.VectorWidth64 > 0 {
			// Scalar profile: one SIMD lane, and single precision runs
			// only marginally faster than double (the paper's ~12%).
			dpPeak /= float64(s.VectorWidth64)
			spPeak = dpPeak * cpuScalarSPGain
			eff = cpuScalarEff
		}
		computeSec = f32/(spPeak*1e9*eff) + f64/(dpPeak*1e9*eff)
		memSec = bytes / (s.MemBWGBs * 1e9 * cpuMemEff)
		serialSec = float64(w.SerialOps) / serialOpsPerSecCPU
	} else {
		dpPeak := s.DPPeakGF
		if floor := s.SPPeakGF / gpuDPFloorRatio; dpPeak < floor {
			dpPeak = floor
		}
		computeSec = f32/(s.SPPeakGF*1e9*gpuComputeEff) + f64/(dpPeak*1e9*gpuComputeEff)
		memSec = bytes / (s.MemBWGBs * 1e9 * gpuMemEff)
		serialSec = float64(w.SerialOps) / serialOpsPerSecGPU
	}

	kernelSec := computeSec
	if memSec > kernelSec {
		kernelSec = memSec
	}
	launch := time.Duration(c.KernelLaunches) * s.LaunchOverhead
	total := kernelSec + serialSec + launch.Seconds()
	return time.Duration(total * float64(time.Second))
}

// Energy estimates joules as the paper does: nominal power × runtime.
func (s Spec) Energy(runtime time.Duration) float64 {
	return s.TDPWatts * runtime.Seconds()
}

// FitsInMemory reports whether the workload's resident state fits.
func (s Spec) FitsInMemory(w Workload) bool {
	return float64(w.StateBytes) <= s.MemGB*1e9
}

// Row is one architecture line of a runtime/energy table.
type Row struct {
	Arch    string
	Times   []time.Duration
	Energy  []float64
	MemGB   []float64
	Speedup float64 // first column vs last column
}

// Table predicts one row per spec for the given per-mode workloads
// (ordered as the caller's columns; speedup = last/first).
func Table(specs []Spec, workloads []Workload) []Row {
	rows := make([]Row, 0, len(specs))
	for _, spec := range specs {
		r := Row{Arch: spec.Name}
		for _, w := range workloads {
			t := spec.Predict(w)
			r.Times = append(r.Times, t)
			r.Energy = append(r.Energy, spec.Energy(t))
			r.MemGB = append(r.MemGB, float64(w.StateBytes)/1e9)
		}
		if len(r.Times) > 1 && r.Times[0] > 0 {
			r.Speedup = float64(r.Times[len(r.Times)-1]) / float64(r.Times[0])
		}
		rows = append(rows, r)
	}
	return rows
}

// FindSpec returns the spec with the given name.
func FindSpec(name string) (Spec, error) {
	for _, s := range SELFSpecs {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("arch: unknown platform %q", name)
}
