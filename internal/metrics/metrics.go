// Package metrics instruments the mini-apps with the operation and traffic
// accounting the architecture model consumes. Kernels record exact analytic
// tallies (flops per cell × cells, bytes per sweep × sweeps) rather than
// per-operation hooks, so instrumentation has negligible runtime cost while
// the counts remain exact for the structured loops these codes run.
package metrics

import (
	"encoding/json"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Counters aggregates the work performed by a run, split by precision class
// the way the roofline model needs it.
type Counters struct {
	// Floating-point operations by compute width.
	Flops16, Flops32, Flops64 uint64
	// Transcendental evaluations (pow/exp/log/sqrt beyond one flop),
	// by compute width. Each typically costs 10–40 flop-equivalents.
	Transcendental32, Transcendental64 uint64
	// Memory traffic in bytes, split load/store. This is algorithmic
	// traffic (array reads and writes issued by the kernels), the quantity
	// the paper's bandwidth argument is about.
	LoadBytes, StoreBytes uint64
	// Conversions between precisions (f32↔f64, f16↔f32), as the compiler
	// study counts promotion overhead.
	Conversions uint64
	// KernelLaunches counts distinct kernel sweeps (GPU launch overhead).
	KernelLaunches uint64
	// AllocBytes and AllocCount record Go heap allocation observed around
	// instrumented phases (runtime.ReadMemStats deltas, see MemSample). A
	// steady-state solver loop should hold both at zero; nonzero values
	// localise dispatch or scratch churn the roofline model cannot see.
	AllocBytes, AllocCount uint64
}

// Add accumulates other into c.
func (c *Counters) Add(other Counters) {
	c.Flops16 += other.Flops16
	c.Flops32 += other.Flops32
	c.Flops64 += other.Flops64
	c.Transcendental32 += other.Transcendental32
	c.Transcendental64 += other.Transcendental64
	c.LoadBytes += other.LoadBytes
	c.StoreBytes += other.StoreBytes
	c.Conversions += other.Conversions
	c.KernelLaunches += other.KernelLaunches
	c.AllocBytes += other.AllocBytes
	c.AllocCount += other.AllocCount
}

// Scale returns the counters multiplied by f. Because the kernels' tallies
// are exact linear functions of cells×steps (or nodes×steps), scaling
// extrapolates a measured run to a larger instance of the same
// configuration exactly.
func (c Counters) Scale(f float64) Counters {
	s := func(v uint64) uint64 { return uint64(float64(v) * f) }
	return Counters{
		Flops16:          s(c.Flops16),
		Flops32:          s(c.Flops32),
		Flops64:          s(c.Flops64),
		Transcendental32: s(c.Transcendental32),
		Transcendental64: s(c.Transcendental64),
		LoadBytes:        s(c.LoadBytes),
		StoreBytes:       s(c.StoreBytes),
		Conversions:      s(c.Conversions),
		KernelLaunches:   s(c.KernelLaunches),
		AllocBytes:       s(c.AllocBytes),
		AllocCount:       s(c.AllocCount),
	}
}

// counterFields is the canonical JSON field order of Counters. The
// content-addressed result cache (internal/serve/cache) hashes serialized
// counters, so the encoding must be byte-stable across runs, Go versions
// and struct-field reorderings; this table — not struct declaration order —
// defines it. New fields must be appended, never inserted.
var counterFields = [...]struct {
	key string
	get func(*Counters) *uint64
}{
	{"flops16", func(c *Counters) *uint64 { return &c.Flops16 }},
	{"flops32", func(c *Counters) *uint64 { return &c.Flops32 }},
	{"flops64", func(c *Counters) *uint64 { return &c.Flops64 }},
	{"transcendental32", func(c *Counters) *uint64 { return &c.Transcendental32 }},
	{"transcendental64", func(c *Counters) *uint64 { return &c.Transcendental64 }},
	{"load_bytes", func(c *Counters) *uint64 { return &c.LoadBytes }},
	{"store_bytes", func(c *Counters) *uint64 { return &c.StoreBytes }},
	{"conversions", func(c *Counters) *uint64 { return &c.Conversions }},
	{"kernel_launches", func(c *Counters) *uint64 { return &c.KernelLaunches }},
	{"alloc_bytes", func(c *Counters) *uint64 { return &c.AllocBytes }},
	{"alloc_count", func(c *Counters) *uint64 { return &c.AllocCount }},
}

// MarshalJSON emits the counters as a JSON object with a fixed, documented
// key order (see counterFields) so the bytes are identical for identical
// counts on every platform and Go release.
func (c Counters) MarshalJSON() ([]byte, error) {
	var b strings.Builder
	b.WriteByte('{')
	for i, f := range counterFields {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%q:%d", f.key, *f.get(&c))
	}
	b.WriteByte('}')
	return []byte(b.String()), nil
}

// UnmarshalJSON accepts the canonical encoding (unknown keys are rejected so
// corrupted or future-versioned cache entries surface as errors rather than
// silently dropping counts).
func (c *Counters) UnmarshalJSON(data []byte) error {
	var raw map[string]uint64
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("metrics: counters: %w", err)
	}
	var out Counters
	for _, f := range counterFields {
		if v, ok := raw[f.key]; ok {
			*f.get(&out) = v
			delete(raw, f.key)
		}
	}
	if len(raw) > 0 {
		keys := make([]string, 0, len(raw))
		for k := range raw {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return fmt.Errorf("metrics: counters: unknown fields %v", keys)
	}
	*c = out
	return nil
}

// TotalFlops returns all floating-point operations regardless of width.
func (c Counters) TotalFlops() uint64 { return c.Flops16 + c.Flops32 + c.Flops64 }

// TotalBytes returns total memory traffic.
func (c Counters) TotalBytes() uint64 { return c.LoadBytes + c.StoreBytes }

// ArithmeticIntensity returns flops per byte of traffic; 0 when no traffic
// was recorded.
func (c Counters) ArithmeticIntensity() float64 {
	b := c.TotalBytes()
	if b == 0 {
		return 0
	}
	return float64(c.TotalFlops()) / float64(b)
}

// String renders a compact human-readable summary.
func (c Counters) String() string {
	s := fmt.Sprintf(
		"flops{16:%s 32:%s 64:%s} transc{32:%s 64:%s} mem{ld:%s st:%s} conv:%s launches:%d",
		SI(c.Flops16), SI(c.Flops32), SI(c.Flops64),
		SI(c.Transcendental32), SI(c.Transcendental64),
		Bytes(c.LoadBytes), Bytes(c.StoreBytes), SI(c.Conversions), c.KernelLaunches)
	if c.AllocCount > 0 || c.AllocBytes > 0 {
		s += fmt.Sprintf(" heap{%s in %s objects}", Bytes(c.AllocBytes), SI(c.AllocCount))
	}
	return s
}

// MemSample captures the process heap-allocation counters at a point in
// time so a phase can be bracketed:
//
//	ms := metrics.StartMemSample()
//	...phase...
//	counters.AddAllocSince(ms)
//
// Sampling calls runtime.ReadMemStats, which briefly stops the world — use
// it around coarse phases (an experiment, a whole run), not inner loops.
type MemSample struct {
	bytes, count uint64
}

// StartMemSample records the current cumulative heap-allocation counters.
func StartMemSample() MemSample {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return MemSample{bytes: ms.TotalAlloc, count: ms.Mallocs}
}

// Delta returns the heap bytes and objects allocated since the sample was
// taken (process-wide, all goroutines).
func (s MemSample) Delta() (allocBytes, allocCount uint64) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.TotalAlloc - s.bytes, ms.Mallocs - s.count
}

// AddAllocSince accumulates the allocation observed since the sample into
// the counters' AllocBytes/AllocCount.
func (c *Counters) AddAllocSince(s MemSample) {
	b, n := s.Delta()
	c.AllocBytes += b
	c.AllocCount += n
}

// SI formats a count with a decimal SI suffix (k, M, G, T).
func SI(v uint64) string {
	switch {
	case v >= 1e12:
		return fmt.Sprintf("%.2fT", float64(v)/1e12)
	case v >= 1e9:
		return fmt.Sprintf("%.2fG", float64(v)/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.2fM", float64(v)/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.2fk", float64(v)/1e3)
	default:
		return fmt.Sprintf("%d", v)
	}
}

// Bytes formats a byte count with a binary suffix.
func Bytes(v uint64) string {
	switch {
	case v >= 1<<40:
		return fmt.Sprintf("%.2fTiB", float64(v)/(1<<40))
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGiB", float64(v)/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMiB", float64(v)/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.2fKiB", float64(v)/(1<<10))
	default:
		return fmt.Sprintf("%dB", v)
	}
}

// AllocTracker accounts for the resident state arrays of a solver, giving
// the "Memory Usage" column of the paper's tables. Register every long-lived
// allocation under a label; scratch that is freed should be released.
type AllocTracker struct {
	byLabel map[string]uint64
	peak    uint64
	current uint64
}

// NewAllocTracker returns an empty tracker.
func NewAllocTracker() *AllocTracker {
	return &AllocTracker{byLabel: make(map[string]uint64)}
}

// Register records bytes of live allocation under label (accumulating).
func (t *AllocTracker) Register(label string, bytes uint64) {
	t.byLabel[label] += bytes
	t.current += bytes
	if t.current > t.peak {
		t.peak = t.current
	}
}

// Release records that bytes under label were freed. Releasing more than
// was registered clamps to zero.
func (t *AllocTracker) Release(label string, bytes uint64) {
	if have := t.byLabel[label]; bytes > have {
		bytes = have
	}
	t.byLabel[label] -= bytes
	if t.byLabel[label] == 0 {
		delete(t.byLabel, label)
	}
	if bytes > t.current {
		bytes = t.current
	}
	t.current -= bytes
}

// Current returns the live tracked bytes.
func (t *AllocTracker) Current() uint64 { return t.current }

// Peak returns the high-water mark of tracked bytes.
func (t *AllocTracker) Peak() uint64 { return t.peak }

// Breakdown returns "label: size" lines sorted by descending size.
func (t *AllocTracker) Breakdown() string {
	type kv struct {
		k string
		v uint64
	}
	items := make([]kv, 0, len(t.byLabel))
	for k, v := range t.byLabel {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].v != items[j].v {
			return items[i].v > items[j].v
		}
		return items[i].k < items[j].k
	})
	var b strings.Builder
	for _, it := range items {
		fmt.Fprintf(&b, "%-24s %s\n", it.k, Bytes(it.v))
	}
	return b.String()
}

// Timer measures named wall-clock phases; it is safe for concurrent
// Observe calls.
type Timer struct {
	totals map[string]*int64 // nanoseconds
	order  []string
}

// NewTimer returns an empty timer.
func NewTimer() *Timer { return &Timer{totals: make(map[string]*int64)} }

// Phase returns a function that, when called, adds the elapsed time since
// Phase was called to the named bucket:
//
//	defer timer.Phase("finite_diff")()
func (t *Timer) Phase(name string) func() {
	cell := t.bucket(name)
	start := time.Now()
	return func() { atomic.AddInt64(cell, int64(time.Since(start))) }
}

// Observe adds d to the named bucket directly.
func (t *Timer) Observe(name string, d time.Duration) {
	atomic.AddInt64(t.bucket(name), int64(d))
}

// PhaseCell is a preresolved timer bucket for allocation-free timing in hot
// loops. Phase closes over its bucket and so heap-allocates per call; a
// PhaseCell is resolved once and used as
//
//	start := time.Now()
//	...phase...
//	cell.Observe(start)
//
// which allocates nothing.
type PhaseCell struct{ ns *int64 }

// Cell resolves (creating if needed) the named bucket.
func (t *Timer) Cell(name string) PhaseCell { return PhaseCell{ns: t.bucket(name)} }

// Observe adds the time elapsed since start to the cell's bucket.
func (c PhaseCell) Observe(start time.Time) {
	atomic.AddInt64(c.ns, int64(time.Since(start)))
}

func (t *Timer) bucket(name string) *int64 {
	if cell, ok := t.totals[name]; ok {
		return cell
	}
	cell := new(int64)
	t.totals[name] = cell
	t.order = append(t.order, name)
	return cell
}

// Total returns the accumulated duration of the named bucket.
func (t *Timer) Total(name string) time.Duration {
	if cell, ok := t.totals[name]; ok {
		return time.Duration(atomic.LoadInt64(cell))
	}
	return 0
}

// Names returns bucket names in first-use order.
func (t *Timer) Names() []string { return append([]string(nil), t.order...) }

// PhaseTotal is one timer bucket's accumulated wall-clock time, in the JSON
// shape results and traces carry.
type PhaseTotal struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Totals snapshots every bucket in first-use order.
func (t *Timer) Totals() []PhaseTotal {
	out := make([]PhaseTotal, 0, len(t.order))
	for _, name := range t.order {
		out = append(out, PhaseTotal{Name: name, Seconds: t.Total(name).Seconds()})
	}
	return out
}

// String renders all buckets.
func (t *Timer) String() string {
	var b strings.Builder
	for _, name := range t.order {
		fmt.Fprintf(&b, "%-24s %v\n", name, t.Total(name))
	}
	return b.String()
}
