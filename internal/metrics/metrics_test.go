package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCountersAddAndTotals(t *testing.T) {
	a := Counters{Flops32: 10, Flops64: 5, LoadBytes: 100, StoreBytes: 50, KernelLaunches: 1}
	b := Counters{Flops16: 2, Flops32: 1, Transcendental64: 3, Conversions: 7, KernelLaunches: 2}
	a.Add(b)
	if a.Flops32 != 11 || a.Flops16 != 2 || a.Transcendental64 != 3 || a.KernelLaunches != 3 {
		t.Errorf("Add merged wrong: %+v", a)
	}
	if got := a.TotalFlops(); got != 2+11+5 {
		t.Errorf("TotalFlops = %d", got)
	}
	if got := a.TotalBytes(); got != 150 {
		t.Errorf("TotalBytes = %d", got)
	}
	if got := a.ArithmeticIntensity(); got != float64(18)/150 {
		t.Errorf("ArithmeticIntensity = %g", got)
	}
	if (Counters{}).ArithmeticIntensity() != 0 {
		t.Error("empty intensity not zero")
	}
	if !strings.Contains(a.String(), "flops") {
		t.Error("String missing content")
	}
}

func TestSIAndBytes(t *testing.T) {
	cases := map[uint64]string{
		5:             "5",
		1500:          "1.50k",
		2_500_000:     "2.50M",
		3_000_000_000: "3.00G",
	}
	for v, want := range cases {
		if got := SI(v); got != want {
			t.Errorf("SI(%d) = %q, want %q", v, got, want)
		}
	}
	if got := SI(2e12); got != "2.00T" {
		t.Errorf("SI tera = %q", got)
	}
	bcases := map[uint64]string{
		512:       "512B",
		2048:      "2.00KiB",
		3 << 20:   "3.00MiB",
		5 << 30:   "5.00GiB",
		1<<40 + 1: "1.00TiB",
	}
	for v, want := range bcases {
		if got := Bytes(v); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", v, got, want)
		}
	}
}

func TestAllocTracker(t *testing.T) {
	tr := NewAllocTracker()
	tr.Register("state", 1000)
	tr.Register("mesh", 500)
	tr.Register("state", 200)
	if tr.Current() != 1700 || tr.Peak() != 1700 {
		t.Errorf("current %d peak %d", tr.Current(), tr.Peak())
	}
	tr.Release("mesh", 500)
	if tr.Current() != 1200 {
		t.Errorf("after release: %d", tr.Current())
	}
	if tr.Peak() != 1700 {
		t.Errorf("peak moved: %d", tr.Peak())
	}
	// Over-release clamps.
	tr.Release("state", 99999)
	if tr.Current() != 0 {
		t.Errorf("over-release left %d", tr.Current())
	}
	tr.Register("a", 10)
	tr.Register("b", 20)
	bd := tr.Breakdown()
	if !strings.Contains(bd, "a") || !strings.Contains(bd, "b") {
		t.Errorf("breakdown missing labels: %q", bd)
	}
	if strings.Index(bd, "b") > strings.Index(bd, "a") {
		t.Errorf("breakdown not sorted by size: %q", bd)
	}
}

func TestTimerPhases(t *testing.T) {
	tm := NewTimer()
	done := tm.Phase("work")
	time.Sleep(5 * time.Millisecond)
	done()
	if tm.Total("work") < 4*time.Millisecond {
		t.Errorf("phase recorded %v", tm.Total("work"))
	}
	tm.Observe("io", 2*time.Second)
	tm.Observe("io", time.Second)
	if tm.Total("io") != 3*time.Second {
		t.Errorf("Observe total = %v", tm.Total("io"))
	}
	if tm.Total("missing") != 0 {
		t.Error("missing bucket nonzero")
	}
	names := tm.Names()
	if len(names) != 2 || names[0] != "work" || names[1] != "io" {
		t.Errorf("Names = %v", names)
	}
	if !strings.Contains(tm.String(), "io") {
		t.Error("String missing bucket")
	}
}

func TestTimerCellZeroAlloc(t *testing.T) {
	tm := NewTimer()
	cell := tm.Cell("hot")
	if allocs := testing.AllocsPerRun(100, func() {
		start := time.Now()
		cell.Observe(start)
	}); allocs != 0 {
		t.Errorf("PhaseCell.Observe allocated %v objects per call", allocs)
	}
	start := time.Now()
	time.Sleep(2 * time.Millisecond)
	cell.Observe(start)
	if tm.Total("hot") < time.Millisecond {
		t.Errorf("cell recorded %v", tm.Total("hot"))
	}
	// Cell and Phase share the bucket.
	done := tm.Phase("hot")
	done()
	if len(tm.Names()) != 1 {
		t.Errorf("Cell/Phase split buckets: %v", tm.Names())
	}
}

func TestMemSampleAndAllocCounters(t *testing.T) {
	ms := StartMemSample()
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 1024))
	}
	var c Counters
	c.AddAllocSince(ms)
	if c.AllocBytes < 64*1024 || c.AllocCount < 64 {
		t.Errorf("sample missed allocations: %+v", c)
	}
	_ = sink
	var d Counters
	d.Add(Counters{AllocBytes: 10, AllocCount: 2})
	d.Add(Counters{AllocBytes: 5, AllocCount: 1})
	if d.AllocBytes != 15 || d.AllocCount != 3 {
		t.Errorf("Add ignored alloc counters: %+v", d)
	}
	sc := d.Scale(2)
	if sc.AllocBytes != 30 || sc.AllocCount != 6 {
		t.Errorf("Scale ignored alloc counters: %+v", sc)
	}
	if !strings.Contains(d.String(), "heap") {
		t.Errorf("String missing heap section: %q", d.String())
	}
	if strings.Contains((Counters{}).String(), "heap") {
		t.Error("String shows heap section when empty")
	}
}

func TestTimerConcurrentObserve(t *testing.T) {
	tm := NewTimer()
	tm.Observe("x", 0) // create the bucket before concurrent use
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				tm.Observe("x", time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if got := tm.Total("x"); got != 16*1000*time.Microsecond {
		t.Errorf("concurrent observe total = %v", got)
	}
}

func TestCountersJSONDeterministic(t *testing.T) {
	c := Counters{
		Flops16: 1, Flops32: 2, Flops64: 3,
		Transcendental32: 4, Transcendental64: 5,
		LoadBytes: 6, StoreBytes: 7, Conversions: 8,
		KernelLaunches: 9, AllocBytes: 10, AllocCount: 11,
	}
	want := `{"flops16":1,"flops32":2,"flops64":3,` +
		`"transcendental32":4,"transcendental64":5,` +
		`"load_bytes":6,"store_bytes":7,"conversions":8,` +
		`"kernel_launches":9,"alloc_bytes":10,"alloc_count":11}`
	for i := 0; i < 3; i++ {
		got, err := json.Marshal(c)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		if string(got) != want {
			t.Fatalf("marshal %d:\n got %s\nwant %s", i, got, want)
		}
	}
}

func TestCountersJSONRoundTrip(t *testing.T) {
	c := Counters{
		Flops16: 1 << 40, Flops32: 12345, Flops64: math.MaxUint64,
		Transcendental32: 1, Transcendental64: 2,
		LoadBytes: 3, StoreBytes: 4, Conversions: 5,
		KernelLaunches: 6, AllocBytes: 7, AllocCount: 8,
	}
	data, err := json.Marshal(c)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Counters
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back != c {
		t.Fatalf("round trip changed counters:\n got %+v\nwant %+v", back, c)
	}
	// Zero values round-trip too (every key is always emitted).
	data, _ = json.Marshal(Counters{})
	var zero Counters
	if err := json.Unmarshal(data, &zero); err != nil {
		t.Fatalf("unmarshal zero: %v", err)
	}
	if zero != (Counters{}) {
		t.Fatalf("zero round trip = %+v", zero)
	}
}

func TestCountersJSONRejectsUnknownFields(t *testing.T) {
	var c Counters
	if err := json.Unmarshal([]byte(`{"flops32":1,"bogus":2}`), &c); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := json.Unmarshal([]byte(`{"flops32":`), &c); err == nil {
		t.Fatal("truncated JSON accepted")
	}
}
