package mesh

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyAdaptPreservesInvariants drives random adaptation sequences
// from random seeds (property-based): after any sequence of Adapt calls the
// mesh must validate, cover the domain exactly, and the remap plan must be
// a bijection onto the new cells.
func TestPropertyAdaptPreservesInvariants(t *testing.T) {
	prop := func(seed int64, rounds uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := New(3+rng.Intn(4), 3+rng.Intn(4), 1+rng.Intn(3), UnitBounds)
		if err != nil {
			return false
		}
		n := int(rounds%6) + 1
		for round := 0; round < n; round++ {
			flags := make([]RefineFlag, m.NumCells())
			for i := range flags {
				flags[i] = RefineFlag(rng.Intn(3) - 1)
			}
			plan, err := m.Adapt(flags)
			if err != nil {
				t.Logf("adapt error: %v", err)
				return false
			}
			if err := m.Validate(); err != nil {
				t.Logf("validate: %v", err)
				return false
			}
			// The plan covers every new cell exactly once.
			covered := make([]int, plan.NewLen)
			for _, op := range plan.Copies {
				covered[op.New]++
			}
			for _, op := range plan.Refines {
				for _, idx := range op.New {
					covered[idx]++
				}
			}
			for _, op := range plan.Coarsens {
				covered[op.New]++
			}
			for idx, c := range covered {
				if c != 1 {
					t.Logf("new cell %d covered %d times", idx, c)
					return false
				}
			}
			// And references every old cell exactly once.
			used := make([]int, plan.OldLen)
			for _, op := range plan.Copies {
				used[op.Old]++
			}
			for _, op := range plan.Refines {
				used[op.Old]++
			}
			for _, op := range plan.Coarsens {
				for _, idx := range op.Old {
					used[idx]++
				}
			}
			for idx, c := range used {
				if c != 1 {
					t.Logf("old cell %d used %d times", idx, c)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyContainingCellConsistent: any point inside the domain
// resolves to a leaf whose geometric extent contains it.
func TestPropertyContainingCellConsistent(t *testing.T) {
	m, err := New(5, 4, 2, Bounds{-1, 3, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	flags := make([]RefineFlag, m.NumCells())
	for i := range flags {
		if rng.Intn(3) == 0 {
			flags[i] = Refine
		}
	}
	if _, err := m.Adapt(flags); err != nil {
		t.Fatal(err)
	}
	prop := func(fx, fy float64) bool {
		x := -1 + 4*frac(fx)
		y := 0 + 2*frac(fy)
		idx := m.ContainingCell(x, y)
		if idx < 0 {
			return false
		}
		c := m.Cell(int(idx))
		dx, dy := m.CellSize(c.Level)
		x0 := m.Bounds().XMin + float64(c.I)*dx
		y0 := m.Bounds().YMin + float64(c.J)*dy
		return x >= x0 && x < x0+dx*1.0000001 && y >= y0 && y < y0+dy*1.0000001
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// frac maps any float64 into [0, 1).
func frac(x float64) float64 {
	if x != x || x > 1e300 || x < -1e300 {
		return 0.5
	}
	f := x - float64(int64(x))
	if f < 0 {
		f += 1
	}
	if f >= 1 {
		f = 0
	}
	return f
}
