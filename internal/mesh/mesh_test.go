package mesh

import (
	"math"
	"math/rand"
	"testing"
)

func mustMesh(t *testing.T, nx, ny, maxLevel int) *Mesh {
	t.Helper()
	m, err := New(nx, ny, maxLevel, UnitBounds)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return m
}

func validate(t *testing.T, m *Mesh, context string) {
	t.Helper()
	if err := m.Validate(); err != nil {
		t.Fatalf("%s: %v", context, err)
	}
}

func TestNewRejectsBadArgs(t *testing.T) {
	if _, err := New(0, 4, 1, UnitBounds); err == nil {
		t.Error("accepted zero nx")
	}
	if _, err := New(4, -1, 1, UnitBounds); err == nil {
		t.Error("accepted negative ny")
	}
	if _, err := New(4, 4, -1, UnitBounds); err == nil {
		t.Error("accepted negative maxLevel")
	}
	if _, err := New(4, 4, MaxRefineLevel+1, UnitBounds); err == nil {
		t.Error("accepted excessive maxLevel")
	}
	if _, err := New(1<<20, 4, 10, UnitBounds); err == nil {
		t.Error("accepted coordinate overflow")
	}
	if _, err := New(4, 4, 1, Bounds{0, 0, 0, 1}); err == nil {
		t.Error("accepted degenerate bounds")
	}
}

func TestUniformMeshBasics(t *testing.T) {
	m := mustMesh(t, 4, 3, 2)
	if m.NumCells() != 12 {
		t.Fatalf("NumCells = %d", m.NumCells())
	}
	validate(t, m, "uniform")
	dx, dy := m.CellSize(0)
	if math.Abs(dx-0.25) > 1e-15 || math.Abs(dy-1.0/3) > 1e-15 {
		t.Errorf("CellSize(0) = %g, %g", dx, dy)
	}
	dx1, dy1 := m.CellSize(1)
	if dx1 != dx/2 || dy1 != dy/2 {
		t.Errorf("CellSize(1) not half of level 0")
	}
	// Row-major layout: cell 5 is (i=1, j=1).
	c := m.Cell(5)
	if c.I != 1 || c.J != 1 || c.Level != 0 {
		t.Errorf("Cell(5) = %+v", c)
	}
	x, y := m.Center(0)
	if math.Abs(x-0.125) > 1e-15 || math.Abs(y-1.0/6) > 1e-15 {
		t.Errorf("Center(0) = %g, %g", x, y)
	}
	if a := m.Area(0); math.Abs(a-0.25/3) > 1e-15 {
		t.Errorf("Area(0) = %g", a)
	}
	// Total area equals the domain.
	var total float64
	for i := 0; i < m.NumCells(); i++ {
		total += m.Area(i)
	}
	if math.Abs(total-1) > 1e-12 {
		t.Errorf("total area %g", total)
	}
}

func TestUniformNeighbors(t *testing.T) {
	m := mustMesh(t, 3, 3, 1)
	center := m.Lookup(1, 1, 0)
	nb := m.Neighbors(int(center))
	for s := Left; s <= Top; s++ {
		if nb.Counts[s] != 1 {
			t.Errorf("center side %d count %d", s, nb.Counts[s])
		}
	}
	if got := m.Cell(int(nb.Cells[Left][0])); got.I != 0 || got.J != 1 {
		t.Errorf("left neighbor %+v", got)
	}
	if got := m.Cell(int(nb.Cells[Top][0])); got.I != 1 || got.J != 2 {
		t.Errorf("top neighbor %+v", got)
	}
	// Corner cell has two boundary sides.
	corner := m.Lookup(0, 0, 0)
	cnb := m.Neighbors(int(corner))
	if cnb.Counts[Left] != 0 || cnb.Counts[Bottom] != 0 {
		t.Error("corner cell has phantom neighbors")
	}
	if cnb.Counts[Right] != 1 || cnb.Counts[Top] != 1 {
		t.Error("corner cell missing interior neighbors")
	}
}

func TestParentChildrenRelations(t *testing.T) {
	c := Cell{I: 5, J: 3, Level: 2}
	kids := c.Children()
	for q, k := range kids {
		if k.Level != 3 {
			t.Errorf("child %d level %d", q, k.Level)
		}
		if k.Parent() != c {
			t.Errorf("child %d parent %+v != %+v", q, k.Parent(), c)
		}
	}
	// SW, SE, NW, NE ordering.
	if kids[0] != (Cell{10, 6, 3}) || kids[1] != (Cell{11, 6, 3}) ||
		kids[2] != (Cell{10, 7, 3}) || kids[3] != (Cell{11, 7, 3}) {
		t.Errorf("children order wrong: %+v", kids)
	}
}

func TestRefineSingleCell(t *testing.T) {
	m := mustMesh(t, 2, 2, 2)
	flags := make([]RefineFlag, m.NumCells())
	flags[0] = Refine
	plan, err := m.Adapt(flags)
	if err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 7 { // 3 kept + 4 children
		t.Fatalf("NumCells = %d after refining one of four", m.NumCells())
	}
	validate(t, m, "after single refine")
	if len(plan.Refines) != 1 || len(plan.Copies) != 3 || len(plan.Coarsens) != 0 {
		t.Errorf("plan: %d refines %d copies %d coarsens",
			len(plan.Refines), len(plan.Copies), len(plan.Coarsens))
	}
	if plan.OldLen != 4 || plan.NewLen != 7 {
		t.Errorf("plan lengths %d → %d", plan.OldLen, plan.NewLen)
	}
	// The refined fine cells see their coarse neighbors and vice versa.
	for i := 0; i < m.NumCells(); i++ {
		nb := m.Neighbors(i)
		c := m.Cell(i)
		for s := Left; s <= Top; s++ {
			for _, n := range nb.On(s) {
				d := int(m.Cell(int(n)).Level) - int(c.Level)
				if d < -1 || d > 1 {
					t.Errorf("balance violated between %+v and %+v", c, m.Cell(int(n)))
				}
			}
		}
	}
	// A coarse cell bordering two fine cells reports both.
	right := m.Lookup(1, 0, 0)
	if right < 0 {
		t.Fatal("cell (1,0,0) missing")
	}
	rnb := m.Neighbors(int(right))
	if rnb.Counts[Left] != 2 {
		t.Errorf("coarse cell sees %d fine left neighbors, want 2", rnb.Counts[Left])
	}
}

func TestBalancePropagation(t *testing.T) {
	// Refining a fine cell twice must drag neighbors along: start 4x4,
	// refine one cell, then refine one of its children; the child's coarse
	// neighbors must auto-refine to keep 2:1.
	m := mustMesh(t, 4, 4, 3)
	flags := make([]RefineFlag, m.NumCells())
	flags[m.Lookup(1, 1, 0)] = Refine
	if _, err := m.Adapt(flags); err != nil {
		t.Fatal(err)
	}
	validate(t, m, "first refine")
	// Now refine the SW child (2,2,1) — neighbors (0,1,0) and (1,0,0)
	// at level 0 touch it and must be forced to level 1.
	idx := m.Lookup(2, 2, 1)
	if idx < 0 {
		t.Fatal("expected child (2,2,1)")
	}
	flags = make([]RefineFlag, m.NumCells())
	flags[idx] = Refine
	plan, err := m.Adapt(flags)
	if err != nil {
		t.Fatal(err)
	}
	validate(t, m, "second refine with propagation")
	if len(plan.Refines) < 3 {
		t.Errorf("expected balance propagation to refine ≥3 cells, got %d", len(plan.Refines))
	}
	// The requested cell's children (4,4,2)… and the dragged-along
	// neighbors' children, e.g. (1,2,1) from refining (0,1,0), must exist.
	if m.Lookup(4, 4, 2) < 0 {
		t.Error("requested refinement missing")
	}
	if m.Lookup(1, 2, 1) < 0 || m.Lookup(2, 1, 1) < 0 {
		t.Error("balance-propagated refinement missing")
	}
}

func TestCoarsenRequiresAllSiblings(t *testing.T) {
	m := mustMesh(t, 2, 2, 1)
	flags := make([]RefineFlag, m.NumCells())
	for i := range flags {
		flags[i] = Refine
	}
	if _, err := m.Adapt(flags); err != nil {
		t.Fatal(err)
	}
	if m.NumCells() != 16 {
		t.Fatalf("refine all: %d cells", m.NumCells())
	}
	// Flag only 3 of the 4 siblings of parent (0,0): no coarsening.
	flags = make([]RefineFlag, m.NumCells())
	group := [4]int32{m.Lookup(0, 0, 1), m.Lookup(1, 0, 1), m.Lookup(0, 1, 1), m.Lookup(1, 1, 1)}
	for _, idx := range group[:3] {
		flags[idx] = Coarsen
	}
	plan, err := m.Adapt(flags)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Coarsens) != 0 || m.NumCells() != 16 {
		t.Errorf("partial sibling group coarsened: %d ops, %d cells", len(plan.Coarsens), m.NumCells())
	}
	// All four: coarsening happens.
	flags = make([]RefineFlag, m.NumCells())
	for _, idx := range group {
		flags[m.Lookup(m.Cell(int(idx)).I, m.Cell(int(idx)).J, 1)] = Coarsen
	}
	plan, err = m.Adapt(flags)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Coarsens) != 1 || m.NumCells() != 13 {
		t.Errorf("full sibling group: %d ops, %d cells", len(plan.Coarsens), m.NumCells())
	}
	validate(t, m, "after coarsen")
}

func TestCoarsenVetoedByBalance(t *testing.T) {
	// Build a mesh with levels 0/1/2 and try to coarsen level-1 siblings
	// that touch level-2 cells: must be vetoed.
	m := mustMesh(t, 2, 2, 2)
	flags := make([]RefineFlag, m.NumCells())
	for i := range flags {
		flags[i] = Refine // all to level 1
	}
	if _, err := m.Adapt(flags); err != nil {
		t.Fatal(err)
	}
	flags = make([]RefineFlag, m.NumCells())
	flags[m.Lookup(2, 0, 1)] = Refine // one cell to level 2
	if _, err := m.Adapt(flags); err != nil {
		t.Fatal(err)
	}
	validate(t, m, "mixed levels")
	// Coarsening the sibling group under parent (0,0,0) would put a
	// level-0 cell face-to-face with the level-2 children of (2,0,1):
	// member (1,0,1)'s right neighbors are at level 2, so the group must
	// be vetoed.
	flags = make([]RefineFlag, m.NumCells())
	for _, c := range [][2]int32{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		idx := m.Lookup(c[0], c[1], 1)
		if idx < 0 {
			t.Fatalf("missing level-1 cell (%d,%d)", c[0], c[1])
		}
		flags[idx] = Coarsen
	}
	plan, err := m.Adapt(flags)
	if err != nil {
		t.Fatal(err)
	}
	if granted := len(plan.Coarsens); granted != 0 {
		t.Errorf("coarsening next to level-2 cells was granted (%d ops)", granted)
	}
	validate(t, m, "after vetoed coarsen")
	// A far-away group with only level-1 surroundings coarsens fine.
	flags = make([]RefineFlag, m.NumCells())
	for _, c := range [][2]int32{{2, 2}, {3, 2}, {2, 3}, {3, 3}} {
		idx := m.Lookup(c[0], c[1], 1)
		if idx < 0 {
			t.Fatalf("missing level-1 cell (%d,%d)", c[0], c[1])
		}
		flags[idx] = Coarsen
	}
	plan, err = m.Adapt(flags)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Coarsens) != 1 {
		t.Errorf("legal coarsening was not granted (%d ops)", len(plan.Coarsens))
	}
	validate(t, m, "after granted coarsen")
}

func TestApplyRemapConservesMass(t *testing.T) {
	m := mustMesh(t, 4, 4, 2)
	state := make([]float64, m.NumCells())
	var mass float64
	for i := range state {
		state[i] = float64(i%7) + 1
		mass += state[i] * m.Area(i)
	}
	areasBefore := make([]float64, m.NumCells())
	for i := range areasBefore {
		areasBefore[i] = m.Area(i)
	}
	rng := rand.New(rand.NewSource(5))
	for round := 0; round < 6; round++ {
		flags := make([]RefineFlag, m.NumCells())
		for i := range flags {
			flags[i] = RefineFlag(rng.Intn(3) - 1)
		}
		plan, err := m.Adapt(flags)
		if err != nil {
			t.Fatal(err)
		}
		validate(t, m, "random adapt round")
		state = ApplyRemap(plan, state, InjectProlong[float64](), MeanRestrict[float64]())
		if len(state) != m.NumCells() {
			t.Fatalf("state length %d != %d cells", len(state), m.NumCells())
		}
		var newMass float64
		for i := range state {
			newMass += state[i] * m.Area(i)
		}
		if math.Abs(newMass-mass) > 1e-12*math.Abs(mass) {
			t.Fatalf("round %d: mass %g → %g", round, mass, newMass)
		}
	}
}

// TestApplyRemapIntoReusesAndMatches verifies the in-place variant: output
// identical to ApplyRemap, the destination backing array reused when its
// capacity suffices, and allocation only when it does not.
func TestApplyRemapIntoReusesAndMatches(t *testing.T) {
	m := mustMesh(t, 4, 4, 2)
	state := make([]float64, m.NumCells())
	for i := range state {
		state[i] = float64(i%11) + 0.5
	}
	dst := make([]float64, 0, 4*len(state)) // ample capacity
	rng := rand.New(rand.NewSource(9))
	for round := 0; round < 5; round++ {
		flags := make([]RefineFlag, m.NumCells())
		for i := range flags {
			flags[i] = RefineFlag(rng.Intn(3) - 1)
		}
		plan, err := m.Adapt(flags)
		if err != nil {
			t.Fatal(err)
		}
		want := ApplyRemap(plan, state, InjectProlong[float64](), MeanRestrict[float64]())
		got := ApplyRemapInto(dst, plan, state, InjectProlong[float64](), MeanRestrict[float64]())
		if len(got) != len(want) {
			t.Fatalf("round %d: length %d != %d", round, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d: cell %d differs: %x vs %x", round, i, got[i], want[i])
			}
		}
		if plan.NewLen <= cap(dst) && &got[0] != &dst[:1][0] {
			t.Errorf("round %d: destination backing array not reused", round)
		}
		// Ping-pong: the old state array becomes the next destination.
		state, dst = got, state
	}
	// Insufficient capacity must allocate, not panic or truncate.
	flags := make([]RefineFlag, m.NumCells())
	for i := range flags {
		flags[i] = Refine
	}
	plan, err := m.Adapt(flags)
	if err != nil {
		t.Fatal(err)
	}
	got := ApplyRemapInto(nil, plan, state, InjectProlong[float64](), MeanRestrict[float64]())
	if len(got) != plan.NewLen {
		t.Fatalf("nil-destination length %d != %d", len(got), plan.NewLen)
	}
}

func TestContainingCellAndRasterize(t *testing.T) {
	m := mustMesh(t, 2, 2, 1)
	flags := make([]RefineFlag, m.NumCells())
	flags[m.Lookup(0, 0, 0)] = Refine
	if _, err := m.Adapt(flags); err != nil {
		t.Fatal(err)
	}
	// Point deep in the refined quadrant hits a level-1 cell.
	idx := m.ContainingCell(0.1, 0.1)
	if idx < 0 || m.Cell(int(idx)).Level != 1 {
		t.Errorf("ContainingCell(0.1,0.1) = %d (%+v)", idx, m.Cell(int(idx)))
	}
	// Point in an unrefined quadrant hits level 0.
	idx = m.ContainingCell(0.9, 0.9)
	if idx < 0 || m.Cell(int(idx)).Level != 0 {
		t.Errorf("ContainingCell(0.9,0.9) level %d", m.Cell(int(idx)).Level)
	}
	if m.ContainingCell(-0.1, 0.5) != -1 || m.ContainingCell(0.5, 1.5) != -1 {
		t.Error("points outside the domain resolved to cells")
	}
	// Rasterize per-cell levels: the SW quadrant of the image must read 1.
	vals := make([]float64, m.NumCells())
	for i := range vals {
		vals[i] = float64(m.Cell(i).Level)
	}
	img, err := m.Rasterize(vals, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if img[0] != 1 {
		t.Errorf("SW pixel = %g, want level 1", img[0])
	}
	if img[63] != 0 {
		t.Errorf("NE pixel = %g, want level 0", img[63])
	}
	if _, err := m.Rasterize(vals[:1], 4, 4); err == nil {
		t.Error("Rasterize accepted mismatched values")
	}
}

func TestAdaptRejectsWrongFlagCount(t *testing.T) {
	m := mustMesh(t, 2, 2, 1)
	if _, err := m.Adapt(make([]RefineFlag, 3)); err == nil {
		t.Error("Adapt accepted wrong flag count")
	}
}

func TestMaxActiveLevelAndAccessors(t *testing.T) {
	m := mustMesh(t, 2, 2, 2)
	if m.MaxActiveLevel() != 0 {
		t.Error("fresh mesh max active level nonzero")
	}
	flags := make([]RefineFlag, m.NumCells())
	flags[0] = Refine
	if _, err := m.Adapt(flags); err != nil {
		t.Fatal(err)
	}
	if m.MaxActiveLevel() != 1 {
		t.Errorf("MaxActiveLevel = %d", m.MaxActiveLevel())
	}
	if m.MaxLevel() != 2 {
		t.Errorf("MaxLevel = %d", m.MaxLevel())
	}
	if nx, ny := m.CoarseSize(); nx != 2 || ny != 2 {
		t.Errorf("CoarseSize = %d,%d", nx, ny)
	}
	if m.Bounds() != UnitBounds {
		t.Errorf("Bounds = %+v", m.Bounds())
	}
	if len(m.Cells()) != m.NumCells() {
		t.Error("Cells() length mismatch")
	}
}

func TestRefinementAtMaxLevelIsClamped(t *testing.T) {
	m := mustMesh(t, 2, 2, 0)
	flags := make([]RefineFlag, m.NumCells())
	for i := range flags {
		flags[i] = Refine
	}
	plan, err := m.Adapt(flags)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Refines) != 0 || m.NumCells() != 4 {
		t.Error("refinement beyond maxLevel was not clamped")
	}
	// Coarsening below level 0 likewise.
	for i := range flags {
		flags[i] = Coarsen
	}
	plan, err = m.Adapt(flags)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Coarsens) != 0 {
		t.Error("coarsening below level 0 was not clamped")
	}
}

func TestDeepRandomAdaptStaysValid(t *testing.T) {
	m := mustMesh(t, 4, 4, 3)
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < 15; round++ {
		flags := make([]RefineFlag, m.NumCells())
		for i := range flags {
			r := rng.Float64()
			switch {
			case r < 0.3:
				flags[i] = Refine
			case r < 0.6:
				flags[i] = Coarsen
			}
		}
		if _, err := m.Adapt(flags); err != nil {
			t.Fatal(err)
		}
		validate(t, m, "deep random adapt")
	}
	if m.NumCells() > 4*4<<(2*3) {
		t.Error("cell count exceeded finest-grid bound")
	}
}

func TestLookupMissing(t *testing.T) {
	m := mustMesh(t, 2, 2, 1)
	if m.Lookup(0, 0, 1) != -1 {
		t.Error("Lookup found a nonexistent fine cell")
	}
	if m.Lookup(5, 5, 0) != -1 {
		t.Error("Lookup found an out-of-range cell")
	}
}

func BenchmarkNeighborRebuild(b *testing.B) {
	m, err := New(64, 64, 2, UnitBounds)
	if err != nil {
		b.Fatal(err)
	}
	flags := make([]RefineFlag, m.NumCells())
	for i := range flags {
		if i%5 == 0 {
			flags[i] = Refine
		}
	}
	if _, err := m.Adapt(flags); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.rebuild()
	}
}

func BenchmarkAdaptCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, _ := New(32, 32, 2, UnitBounds)
		flags := make([]RefineFlag, m.NumCells())
		for j := range flags {
			if j%7 == 0 {
				flags[j] = Refine
			}
		}
		_, _ = m.Adapt(flags)
	}
}
