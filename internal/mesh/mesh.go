// Package mesh implements cell-based adaptive mesh refinement in the style
// of the CLAMR mini-app: the domain is a coarse rectangular grid whose cells
// refine quadtree-fashion, the active mesh is the set of leaf cells, and
// neighbor connectivity is recovered through a hash of (i, j, level) —
// CLAMR's signature technique — rather than stored trees.
//
// The mesh guarantees 2:1 balance (adjacent leaves differ by at most one
// refinement level), so a cell face borders exactly one same-level cell, one
// coarser cell, or two finer cells.
package mesh

import (
	"fmt"
	"math"
)

// MaxRefineLevel is the hard cap on refinement depth supported by the key
// packing (5 bits of level, 28 bits each of i and j).
const MaxRefineLevel = 20

// Cell identifies a leaf by its integer coordinates at its own refinement
// level: a cell (i, j, l) spans [i, i+1) × [j, j+1) in units of the level-l
// cell size.
type Cell struct {
	I, J  int32
	Level int8
}

// Parent returns the coordinates of the cell's parent (one level coarser).
func (c Cell) Parent() Cell {
	return Cell{I: c.I >> 1, J: c.J >> 1, Level: c.Level - 1}
}

// Children returns the four level+1 cells covering c, in (SW, SE, NW, NE)
// order.
func (c Cell) Children() [4]Cell {
	i, j, l := c.I*2, c.J*2, c.Level+1
	return [4]Cell{
		{i, j, l}, {i + 1, j, l}, {i, j + 1, l}, {i + 1, j + 1, l},
	}
}

// key packs a cell into a hashable 64-bit value.
func key(i, j int32, level int8) uint64 {
	return uint64(level)<<56 | uint64(uint32(i))<<28 | uint64(uint32(j))
}

// Bounds describes the physical extent of the domain.
type Bounds struct {
	XMin, XMax, YMin, YMax float64
}

// Width and Height return the physical dimensions.
func (b Bounds) Width() float64  { return b.XMax - b.XMin }
func (b Bounds) Height() float64 { return b.YMax - b.YMin }

// UnitBounds is the [0,1]² domain.
var UnitBounds = Bounds{0, 1, 0, 1}

// Side enumerates the four faces of a cell.
type Side int

const (
	Left Side = iota
	Right
	Bottom
	Top
)

// Neighbors lists the adjacent leaves on each side of a cell. Each side has
// 0 entries (domain boundary), 1 entry (same-level or coarser neighbor), or
// 2 entries (two finer neighbors, ordered by increasing j for Left/Right
// and increasing i for Bottom/Top).
type Neighbors struct {
	Cells  [4][2]int32 // indexed by Side
	Counts [4]int8
}

// On returns the neighbor indices on the given side.
func (n *Neighbors) On(s Side) []int32 { return n.Cells[s][:n.Counts[s]] }

// Mesh is a 2:1-balanced cell-based AMR mesh.
type Mesh struct {
	coarseNX, coarseNY int
	maxLevel           int
	bounds             Bounds

	cells []Cell
	index map[uint64]int32
	nbrs  []Neighbors
}

// New creates a uniform coarse mesh of nx × ny cells over bounds that may
// refine up to maxLevel extra levels. Cells are laid out row-major.
func New(nx, ny, maxLevel int, bounds Bounds) (*Mesh, error) {
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("mesh: grid %dx%d must be positive", nx, ny)
	}
	if maxLevel < 0 || maxLevel > MaxRefineLevel {
		return nil, fmt.Errorf("mesh: maxLevel %d out of [0,%d]", maxLevel, MaxRefineLevel)
	}
	if int64(nx)<<maxLevel >= 1<<28 || int64(ny)<<maxLevel >= 1<<28 {
		return nil, fmt.Errorf("mesh: %dx%d at %d levels exceeds coordinate range", nx, ny, maxLevel)
	}
	if bounds.Width() <= 0 || bounds.Height() <= 0 {
		return nil, fmt.Errorf("mesh: degenerate bounds %+v", bounds)
	}
	m := &Mesh{coarseNX: nx, coarseNY: ny, maxLevel: maxLevel, bounds: bounds}
	m.cells = make([]Cell, 0, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			m.cells = append(m.cells, Cell{int32(i), int32(j), 0})
		}
	}
	m.rebuild()
	return m, nil
}

// FromCells reconstructs a mesh from an explicit leaf list (checkpoint
// restart). The list must describe a valid 2:1-balanced cover of the
// domain; cell order is preserved so state arrays stay index-aligned.
func FromCells(nx, ny, maxLevel int, bounds Bounds, cells []Cell) (*Mesh, error) {
	m, err := New(nx, ny, maxLevel, bounds)
	if err != nil {
		return nil, err
	}
	m.cells = append([]Cell(nil), cells...)
	m.rebuild()
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("mesh: restored cell list invalid: %w", err)
	}
	return m, nil
}

// NumCells returns the number of active leaves.
func (m *Mesh) NumCells() int { return len(m.cells) }

// MaxLevel returns the refinement-depth cap.
func (m *Mesh) MaxLevel() int { return m.maxLevel }

// CoarseSize returns the coarse-grid dimensions.
func (m *Mesh) CoarseSize() (nx, ny int) { return m.coarseNX, m.coarseNY }

// Bounds returns the physical domain extent.
func (m *Mesh) Bounds() Bounds { return m.bounds }

// Cell returns the leaf with the given index.
func (m *Mesh) Cell(idx int) Cell { return m.cells[idx] }

// Cells returns the live leaf slice; callers must not modify it.
func (m *Mesh) Cells() []Cell { return m.cells }

// Lookup returns the index of the leaf (i, j, level), or -1.
func (m *Mesh) Lookup(i, j int32, level int8) int32 {
	if idx, ok := m.index[key(i, j, level)]; ok {
		return idx
	}
	return -1
}

// CellSize returns the physical cell dimensions at a refinement level.
func (m *Mesh) CellSize(level int8) (dx, dy float64) {
	nx := float64(int64(m.coarseNX) << uint(level))
	ny := float64(int64(m.coarseNY) << uint(level))
	return m.bounds.Width() / nx, m.bounds.Height() / ny
}

// Center returns the physical center of the leaf with the given index.
func (m *Mesh) Center(idx int) (x, y float64) {
	c := m.cells[idx]
	dx, dy := m.CellSize(c.Level)
	return m.bounds.XMin + (float64(c.I)+0.5)*dx, m.bounds.YMin + (float64(c.J)+0.5)*dy
}

// Area returns the physical area of the leaf with the given index.
func (m *Mesh) Area(idx int) float64 {
	dx, dy := m.CellSize(m.cells[idx].Level)
	return dx * dy
}

// Neighbors returns the cached adjacency of the leaf with the given index.
// The returned pointer aliases mesh-internal storage valid until the next
// Adapt.
func (m *Mesh) Neighbors(idx int) *Neighbors { return &m.nbrs[idx] }

// levelNX returns the grid dimensions at a level.
func (m *Mesh) levelDims(level int8) (nx, ny int32) {
	return int32(int64(m.coarseNX) << uint(level)), int32(int64(m.coarseNY) << uint(level))
}

// rebuild reconstructs the hash index and the neighbor cache from m.cells.
func (m *Mesh) rebuild() {
	m.index = make(map[uint64]int32, len(m.cells))
	for idx, c := range m.cells {
		m.index[key(c.I, c.J, c.Level)] = int32(idx)
	}
	m.nbrs = make([]Neighbors, len(m.cells))
	for idx := range m.cells {
		m.computeNeighbors(int32(idx), &m.nbrs[idx])
	}
}

// computeNeighbors resolves all four sides of cell idx via hash probes:
// same level first, then coarser, then the two finer children — exactly one
// succeeds on a balanced mesh (or the side is a domain boundary).
func (m *Mesh) computeNeighbors(idx int32, out *Neighbors) {
	c := m.cells[idx]
	nx, ny := m.levelDims(c.Level)

	resolve := func(side Side, ni, nj int32, inDomain bool) {
		out.Counts[side] = 0
		if !inDomain {
			return
		}
		// Same level.
		if n := m.Lookup(ni, nj, c.Level); n >= 0 {
			out.Cells[side][0] = n
			out.Counts[side] = 1
			return
		}
		// Coarser.
		if c.Level > 0 {
			if n := m.Lookup(ni>>1, nj>>1, c.Level-1); n >= 0 {
				out.Cells[side][0] = n
				out.Counts[side] = 1
				return
			}
		}
		// Two finer cells sharing the face.
		if int(c.Level) < m.maxLevel {
			var a, b int32
			switch side {
			case Left:
				a = m.Lookup(2*ni+1, 2*nj, c.Level+1)
				b = m.Lookup(2*ni+1, 2*nj+1, c.Level+1)
			case Right:
				a = m.Lookup(2*ni, 2*nj, c.Level+1)
				b = m.Lookup(2*ni, 2*nj+1, c.Level+1)
			case Bottom:
				a = m.Lookup(2*ni, 2*nj+1, c.Level+1)
				b = m.Lookup(2*ni+1, 2*nj+1, c.Level+1)
			case Top:
				a = m.Lookup(2*ni, 2*nj, c.Level+1)
				b = m.Lookup(2*ni+1, 2*nj, c.Level+1)
			}
			if a >= 0 && b >= 0 {
				out.Cells[side][0], out.Cells[side][1] = a, b
				out.Counts[side] = 2
				return
			}
		}
		// Unreachable on a consistent mesh; leave as boundary so a broken
		// mesh fails Validate rather than panicking mid-solve.
	}

	resolve(Left, c.I-1, c.J, c.I > 0)
	resolve(Right, c.I+1, c.J, c.I+1 < nx)
	resolve(Bottom, c.I, c.J-1, c.J > 0)
	resolve(Top, c.I, c.J+1, c.J+1 < ny)
	_ = ny
}

// Validate checks mesh invariants: exact single coverage of the domain,
// index consistency, and 2:1 balance. It returns the first violation found.
func (m *Mesh) Validate() error {
	// Index consistency.
	if len(m.index) != len(m.cells) {
		return fmt.Errorf("mesh: %d cells but %d index entries (duplicate leaves?)", len(m.cells), len(m.index))
	}
	for idx, c := range m.cells {
		if got, ok := m.index[key(c.I, c.J, c.Level)]; !ok || got != int32(idx) {
			return fmt.Errorf("mesh: index inconsistent for cell %d (%+v)", idx, c)
		}
		if c.Level < 0 || int(c.Level) > m.maxLevel {
			return fmt.Errorf("mesh: cell %d level %d out of range", idx, c.Level)
		}
		nx, ny := m.levelDims(c.Level)
		if c.I < 0 || c.I >= nx || c.J < 0 || c.J >= ny {
			return fmt.Errorf("mesh: cell %d (%+v) outside domain", idx, c)
		}
	}
	// Exact coverage in units of finest-level cells.
	var covered int64
	for _, c := range m.cells {
		scale := int64(1) << uint(2*(m.maxLevel-int(c.Level)))
		covered += scale
	}
	want := int64(m.coarseNX) * int64(m.coarseNY) << uint(2*m.maxLevel)
	if covered != want {
		return fmt.Errorf("mesh: covers %d finest cells, want %d (gap or overlap)", covered, want)
	}
	// No ancestor/descendant pairs both present (overlap), and 2:1 balance.
	for idx, c := range m.cells {
		for anc, lvl := c, c.Level; lvl > 0; {
			anc, lvl = anc.Parent(), lvl-1
			if m.Lookup(anc.I, anc.J, lvl) >= 0 {
				return fmt.Errorf("mesh: cell %d (%+v) overlaps ancestor %+v", idx, c, anc)
			}
		}
		nb := m.nbrs[idx]
		nx, ny := m.levelDims(c.Level)
		interior := [4]bool{c.I > 0, c.I+1 < nx, c.J > 0, c.J+1 < ny}
		for s := Left; s <= Top; s++ {
			if interior[s] && nb.Counts[s] == 0 {
				return fmt.Errorf("mesh: cell %d (%+v) has unresolved interior side %d (balance violated?)", idx, c, s)
			}
			for _, n := range nb.On(s) {
				diff := int(m.cells[n].Level) - int(c.Level)
				if diff < -1 || diff > 1 {
					return fmt.Errorf("mesh: cells %d and %d differ by %d levels", idx, n, diff)
				}
			}
		}
	}
	return nil
}

// MaxActiveLevel returns the deepest level present in the mesh.
func (m *Mesh) MaxActiveLevel() int8 {
	var lvl int8
	for _, c := range m.cells {
		if c.Level > lvl {
			lvl = c.Level
		}
	}
	return lvl
}

// ContainingCell returns the index of the leaf containing physical point
// (x, y), or -1 if the point lies outside the domain. Points on shared
// edges resolve to the cell whose half-open span contains them.
func (m *Mesh) ContainingCell(x, y float64) int32 {
	if x < m.bounds.XMin || x >= m.bounds.XMax || y < m.bounds.YMin || y >= m.bounds.YMax {
		return -1
	}
	fx := (x - m.bounds.XMin) / m.bounds.Width()
	fy := (y - m.bounds.YMin) / m.bounds.Height()
	for l := int8(m.maxLevel); l >= 0; l-- {
		nx, ny := m.levelDims(l)
		i := int32(fx * float64(nx))
		j := int32(fy * float64(ny))
		if i >= nx {
			i = nx - 1
		}
		if j >= ny {
			j = ny - 1
		}
		if idx := m.Lookup(i, j, l); idx >= 0 {
			return idx
		}
	}
	return -1
}

// Rasterize samples per-cell values onto a uniform nx × ny grid of pixel
// centers, row-major. Useful for line cuts and figure slices.
func (m *Mesh) Rasterize(values []float64, nx, ny int) ([]float64, error) {
	if len(values) != len(m.cells) {
		return nil, fmt.Errorf("mesh: %d values for %d cells", len(values), len(m.cells))
	}
	out := make([]float64, nx*ny)
	dx := m.bounds.Width() / float64(nx)
	dy := m.bounds.Height() / float64(ny)
	for j := 0; j < ny; j++ {
		y := m.bounds.YMin + (float64(j)+0.5)*dy
		for i := 0; i < nx; i++ {
			x := m.bounds.XMin + (float64(i)+0.5)*dx
			idx := m.ContainingCell(x, y)
			if idx < 0 {
				out[j*nx+i] = math.NaN()
				continue
			}
			out[j*nx+i] = values[idx]
		}
	}
	return out, nil
}
