package mesh

import "fmt"

// RefineFlag is a per-cell adaptation request.
type RefineFlag int8

const (
	// Coarsen requests that the cell merge with its siblings (granted only
	// when all four siblings agree and balance allows).
	Coarsen RefineFlag = -1
	// Keep leaves the cell unchanged.
	Keep RefineFlag = 0
	// Refine splits the cell into four children.
	Refine RefineFlag = 1
)

// Remap describes how solver state moves from the pre-Adapt mesh to the
// post-Adapt mesh. Operations are disjoint and cover every new cell.
type Remap struct {
	// Copies maps old cell index → new cell index for unchanged cells.
	Copies []CopyOp
	// Refines maps one old cell to its four new children (SW, SE, NW, NE).
	Refines []RefineOp
	// Coarsens maps four old sibling cells (SW, SE, NW, NE) to one new cell.
	Coarsens []CoarsenOp
	// OldLen and NewLen are the mesh sizes before and after.
	OldLen, NewLen int
}

// CopyOp moves one cell's state unchanged.
type CopyOp struct{ Old, New int32 }

// RefineOp splits one cell into four children.
type RefineOp struct {
	Old int32
	New [4]int32
}

// CoarsenOp merges four siblings into one parent.
type CoarsenOp struct {
	Old [4]int32
	New int32
}

// Adapt applies per-cell refinement flags, enforcing 2:1 balance (balance
// propagation may refine cells that were not flagged, and may veto
// coarsening). It rebuilds the mesh and returns the state remap plan.
//
// flags must have one entry per current cell.
func (m *Mesh) Adapt(flags []RefineFlag) (*Remap, error) {
	if len(flags) != len(m.cells) {
		return nil, fmt.Errorf("mesh: %d flags for %d cells", len(flags), len(m.cells))
	}
	n := len(m.cells)

	// Working copy with clamping.
	want := make([]RefineFlag, n)
	for i, f := range flags {
		switch {
		case f > Keep && int(m.cells[i].Level) < m.maxLevel:
			want[i] = Refine
		case f < Keep && m.cells[i].Level > 0:
			want[i] = Coarsen
		default:
			want[i] = Keep
		}
	}

	// Balance propagation for refinement: if cell c will reach level
	// L(c)+1, every neighbor with final level < L(c) must refine. Iterate
	// to a fixed point (each pass only raises flags, so it terminates).
	for changed := true; changed; {
		changed = false
		for idx := 0; idx < n; idx++ {
			if want[idx] != Refine {
				continue
			}
			target := int(m.cells[idx].Level) + 1
			nb := &m.nbrs[idx]
			for s := Left; s <= Top; s++ {
				for _, nIdx := range nb.On(s) {
					nLevel := int(m.cells[nIdx].Level)
					if want[nIdx] == Refine {
						nLevel++
					}
					if nLevel < target-1 {
						// Neighbor must refine; also cancel any coarsen wish.
						if want[nIdx] != Refine {
							want[nIdx] = Refine
							changed = true
						}
					} else if want[nIdx] == Coarsen && nLevel-1 < target-1 {
						want[nIdx] = Keep
						changed = true
					}
				}
			}
		}
	}

	// Coarsening: all four siblings must exist as leaves at the same level
	// and all want to coarsen; the merged parent must not violate balance
	// against any neighbor's post-refinement level.
	type group struct {
		members [4]int32
		ok      bool
	}
	groups := make(map[uint64]*group)
	for idx := 0; idx < n; idx++ {
		if want[idx] != Coarsen {
			continue
		}
		c := m.cells[idx]
		p := c.Parent()
		k := key(p.I, p.J, p.Level)
		g, ok := groups[k]
		if !ok {
			g = &group{ok: true}
			for q, ch := range p.Children() {
				chIdx := m.Lookup(ch.I, ch.J, ch.Level)
				if chIdx < 0 || want[chIdx] != Coarsen {
					g.ok = false
					break
				}
				g.members[q] = chIdx
			}
			groups[k] = g
		}
	}
	// Balance veto: the parent (level L-1) may not touch any cell whose
	// post-refinement level exceeds L. Member cells' neighbors bound this.
	for _, g := range groups {
		if !g.ok {
			continue
		}
		for _, member := range g.members {
			nb := &m.nbrs[member]
			memberLevel := int(m.cells[member].Level)
			for s := Left; s <= Top; s++ {
				for _, nIdx := range nb.On(s) {
					final := int(m.cells[nIdx].Level)
					if want[nIdx] == Refine {
						final++
					}
					if final > memberLevel {
						g.ok = false
					}
				}
			}
		}
	}
	// Demote members of failed groups to Keep.
	coarsenGranted := make([]bool, n)
	for _, g := range groups {
		if g.ok {
			for _, member := range g.members {
				coarsenGranted[member] = true
			}
		}
	}
	for idx := 0; idx < n; idx++ {
		if want[idx] == Coarsen && !coarsenGranted[idx] {
			want[idx] = Keep
		}
	}

	// Build the new cell list in old-cell order: refined children expand in
	// place, coarsened parents emit at the first sibling's position.
	plan := &Remap{OldLen: n}
	newCells := make([]Cell, 0, n)
	emitted := make(map[uint64]bool)
	for idx := 0; idx < n; idx++ {
		c := m.cells[idx]
		switch want[idx] {
		case Keep:
			plan.Copies = append(plan.Copies, CopyOp{Old: int32(idx), New: int32(len(newCells))})
			newCells = append(newCells, c)
		case Refine:
			op := RefineOp{Old: int32(idx)}
			for q, ch := range c.Children() {
				op.New[q] = int32(len(newCells))
				newCells = append(newCells, ch)
			}
			plan.Refines = append(plan.Refines, op)
		case Coarsen:
			p := c.Parent()
			k := key(p.I, p.J, p.Level)
			if emitted[k] {
				continue
			}
			emitted[k] = true
			g := groups[k]
			op := CoarsenOp{Old: g.members, New: int32(len(newCells))}
			newCells = append(newCells, p)
			plan.Coarsens = append(plan.Coarsens, op)
		}
	}
	plan.NewLen = len(newCells)

	m.cells = newCells
	m.rebuild()
	return plan, nil
}

// ApplyRemap transfers per-cell state across an Adapt. prolong maps a parent
// value to its four children (SW, SE, NW, NE); restrict merges four child
// values into the parent. For conserved cell-averaged quantities, prolong is
// usually injection (copy) and restrict the arithmetic mean.
func ApplyRemap[S any](plan *Remap, old []S, prolong func(S) [4]S, restrict func([4]S) S) []S {
	return ApplyRemapInto(nil, plan, old, prolong, restrict)
}

// ApplyRemapInto is ApplyRemap writing into dst, reusing dst's backing array
// when its capacity suffices (dst must not alias old). It returns the
// resized destination, letting a solver ping-pong two state buffers across
// adaptations instead of reallocating per remap.
func ApplyRemapInto[S any](dst []S, plan *Remap, old []S, prolong func(S) [4]S, restrict func([4]S) S) []S {
	var out []S
	if cap(dst) >= plan.NewLen {
		out = dst[:plan.NewLen]
	} else {
		out = make([]S, plan.NewLen)
	}
	for _, op := range plan.Copies {
		out[op.New] = old[op.Old]
	}
	for _, op := range plan.Refines {
		vals := prolong(old[op.Old])
		for q, idx := range op.New {
			out[idx] = vals[q]
		}
	}
	for _, op := range plan.Coarsens {
		var vals [4]S
		for q, idx := range op.Old {
			vals[q] = old[idx]
		}
		out[op.New] = restrict(vals)
	}
	return out
}

// InjectProlong returns a prolongation that copies the parent value to all
// four children (exact for cell averages of piecewise-constant data).
func InjectProlong[S any]() func(S) [4]S {
	return func(v S) [4]S { return [4]S{v, v, v, v} }
}

// MeanRestrict returns a restriction that averages the four children
// (conservative for equal-area children).
func MeanRestrict[S ~float32 | ~float64]() func([4]S) S {
	return func(v [4]S) S { return (v[0] + v[1] + v[2] + v[3]) / 4 }
}
