package tuner

import (
	"math"
	"strings"
	"testing"
)

// quadratic solves x² − (big+tiny)x + big·tiny = 0 whose roots are big and
// tiny; the tiny root suffers catastrophic cancellation unless the
// discriminant chain stays wide.
func quadratic(r *Rounder) []float64 {
	a := r.R("a", 1)
	b := r.R("b", -(1e8 + 1e-3))
	c := r.R("c", 1e8*1e-3)
	disc := r.R("disc", b*b-4*a*c)
	sq := r.R("sqrt", math.Sqrt(disc))
	x1 := r.R("x1", (-b+sq)/(2*a))
	// Stable form for the small root.
	x2 := r.R("x2", c/(a*x1))
	return []float64{x1, x2}
}

// paperKernel mirrors the paper's finding: local flux arithmetic tolerates
// single precision while the global sum demands width. The outputs are the
// global sum of n flux evaluations plus one sampled flux.
func paperKernel(r *Rounder) []float64 {
	const n = 4000
	var sum float64
	var sample float64
	for i := 0; i < n; i++ {
		x := 1 + float64(i%17)/16
		// "local" flux math — error here stays local.
		flux := r.R("flux", x*x*0.5+x)
		if i == 7 {
			sample = flux
		}
		// the "global sum" — rounding here accumulates n times and
		// alternates sign to force cancellation.
		sign := 1.0
		if i%2 == 1 {
			sign = -1.0000001
		}
		sum = r.R("sum", sum+sign*flux)
	}
	return []float64{sum, sample}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(func(r *Rounder) []float64 { return nil }); err == nil {
		t.Error("program without outputs accepted")
	}
	if _, err := New(func(r *Rounder) []float64 { return []float64{1} }); err == nil {
		t.Error("program without knobs accepted")
	}
	if _, err := New(func(r *Rounder) []float64 {
		return []float64{r.R("x", math.NaN())}
	}); err == nil {
		t.Error("non-finite reference accepted")
	}
	tn, err := New(quadratic)
	if err != nil {
		t.Fatal(err)
	}
	knobs := tn.Knobs()
	if len(knobs) != 7 || knobs[0] != "a" || knobs[6] != "x2" {
		t.Errorf("knobs = %v", knobs)
	}
}

func TestPrecBasics(t *testing.T) {
	if Half.Bits() != 11 || Single.Bits() != 24 || Double.Bits() != 53 {
		t.Error("bits wrong")
	}
	if !(Half.Cost() < Single.Cost() && Single.Cost() < Double.Cost()) {
		t.Error("cost ordering wrong")
	}
	if Half.String() == Single.String() || Single.String() == Double.String() {
		t.Error("names collide")
	}
	if Double.round(math.Pi) != math.Pi {
		t.Error("double rounding changed value")
	}
	if Single.round(math.Pi) != float64(float32(math.Pi)) {
		t.Error("single rounding wrong")
	}
	if Half.round(1e-9) != 0 {
		t.Error("half rounding missing range limits")
	}
}

func TestGreedyRespectsBound(t *testing.T) {
	for _, bound := range []float64{1e-3, 1e-6, 1e-10} {
		tn, err := New(quadratic)
		if err != nil {
			t.Fatal(err)
		}
		res := tn.SearchGreedy(bound)
		if res.Error > bound {
			t.Errorf("bound %g: achieved error %g", bound, res.Error)
		}
		if res.Evaluations == 0 {
			t.Error("no evaluations recorded")
		}
	}
}

func TestGreedyFindsSavingsOnQuadratic(t *testing.T) {
	tn, err := New(quadratic)
	if err != nil {
		t.Fatal(err)
	}
	res := tn.SearchGreedy(1e-5)
	if res.Saving() <= 0 {
		t.Errorf("no savings found: %v", res)
	}
	// The cancellation chain (b, disc — and the values feeding it) cannot
	// all drop to half: with everything at half the tiny root is garbage.
	allHalf := Assignment{}
	for _, k := range tn.Knobs() {
		allHalf[k] = Half
	}
	if e := tn.evaluate(allHalf); e <= 1e-5 {
		t.Fatalf("all-half unexpectedly accurate (%g) — test problem too easy", e)
	}
	if !strings.Contains(res.String(), "saving") {
		t.Error("result string malformed")
	}
}

func TestPaperKernelStory(t *testing.T) {
	// The tuner must rediscover the paper's pattern: the local flux knob
	// demotes, the global accumulation knob stays double.
	tn, err := New(paperKernel)
	if err != nil {
		t.Fatal(err)
	}
	res := tn.SearchGreedy(1e-7)
	if res.Error > 1e-7 {
		t.Fatalf("bound violated: %g", res.Error)
	}
	if res.Assignment["flux"] == Double {
		t.Errorf("flux knob kept at double: %v", res.Assignment)
	}
	if res.Assignment["sum"] != Double {
		t.Errorf("global sum was demoted to %v — cancellation ignored", res.Assignment["sum"])
	}
	if res.Saving() <= 0.1 {
		t.Errorf("saving only %.0f%%", 100*res.Saving())
	}
}

func TestBisectMatchesGreedyQuality(t *testing.T) {
	for _, prog := range []Program{quadratic, paperKernel} {
		tg, err := New(prog)
		if err != nil {
			t.Fatal(err)
		}
		greedy := tg.SearchGreedy(1e-6)
		tb, err := New(prog)
		if err != nil {
			t.Fatal(err)
		}
		bisect := tb.SearchBisect(1e-6)
		if bisect.Error > 1e-6 {
			t.Errorf("bisect violated bound: %g", bisect.Error)
		}
		if greedy.Error > 1e-6 {
			t.Errorf("greedy violated bound: %g", greedy.Error)
		}
		// Bisection explores coarser moves; allow it to find somewhat
		// fewer savings but not none when greedy finds plenty.
		if greedy.Saving() > 0.3 && bisect.Saving() <= 0 {
			t.Errorf("bisect found no savings where greedy found %.0f%%", 100*greedy.Saving())
		}
	}
}

func TestBisectFasterThanGreedyOnWideProblems(t *testing.T) {
	// A program with many independent tolerant knobs: bisection demotes
	// them in O(log n) probes where greedy needs O(n).
	wide := func(r *Rounder) []float64 {
		var sum float64
		for i := 0; i < 32; i++ {
			name := string(rune('A' + i))
			sum += r.R(name, float64(i)+0.5)
		}
		return []float64{sum}
	}
	tg, err := New(wide)
	if err != nil {
		t.Fatal(err)
	}
	greedy := tg.SearchGreedy(1e-2)
	tb, err := New(wide)
	if err != nil {
		t.Fatal(err)
	}
	bisect := tb.SearchBisect(1e-2)
	if bisect.Evaluations >= greedy.Evaluations {
		t.Errorf("bisect took %d evaluations, greedy %d", bisect.Evaluations, greedy.Evaluations)
	}
	if bisect.Saving() < 0.5 {
		t.Errorf("bisect savings %.0f%% on a fully tolerant program", 100*bisect.Saving())
	}
}

func TestDeterministicSearch(t *testing.T) {
	run := func() Result {
		tn, err := New(paperKernel)
		if err != nil {
			t.Fatal(err)
		}
		return tn.SearchGreedy(1e-7)
	}
	a, b := run(), run()
	if a.Error != b.Error || a.Cost != b.Cost {
		t.Error("search not deterministic")
	}
	for k, v := range a.Assignment {
		if b.Assignment[k] != v {
			t.Errorf("knob %s differs between runs", k)
		}
	}
}

func TestAssignmentClone(t *testing.T) {
	a := Assignment{"x": Half}
	b := a.Clone()
	b["x"] = Double
	if a["x"] != Half {
		t.Error("Clone aliased the map")
	}
}

func TestDefaultBound(t *testing.T) {
	tn, err := New(quadratic)
	if err != nil {
		t.Fatal(err)
	}
	res := tn.SearchGreedy(0) // default 1e-6
	if res.Error > 1e-6 {
		t.Errorf("default bound not applied: %g", res.Error)
	}
	tn2, err := New(quadratic)
	if err != nil {
		t.Fatal(err)
	}
	if res := tn2.SearchBisect(-1); res.Error > 1e-6 {
		t.Errorf("bisect default bound not applied: %g", res.Error)
	}
}
