// Package tuner implements automated mixed-precision search in the spirit
// of the tools the paper's §III.B surveys — CRAFT's bisection over program
// regions (Lam & Hollingsworth, the analysis that produced CLAMR's
// precision compile options) and Precimonious's per-variable tuning: given
// a computation with named precision knobs and an accuracy bound, find an
// assignment of half/single/double to each knob that meets the bound at
// minimal cost.
//
// The computation is expressed as a function over a Rounder; every value
// passed through Rounder.R("name", v) is rounded to the precision currently
// assigned to that knob, emulating a variable stored at that width. The
// tuner first runs at all-double to capture the reference output and the
// knob set, then searches assignments with either greedy per-variable
// demotion (Precimonious-style) or recursive set bisection (CRAFT-style).
package tuner

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/precision"
)

// Prec is a candidate storage precision for one knob.
type Prec int

const (
	// Half is IEEE binary16 (11 significand bits).
	Half Prec = iota
	// Single is IEEE binary32 (24 significand bits).
	Single
	// Double is IEEE binary64 (53 significand bits).
	Double
)

// String names the precision.
func (p Prec) String() string {
	switch p {
	case Half:
		return "half"
	case Single:
		return "single"
	default:
		return "double"
	}
}

// Bits returns significand bits (including the implicit bit).
func (p Prec) Bits() int {
	switch p {
	case Half:
		return 11
	case Single:
		return 24
	default:
		return 53
	}
}

// Cost is the relative cost weight of storing/computing one value at this
// precision (bytes-proportional: the paper's bandwidth argument).
func (p Prec) Cost() float64 {
	switch p {
	case Half:
		return 0.25
	case Single:
		return 0.5
	default:
		return 1
	}
}

// round applies the precision's rounding to v, including the narrow
// formats' range limits.
func (p Prec) round(v float64) float64 {
	switch p {
	case Half:
		return precision.Half.Demote(v)
	case Single:
		return float64(float32(v))
	default:
		return v
	}
}

// Program computes outputs through a Rounder; every R() call site with a
// distinct name is one tunable knob. Programs must be deterministic.
type Program func(r *Rounder) []float64

// Rounder applies the current assignment during a program run and tallies
// knob usage.
type Rounder struct {
	assign map[string]Prec
	counts map[string]int
	order  *[]string
}

// R rounds v through the precision assigned to the named knob (Double if
// unassigned) and records the use.
func (r *Rounder) R(name string, v float64) float64 {
	r.counts[name]++
	if r.order != nil {
		if _, seen := r.assign[name]; !seen {
			r.assign[name] = Double
			*r.order = append(*r.order, name)
		}
		return v
	}
	p, ok := r.assign[name]
	if !ok {
		p = Double
	}
	return p.round(v)
}

// Assignment maps knob names to precisions.
type Assignment map[string]Prec

// Clone copies the assignment.
func (a Assignment) Clone() Assignment {
	out := make(Assignment, len(a))
	for k, v := range a {
		out[k] = v
	}
	return out
}

// Result reports a completed search.
type Result struct {
	// Assignment is the found precision per knob.
	Assignment Assignment
	// Error is the achieved maximum relative error vs the double
	// reference.
	Error float64
	// Cost and DoubleCost weigh each knob's precision by its execution
	// count; Saving = 1 − Cost/DoubleCost.
	Cost, DoubleCost float64
	// Evaluations counts program runs spent searching.
	Evaluations int
	// Knobs lists knob names in first-use order.
	Knobs []string
}

// Saving returns the fractional cost reduction vs all-double.
func (r Result) Saving() float64 {
	if r.DoubleCost == 0 {
		return 0
	}
	return 1 - r.Cost/r.DoubleCost
}

// String renders the result compactly.
func (r Result) String() string {
	s := fmt.Sprintf("error %.3g, saving %.0f%%, %d evaluations\n", r.Error, 100*r.Saving(), r.Evaluations)
	for _, k := range r.Knobs {
		s += fmt.Sprintf("  %-24s %s\n", k, r.Assignment[k])
	}
	return s
}

// Tuner drives the search.
type Tuner struct {
	prog      Program
	reference []float64
	knobs     []string
	counts    map[string]int
	evals     int
}

// New profiles the program at all-double precision and returns a tuner.
// The program must produce at least one finite output.
func New(prog Program) (*Tuner, error) {
	t := &Tuner{prog: prog, counts: make(map[string]int)}
	order := []string{}
	r := &Rounder{assign: map[string]Prec{}, counts: t.counts, order: &order}
	t.reference = prog(r)
	t.knobs = order
	if len(t.reference) == 0 {
		return nil, fmt.Errorf("tuner: program produced no outputs")
	}
	finite := false
	for _, v := range t.reference {
		if !math.IsNaN(v) && !math.IsInf(v, 0) {
			finite = true
		}
	}
	if !finite {
		return nil, fmt.Errorf("tuner: reference outputs are all non-finite")
	}
	if len(t.knobs) == 0 {
		return nil, fmt.Errorf("tuner: program has no knobs (no Rounder.R calls)")
	}
	return t, nil
}

// Knobs returns knob names in first-use order.
func (t *Tuner) Knobs() []string { return append([]string(nil), t.knobs...) }

// evaluate runs the program under an assignment and returns the maximum
// relative output error vs the reference.
func (t *Tuner) evaluate(a Assignment) float64 {
	t.evals++
	r := &Rounder{assign: a, counts: map[string]int{}}
	out := t.prog(r)
	if len(out) != len(t.reference) {
		return math.Inf(1)
	}
	worst := 0.0
	for i, v := range out {
		ref := t.reference[i]
		var rel float64
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0):
			return math.Inf(1)
		case ref == 0:
			rel = math.Abs(v)
		default:
			rel = math.Abs(v-ref) / math.Abs(ref)
		}
		if rel > worst {
			worst = rel
		}
	}
	return worst
}

// cost weighs an assignment by per-knob execution counts.
func (t *Tuner) cost(a Assignment) float64 {
	var c float64
	for _, k := range t.knobs {
		p, ok := a[k]
		if !ok {
			p = Double
		}
		c += float64(t.counts[k]) * p.Cost()
	}
	return c
}

// allDouble returns the baseline assignment.
func (t *Tuner) allDouble() Assignment {
	a := make(Assignment, len(t.knobs))
	for _, k := range t.knobs {
		a[k] = Double
	}
	return a
}

// result packages an assignment.
func (t *Tuner) result(a Assignment) Result {
	return Result{
		Assignment:  a,
		Error:       t.evaluate(a),
		Cost:        t.cost(a),
		DoubleCost:  t.cost(t.allDouble()),
		Evaluations: t.evals,
		Knobs:       t.Knobs(),
	}
}

// ladder is the demotion order tried for each knob.
var ladder = []Prec{Single, Half}

// SearchGreedy performs Precimonious-style per-variable tuning: repeated
// passes over the knobs (most-used first), tentatively demoting each one
// step down the precision ladder and keeping demotions that hold the
// error within bound. Terminates when a full pass makes no change.
func (t *Tuner) SearchGreedy(bound float64) Result {
	if bound <= 0 {
		bound = 1e-6
	}
	a := t.allDouble()
	order := append([]string(nil), t.knobs...)
	sort.SliceStable(order, func(i, j int) bool {
		return t.counts[order[i]] > t.counts[order[j]]
	})
	for changed := true; changed; {
		changed = false
		for _, k := range order {
			cur := a[k]
			var next Prec
			switch cur {
			case Double:
				next = Single
			case Single:
				next = Half
			default:
				continue
			}
			a[k] = next
			if t.evaluate(a) <= bound {
				changed = true
			} else {
				a[k] = cur
			}
		}
	}
	return t.result(a)
}

// SearchBisect performs CRAFT-style recursive bisection: first try to
// demote the entire knob set one rung; where that fails, split the set and
// recurse, isolating the variables that genuinely need width. Each rung of
// the ladder is applied in turn (double→single, then single→half on the
// knobs that reached single).
func (t *Tuner) SearchBisect(bound float64) Result {
	if bound <= 0 {
		bound = 1e-6
	}
	a := t.allDouble()
	for _, target := range ladder {
		// Candidates: knobs exactly one rung above target.
		var candidates []string
		for _, k := range t.knobs {
			if a[k] == target+1 {
				candidates = append(candidates, k)
			}
		}
		t.bisect(a, candidates, target, bound)
	}
	return t.result(a)
}

// bisect tries to demote every knob in `set` to target; on failure it
// splits the set (CRAFT's divide and conquer). Successful demotions are
// committed into a.
func (t *Tuner) bisect(a Assignment, set []string, target Prec, bound float64) {
	if len(set) == 0 {
		return
	}
	saved := make([]Prec, len(set))
	for i, k := range set {
		saved[i] = a[k]
		a[k] = target
	}
	if t.evaluate(a) <= bound {
		return // whole set demotes
	}
	// Revert and split.
	for i, k := range set {
		a[k] = saved[i]
	}
	if len(set) == 1 {
		return // this knob must keep its width
	}
	mid := len(set) / 2
	t.bisect(a, set[:mid], target, bound)
	t.bisect(a, set[mid:], target, bound)
}
