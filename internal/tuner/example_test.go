package tuner_test

import (
	"fmt"

	"repro/internal/tuner"
)

// The tuner finds, per named variable, the lowest precision that keeps the
// output within a bound. Here the polynomial evaluation tolerates single
// precision while the cancellation-prone difference demands double.
func ExampleTuner_SearchGreedy() {
	prog := func(r *tuner.Rounder) []float64 {
		// Two nearly equal quantities whose difference is the answer.
		a := r.R("poly", 1.0000001*2.5)
		b := r.R("poly2", 2.5)
		return []float64{r.R("diff", a-b)}
	}
	tn, err := tuner.New(prog)
	if err != nil {
		fmt.Println(err)
		return
	}
	res := tn.SearchGreedy(1e-4)
	fmt.Println("poly:", res.Assignment["poly"])
	fmt.Println("bound met:", res.Error <= 1e-4)
	// Output:
	// poly: double
	// bound met: true
}
