package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/clamr"
	"repro/internal/precision"
	"repro/internal/self"
)

func clamrCfg() clamr.Config {
	return clamr.Config{NX: 24, NY: 24, MaxLevel: 1, Kernel: clamr.KernelFace, AMRInterval: 10}
}

func TestRunCLAMRCollectsEverything(t *testing.T) {
	res, err := RunCLAMR(precision.Min, clamrCfg(), 30, 48)
	if err != nil {
		t.Fatal(err)
	}
	if res.Mode != precision.Min || res.Steps != 30 {
		t.Errorf("identity wrong: %+v", res.Mode)
	}
	if res.WallTime <= 0 || res.FiniteDiffTime <= 0 {
		t.Error("timers empty")
	}
	if res.Cells == 0 || res.StateBytes == 0 || res.CheckpointBytes == 0 {
		t.Error("sizes empty")
	}
	if res.Counters.TotalFlops() == 0 {
		t.Error("counters empty")
	}
	if res.MassError > 1e-4 {
		t.Errorf("mass error %g", res.MassError)
	}
	if res.LineCut.Len() != 48 {
		t.Errorf("line cut %d points", res.LineCut.Len())
	}
	if res.LineCut.MaxAbs() < 1 {
		t.Error("line cut looks empty")
	}
	w := res.Workload()
	if !w.Vectorized || w.SerialOps == 0 || w.StateBytes == 0 {
		t.Errorf("workload malformed: %+v", w)
	}
}

func TestRunCLAMRPrecisionComparison(t *testing.T) {
	full, err := RunCLAMR(precision.Full, clamrCfg(), 40, 64)
	if err != nil {
		t.Fatal(err)
	}
	min, err := RunCLAMR(precision.Min, clamrCfg(), 40, 64)
	if err != nil {
		t.Fatal(err)
	}
	fid := AssessFidelity(min.LineCut, full.LineCut)
	// Paper Fig 1: ≥5 orders of magnitude separation.
	if fid.OrdersBelow < 4.5 {
		t.Errorf("min precision only %.1f orders below solution", fid.OrdersBelow)
	}
	if !fid.Acceptable(4) {
		t.Error("fidelity not acceptable at 4 orders")
	}
	if fid.Acceptable(math.Inf(1)) {
		t.Error("fidelity acceptable at infinite orders")
	}
	// Memory: min below full.
	if min.StateBytes >= full.StateBytes {
		t.Error("min state not smaller than full")
	}
	if float64(min.CheckpointBytes)/float64(full.CheckpointBytes) > 0.75 {
		t.Error("checkpoint ratio not ≈2/3")
	}
}

func TestRunSELFCollectsEverything(t *testing.T) {
	cfg := self.Config{Elements: 3, Order: 3}
	res, err := RunSELF(precision.Min, cfg, 10, 32)
	if err != nil {
		t.Fatal(err)
	}
	if res.WallTime <= 0 || res.DOF == 0 || res.StateBytes == 0 {
		t.Errorf("result incomplete: %+v", res)
	}
	if res.LineCut.Len() != 32 {
		t.Errorf("line cut %d points", res.LineCut.Len())
	}
	w := res.Workload()
	if w.SerialOps == 0 || !w.Vectorized {
		t.Errorf("workload malformed: %+v", w)
	}
}

func TestRunErrorsPropagate(t *testing.T) {
	if _, err := RunCLAMR(precision.Full, clamr.Config{NX: -1}, 1, 0); err == nil {
		t.Error("bad CLAMR config accepted")
	}
	if _, err := RunSELF(precision.Full, self.Config{Elements: 0, Order: 3}, 1, 0); err == nil {
		t.Error("bad SELF config accepted")
	}
	if _, err := RunSELF(precision.Half, self.Config{Elements: 2, Order: 2}, 1, 0); err == nil {
		t.Error("SELF half mode accepted")
	}
}

func TestRecommendMode(t *testing.T) {
	cases := []struct {
		digits    float64
		memBound  bool
		dpRatio   float64
		sensitive bool
		want      precision.Mode
	}{
		{12, true, 2, false, precision.Full},  // needs more than f32 carries
		{6, true, 2, false, precision.Min},    // bandwidth-bound, tolerant
		{6, false, 32, false, precision.Min},  // TITAN-X-class DP penalty
		{6, true, 2, true, precision.Mixed},   // sensitive locals guarded
		{6, false, 2, false, precision.Mixed}, // default: keep guard rails
		{2, true, 2, false, precision.Half},   // error-tolerant streaming
		{2, true, 2, true, precision.Mixed},   // sensitivity vetoes half
	}
	for i, c := range cases {
		got := RecommendMode(c.digits, c.memBound, c.dpRatio, c.sensitive)
		if got != c.want {
			t.Errorf("case %d: RecommendMode = %v, want %v", i, got, c.want)
		}
	}
}

func TestTableRendering(t *testing.T) {
	tb := Table{Title: "T", Headers: []string{"Arch", "Min", "Full"}}
	tb.AddRow("Haswell", "26.3", "31.3")
	tb.AddRow("TITAN X", "2.8")
	out := tb.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "Haswell") {
		t.Errorf("table output: %q", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("table has %d lines", len(lines))
	}
	// Aligned columns: header and rows share prefix widths.
	if len(lines[1]) < len("Arch     Min") {
		t.Errorf("header too narrow: %q", lines[1])
	}
	var sb strings.Builder
	if _, err := tb.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	if sb.String() != out {
		t.Error("WriteTo differs from String")
	}
}

func TestFormatters(t *testing.T) {
	if got := FormatDuration(26300 * time.Millisecond); got != "26.3" {
		t.Errorf("FormatDuration = %q", got)
	}
	if got := FormatJoules(2762.4); got != "2762" {
		t.Errorf("FormatJoules = %q", got)
	}
	if got := FormatGB(1_590_000_000); got != "1.59" {
		t.Errorf("FormatGB = %q", got)
	}
	if got := FormatSpeedup(1.19); got != "19%" {
		t.Errorf("FormatSpeedup = %q", got)
	}
	if got := FormatSpeedup(4.53); got != "353%" {
		t.Errorf("FormatSpeedup(4.53) = %q", got)
	}
	if FormatSpeedup(0) != "-" || FormatSpeedup(math.NaN()) != "-" {
		t.Error("degenerate speedups not dashed")
	}
}
