// Package core implements the paper's methodology as a reusable library:
// run a mini-app at each precision mode, collect runtime, memory,
// operation counts, checkpoint size and solution line-cuts, project the
// measured workload onto the paper's architectures, and assemble the
// tables and figures of the evaluation section.
//
// This is the "thoughtful precision" layer: the mini-apps know how to run
// at a precision; this package knows how to *compare* precisions and how
// to pick one (the §VIII heuristics).
package core

import (
	"context"
	"fmt"
	"io"
	"math"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/arch"
	"repro/internal/clamr"
	"repro/internal/fault"
	"repro/internal/mesh"
	"repro/internal/metrics"
	"repro/internal/precision"
	"repro/internal/self"
)

// CLAMRResult captures one CLAMR run.
type CLAMRResult struct {
	Mode            precision.Mode
	Kernel          clamr.Kernel
	Steps           int
	Cells           int
	WallTime        time.Duration
	FiniteDiffTime  time.Duration
	Counters        metrics.Counters
	StateBytes      uint64
	CheckpointBytes int64
	MassError       float64
	LineCut         analysis.Series
	// Phases snapshots the solver's per-phase timer buckets (timestep,
	// finite_diff, amr) in first-use order.
	Phases []metrics.PhaseTotal
}

// RunCLAMR executes the dam-break problem at one precision mode and
// collects the paper's measurables. lineCutN > 0 samples the height along
// the horizontal center line at that resolution.
func RunCLAMR(mode precision.Mode, cfg clamr.Config, steps, lineCutN int) (CLAMRResult, error) {
	return RunCLAMROpts(mode, cfg, steps, lineCutN, RunOptions{})
}

// RunOptions extends the study runners with the execution controls the
// experiment service needs: cancellation, per-step progress, checkpoint
// restart, checkpoint capture, periodic in-flight checkpoints and the
// numerical-guard cadence. The zero value reproduces the plain
// Run{CLAMR,SELF} measurables exactly (guards only ever abort diverging
// runs; they never perturb counters or state).
type RunOptions struct {
	// Ctx cancels the run between steps; nil means context.Background().
	// A cancelled run returns an error wrapping ctx.Err().
	Ctx context.Context
	// Progress, when non-nil, is called after every completed step with the
	// absolute step count and the target step count.
	Progress func(step, total int)
	// Resume, when non-nil, restores the solver from a checkpoint instead
	// of the initial condition; stepping continues until the absolute step
	// count reaches `steps`. Counters restart at zero on resume.
	Resume io.Reader
	// Checkpoint, when non-nil, receives the bytes of the final-state
	// checkpoint (the same bytes CheckpointBytes counts).
	Checkpoint io.Writer
	// GuardEvery runs the solver's numerical sentinels (CheckHealth: finite
	// state, bounded mass drift / positive density) every this many steps
	// and on the final step. 0 selects DefaultGuardEvery; negative disables
	// the sentinels (the per-step dt/probe blow-up checks always run).
	GuardEvery int
	// CheckpointEvery, with CheckpointSink, writes an in-flight checkpoint
	// every this many completed steps (never on the final step — the final
	// checkpoint has its own path). 0 disables. The serving layer uses
	// these so a crash-restarted job resumes mid-run instead of from
	// scratch. Sink failures are ignored: a lost periodic checkpoint only
	// costs restart time, never the run.
	CheckpointEvery int
	// CheckpointSink opens the destination for the periodic checkpoint at
	// the given absolute step; Close commits it (atomically, if the caller
	// cares about torn checkpoints).
	CheckpointSink func(step int) (io.WriteCloser, error)
}

// DefaultGuardEvery is the numerical-sentinel cadence when RunOptions does
// not choose one: cheap enough to be always-on, frequent enough that a
// diverging or deadline-exceeded run is caught within a few steps.
const DefaultGuardEvery = 8

func (o RunOptions) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

// stepper is the step-loop surface shared by both mini-app runners.
type stepper interface {
	StepCount() int
	Step() error
	CheckHealth() error
	WriteCheckpoint(w io.Writer) (int64, error)
}

// stepUntil advances the runner to `steps` absolute steps under the
// options' cancellation, guard, checkpoint and progress contract. Both
// mini-app Run(n) methods are plain Step loops, so this is
// result-identical to them: guards abort, they never mutate.
func stepUntil(opts RunOptions, r stepper, steps int) error {
	ctx := opts.ctx()
	guardEvery := opts.GuardEvery
	if guardEvery == 0 {
		guardEvery = DefaultGuardEvery
	}
	for r.StepCount() < steps {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("run cancelled at step %d/%d: %w", r.StepCount(), steps, err)
		}
		if err := r.Step(); err != nil {
			return err
		}
		n := r.StepCount()
		if guardEvery > 0 && (n%guardEvery == 0 || n == steps) {
			if fault.Enabled() {
				if ferr := fault.Error("runner.nan"); ferr != nil {
					return fmt.Errorf("step %d: %w: %w", n, ferr, precision.ErrNumericalFailure)
				}
			}
			if err := r.CheckHealth(); err != nil {
				return err
			}
		}
		if opts.CheckpointEvery > 0 && opts.CheckpointSink != nil && n < steps && n%opts.CheckpointEvery == 0 {
			writePeriodicCheckpoint(opts, r, n)
		}
		if opts.Progress != nil {
			opts.Progress(n, steps)
		}
	}
	return nil
}

// writePeriodicCheckpoint writes one in-flight checkpoint, swallowing sink
// errors (a failed periodic checkpoint must not fail a healthy run).
func writePeriodicCheckpoint(opts RunOptions, r stepper, step int) {
	w, err := opts.CheckpointSink(step)
	if err != nil || w == nil {
		return
	}
	if _, err := r.WriteCheckpoint(w); err != nil {
		w.Close()
		return
	}
	w.Close()
}

// RunCLAMROpts is RunCLAMR with execution options.
func RunCLAMROpts(mode precision.Mode, cfg clamr.Config, steps, lineCutN int, opts RunOptions) (CLAMRResult, error) {
	if cfg.Bounds == (mesh.Bounds{}) {
		cfg.Bounds = mesh.UnitBounds
	}
	var r clamr.Runner
	var err error
	if opts.Resume != nil {
		r, err = clamr.Load(mode, cfg, opts.Resume)
	} else {
		ic := clamr.DamBreak(cfg.Bounds, 10, 2, 0.15*cfg.Bounds.Width(), 0.05*cfg.Bounds.Width())
		r, err = clamr.New(mode, cfg, ic)
	}
	if err != nil {
		return CLAMRResult{}, err
	}
	start := time.Now()
	if err := stepUntil(opts, r, steps); err != nil {
		return CLAMRResult{}, err
	}
	wall := time.Since(start)

	res := CLAMRResult{
		Mode:       mode,
		Kernel:     cfg.Kernel,
		Steps:      steps,
		Cells:      r.Mesh().NumCells(),
		WallTime:   wall,
		Counters:   r.Counters(),
		StateBytes: r.StateBytes(),
		MassError:  r.MassError(),
	}
	res.FiniteDiffTime = r.Timer().Total("finite_diff")
	res.Phases = r.Timer().Totals()

	var sink countingWriter
	var ckptW io.Writer = &sink
	if opts.Checkpoint != nil {
		ckptW = io.MultiWriter(&sink, opts.Checkpoint)
	}
	n, err := r.WriteCheckpoint(ckptW)
	if err != nil {
		return CLAMRResult{}, err
	}
	res.CheckpointBytes = n

	if lineCutN > 0 {
		cut, err := CLAMRLineCut(r, lineCutN)
		if err != nil {
			return CLAMRResult{}, err
		}
		cut.Label = mode.String()
		res.LineCut = cut
	}
	return res, nil
}

// CLAMRLineCut samples the height along the horizontal line through the
// domain center at n points.
func CLAMRLineCut(r clamr.Runner, n int) (analysis.Series, error) {
	m := r.Mesh()
	img, err := m.Rasterize(r.HeightF64(), n, n)
	if err != nil {
		return analysis.Series{}, err
	}
	b := m.Bounds()
	xs := make([]float64, n)
	ys := make([]float64, n)
	row := n / 2
	for i := 0; i < n; i++ {
		xs[i] = b.XMin + (float64(i)+0.5)/float64(n)*b.Width()
		ys[i] = img[row*n+i]
	}
	return analysis.Series{Label: "height", X: xs, Y: ys}, nil
}

// Workload converts the run into an arch.Workload: measured counters plus
// the precision-independent mesh bookkeeping (cells × steps).
func (r CLAMRResult) Workload() arch.Workload {
	return arch.Workload{
		Counters:   r.Counters,
		Vectorized: r.Kernel == clamr.KernelFace,
		SerialOps:  uint64(r.Cells) * uint64(r.Steps),
		StateBytes: r.StateBytes,
	}
}

// countingWriter discards checkpoint bytes while letting WriteCheckpoint
// report sizes.
type countingWriter struct{ n int64 }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

// SELFResult captures one SELF run.
type SELFResult struct {
	Mode       precision.Mode
	MathMode   self.MathMode
	Steps      int
	DOF        int
	WallTime   time.Duration
	Counters   metrics.Counters
	StateBytes uint64
	// CheckpointBytes is the serialized checkpoint size; it is only
	// measured when RunOptions.Checkpoint captures the final state
	// (the plain SELF study does not checkpoint).
	CheckpointBytes int64
	LineCut         analysis.Series
	// Phases snapshots the solver's per-phase timer buckets (rhs, rk,
	// filter) in first-use order.
	Phases []metrics.PhaseTotal
}

// RunSELF executes the thermal-bubble problem at one precision mode.
func RunSELF(mode precision.Mode, cfg self.Config, steps, lineCutN int) (SELFResult, error) {
	return RunSELFOpts(mode, cfg, steps, lineCutN, RunOptions{})
}

// RunSELFOpts is RunSELF with execution options.
func RunSELFOpts(mode precision.Mode, cfg self.Config, steps, lineCutN int, opts RunOptions) (SELFResult, error) {
	var r self.Runner
	var err error
	if opts.Resume != nil {
		r, err = self.Load(mode, cfg, opts.Resume)
	} else {
		r, err = self.New(mode, cfg)
	}
	if err != nil {
		return SELFResult{}, err
	}
	start := time.Now()
	if err := stepUntil(opts, r, steps); err != nil {
		return SELFResult{}, err
	}
	wall := time.Since(start)
	res := SELFResult{
		Mode:       mode,
		MathMode:   cfg.MathMode,
		Steps:      steps,
		DOF:        r.DegreesOfFreedom(),
		WallTime:   wall,
		Counters:   r.Counters(),
		StateBytes: r.StateBytes(),
		Phases:     r.Timer().Totals(),
	}
	if opts.Checkpoint != nil {
		n, err := r.WriteCheckpoint(opts.Checkpoint)
		if err != nil {
			return SELFResult{}, err
		}
		res.CheckpointBytes = n
	}
	if lineCutN > 0 {
		xs, ys, err := r.LineX(self.FieldDensityAnomaly, lineCutN)
		if err != nil {
			return SELFResult{}, err
		}
		s, err := analysis.NewSeries(mode.String(), xs, ys)
		if err != nil {
			return SELFResult{}, err
		}
		res.LineCut = s
	}
	return res, nil
}

// Workload converts the run into an arch.Workload. SELF's spectral kernels
// vectorize naturally (dense small matrix sweeps), so the workload is
// marked vectorized; the Table IV study overrides this.
func (r SELFResult) Workload() arch.Workload {
	return arch.Workload{
		Counters:   r.Counters,
		Vectorized: true,
		SerialOps:  uint64(r.DOF) / 16, // light bookkeeping per node
		StateBytes: r.StateBytes,
	}
}

// Fidelity summarises the paper's correctness assessment between a
// reduced-precision line cut and the full-precision reference.
type Fidelity struct {
	// OrdersBelow: log10(solution scale / max difference) — Figs 1 and 4.
	OrdersBelow float64
	// AsymmetryOrders: log10(solution scale / max asymmetry) — Figs 2/5.
	AsymmetryOrders float64
	// AsymmetryBias is the mean of the asymmetry series (Fig 5's "mostly
	// positive" single-precision signature shows as nonzero bias).
	AsymmetryBias float64
}

// AssessFidelity computes the figure-level diagnostics for a cut against
// the reference.
func AssessFidelity(cut, reference analysis.Series) Fidelity {
	diff := analysis.Diff(reference, cut)
	asym := analysis.Asymmetry(cut)
	return Fidelity{
		OrdersBelow:     analysis.OrdersBelow(diff, reference),
		AsymmetryOrders: analysis.OrdersBelow(asym, cut),
		AsymmetryBias:   asym.Bias(),
	}
}

// Acceptable applies the paper's acceptance bar: differences at least
// `orders` orders of magnitude below the solution.
func (f Fidelity) Acceptable(orders float64) bool {
	return f.OrdersBelow >= orders
}

// RecommendMode is the paper's §VIII "derivation of heuristics for
// precision choice", distilled to the decision rules its results support:
//
//   - If the required agreement with double precision exceeds ~7 digits,
//     only Full delivers (single carries ~7 significant digits).
//   - Otherwise, if the calculation is memory-bandwidth-bound (the paper's
//     conclusion for both mini-apps), reduced storage pays: Mixed when
//     sensitive local arithmetic needs double guarding, else Min.
//   - On hardware with a punitive DP:SP ratio (≥ 8:1, e.g. TITAN X-class),
//     compute-bound work should also drop to Min.
//   - Half is recommended only for error-tolerant, bandwidth-dominated
//     kernels needing fewer than 3 digits.
func RecommendMode(requiredDigits float64, memoryBound bool, dpToSPRatio float64, sensitiveLocals bool) precision.Mode {
	switch {
	case requiredDigits > 7:
		return precision.Full
	case requiredDigits < 3 && memoryBound && !sensitiveLocals:
		return precision.Half
	case sensitiveLocals:
		return precision.Mixed
	case memoryBound || dpToSPRatio >= 8:
		return precision.Min
	default:
		return precision.Mixed
	}
}

// Table is a formatted results table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row (padded or truncated to the header width).
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// WriteTo writes the rendered table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	n, err := io.WriteString(w, t.String())
	return int64(n), err
}

// FormatDuration renders a duration in seconds with three significant
// decimals, matching the paper's table style.
func FormatDuration(d time.Duration) string {
	return fmt.Sprintf("%.3g", d.Seconds())
}

// FormatJoules renders an energy value.
func FormatJoules(j float64) string {
	return fmt.Sprintf("%.0f", j)
}

// FormatGB renders a byte count in GB.
func FormatGB(b uint64) string {
	return fmt.Sprintf("%.2f", float64(b)/1e9)
}

// FormatSpeedup renders a ratio as the paper's percentage speedup
// ("19%", "261%").
func FormatSpeedup(ratio float64) string {
	if ratio <= 0 || math.IsInf(ratio, 0) || math.IsNaN(ratio) {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", (ratio-1)*100)
}
