package precision

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModeStringParseRoundTrip(t *testing.T) {
	for _, m := range AllModes {
		got, err := Parse(m.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", m.String(), err)
		}
		if got != m {
			t.Errorf("Parse(%q) = %v, want %v", m.String(), got, m)
		}
	}
	aliases := map[string]Mode{
		"single": Min, "double": Full, "fp16": Half, "FLOAT64": Full,
		" mixed ": Mixed, "Minimum": Min,
	}
	for s, want := range aliases {
		got, err := Parse(s)
		if err != nil || got != want {
			t.Errorf("Parse(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := Parse("quad"); err == nil {
		t.Error("Parse accepted unknown mode")
	}
}

func TestModeSizes(t *testing.T) {
	cases := []struct {
		m                Mode
		storage, compute int
		sMant, cMant     int
	}{
		{Half, 2, 4, 11, 24},
		{Min, 4, 4, 24, 24},
		{Mixed, 4, 8, 24, 53},
		{Full, 8, 8, 53, 53},
	}
	for _, c := range cases {
		if got := c.m.StorageBytes(); got != c.storage {
			t.Errorf("%v StorageBytes = %d, want %d", c.m, got, c.storage)
		}
		if got := c.m.ComputeBytes(); got != c.compute {
			t.Errorf("%v ComputeBytes = %d, want %d", c.m, got, c.compute)
		}
		if got := c.m.StorageMantissaBits(); got != c.sMant {
			t.Errorf("%v StorageMantissaBits = %d, want %d", c.m, got, c.sMant)
		}
		if got := c.m.ComputeMantissaBits(); got != c.cMant {
			t.Errorf("%v ComputeMantissaBits = %d, want %d", c.m, got, c.cMant)
		}
		if !c.m.Valid() {
			t.Errorf("%v reported invalid", c.m)
		}
	}
	if Mode(99).Valid() {
		t.Error("Mode(99) reported valid")
	}
}

func TestUlp64(t *testing.T) {
	if got := Ulp64(1); got != math.Ldexp(1, -52) {
		t.Errorf("Ulp64(1) = %g, want 2^-52", got)
	}
	if got := Ulp64(0); got != math.Ldexp(1, -1074) {
		t.Errorf("Ulp64(0) = %g, want smallest subnormal", got)
	}
	if !math.IsNaN(Ulp64(math.Inf(1))) || !math.IsNaN(Ulp64(math.NaN())) {
		t.Error("Ulp64 of non-finite values is not NaN")
	}
	// ULP is symmetric in sign and monotone across binades.
	if Ulp64(-8) != Ulp64(8) {
		t.Error("Ulp64 not sign-symmetric")
	}
	if Ulp64(8) != 8*Ulp64(1) {
		t.Error("Ulp64 did not scale with the binade")
	}
}

func TestUlp32(t *testing.T) {
	if got := Ulp32(1); got != math.Ldexp(1, -23) {
		t.Errorf("Ulp32(1) = %g, want 2^-23", got)
	}
	if Ulp32(-4) != Ulp32(4) {
		t.Error("Ulp32 not sign-symmetric")
	}
}

func TestUlpError(t *testing.T) {
	if got := UlpError(1, 1); got != 0 {
		t.Errorf("UlpError(equal) = %g", got)
	}
	next := math.Nextafter(1, 2)
	if got := UlpError(next, 1); got != 1 {
		t.Errorf("UlpError(1+ulp, 1) = %g, want 1", got)
	}
	if !math.IsInf(UlpError(1, 0), 1) {
		t.Error("UlpError with zero reference is not +Inf")
	}
}

func TestRelErrorAndDigits(t *testing.T) {
	if got := RelError(1.01, 1); math.Abs(got-0.01) > 1e-15 {
		t.Errorf("RelError(1.01,1) = %g", got)
	}
	if got := RelError(0.5, 0); got != 0.5 {
		t.Errorf("RelError(0.5,0) = %g", got)
	}
	if got := AgreementDigits(1, 1); got != 17 {
		t.Errorf("AgreementDigits(equal) = %g", got)
	}
	d := AgreementDigits(1.000001, 1)
	if d < 5.9 || d > 6.1 {
		t.Errorf("AgreementDigits(1.000001, 1) = %g, want ≈6", d)
	}
	if got := AgreementDigits(2, 1); got != 0 {
		t.Errorf("AgreementDigits(2,1) = %g, want clamp to 0", got)
	}
}

func TestRoundMantissa(t *testing.T) {
	// Rounding to 24 bits must equal the float32 conversion for values in
	// float32 normal range.
	if err := quick.Check(func(x float64) bool {
		x = math.Mod(x, 1e30)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		if x != 0 && math.Abs(x) < 1e-30 {
			return true // avoid float32 subnormal range where semantics differ
		}
		return RoundMantissa(x, 24) == float64(float32(x))
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
	// Identity at full precision, idempotent in general.
	if RoundMantissa(math.Pi, 53) != math.Pi {
		t.Error("RoundMantissa(53) changed the value")
	}
	for _, bits := range []int{1, 5, 11, 24, 40} {
		v := RoundMantissa(math.Pi, bits)
		if RoundMantissa(v, bits) != v {
			t.Errorf("RoundMantissa not idempotent at %d bits", bits)
		}
	}
	if RoundMantissa(0, 10) != 0 {
		t.Error("RoundMantissa(0) != 0")
	}
	if got := RoundMantissa(1.75, 2); got != 2 { // 1.75 → 2 significand bits: {1, 1.5, 2,...}; tie at 1.75? 1.75 = 1.11b needs 3 bits; candidates 1.5 (1.1b) and 2.0; midpoint 1.75 ties to even → 2.0
		t.Errorf("RoundMantissa(1.75, 2) = %g, want 2", got)
	}
}

func TestDemote(t *testing.T) {
	if Full.Demote(math.Pi) != math.Pi {
		t.Error("Full.Demote changed the value")
	}
	if Min.Demote(math.Pi) != float64(float32(math.Pi)) {
		t.Error("Min.Demote is not float32 rounding")
	}
	if Mixed.Demote(math.Pi) != float64(float32(math.Pi)) {
		t.Error("Mixed.Demote is not float32 rounding")
	}
	// Half demotion is exact binary16: 65504 is the max finite value.
	if Half.Demote(65504) != 65504 {
		t.Error("Half.Demote(65504) moved")
	}
	if !math.IsInf(Half.Demote(70000), 1) {
		t.Error("Half.Demote(70000) did not overflow to +Inf")
	}
	if Half.Demote(1e-9) != 0 {
		t.Error("Half.Demote(1e-9) did not underflow to 0")
	}
	// Demotion error stays within half an ulp of the format.
	if err := quick.Check(func(x float64) bool {
		x = math.Mod(x, 1000)
		if math.IsNaN(x) {
			return true
		}
		got := Min.Demote(x)
		return math.Abs(got-x) <= Ulp32(float32(x))/2+1e-300
	}, &quick.Config{MaxCount: 10000}); err != nil {
		t.Error(err)
	}
}
