// Package precision defines the precision vocabulary of the study: the
// floating-point modes the paper compares (minimum, mixed, full, plus a
// half-precision extension), the generic Real constraint the solvers are
// parameterised by, and error-measurement utilities (ulps, relative error,
// agreement digits) used to assess correctness under reduced precision.
//
// The paper's three CLAMR compile options map directly onto (storage,
// compute) type pairs:
//
//	Min   — float32 storage, float32 compute ("single precision throughout")
//	Mixed — float32 storage, float64 compute ("large physical state arrays
//	        in single, local calculations promoted to double")
//	Full  — float64 storage, float64 compute
//
// Half is this repository's forward-looking extension (paper §VIII):
// binary16 storage with float32 compute, using the software half in
// internal/fp16.
package precision

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/fp16"
)

// ErrNumericalFailure marks a run aborted by a numerical guard: a
// non-finite field value, a non-positive density, a blown-up timestep, or
// mass-conservation drift beyond the storage precision's tolerance. The
// solvers wrap it (errors.Is-matchable) so the serving layer can
// distinguish "this precision was not enough for this problem" — and
// escalate along Mode.Next — from plain execution failures.
var ErrNumericalFailure = errors.New("numerical failure")

// Real is the constraint satisfied by the native floating-point types a
// solver can store or compute in.
type Real interface {
	~float32 | ~float64
}

// Mode identifies a (storage, compute) precision pairing.
type Mode int

const (
	// Half stores state in software binary16 and computes in float32.
	Half Mode = iota
	// Min stores and computes in float32.
	Min
	// Mixed stores state in float32 and computes locally in float64.
	Mixed
	// Full stores and computes in float64.
	Full
)

// Modes lists the paper's three modes in presentation order.
var Modes = []Mode{Min, Mixed, Full}

// AllModes additionally includes the Half extension.
var AllModes = []Mode{Half, Min, Mixed, Full}

// String returns the mode name as used in the paper's tables.
func (m Mode) String() string {
	switch m {
	case Half:
		return "Half"
	case Min:
		return "Min"
	case Mixed:
		return "Mixed"
	case Full:
		return "Full"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Parse converts a case-insensitive mode name ("min", "mixed", "full",
// "half"; "single" and "double" are accepted as aliases for Min and Full)
// into a Mode.
func Parse(s string) (Mode, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "half", "fp16", "binary16":
		return Half, nil
	case "min", "minimum", "single", "fp32", "float32":
		return Min, nil
	case "mixed":
		return Mixed, nil
	case "full", "double", "fp64", "float64":
		return Full, nil
	default:
		return Full, fmt.Errorf("precision: unknown mode %q", s)
	}
}

// Next returns the next rung of the precision-escalation ladder
// (Half → Min → Mixed → Full); ok is false at the top. This is the order
// the serving layer climbs when a reduced-precision run trips
// ErrNumericalFailure — the paper's "thoughtful precision" applied as a
// recovery policy rather than a static choice.
func (m Mode) Next() (Mode, bool) {
	switch m {
	case Half:
		return Min, true
	case Min:
		return Mixed, true
	case Mixed:
		return Full, true
	default:
		return Full, false
	}
}

// StorageBytes returns the size in bytes of one stored state scalar.
func (m Mode) StorageBytes() int {
	switch m {
	case Half:
		return 2
	case Min, Mixed:
		return 4
	default:
		return 8
	}
}

// ComputeBytes returns the size in bytes of one compute scalar.
func (m Mode) ComputeBytes() int {
	switch m {
	case Half, Min:
		return 4
	default:
		return 8
	}
}

// StorageMantissaBits returns the significand precision (including the
// implicit bit) of the storage format.
func (m Mode) StorageMantissaBits() int {
	switch m {
	case Half:
		return 11
	case Min, Mixed:
		return 24
	default:
		return 53
	}
}

// ComputeMantissaBits returns the significand precision (including the
// implicit bit) of the compute format.
func (m Mode) ComputeMantissaBits() int {
	if m == Half || m == Min {
		return 24
	}
	return 53
}

// Valid reports whether m is one of the defined modes.
func (m Mode) Valid() bool { return m >= Half && m <= Full }

// Ulp64 returns the unit in the last place of x as a float64: the gap
// between x and the next float64 of larger magnitude.
func Ulp64(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return math.NaN()
	}
	a := math.Abs(x)
	next := math.Nextafter(a, math.Inf(1))
	if math.IsInf(next, 1) {
		return a - math.Nextafter(a, 0)
	}
	return next - a
}

// Ulp32 returns the unit in the last place of x as a float32, widened.
func Ulp32(x float32) float64 {
	if x != x || math.IsInf(float64(x), 0) {
		return math.NaN()
	}
	a := float32(math.Abs(float64(x)))
	next := math.Nextafter32(a, float32(math.Inf(1)))
	if math.IsInf(float64(next), 1) {
		return float64(a) - float64(math.Nextafter32(a, 0))
	}
	return float64(next) - float64(a)
}

// UlpError returns |got-want| measured in ulps of want at 64-bit precision.
// It returns 0 when both are equal (including both zero) and +Inf when want
// is zero but got is not.
func UlpError(got, want float64) float64 {
	if got == want {
		return 0
	}
	if want == 0 {
		return math.Inf(1)
	}
	return math.Abs(got-want) / Ulp64(want)
}

// RelError returns |got-want| / |want|, or |got| when want is zero.
func RelError(got, want float64) float64 {
	d := math.Abs(got - want)
	if want == 0 {
		return d
	}
	return d / math.Abs(want)
}

// AgreementDigits returns the number of decimal digits on which got and
// want agree: -log10 of the relative error, clamped to [0, 17]. Two equal
// values agree to 17 digits (full float64).
func AgreementDigits(got, want float64) float64 {
	r := RelError(got, want)
	if r == 0 {
		return 17
	}
	d := -math.Log10(r)
	return math.Min(17, math.Max(0, d))
}

// RoundMantissa rounds x to a float64 carrying only bits significand bits
// (including the implicit bit), rounding to nearest even. It is used to
// emulate arbitrary intermediate precisions in precision-sensitivity
// experiments. bits must be in [1, 53]; values outside are clamped.
func RoundMantissa(x float64, bitsN int) float64 {
	if bitsN >= 53 || math.IsNaN(x) || math.IsInf(x, 0) || x == 0 {
		return x
	}
	if bitsN < 1 {
		bitsN = 1
	}
	// Veltkamp-style splitting: adding and subtracting 2^(52-bits+1)·|x|'s
	// binade forces the low bits to round away.
	frac, exp := math.Frexp(x)
	scale := math.Ldexp(1, bitsN) // frac in [0.5,1): frac*2^bits has `bits` integer bits
	r := math.RoundToEven(frac*scale) / scale
	return math.Ldexp(r, exp)
}

// Demote rounds x through the storage format of mode m and back to
// float64, modelling a store-then-load through reduced-precision memory.
// Half demotion is bit-exact binary16 via internal/fp16.
func (m Mode) Demote(x float64) float64 {
	switch m {
	case Half:
		return fp16.FromFloat64(x).Float64()
	case Min, Mixed:
		return float64(float32(x))
	default:
		return x
	}
}
