// Package fp16 implements IEEE 754-2008 binary16 ("half precision") floating
// point in software.
//
// Go has no native 16-bit float type, but the paper's methodology — choosing
// the precision a calculation actually needs, including formats below single
// precision — requires one. This package provides a bit-exact binary16 with
// round-to-nearest-even conversions from float32/float64 and correctly
// rounded arithmetic.
//
// Arithmetic is performed by converting operands to float64, computing, and
// rounding the float64 result to binary16. Because float64 carries more than
// 2p+2 = 24 significant bits for binary16 (p = 11), this double rounding is
// exact for +, -, *, /, sqrt and fused multiply-add: the float64 intermediate
// is either the exact result or rounds identically to direct binary16
// rounding.
package fp16

import (
	"math"
	"math/bits"
	"strconv"
)

// Float16 is an IEEE 754 binary16 value stored in its 16-bit interchange
// encoding: 1 sign bit, 5 exponent bits (bias 15), 10 mantissa bits.
type Float16 uint16

// Special values and limits of the binary16 format.
const (
	// MaxValue is the largest finite Float16, 65504.
	MaxValue Float16 = 0x7bff
	// SmallestNormal is the smallest positive normal Float16, 2^-14.
	SmallestNormal Float16 = 0x0400
	// SmallestNonzero is the smallest positive subnormal Float16, 2^-24.
	SmallestNonzero Float16 = 0x0001
	// PositiveInfinity and NegativeInfinity are the two infinities.
	PositiveInfinity Float16 = 0x7c00
	NegativeInfinity Float16 = 0xfc00
	// QuietNaN is the canonical quiet NaN.
	QuietNaN Float16 = 0x7e00
	// Epsilon is the gap between 1.0 and the next larger Float16, 2^-10.
	Epsilon Float16 = 0x1400
	// One and Zero are provided for convenience.
	One  Float16 = 0x3c00
	Zero Float16 = 0x0000
)

// MantissaBits is the number of explicitly stored significand bits.
const MantissaBits = 10

// ExponentBias is the binary16 exponent bias.
const ExponentBias = 15

// FromBits returns the Float16 with the given interchange encoding.
func FromBits(b uint16) Float16 { return Float16(b) }

// Bits returns the 16-bit interchange encoding of f.
func (f Float16) Bits() uint16 { return uint16(f) }

// rne shifts v right by n bits rounding to nearest, ties to even.
// n must be in [1, 63].
func rne(v uint64, n uint) uint64 {
	q := v >> n
	rem := v & (1<<n - 1)
	half := uint64(1) << (n - 1)
	if rem > half || (rem == half && q&1 == 1) {
		q++
	}
	return q
}

// FromFloat32 converts x to Float16 rounding to nearest, ties to even.
// Values too large in magnitude become infinities; values too small become
// (signed) zero. NaN payloads are truncated but NaNs stay NaN and quiet.
func FromFloat32(x float32) Float16 {
	b := math.Float32bits(x)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	man := uint64(b & 0x7fffff)

	if exp == 0xff { // infinity or NaN
		if man == 0 {
			return Float16(sign | 0x7c00)
		}
		payload := uint16(man >> 13)
		return Float16(sign | 0x7c00 | 0x0200 | payload) // force quiet, nonzero
	}
	if exp == 0 && man == 0 {
		return Float16(sign)
	}

	// Normalize: value = m * 2^(exp-127-23) with implicit bit for normals.
	if exp == 0 {
		// float32 subnormals are below 2^-126, far under the binary16
		// subnormal threshold 2^-24: they all round to zero.
		return Float16(sign)
	}
	man |= 1 << 23 // 24-bit significand

	// Target biased exponent in binary16.
	e16 := exp - 127 + ExponentBias
	switch {
	case e16 >= 31:
		return Float16(sign | 0x7c00) // overflow to infinity
	case e16 >= 1:
		// Normal: drop 13 bits. Compose so a rounding carry propagates
		// into the exponent (and to infinity) naturally.
		r := rne(man, 13) // 11-bit significand with implicit bit at bit 10
		out := uint32(e16-1)<<10 + uint32(r)
		if out >= 0x7c00 {
			return Float16(sign | 0x7c00)
		}
		return Float16(sign | uint16(out))
	default:
		// Subnormal or underflow: shift out 13 + (1 - e16) bits.
		shift := uint(14 - e16)
		if shift > 24 {
			return Float16(sign) // underflow to zero
		}
		r := rne(man, shift)
		// A carry into bit 10 yields the smallest normal, which is the
		// correct encoding (exponent field becomes 1).
		return Float16(sign | uint16(r))
	}
}

// FromFloat64 converts x to Float16 rounding to nearest, ties to even.
// The conversion is direct (not via float32) so it is correctly rounded.
func FromFloat64(x float64) Float16 {
	b := math.Float64bits(x)
	sign := uint16(b>>48) & 0x8000
	exp := int64(b>>52) & 0x7ff
	man := b & 0xfffffffffffff

	if exp == 0x7ff {
		if man == 0 {
			return Float16(sign | 0x7c00)
		}
		payload := uint16(man >> 42)
		return Float16(sign | 0x7c00 | 0x0200 | payload)
	}
	if exp == 0 {
		// float64 subnormals are below 2^-1022: zero in binary16.
		return Float16(sign)
	}
	man |= 1 << 52 // 53-bit significand

	e16 := exp - 1023 + ExponentBias
	switch {
	case e16 >= 31:
		return Float16(sign | 0x7c00)
	case e16 >= 1:
		r := rne(man, 42)
		out := uint32(e16-1)<<10 + uint32(r)
		if out >= 0x7c00 {
			return Float16(sign | 0x7c00)
		}
		return Float16(sign | uint16(out))
	default:
		shift := uint(43 - e16)
		if shift > 53 {
			return Float16(sign)
		}
		r := rne(man, shift)
		return Float16(sign | uint16(r))
	}
}

// Float32 returns f widened to float32. The conversion is exact.
func (f Float16) Float32() float32 {
	sign := uint32(f&0x8000) << 16
	exp := uint32(f>>10) & 0x1f
	man := uint32(f & 0x3ff)

	switch exp {
	case 0x1f: // infinity or NaN
		return math.Float32frombits(sign | 0x7f800000 | man<<13)
	case 0:
		if man == 0 {
			return math.Float32frombits(sign) // signed zero
		}
		// Subnormal: value = man × 2^-24. Normalize by shifting the
		// leading one of the 10-bit field into the implicit position.
		z := uint32(bits.LeadingZeros32(man)) - 22 // leading zeros within the 10-bit field
		man = (man << (z + 1)) & 0x3ff
		e := uint32(127-15) - z
		return math.Float32frombits(sign | e<<23 | man<<13)
	default:
		return math.Float32frombits(sign | (exp+127-15)<<23 | man<<13)
	}
}

// Float64 returns f widened to float64. The conversion is exact.
func (f Float16) Float64() float64 { return float64(f.Float32()) }

// IsNaN reports whether f is a NaN.
func (f Float16) IsNaN() bool { return f&0x7c00 == 0x7c00 && f&0x3ff != 0 }

// IsInf reports whether f is an infinity with the given sign: +1 for
// positive infinity, -1 for negative, 0 for either.
func (f Float16) IsInf(sign int) bool {
	switch {
	case sign > 0:
		return f == PositiveInfinity
	case sign < 0:
		return f == NegativeInfinity
	default:
		return f&0x7fff == 0x7c00
	}
}

// IsZero reports whether f is +0 or -0.
func (f Float16) IsZero() bool { return f&0x7fff == 0 }

// IsSubnormal reports whether f is a nonzero subnormal value.
func (f Float16) IsSubnormal() bool { return f&0x7c00 == 0 && f&0x3ff != 0 }

// IsFinite reports whether f is neither an infinity nor a NaN.
func (f Float16) IsFinite() bool { return f&0x7c00 != 0x7c00 }

// Signbit reports whether f's sign bit is set (true for negative values
// and for -0).
func (f Float16) Signbit() bool { return f&0x8000 != 0 }

// Neg returns f with its sign flipped. Neg of a NaN is a NaN.
func (f Float16) Neg() Float16 { return f ^ 0x8000 }

// Abs returns f with its sign cleared.
func (f Float16) Abs() Float16 { return f &^ 0x8000 }

// Equal reports IEEE equality: NaN compares unequal to everything
// (including itself) and -0 equals +0.
func (f Float16) Equal(g Float16) bool {
	if f.IsNaN() || g.IsNaN() {
		return false
	}
	if f.IsZero() && g.IsZero() {
		return true
	}
	return f == g
}

// Less reports IEEE ordered less-than; false if either operand is NaN.
func (f Float16) Less(g Float16) bool {
	if f.IsNaN() || g.IsNaN() {
		return false
	}
	return f.Float32() < g.Float32()
}

// Add returns the correctly rounded sum f + g.
func Add(f, g Float16) Float16 { return FromFloat64(f.Float64() + g.Float64()) }

// Sub returns the correctly rounded difference f - g.
func Sub(f, g Float16) Float16 { return FromFloat64(f.Float64() - g.Float64()) }

// Mul returns the correctly rounded product f * g.
func Mul(f, g Float16) Float16 { return FromFloat64(f.Float64() * g.Float64()) }

// Div returns the correctly rounded quotient f / g.
func Div(f, g Float16) Float16 { return FromFloat64(f.Float64() / g.Float64()) }

// Sqrt returns the correctly rounded square root of f.
func Sqrt(f Float16) Float16 { return FromFloat64(math.Sqrt(f.Float64())) }

// FMA returns the correctly rounded fused f*g + h with a single rounding.
// The float64 product of two binary16 values is exact and the subsequent
// sum fits in float64 exactly, so one rounding at the end suffices.
func FMA(f, g, h Float16) Float16 {
	return FromFloat64(f.Float64()*g.Float64() + h.Float64())
}

// NextUp returns the least Float16 greater than f.
// NextUp(+Inf) = +Inf, NextUp(NaN) = NaN.
func (f Float16) NextUp() Float16 {
	switch {
	case f.IsNaN() || f == PositiveInfinity:
		return f
	case f == 0x8000 || f == 0: // ±0 → smallest positive subnormal
		return SmallestNonzero
	case f.Signbit():
		return f - 1
	default:
		return f + 1
	}
}

// NextDown returns the greatest Float16 less than f.
// NextDown(-Inf) = -Inf, NextDown(NaN) = NaN.
func (f Float16) NextDown() Float16 { return f.Neg().NextUp().Neg() }

// ULP returns the distance between f and the next representable Float16 of
// larger magnitude, as a float64. ULP of infinities and NaN is NaN.
func (f Float16) ULP() float64 {
	if !f.IsFinite() {
		return math.NaN()
	}
	a := f.Abs()
	next := a + 1 // magnitude successor in encoding order
	if Float16(next).IsFinite() {
		return Float16(next).Float64() - a.Float64()
	}
	// f is MaxValue: ULP is the gap below it.
	return a.Float64() - (a - 1).Float64()
}

// String formats f using the shortest decimal representation that converts
// back to the same float32 widening.
func (f Float16) String() string {
	return strconv.FormatFloat(f.Float64(), 'g', -1, 32)
}

// Parse converts a decimal string to Float16, rounding to nearest-even.
func Parse(s string) (Float16, error) {
	x, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return QuietNaN, err
	}
	return FromFloat64(x), nil
}

// FromSlice64 converts xs to a freshly allocated []Float16.
func FromSlice64(xs []float64) []Float16 {
	out := make([]Float16, len(xs))
	for i, x := range xs {
		out[i] = FromFloat64(x)
	}
	return out
}

// FromSlice32 converts xs to a freshly allocated []Float16.
func FromSlice32(xs []float32) []Float16 {
	out := make([]Float16, len(xs))
	for i, x := range xs {
		out[i] = FromFloat32(x)
	}
	return out
}

// ToSlice32 widens hs into dst, which must be at least len(hs) long,
// and returns dst[:len(hs)]. If dst is nil a new slice is allocated.
func ToSlice32(dst []float32, hs []Float16) []float32 {
	if dst == nil {
		dst = make([]float32, len(hs))
	}
	dst = dst[:len(hs)]
	for i, h := range hs {
		dst[i] = h.Float32()
	}
	return dst
}

// ToSlice64 widens hs into dst, which must be at least len(hs) long,
// and returns dst[:len(hs)]. If dst is nil a new slice is allocated.
func ToSlice64(dst []float64, hs []Float16) []float64 {
	if dst == nil {
		dst = make([]float64, len(hs))
	}
	dst = dst[:len(hs)]
	for i, h := range hs {
		dst[i] = h.Float64()
	}
	return dst
}
