package fp16

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// refFromFloat64 is an independent reference conversion float64 → binary16
// using big-step arithmetic instead of bit manipulation: it scales the value
// to its binary16 ulp and uses math.RoundToEven.
func refFromFloat64(x float64) Float16 {
	if math.IsNaN(x) {
		return QuietNaN
	}
	sign := Float16(0)
	if math.Signbit(x) {
		sign = 0x8000
		x = -x
	}
	if math.IsInf(x, 0) {
		return sign | 0x7c00
	}
	if x == 0 {
		return sign
	}
	// Max finite binary16 is 65504; the rounding boundary to infinity is
	// 65520 (exclusive for RNE: 65520 ties to even = infinity side, since
	// 65504 has odd last bit? 65504 = 0x7bff has mantissa 0x3ff (odd), so
	// the tie at 65520 rounds *up* to infinity).
	if x >= 65520 {
		return sign | 0x7c00
	}
	exp := math.Floor(math.Log2(x))
	if exp < -14 {
		exp = -14 // subnormal range: fixed ulp of 2^-24
	}
	ulp := math.Ldexp(1, int(exp)-10)
	q := math.RoundToEven(x / ulp)
	v := q * ulp
	// Rounding may have pushed the value to the next binade where the ulp
	// doubles; recompute once (q*ulp is exactly representable either way).
	if e2 := math.Floor(math.Log2(v)); v != 0 && e2 > exp && e2 <= 15 {
		ulp = math.Ldexp(1, int(e2)-10)
		v = math.RoundToEven(x/ulp) * ulp
	}
	if v >= 65520 {
		return sign | 0x7c00
	}
	return sign | FromFloat64(v) // v is exactly representable
}

func TestExhaustiveRoundTrip32(t *testing.T) {
	// Every binary16 encoding must survive widening to float32 and back.
	for b := 0; b <= 0xffff; b++ {
		f := FromBits(uint16(b))
		got := FromFloat32(f.Float32())
		if f.IsNaN() {
			if !got.IsNaN() {
				t.Fatalf("bits %#04x: NaN lost through float32 round trip (got %#04x)", b, got.Bits())
			}
			continue
		}
		if got != f {
			t.Fatalf("bits %#04x: float32 round trip gave %#04x", b, got.Bits())
		}
	}
}

func TestExhaustiveRoundTrip64(t *testing.T) {
	for b := 0; b <= 0xffff; b++ {
		f := FromBits(uint16(b))
		got := FromFloat64(f.Float64())
		if f.IsNaN() {
			if !got.IsNaN() {
				t.Fatalf("bits %#04x: NaN lost through float64 round trip", b)
			}
			continue
		}
		if got != f {
			t.Fatalf("bits %#04x: float64 round trip gave %#04x", b, got.Bits())
		}
	}
}

func TestExhaustiveWideningAgree(t *testing.T) {
	// Widening to float32 then to float64 must equal direct widening.
	for b := 0; b <= 0xffff; b++ {
		f := FromBits(uint16(b))
		if f.IsNaN() {
			continue
		}
		if float64(f.Float32()) != f.Float64() {
			t.Fatalf("bits %#04x: float32/float64 widening disagree", b)
		}
	}
}

func TestConversionSpecials(t *testing.T) {
	cases := []struct {
		in   float64
		want Float16
	}{
		{0, 0x0000},
		{math.Copysign(0, -1), 0x8000},
		{1, 0x3c00},
		{-1, 0xbc00},
		{2, 0x4000},
		{0.5, 0x3800},
		{65504, 0x7bff},                // max finite
		{65519.999, 0x7bff},            // just below the rounding boundary
		{65520, 0x7c00},                // tie rounds to infinity (65504 mantissa is odd)
		{65536, 0x7c00},                // overflow
		{-65536, 0xfc00},               //
		{math.Inf(1), 0x7c00},          //
		{math.Inf(-1), 0xfc00},         //
		{math.Ldexp(1, -14), 0x0400},   // smallest normal
		{math.Ldexp(1, -24), 0x0001},   // smallest subnormal
		{math.Ldexp(1, -25), 0x0000},   // tie at half the smallest subnormal → even (0)
		{math.Ldexp(1.5, -25), 0x0001}, // above the tie → rounds up
		{math.Ldexp(1, -26), 0x0000},   // underflow
		{1 + 1.0/1024, 0x3c01},         // 1 + epsilon
		{1 + 1.0/2048, 0x3c00},         // tie at 1 + eps/2 → even
		{1 + 3.0/2048, 0x3c02},         // tie at 1 + 3eps/2 → even (up)
	}
	for _, c := range cases {
		if got := FromFloat64(c.in); got != c.want {
			t.Errorf("FromFloat64(%v) = %#04x, want %#04x", c.in, got.Bits(), c.want.Bits())
		}
		if got := FromFloat32(float32(c.in)); got != c.want {
			// Only check when the float32 representation is exact enough
			// not to move across a binary16 rounding boundary.
			if float64(float32(c.in)) == c.in {
				t.Errorf("FromFloat32(%v) = %#04x, want %#04x", c.in, got.Bits(), c.want.Bits())
			}
		}
	}
}

func TestFromFloat64MatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200000; i++ {
		var x float64
		switch i % 4 {
		case 0: // uniform over the normal range
			x = (rng.Float64()*2 - 1) * 70000
		case 1: // near the subnormal boundary
			x = (rng.Float64()*2 - 1) * math.Ldexp(1, -13)
		case 2: // deep subnormal / underflow region
			x = (rng.Float64()*2 - 1) * math.Ldexp(1, -23)
		case 3: // random bit patterns of modest exponent
			x = math.Ldexp(rng.Float64()*2-1, rng.Intn(40)-25)
		}
		got, want := FromFloat64(x), refFromFloat64(x)
		if got != want {
			t.Fatalf("FromFloat64(%g) = %#04x, want %#04x", x, got.Bits(), want.Bits())
		}
	}
}

func TestNaNHandling(t *testing.T) {
	n := FromFloat64(math.NaN())
	if !n.IsNaN() {
		t.Fatal("FromFloat64(NaN) is not NaN")
	}
	if !math.IsNaN(n.Float64()) {
		t.Fatal("NaN did not widen to NaN")
	}
	if n.Equal(n) {
		t.Fatal("NaN compared equal to itself")
	}
	if n.Less(One) || One.Less(n) {
		t.Fatal("NaN participated in ordering")
	}
	if Add(n, One) != Add(n, One) && !Add(n, One).IsNaN() {
		t.Fatal("NaN + 1 is not NaN")
	}
	if !QuietNaN.IsNaN() || QuietNaN.IsFinite() {
		t.Fatal("QuietNaN misclassified")
	}
}

func TestClassification(t *testing.T) {
	if !PositiveInfinity.IsInf(1) || !PositiveInfinity.IsInf(0) || PositiveInfinity.IsInf(-1) {
		t.Error("PositiveInfinity misclassified")
	}
	if !NegativeInfinity.IsInf(-1) || !NegativeInfinity.IsInf(0) || NegativeInfinity.IsInf(1) {
		t.Error("NegativeInfinity misclassified")
	}
	if !Zero.IsZero() || !FromBits(0x8000).IsZero() || One.IsZero() {
		t.Error("zero misclassified")
	}
	if !SmallestNonzero.IsSubnormal() || SmallestNormal.IsSubnormal() || Zero.IsSubnormal() {
		t.Error("subnormal misclassified")
	}
	if !One.IsFinite() || PositiveInfinity.IsFinite() || QuietNaN.IsFinite() {
		t.Error("finiteness misclassified")
	}
	if !FromFloat64(-2).Signbit() || FromFloat64(2).Signbit() || !FromBits(0x8000).Signbit() {
		t.Error("sign bit misclassified")
	}
}

func TestNegAbs(t *testing.T) {
	for b := 0; b <= 0xffff; b++ {
		f := FromBits(uint16(b))
		if f.Neg().Neg() != f {
			t.Fatalf("bits %#04x: double negation changed value", b)
		}
		if f.Abs().Signbit() {
			t.Fatalf("bits %#04x: Abs has sign bit set", b)
		}
		if !f.IsNaN() && f.Abs().Float64() != math.Abs(f.Float64()) {
			t.Fatalf("bits %#04x: Abs disagrees with math.Abs", b)
		}
	}
}

func TestArithmeticCorrectlyRounded(t *testing.T) {
	// Against the double-rounding-safe reference: op in float64, convert.
	rng := rand.New(rand.NewSource(2))
	randHalf := func() Float16 {
		for {
			f := FromBits(uint16(rng.Intn(0x10000)))
			if f.IsFinite() && !f.IsNaN() {
				return f
			}
		}
	}
	for i := 0; i < 100000; i++ {
		a, b, c := randHalf(), randHalf(), randHalf()
		if got, want := Add(a, b), FromFloat64(a.Float64()+b.Float64()); got != want && !(got.IsNaN() && want.IsNaN()) {
			t.Fatalf("Add(%v,%v) = %#04x want %#04x", a, b, got.Bits(), want.Bits())
		}
		if got, want := Mul(a, b), FromFloat64(a.Float64()*b.Float64()); got != want && !(got.IsNaN() && want.IsNaN()) {
			t.Fatalf("Mul(%v,%v) = %#04x want %#04x", a, b, got.Bits(), want.Bits())
		}
		if got, want := FMA(a, b, c), FromFloat64(a.Float64()*b.Float64()+c.Float64()); got != want && !(got.IsNaN() && want.IsNaN()) {
			t.Fatalf("FMA(%v,%v,%v) = %#04x want %#04x", a, b, c, got.Bits(), want.Bits())
		}
	}
}

func TestArithmeticIdentities(t *testing.T) {
	cfg := &quick.Config{MaxCount: 5000}
	finite := func(u uint16) Float16 {
		f := FromBits(u)
		if !f.IsFinite() {
			return One
		}
		return f
	}
	// Commutativity of addition and multiplication.
	if err := quick.Check(func(ua, ub uint16) bool {
		a, b := finite(ua), finite(ub)
		s1, s2 := Add(a, b), Add(b, a)
		p1, p2 := Mul(a, b), Mul(b, a)
		return (s1 == s2 || (s1.IsNaN() && s2.IsNaN())) &&
			(p1 == p2 || (p1.IsNaN() && p2.IsNaN()))
	}, cfg); err != nil {
		t.Error(err)
	}
	// x - x == 0 for finite x.
	if err := quick.Check(func(ua uint16) bool {
		a := finite(ua)
		return Sub(a, a).IsZero()
	}, cfg); err != nil {
		t.Error(err)
	}
	// x * 1 == x.
	if err := quick.Check(func(ua uint16) bool {
		a := finite(ua)
		got := Mul(a, One)
		return got == a || (got.IsZero() && a.IsZero())
	}, cfg); err != nil {
		t.Error(err)
	}
	// sqrt(x)^2 within one ulp of x for positive finite x.
	if err := quick.Check(func(ua uint16) bool {
		a := finite(ua).Abs()
		if a.IsZero() {
			return true
		}
		s := Sqrt(a)
		back := Mul(s, s).Float64()
		return math.Abs(back-a.Float64()) <= 2*a.ULP()
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestDivision(t *testing.T) {
	if !Div(One, Zero).IsInf(1) {
		t.Error("1/0 is not +Inf")
	}
	if !Div(One.Neg(), Zero).IsInf(-1) {
		t.Error("-1/0 is not -Inf")
	}
	if !Div(Zero, Zero).IsNaN() {
		t.Error("0/0 is not NaN")
	}
	if got := Div(FromFloat64(10), FromFloat64(4)); got != FromFloat64(2.5) {
		t.Errorf("10/4 = %v", got)
	}
}

func TestNextUpNextDown(t *testing.T) {
	if Zero.NextUp() != SmallestNonzero {
		t.Error("NextUp(0) is not the smallest subnormal")
	}
	if FromBits(0x8000).NextUp() != SmallestNonzero {
		t.Error("NextUp(-0) is not the smallest subnormal")
	}
	if MaxValue.NextUp() != PositiveInfinity {
		t.Error("NextUp(MaxValue) is not +Inf")
	}
	if PositiveInfinity.NextUp() != PositiveInfinity {
		t.Error("NextUp(+Inf) moved")
	}
	if NegativeInfinity.NextDown() != NegativeInfinity {
		t.Error("NextDown(-Inf) moved")
	}
	// NextUp then NextDown is the identity for finite values.
	for b := 0; b <= 0xffff; b++ {
		f := FromBits(uint16(b))
		if f.IsNaN() || !f.IsFinite() || f.IsZero() {
			continue
		}
		up := f.NextUp()
		if up.IsFinite() && up.NextDown() != f {
			t.Fatalf("bits %#04x: NextUp/NextDown not inverse (up=%#04x down=%#04x)",
				b, up.Bits(), up.NextDown().Bits())
		}
		if !f.Less(up) && up.IsFinite() {
			t.Fatalf("bits %#04x: NextUp not greater", b)
		}
	}
}

func TestULP(t *testing.T) {
	if got := One.ULP(); got != math.Ldexp(1, -10) {
		t.Errorf("ULP(1) = %g, want 2^-10", got)
	}
	if got := SmallestNonzero.ULP(); got != math.Ldexp(1, -24) {
		t.Errorf("ULP(min subnormal) = %g, want 2^-24", got)
	}
	if got := FromFloat64(1024).ULP(); got != 1 {
		t.Errorf("ULP(1024) = %g, want 1", got)
	}
	if got := FromFloat64(2048).ULP(); got != 2 {
		t.Errorf("ULP(2048) = %g, want 2", got)
	}
	if !math.IsNaN(PositiveInfinity.ULP()) || !math.IsNaN(QuietNaN.ULP()) {
		t.Error("ULP of non-finite values is not NaN")
	}
}

func TestOrderingConsistentWithFloat32(t *testing.T) {
	if err := quick.Check(func(ua, ub uint16) bool {
		a, b := FromBits(ua), FromBits(ub)
		if a.IsNaN() || b.IsNaN() {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) == (a.Float32() < b.Float32())
	}, &quick.Config{MaxCount: 20000}); err != nil {
		t.Error(err)
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	for b := 0; b <= 0xffff; b++ {
		f := FromBits(uint16(b))
		if f.IsNaN() || !f.IsFinite() {
			continue
		}
		got, err := Parse(f.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", f.String(), err)
		}
		if !got.Equal(f) && !(got.IsZero() && f.IsZero()) {
			t.Fatalf("bits %#04x: string %q parsed back to %#04x", b, f.String(), got.Bits())
		}
	}
	if _, err := Parse("not a number"); err == nil {
		t.Error("Parse accepted garbage")
	}
}

func TestSliceConversions(t *testing.T) {
	xs := []float64{0, 1, -2.5, 65504, 1e-7}
	hs := FromSlice64(xs)
	back := ToSlice64(nil, hs)
	for i := range xs {
		want := FromFloat64(xs[i]).Float64()
		if back[i] != want {
			t.Errorf("slice round trip [%d]: got %g want %g", i, back[i], want)
		}
	}
	fs := []float32{1, 2, 3}
	hs32 := FromSlice32(fs)
	out := make([]float32, 8)
	got := ToSlice32(out, hs32)
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Errorf("ToSlice32 with preallocated dst: %v", got)
	}
}

func BenchmarkFromFloat64(b *testing.B) {
	xs := make([]float64, 1024)
	rng := rand.New(rand.NewSource(3))
	for i := range xs {
		xs[i] = rng.NormFloat64() * 100
	}
	b.ResetTimer()
	var sink Float16
	for i := 0; i < b.N; i++ {
		sink = FromFloat64(xs[i&1023])
	}
	_ = sink
}

func BenchmarkAdd(b *testing.B) {
	x, y := FromFloat64(1.5), FromFloat64(2.25)
	var sink Float16
	for i := 0; i < b.N; i++ {
		sink = Add(x, y)
	}
	_ = sink
}
