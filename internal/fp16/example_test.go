package fp16_test

import (
	"fmt"

	"repro/internal/fp16"
)

// Half precision carries ~3 decimal digits: π survives only approximately,
// and values beyond 65504 overflow.
func ExampleFromFloat64() {
	pi := fp16.FromFloat64(3.14159265358979)
	fmt.Println(pi)
	fmt.Println(fp16.FromFloat64(70000).IsInf(1))
	// Output:
	// 3.140625
	// true
}

func ExampleAdd() {
	// Absorption happens three orders of magnitude sooner than in float32:
	// 2048 + 1 is already 2048 in binary16 (ulp at 2048 is 2).
	a := fp16.FromFloat64(2048)
	b := fp16.FromFloat64(1)
	fmt.Println(fp16.Add(a, b))
	// Output: 2048
}

func ExampleFloat16_ULP() {
	fmt.Println(fp16.One.ULP())
	fmt.Println(fp16.FromFloat64(1024).ULP())
	// Output:
	// 0.0009765625
	// 1
}
