// Package solvers implements the classic mixed-precision linear-algebra
// technique behind much of the paper's prior work ([4] Li et al., [6]
// Buttari et al.): iterative refinement with a reduced-precision inner
// solver. The bulk of the arithmetic — a conjugate-gradient solve — runs
// in single precision, while a thin double-precision outer loop recovers
// full accuracy from exact residuals, demonstrating the paper's thesis
// ("increase precision in well-chosen sub-calculations to enable the rest
// at lower precision") on a different algorithm class, as §VIII calls for.
package solvers

import (
	"fmt"
	"math"

	"repro/internal/metrics"
)

// CSR is a square sparse matrix in compressed-sparse-row form.
type CSR struct {
	N      int
	RowPtr []int32 // length N+1
	Col    []int32
	Val    []float64
}

// NNZ returns the number of stored entries.
func (m *CSR) NNZ() int { return len(m.Val) }

// MulVec computes dst = M·x in float64.
func (m *CSR) MulVec(dst, x []float64) {
	for i := 0; i < m.N; i++ {
		var s float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p] * x[m.Col[p]]
		}
		dst[i] = s
	}
}

// CSR32 is the single-precision replica used by the inner solver.
type CSR32 struct {
	N      int
	RowPtr []int32
	Col    []int32
	Val    []float32
}

// To32 converts the matrix to single precision (shared structure arrays).
func (m *CSR) To32() *CSR32 {
	vals := make([]float32, len(m.Val))
	for i, v := range m.Val {
		vals[i] = float32(v)
	}
	return &CSR32{N: m.N, RowPtr: m.RowPtr, Col: m.Col, Val: vals}
}

// MulVec computes dst = M·x in float32.
func (m *CSR32) MulVec(dst, x []float32) {
	for i := 0; i < m.N; i++ {
		var s float32
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s += m.Val[p] * x[m.Col[p]]
		}
		dst[i] = s
	}
}

// Poisson2D builds the standard 5-point Laplacian on an n×n unit grid
// (Dirichlet boundaries): symmetric positive definite with 4 on the
// diagonal and −1 couplings.
func Poisson2D(n int) (*CSR, error) {
	if n < 1 {
		return nil, fmt.Errorf("solvers: grid size %d < 1", n)
	}
	N := n * n
	m := &CSR{N: N, RowPtr: make([]int32, N+1)}
	idx := func(i, j int) int32 { return int32(j*n + i) }
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			row := idx(i, j)
			add := func(c int32, v float64) {
				m.Col = append(m.Col, c)
				m.Val = append(m.Val, v)
			}
			// Ordered by column for cache-friendliness and determinism.
			if j > 0 {
				add(idx(i, j-1), -1)
			}
			if i > 0 {
				add(idx(i-1, j), -1)
			}
			add(row, 4)
			if i < n-1 {
				add(idx(i+1, j), -1)
			}
			if j < n-1 {
				add(idx(i, j+1), -1)
			}
			m.RowPtr[row+1] = int32(len(m.Val))
		}
	}
	return m, nil
}

// Stats reports a solve.
type Stats struct {
	// OuterIterations counts refinement steps (1 for plain CG).
	OuterIterations int
	// InnerIterations counts CG iterations (all precisions).
	InnerIterations int
	// RelResidual is the final ‖b−Ax‖₂/‖b‖₂ measured in float64.
	RelResidual float64
	// Counters tallies flops by width (5-flops-per-nnz sparse products
	// plus vector ops).
	Counters metrics.Counters
	// Converged reports whether the requested tolerance was met.
	Converged bool
}

// dot and norm helpers (float64).
func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func norm2(a []float64) float64 { return math.Sqrt(dot(a, a)) }

func dot32(a, b []float32) float32 {
	var s float32
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// CG solves Ax = b with unpreconditioned conjugate gradients in float64,
// overwriting x (which supplies the initial guess). It stops when the
// recurrence residual drops below tol·‖b‖₂ or maxIter is reached.
func CG(a *CSR, b, x []float64, tol float64, maxIter int) Stats {
	n := a.N
	r := make([]float64, n)
	p := make([]float64, n)
	ap := make([]float64, n)
	a.MulVec(ap, x)
	for i := range r {
		r[i] = b[i] - ap[i]
		p[i] = r[i]
	}
	bnorm := norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	rr := dot(r, r)
	var st Stats
	st.OuterIterations = 1
	for iter := 0; iter < maxIter && math.Sqrt(rr) > tol*bnorm; iter++ {
		a.MulVec(ap, p)
		alpha := rr / dot(p, ap)
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot(r, r)
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		st.InnerIterations++
	}
	st.Counters.Flops64 = uint64(st.InnerIterations) * uint64(2*a.NNZ()+12*n)
	a.MulVec(ap, x)
	for i := range r {
		r[i] = b[i] - ap[i]
	}
	st.RelResidual = norm2(r) / bnorm
	st.Converged = math.Sqrt(rr) <= tol*bnorm
	return st
}

// cg32 runs CG entirely in float32, returning iterations used. The
// residual recurrence stalls near single-precision round-off (~1e-7
// relative), which is exactly the limitation iterative refinement works
// around.
func cg32(a *CSR32, b, x []float32, tol float32, maxIter int) int {
	n := a.N
	r := make([]float32, n)
	p := make([]float32, n)
	ap := make([]float32, n)
	a.MulVec(ap, x)
	for i := range r {
		r[i] = b[i] - ap[i]
		p[i] = r[i]
	}
	var bnorm float32 = float32(math.Sqrt(float64(dot32(b, b))))
	if bnorm == 0 {
		bnorm = 1
	}
	rr := dot32(r, r)
	iters := 0
	for iter := 0; iter < maxIter && float32(math.Sqrt(float64(rr))) > tol*bnorm; iter++ {
		a.MulVec(ap, p)
		den := dot32(p, ap)
		if den == 0 || math.IsNaN(float64(den)) {
			break
		}
		alpha := rr / den
		for i := range x {
			x[i] += alpha * p[i]
			r[i] -= alpha * ap[i]
		}
		rrNew := dot32(r, r)
		beta := rrNew / rr
		rr = rrNew
		for i := range p {
			p[i] = r[i] + beta*p[i]
		}
		iters++
	}
	return iters
}

// CG32 solves in pure single precision and reports the float64-measured
// residual — the baseline showing where single precision alone stalls.
func CG32(a *CSR, b []float64, tol float64, maxIter int) ([]float64, Stats) {
	a32 := a.To32()
	n := a.N
	b32 := make([]float32, n)
	for i, v := range b {
		b32[i] = float32(v)
	}
	x32 := make([]float32, n)
	iters := cg32(a32, b32, x32, float32(tol), maxIter)
	x := make([]float64, n)
	for i, v := range x32 {
		x[i] = float64(v)
	}
	var st Stats
	st.OuterIterations = 1
	st.InnerIterations = iters
	st.Counters.Flops32 = uint64(iters) * uint64(2*a.NNZ()+12*n)
	st.Counters.Conversions = uint64(2*n) + uint64(a.NNZ())
	r := make([]float64, n)
	a.MulVec(r, x)
	bnorm := norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	for i := range r {
		r[i] = b[i] - r[i]
	}
	st.RelResidual = norm2(r) / bnorm
	st.Converged = st.RelResidual <= tol
	return x, st
}

// IROptions configures SolveIR.
type IROptions struct {
	// Tol is the target double-precision relative residual (default 1e-12).
	Tol float64
	// InnerTol is the single-precision inner solve tolerance (default 1e-4).
	InnerTol float64
	// MaxOuter bounds refinement steps (default 40).
	MaxOuter int
	// MaxInner bounds each inner CG (default 10·√N).
	MaxInner int
}

func (o *IROptions) setDefaults(n int) {
	if o.Tol == 0 {
		o.Tol = 1e-12
	}
	if o.InnerTol == 0 {
		o.InnerTol = 1e-4
	}
	if o.MaxOuter == 0 {
		o.MaxOuter = 40
	}
	if o.MaxInner == 0 {
		o.MaxInner = 10 * int(math.Sqrt(float64(n))+1)
	}
}

// SolveIR solves Ax = b by mixed-precision iterative refinement: exact
// float64 residuals, single-precision CG corrections. The returned stats
// show the flop mix — the overwhelming majority runs at single precision
// while the result reaches double-precision accuracy.
func SolveIR(a *CSR, b []float64, opts IROptions) ([]float64, Stats) {
	n := a.N
	opts.setDefaults(n)
	a32 := a.To32()
	x := make([]float64, n)
	r := make([]float64, n)
	ax := make([]float64, n)
	r32 := make([]float32, n)
	d32 := make([]float32, n)

	bnorm := norm2(b)
	if bnorm == 0 {
		bnorm = 1
	}
	var st Stats
	st.Counters.Conversions = uint64(a.NNZ()) // matrix replica
	for outer := 0; outer < opts.MaxOuter; outer++ {
		// Exact residual in double.
		a.MulVec(ax, x)
		for i := range r {
			r[i] = b[i] - ax[i]
		}
		st.Counters.Flops64 += uint64(2*a.NNZ() + n)
		res := norm2(r) / bnorm
		st.RelResidual = res
		st.OuterIterations = outer + 1
		if res <= opts.Tol {
			st.Converged = true
			break
		}
		// Scale the residual to O(1) so the single-precision inner solve
		// keeps full relative accuracy even when ‖r‖ is tiny.
		scale := norm2(r)
		if scale == 0 {
			st.Converged = true
			break
		}
		for i := range r32 {
			r32[i] = float32(r[i] / scale)
			d32[i] = 0
		}
		st.Counters.Conversions += uint64(n)
		inner := cg32(a32, r32, d32, float32(opts.InnerTol), opts.MaxInner)
		st.InnerIterations += inner
		st.Counters.Flops32 += uint64(inner) * uint64(2*a.NNZ()+12*n)
		// Apply the correction in double.
		for i := range x {
			x[i] += scale * float64(d32[i])
		}
		st.Counters.Flops64 += uint64(2 * n)
		st.Counters.Conversions += uint64(n)
	}
	return x, st
}

// SingleFlopFraction returns the share of flops executed at single
// precision — the headline metric of the mixed-precision technique.
func (s Stats) SingleFlopFraction() float64 {
	total := float64(s.Counters.Flops32 + s.Counters.Flops64)
	if total == 0 {
		return 0
	}
	return float64(s.Counters.Flops32) / total
}
