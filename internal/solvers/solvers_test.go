package solvers

import (
	"math"
	"math/rand"
	"testing"
)

func rhs(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.Float64()*2 - 1
	}
	return b
}

func TestPoisson2DStructure(t *testing.T) {
	m, err := Poisson2D(4)
	if err != nil {
		t.Fatal(err)
	}
	if m.N != 16 {
		t.Fatalf("N = %d", m.N)
	}
	// Interior row: 4 on diagonal, four −1 neighbors; row sums ≥ 0 with
	// equality only for interior rows.
	for i := 0; i < m.N; i++ {
		var sum, diag float64
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			sum += m.Val[p]
			if m.Col[p] == int32(i) {
				diag = m.Val[p]
			}
		}
		if diag != 4 {
			t.Errorf("row %d diagonal %g", i, diag)
		}
		if sum < 0 {
			t.Errorf("row %d sum %g < 0", i, sum)
		}
	}
	// Symmetry: build a dense mirror and compare.
	dense := make([][]float64, m.N)
	for i := range dense {
		dense[i] = make([]float64, m.N)
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			dense[i][m.Col[p]] = m.Val[p]
		}
	}
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			if dense[i][j] != dense[j][i] {
				t.Fatalf("asymmetry at (%d,%d)", i, j)
			}
		}
	}
	if _, err := Poisson2D(0); err == nil {
		t.Error("Poisson2D(0) accepted")
	}
}

func TestMulVecAgainstDense(t *testing.T) {
	m, err := Poisson2D(3)
	if err != nil {
		t.Fatal(err)
	}
	x := rhs(m.N, 1)
	got := make([]float64, m.N)
	m.MulVec(got, x)
	// Reference via the 5-point stencil directly.
	n := 3
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			row := j*n + i
			want := 4 * x[row]
			if i > 0 {
				want -= x[row-1]
			}
			if i < n-1 {
				want -= x[row+1]
			}
			if j > 0 {
				want -= x[row-n]
			}
			if j < n-1 {
				want -= x[row+n]
			}
			if math.Abs(got[row]-want) > 1e-14 {
				t.Fatalf("row %d: %g want %g", row, got[row], want)
			}
		}
	}
}

func TestCGReachesDoubleAccuracy(t *testing.T) {
	m, err := Poisson2D(24)
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(m.N, 2)
	x := make([]float64, m.N)
	st := CG(m, b, x, 1e-12, 5000)
	if !st.Converged {
		t.Fatalf("CG did not converge: %+v", st)
	}
	if st.RelResidual > 1e-11 {
		t.Errorf("residual %g", st.RelResidual)
	}
	if st.Counters.Flops64 == 0 || st.Counters.Flops32 != 0 {
		t.Errorf("counters wrong: %+v", st.Counters)
	}
}

func TestCG32StallsAtSinglePrecision(t *testing.T) {
	m, err := Poisson2D(24)
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(m.N, 3)
	_, st := CG32(m, b, 1e-12, 5000)
	// Single precision cannot reach 1e-12; it stalls around 1e-5..1e-7.
	if st.Converged {
		t.Error("pure single-precision CG claimed double-level convergence")
	}
	if st.RelResidual > 1e-3 || st.RelResidual < 1e-9 {
		t.Errorf("single-precision stall at %g, expected ~1e-5..1e-7", st.RelResidual)
	}
	if st.Counters.Flops32 == 0 {
		t.Error("no single-precision flops recorded")
	}
}

func TestIRReachesDoubleAccuracyWithSingleFlops(t *testing.T) {
	m, err := Poisson2D(24)
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(m.N, 4)
	x, st := SolveIR(m, b, IROptions{Tol: 1e-12})
	if !st.Converged {
		t.Fatalf("IR did not converge: %+v", st)
	}
	if st.RelResidual > 1e-12 {
		t.Errorf("IR residual %g", st.RelResidual)
	}
	// The headline: most arithmetic ran in single precision.
	if frac := st.SingleFlopFraction(); frac < 0.85 {
		t.Errorf("only %.0f%% of flops at single precision", 100*frac)
	}
	if st.OuterIterations < 2 {
		t.Error("IR converged in one outer step — inner tolerance suspiciously tight")
	}
	// Solution must actually solve the system.
	r := make([]float64, m.N)
	m.MulVec(r, x)
	for i := range r {
		r[i] = b[i] - r[i]
	}
	if norm2(r)/norm2(b) > 1e-11 {
		t.Error("returned solution does not match reported residual")
	}
}

func TestIRMatchesCGSolution(t *testing.T) {
	m, err := Poisson2D(16)
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(m.N, 5)
	xCG := make([]float64, m.N)
	CG(m, b, xCG, 1e-13, 10000)
	xIR, _ := SolveIR(m, b, IROptions{Tol: 1e-13})
	maxDiff := 0.0
	for i := range xCG {
		if d := math.Abs(xCG[i] - xIR[i]); d > maxDiff {
			maxDiff = d
		}
	}
	scale := 0.0
	for _, v := range xCG {
		if a := math.Abs(v); a > scale {
			scale = a
		}
	}
	if maxDiff > 1e-10*scale {
		t.Errorf("IR and CG solutions differ by %g (scale %g)", maxDiff, scale)
	}
}

func TestIRCheaperThanDoubleCG(t *testing.T) {
	// Weighted cost model: a single-precision flop costs half a double
	// one (bandwidth-bound sparse kernels — the paper's argument).
	m, err := Poisson2D(32)
	if err != nil {
		t.Fatal(err)
	}
	b := rhs(m.N, 6)
	x := make([]float64, m.N)
	stCG := CG(m, b, x, 1e-12, 10000)
	_, stIR := SolveIR(m, b, IROptions{Tol: 1e-12})
	costCG := float64(stCG.Counters.Flops64) + 0.5*float64(stCG.Counters.Flops32)
	costIR := float64(stIR.Counters.Flops64) + 0.5*float64(stIR.Counters.Flops32)
	if costIR >= costCG {
		t.Errorf("IR weighted cost %.3g not below CG %.3g", costIR, costCG)
	}
	t.Logf("CG: %d iters, cost %.3g; IR: %d outer/%d inner, cost %.3g (%.0f%% single)",
		stCG.InnerIterations, costCG, stIR.OuterIterations, stIR.InnerIterations,
		costIR, 100*stIR.SingleFlopFraction())
}

func TestZeroRHS(t *testing.T) {
	m, err := Poisson2D(8)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, m.N)
	x, st := SolveIR(m, b, IROptions{})
	if !st.Converged {
		t.Error("zero RHS did not converge")
	}
	for i, v := range x {
		if v != 0 {
			t.Fatalf("x[%d] = %g for zero RHS", i, v)
		}
	}
	xcg := make([]float64, m.N)
	if st := CG(m, b, xcg, 1e-12, 100); !st.Converged {
		t.Error("CG on zero RHS did not converge")
	}
}

func TestTo32(t *testing.T) {
	m, err := Poisson2D(4)
	if err != nil {
		t.Fatal(err)
	}
	m32 := m.To32()
	if m32.N != m.N || len(m32.Val) != len(m.Val) {
		t.Fatal("structure mismatch")
	}
	x := make([]float32, m.N)
	for i := range x {
		x[i] = float32(i%3) - 1
	}
	dst := make([]float32, m.N)
	m32.MulVec(dst, x)
	x64 := make([]float64, m.N)
	for i, v := range x {
		x64[i] = float64(v)
	}
	dst64 := make([]float64, m.N)
	m.MulVec(dst64, x64)
	for i := range dst {
		if math.Abs(float64(dst[i])-dst64[i]) > 1e-5 {
			t.Fatalf("f32 product differs at %d: %g vs %g", i, dst[i], dst64[i])
		}
	}
}

func BenchmarkCGDouble(b *testing.B) {
	m, _ := Poisson2D(48)
	rhsV := rhs(m.N, 7)
	for i := 0; i < b.N; i++ {
		x := make([]float64, m.N)
		CG(m, rhsV, x, 1e-10, 5000)
	}
}

func BenchmarkIRMixed(b *testing.B) {
	m, _ := Poisson2D(48)
	rhsV := rhs(m.N, 7)
	for i := 0; i < b.N; i++ {
		SolveIR(m, rhsV, IROptions{Tol: 1e-10})
	}
}
