// Package zfp implements a fixed-rate compressed floating-point array
// codec in the style of Lindstrom's zfp (the paper's reference [34]): the
// field is split into 4×4 blocks, each block is aligned to a common
// exponent (block-floating-point), decorrelated with zfp's integer lifting
// transform, and its coefficients are quantised with a frequency-aware bit
// allocation that meets an exact per-value bit budget.
//
// The paper's cost analysis notes that "floating point compression can
// produce impressive storage savings" but excludes it to keep the model
// simple; this package supplies the missing substrate so the trade can be
// measured (see the compression ablation bench at the repository root).
package zfp

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Rate limits: bits per value. MinRate keeps at least the DC coefficient;
// MaxRate caps below lossless (the codec is a lossy fixed-rate design).
const (
	MinRate = 2
	MaxRate = 28
)

// blockDim is the block edge; blocks hold blockDim² values.
const blockDim = 4

// qBits is the block-floating-point significand position: values are
// scaled to ~±2^qBits before the transform (whose worst-case gain of ~4×
// still fits int64 comfortably).
const qBits = 30

// header layout: magic, nx, ny, rate.
var magic = [4]byte{'Z', 'F', 'P', '1'}

const headerSize = 4 + 4 + 4 + 2

// sequency order of 4×4 coefficients: by total frequency i+j, the standard
// zfp-style reordering that groups coefficients by expected magnitude.
var seqOrder = buildSeqOrder()

func buildSeqOrder() [16]int {
	var order [16]int
	idx := 0
	for level := 0; level <= 6; level++ {
		for j := 0; j < blockDim; j++ {
			for i := 0; i < blockDim; i++ {
				if i+j == level {
					order[idx] = j*blockDim + i
					idx++
				}
			}
		}
	}
	return order
}

// intprec is the number of negabinary bit planes encoded per coefficient:
// block integers are ≤ ~2^32 after the transform gain and negabinary
// expands magnitudes by ≤ 4/3, so 36 planes cover the range.
const intprec = 36

// nbmask is the negabinary conversion mask (…101010).
const nbmask = 0xaaaaaaaaaaaaaaaa

// int2uint converts two's complement to negabinary, in which sign is
// implicit and leading zeros track magnitude — the property the embedded
// bit-plane coder exploits.
func int2uint(x int64) uint64 { return (uint64(x) + nbmask) ^ nbmask }

// uint2int inverts int2uint.
func uint2int(u uint64) int64 { return int64((u ^ nbmask) - nbmask) }

// forwardLift applies zfp's non-orthogonal decorrelating transform to four
// values in place.
func forwardLift(p []int64, stride int) {
	x, y, z, w := p[0], p[stride], p[2*stride], p[3*stride]
	x += w
	x >>= 1
	w -= x
	z += y
	z >>= 1
	y -= z
	x += z
	x >>= 1
	z -= x
	w += y
	w >>= 1
	y -= w
	w += y >> 1
	y -= w >> 1
	p[0], p[stride], p[2*stride], p[3*stride] = x, y, z, w
}

// inverseLift inverts forwardLift.
func inverseLift(p []int64, stride int) {
	x, y, z, w := p[0], p[stride], p[2*stride], p[3*stride]
	y += w >> 1
	w -= y >> 1
	y += w
	w <<= 1
	w -= y
	z += x
	x <<= 1
	x -= z
	y += z
	z <<= 1
	z -= y
	w += x
	x <<= 1
	x -= w
	p[0], p[stride], p[2*stride], p[3*stride] = x, y, z, w
}

// Compress2D encodes a row-major nx×ny field at the given rate (bits per
// value, in [MinRate, MaxRate]). Edge blocks are padded by edge
// replication. NaNs and infinities are rejected (fixed-rate zfp shares
// this restriction).
func Compress2D(data []float64, nx, ny, rate int) ([]byte, error) {
	if nx <= 0 || ny <= 0 || len(data) != nx*ny {
		return nil, fmt.Errorf("zfp: field %dx%d does not match %d values", nx, ny, len(data))
	}
	if rate < MinRate || rate > MaxRate {
		return nil, fmt.Errorf("zfp: rate %d outside [%d,%d]", rate, MinRate, MaxRate)
	}
	for i, x := range data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("zfp: non-finite value at index %d", i)
		}
	}

	bx := (nx + blockDim - 1) / blockDim
	by := (ny + blockDim - 1) / blockDim
	budget := 16 * rate

	out := make([]byte, headerSize, headerSize+bx*by*(2+2*rate)+16)
	copy(out, magic[:])
	binary.LittleEndian.PutUint32(out[4:], uint32(nx))
	binary.LittleEndian.PutUint32(out[8:], uint32(ny))
	binary.LittleEndian.PutUint16(out[12:], uint16(rate))

	w := newBitWriter()
	var block [16]float64
	var coeff [16]int64
	for bj := 0; bj < by; bj++ {
		for bi := 0; bi < bx; bi++ {
			gatherBlock(data, nx, ny, bi, bj, &block)
			encodeBlock(&block, &coeff, budget, w)
		}
	}
	return append(out, w.bytes()...), nil
}

// gatherBlock copies block (bi, bj) with edge replication for partial
// blocks.
func gatherBlock(data []float64, nx, ny, bi, bj int, block *[16]float64) {
	for j := 0; j < blockDim; j++ {
		y := bj*blockDim + j
		if y >= ny {
			y = ny - 1
		}
		for i := 0; i < blockDim; i++ {
			x := bi*blockDim + i
			if x >= nx {
				x = nx - 1
			}
			block[j*blockDim+i] = data[y*nx+x]
		}
	}
}

// encodeBlock writes one block: 12-bit biased exponent then the quantised
// transform coefficients in sequency order.
func encodeBlock(block *[16]float64, coeff *[16]int64, budget int, w *bitWriter) {
	// Common exponent.
	maxAbs := 0.0
	for _, v := range block {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		w.write(0, 12) // exponent sentinel: all-zero block
		return
	}
	_, e := math.Frexp(maxAbs)  // maxAbs = f × 2^e, f in [0.5, 1)
	w.write(uint64(e+1075), 12) // e+1075 ∈ [1, 2100) fits 12 bits

	// Block floating point: scale to integers with qBits significand.
	// Ldexp per value avoids overflow of an explicit 2^(qBits-e) factor
	// at the extremes of the exponent range.
	for i, v := range block {
		coeff[i] = int64(math.RoundToEven(math.Ldexp(v, qBits-e)))
	}
	// Decorrelate rows then columns.
	for j := 0; j < blockDim; j++ {
		forwardLift(coeff[j*blockDim:], 1)
	}
	for i := 0; i < blockDim; i++ {
		forwardLift(coeff[i:], blockDim)
	}
	// Reorder by sequency, convert to negabinary, and encode the top bit
	// planes with zfp's embedded group-tested coding under the exact
	// per-block bit budget.
	var u [16]uint64
	for k, pos := range seqOrder {
		u[k] = int2uint(coeff[pos])
	}
	encodeInts(w, budget, &u)
}

// encodeInts is zfp's fixed-rate embedded bit-plane coder for one block of
// 16 negabinary coefficients: planes are emitted most-significant first;
// within a plane, bits of already-active coefficients come first, then a
// unary run-length code activates coefficients whose leading one appears
// in this plane. Encoding stops exactly at the bit budget.
func encodeInts(w *bitWriter, budget int, u *[16]uint64) {
	bits := budget
	n := 0 // active coefficients
	for k := intprec - 1; k >= 0 && bits > 0; k-- {
		// Extract bit plane k.
		var x uint64
		for i := 0; i < 16; i++ {
			x |= ((u[i] >> uint(k)) & 1) << uint(i)
		}
		// Bits of active coefficients.
		m := n
		if m > bits {
			m = bits
		}
		w.write(x&(1<<uint(m)-1), m)
		bits -= m
		x >>= uint(n)
		// Group-tested unary activation of new coefficients (zfp's
		// encode_ints step 3). Each outer iteration consumes exactly one
		// coefficient position: the one whose leading bit was found, or
		// the last coefficient, whose activation the group test implies.
		for n < 16 && bits > 0 {
			bits--
			any := x != 0
			w.writeBit(any)
			if !any {
				break
			}
			for n < 16-1 && bits > 0 {
				bits--
				one := x&1 != 0
				w.writeBit(one)
				if one {
					break
				}
				x >>= 1
				n++
			}
			x >>= 1
			n++
		}
	}
	// Pad to the exact budget so every block occupies 16×rate bits.
	for ; bits > 0; bits-- {
		w.writeBit(false)
	}
}

// decodeInts mirrors encodeInts.
func decodeInts(r *bitReader, budget int, u *[16]uint64) error {
	for i := range u {
		u[i] = 0
	}
	bits := budget
	n := 0
	for k := intprec - 1; k >= 0 && bits > 0; k-- {
		m := n
		if m > bits {
			m = bits
		}
		x, err := r.read(m)
		if err != nil {
			return err
		}
		bits -= m
		for n < 16 && bits > 0 {
			bits--
			any, err := r.readBit()
			if err != nil {
				return err
			}
			if !any {
				break
			}
			for n < 16-1 && bits > 0 {
				bits--
				one, err := r.readBit()
				if err != nil {
					return err
				}
				if one {
					break
				}
				n++
			}
			x |= 1 << uint(n)
			n++
		}
		// Deposit plane k.
		for i := 0; x != 0; i, x = i+1, x>>1 {
			u[i] |= (x & 1) << uint(k)
		}
	}
	// Skip the block padding (may exceed one read; chunks stay within the
	// bit reader's safe width).
	for bits > 0 {
		n := bits
		if n > 32 {
			n = 32
		}
		if _, err := r.read(n); err != nil {
			return err
		}
		bits -= n
	}
	return nil
}

// Decompress2D decodes a buffer produced by Compress2D, returning the
// field and its dimensions.
func Decompress2D(buf []byte) ([]float64, int, int, error) {
	if len(buf) < headerSize || [4]byte(buf[0:4]) != magic {
		return nil, 0, 0, fmt.Errorf("zfp: bad header")
	}
	nx := int(binary.LittleEndian.Uint32(buf[4:]))
	ny := int(binary.LittleEndian.Uint32(buf[8:]))
	rate := int(binary.LittleEndian.Uint16(buf[12:]))
	if nx <= 0 || ny <= 0 || rate < MinRate || rate > MaxRate {
		return nil, 0, 0, fmt.Errorf("zfp: implausible header nx=%d ny=%d rate=%d", nx, ny, rate)
	}
	if nx > 1<<24 || ny > 1<<24 {
		return nil, 0, 0, fmt.Errorf("zfp: dimensions too large")
	}
	budget := 16 * rate
	r := newBitReader(buf[headerSize:])
	bx := (nx + blockDim - 1) / blockDim
	by := (ny + blockDim - 1) / blockDim
	out := make([]float64, nx*ny)
	var coeff [16]int64
	for bj := 0; bj < by; bj++ {
		for bi := 0; bi < bx; bi++ {
			e, zero, err := decodeBlock(&coeff, budget, r)
			if err != nil {
				return nil, 0, 0, err
			}
			scatterBlock(out, nx, ny, bi, bj, &coeff, e, zero)
		}
	}
	return out, nx, ny, nil
}

// decodeBlock reconstructs one block's integer coefficients and returns
// the block exponent (zero reports an all-zero block).
func decodeBlock(coeff *[16]int64, budget int, r *bitReader) (e int, zero bool, err error) {
	eBits, err := r.read(12)
	if err != nil {
		return 0, false, err
	}
	if eBits == 0 {
		for i := range coeff {
			coeff[i] = 0
		}
		return 0, true, nil
	}
	e = int(eBits) - 1075
	var u [16]uint64
	if err := decodeInts(r, budget, &u); err != nil {
		return 0, false, err
	}
	for k, pos := range seqOrder {
		coeff[pos] = uint2int(u[k])
	}
	// Inverse transform: columns then rows.
	for i := 0; i < blockDim; i++ {
		inverseLift(coeff[i:], blockDim)
	}
	for j := 0; j < blockDim; j++ {
		inverseLift(coeff[j*blockDim:], 1)
	}
	return e, false, nil
}

// scatterBlock writes the decoded block into the field, skipping padding.
// Ldexp per value preserves precision at extreme block exponents.
func scatterBlock(out []float64, nx, ny, bi, bj int, coeff *[16]int64, e int, zero bool) {
	for j := 0; j < blockDim; j++ {
		y := bj*blockDim + j
		if y >= ny {
			continue
		}
		for i := 0; i < blockDim; i++ {
			x := bi*blockDim + i
			if x >= nx {
				continue
			}
			if zero {
				out[y*nx+x] = 0
				continue
			}
			out[y*nx+x] = math.Ldexp(float64(coeff[j*blockDim+i]), e-qBits)
		}
	}
}

// bitWriter packs little-endian bit strings.
type bitWriter struct {
	buf  []byte
	acc  uint64
	nacc uint
}

func newBitWriter() *bitWriter { return &bitWriter{} }

func (w *bitWriter) write(v uint64, n int) {
	w.acc |= v << w.nacc
	w.nacc += uint(n)
	for w.nacc >= 8 {
		w.buf = append(w.buf, byte(w.acc))
		w.acc >>= 8
		w.nacc -= 8
	}
}

// writeBit emits a single bit.
func (w *bitWriter) writeBit(b bool) {
	if b {
		w.write(1, 1)
	} else {
		w.write(0, 1)
	}
}

func (w *bitWriter) bytes() []byte {
	out := w.buf
	if w.nacc > 0 {
		out = append(out, byte(w.acc))
	}
	return out
}

// bitReader unpacks little-endian bit strings.
type bitReader struct {
	buf  []byte
	pos  int
	acc  uint64
	nacc uint
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

// readBit reads a single bit.
func (r *bitReader) readBit() (bool, error) {
	v, err := r.read(1)
	return v != 0, err
}

func (r *bitReader) read(n int) (uint64, error) {
	if n > 56 {
		// The byte-fill below shifts whole bytes into the accumulator, so
		// reads must leave room for one more byte at the current fill.
		panic("zfp: bitReader.read width > 56")
	}
	for r.nacc < uint(n) {
		if r.pos >= len(r.buf) {
			return 0, fmt.Errorf("zfp: truncated stream")
		}
		r.acc |= uint64(r.buf[r.pos]) << r.nacc
		r.pos++
		r.nacc += 8
	}
	v := r.acc & (1<<uint(n) - 1)
	r.acc >>= uint(n)
	r.nacc -= uint(n)
	return v, nil
}
