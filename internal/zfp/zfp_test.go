package zfp

import (
	"math"
	"math/rand"
	"testing"
)

// smoothField builds a smooth nx×ny test field with the given amplitude.
func smoothField(nx, ny int, amp float64) []float64 {
	out := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			x := float64(i) / float64(nx)
			y := float64(j) / float64(ny)
			out[j*nx+i] = amp * (math.Sin(4*math.Pi*x)*math.Cos(2*math.Pi*y) +
				0.3*math.Exp(-((x-0.5)*(x-0.5)+(y-0.5)*(y-0.5))*20))
		}
	}
	return out
}

func maxAbsDiff(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func maxAbs(a []float64) float64 {
	m := 0.0
	for _, v := range a {
		if x := math.Abs(v); x > m {
			m = x
		}
	}
	return m
}

func TestRoundTripSmoothField(t *testing.T) {
	const nx, ny = 64, 48
	field := smoothField(nx, ny, 10)
	scale := maxAbs(field)
	// Accuracy must improve monotonically with rate and be decent.
	prevErr := math.Inf(1)
	for _, rate := range []int{4, 8, 12, 16, 24} {
		buf, err := Compress2D(field, nx, ny, rate)
		if err != nil {
			t.Fatal(err)
		}
		got, gnx, gny, err := Decompress2D(buf)
		if err != nil {
			t.Fatal(err)
		}
		if gnx != nx || gny != ny {
			t.Fatalf("rate %d: dimensions %dx%d", rate, gnx, gny)
		}
		relErr := maxAbsDiff(field, got) / scale
		t.Logf("rate %2d: rel err %.3g, %.2f bits/value", rate, relErr,
			float64(len(buf)*8)/float64(nx*ny))
		if relErr > prevErr*1.5 {
			t.Errorf("rate %d: error %g worse than lower rate %g", rate, relErr, prevErr)
		}
		prevErr = relErr
		switch {
		case rate >= 16 && relErr > 1e-6:
			t.Errorf("rate %d: rel err %g too large", rate, relErr)
		case rate >= 8 && relErr > 1e-3:
			t.Errorf("rate %d: rel err %g too large", rate, relErr)
		case relErr > 0.1:
			t.Errorf("rate %d: rel err %g too large", rate, relErr)
		}
	}
}

func TestCompressionRatio(t *testing.T) {
	const nx, ny = 128, 128
	field := smoothField(nx, ny, 1)
	buf, err := Compress2D(field, nx, ny, 8)
	if err != nil {
		t.Fatal(err)
	}
	bitsPerValue := float64(len(buf)*8) / float64(nx*ny)
	// 8-bit rate + 12/16 bits of block exponent + header ⇒ < 9.5 b/v,
	// an ~6.7× saving over float64.
	if bitsPerValue > 9.5 {
		t.Errorf("8-bit rate produced %.2f bits/value", bitsPerValue)
	}
	if ratio := 64 / bitsPerValue; ratio < 6 {
		t.Errorf("compression ratio %.1fx below expectation", ratio)
	}
}

func TestZeroAndConstantBlocks(t *testing.T) {
	const nx, ny = 16, 16
	zero := make([]float64, nx*ny)
	buf, err := Compress2D(zero, nx, ny, 8)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := Decompress2D(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 0 {
			t.Fatalf("zero field decoded nonzero %g at %d", v, i)
		}
	}
	constant := make([]float64, nx*ny)
	for i := range constant {
		constant[i] = 3.75
	}
	buf, err = Compress2D(constant, nx, ny, 12)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err = Decompress2D(buf)
	if err != nil {
		t.Fatal(err)
	}
	if rel := maxAbsDiff(constant, got) / 3.75; rel > 1e-3 {
		t.Errorf("constant field rel err %g", rel)
	}
}

func TestPartialBlocks(t *testing.T) {
	// Dimensions not divisible by 4 exercise the edge-replication path.
	for _, dims := range [][2]int{{5, 7}, {1, 1}, {4, 9}, {13, 4}, {3, 16}} {
		nx, ny := dims[0], dims[1]
		field := smoothField(nx, ny, 2)
		buf, err := Compress2D(field, nx, ny, 16)
		if err != nil {
			t.Fatalf("%dx%d: %v", nx, ny, err)
		}
		got, gnx, gny, err := Decompress2D(buf)
		if err != nil {
			t.Fatalf("%dx%d: %v", nx, ny, err)
		}
		if gnx != nx || gny != ny || len(got) != nx*ny {
			t.Fatalf("%dx%d: decoded %dx%d", nx, ny, gnx, gny)
		}
		if scale := maxAbs(field); scale > 0 {
			if rel := maxAbsDiff(field, got) / scale; rel > 1e-4 {
				t.Errorf("%dx%d: rel err %g", nx, ny, rel)
			}
		}
	}
}

func TestExtremeDynamicRange(t *testing.T) {
	// Blocks with very large and very small common exponents must both
	// survive (the 12-bit exponent field covers the whole float64 range).
	const nx, ny = 8, 8
	for _, amp := range []float64{1e300, 1e-300, 1e-30, 1e30} {
		field := smoothField(nx, ny, amp)
		buf, err := Compress2D(field, nx, ny, 16)
		if err != nil {
			t.Fatalf("amp %g: %v", amp, err)
		}
		got, _, _, err := Decompress2D(buf)
		if err != nil {
			t.Fatalf("amp %g: %v", amp, err)
		}
		if rel := maxAbsDiff(field, got) / maxAbs(field); rel > 1e-3 {
			t.Errorf("amp %g: rel err %g", amp, rel)
		}
	}
}

func TestErrors(t *testing.T) {
	field := smoothField(8, 8, 1)
	if _, err := Compress2D(field, 8, 8, 1); err == nil {
		t.Error("rate below MinRate accepted")
	}
	if _, err := Compress2D(field, 8, 8, 99); err == nil {
		t.Error("rate above MaxRate accepted")
	}
	if _, err := Compress2D(field, 7, 8, 8); err == nil {
		t.Error("mismatched dimensions accepted")
	}
	if _, err := Compress2D(field, 0, 0, 8); err == nil {
		t.Error("empty field accepted")
	}
	bad := append([]float64(nil), field...)
	bad[3] = math.NaN()
	if _, err := Compress2D(bad, 8, 8, 8); err == nil {
		t.Error("NaN accepted")
	}
	bad[3] = math.Inf(1)
	if _, err := Compress2D(bad, 8, 8, 8); err == nil {
		t.Error("Inf accepted")
	}
	if _, _, _, err := Decompress2D([]byte("junk")); err == nil {
		t.Error("junk buffer accepted")
	}
	buf, err := Compress2D(field, 8, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := Decompress2D(buf[:len(buf)-3]); err == nil {
		t.Error("truncated stream accepted")
	}
	corrupted := append([]byte(nil), buf...)
	corrupted[0] = 'X'
	if _, _, _, err := Decompress2D(corrupted); err == nil {
		t.Error("corrupted magic accepted")
	}
}

func TestLiftTransformNearInverse(t *testing.T) {
	// zfp's lifting transform loses the low bit of some intermediate
	// sums (the >>1 steps), so fwd∘inv reproduces the input to within a
	// couple of integer ulps — negligible at the 2^30 block scale.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 1000; trial++ {
		var p, q [4]int64
		for i := range p {
			p[i] = int64(rng.Int31()) - 1<<30
			q[i] = p[i]
		}
		forwardLift(q[:], 1)
		inverseLift(q[:], 1)
		for i := range p {
			if d := q[i] - p[i]; d > 4 || d < -4 {
				t.Fatalf("trial %d: lift drifted by %d: %v vs %v", trial, d, q, p)
			}
		}
	}
}

func TestNegabinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10000; trial++ {
		x := int64(rng.Uint64()>>30) - 1<<33
		if got := uint2int(int2uint(x)); got != x {
			t.Fatalf("negabinary round trip: %d → %d", x, got)
		}
		// Coefficient-range values stay within intprec planes.
		if u := int2uint(x); u>>intprec != 0 {
			t.Fatalf("negabinary of %d spills past %d planes: %#x", x, intprec, u)
		}
	}
	if int2uint(0) != 0 {
		t.Error("negabinary of 0 not 0")
	}
}

func TestEmbeddedCoderExactBudget(t *testing.T) {
	// Every block must consume exactly 16×rate bits regardless of
	// content, so fixed-rate streams are seekable.
	for _, rate := range []int{2, 8, 20, 28} {
		for _, fill := range []uint64{0, 1, 0xffff, 1 << 33} {
			w := newBitWriter()
			var u [16]uint64
			for i := range u {
				u[i] = fill * uint64(i+1) % (1 << intprec)
			}
			encodeInts(w, 16*rate, &u)
			gotBits := len(w.bytes()) * 8
			want := 16 * rate
			if gotBits < want || gotBits > want+7 {
				t.Fatalf("rate %d fill %d: wrote %d bits, want %d", rate, fill, gotBits, want)
			}
			// And decode consumes the same.
			r := newBitReader(w.bytes())
			var v [16]uint64
			if err := decodeInts(r, 16*rate, &v); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestEmbeddedCoderLosslessAtHighBudget(t *testing.T) {
	// With budget ≥ the full plane count the coder is lossless.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		var u [16]uint64
		for i := range u {
			u[i] = rng.Uint64() & (1<<intprec - 1)
		}
		w := newBitWriter()
		encodeInts(w, 16*intprec+16*intprec, &u) // generous budget
		r := newBitReader(w.bytes())
		var v [16]uint64
		if err := decodeInts(r, 16*intprec+16*intprec, &v); err != nil {
			t.Fatal(err)
		}
		if v != u {
			t.Fatalf("trial %d: lossless round trip failed\n in %v\nout %v", trial, u, v)
		}
	}
}

func TestBitIO(t *testing.T) {
	w := newBitWriter()
	vals := []struct {
		v uint64
		n int
	}{{1, 1}, {0b1011, 4}, {0x7fff, 15}, {0, 3}, {0xdeadbeef, 32}, {1<<34 - 1, 34}}
	for _, c := range vals {
		w.write(c.v, c.n)
	}
	r := newBitReader(w.bytes())
	for i, c := range vals {
		got, err := r.read(c.n)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got != c.v {
			t.Fatalf("read %d: %x want %x", i, got, c.v)
		}
	}
	if _, err := r.read(40); err == nil {
		t.Error("read past end accepted")
	}
	// Reads wider than the accumulator's safe width are a programming
	// error and must panic loudly rather than drop bits silently (the
	// bug class that once desynced multi-block streams).
	defer func() {
		if recover() == nil {
			t.Error("read(64) did not panic")
		}
	}()
	_, _ = newBitReader(make([]byte, 16)).read(64)
}

func TestNoisyFieldDegradesGracefully(t *testing.T) {
	// White noise is the worst case for a decorrelating codec: error
	// stays bounded by the quantisation step even without smoothness.
	const nx, ny = 32, 32
	rng := rand.New(rand.NewSource(2))
	field := make([]float64, nx*ny)
	for i := range field {
		field[i] = rng.NormFloat64()
	}
	buf, err := Compress2D(field, nx, ny, 20)
	if err != nil {
		t.Fatal(err)
	}
	got, _, _, err := Decompress2D(buf)
	if err != nil {
		t.Fatal(err)
	}
	if rel := maxAbsDiff(field, got) / maxAbs(field); rel > 1e-2 {
		t.Errorf("noise at rate 20: rel err %g", rel)
	}
}

func BenchmarkCompress(b *testing.B) {
	const nx, ny = 256, 256
	field := smoothField(nx, ny, 5)
	b.SetBytes(int64(nx * ny * 8))
	for i := 0; i < b.N; i++ {
		if _, err := Compress2D(field, nx, ny, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompress(b *testing.B) {
	const nx, ny = 256, 256
	field := smoothField(nx, ny, 5)
	buf, err := Compress2D(field, nx, ny, 8)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(nx * ny * 8))
	for i := 0; i < b.N; i++ {
		if _, _, _, err := Decompress2D(buf); err != nil {
			b.Fatal(err)
		}
	}
}
