package zfp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestPropertyRoundTripBounded: for any finite field, the round-trip error
// at rate 16 stays within a small multiple of the per-block dynamic range
// times the rate's quantisation step.
func TestPropertyRoundTripBounded(t *testing.T) {
	prop := func(seed int64, amp float64) bool {
		if amp != amp || math.IsInf(amp, 0) {
			return true
		}
		amp = math.Mod(math.Abs(amp), 1e6) + 1e-3
		rng := rand.New(rand.NewSource(seed))
		const nx, ny = 17, 9 // deliberately non-multiple of 4
		field := make([]float64, nx*ny)
		for i := range field {
			field[i] = (rng.Float64()*2 - 1) * amp
		}
		buf, err := Compress2D(field, nx, ny, 16)
		if err != nil {
			t.Logf("compress: %v", err)
			return false
		}
		got, gnx, gny, err := Decompress2D(buf)
		if err != nil {
			t.Logf("decompress: %v", err)
			return false
		}
		if gnx != nx || gny != ny {
			return false
		}
		// White noise at rate 16: error ≤ ~2^-12 of the max magnitude.
		limit := amp * math.Ldexp(1, -10)
		for i := range field {
			if math.Abs(field[i]-got[i]) > limit {
				t.Logf("seed %d amp %g: err %g > %g", seed, amp, math.Abs(field[i]-got[i]), limit)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestPropertyDeterministic: compression is a pure function.
func TestPropertyDeterministic(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		const nx, ny = 8, 8
		field := make([]float64, nx*ny)
		for i := range field {
			field[i] = rng.NormFloat64()
		}
		a, err1 := Compress2D(field, nx, ny, 12)
		b, err2 := Compress2D(field, nx, ny, 12)
		if err1 != nil || err2 != nil || len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
