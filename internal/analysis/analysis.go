// Package analysis provides the solution-fidelity diagnostics behind the
// paper's figures: line cuts through the solution (Figs 1, 3, 4), pairwise
// difference series between precision levels (Figs 1, 4), and the
// mirror-asymmetry diagnostic (Figs 2, 5), plus norms, order-of-magnitude
// separation checks, and CSV/ASCII rendering for the harness output.
package analysis

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is a sampled 1-D signal y(x).
type Series struct {
	Label string
	X, Y  []float64
}

// NewSeries validates and wraps the data.
func NewSeries(label string, x, y []float64) (Series, error) {
	if len(x) != len(y) {
		return Series{}, fmt.Errorf("analysis: series %q: %d x vs %d y", label, len(x), len(y))
	}
	if len(x) == 0 {
		return Series{}, fmt.Errorf("analysis: series %q is empty", label)
	}
	for i := 1; i < len(x); i++ {
		if x[i] <= x[i-1] {
			return Series{}, fmt.Errorf("analysis: series %q: x not strictly increasing at %d", label, i)
		}
	}
	return Series{Label: label, X: x, Y: y}, nil
}

// Len returns the number of samples.
func (s Series) Len() int { return len(s.X) }

// MaxAbs returns max|y|.
func (s Series) MaxAbs() float64 {
	m := 0.0
	for _, y := range s.Y {
		if a := math.Abs(y); a > m {
			m = a
		}
	}
	return m
}

// L2 returns the root-mean-square of y.
func (s Series) L2() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	var sum float64
	for _, y := range s.Y {
		sum += y * y
	}
	return math.Sqrt(sum / float64(len(s.Y)))
}

// At linearly interpolates y at position x (clamped to the domain).
func (s Series) At(x float64) float64 {
	n := len(s.X)
	if x <= s.X[0] {
		return s.Y[0]
	}
	if x >= s.X[n-1] {
		return s.Y[n-1]
	}
	i := sort.SearchFloat64s(s.X, x)
	// s.X[i-1] < x ≤ s.X[i]
	t := (x - s.X[i-1]) / (s.X[i] - s.X[i-1])
	return s.Y[i-1] + t*(s.Y[i]-s.Y[i-1])
}

// Diff returns a − b resampled onto a's grid (the paper's Fig 1/4 bottom
// panels, e.g. "Full − Mixed").
func Diff(a, b Series) Series {
	y := make([]float64, a.Len())
	for i := range y {
		y[i] = a.Y[i] - b.At(a.X[i])
	}
	return Series{Label: a.Label + " - " + b.Label, X: append([]float64(nil), a.X...), Y: y}
}

// Asymmetry mirrors the series about its domain midpoint and returns
// y(center + d) − y(center − d) for d > 0 — the paper's Figs 2 and 5. The
// result's X holds the distances d.
func Asymmetry(s Series) Series {
	n := s.Len()
	center := (s.X[0] + s.X[n-1]) / 2
	half := n / 2
	x := make([]float64, 0, half)
	y := make([]float64, 0, half)
	for i := n - half; i < n; i++ {
		d := s.X[i] - center
		if d <= 0 {
			continue
		}
		x = append(x, d)
		y = append(y, s.Y[i]-s.At(center-d))
	}
	return Series{Label: s.Label + " asymmetry", X: x, Y: y}
}

// OrdersBelow returns log10(scale(reference) / scale(diff)) — how many
// orders of magnitude the difference sits below the solution. The paper's
// fidelity criterion is ≥5–6 orders for CLAMR and ≈2 for SELF.
func OrdersBelow(diff, reference Series) float64 {
	d, r := diff.MaxAbs(), reference.MaxAbs()
	if d == 0 {
		return math.Inf(1)
	}
	if r == 0 {
		return 0
	}
	return math.Log10(r / d)
}

// Bias returns the mean of y — the paper notes the single-precision SELF
// asymmetry is "mostly positive", i.e. biased.
func (s Series) Bias() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	var sum float64
	for _, y := range s.Y {
		sum += y
	}
	return sum / float64(len(s.Y))
}

// PositiveFraction returns the fraction of strictly positive samples.
func (s Series) PositiveFraction() float64 {
	if len(s.Y) == 0 {
		return 0
	}
	pos := 0
	for _, y := range s.Y {
		if y > 0 {
			pos++
		}
	}
	return float64(pos) / float64(len(s.Y))
}

// WriteCSV emits aligned series as CSV: x, then one column per series
// (resampled onto the first series' grid).
func WriteCSV(w io.Writer, series ...Series) error {
	if len(series) == 0 {
		return fmt.Errorf("analysis: no series")
	}
	header := make([]string, 0, len(series)+1)
	header = append(header, "x")
	for _, s := range series {
		header = append(header, s.Label)
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	base := series[0]
	for i, x := range base.X {
		row := make([]string, 0, len(series)+1)
		row = append(row, fmt.Sprintf("%.10g", x))
		row = append(row, fmt.Sprintf("%.10g", base.Y[i]))
		for _, s := range series[1:] {
			row = append(row, fmt.Sprintf("%.10g", s.At(x)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// ASCIIPlot renders the series as a rows×cols character plot for terminal
// figures — one glyph per series, with y range annotations.
func ASCIIPlot(rows, cols int, series ...Series) string {
	if rows < 3 {
		rows = 3
	}
	if cols < 16 {
		cols = 16
	}
	glyphs := []byte{'*', '+', 'o', 'x', '#', '@'}
	yMin, yMax := math.Inf(1), math.Inf(-1)
	xMin, xMax := math.Inf(1), math.Inf(-1)
	for _, s := range series {
		for i := range s.X {
			if s.Y[i] < yMin {
				yMin = s.Y[i]
			}
			if s.Y[i] > yMax {
				yMax = s.Y[i]
			}
		}
		if s.X[0] < xMin {
			xMin = s.X[0]
		}
		if s.X[len(s.X)-1] > xMax {
			xMax = s.X[len(s.X)-1]
		}
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	for si, s := range series {
		g := glyphs[si%len(glyphs)]
		for c := 0; c < cols; c++ {
			x := xMin + (xMax-xMin)*float64(c)/float64(cols-1)
			y := s.At(x)
			r := int(math.Round((yMax - y) / (yMax - yMin) * float64(rows-1)))
			if r < 0 {
				r = 0
			}
			if r >= rows {
				r = rows - 1
			}
			grid[r][c] = g
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%11.3e ┐\n", yMax)
	for _, row := range grid {
		b.WriteString("            │")
		b.Write(row)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%11.3e ┘\n", yMin)
	legend := make([]string, 0, len(series))
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", glyphs[si%len(glyphs)], s.Label))
	}
	b.WriteString("            " + strings.Join(legend, "   ") + "\n")
	return b.String()
}

// shadeRamp maps normalised intensity to glyphs, light to dark.
const shadeRamp = " .:-=+*#%@"

// Heatmap renders a row-major nx×ny field as a rows×cols ASCII density
// plot (row 0 of the field at the bottom, matching plot convention), with
// the value range annotated. NaN cells render as '?'.
func Heatmap(field []float64, nx, ny, rows, cols int) (string, error) {
	if len(field) != nx*ny || nx <= 0 || ny <= 0 {
		return "", fmt.Errorf("analysis: heatmap %dx%d does not match %d values", nx, ny, len(field))
	}
	if rows < 2 {
		rows = 2
	}
	if cols < 4 {
		cols = 4
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range field {
		if math.IsNaN(v) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if !(hi > lo) {
		hi = lo + 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "max %.4g\n", hi)
	for r := 0; r < rows; r++ {
		// Top output row shows the top of the field.
		j := (rows - 1 - r) * ny / rows
		b.WriteString("  ")
		for c := 0; c < cols; c++ {
			i := c * nx / cols
			v := field[j*nx+i]
			if math.IsNaN(v) {
				b.WriteByte('?')
				continue
			}
			t := (v - lo) / (hi - lo)
			idx := int(t * float64(len(shadeRamp)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(shadeRamp) {
				idx = len(shadeRamp) - 1
			}
			b.WriteByte(shadeRamp[idx])
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "min %.4g\n", lo)
	return b.String(), nil
}
