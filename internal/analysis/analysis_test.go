package analysis

import (
	"math"
	"strings"
	"testing"
)

func lin(n int, f func(x float64) float64) Series {
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i) / float64(n-1)
		y[i] = f(x[i])
	}
	s, _ := NewSeries("s", x, y)
	return s
}

func TestNewSeriesValidation(t *testing.T) {
	if _, err := NewSeries("a", []float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewSeries("a", nil, nil); err == nil {
		t.Error("empty series accepted")
	}
	if _, err := NewSeries("a", []float64{1, 1}, []float64{0, 0}); err == nil {
		t.Error("non-increasing x accepted")
	}
	s, err := NewSeries("ok", []float64{0, 1}, []float64{2, 3})
	if err != nil || s.Len() != 2 {
		t.Errorf("valid series rejected: %v", err)
	}
}

func TestNormsAndAt(t *testing.T) {
	s := lin(101, func(x float64) float64 { return 2 * x })
	if got := s.MaxAbs(); got != 2 {
		t.Errorf("MaxAbs = %g", got)
	}
	// RMS of 2x over [0,1] ≈ 2/√3.
	if got := s.L2(); math.Abs(got-2/math.Sqrt(3)) > 0.02 {
		t.Errorf("L2 = %g", got)
	}
	if got := s.At(0.25); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("At(0.25) = %g", got)
	}
	// Clamping outside the domain.
	if s.At(-1) != 0 || s.At(2) != 2 {
		t.Error("At did not clamp")
	}
	// Exact grid point.
	if got := s.At(s.X[50]); math.Abs(got-s.Y[50]) > 1e-12 {
		t.Errorf("At(grid) = %g want %g", got, s.Y[50])
	}
}

func TestDiff(t *testing.T) {
	a := lin(64, func(x float64) float64 { return math.Sin(6 * x) })
	b := lin(64, func(x float64) float64 { return math.Sin(6*x) + 1e-6 })
	d := Diff(a, b)
	if d.Len() != a.Len() {
		t.Fatalf("diff length %d", d.Len())
	}
	for i := range d.Y {
		if math.Abs(d.Y[i]+1e-6) > 1e-12 {
			t.Fatalf("diff[%d] = %g, want -1e-6", i, d.Y[i])
		}
	}
	if !strings.Contains(d.Label, "-") {
		t.Error("diff label not descriptive")
	}
	// Different grids resample.
	c := lin(37, func(x float64) float64 { return math.Sin(6 * x) })
	d2 := Diff(a, c)
	if d2.MaxAbs() > 1e-2 {
		t.Errorf("cross-grid diff too large: %g", d2.MaxAbs())
	}
}

func TestAsymmetry(t *testing.T) {
	// A symmetric function has zero asymmetry.
	sym := lin(101, func(x float64) float64 { return math.Cos(8 * (x - 0.5)) })
	a := Asymmetry(sym)
	if a.Len() == 0 {
		t.Fatal("no asymmetry samples")
	}
	if a.MaxAbs() > 1e-12 {
		t.Errorf("symmetric series has asymmetry %g", a.MaxAbs())
	}
	// An antisymmetric perturbation shows up at twice its amplitude.
	pert := lin(101, func(x float64) float64 {
		return math.Cos(8*(x-0.5)) + 1e-5*(x-0.5)
	})
	ap := Asymmetry(pert)
	if ap.MaxAbs() < 5e-6 || ap.MaxAbs() > 2e-5 {
		t.Errorf("asymmetry amplitude %g", ap.MaxAbs())
	}
	// Distances are positive and increasing.
	for i := range ap.X {
		if ap.X[i] <= 0 {
			t.Fatal("non-positive distance")
		}
		if i > 0 && ap.X[i] <= ap.X[i-1] {
			t.Fatal("distances not increasing")
		}
	}
}

func TestOrdersBelow(t *testing.T) {
	ref := lin(11, func(x float64) float64 { return 10 })
	diff := lin(11, func(x float64) float64 { return 1e-5 })
	if got := OrdersBelow(diff, ref); math.Abs(got-6) > 0.01 {
		t.Errorf("OrdersBelow = %g, want 6", got)
	}
	zero := lin(11, func(x float64) float64 { return 0 })
	if !math.IsInf(OrdersBelow(zero, ref), 1) {
		t.Error("zero diff not +Inf orders below")
	}
	if OrdersBelow(diff, zero) != 0 {
		t.Error("zero reference not 0 orders")
	}
}

func TestBiasAndPositiveFraction(t *testing.T) {
	pos := lin(50, func(x float64) float64 { return 1 + x })
	if pos.PositiveFraction() != 1 {
		t.Error("all-positive series fraction != 1")
	}
	if pos.Bias() <= 0 {
		t.Error("positive series has non-positive bias")
	}
	mixed := lin(51, func(x float64) float64 { return x - 0.5 })
	f := mixed.PositiveFraction()
	if f < 0.45 || f > 0.55 {
		t.Errorf("balanced series fraction %g", f)
	}
	if math.Abs(mixed.Bias()) > 1e-12 {
		t.Errorf("balanced series bias %g", mixed.Bias())
	}
	var empty Series
	if empty.Bias() != 0 || empty.PositiveFraction() != 0 {
		t.Error("empty series bias/fraction nonzero")
	}
}

func TestWriteCSV(t *testing.T) {
	a := lin(5, func(x float64) float64 { return x })
	b := lin(5, func(x float64) float64 { return 2 * x })
	a.Label, b.Label = "one", "two"
	var sb strings.Builder
	if err := WriteCSV(&sb, a, b); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if lines[0] != "x,one,two" {
		t.Errorf("header %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "0,0,0") {
		t.Errorf("first row %q", lines[1])
	}
	if err := WriteCSV(&sb); err == nil {
		t.Error("empty CSV accepted")
	}
}

func TestASCIIPlot(t *testing.T) {
	s := lin(64, func(x float64) float64 { return math.Sin(2 * math.Pi * x) })
	s.Label = "sine"
	out := ASCIIPlot(12, 60, s)
	if !strings.Contains(out, "sine") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no data glyphs")
	}
	if len(strings.Split(out, "\n")) < 14 {
		t.Error("plot too short")
	}
	// Degenerate sizes are clamped, flat series don't divide by zero.
	flat := lin(4, func(x float64) float64 { return 1 })
	_ = ASCIIPlot(1, 4, flat)
}

func TestHeatmap(t *testing.T) {
	const nx, ny = 16, 12
	field := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			field[j*nx+i] = float64(j) // vertical gradient
		}
	}
	out, err := Heatmap(field, nx, ny, 6, 16)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 8 { // max + 6 rows + min
		t.Fatalf("heatmap has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "max") || !strings.Contains(lines[7], "min") {
		t.Error("range annotations missing")
	}
	// Top row (high j) must be darker than the bottom row.
	dark := strings.Count(lines[1], "@") + strings.Count(lines[1], "%")
	light := strings.Count(lines[6], " ")
	if dark == 0 || light == 0 {
		t.Errorf("gradient not rendered: top %q bottom %q", lines[1], lines[6])
	}
	// NaN cells render as '?'.
	field[5*nx+3] = math.NaN()
	out, err = Heatmap(field, nx, ny, 12, 16)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "?") {
		t.Error("NaN cell not marked")
	}
	// Errors.
	if _, err := Heatmap(field[:5], nx, ny, 4, 8); err == nil {
		t.Error("mismatched field accepted")
	}
	// Constant field must not divide by zero.
	flat := make([]float64, 4)
	if _, err := Heatmap(flat, 2, 2, 2, 4); err != nil {
		t.Errorf("flat field: %v", err)
	}
}
