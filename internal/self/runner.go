package self

import (
	"fmt"
	"io"

	"repro/internal/metrics"
	"repro/internal/precision"
)

// Runner is the precision-erased interface over Solver instantiations.
// The paper's SELF study compares Single (Min) and Double (Full); Mixed and
// Half are this repository's ablation extensions ("SELF does not have a
// mixed-precision option currently" — §VI).
type Runner interface {
	Step() error
	Run(n int) error
	Time() float64
	StepCount() int
	NodeCount() int
	DegreesOfFreedom() int
	StableDT() float64
	Sample(f Field, x, y, z float64) (float64, error)
	LineX(f Field, n int) (xs, vals []float64, err error)
	TotalMass() float64
	MaxAbsW() float64
	// CheckHealth runs the numerical sentinels (finite state, positive
	// density); a failure wraps precision.ErrNumericalFailure.
	CheckHealth() error
	Counters() metrics.Counters
	Timer() *metrics.Timer
	StateBytes() uint64
	// WriteCheckpoint serialises the conserved state at storage precision.
	WriteCheckpoint(w io.Writer) (int64, error)
}

// New constructs a Runner at the given precision mode.
func New(mode precision.Mode, cfg Config) (Runner, error) {
	switch mode {
	case precision.Min:
		return NewSolver[float32, float32](cfg)
	case precision.Mixed:
		return NewSolver[float32, float64](cfg)
	case precision.Full:
		return NewSolver[float64, float64](cfg)
	case precision.Half:
		// Half storage is too narrow for absolute ρθ ≈ 300·ρ and p ≈ 1e5
		// without rescaling; the CLAMR twin carries the half-precision
		// ablation instead.
		return nil, fmt.Errorf("self: half precision storage is not supported (dynamic range)")
	default:
		return nil, fmt.Errorf("self: unknown precision mode %v", mode)
	}
}
