package self

import (
	"fmt"
	"io"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/reduce"
	"repro/internal/spectral"
)

// Field identifies a diagnostic quantity for sampling.
type Field int

const (
	// FieldDensity is the full density ρ.
	FieldDensity Field = iota
	// FieldDensityAnomaly is ρ − ρ̄(z), the quantity of the paper's Fig 4.
	FieldDensityAnomaly
	// FieldTheta is the potential temperature θ = ρθ/ρ.
	FieldTheta
	// FieldThetaAnomaly is θ − θ0.
	FieldThetaAnomaly
	// FieldW is the vertical velocity.
	FieldW
)

// rhoBarAt evaluates the analytic hydrostatic density at height z.
func rhoBarAt(z float64) float64 {
	pi := 1 - Grav*z/(Cp*Theta0)
	return P00 / (RGas * Theta0) * math.Pow(pi, Cv/RGas)
}

// Sample interpolates the field at physical point (x, y, z) using the full
// tensor-product Lagrange basis of the containing element (float64
// arithmetic; sampling is diagnostics, not simulation).
func (s *Solver[S, C]) Sample(f Field, x, y, z float64) (float64, error) {
	L := s.cfg.Domain
	if x < 0 || x > L || y < 0 || y > L || z < 0 || z > L {
		return 0, fmt.Errorf("self: sample point (%g,%g,%g) outside [0,%g]³", x, y, z, L)
	}
	locate := func(c float64) (int, float64) {
		e := int(c / s.elemDX)
		if e >= s.ne {
			e = s.ne - 1
		}
		xi := 2*(c/s.elemDX-float64(e)) - 1
		return e, xi
	}
	ex, xiX := locate(x)
	ey, xiY := locate(y)
	ez, xiZ := locate(z)

	lx := lagrangeRow(s.nodes, xiX)
	ly := lagrangeRow(s.nodes, xiY)
	lz := lagrangeRow(s.nodes, xiZ)

	base := s.elemIndex(ex, ey, ez) * s.np * s.np * s.np
	interp := func(arr []S) float64 {
		var sum float64
		for k := 0; k < s.np; k++ {
			var planeSum float64
			for j := 0; j < s.np; j++ {
				var lineSum float64
				row := base + j*s.np + k*s.np*s.np
				for i := 0; i < s.np; i++ {
					lineSum += lx[i] * float64(arr[row+i])
				}
				planeSum += ly[j] * lineSum
			}
			sum += lz[k] * planeSum
		}
		return sum
	}

	switch f {
	case FieldDensity:
		return interp(s.q[iRho]), nil
	case FieldDensityAnomaly:
		return interp(s.q[iRho]) - rhoBarAt(z), nil
	case FieldTheta:
		rho := interp(s.q[iRho])
		return interp(s.q[iRhoT]) / rho, nil
	case FieldThetaAnomaly:
		rho := interp(s.q[iRho])
		return interp(s.q[iRhoT])/rho - Theta0, nil
	case FieldW:
		rho := interp(s.q[iRho])
		return interp(s.q[iRhoW]) / rho, nil
	default:
		return 0, fmt.Errorf("self: unknown field %d", f)
	}
}

// lagrangeRow evaluates all Lagrange cardinal functions at ξ.
func lagrangeRow(nodes []float64, xi float64) []float64 {
	im := spectral.InterpolationMatrix(nodes, []float64{xi})
	return im.Data
}

// LineX samples the field at n points along the x line through the bubble
// center (y = center_y, z = center_z), returning positions and values.
func (s *Solver[S, C]) LineX(f Field, n int) (xs, vals []float64, err error) {
	xs = make([]float64, n)
	vals = make([]float64, n)
	y := s.cfg.BubbleCenter[1]
	z := s.cfg.BubbleCenter[2]
	L := s.cfg.Domain
	for i := 0; i < n; i++ {
		x := (float64(i) + 0.5) / float64(n) * L
		v, err := s.Sample(f, x, y, z)
		if err != nil {
			return nil, nil, err
		}
		xs[i] = x
		vals[i] = v
	}
	return xs, vals, nil
}

// TotalMass integrates ρ over the domain with GLL quadrature and a
// reproducible sum (the paper's §III.C discipline for global reductions).
func (s *Solver[S, C]) TotalMass() float64 {
	np := s.np
	np3 := np * np * np
	scale := math.Pow(s.elemDX/2, 3)
	terms := make([]float64, 0, s.nNodes)
	for e := 0; e < s.ne*s.ne*s.ne; e++ {
		base := e * np3
		for k := 0; k < np; k++ {
			for j := 0; j < np; j++ {
				for i := 0; i < np; i++ {
					w := s.weights[i] * s.weights[j] * s.weights[k] * scale
					terms = append(terms, w*float64(s.q[iRho][base+nodeIndex(np, i, j, k)]))
				}
			}
		}
	}
	return reduce.SumReproducible(terms)
}

// TotalRhoTheta integrates ρθ over the domain — conserved exactly by the
// equations (it is advected like mass), so its drift isolates integration
// and precision error the same way the mass audit does.
func (s *Solver[S, C]) TotalRhoTheta() float64 {
	np := s.np
	np3 := np * np * np
	scale := math.Pow(s.elemDX/2, 3)
	terms := make([]float64, 0, s.nNodes)
	for e := 0; e < s.ne*s.ne*s.ne; e++ {
		base := e * np3
		for k := 0; k < np; k++ {
			for j := 0; j < np; j++ {
				for i := 0; i < np; i++ {
					w := s.weights[i] * s.weights[j] * s.weights[k] * scale
					terms = append(terms, w*float64(s.q[iRhoT][base+nodeIndex(np, i, j, k)]))
				}
			}
		}
	}
	return reduce.SumReproducible(terms)
}

// WriteFieldDump writes a compressed analysis dump: the density anomaly on
// the horizontal plane through the bubble center, rasterized to nx×ny and
// encoded at `rate` bits per value.
func (s *Solver[S, C]) WriteFieldDump(w io.Writer, nx, ny, rate int) (int64, error) {
	z := s.cfg.BubbleCenter[2]
	field := make([]float64, nx*ny)
	for j := 0; j < ny; j++ {
		y := (float64(j) + 0.5) / float64(ny) * s.cfg.Domain
		for i := 0; i < nx; i++ {
			x := (float64(i) + 0.5) / float64(nx) * s.cfg.Domain
			v, err := s.Sample(FieldDensityAnomaly, x, y, z)
			if err != nil {
				return 0, fmt.Errorf("self: dump: %w", err)
			}
			field[j*nx+i] = v
		}
	}
	cw := checkpoint.NewWriter(w, "self-dump", s.step, s.time)
	if err := cw.AddF64Compressed("density_anomaly", field, nx, ny, rate); err != nil {
		return 0, fmt.Errorf("self: dump: %w", err)
	}
	n, err := cw.Flush()
	if err != nil {
		return n, err
	}
	s.counters.StoreBytes += uint64(n)
	return n, nil
}

// MaxAbsW returns the maximum absolute vertical velocity — a convenient
// scalar to watch the bubble rise.
func (s *Solver[S, C]) MaxAbsW() float64 {
	maxW := 0.0
	for n := 0; n < s.nNodes; n++ {
		w := math.Abs(float64(s.q[iRhoW][n]) / float64(s.q[iRho][n]))
		if w > maxW {
			maxW = w
		}
	}
	return maxW
}
