package self

import (
	"testing"
)

// TestParallelBitwiseIdentical verifies that every pass of the solver
// (pressure, RHS, RK update, filter) produces bit-identical state under
// any worker count — the guarantee cfg.Workers documents.
func TestParallelBitwiseIdentical(t *testing.T) {
	run := func(workers int) []float64 {
		cfg := smallConfig()
		cfg.Workers = workers
		s, err := NewSolver[float64, float64](cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(15); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, s.nNodes)
		for n := 0; n < s.nNodes; n++ {
			out[n] = float64(s.q[iRhoW][n])
		}
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 3, 7} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: node %d differs: %x vs %x", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestParallelSinglePrecision(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 4
	s, err := NewSolver[float32, float32](cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if s.MaxAbsW() <= 0 {
		t.Error("parallel single-precision run produced no motion")
	}
}

func BenchmarkParallelRHS(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "w1", 4: "w4", 8: "w8"}[workers], func(b *testing.B) {
			cfg := Config{Elements: 5, Order: 6, Workers: workers}
			s, err := NewSolver[float64, float64](cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
