package self

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"runtime"
	"testing"
)

// TestParallelBitwiseIdentical verifies that every pass of the solver
// (pressure, RHS, RK update, filter) produces bit-identical state under
// any worker count — the guarantee cfg.Workers documents.
func TestParallelBitwiseIdentical(t *testing.T) {
	run := func(workers int) []float64 {
		cfg := smallConfig()
		cfg.Workers = workers
		s, err := NewSolver[float64, float64](cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(15); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, s.nNodes)
		for n := 0; n < s.nNodes; n++ {
			out[n] = float64(s.q[iRhoW][n])
		}
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 3, 7} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: node %d differs: %x vs %x", workers, i, got[i], ref[i])
			}
		}
	}
}

// selfStateHash runs a short simulation and digests every bit of every
// conserved variable.
func selfStateHash(t *testing.T, workers int) [sha256.Size]byte {
	t.Helper()
	cfg := smallConfig()
	cfg.Workers = workers
	s, err := NewSolver[float64, float64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(15); err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	var buf [8]byte
	for v := 0; v < nVars; v++ {
		for n := 0; n < s.nNodes; n++ {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(float64(s.q[v][n])))
			h.Write(buf[:])
		}
	}
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}

// TestParallelStateHashIdentical is the regression form of the determinism
// contract: a sha256 over all five conserved variables must be
// byte-identical at every worker count, including counts above the pool
// size and above GOMAXPROCS.
func TestParallelStateHashIdentical(t *testing.T) {
	ref := selfStateHash(t, 1)
	for _, workers := range []int{2, 3, 7, runtime.GOMAXPROCS(0)} {
		if got := selfStateHash(t, workers); got != ref {
			t.Errorf("workers=%d state hash %x, workers=1 %x", workers, got, ref)
		}
	}
}

// TestSELFStepZeroAlloc asserts the tentpole property: after warm-up the
// RK3 step (3 RHS evaluations + update + filter) allocates nothing, serial
// and pooled.
func TestSELFStepZeroAlloc(t *testing.T) {
	for _, workers := range []int{1, 4} {
		name := map[int]string{1: "serial", 4: "pooled"}[workers]
		t.Run(name, func(t *testing.T) {
			cfg := smallConfig()
			cfg.Workers = workers
			s, err := NewSolver[float64, float64](cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Run(2); err != nil { // warm pool and timer cells
				t.Fatal(err)
			}
			if allocs := testing.AllocsPerRun(10, func() {
				if err := s.Step(); err != nil {
					t.Fatal(err)
				}
			}); allocs != 0 {
				t.Errorf("steady-state Step allocated %v objects per call", allocs)
			}
		})
	}
}

// BenchmarkSELFStep measures the steady-state RK3 step; allocs/op is the
// zero-allocation acceptance number.
func BenchmarkSELFStep(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(map[int]string{1: "w1", 4: "w4"}[workers], func(b *testing.B) {
			cfg := Config{Elements: 5, Order: 6, Workers: workers}
			s, err := NewSolver[float64, float64](cfg)
			if err != nil {
				b.Fatal(err)
			}
			if err := s.Run(2); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestParallelSinglePrecision(t *testing.T) {
	cfg := smallConfig()
	cfg.Workers = 4
	s, err := NewSolver[float32, float32](cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if s.MaxAbsW() <= 0 {
		t.Error("parallel single-precision run produced no motion")
	}
}

func BenchmarkParallelRHS(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(map[int]string{1: "w1", 4: "w4", 8: "w8"}[workers], func(b *testing.B) {
			cfg := Config{Elements: 5, Order: 6, Workers: workers}
			s, err := NewSolver[float64, float64](cfg)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
