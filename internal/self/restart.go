package self

import (
	"fmt"
	"io"

	"repro/internal/checkpoint"
	"repro/internal/precision"
)

// stateNames are the checkpoint array names, indexed by variable.
var stateNames = [nVars]string{"rho", "rhou", "rhov", "rhow", "rhotheta"}

// WriteCheckpoint serialises the conserved state at storage precision plus
// the grid geometry needed to validate a restart.
func (s *Solver[S, C]) WriteCheckpoint(w io.Writer) (int64, error) {
	cw := checkpoint.NewWriter(w, "self", s.step, s.time)
	cw.AddI32("geometry", []int32{int32(s.ne), int32(s.cfg.Order)})
	for v := 0; v < nVars; v++ {
		switch q := any(s.q[v]).(type) {
		case []float32:
			cw.AddF32(stateNames[v], q)
		case []float64:
			cw.AddF64(stateNames[v], q)
		}
	}
	n, err := cw.Flush()
	if err != nil {
		return n, err
	}
	s.counters.StoreBytes += uint64(n)
	return n, nil
}

// Load restores a Runner from a checkpoint written by WriteCheckpoint. The
// configuration must describe the same grid (element count and order);
// state converts to the requested mode's storage width. Restarting in the
// writing mode resumes bit-exactly.
func Load(mode precision.Mode, cfg Config, r io.Reader) (Runner, error) {
	ck, err := checkpoint.Read(r)
	if err != nil {
		return nil, fmt.Errorf("self: restart: %w", err)
	}
	if ck.Header.App != "self" {
		return nil, fmt.Errorf("self: restart: checkpoint is for app %q", ck.Header.App)
	}
	switch mode {
	case precision.Min:
		return loadSolver[float32, float32](cfg, ck)
	case precision.Mixed:
		return loadSolver[float32, float64](cfg, ck)
	case precision.Full:
		return loadSolver[float64, float64](cfg, ck)
	default:
		return nil, fmt.Errorf("self: restart: unsupported mode %v", mode)
	}
}

func loadSolver[S, C precision.Real](cfg Config, ck *checkpoint.Checkpoint) (*Solver[S, C], error) {
	geo, err := ck.Int32Array("geometry")
	if err != nil {
		return nil, fmt.Errorf("self: restart: %w", err)
	}
	if len(geo) != 2 {
		return nil, fmt.Errorf("self: restart: malformed geometry record")
	}
	if cfg.Elements == 0 {
		cfg.Elements = int(geo[0])
	}
	if cfg.Order == 0 {
		cfg.Order = int(geo[1])
	}
	if cfg.Elements != int(geo[0]) || cfg.Order != int(geo[1]) {
		return nil, fmt.Errorf("self: restart: config %d³@%d does not match checkpoint %d³@%d",
			cfg.Elements, cfg.Order, geo[0], geo[1])
	}
	s, err := NewSolver[S, C](cfg)
	if err != nil {
		return nil, err
	}
	for v := 0; v < nVars; v++ {
		xs, err := ck.Float64Array(stateNames[v])
		if err != nil {
			return nil, fmt.Errorf("self: restart: %w", err)
		}
		if len(xs) != s.nNodes {
			return nil, fmt.Errorf("self: restart: array %q has %d values for %d nodes",
				stateNames[v], len(xs), s.nNodes)
		}
		for i, x := range xs {
			s.q[v][i] = S(x)
		}
	}
	// Clear the RK register and counters accumulated by NewSolver's IC.
	for v := 0; v < nVars; v++ {
		clear(s.g[v])
	}
	s.time = ck.Header.Time
	s.step = ck.Header.Step
	return s, nil
}
