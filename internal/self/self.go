// Package self implements a 3-D compressible-flow spectral element solver
// modeled on the Spectral Element Libraries in Fortran (SELF), the second
// mini-app of the paper. It solves the compressible Euler equations with
// gravity in the density/momentum/potential-temperature formulation used by
// non-hydrostatic atmospheric SEM codes (the paper's cited Abdi & Giraldo
// configuration), stabilised by a modal cutoff filter — the thermal "warm
// blob rising in a neutrally buoyant fluid" experiment of §V.B.
//
// Discretisation: discontinuous Galerkin spectral elements (DGSEM, strong
// form) on Gauss–Lobatto nodes over a structured hex mesh, Rusanov face
// fluxes, reflective walls, and Williamson's low-storage 3rd-order
// Runge–Kutta in time — a 3rd-order Runge-Kutta integrator as in the paper.
//
// Like the CLAMR twin, the solver is generic over storage type S (the big
// state arrays) and compute type C (local calculations). The paper's SELF
// comparison is Single = (f32,f32) vs Double = (f64,f64); the extra modes
// exist for the precision ablation.
package self

import (
	"fmt"
	"math"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/par"
	"repro/internal/precision"
	"repro/internal/spectral"
)

// Physical constants (dry air, SI).
const (
	RGas   = 287.0  // gas constant J/(kg·K)
	Cp     = 1004.5 // specific heat at constant pressure
	Cv     = Cp - RGas
	Gamma  = Cp / Cv
	P00    = 1.0e5 // reference surface pressure, Pa
	Grav   = 9.81
	Theta0 = 300.0 // neutral background potential temperature, K
)

// MathMode selects how single-precision transcendental functions are
// generated — the paper's Table IV compiler effect.
type MathMode int

const (
	// MathNative evaluates transcendentals at the compute precision
	// (single-precision kernels for float32) — the Intel-compiler profile.
	MathNative MathMode = iota
	// MathPromoted promotes float32 operands through the float64 libm and
	// converts back — the GNU-compiler profile the paper caught making
	// single precision slower than double.
	MathPromoted
)

// String names the mode after the compiler whose behaviour it models.
func (m MathMode) String() string {
	if m == MathPromoted {
		return "gnu-promoted"
	}
	return "intel-native"
}

// Config describes a SELF run.
type Config struct {
	// Elements is the element count per direction (paper: 20).
	Elements int
	// Order is the polynomial order N; each element has (N+1)³ nodes
	// (paper: 7, i.e. 8×8×8 quadrature points).
	Order int
	// Domain is the cube edge length in metres (default 1000).
	Domain float64
	// DT is the timestep; 0 selects CFL·(stable estimate).
	DT float64
	// CFL for the automatic timestep (default 0.3).
	CFL float64
	// FilterInterval applies the modal filter every k steps (default 1;
	// negative disables).
	FilterInterval int
	// FilterCutoff is the last untouched Legendre mode (default 2N/3).
	FilterCutoff int
	// FilterAlpha and FilterOrder shape the exponential damping
	// (defaults 16 and 4).
	FilterAlpha float64
	FilterOrder int
	// MathMode selects the transcendental code-generation profile.
	MathMode MathMode
	// Workers runs the RHS, update and filter passes fork-join parallel
	// over this many goroutines (≤1 = serial). All passes write disjoint
	// ranges, so results are bit-identical at any worker count.
	Workers int
	// Bubble parameters: potential-temperature amplitude (K), radius (m)
	// and center; defaults 0.5 K, Domain/4, (L/2, L/2, 0.35L).
	BubbleAmplitude float64
	BubbleRadius    float64
	BubbleCenter    [3]float64
}

func (c *Config) setDefaults() error {
	if c.Elements < 1 {
		return fmt.Errorf("self: element count %d < 1", c.Elements)
	}
	if c.Order < 1 || c.Order > 16 {
		return fmt.Errorf("self: polynomial order %d outside [1,16]", c.Order)
	}
	if c.Domain == 0 {
		c.Domain = 1000
	}
	if c.Domain <= 0 {
		return fmt.Errorf("self: domain %g must be positive", c.Domain)
	}
	if c.CFL == 0 {
		c.CFL = 0.3
	}
	if c.FilterInterval == 0 {
		c.FilterInterval = 1
	}
	if c.FilterCutoff == 0 {
		c.FilterCutoff = 2 * c.Order / 3
	}
	if c.FilterAlpha == 0 {
		c.FilterAlpha = 16
	}
	if c.FilterOrder == 0 {
		c.FilterOrder = 4
	}
	if c.BubbleAmplitude == 0 {
		c.BubbleAmplitude = 0.5
	}
	if c.BubbleRadius == 0 {
		c.BubbleRadius = c.Domain / 4
	}
	if c.BubbleCenter == [3]float64{} {
		c.BubbleCenter = [3]float64{c.Domain / 2, c.Domain / 2, 0.35 * c.Domain}
	}
	return nil
}

// Variable indices into the conserved state.
const (
	iRho  = 0 // density
	iRhoU = 1 // x-momentum
	iRhoV = 2 // y-momentum
	iRhoW = 3 // z-momentum
	iRhoT = 4 // density × potential temperature
	nVars = 5
)

// Solver integrates the compressible equations with storage precision S and
// compute precision C.
type Solver[S, C precision.Real] struct {
	cfg Config

	ne, np  int // elements per direction, nodes per direction (Order+1)
	nNodes  int // total nodes = ne³ · np³
	elemDX  float64
	jacoby  C // 2/elemDX — the 1-D mapping Jacobian factor
	nodes   []float64
	weights []float64
	dmat    []C // (np × np) derivative matrix, row-major
	filter  []C // (np × np) modal filter matrix, row-major

	// Conserved state, one array per variable ("large physical state").
	q [nVars][]S
	// Low-storage RK register and RHS at compute precision.
	g   [nVars][]C
	rhs [nVars][]C
	// Background hydrostatic profiles per global z-level (ne·np entries).
	rhoBar, pBar, exner []C
	zLevels             []float64
	// Scratch: global perturbation pressure, plus per-chunk element-local
	// buffers — flux staging (nVars × np³) for the RHS and a pair of np³
	// tensors for the filter — indexed by the dispatch chunk, so parallel
	// sweeps reuse persistent scratch instead of allocating per dispatch.
	scrP        []C
	elemScratch [][]C
	filterBuf   [][]C
	filterOut   [][]C
	// Transcendental dispatch (MathMode × C width).
	powFn    func(x, y C) C
	powConvs uint64 // conversions per pow call (promoted f32 profile)

	// Parallel runtime: the shared persistent pool and kernels prebound
	// once at construction, so the steady-state step loop dispatches
	// without allocating. The RK stage coefficients travel through
	// rkA/rkB/rkDT.
	pool           *par.Pool
	rkA, rkB, rkDT C
	parPressure    func(lo, hi int)
	parClearRHS    func(lo, hi int)
	parRK          func(lo, hi int)
	parElems       func(chunk, lo, hi int)
	parFilter      func(chunk, lo, hi int)

	time     float64
	step     int
	counters metrics.Counters
	timer    *metrics.Timer
	alloc    *metrics.AllocTracker

	// Preresolved timer buckets (allocation-free phase timing).
	phRHS, phRK, phFilter metrics.PhaseCell
	// Preresolved per-step duration histogram in the process-wide obs
	// registry (allocation-free Observe; served at precisiond's /metrics).
	stepDur *obs.Histogram
}

// NewSolver builds the solver, background state and thermal-bubble initial
// condition.
func NewSolver[S, C precision.Real](cfg Config) (*Solver[S, C], error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	nodes, weights, err := spectral.GaussLobatto(cfg.Order)
	if err != nil {
		return nil, fmt.Errorf("self: %w", err)
	}
	np := cfg.Order + 1
	ne := cfg.Elements
	s := &Solver[S, C]{
		cfg:     cfg,
		ne:      ne,
		np:      np,
		nNodes:  ne * ne * ne * np * np * np,
		elemDX:  cfg.Domain / float64(ne),
		nodes:   nodes,
		weights: weights,
		timer:   metrics.NewTimer(),
		alloc:   metrics.NewAllocTracker(),
	}
	s.jacoby = C(2 / s.elemDX)

	d := spectral.DerivativeMatrix(nodes)
	s.dmat = toC[C](d.Data)
	if cfg.FilterInterval > 0 {
		f, err := spectral.CutoffFilter(nodes, cfg.FilterCutoff, cfg.FilterAlpha, cfg.FilterOrder)
		if err != nil {
			return nil, fmt.Errorf("self: %w", err)
		}
		s.filter = toC[C](f.Data)
	}
	s.pool = par.Default()
	s.phRHS = s.timer.Cell("rhs")
	s.phRK = s.timer.Cell("rk")
	s.phFilter = s.timer.Cell("filter")
	var sv S
	var cv C
	modeLabel := "min"
	switch {
	case sizeofReal(sv) == 8:
		modeLabel = "full"
	case sizeofReal(cv) == 8:
		modeLabel = "mixed"
	}
	s.stepDur = obs.StepDuration("self", modeLabel)
	s.setupMath()
	s.setupBackground()
	s.allocate()
	s.bindKernels()
	s.applyIC()
	return s, nil
}

// chunks returns the dispatch chunk count the Workers option selects (the
// determinism-relevant number; pool size is independent of it).
func (s *Solver[S, C]) chunks() int {
	if s.cfg.Workers > 1 {
		return s.cfg.Workers
	}
	return 1
}

func toC[C precision.Real](xs []float64) []C {
	out := make([]C, len(xs))
	for i, x := range xs {
		out[i] = C(x)
	}
	return out
}

// allocate creates the state and scratch arrays and registers the memory
// accounting that backs the paper's Table V memory column.
func (s *Solver[S, C]) allocate() {
	n := s.nNodes
	np3 := s.np * s.np * s.np
	for v := 0; v < nVars; v++ {
		s.q[v] = make([]S, n)
		s.g[v] = make([]C, n)
		s.rhs[v] = make([]C, n)
	}
	s.scrP = make([]C, n)
	nChunks := s.chunks()
	s.elemScratch = make([][]C, nChunks)
	s.filterBuf = make([][]C, nChunks)
	s.filterOut = make([][]C, nChunks)
	for c := 0; c < nChunks; c++ {
		s.elemScratch[c] = make([]C, nVars*np3)
		s.filterBuf[c] = make([]C, np3)
		s.filterOut[c] = make([]C, np3)
	}

	var sv S
	var cv C
	sw, cw := uint64(sizeofReal(sv)), uint64(sizeofReal(cv))
	s.alloc.Register("state", nVars*uint64(n)*sw)
	s.alloc.Register("rk+rhs", 2*nVars*uint64(n)*cw)
	s.alloc.Register("pressure", uint64(n)*cw)
	s.alloc.Register("background", 3*uint64(len(s.rhoBar))*cw)
	s.alloc.Register("operators", uint64(len(s.dmat)+len(s.filter))*cw)
	s.alloc.Register("scratch", uint64(nChunks)*uint64((nVars+2)*np3)*cw)
}

func sizeofReal(v any) int {
	if _, ok := v.(float32); ok {
		return 4
	}
	return 8
}

// setupBackground tabulates the hydrostatic profiles at every global
// z-level: Exner pressure π = 1 − g·z/(cp·θ0), p̄ = p00·π^(cp/R),
// ρ̄ = p00/(R·θ0)·π^(cv/R). These are reference tables, computed in float64
// and stored at compute precision.
func (s *Solver[S, C]) setupBackground() {
	nz := s.ne * s.np
	s.zLevels = make([]float64, nz)
	s.rhoBar = make([]C, nz)
	s.pBar = make([]C, nz)
	s.exner = make([]C, nz)
	for ez := 0; ez < s.ne; ez++ {
		z0 := float64(ez) * s.elemDX
		for k := 0; k < s.np; k++ {
			z := z0 + (s.nodes[k]+1)/2*s.elemDX
			idx := ez*s.np + k
			s.zLevels[idx] = z
			pi := 1 - Grav*z/(Cp*Theta0)
			s.exner[idx] = C(pi)
			s.pBar[idx] = C(P00 * math.Pow(pi, Cp/RGas))
			s.rhoBar[idx] = C(P00 / (RGas * Theta0) * math.Pow(pi, Cv/RGas))
		}
	}
}

// applyIC sets the warm-bubble initial condition: hydrostatic pressure,
// potential temperature θ0 plus a cosine bump, zero velocity. Density
// follows from the equation of state at unchanged pressure, so the warm
// region is lighter and rises.
func (s *Solver[S, C]) applyIC() {
	a := s.cfg.BubbleAmplitude
	rc := s.cfg.BubbleRadius
	ctr := s.cfg.BubbleCenter
	for e := 0; e < s.ne*s.ne*s.ne; e++ {
		ex, ey, ez := s.elemCoords(e)
		base := e * s.np * s.np * s.np
		for k := 0; k < s.np; k++ {
			z := (float64(ez) + (s.nodes[k]+1)/2) * s.elemDX
			zl := ez*s.np + k
			rhoTheta := float64(s.rhoBar[zl]) * Theta0 // = p00/R · π^(cv/R) · θ0/θ0
			for j := 0; j < s.np; j++ {
				y := (float64(ey) + (s.nodes[j]+1)/2) * s.elemDX
				for i := 0; i < s.np; i++ {
					x := (float64(ex) + (s.nodes[i]+1)/2) * s.elemDX
					r := math.Sqrt(sq(x-ctr[0]) + sq(y-ctr[1]) + sq(z-ctr[2]))
					thetaP := 0.0
					if r < rc {
						thetaP = a / 2 * (1 + math.Cos(math.Pi*r/rc))
					}
					theta := Theta0 + thetaP
					rho := rhoTheta / theta // ρθ fixed by p̄ ⇒ ρ = ρθ/θ
					n := base + nodeIndex(s.np, i, j, k)
					s.q[iRho][n] = S(rho)
					s.q[iRhoU][n] = 0
					s.q[iRhoV][n] = 0
					s.q[iRhoW][n] = 0
					s.q[iRhoT][n] = S(rhoTheta)
				}
			}
		}
	}
}

func sq(x float64) float64 { return x * x }

// nodeIndex flattens local node coordinates.
func nodeIndex(np, i, j, k int) int { return i + np*(j+np*k) }

// elemCoords unflattens an element index.
func (s *Solver[S, C]) elemCoords(e int) (ex, ey, ez int) {
	ex = e % s.ne
	ey = (e / s.ne) % s.ne
	ez = e / (s.ne * s.ne)
	return
}

// elemIndex flattens element coordinates.
func (s *Solver[S, C]) elemIndex(ex, ey, ez int) int {
	return ex + s.ne*(ey+s.ne*ez)
}

// StableDT estimates an acoustically stable timestep: CFL × (minimum node
// spacing) / (sound speed + expected advection).
func (s *Solver[S, C]) StableDT() float64 {
	minGap := s.nodes[1] - s.nodes[0] // GLL endpoint gap is the smallest
	dzMin := minGap / 2 * s.elemDX
	c := math.Sqrt(Gamma * RGas * Theta0) // ≈ sound speed at 300 K
	return s.cfg.CFL * dzMin / (c + 20)
}

// Time returns the simulation time, StepCount the completed steps.
func (s *Solver[S, C]) Time() float64         { return s.time }
func (s *Solver[S, C]) StepCount() int        { return s.step }
func (s *Solver[S, C]) NodeCount() int        { return s.nNodes }
func (s *Solver[S, C]) DegreesOfFreedom() int { return s.nNodes * nVars }

// Counters returns accumulated operation counts.
func (s *Solver[S, C]) Counters() metrics.Counters { return s.counters }

// Timer returns the phase timer ("rhs", "rk", "filter").
func (s *Solver[S, C]) Timer() *metrics.Timer { return s.timer }

// StateBytes returns tracked resident memory.
func (s *Solver[S, C]) StateBytes() uint64 { return s.alloc.Current() }

// Williamson low-storage RK3 coefficients.
var lsrkA = [3]float64{0, -5.0 / 9.0, -153.0 / 128.0}
var lsrkB = [3]float64{1.0 / 3.0, 15.0 / 16.0, 8.0 / 15.0}

// Step advances one RK3 timestep (3 RHS evaluations) and applies the modal
// filter on schedule.
func (s *Solver[S, C]) Step() error {
	startStep := time.Now()
	dt := s.cfg.DT
	if dt == 0 {
		dt = s.StableDT()
	}
	cdt := C(dt)
	for stage := 0; stage < 3; stage++ {
		startRHS := time.Now()
		s.computeRHS()
		s.phRHS.Observe(startRHS)
		startRK := time.Now()
		s.rkA, s.rkB, s.rkDT = C(lsrkA[stage]), C(lsrkB[stage]), cdt
		s.pool.ForN(s.cfg.Workers, s.nNodes, s.parRK)
		s.phRK.Observe(startRK)
		s.addFlops(uint64(s.nNodes)*nVars*4, 0)
	}
	if s.cfg.FilterInterval > 0 && (s.step+1)%s.cfg.FilterInterval == 0 {
		startF := time.Now()
		s.applyFilter()
		s.phFilter.Observe(startF)
	}
	s.time += dt
	s.step++
	s.stepDur.ObserveSince(startStep)
	// Blow-up guard: probe one representative node per step.
	probe := float64(s.q[iRho][s.nNodes/2])
	if math.IsNaN(probe) || probe <= 0 {
		return fmt.Errorf("self: step %d: density %g (unstable): %w",
			s.step, probe, precision.ErrNumericalFailure)
	}
	return nil
}

// CheckHealth is the step loop's numerical sentinel: every conserved value
// must be finite and density strictly positive everywhere (the per-step
// probe only watches one node). Failures wrap precision.ErrNumericalFailure
// so the serving layer can escalate precision. One pass over the state
// arrays — run it every few steps, not every step.
func (s *Solver[S, C]) CheckHealth() error {
	for i, r := range s.q[iRho] {
		rho := float64(r)
		if math.IsNaN(rho) || math.IsInf(rho, 0) || rho <= 0 {
			return fmt.Errorf("self: step %d: density %g at node %d: %w",
				s.step, rho, i, precision.ErrNumericalFailure)
		}
	}
	for v := 1; v < nVars; v++ {
		for i, x := range s.q[v] {
			f := float64(x)
			if math.IsNaN(f) || math.IsInf(f, 0) {
				return fmt.Errorf("self: step %d: non-finite %s %g at node %d: %w",
					s.step, stateNames[v], f, i, precision.ErrNumericalFailure)
			}
		}
	}
	return nil
}

// Run advances n steps.
func (s *Solver[S, C]) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

func (s *Solver[S, C]) addFlops(compute, storage uint64) {
	var cv C
	if sizeofReal(cv) == 8 {
		s.counters.Flops64 += compute
	} else {
		s.counters.Flops32 += compute
	}
	_ = storage
}

func (s *Solver[S, C]) addTranscendental(n uint64) {
	var cv C
	if sizeofReal(cv) == 8 {
		s.counters.Transcendental64 += n
	} else {
		s.counters.Transcendental32 += n
	}
}
