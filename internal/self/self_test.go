package self

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/precision"
)

func smallConfig() Config {
	return Config{Elements: 3, Order: 4}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Elements: 0, Order: 4},
		{Elements: 4, Order: 0},
		{Elements: 4, Order: 20},
		{Elements: 4, Order: 4, Domain: -1},
	}
	for i, cfg := range bad {
		if _, err := NewSolver[float64, float64](cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
	cfg := smallConfig()
	s, err := NewSolver[float64, float64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Domain != 1000 || s.cfg.BubbleAmplitude != 0.5 {
		t.Errorf("defaults not applied: %+v", s.cfg)
	}
	if s.NodeCount() != 3*3*3*5*5*5 {
		t.Errorf("NodeCount = %d", s.NodeCount())
	}
	if s.DegreesOfFreedom() != s.NodeCount()*5 {
		t.Errorf("DOF = %d", s.DegreesOfFreedom())
	}
	if s.StableDT() <= 0 {
		t.Error("StableDT not positive")
	}
}

func TestHydrostaticBalance(t *testing.T) {
	// Without a bubble the neutrally stratified atmosphere must stay at
	// rest: the perturbation-pressure formulation makes the background
	// discretely balanced up to rounding.
	cfg := smallConfig()
	cfg.BubbleAmplitude = 1e-30 // effectively no bubble
	s, err := NewSolver[float64, float64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	// The EOS pow leaves ~1e-11 relative noise on p ≈ 1e5 Pa, so w picks
	// up O(1e-6) m/s of rounding-level drift — far below the O(1e-2) m/s
	// the bubble induces.
	if w := s.MaxAbsW(); w > 1e-4 {
		t.Errorf("background atmosphere moved: max|w| = %g", w)
	}
}

func TestBubbleRises(t *testing.T) {
	cfg := smallConfig()
	s, err := NewSolver[float64, float64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(60); err != nil {
		t.Fatal(err)
	}
	// Vertical velocity above the bubble center must be positive (rising).
	w, err := s.Sample(FieldW, 500, 500, s.cfg.BubbleCenter[2])
	if err != nil {
		t.Fatal(err)
	}
	if w <= 0 {
		t.Errorf("bubble center w = %g, expected rising motion", w)
	}
	// The anomaly is negative (warm = light).
	anom, err := s.Sample(FieldDensityAnomaly, 500, 500, s.cfg.BubbleCenter[2])
	if err != nil {
		t.Fatal(err)
	}
	if anom >= 0 {
		t.Errorf("density anomaly %g not negative at bubble center", anom)
	}
	// θ' of the right magnitude (0.5 K bump, some interpolation overshoot).
	th, err := s.Sample(FieldThetaAnomaly, 500, 500, s.cfg.BubbleCenter[2])
	if err != nil {
		t.Fatal(err)
	}
	if th < 0.2 || th > 1.0 {
		t.Errorf("theta anomaly %g outside plausible range", th)
	}
}

func TestMassConservation(t *testing.T) {
	cfg := smallConfig()
	s64, err := NewSolver[float64, float64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	m0 := s64.TotalMass()
	if err := s64.Run(40); err != nil {
		t.Fatal(err)
	}
	if drift := math.Abs(s64.TotalMass()-m0) / m0; drift > 1e-12 {
		t.Errorf("double-precision mass drift %g", drift)
	}
	s32, err := NewSolver[float32, float32](cfg)
	if err != nil {
		t.Fatal(err)
	}
	m0 = s32.TotalMass()
	if err := s32.Run(40); err != nil {
		t.Fatal(err)
	}
	if drift := math.Abs(s32.TotalMass()-m0) / m0; drift > 1e-4 {
		t.Errorf("single-precision mass drift %g", drift)
	}
}

func TestAllModesStable(t *testing.T) {
	for _, mode := range []precision.Mode{precision.Min, precision.Mixed, precision.Full} {
		r, err := New(mode, smallConfig())
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if err := r.Run(20); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if r.StepCount() != 20 || r.Time() <= 0 {
			t.Errorf("%v: step=%d time=%g", mode, r.StepCount(), r.Time())
		}
	}
	if _, err := New(precision.Half, smallConfig()); err == nil {
		t.Error("half mode accepted for SELF")
	}
	if _, err := New(precision.Mode(42), smallConfig()); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestSingleTracksDouble(t *testing.T) {
	// Paper Fig 4: single and double line-cuts are visually identical;
	// their difference is about two orders below the solution scale.
	runLine := func(mode precision.Mode) []float64 {
		r, err := New(mode, smallConfig())
		if err != nil {
			t.Fatal(err)
		}
		if err := r.Run(50); err != nil {
			t.Fatal(err)
		}
		_, vals, err := r.LineX(FieldDensityAnomaly, 100)
		if err != nil {
			t.Fatal(err)
		}
		return vals
	}
	dbl := runLine(precision.Full)
	sgl := runLine(precision.Min)
	scale, maxDiff := 0.0, 0.0
	for i := range dbl {
		if a := math.Abs(dbl[i]); a > scale {
			scale = a
		}
		if d := math.Abs(dbl[i] - sgl[i]); d > maxDiff {
			maxDiff = d
		}
	}
	if scale == 0 {
		t.Fatal("flat line cut")
	}
	if maxDiff == 0 {
		t.Error("single == double bitwise — precision plumbing broken")
	}
	orders := math.Log10(scale / maxDiff)
	if orders < 1.5 {
		t.Errorf("single/double separation only %.1f orders (scale %g, diff %g)", orders, scale, maxDiff)
	}
}

func TestLineCutSymmetry(t *testing.T) {
	// The bubble is centered in x: the x line-cut through its center must
	// be mirror-symmetric up to rounding.
	r, err := New(precision.Full, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Run(30); err != nil {
		t.Fatal(err)
	}
	_, vals, err := r.LineX(FieldDensityAnomaly, 64)
	if err != nil {
		t.Fatal(err)
	}
	scale, maxAsym := 0.0, 0.0
	for i := range vals {
		if a := math.Abs(vals[i]); a > scale {
			scale = a
		}
	}
	for i := 0; i < len(vals)/2; i++ {
		if d := math.Abs(vals[i] - vals[len(vals)-1-i]); d > maxAsym {
			maxAsym = d
		}
	}
	if maxAsym > 1e-9*scale {
		t.Errorf("double-precision asymmetry %g vs scale %g", maxAsym, scale)
	}
}

func TestMemoryScalesWithPrecision(t *testing.T) {
	rS, err := New(precision.Min, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rD, err := New(precision.Full, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(rS.StateBytes()) / float64(rD.StateBytes())
	// Paper Table V: single uses roughly half the memory of double.
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("single/double memory ratio %.2f", ratio)
	}
}

func TestMathModes(t *testing.T) {
	for _, mm := range []MathMode{MathNative, MathPromoted} {
		cfg := smallConfig()
		cfg.MathMode = mm
		s, err := NewSolver[float32, float32](cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(10); err != nil {
			t.Fatalf("%v: %v", mm, err)
		}
		convs := s.Counters().Conversions
		if mm == MathPromoted && convs == 0 {
			t.Error("promoted mode recorded no conversions")
		}
		if mm == MathNative && convs != 0 {
			t.Errorf("native mode recorded %d conversions", convs)
		}
	}
	if MathNative.String() == MathPromoted.String() {
		t.Error("math mode names collide")
	}
	// Both math modes give nearly identical physics (≤ a few ulp of f32
	// per pow; same solve).
	cfgN := smallConfig()
	cfgN.MathMode = MathNative
	sN, _ := NewSolver[float32, float32](cfgN)
	cfgP := smallConfig()
	cfgP.MathMode = MathPromoted
	sP, _ := NewSolver[float32, float32](cfgP)
	if err := sN.Run(20); err != nil {
		t.Fatal(err)
	}
	if err := sP.Run(20); err != nil {
		t.Fatal(err)
	}
	_, vN, _ := sN.LineX(FieldDensityAnomaly, 50)
	_, vP, _ := sP.LineX(FieldDensityAnomaly, 50)
	for i := range vN {
		if math.Abs(vN[i]-vP[i]) > 1e-4 {
			t.Fatalf("math modes diverged at %d: %g vs %g", i, vN[i], vP[i])
		}
	}
}

func TestSampleErrors(t *testing.T) {
	s, err := NewSolver[float64, float64](smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Sample(FieldDensity, -5, 500, 500); err == nil {
		t.Error("out-of-domain sample accepted")
	}
	if _, err := s.Sample(Field(99), 500, 500, 500); err == nil {
		t.Error("unknown field accepted")
	}
	// Density sample at t=0 matches the hydrostatic background away from
	// the bubble.
	rho, err := s.Sample(FieldDensity, 10, 10, 900)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-rhoBarAt(900))/rhoBarAt(900) > 1e-9 {
		t.Errorf("initial density %g vs background %g", rho, rhoBarAt(900))
	}
}

func TestCountersPopulated(t *testing.T) {
	s, err := NewSolver[float64, float64](smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(3); err != nil {
		t.Fatal(err)
	}
	c := s.Counters()
	if c.Flops64 == 0 || c.Transcendental64 == 0 || c.TotalBytes() == 0 {
		t.Errorf("counters empty: %+v", c)
	}
	if c.Flops32 != 0 {
		t.Errorf("double solver recorded f32 flops: %+v", c)
	}
	if s.Timer().Total("rhs") <= 0 || s.Timer().Total("rk") <= 0 || s.Timer().Total("filter") <= 0 {
		t.Error("phase timers empty")
	}
}

func TestFilterDisabled(t *testing.T) {
	cfg := smallConfig()
	cfg.FilterInterval = -1
	s, err := NewSolver[float64, float64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Short unfiltered runs remain stable on this smooth problem.
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	if s.Timer().Total("filter") != 0 {
		t.Error("filter ran despite being disabled")
	}
}

func BenchmarkRHS(b *testing.B) {
	for _, mode := range []precision.Mode{precision.Min, precision.Full} {
		r, err := New(mode, Config{Elements: 4, Order: 7})
		if err != nil {
			b.Fatal(err)
		}
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := r.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func TestBlowUpDetected(t *testing.T) {
	cfg := smallConfig()
	cfg.DT = 100 // far beyond the acoustic limit
	s, err := NewSolver[float64, float64](cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(50); err == nil {
		t.Fatal("unstable run completed without error")
	}
}

func TestRhoThetaConservation(t *testing.T) {
	s, err := NewSolver[float64, float64](smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	q0 := s.TotalRhoTheta()
	if err := s.Run(30); err != nil {
		t.Fatal(err)
	}
	if drift := math.Abs(s.TotalRhoTheta()-q0) / q0; drift > 1e-12 {
		t.Errorf("ρθ drift %g", drift)
	}
}

func TestSELFFieldDump(t *testing.T) {
	s, err := NewSolver[float64, float64](smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := s.WriteFieldDump(&buf, 48, 48, 12)
	if err != nil {
		t.Fatal(err)
	}
	// 48×48 float64 raw = 18 KiB; at 12 bits/value expect ~3.5 KiB.
	if n < 512 || n > 8*1024 {
		t.Errorf("dump size %d", n)
	}
	if _, err := s.WriteFieldDump(&buf, 48, 48, 99); err == nil {
		t.Error("invalid rate accepted")
	}
}
