package self

import (
	"bytes"
	"testing"

	"repro/internal/precision"
)

func TestSELFRestartBitExact(t *testing.T) {
	for _, mode := range []precision.Mode{precision.Min, precision.Full} {
		cfg := smallConfig()
		cfg.FilterInterval = 3 // cadence straddles the split

		straight, err := New(mode, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := straight.Run(20); err != nil {
			t.Fatal(err)
		}

		first, err := New(mode, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := first.Run(12); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := first.WriteCheckpoint(&buf); err != nil {
			t.Fatal(err)
		}
		resumed, err := Load(mode, cfg, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if resumed.StepCount() != 12 || resumed.Time() != first.Time() {
			t.Fatalf("%v: restored step=%d time=%g", mode, resumed.StepCount(), resumed.Time())
		}
		if err := resumed.Run(8); err != nil {
			t.Fatal(err)
		}

		_, a, err := straight.LineX(FieldDensityAnomaly, 64)
		if err != nil {
			t.Fatal(err)
		}
		_, b, err := resumed.LineX(FieldDensityAnomaly, 64)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%v: sample %d differs after restart: %x vs %x", mode, i, a[i], b[i])
			}
		}
	}
}

func TestSELFRestartErrors(t *testing.T) {
	cfg := smallConfig()
	s, err := New(precision.Full, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := s.WriteCheckpoint(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := Load(precision.Full, cfg, bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("junk accepted")
	}
	wrong := cfg
	wrong.Elements = 5
	if _, err := Load(precision.Full, wrong, bytes.NewReader(good)); err == nil {
		t.Error("mismatched geometry accepted")
	}
	if _, err := Load(precision.Half, cfg, bytes.NewReader(good)); err == nil {
		t.Error("half mode accepted")
	}
	// Zero config adopts the checkpoint geometry.
	auto := Config{}
	r, err := Load(precision.Full, auto, bytes.NewReader(good))
	if err != nil {
		t.Fatal(err)
	}
	if r.NodeCount() != s.NodeCount() {
		t.Error("auto geometry restore wrong")
	}
}
