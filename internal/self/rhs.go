package self

import (
	"math"

	"repro/internal/f32math"
	"repro/internal/metrics"
	"repro/internal/precision"
)

// setupMath binds the transcendental dispatch for the (compute type,
// MathMode) pair. For float64 compute both modes use the double-precision
// libm. For float32 compute, MathNative uses the single-precision kernels
// of internal/f32math (Intel profile); MathPromoted round-trips through the
// float64 libm with conversion accounting (GNU profile).
func (s *Solver[S, C]) setupMath() {
	var cv C
	if sizeofReal(cv) == 8 {
		s.powFn = func(x, y C) C { return C(math.Pow(float64(x), float64(y))) }
		s.powConvs = 0
		return
	}
	if s.cfg.MathMode == MathNative {
		s.powFn = func(x, y C) C { return C(f32math.Pow(float32(x), float32(y))) }
		s.powConvs = 0
		return
	}
	s.powFn = func(x, y C) C { return C(float32(math.Pow(float64(x), float64(y)))) }
	s.powConvs = 2
}

// zLevelOf maps a global node index to its global z-level index.
func (s *Solver[S, C]) zLevelOf(n int) int {
	np3 := s.np * s.np * s.np
	e := n / np3
	ez := e / (s.ne * s.ne)
	k := (n % np3) / (s.np * s.np)
	return ez*s.np + k
}

// computeRHS evaluates the DGSEM right-hand side into s.rhs.
//
// Every pass is element- or node-disjoint, so with cfg.Workers > 1 the
// passes run fork-join parallel over fixed contiguous chunks and the
// result is bit-identical to the serial sweep at any worker count. All
// passes dispatch prebound kernels on the persistent pool with persistent
// per-chunk scratch, so an RHS evaluation allocates nothing.
func (s *Solver[S, C]) computeRHS() {
	workers := s.cfg.Workers
	s.pool.ForN(workers, s.nNodes, s.parPressure)
	s.pool.ForN(workers, s.nNodes, s.parClearRHS)
	s.pool.ForChunks(s.chunks(), s.ne*s.ne*s.ne, s.parElems)
	s.accountRHS()
}

// bindKernels creates the parallel kernel closures once; they capture only
// the solver, reading per-dispatch parameters (the RK coefficients, the
// chunk scratch) through it, so repeated dispatch allocates nothing.
func (s *Solver[S, C]) bindKernels() {
	// Perturbation pressure p' = p00·(R·ρθ/p00)^γ − p̄ at every node. The
	// full pressure enters only through the sound speed; the momentum
	// fluxes use p' so the hydrostatic background is discretely balanced.
	s.parPressure = func(lo, hi int) {
		pprime := s.scrP
		rOverP00 := C(RGas / P00)
		gamma := C(Gamma)
		p00 := C(P00)
		for n := lo; n < hi; n++ {
			zl := s.zLevelOf(n)
			pprime[n] = p00*s.powFn(rOverP00*C(s.q[iRhoT][n]), gamma) - s.pBar[zl]
		}
	}
	s.parClearRHS = func(lo, hi int) {
		for v := 0; v < nVars; v++ {
			clear(s.rhs[v][lo:hi])
		}
	}
	// Elements write disjoint rhs ranges; the flux scratch is per chunk.
	s.parElems = func(chunk, lo, hi int) {
		flux := s.elemScratch[chunk]
		pprime := s.scrP
		for e := lo; e < hi; e++ {
			s.elementRHS(e, pprime, flux)
		}
	}
	s.parFilter = func(chunk, lo, hi int) {
		buf, out := s.filterBuf[chunk], s.filterOut[chunk]
		for e := lo; e < hi; e++ {
			s.filterElement(e, buf, out)
		}
	}
	// Low-storage RK update, fused over all variables (per-node ranges, so
	// chunk boundaries and per-element arithmetic match the per-variable
	// form bit for bit).
	s.parRK = func(lo, hi int) {
		a, b, dt := s.rkA, s.rkB, s.rkDT
		for v := 0; v < nVars; v++ {
			g, r, q := s.g[v], s.rhs[v], s.q[v]
			for n := lo; n < hi; n++ {
				g[n] = a*g[n] + dt*r[n]
				q[n] = S(C(q[n]) + b*g[n])
			}
		}
	}
}

// elementRHS accumulates the volume, face and source terms of one element
// into s.rhs, using the caller-provided flux scratch (nVars × np³).
func (s *Solver[S, C]) elementRHS(e int, pprime, flux []C) {
	np := s.np
	np2, np3 := np*np, np*np*np
	fbuf := func(v int) []C { return flux[v*np3 : (v+1)*np3] }
	{
		base := e * np3
		ex, ey, ez := s.elemCoords(e)

		// --- Volume terms, one sweep per direction ---
		for dir := 0; dir < 3; dir++ {
			// Fill flux buffers F_dir(q) at every node.
			for loc := 0; loc < np3; loc++ {
				n := base + loc
				rho := C(s.q[iRho][n])
				ru := C(s.q[iRhoU][n])
				rv := C(s.q[iRhoV][n])
				rw := C(s.q[iRhoW][n])
				rt := C(s.q[iRhoT][n])
				pp := pprime[n]
				var vel C
				switch dir {
				case 0:
					vel = ru / rho
				case 1:
					vel = rv / rho
				default:
					vel = rw / rho
				}
				fbuf(iRho)[loc] = rho * vel
				fbuf(iRhoU)[loc] = ru * vel
				fbuf(iRhoV)[loc] = rv * vel
				fbuf(iRhoW)[loc] = rw * vel
				fbuf(iRhoT)[loc] = rt * vel
				switch dir {
				case 0:
					fbuf(iRhoU)[loc] += pp
				case 1:
					fbuf(iRhoV)[loc] += pp
				default:
					fbuf(iRhoW)[loc] += pp
				}
			}
			// Apply -J·D along dir for each variable.
			for v := 0; v < nVars; v++ {
				fb := fbuf(v)
				r := s.rhs[v]
				switch dir {
				case 0:
					for k := 0; k < np; k++ {
						for j := 0; j < np; j++ {
							line := j*np + k*np2
							for i := 0; i < np; i++ {
								var sum C
								drow := s.dmat[i*np : (i+1)*np]
								for m := 0; m < np; m++ {
									sum += drow[m] * fb[line+m]
								}
								r[base+line+i] -= s.jacoby * sum
							}
						}
					}
				case 1:
					for k := 0; k < np; k++ {
						for i := 0; i < np; i++ {
							line := i + k*np2
							for j := 0; j < np; j++ {
								var sum C
								drow := s.dmat[j*np : (j+1)*np]
								for m := 0; m < np; m++ {
									sum += drow[m] * fb[line+m*np]
								}
								r[base+line+j*np] -= s.jacoby * sum
							}
						}
					}
				default:
					for j := 0; j < np; j++ {
						for i := 0; i < np; i++ {
							line := i + j*np
							for k := 0; k < np; k++ {
								var sum C
								drow := s.dmat[k*np : (k+1)*np]
								for m := 0; m < np; m++ {
									sum += drow[m] * fb[line+m*np2]
								}
								r[base+line+k*np2] -= s.jacoby * sum
							}
						}
					}
				}
			}
		}

		// --- Face terms ---
		s.faceCorrections(e, ex, ey, ez, pprime)

		// --- Gravity source on vertical momentum ---
		for k := 0; k < np; k++ {
			zl := ez*s.np + k
			rb := s.rhoBar[zl]
			for j := 0; j < np; j++ {
				for i := 0; i < np; i++ {
					n := base + nodeIndex(np, i, j, k)
					s.rhs[iRhoW][n] -= C(Grav) * (C(s.q[iRho][n]) - rb)
				}
			}
		}
	}
}

// faceState gathers the conserved state and p' at a node.
type faceState[C any] struct {
	rho, ru, rv, rw, rt, pp, pbar C
}

// loadState reads node n.
func (s *Solver[S, C]) loadState(n int, pprime []C) faceState[C] {
	zl := s.zLevelOf(n)
	return faceState[C]{
		rho: C(s.q[iRho][n]), ru: C(s.q[iRhoU][n]), rv: C(s.q[iRhoV][n]),
		rw: C(s.q[iRhoW][n]), rt: C(s.q[iRhoT][n]),
		pp: pprime[n], pbar: s.pBar[zl],
	}
}

// mirror returns the reflective-wall ghost of q for face direction dir.
func mirror[C precision.Real](q faceState[C], dir int) faceState[C] {
	g := q
	switch dir {
	case 0:
		g.ru = -q.ru
	case 1:
		g.rv = -q.rv
	default:
		g.rw = -q.rw
	}
	return g
}

// rusanov computes the dir-direction Rusanov flux between two states.
// Momentum fluxes carry the perturbation pressure; the dissipation speed
// uses the full pressure (p' + p̄).
func rusanov[C precision.Real](qL, qR faceState[C], dir int) (f [nVars]C) {
	velL, velR := faceVel(qL, dir), faceVel(qR, dir)
	cL := C(math.Sqrt(float64(C(Gamma) * (qL.pp + qL.pbar) / qL.rho)))
	cR := C(math.Sqrt(float64(C(Gamma) * (qR.pp + qR.pbar) / qR.rho)))
	sm := absC(velL) + cL
	if s2 := absC(velR) + cR; s2 > sm {
		sm = s2
	}
	half := C(0.5)
	f[iRho] = half*(qL.rho*velL+qR.rho*velR) - half*sm*(qR.rho-qL.rho)
	f[iRhoU] = half*(qL.ru*velL+qR.ru*velR) - half*sm*(qR.ru-qL.ru)
	f[iRhoV] = half*(qL.rv*velL+qR.rv*velR) - half*sm*(qR.rv-qL.rv)
	f[iRhoW] = half*(qL.rw*velL+qR.rw*velR) - half*sm*(qR.rw-qL.rw)
	f[iRhoT] = half*(qL.rt*velL+qR.rt*velR) - half*sm*(qR.rt-qL.rt)
	switch dir {
	case 0:
		f[iRhoU] += half * (qL.pp + qR.pp)
	case 1:
		f[iRhoV] += half * (qL.pp + qR.pp)
	default:
		f[iRhoW] += half * (qL.pp + qR.pp)
	}
	return f
}

// physFlux computes the physical dir-direction flux of a state.
func physFlux[C precision.Real](q faceState[C], dir int) (f [nVars]C) {
	vel := faceVel(q, dir)
	f[iRho] = q.rho * vel
	f[iRhoU] = q.ru * vel
	f[iRhoV] = q.rv * vel
	f[iRhoW] = q.rw * vel
	f[iRhoT] = q.rt * vel
	switch dir {
	case 0:
		f[iRhoU] += q.pp
	case 1:
		f[iRhoV] += q.pp
	default:
		f[iRhoW] += q.pp
	}
	return f
}

func faceVel[C precision.Real](q faceState[C], dir int) C {
	switch dir {
	case 0:
		return q.ru / q.rho
	case 1:
		return q.rv / q.rho
	default:
		return q.rw / q.rho
	}
}

func absC[C precision.Real](x C) C {
	if x < 0 {
		return -x
	}
	return x
}

// faceCorrections applies the strong-form DG SAT terms on all six faces of
// element e.
func (s *Solver[S, C]) faceCorrections(e, ex, ey, ez int, pprime []C) {
	np := s.np
	np2 := np * np
	base := e * np * np2
	wEnd := C(s.weights[np-1]) // == weights[0] by symmetry
	w0 := C(s.weights[0])
	lift := s.jacoby / wEnd
	lift0 := s.jacoby / w0

	// dir 0: x faces.
	for face := 0; face < 2; face++ { // 0 = -x, 1 = +x
		for k := 0; k < np; k++ {
			for j := 0; j < np; j++ {
				var nIn, nOut int
				var qOut faceState[C]
				if face == 1 {
					nIn = base + nodeIndex(np, np-1, j, k)
					qIn := s.loadState(nIn, pprime)
					if ex+1 < s.ne {
						nOut = s.elemIndex(ex+1, ey, ez)*np*np2 + nodeIndex(np, 0, j, k)
						qOut = s.loadState(nOut, pprime)
					} else {
						qOut = mirror(qIn, 0)
					}
					fstar := rusanov(qIn, qOut, 0)
					fin := physFlux(qIn, 0)
					for v := 0; v < nVars; v++ {
						s.rhs[v][nIn] -= lift * (fstar[v] - fin[v])
					}
				} else {
					nIn = base + nodeIndex(np, 0, j, k)
					qIn := s.loadState(nIn, pprime)
					if ex > 0 {
						nOut = s.elemIndex(ex-1, ey, ez)*np*np2 + nodeIndex(np, np-1, j, k)
						qOut = s.loadState(nOut, pprime)
					} else {
						qOut = mirror(qIn, 0)
					}
					fstar := rusanov(qOut, qIn, 0)
					fin := physFlux(qIn, 0)
					for v := 0; v < nVars; v++ {
						s.rhs[v][nIn] += lift0 * (fstar[v] - fin[v])
					}
				}
			}
		}
	}

	// dir 1: y faces.
	for face := 0; face < 2; face++ {
		for k := 0; k < np; k++ {
			for i := 0; i < np; i++ {
				if face == 1 {
					nIn := base + nodeIndex(np, i, np-1, k)
					qIn := s.loadState(nIn, pprime)
					var qOut faceState[C]
					if ey+1 < s.ne {
						nOut := s.elemIndex(ex, ey+1, ez)*np*np2 + nodeIndex(np, i, 0, k)
						qOut = s.loadState(nOut, pprime)
					} else {
						qOut = mirror(qIn, 1)
					}
					fstar := rusanov(qIn, qOut, 1)
					fin := physFlux(qIn, 1)
					for v := 0; v < nVars; v++ {
						s.rhs[v][nIn] -= lift * (fstar[v] - fin[v])
					}
				} else {
					nIn := base + nodeIndex(np, i, 0, k)
					qIn := s.loadState(nIn, pprime)
					var qOut faceState[C]
					if ey > 0 {
						nOut := s.elemIndex(ex, ey-1, ez)*np*np2 + nodeIndex(np, i, np-1, k)
						qOut = s.loadState(nOut, pprime)
					} else {
						qOut = mirror(qIn, 1)
					}
					fstar := rusanov(qOut, qIn, 1)
					fin := physFlux(qIn, 1)
					for v := 0; v < nVars; v++ {
						s.rhs[v][nIn] += lift0 * (fstar[v] - fin[v])
					}
				}
			}
		}
	}

	// dir 2: z faces.
	for face := 0; face < 2; face++ {
		for j := 0; j < np; j++ {
			for i := 0; i < np; i++ {
				if face == 1 {
					nIn := base + nodeIndex(np, i, j, np-1)
					qIn := s.loadState(nIn, pprime)
					var qOut faceState[C]
					if ez+1 < s.ne {
						nOut := s.elemIndex(ex, ey, ez+1)*np*np2 + nodeIndex(np, i, j, 0)
						qOut = s.loadState(nOut, pprime)
					} else {
						qOut = mirror(qIn, 2)
					}
					fstar := rusanov(qIn, qOut, 2)
					fin := physFlux(qIn, 2)
					for v := 0; v < nVars; v++ {
						s.rhs[v][nIn] -= lift * (fstar[v] - fin[v])
					}
				} else {
					nIn := base + nodeIndex(np, i, j, 0)
					qIn := s.loadState(nIn, pprime)
					var qOut faceState[C]
					if ez > 0 {
						nOut := s.elemIndex(ex, ey, ez-1)*np*np2 + nodeIndex(np, i, j, np-1)
						qOut = s.loadState(nOut, pprime)
					} else {
						qOut = mirror(qIn, 2)
					}
					fstar := rusanov(qOut, qIn, 2)
					fin := physFlux(qIn, 2)
					for v := 0; v < nVars; v++ {
						s.rhs[v][nIn] += lift0 * (fstar[v] - fin[v])
					}
				}
			}
		}
	}
}

// applyFilter runs the modal cutoff filter over every variable, tensor
// direction by direction, reading and writing the storage arrays.
// Elements are independent, so the sweep parallelises with persistent
// per-chunk scratch and stays bit-deterministic.
func (s *Solver[S, C]) applyFilter() {
	np := s.np
	nElems := s.ne * s.ne * s.ne
	s.pool.ForChunks(s.chunks(), nElems, s.parFilter)
	nodes := uint64(s.nNodes)
	s.addFlops(nodes*nVars*3*2*uint64(np), 0)
	s.counters.Add(metrics.Counters{
		LoadBytes:  nodes * nVars * uint64(sizeofRealT[S]()),
		StoreBytes: nodes * nVars * uint64(sizeofRealT[S]()),
	})
}

// filterElement applies the tensor-product filter to one element of every
// variable, using caller-provided scratch.
func (s *Solver[S, C]) filterElement(e int, buf, out []C) {
	np := s.np
	np2, np3 := np*np, np*np*np
	for v := 0; v < nVars; v++ {
		q := s.q[v]
		{
			base := e * np3
			for loc := 0; loc < np3; loc++ {
				buf[loc] = C(q[base+loc])
			}
			// x
			for k := 0; k < np; k++ {
				for j := 0; j < np; j++ {
					line := j*np + k*np2
					for i := 0; i < np; i++ {
						var sum C
						frow := s.filter[i*np : (i+1)*np]
						for m := 0; m < np; m++ {
							sum += frow[m] * buf[line+m]
						}
						out[line+i] = sum
					}
				}
			}
			// y
			for k := 0; k < np; k++ {
				for i := 0; i < np; i++ {
					line := i + k*np2
					for j := 0; j < np; j++ {
						var sum C
						frow := s.filter[j*np : (j+1)*np]
						for m := 0; m < np; m++ {
							sum += frow[m] * out[line+m*np]
						}
						buf[line+j*np] = sum
					}
				}
			}
			// z
			for j := 0; j < np; j++ {
				for i := 0; i < np; i++ {
					line := i + j*np
					for k := 0; k < np; k++ {
						var sum C
						frow := s.filter[k*np : (k+1)*np]
						for m := 0; m < np; m++ {
							sum += frow[m] * buf[line+m*np2]
						}
						out[line+k*np2] = sum
					}
				}
			}
			for loc := 0; loc < np3; loc++ {
				q[base+loc] = S(out[loc])
			}
		}
	}
}

func sizeofRealT[T precision.Real]() int {
	var v T
	return sizeofReal(v)
}

// accountRHS records the analytic operation tally of one RHS evaluation.
func (s *Solver[S, C]) accountRHS() {
	nodes := uint64(s.nNodes)
	np := uint64(s.np)
	faceNodes := uint64(s.ne*s.ne*s.ne) * 6 * np * np
	sw := uint64(sizeofRealT[S]())
	var cv C
	cw := uint64(sizeofReal(cv))

	// EOS pass: one pow (≈transcendental) + 4 flops per node.
	s.addTranscendental(nodes)
	s.addFlops(nodes*4, 0)
	if s.powConvs > 0 {
		s.counters.Conversions += nodes * s.powConvs
	}
	// Volume: flux fill ≈ 12 flops/node/dir; derivative 2·np MACs per
	// node per dir per variable.
	s.addFlops(nodes*3*12+nodes*3*nVars*2*np, 0)
	// Faces: gather + Rusanov ≈ 60 flops and 2 sqrt per face node pair,
	// plus 5-variable lifting.
	s.addFlops(faceNodes*70, 0)
	s.addTranscendental(faceNodes * 2)
	// Source + zeroing.
	s.addFlops(nodes*3, 0)
	// Traffic: state is read for EOS, three flux fills and faces, written
	// once by the RK update (counted there as part of this stage).
	s.counters.Add(metrics.Counters{
		LoadBytes:      nodes*nVars*sw*4 + faceNodes*nVars*sw,
		StoreBytes:     nodes * nVars * cw,
		KernelLaunches: 1,
	})
	// Mixed-style promotion traffic (S ≠ C).
	if sw != cw {
		s.counters.Conversions += nodes * nVars * 4
	}
}
