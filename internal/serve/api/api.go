// Package api is precisiond's HTTP surface: a small JSON API over the
// scheduler and result cache.
//
//	POST /v1/jobs              submit an ExperimentSpec; returns the job view
//	GET  /v1/jobs              list admitted jobs
//	GET  /v1/jobs/{id}         job view (status, progress, cached flag)
//	GET  /v1/jobs/{id}/result  block until terminal; raw result payload
//	GET  /v1/jobs/{id}/stream  NDJSON progress: one view per change, then done
//	GET  /v1/jobs/{id}/trace   span timeline (?format=chrome for trace_event)
//	DELETE /v1/jobs/{id}       release a poisoned job back onto the queue
//	GET  /v1/results/{hash}    raw result payload by spec hash (tiered read)
//	GET  /v1/cache/stats       scheduler + cache counters
//	GET  /metrics              Prometheus text exposition (WithMetrics)
//	GET  /healthz              liveness; 503 + JSON detail when degraded
//
// Result reads are the service's tiered read path (DESIGN.md §11). Both
// result endpoints emit a strong ETag derived from the versioned spec
// hash and honor If-None-Match with 304 Not Modified, so a warm client
// replaying a sweep moves zero bodies. Behind the revalidation layer,
// /v1/results/{hash} reads through the cache's tiers — hot memory, fleet
// replica, local disk — and fleet workers use it to pull the canonical
// payload bytes they replicate.
//
// With WithCampaigns, server-side parameter sweeps are mounted too:
//
//	POST   /v1/campaigns              submit a campaign spec (generator)
//	GET    /v1/campaigns              list campaigns
//	GET    /v1/campaigns/{id}         campaign view (?jobs=1 adds job refs)
//	GET    /v1/campaigns/{id}/stream  NDJSON running aggregates
//	DELETE /v1/campaigns/{id}         cancel expansion
//
// With WithAutotune, the closed-loop precision policy's decision table is
// readable too:
//
//	GET /v1/autotune                  learned per-shape mode table
//
// With WithDispatch, the remote-fleet coordinator is mounted too:
//
//	POST /v1/workers/register        announce a precision-worker node
//	POST /v1/workers/lease           long-poll for one lease grant
//	POST /v1/workers/{id}/heartbeat  extend leases, relay progress
//	POST /v1/workers/{id}/complete   upload an attempt's terminal state
//	POST /v1/workers/{id}/deregister graceful goodbye (leases re-queue)
//	GET  /v1/workers                 fleet view (workers, active leases)
//	GET  /metrics/fleet              federated exposition across the fleet
//
// A full queue answers POST /v1/jobs with 429 and a Retry-After header —
// backpressure the client honors under -retry rather than a hard failure.
//
// The result endpoint returns the cache payload verbatim, so every
// submission of one spec observes byte-identical result bytes regardless of
// whether it was computed, deduplicated onto an in-flight job, or answered
// from the cache.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve/autotune"
	"repro/internal/serve/cache"
	"repro/internal/serve/campaign"
	"repro/internal/serve/dispatch"
	"repro/internal/serve/queue"
)

// Server routes API requests to a scheduler and its cache.
type Server struct {
	sched *queue.Scheduler
	cache *cache.Cache
	mux   *http.ServeMux

	// pollInterval paces the NDJSON stream's snapshot polling.
	pollInterval time.Duration
	// metrics, when non-nil, is served at GET /metrics.
	metrics *obs.Registry
	// fleet, when non-nil, mounts the worker-facing lease protocol.
	fleet *dispatch.Coordinator
	// campaigns, when non-nil, mounts the campaign API under /v1/campaigns.
	campaigns *campaign.Manager
	// tuner, when non-nil, serves its decision table at GET /v1/autotune.
	tuner *autotune.Tuner
	// reads counts result reads by serving tier (no-op Vec without metrics).
	reads obs.CounterVec
	// started anchors the /healthz uptime report.
	started time.Time
}

// Option adjusts a Server.
type Option func(*Server)

// WithPollInterval overrides the progress-stream poll pace (default 200ms).
func WithPollInterval(d time.Duration) Option {
	return func(s *Server) { s.pollInterval = d }
}

// WithMetrics serves the registry's Prometheus text exposition at
// GET /metrics.
func WithMetrics(r *obs.Registry) Option {
	return func(s *Server) { s.metrics = r }
}

// WithDispatch mounts the remote-fleet coordinator's worker protocol under
// /v1/workers.
func WithDispatch(co *dispatch.Coordinator) Option {
	return func(s *Server) { s.fleet = co }
}

// WithAutotune serves the closed-loop precision policy's learned decision
// table at GET /v1/autotune.
func WithAutotune(t *autotune.Tuner) Option {
	return func(s *Server) { s.tuner = t }
}

// New builds the API over a scheduler and its cache (cache may be nil when
// the scheduler runs uncached).
func New(sched *queue.Scheduler, c *cache.Cache, opts ...Option) *Server {
	s := &Server{sched: sched, cache: c, pollInterval: 200 * time.Millisecond, started: time.Now()}
	for _, o := range opts {
		o(s)
	}
	if s.metrics != nil {
		s.reads = s.metrics.CounterVec("precisiond_result_reads_total",
			"Result reads by serving tier: etag_304 (revalidated, no body), "+
				"job (payload pinned in the job record), hot, remote, disk, miss.",
			"source")
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.jobView)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.jobResult)
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.jobStream)
	mux.HandleFunc("GET /v1/jobs/{id}/trace", s.jobTrace)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.jobRelease)
	mux.HandleFunc("GET /v1/results/{hash}", s.resultByHash)
	mux.HandleFunc("GET /v1/cache/stats", s.stats)
	mux.HandleFunc("GET /healthz", s.healthz)
	if s.metrics != nil {
		mux.Handle("GET /metrics", s.metrics.Handler())
	}
	if s.campaigns != nil {
		mux.HandleFunc("POST /v1/campaigns", s.submitCampaign)
		mux.HandleFunc("GET /v1/campaigns", s.listCampaigns)
		mux.HandleFunc("GET /v1/campaigns/{id}", s.campaignView)
		mux.HandleFunc("GET /v1/campaigns/{id}/stream", s.campaignStream)
		mux.HandleFunc("DELETE /v1/campaigns/{id}", s.campaignCancel)
	}
	if s.tuner != nil {
		mux.HandleFunc("GET /v1/autotune", s.autotuneTable)
	}
	if s.fleet != nil {
		mux.HandleFunc("POST /v1/workers/register", s.fleet.HandleRegister)
		mux.HandleFunc("POST /v1/workers/lease", s.fleet.HandleLease)
		mux.HandleFunc("POST /v1/workers/{id}/heartbeat", s.fleet.HandleHeartbeat)
		mux.HandleFunc("POST /v1/workers/{id}/complete", s.fleet.HandleComplete)
		mux.HandleFunc("POST /v1/workers/{id}/deregister", s.fleet.HandleDeregister)
		mux.HandleFunc("GET /v1/workers", s.fleet.HandleList)
		mux.HandleFunc("GET /metrics/fleet", s.fleet.HandleFleetMetrics)
	}
	s.mux = mux
	return s
}

// buildInfo renders the module version and VCS revision baked into the
// binary ("(devel)" under plain `go build`, "unknown" under `go test`).
func buildInfo() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	version, revision := bi.Main.Version, ""
	for _, kv := range bi.Settings {
		if kv.Key == "vcs.revision" {
			revision = kv.Value
		}
	}
	if version == "" {
		version = "unknown"
	}
	if revision != "" {
		if len(revision) > 12 {
			revision = revision[:12]
		}
		return version + " " + revision
	}
	return version
}

// runtimeVersion is the Go toolchain that built the binary.
func runtimeVersion() string { return runtime.Version() }

// healthDetail is the /healthz degraded payload: the failing reasons plus
// enough context to debug the node without shelling into it.
type healthDetail struct {
	Status        string   `json:"status"`
	Reasons       []string `json:"reasons"`
	UptimeSeconds float64  `json:"uptime_seconds"`
	Build         string   `json:"build"`
	GoVersion     string   `json:"go_version"`
	// LastJournalError / LastCacheError retain the most recent durability
	// incident even if the subsystem has since recovered.
	LastJournalError string `json:"last_journal_error,omitempty"`
	LastCacheError   string `json:"last_cache_error,omitempty"`
}

// healthz reports liveness. Healthy stays the plain-text "ok" probes have
// always read; a daemon whose durability machinery is broken — cache dir
// unwritable, journal unable to fsync — answers 503 with the reasons plus
// uptime, build info and the last journal/cache error, so orchestrators
// stop routing work to a node that would accept jobs it cannot keep and
// operators see why without shelling in.
func (s *Server) healthz(w http.ResponseWriter, r *http.Request) {
	var reasons []string
	if s.cache != nil {
		if err := s.cache.WriteProbe(); err != nil {
			reasons = append(reasons, fmt.Sprintf("cache: %v", err))
		}
	}
	if err := s.sched.Health(); err != nil {
		reasons = append(reasons, err.Error())
	}
	if len(reasons) > 0 {
		detail := healthDetail{
			Status:        "degraded",
			Reasons:       reasons,
			UptimeSeconds: time.Since(s.started).Seconds(),
			Build:         buildInfo(),
			GoVersion:     runtimeVersion(),
		}
		detail.LastJournalError = s.sched.JournalLastError()
		if s.cache != nil {
			detail.LastCacheError = s.cache.LastError()
		}
		writeJSON(w, http.StatusServiceUnavailable, detail)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, apiError{Error: fmt.Sprintf(format, args...)})
}

// retryAfterSeconds is the backoff hint sent with a 429: long enough for a
// queued job to finish or a fleet worker to lease one off the board, short
// enough that a sweeping client keeps the queue near its bound.
const retryAfterSeconds = 1

// queueFullReply is the 429 body; the header's Retry-After is mirrored into
// JSON so clients that never look at headers still see the hint.
type queueFullReply struct {
	Error             string `json:"error"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}

// submit admits a spec. 200 for a job that is already terminal (cache hit),
// 202 for queued/deduplicated work, 400 for an invalid spec, 429 with
// Retry-After for a full queue (backpressure — try again, nothing is
// wrong), 503 for a journal that cannot accept the admission. ?timeout=30s
// sets a per-attempt deadline for this job.
func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var opts queue.SubmitOptions
	if t := r.URL.Query().Get("timeout"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil || d < 0 {
			writeError(w, http.StatusBadRequest, "invalid timeout %q", t)
			return
		}
		opts.Timeout = d
	}
	var spec runner.ExperimentSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode spec: %v", err)
		return
	}
	job, err := s.sched.SubmitOpts(spec, opts)
	switch {
	case errors.Is(err, queue.ErrQueueFull):
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		writeJSON(w, http.StatusTooManyRequests, queueFullReply{
			Error:             err.Error(),
			RetryAfterSeconds: retryAfterSeconds,
		})
		return
	case err != nil && strings.Contains(err.Error(), "journal"):
		// An un-journalable admission is a capacity problem, not a client
		// one: the spec may be fine, the daemon just cannot promise
		// durability right now.
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	v := job.Snapshot()
	status := http.StatusAccepted
	if v.Status == queue.StatusDone || v.Status == queue.StatusFailed {
		status = http.StatusOK
	}
	writeJSON(w, status, v)
}

func (s *Server) listJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.sched.Jobs())
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) (*queue.Job, bool) {
	id := r.PathValue("id")
	job, ok := s.sched.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job %q", id)
	}
	return job, ok
}

func (s *Server) jobView(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.Snapshot())
}

// jobRelease (DELETE /v1/jobs/{id}) releases a poisoned job back onto the
// queue — the operator's escape hatch after fixing whatever convicted the
// spec. 404 for an unknown job, 409 for a job not parked as poisoned, 503
// when the journal refuses to record the release (the job stays parked).
func (s *Server) jobRelease(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	switch err := s.sched.RetryPoisoned(id); {
	case err == nil:
		job, _ := s.sched.Job(id)
		writeJSON(w, http.StatusAccepted, job.Snapshot())
	case errors.Is(err, queue.ErrUnknownJob):
		writeError(w, http.StatusNotFound, "unknown job %q", id)
	case errors.Is(err, queue.ErrNotPoisoned):
		writeError(w, http.StatusConflict, "job %q is not poisoned", id)
	default:
		writeError(w, http.StatusServiceUnavailable, "%v", err)
	}
}

// resultETag is the strong validator for one spec hash's result payload:
// derived from the versioned spec hash alone — not file mtimes, not
// process identity — so it is stable across daemon restarts and identical
// on every node serving the same spec. The determinism contract
// (DESIGN.md §5) is what makes this a *strong* ETag: every computation of
// a spec produces the same result bytes, so the spec hash names the
// representation.
func resultETag(specHash string) string { return `"` + specHash + `"` }

// etagMatches reports whether an If-None-Match header value matches etag.
// Both the wildcard and a comma-separated validator list are honored;
// weak-comparison prefixes (W/) never match — result reads are
// byte-identity reads.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	if strings.TrimSpace(header) == "*" {
		return true
	}
	for _, candidate := range strings.Split(header, ",") {
		if strings.TrimSpace(candidate) == etag {
			return true
		}
	}
	return false
}

// writeNotModified answers a successful revalidation: 304, the validator
// repeated, zero body bytes moved.
func (s *Server) writeNotModified(w http.ResponseWriter, etag string) {
	s.reads.With("etag_304").Inc()
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache") // reuse freely, but revalidate
	w.WriteHeader(http.StatusNotModified)
}

// jobResult blocks until the job is terminal, then returns the result
// payload bytes verbatim (or the failure as JSON error). The wait is bounded
// by the client's request context. Successful results carry a strong ETag
// derived from the spec hash; a matching If-None-Match short-circuits to
// 304 with no body — tier 1 of the read path.
func (s *Server) jobResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	select {
	case <-job.Done():
	case <-r.Context().Done():
		return // client went away; nothing useful to write
	}
	if payload, ok := job.Result(); ok {
		etag := resultETag(job.SpecHash)
		if etagMatches(r.Header.Get("If-None-Match"), etag) {
			s.writeNotModified(w, etag)
			return
		}
		s.reads.With("job").Inc()
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", "no-cache")
		w.Header().Set("Content-Type", "application/json")
		w.Write(payload)
		return
	}
	writeError(w, http.StatusInternalServerError, "job failed: %s", job.Snapshot().Error)
}

// resultByHash serves a cached result payload directly by spec hash,
// through the cache's read tiers (hot memory → fleet replica → disk).
// Fleet workers pull the canonical payload bytes they replicate from this
// endpoint; the X-Payload-SHA256 header lets them verify the fill. ETag
// revalidation applies exactly as on the job-scoped endpoint.
func (s *Server) resultByHash(w http.ResponseWriter, r *http.Request) {
	if s.cache == nil {
		writeError(w, http.StatusNotFound, "no result cache configured")
		return
	}
	hash := r.PathValue("hash")
	etag := resultETag(hash)
	if etagMatches(r.Header.Get("If-None-Match"), etag) {
		// Revalidation needs no tier at all: the validator is the content
		// address. A client holding bytes for this hash holds the bytes.
		s.writeNotModified(w, etag)
		return
	}
	payload, src, ok := s.cache.Fetch(hash)
	if !ok {
		s.reads.With("miss").Inc()
		writeError(w, http.StatusNotFound, "no cached result for spec hash %q", hash)
		return
	}
	s.reads.With(string(src)).Inc()
	if digest, ok := s.cache.Digest(hash); ok {
		w.Header().Set("X-Payload-SHA256", digest)
	}
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Read-Tier", string(src))
	w.Header().Set("Content-Type", "application/json")
	w.Write(payload)
}

// jobTrace returns the job's span timeline as JSON. Available at any point
// in the lifecycle: a running job reports its spans so far, with the open
// ones frozen at the snapshot instant. ?format=chrome renders the same
// timeline as Chrome trace_event JSON for chrome://tracing / Perfetto.
func (s *Server) jobTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	if r.URL.Query().Get("format") == "chrome" {
		w.Header().Set("Content-Type", "application/json")
		w.Write(obs.ChromeTrace(job.Trace()))
		return
	}
	writeJSON(w, http.StatusOK, job.Trace())
}

// jobStream emits the job's view as NDJSON: one line per observed change
// (status or step), then the terminal view, then EOF.
func (s *Server) jobStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	var last queue.View
	emit := func(v queue.View) {
		enc.Encode(v)
		if flusher != nil {
			flusher.Flush()
		}
		last = v
	}
	emit(job.Snapshot())

	ticker := time.NewTicker(s.pollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
			if v := job.Snapshot(); viewChanged(v, last) {
				emit(v)
			}
			return
		case <-ticker.C:
			if v := job.Snapshot(); viewChanged(v, last) {
				emit(v)
			}
		}
	}
}

// viewChanged reports whether a view differs from the last emitted one in
// any field a stream consumer watches (View holds a slice, so it is not
// directly comparable).
func viewChanged(v, last queue.View) bool {
	return v.Status != last.Status ||
		v.Step != last.Step ||
		v.Total != last.Total ||
		v.Attempts != last.Attempts ||
		len(v.Escalations) != len(last.Escalations) ||
		v.Error != last.Error
}

// AutotuneReply is the GET /v1/autotune payload: the learned decision
// table, one entry per (app, scenario-shape), sorted by key.
type AutotuneReply struct {
	Entries []autotune.EntryView `json:"entries"`
}

// autotuneTable serves the autotuner's decision table: per-shape committed
// mode, floor, warm-up progress, per-mode fidelity evidence and the
// cumulative modeled savings against the full-precision baseline.
func (s *Server) autotuneTable(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, AutotuneReply{Entries: s.tuner.Snapshot()})
}

// StatsReply is the /v1/cache/stats payload.
type StatsReply struct {
	Scheduler queue.Stats  `json:"scheduler"`
	Cache     *cache.Stats `json:"cache,omitempty"`
}

func (s *Server) stats(w http.ResponseWriter, r *http.Request) {
	reply := StatsReply{Scheduler: s.sched.Stats()}
	if s.cache != nil {
		cs := s.cache.Stats()
		reply.Cache = &cs
	}
	writeJSON(w, http.StatusOK, reply)
}
