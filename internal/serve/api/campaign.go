package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"time"

	"repro/internal/serve/campaign"
)

// WithCampaigns mounts the campaign API:
//
//	POST   /v1/campaigns              submit a campaign spec; 202 + view
//	GET    /v1/campaigns              list campaigns
//	GET    /v1/campaigns/{id}         campaign view (?jobs=1 adds per-job refs)
//	GET    /v1/campaigns/{id}/stream  NDJSON running aggregates, then terminal
//	DELETE /v1/campaigns/{id}         cancel expansion (admitted jobs finish)
//
// A campaign whose estimated expansion exceeds the manager's budget is
// answered 429 + Retry-After (the same backpressure shape as a full queue
// on POST /v1/jobs): nothing is wrong, resubmit when live campaigns have
// drained.
func WithCampaigns(m *campaign.Manager) Option {
	return func(s *Server) { s.campaigns = m }
}

// submitCampaign validates and registers a campaign. 202 for a live
// campaign, 400 for a spec or generator that does not validate, 429 with
// Retry-After when the expansion estimate is over budget, 503 when the
// journal cannot accept the admission.
func (s *Server) submitCampaign(w http.ResponseWriter, r *http.Request) {
	var spec campaign.Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decode campaign spec: %v", err)
		return
	}
	c, err := s.campaigns.Submit(spec)
	switch {
	case errors.Is(err, campaign.ErrBudget):
		w.Header().Set("Retry-After", fmt.Sprint(retryAfterSeconds))
		writeJSON(w, http.StatusTooManyRequests, queueFullReply{
			Error:             err.Error(),
			RetryAfterSeconds: retryAfterSeconds,
		})
		return
	case err != nil && strings.Contains(err.Error(), "journal"):
		// As on POST /v1/jobs: an un-journalable admission is a capacity
		// problem, not a client one.
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, c.View(false))
}

func (s *Server) listCampaigns(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.campaigns.List())
}

func (s *Server) campaign(w http.ResponseWriter, r *http.Request) (*campaign.Campaign, bool) {
	id := r.PathValue("id")
	c, ok := s.campaigns.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
	}
	return c, ok
}

// campaignView returns the campaign snapshot; ?jobs=1 includes one entry
// per expanded index in expansion order.
func (s *Server) campaignView(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	includeJobs := r.URL.Query().Get("jobs") != ""
	writeJSON(w, http.StatusOK, c.View(includeJobs))
}

// campaignCancel stops expansion. Idempotent: cancelling a terminal
// campaign returns its current view.
func (s *Server) campaignCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	v, err := s.campaigns.Cancel(id)
	if errors.Is(err, campaign.ErrNotFound) {
		writeError(w, http.StatusNotFound, "unknown campaign %q", id)
		return
	}
	writeJSON(w, http.StatusOK, v)
}

// campaignStream emits the campaign's running aggregates as NDJSON: one
// line per observed change as results land, then the terminal aggregates
// (carrying result_digest), then EOF — the online version of watching the
// paper's sweep table fill in.
func (s *Server) campaignStream(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)

	var last campaign.Aggregates
	emit := func(a campaign.Aggregates) {
		enc.Encode(a)
		if flusher != nil {
			flusher.Flush()
		}
		last = a
	}
	emit(c.Aggregates())

	ticker := time.NewTicker(s.pollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-c.Done():
			if a := c.Aggregates(); aggregatesChanged(a, last) {
				emit(a)
			}
			return
		case <-ticker.C:
			if a := c.Aggregates(); aggregatesChanged(a, last) {
				emit(a)
			}
		}
	}
}

// aggregatesChanged reports whether a snapshot differs from the last
// emitted one (Aggregates holds maps and pointers, so deep equality).
func aggregatesChanged(a, last campaign.Aggregates) bool {
	return !reflect.DeepEqual(a, last)
}
