package api

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/serve/cache"
	"repro/internal/serve/queue"
)

// newObsServer is newTestServer plus a metrics registry wired through both
// the scheduler and the API, the way cmd/precisiond assembles them.
func newObsServer(t *testing.T) (*httptest.Server, *obs.Registry) {
	t.Helper()
	c, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.RegisterMetrics(reg)
	sched := queue.New(queue.Config{Workers: 1, Cache: c, Obs: reg})
	ctx, cancel := context.WithCancel(context.Background())
	sched.Start(ctx)
	srv := httptest.NewServer(New(sched, c, WithPollInterval(5*time.Millisecond), WithMetrics(reg)))
	t.Cleanup(func() {
		srv.Close()
		cancel()
		sched.Wait()
	})
	return srv, reg
}

// TestMetricsEndpoint scrapes /metrics after one executed and one cached
// submission and checks the exposition is well-formed Prometheus text with
// the headline families populated.
func TestMetricsEndpoint(t *testing.T) {
	srv, _ := newObsServer(t)
	spec := clamrSpec(4, "full")
	v, _ := submit(t, srv, spec)
	fetchResult(t, srv, v.ID)
	submit(t, srv, spec) // cache hit

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	exp := string(body)

	// Structural validity: every sample line is `name{labels} value` for a
	// family announced by a preceding # TYPE line.
	typed := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(exp, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			typed[strings.Fields(line)[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := strings.TrimSuffix(strings.TrimSuffix(strings.TrimSuffix(name, "_bucket"), "_sum"), "_count")
		if !typed[name] && !typed[base] {
			t.Errorf("sample %q has no preceding # TYPE", line)
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			t.Errorf("malformed sample line %q", line)
		}
	}

	for _, want := range []string{
		`precisiond_run_duration_seconds_count{app="clamr",mode="full"} 1`,
		`precisiond_queue_wait_seconds_bucket{le="+Inf"} 1`,
		`precisiond_jobs_total{event="cache_hit"} 1`,
		`precisiond_cache_events_total{event="hit"} 1`,
		`precisiond_cache_events_total{event="put"} 1`,
		`precisiond_run_flops_total{width="64"}`,
		`precisiond_workers 1`,
		`precisiond_queue_depth 0`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTraceEndpoint fetches the span timeline for a finished job and checks
// it is complete and well-formed; unknown jobs 404.
func TestTraceEndpoint(t *testing.T) {
	srv, _ := newObsServer(t)
	v, _ := submit(t, srv, clamrSpec(4, "full"))
	fetchResult(t, srv, v.ID)

	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace status %d", resp.StatusCode)
	}
	var td obs.TraceData
	if err := json.NewDecoder(resp.Body).Decode(&td); err != nil {
		t.Fatal(err)
	}
	if td.JobID != v.ID {
		t.Errorf("trace job id = %q, want %s", td.JobID, v.ID)
	}
	names := map[string]bool{}
	for i, sp := range td.Spans {
		names[sp.Name] = true
		if sp.Open {
			t.Errorf("span %s open in a finished job's trace", sp.Name)
		}
		if sp.DurationNs < 0 || (i > 0 && (sp.Parent < 0 || sp.Parent >= i)) {
			t.Errorf("malformed span %d: %+v", i, sp)
		}
	}
	for _, want := range []string{"job", "queue_wait", "attempt"} {
		if !names[want] {
			t.Errorf("trace missing %q span; got %v", want, names)
		}
	}

	r404, err := http.Get(srv.URL + "/v1/jobs/job-999999/trace")
	if err != nil {
		t.Fatal(err)
	}
	r404.Body.Close()
	if r404.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job trace status %d, want 404", r404.StatusCode)
	}
}
