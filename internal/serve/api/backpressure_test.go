package api

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/serve/queue"
)

// TestSubmitBackpressure429: a full queue answers POST /v1/jobs with 429
// and a Retry-After hint (header and JSON body) — backpressure, not an
// opaque failure. Capacity freeing up admits the same spec normally.
func TestSubmitBackpressure429(t *testing.T) {
	release := make(chan struct{})
	var started atomic.Int64
	cfg := queue.Config{
		Workers: 1, QueueDepth: 1,
		Run: func(ctx context.Context, req queue.RunRequest) (*runner.Result, error) {
			started.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			n, err := req.Spec.Normalized()
			if err != nil {
				return nil, err
			}
			h, err := n.Hash()
			if err != nil {
				return nil, err
			}
			return &runner.Result{Spec: n, SpecHash: h, StateHash: "feed" + h[:8], Steps: n.Steps}, nil
		},
	}
	srv, _, _ := newTestServer(t, cfg)

	// First job occupies the only worker...
	if _, status := submit(t, srv, clamrSpec(2, "full")); status != http.StatusAccepted {
		t.Fatalf("submit A = %d, want 202", status)
	}
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first job never started")
		}
		time.Sleep(time.Millisecond)
	}
	// ...the second fills the depth-1 queue...
	if _, status := submit(t, srv, clamrSpec(3, "full")); status != http.StatusAccepted {
		t.Fatalf("submit B = %d, want 202", status)
	}

	// ...and the third must be pushed back with 429 + Retry-After.
	overflow := clamrSpec(4, "full")
	body, _ := json.Marshal(overflow)
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var reply struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if derr := json.NewDecoder(resp.Body).Decode(&reply); derr != nil {
		t.Fatal(derr)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After header = %q, want \"1\"", got)
	}
	if reply.RetryAfterSeconds != 1 || reply.Error == "" {
		t.Fatalf("429 body = %+v, want the error and retry_after_seconds=1", reply)
	}

	// Capacity frees up: the pushed-back spec is admitted on retry — the
	// client's -retry loop sees 429 as "try again", never a dead end.
	close(release)
	deadline = time.Now().Add(5 * time.Second)
	for {
		v, status := submit(t, srv, overflow)
		if status == http.StatusAccepted || status == http.StatusOK {
			waitTerminal(t, srv, v.ID)
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("overflow spec never admitted after release (last status %d)", status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// waitTerminal blocks on the result endpoint until the job finishes.
func waitTerminal(t *testing.T, srv *httptest.Server, id string) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
}
