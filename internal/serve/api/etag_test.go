package api

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve/cache"
	"repro/internal/serve/queue"
)

// newTestServerAt is newTestServer with a caller-owned cache directory, so
// restart tests can rebuild the whole stack over the same store.
func newTestServerAt(t *testing.T, dir string, cfg queue.Config) (*httptest.Server, func()) {
	t.Helper()
	c, err := cache.Open(dir, cache.WithHotBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = c
	sched := queue.New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	sched.Start(ctx)
	srv := httptest.NewServer(New(sched, c, WithPollInterval(5*time.Millisecond)))
	stop := func() {
		srv.Close()
		cancel()
		sched.Wait()
	}
	t.Cleanup(stop)
	return srv, stop
}

func get(t *testing.T, url, ifNoneMatch string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ifNoneMatch != "" {
		req.Header.Set("If-None-Match", ifNoneMatch)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestETagRoundTrip(t *testing.T) {
	srv, _, _ := newTestServer(t, queue.Config{Workers: 1})
	v, _ := submit(t, srv, clamrSpec(4, "full"))

	url := srv.URL + "/v1/jobs/" + v.ID + "/result"
	resp, body := get(t, url, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("first fetch status %d: %s", resp.StatusCode, body)
	}
	etag := resp.Header.Get("ETag")
	if etag != `"`+v.SpecHash+`"` {
		t.Fatalf("ETag = %q, want quoted spec hash %q", etag, v.SpecHash)
	}
	if len(body) == 0 {
		t.Fatal("empty result body")
	}

	// Revalidation hit: 304, no body, validator repeated.
	resp304, body304 := get(t, url, etag)
	if resp304.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match fetch status %d, want 304", resp304.StatusCode)
	}
	if len(body304) != 0 {
		t.Fatalf("304 carried %d body bytes", len(body304))
	}
	if resp304.Header.Get("ETag") != etag {
		t.Fatalf("304 ETag = %q, want %q", resp304.Header.Get("ETag"), etag)
	}

	// Stale validator: full 200, byte-identical payload.
	respStale, bodyStale := get(t, url, `"0000000000000000000000000000000000000000000000000000000000000000"`)
	if respStale.StatusCode != http.StatusOK {
		t.Fatalf("stale-ETag fetch status %d, want 200", respStale.StatusCode)
	}
	if !bytes.Equal(bodyStale, body) {
		t.Fatal("stale-ETag refetch returned different bytes")
	}

	// Weak validators never match: byte-identity reads only.
	respWeak, _ := get(t, url, "W/"+etag)
	if respWeak.StatusCode != http.StatusOK {
		t.Fatalf("weak-ETag fetch status %d, want 200", respWeak.StatusCode)
	}
}

func TestResultByHashTieredRead(t *testing.T) {
	srv, _, c := newTestServer(t, queue.Config{Workers: 1})
	v, _ := submit(t, srv, selfSpec(6, "full"))
	direct := fetchResult(t, srv, v.ID)

	url := srv.URL + "/v1/results/" + v.SpecHash
	resp, body := get(t, url, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, direct) {
		t.Fatal("hash read differs from job result read")
	}
	if tier := resp.Header.Get("X-Read-Tier"); tier == "" {
		t.Error("no X-Read-Tier header")
	}
	if digest, ok := c.Digest(v.SpecHash); !ok || resp.Header.Get("X-Payload-SHA256") != digest {
		t.Errorf("X-Payload-SHA256 = %q, want recorded digest %q", resp.Header.Get("X-Payload-SHA256"), digest)
	}

	// Revalidation never touches a tier: 304 straight off the validator.
	resp304, body304 := get(t, url, resp.Header.Get("ETag"))
	if resp304.StatusCode != http.StatusNotModified || len(body304) != 0 {
		t.Fatalf("revalidation = %d with %d bytes, want bare 304", resp304.StatusCode, len(body304))
	}

	// Unknown hash: 404 miss.
	respMiss, _ := get(t, srv.URL+"/v1/results/"+"ab"+v.SpecHash[2:4]+v.SpecHash[4:], "")
	if respMiss.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown hash status %d, want 404", respMiss.StatusCode)
	}
}

// TestETagStableAcrossRestart rebuilds the daemon stack over the same cache
// directory and checks a validator handed out by the first incarnation
// still revalidates against the second: the ETag is derived from the spec
// hash, not process state.
func TestETagStableAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	spec := clamrSpec(4, "full")

	srv1, stop1 := newTestServerAt(t, dir, queue.Config{Workers: 1})
	v1, _ := submit(t, srv1, spec)
	resp1, body1 := get(t, srv1.URL+"/v1/jobs/"+v1.ID+"/result", "")
	etag := resp1.Header.Get("ETag")
	if resp1.StatusCode != http.StatusOK || etag == "" {
		t.Fatalf("first incarnation: status %d, ETag %q", resp1.StatusCode, etag)
	}
	stop1()

	srv2, _ := newTestServerAt(t, dir, queue.Config{Workers: 1})
	v2, _ := submit(t, srv2, spec)
	if v2.SpecHash != v1.SpecHash {
		t.Fatalf("spec hash changed across restart: %s vs %s", v2.SpecHash, v1.SpecHash)
	}
	resp304, body304 := get(t, srv2.URL+"/v1/jobs/"+v2.ID+"/result", etag)
	if resp304.StatusCode != http.StatusNotModified || len(body304) != 0 {
		t.Fatalf("restarted daemon: status %d with %d bytes, want bare 304", resp304.StatusCode, len(body304))
	}
	// And without the validator, the restarted daemon serves the same bytes.
	respFull, bodyFull := get(t, srv2.URL+"/v1/results/"+v2.SpecHash, "")
	if respFull.StatusCode != http.StatusOK || !bytes.Equal(bodyFull, body1) {
		t.Fatalf("restarted daemon payload differs (status %d)", respFull.StatusCode)
	}
}
