package api

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/serve/cache"
	"repro/internal/serve/queue"
)

// BenchmarkReadPath304 measures tier 1: a revalidation that matches moves
// zero payload bytes — the whole request is header parsing plus a string
// compare, whatever the payload size.
func BenchmarkReadPath304(b *testing.B) {
	c, err := cache.Open(b.TempDir(), cache.WithHotBytes(1<<20))
	if err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte(`{"field":0.123456789,"trace":"x"}`), 2048)
	sum := sha256.Sum256([]byte("bench-spec"))
	hash := hex.EncodeToString(sum[:])
	if err := c.Put(hash, payload); err != nil {
		b.Fatal(err)
	}
	srv := New(queue.New(queue.Config{Workers: 1, Cache: c}), c)
	etag := `"` + hash + `"`

	req := httptest.NewRequest(http.MethodGet, "/v1/results/"+hash, nil)
	req.Header.Set("If-None-Match", etag)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusNotModified {
			b.Fatalf("status %d, want 304", rec.Code)
		}
	}
}
