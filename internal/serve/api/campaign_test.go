package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/serve/cache"
	"repro/internal/serve/campaign"
	"repro/internal/serve/queue"
)

// newCampaignServer wires a real scheduler + cache + campaign manager
// behind an httptest server, mirroring newTestServer.
func newCampaignServer(t *testing.T, qcfg queue.Config, ccfg campaign.Config) *httptest.Server {
	t.Helper()
	c, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	qcfg.Cache = c
	sched := queue.New(qcfg)
	ctx, cancel := context.WithCancel(context.Background())
	sched.Start(ctx)
	ccfg.Sched = sched
	camps := campaign.New(ccfg)
	camps.Start(ctx)
	srv := httptest.NewServer(New(sched, c,
		WithPollInterval(5*time.Millisecond), WithCampaigns(camps)))
	t.Cleanup(func() {
		srv.Close()
		cancel()
		sched.Wait()
		camps.Wait()
	})
	return srv
}

// gridCampaign is a 4-spec grid (mode × steps) over real clamr runs.
func gridCampaign() campaign.Spec {
	return campaign.Spec{
		Tenant: "acme",
		Generator: campaign.GeneratorSpec{
			Kind: campaign.KindGrid,
			Base: clamrSpec(2, "full"),
			Axes: []campaign.Axis{
				{Field: "mode", Values: []any{"min", "full"}},
				{Field: "steps", Values: []any{2, 3}},
			},
		},
	}
}

func postCampaign(t *testing.T, srv *httptest.Server, spec campaign.Spec) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data := new(bytes.Buffer)
	if _, err := data.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, data.Bytes()
}

// TestCampaignSubmitStreamAndView drives the full happy path: 202 on
// submit, NDJSON aggregates to EOF, terminal view with per-job refs.
func TestCampaignSubmitStreamAndView(t *testing.T) {
	srv := newCampaignServer(t, queue.Config{Workers: 2, QueueDepth: 16},
		campaign.Config{})

	resp, body := postCampaign(t, srv, gridCampaign())
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var v campaign.View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.Tenant != "acme" || v.Aggregates.Total != 4 {
		t.Fatalf("submit view = %+v", v)
	}

	// The stream ends with the terminal aggregates.
	sresp, err := http.Get(srv.URL + "/v1/campaigns/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content-type = %q", ct)
	}
	var last campaign.Aggregates
	lines := 0
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("stream line %d: %v: %s", lines, err, sc.Bytes())
		}
		lines++
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Fatal("stream emitted no aggregate lines")
	}
	if last.Completed+last.Deduped != 4 || last.Failed != 0 {
		t.Fatalf("terminal aggregates = %+v", last)
	}
	if last.ResultDigest == "" {
		t.Error("terminal aggregates missing result_digest")
	}

	// View with per-job refs, in expansion order, all done.
	vresp, err := http.Get(srv.URL + "/v1/campaigns/" + v.ID + "?jobs=1")
	if err != nil {
		t.Fatal(err)
	}
	defer vresp.Body.Close()
	var final campaign.View
	if err := json.NewDecoder(vresp.Body).Decode(&final); err != nil {
		t.Fatal(err)
	}
	if final.Status != campaign.StatusCompleted {
		t.Fatalf("final status = %s", final.Status)
	}
	if len(final.Jobs) != 4 {
		t.Fatalf("got %d job refs, want 4", len(final.Jobs))
	}
	hashes := map[string]bool{}
	for i, j := range final.Jobs {
		if j.Index != int64(i) || j.Status != string(queue.StatusDone) || j.SpecHash == "" {
			t.Errorf("job ref %d = %+v", i, j)
		}
		hashes[j.SpecHash] = true
	}
	if len(hashes) != 4 {
		t.Errorf("got %d unique spec hashes, want 4", len(hashes))
	}

	// The campaign shows up in the listing.
	lresp, err := http.Get(srv.URL + "/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	defer lresp.Body.Close()
	var list []campaign.View
	if err := json.NewDecoder(lresp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list) != 1 || list[0].ID != v.ID {
		t.Fatalf("list = %+v", list)
	}
}

// TestCampaignOverBudget429 asserts the campaign backpressure contract:
// over-budget submissions get 429 + Retry-After in the same reply shape a
// full queue sends on POST /v1/jobs.
func TestCampaignOverBudget429(t *testing.T) {
	srv := newCampaignServer(t, queue.Config{Workers: 1, QueueDepth: 8},
		campaign.Config{Budget: 2})

	resp, body := postCampaign(t, srv, gridCampaign()) // 4 specs > budget 2
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget submit status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("Retry-After = %q, want \"1\"", got)
	}
	var reply struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(body, &reply); err != nil {
		t.Fatalf("decode 429 body: %v: %s", err, body)
	}
	if reply.Error == "" || reply.RetryAfterSeconds != 1 {
		t.Errorf("429 reply = %+v", reply)
	}
}

func TestCampaignBadSpec400(t *testing.T) {
	srv := newCampaignServer(t, queue.Config{Workers: 1}, campaign.Config{})
	bad := gridCampaign()
	bad.Generator.Kind = "zigzag"
	if resp, body := postCampaign(t, srv, bad); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad generator status %d: %s", resp.StatusCode, body)
	}
	resp, err := http.Post(srv.URL+"/v1/campaigns", "application/json",
		bytes.NewReader([]byte(`{"generator":{"kind":"grid"},"warp":9}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field status %d", resp.StatusCode)
	}
}

// TestCampaignCancelAndNotFound: DELETE is idempotent; unknown IDs are 404
// on every campaign route.
func TestCampaignCancelAndNotFound(t *testing.T) {
	srv := newCampaignServer(t, queue.Config{Workers: 1, QueueDepth: 8},
		campaign.Config{})

	for _, url := range []string{
		srv.URL + "/v1/campaigns/camp-999999",
		srv.URL + "/v1/campaigns/camp-999999/stream",
	} {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status %d, want 404", url, resp.StatusCode)
		}
	}
	req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/campaigns/camp-999999", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown status %d, want 404", resp.StatusCode)
	}

	sresp, body := postCampaign(t, srv, gridCampaign())
	if sresp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", sresp.StatusCode, body)
	}
	var v campaign.View
	if err := json.Unmarshal(body, &v); err != nil {
		t.Fatal(err)
	}
	// Cancel twice: both return the view, the second against a terminal
	// campaign.
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest(http.MethodDelete, srv.URL+"/v1/campaigns/"+v.ID, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		var cv campaign.View
		err = json.NewDecoder(resp.Body).Decode(&cv)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("cancel %d: status %d err %v", i, resp.StatusCode, err)
		}
		if cv.Status == campaign.StatusRunning {
			t.Errorf("cancel %d: campaign still running", i)
		}
	}
}
