package api

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/serve/cache"
	"repro/internal/serve/queue"
)

// newTestServer wires a real scheduler (executing real experiments through
// the runner) and a real on-disk cache behind an httptest server.
func newTestServer(t *testing.T, cfg queue.Config) (*httptest.Server, *queue.Scheduler, *cache.Cache) {
	t.Helper()
	c, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg.Cache = c
	sched := queue.New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	sched.Start(ctx)
	srv := httptest.NewServer(New(sched, c, WithPollInterval(5*time.Millisecond)))
	t.Cleanup(func() {
		srv.Close()
		cancel()
		sched.Wait()
	})
	return srv, sched, c
}

func clamrSpec(steps int, mode string) runner.ExperimentSpec {
	return runner.ExperimentSpec{
		App: runner.AppCLAMR, Mode: mode, Steps: steps,
		NX: 16, NY: 16, MaxLevel: 1, AMRInterval: 5,
	}
}

func selfSpec(steps int, mode string) runner.ExperimentSpec {
	return runner.ExperimentSpec{
		App: runner.AppSELF, Mode: mode, Steps: steps,
		Elements: 2, Order: 3,
	}
}

func submit(t *testing.T, srv *httptest.Server, spec runner.ExperimentSpec) (queue.View, int) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v queue.View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decode submit response (status %d): %v", resp.StatusCode, err)
	}
	return v, resp.StatusCode
}

func fetchResult(t *testing.T, srv *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("result status %d: %s", resp.StatusCode, data)
	}
	return data
}

func fetchStats(t *testing.T, srv *httptest.Server) StatsReply {
	t.Helper()
	resp, err := http.Get(srv.URL + "/v1/cache/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply StatsReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	return reply
}

// TestDuplicateSubmitServedFromCache is the PR's first acceptance test:
// submitting the same spec twice returns byte-identical result payloads, and
// the cache-stats counters prove the second was served without recompute.
func TestDuplicateSubmitServedFromCache(t *testing.T) {
	srv, _, _ := newTestServer(t, queue.Config{Workers: 1})
	spec := clamrSpec(4, "full")

	first, status := submit(t, srv, spec)
	if status != http.StatusAccepted {
		t.Fatalf("first submit status %d, want 202", status)
	}
	firstBytes := fetchResult(t, srv, first.ID)

	// Alias spelling of the same experiment: must hash to the same entry.
	alias := spec
	alias.Mode = "double"
	second, status := submit(t, srv, alias)
	if status != http.StatusOK {
		t.Errorf("cached submit status %d, want 200", status)
	}
	if !second.Cached {
		t.Errorf("second submit view = %+v, want cached", second)
	}
	if second.ID == first.ID {
		t.Errorf("cache answer reused job ID %s", second.ID)
	}
	secondBytes := fetchResult(t, srv, second.ID)
	if !bytes.Equal(firstBytes, secondBytes) {
		t.Errorf("results differ:\n first: %s\nsecond: %s", firstBytes, secondBytes)
	}

	stats := fetchStats(t, srv)
	if s := stats.Scheduler; s.Executed != 1 || s.CacheHits != 1 || s.Submitted != 2 {
		t.Errorf("scheduler stats = %+v, want 1 execution, 1 cache hit", s)
	}
	if stats.Cache == nil || stats.Cache.Hits != 1 || stats.Cache.Entries != 1 {
		t.Errorf("cache stats = %+v, want 1 hit over 1 entry", stats.Cache)
	}
}

// TestConcurrentSubmissionsMatchDirectRuns is the PR's second acceptance
// test: 8 concurrent distinct submissions all complete, and each job's
// result is identical to the same experiment run directly through the
// runner (the cmd/paperbench path).
func TestConcurrentSubmissionsMatchDirectRuns(t *testing.T) {
	srv, _, _ := newTestServer(t, queue.Config{Workers: 4})
	specs := []runner.ExperimentSpec{
		clamrSpec(3, "full"), clamrSpec(3, "half"), clamrSpec(3, "mixed"),
		clamrSpec(4, "full"), clamrSpec(4, "half"), clamrSpec(4, "mixed"),
		selfSpec(3, "min"), selfSpec(3, "full"),
	}

	var wg sync.WaitGroup
	payloads := make([][]byte, len(specs))
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec runner.ExperimentSpec) {
			defer wg.Done()
			v, status := submit(t, srv, spec)
			if status != http.StatusAccepted && status != http.StatusOK {
				t.Errorf("spec %d: submit status %d", i, status)
				return
			}
			payloads[i] = fetchResult(t, srv, v.ID)
		}(i, spec)
	}
	wg.Wait()

	for i, spec := range specs {
		if payloads[i] == nil {
			t.Fatalf("spec %d: no payload", i)
		}
		var got runner.Result
		if err := json.Unmarshal(payloads[i], &got); err != nil {
			t.Fatalf("spec %d: decode result: %v", i, err)
		}
		want, err := runner.Run(context.Background(), spec, runner.RunOpts{})
		if err != nil {
			t.Fatalf("spec %d: direct run: %v", i, err)
		}
		gotHash, err := got.ResultHash()
		if err != nil {
			t.Fatal(err)
		}
		wantHash, err := want.ResultHash()
		if err != nil {
			t.Fatal(err)
		}
		if gotHash != wantHash {
			t.Errorf("spec %d (%s/%s): served result differs from direct run\n served: %+v\n direct: %+v",
				i, spec.App, spec.Mode, got.Deterministic(), want.Deterministic())
		}
		if got.StateHash != want.StateHash {
			t.Errorf("spec %d: state hash %s != direct %s", i, got.StateHash, want.StateHash)
		}
	}
}

func TestStreamEmitsProgressNDJSON(t *testing.T) {
	srv, _, _ := newTestServer(t, queue.Config{Workers: 1})
	v, _ := submit(t, srv, clamrSpec(6, "full"))

	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var views []queue.View
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var view queue.View
		if err := json.Unmarshal(sc.Bytes(), &view); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		views = append(views, view)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(views) == 0 {
		t.Fatal("stream emitted nothing")
	}
	last := views[len(views)-1]
	if last.Status != queue.StatusDone || last.Step != last.Total || last.Total != 6 {
		t.Errorf("final stream view = %+v, want done at 6/6", last)
	}
	for i := 1; i < len(views); i++ {
		if views[i].Step < views[i-1].Step {
			t.Errorf("stream went backwards: %+v -> %+v", views[i-1], views[i])
		}
	}
}

func TestErrorPaths(t *testing.T) {
	srv, _, _ := newTestServer(t, queue.Config{Workers: 1})

	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"app":"nope","mode":"full","steps":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spec status %d, want 400", resp.StatusCode)
	}

	resp, err = http.Post(srv.URL+"/v1/jobs", "application/json",
		bytes.NewReader([]byte(`{"app":"clamr","bogus_field":1}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field status %d, want 400", resp.StatusCode)
	}

	for _, path := range []string{"/v1/jobs/job-999999", "/v1/jobs/job-999999/result", "/v1/jobs/job-999999/stream"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestHealthzDegradesOnJournalFault: a daemon whose journal cannot fsync
// must refuse new admissions (503) and report degraded on /healthz — and
// recover both once the fault clears.
func TestHealthzDegradesOnJournalFault(t *testing.T) {
	c, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	j, err := queue.OpenJournal(filepath.Join(t.TempDir(), "journal.ndjson"))
	if err != nil {
		t.Fatal(err)
	}
	sched := queue.New(queue.Config{Workers: 1, Cache: c, Journal: j})
	ctx, cancel := context.WithCancel(context.Background())
	sched.Start(ctx)
	srv := httptest.NewServer(New(sched, c))
	t.Cleanup(func() {
		srv.Close()
		cancel()
		sched.Wait()
		j.Close()
	})

	get := func() (int, string) {
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp.StatusCode, string(body)
	}
	if code, body := get(); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("healthy healthz = %d %q", code, body)
	}

	if err := fault.Arm("journal.sync=always"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()
	// An admission attempt forces a journal append; the failed fsync
	// rejects the submission — never acked, never owed.
	if _, status := submit(t, srv, clamrSpec(2, "full")); status != http.StatusServiceUnavailable {
		t.Fatalf("submit with broken journal = %d, want 503", status)
	}
	code, body := get()
	if code != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz = %d %q, want 503", code, body)
	}
	var degraded struct {
		Status           string   `json:"status"`
		Reasons          []string `json:"reasons"`
		UptimeSeconds    float64  `json:"uptime_seconds"`
		Build            string   `json:"build"`
		GoVersion        string   `json:"go_version"`
		LastJournalError string   `json:"last_journal_error"`
	}
	if err := json.Unmarshal([]byte(body), &degraded); err != nil {
		t.Fatal(err)
	}
	if degraded.Status != "degraded" || len(degraded.Reasons) == 0 || !strings.Contains(degraded.Reasons[0], "journal") {
		t.Errorf("degraded detail = %+v", degraded)
	}
	if degraded.UptimeSeconds <= 0 {
		t.Errorf("degraded payload uptime = %v, want > 0", degraded.UptimeSeconds)
	}
	if degraded.Build == "" || !strings.HasPrefix(degraded.GoVersion, "go") {
		t.Errorf("degraded payload build info = %q / %q", degraded.Build, degraded.GoVersion)
	}
	if !strings.Contains(degraded.LastJournalError, "injected failure") {
		t.Errorf("degraded payload last journal error = %q, want the injected fsync failure", degraded.LastJournalError)
	}

	fault.Disarm()
	// The next successful append clears the signal.
	v, status := submit(t, srv, clamrSpec(2, "full"))
	if status != http.StatusAccepted {
		t.Fatalf("submit after fault cleared = %d, want 202", status)
	}
	fetchResult(t, srv, v.ID)
	if code, body := get(); code != http.StatusOK || body != "ok\n" {
		t.Errorf("healed healthz = %d %q", code, body)
	}
}

func TestSubmitTimeoutParam(t *testing.T) {
	srv, _, _ := newTestServer(t, queue.Config{Workers: 1})
	resp, err := http.Post(srv.URL+"/v1/jobs?timeout=bogus", "application/json",
		bytes.NewReader([]byte(`{"app":"clamr","mode":"full","steps":1,"nx":16,"ny":16}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus timeout status %d, want 400", resp.StatusCode)
	}

	body, _ := json.Marshal(clamrSpec(2, "full"))
	resp, err = http.Post(srv.URL+"/v1/jobs?timeout=1m", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var v queue.View
	err = json.NewDecoder(resp.Body).Decode(&v)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("timed submit = %d, %v", resp.StatusCode, err)
	}
	fetchResult(t, srv, v.ID)
}

func TestHealthzAndJobList(t *testing.T) {
	srv, _, _ := newTestServer(t, queue.Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || string(body) != "ok\n" {
		t.Errorf("healthz = %d %q", resp.StatusCode, body)
	}

	for i := 0; i < 3; i++ {
		v, _ := submit(t, srv, clamrSpec(2+i, "full"))
		fetchResult(t, srv, v.ID)
	}
	resp, err = http.Get(srv.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var views []queue.View
	err = json.NewDecoder(resp.Body).Decode(&views)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(views) != 3 {
		t.Fatalf("job list has %d entries, want 3", len(views))
	}
	for i, v := range views {
		if want := fmt.Sprintf("job-%06d", i+1); v.ID != want {
			t.Errorf("job list order: got %s at %d, want %s", v.ID, i, want)
		}
	}
}
