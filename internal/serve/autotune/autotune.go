// Package autotune closes the precision loop: it resolves accuracy-budgeted
// specs (mode "auto" plus max_mass_error / max_linecut_linf) to the cheapest
// concrete precision mode the fleet's accumulated evidence supports, per
// (app, scenario-shape).
//
// The service has always learned upward — the runner's guards escalate
// half→min→mixed→full on numerical failure — but nothing ever demoted a
// workload back down once the fleet had evidence it was safe. This package
// is internal/tuner's greedy-demotion search recast as an online policy:
// start every shape at full, and after a warm streak of clean results probe
// one rung down the ladder. A probe only commits if a shadow run on a
// second executor reproduces it bit-identically (the -verify-n machinery)
// and its measured fidelity fits the budgets that asked for it; a failed
// probe or a later escalation reverts the entry and quarantines the
// demotion with hysteresis (the warm requirement doubles).
//
// The decision table is journaled through the scheduler's WAL (`tuned`
// records, latest-per-key across compaction), so a SIGKILL'd coordinator
// recovers its learned state — including the escalation histories of jobs
// that finished before the crash, which replay now surfaces.
package autotune

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve/queue"
)

// VerifyFunc executes a concrete spec out-of-band (bypassing the queue and
// the result cache) and reports the primary result plus whether a shadow
// run on a second executor reproduced its final-state hash bit-identically.
// The coordinator's VerifyDemotion is the production implementation.
type VerifyFunc func(ctx context.Context, spec runner.ExperimentSpec) (*runner.Result, bool, error)

// ladder orders the concrete precision modes cheapest-first — the demotion
// direction, the reverse of precision.Mode's escalation order.
var ladder = [...]string{"half", "min", "mixed", "full"}

func rank(mode string) int {
	for i, m := range ladder {
		if m == mode {
			return i
		}
	}
	return len(ladder) - 1
}

// above returns the next more-precise rung ("full" saturates).
func above(mode string) string {
	if r := rank(mode); r+1 < len(ladder) {
		return ladder[r+1]
	}
	return "full"
}

// below returns the next cheaper rung, false at the bottom.
func below(mode string) (string, bool) {
	r := rank(mode)
	if r == 0 {
		return "", false
	}
	return ladder[r-1], true
}

// Key derives the scenario-shape key for a spec: the normalized spec with
// mode, step count and budgets zeroed. Mode is excluded because the key
// indexes the decision *about* the mode; steps because fidelity evidence
// for a shape transfers across sweep lengths (the worst observed value is
// kept), so a sweep that varies only steps warms a single entry.
func Key(spec runner.ExperimentSpec) (string, error) {
	n, err := spec.Normalized()
	if err != nil {
		return "", err
	}
	n.Mode = ""
	n.Steps = 0
	n.MaxMassError = 0
	n.MaxLinecutLinf = 0
	b, err := json.Marshal(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// evidence is what the table knows about one (shape, mode): worst measured
// fidelity, whether a shadow run verified the mode bit-identically, and the
// modeled energy of the verifying run.
type evidence struct {
	// MassError is the worst |relative mass error| observed at this mode
	// (nil = never measured). Linf is the worst L∞ distance of the line
	// cut from the full-precision reference.
	MassError *float64 `json:"mass_error,omitempty"`
	Linf      *float64 `json:"linf,omitempty"`
	// Verified marks the mode shadow-verified: two executors reproduced
	// the run bit-identically. Only verified evidence resolves requests.
	Verified bool    `json:"verified,omitempty"`
	Joules   float64 `json:"joules,omitempty"`
	Dollars  float64 `json:"dollars,omitempty"`
}

// state is the journaled form of one decision-table entry.
type state struct {
	App string `json:"app"`
	// Spec is the latest concrete spec observed for the shape — the probe
	// template (its steps are overridden to RefSteps when a reference
	// exists, so probes re-run the exact scenario the reference measured).
	Spec runner.ExperimentSpec `json:"spec"`
	// Committed is the cheapest shadow-verified mode ("full" until a
	// demotion commits).
	Committed string `json:"committed"`
	// Floor is the lowest admissible mode: an escalation at mode M floors
	// everything at or below M out. "" means no floor (half admissible).
	Floor string `json:"floor,omitempty"`
	// Warm is the current warm-streak requirement before the next probe;
	// it doubles on every revert or failed probe (hysteresis) and is 0
	// until the first incident (the configured default applies).
	Warm     int                 `json:"warm,omitempty"`
	Evidence map[string]evidence `json:"evidence,omitempty"`
	// Full-precision reference: the line cut, the steps it was captured
	// at, and the modeled energy of a full run at those steps — the
	// fidelity yardstick and the savings baseline.
	RefLineCut  *runner.Series `json:"ref_line_cut,omitempty"`
	RefSteps    int            `json:"ref_steps,omitempty"`
	FullJoules  float64        `json:"full_joules,omitempty"`
	FullDollars float64        `json:"full_dollars,omitempty"`
}

// entry is one live decision-table row: journaled state plus volatile
// warm-up and probe bookkeeping.
type entry struct {
	state
	key     string
	streak  int  // consecutive clean results since the last incident/probe
	probing bool // one in-flight probe per key
	// Budgets from the most recent auto resolution for this shape: a probe
	// must fit them to commit (a budget breach blocks the demotion).
	lastMaxMass float64
	lastMaxLinf float64
	// Cumulative modeled savings vs the full baseline (volatile, like the
	// metrics it feeds).
	savedJoules  float64
	savedDollars float64
}

func (e *entry) warmNeed(def int) int {
	if e.Warm > 0 {
		return e.Warm
	}
	return def
}

// floorRank is the rank of the lowest admissible mode.
func (e *entry) floorRank() int {
	if e.Floor == "" {
		return 0
	}
	return rank(e.Floor)
}

// recomputeCommitted resets Committed to the cheapest verified mode at or
// above the floor (full when none).
func (e *entry) recomputeCommitted() {
	e.Committed = "full"
	for _, m := range ladder {
		if rank(m) < e.floorRank() {
			continue
		}
		if ev, ok := e.Evidence[m]; ok && ev.Verified {
			e.Committed = m
			return
		}
	}
}

// Config wires a Tuner.
type Config struct {
	// Journal, when non-nil, persists the decision table (latest record
	// per shape key, surviving compaction).
	Journal *queue.Journal
	// Verify runs the shadow-verified demotion probe. nil disables
	// demotion entirely: auto specs then always resolve to full.
	Verify VerifyFunc
	// WarmRuns is the clean-result streak required before a probe
	// (default 3); reverts double the requirement per entry.
	WarmRuns int
	// ProbeTimeout bounds one demotion probe, primary plus shadow
	// (default 2m).
	ProbeTimeout time.Duration
	// Obs, when non-nil, registers the autotune instruments.
	Obs *obs.Registry
	// Log, when non-nil, receives autotune decisions.
	Log *obs.Logger
}

// Tuner is the closed-loop precision policy. It implements the scheduler's
// queue.AutoTuner hooks: Resolve at admission, ObserveResult /
// ObserveEscalation from the execution loop, Savings at completion.
type Tuner struct {
	cfg Config
	log *obs.Logger

	decisions    obs.CounterVec // label: decision
	demotionsCtr obs.Counter
	revertsCtr   obs.Counter
	savedJoules  obs.FloatCounterVec // label: mode
	savedDollars obs.FloatCounterVec // label: mode

	mu      sync.Mutex
	entries map[string]*entry

	probeWG sync.WaitGroup
}

// New builds a Tuner.
func New(cfg Config) *Tuner {
	if cfg.WarmRuns <= 0 {
		cfg.WarmRuns = 3
	}
	if cfg.ProbeTimeout <= 0 {
		cfg.ProbeTimeout = 2 * time.Minute
	}
	t := &Tuner{cfg: cfg, log: cfg.Log, entries: map[string]*entry{}}
	if cfg.Obs != nil {
		t.decisions = cfg.Obs.CounterVec("precisiond_autotune_total",
			"Autotune decisions: demoted, full_cold, full_no_evidence, full_budget, "+
				"probe_committed, probe_rejected, escalated.", "decision")
		t.demotionsCtr = cfg.Obs.Counter("precisiond_autotune_demotions_total",
			"Shadow-verified precision demotions committed to the decision table.")
		t.revertsCtr = cfg.Obs.Counter("precisiond_autotune_reverts_total",
			"Committed demotions reverted by escalation evidence.")
		t.savedJoules = cfg.Obs.FloatCounterVec("precisiond_autotune_saved_joules_total",
			"Modeled joules saved by runs resolved below full precision, by mode.", "mode")
		t.savedDollars = cfg.Obs.FloatCounterVec("precisiond_autotune_saved_dollars_total",
			"Modeled dollars saved by runs resolved below full precision, by mode.", "mode")
	}
	return t
}

// ensureLocked returns the entry for key, creating it from the concrete
// template spec if absent. Caller holds t.mu.
func (t *Tuner) ensureLocked(key string, tmpl runner.ExperimentSpec) *entry {
	e, ok := t.entries[key]
	if !ok {
		e = &entry{key: key}
		e.App = tmpl.App
		e.Spec = tmpl
		e.Committed = "full"
		e.Evidence = map[string]evidence{}
		t.entries[key] = e
	}
	return e
}

// Resolve maps a spec onto the cheapest concrete mode the table's verified
// evidence shows meets its budgets. Concrete specs pass through normalized;
// auto specs resolve to full until evidence exists. The returned spec has
// its budgets stripped, so it hashes exactly like a plain submission of the
// same shape at the chosen mode — the cache/dedup contract is untouched.
func (t *Tuner) Resolve(spec runner.ExperimentSpec) (runner.ExperimentSpec, error) {
	n, err := spec.Normalized()
	if err != nil {
		return spec, err
	}
	if n.Mode != runner.ModeAuto {
		return n, nil
	}
	key, err := Key(n)
	if err != nil {
		return spec, err
	}
	mode, decision := "full", "full_cold"
	t.mu.Lock()
	if e, ok := t.entries[key]; ok {
		decision = "full_no_evidence"
		e.lastMaxMass, e.lastMaxLinf = n.MaxMassError, n.MaxLinecutLinf
		for _, m := range ladder[:len(ladder)-1] { // cheapest first, full excluded
			if rank(m) < e.floorRank() {
				continue
			}
			ev, ok := e.Evidence[m]
			if !ok || !ev.Verified {
				continue
			}
			if !budgetOK(n, ev) {
				decision = "full_budget"
				continue
			}
			mode, decision = m, "demoted"
			break
		}
	} else {
		e := t.ensureLocked(key, n.Concrete("full"))
		e.lastMaxMass, e.lastMaxLinf = n.MaxMassError, n.MaxLinecutLinf
	}
	t.mu.Unlock()
	t.decisions.With(decision).Inc()
	t.log.Debug("autotune resolved",
		obs.Str("app", n.App), obs.Str("mode", mode), obs.Str("decision", decision))
	return n.Concrete(mode), nil
}

// budgetOK reports whether measured evidence fits the request's budgets.
// A zero budget is unconstrained on that axis; a set budget requires a
// finite measurement within it.
func budgetOK(req runner.ExperimentSpec, ev evidence) bool {
	if req.MaxMassError > 0 {
		if ev.MassError == nil || !finite(*ev.MassError) || *ev.MassError > req.MaxMassError {
			return false
		}
	}
	if req.MaxLinecutLinf > 0 {
		if ev.Linf == nil || !finite(*ev.Linf) || *ev.Linf > req.MaxLinecutLinf {
			return false
		}
	}
	return true
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// ObserveResult feeds one completed (non-cached) run into the table: full
// runs refresh the fidelity reference and the savings baseline, demoted
// runs fold their measured fidelity in worst-case, and a clean streak at
// the committed frontier launches the next demotion probe.
func (t *Tuner) ObserveResult(spec runner.ExperimentSpec, res *runner.Result) {
	if res == nil {
		return
	}
	key, err := Key(spec)
	if err != nil {
		return
	}
	mode := spec.Mode
	var probeSpec *runner.ExperimentSpec
	var savedJ, savedD float64
	t.mu.Lock()
	e := t.ensureLocked(key, spec)
	e.Spec = spec
	changed := false
	if mode == "full" {
		if res.LineCut != nil && len(res.LineCut.Y) > 0 {
			if e.RefLineCut == nil || e.RefSteps != res.Steps {
				changed = true
			}
			lc := *res.LineCut
			e.RefLineCut = &lc
			e.RefSteps = res.Steps
		}
		if res.Energy != nil && res.Steps > 0 {
			if e.FullJoules == 0 {
				changed = true
			}
			e.FullJoules = res.Energy.Joules
			e.FullDollars = res.Energy.CostDollars
		}
		ev := e.Evidence["full"]
		ev.Verified = true // full is the reference, definitionally faithful
		if foldFidelityLocked(&ev, e, res) {
			changed = true
		}
		e.Evidence["full"] = ev
	} else {
		ev := e.Evidence[mode]
		if foldFidelityLocked(&ev, e, res) {
			changed = true
		}
		e.Evidence[mode] = ev
		if e.FullJoules > 0 && e.RefSteps > 0 && res.Energy != nil && res.Steps > 0 {
			scale := float64(res.Steps) / float64(e.RefSteps)
			if dj := e.FullJoules*scale - res.Energy.Joules; dj > 0 {
				savedJ = dj
				savedD = math.Max(0, e.FullDollars*scale-res.Energy.CostDollars)
				e.savedJoules += savedJ
				e.savedDollars += savedD
			}
		}
	}
	e.streak++
	if t.cfg.Verify != nil && !e.probing && e.streak >= e.warmNeed(t.cfg.WarmRuns) {
		if cand, ok := below(e.Committed); ok && rank(cand) >= e.floorRank() {
			if !e.Evidence[cand].Verified {
				e.probing = true
				ps := e.Spec.Concrete(cand)
				if e.RefSteps > 0 {
					ps.Steps = e.RefSteps
				}
				probeSpec = &ps
			}
		}
	}
	t.mu.Unlock()
	if savedJ > 0 {
		t.savedJoules.With(mode).Add(savedJ)
		t.savedDollars.With(mode).Add(savedD)
	}
	if changed {
		t.journalEntry(key)
	}
	if probeSpec != nil {
		t.probeWG.Add(1)
		go t.probe(key, *probeSpec)
	}
}

// foldFidelityLocked folds a run's measured fidelity into ev worst-case:
// |mass error| from the result, L∞ of its line cut against the entry's
// full-precision reference (only when captured at the same step count).
// Reports whether ev changed. Caller holds t.mu.
func foldFidelityLocked(ev *evidence, e *entry, res *runner.Result) bool {
	changed := false
	if res.MassError != nil {
		m := math.Abs(*res.MassError)
		if ev.MassError == nil || m > *ev.MassError {
			ev.MassError = &m
			changed = true
		}
	}
	if e.RefLineCut != nil && res.LineCut != nil && res.Steps == e.RefSteps &&
		len(res.LineCut.Y) == len(e.RefLineCut.Y) {
		linf := 0.0
		for i, y := range res.LineCut.Y {
			if d := math.Abs(y - e.RefLineCut.Y[i]); d > linf || math.IsNaN(d) {
				linf = d
			}
			if math.IsNaN(linf) {
				break // non-finite dominates everything
			}
		}
		if ev.Linf == nil || linf > *ev.Linf ||
			(math.IsNaN(linf) && !math.IsNaN(*ev.Linf)) {
			ev.Linf = &linf
			changed = true
		}
	}
	if res.Energy != nil && ev.Joules == 0 {
		ev.Joules = res.Energy.Joules
		ev.Dollars = res.Energy.CostDollars
		changed = true
	}
	return changed
}

// probe runs the shadow-verified demotion check for key at probeSpec's mode
// and commits or rejects the rung.
func (t *Tuner) probe(key string, probeSpec runner.ExperimentSpec) {
	defer t.probeWG.Done()
	ctx, cancel := context.WithTimeout(context.Background(), t.cfg.ProbeTimeout)
	defer cancel()
	res, verified, err := t.cfg.Verify(ctx, probeSpec)
	mode := probeSpec.Mode

	t.mu.Lock()
	e, ok := t.entries[key]
	if !ok {
		t.mu.Unlock()
		return
	}
	e.probing = false
	reject := func(cause string) {
		// Hysteresis: the rung stays quarantined behind a doubled warm
		// requirement; the streak restarts from zero.
		e.Warm = e.warmNeed(t.cfg.WarmRuns) * 2
		e.streak = 0
		t.mu.Unlock()
		t.decisions.With("probe_rejected").Inc()
		t.log.Info("autotune demotion rejected",
			obs.Str("app", probeSpec.App), obs.Str("mode", mode), obs.Str("cause", cause))
		t.journalEntry(key)
	}
	switch {
	case err != nil:
		reject(fmt.Sprintf("probe error: %v", err))
		return
	case res == nil || !verified:
		reject("shadow run not bit-identical (or no second executor)")
		return
	}
	ev := evidence{Verified: true}
	foldFidelityLocked(&ev, e, res)
	if ev.MassError != nil && !finite(*ev.MassError) {
		reject("non-finite mass error")
		return
	}
	if ev.Linf != nil && !finite(*ev.Linf) {
		reject("non-finite line-cut deviation")
		return
	}
	// The budgets that warmed this probe must hold, or the demotion is a
	// breach and never commits.
	req := runner.ExperimentSpec{MaxMassError: e.lastMaxMass, MaxLinecutLinf: e.lastMaxLinf}
	if !budgetOK(req, ev) {
		reject("measured fidelity breaches the requesting budget")
		return
	}
	e.Evidence[mode] = ev
	e.recomputeCommitted()
	e.streak = 0 // warm at the new frontier before probing the next rung
	t.mu.Unlock()
	t.demotionsCtr.Inc()
	t.decisions.With("probe_committed").Inc()
	t.log.Info("autotune demotion committed",
		obs.Str("app", probeSpec.App), obs.Str("mode", mode),
		obs.Str("state", res.StateHash))
	t.journalEntry(key)
}

// ObserveEscalation feeds a numerical failure at esc.FromMode into the
// table: that mode and everything below it is floored out, committed
// demotions at or below it revert, and the warm requirement doubles.
func (t *Tuner) ObserveEscalation(spec runner.ExperimentSpec, esc runner.Escalation) {
	key, err := Key(spec)
	if err != nil {
		return
	}
	failed := esc.FromMode
	t.mu.Lock()
	e := t.ensureLocked(key, spec.Concrete("full"))
	newFloor := above(failed)
	if rank(newFloor) > e.floorRank() {
		e.Floor = newFloor
	}
	reverted := false
	for m := range e.Evidence {
		if m != "full" && rank(m) <= rank(failed) {
			delete(e.Evidence, m)
		}
	}
	if rank(e.Committed) <= rank(failed) {
		e.recomputeCommitted()
		reverted = true
	}
	e.Warm = e.warmNeed(t.cfg.WarmRuns) * 2
	e.streak = 0
	t.mu.Unlock()
	if reverted {
		t.revertsCtr.Inc()
	}
	t.decisions.With("escalated").Inc()
	t.log.Info("autotune floor raised",
		obs.Str("app", spec.App), obs.Str("failed_mode", failed),
		obs.Str("floor", newFloor), obs.Str("reverted", fmt.Sprint(reverted)))
	t.journalEntry(key)
}

// Savings reports the modeled energy/cost a completed run saved against the
// shape's full-precision baseline (scaled to the run's step count). ok is
// false for full runs, unpriced runs, and shapes with no baseline yet.
func (t *Tuner) Savings(spec runner.ExperimentSpec, res *runner.Result) (joules, dollars float64, ok bool) {
	if res == nil || res.Energy == nil || spec.Mode == "full" || res.Steps <= 0 {
		return 0, 0, false
	}
	key, err := Key(spec)
	if err != nil {
		return 0, 0, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	e, exists := t.entries[key]
	if !exists || e.FullJoules <= 0 || e.RefSteps <= 0 {
		return 0, 0, false
	}
	scale := float64(res.Steps) / float64(e.RefSteps)
	joules = e.FullJoules*scale - res.Energy.Joules
	dollars = e.FullDollars*scale - res.Energy.CostDollars
	if joules < 0 {
		joules = 0
	}
	if dollars < 0 {
		dollars = 0
	}
	return joules, dollars, true
}

// journalEntry persists key's current state as a `tuned` WAL record.
func (t *Tuner) journalEntry(key string) {
	if t.cfg.Journal == nil {
		return
	}
	t.mu.Lock()
	e, ok := t.entries[key]
	if !ok {
		t.mu.Unlock()
		return
	}
	b, err := json.Marshal(e.state)
	t.mu.Unlock()
	if err != nil {
		return
	}
	if err := t.cfg.Journal.Tuned(key, b); err != nil {
		t.log.Warn("autotune journal append failed", obs.Str("err", err.Error()))
	}
}

// Recover rebuilds the decision table from the journal: the latest tuned
// record per key, then the escalation histories of jobs that reached a
// terminal state before the restart — evidence replay used to drop with
// the done record, now surfaced so floors survive without re-observing
// the failures.
func (t *Tuner) Recover(j *queue.Journal) error {
	if j == nil {
		return nil
	}
	t.mu.Lock()
	for key, raw := range j.TunedRecords() {
		var st state
		if err := json.Unmarshal(raw, &st); err != nil {
			t.mu.Unlock()
			return fmt.Errorf("autotune: tuned record for %q: %w", key, err)
		}
		if st.Evidence == nil {
			st.Evidence = map[string]evidence{}
		}
		if st.Committed == "" {
			st.Committed = "full"
		}
		t.entries[key] = &entry{state: st, key: key}
	}
	n := len(t.entries)
	t.mu.Unlock()
	for _, de := range j.DoneEscalations() {
		for _, esc := range de.Escalations {
			t.ObserveEscalation(de.Spec, esc)
		}
	}
	t.log.Info("autotune table recovered",
		obs.Str("entries", fmt.Sprint(n)),
		obs.Str("done_escalations", fmt.Sprint(len(j.DoneEscalations()))))
	return nil
}

// Quiesce blocks until every in-flight demotion probe has settled — test
// and shutdown hook.
func (t *Tuner) Quiesce() { t.probeWG.Wait() }

// EvidenceView is one mode's row in an entry view.
type EvidenceView struct {
	MassError *float64 `json:"mass_error,omitempty"`
	Linf      *float64 `json:"linf,omitempty"`
	Verified  bool     `json:"verified"`
	Joules    float64  `json:"joules,omitempty"`
	Dollars   float64  `json:"dollars,omitempty"`
}

// EntryView is one decision-table row in GET /v1/autotune.
type EntryView struct {
	Key          string                  `json:"key"`
	App          string                  `json:"app"`
	Committed    string                  `json:"committed"`
	Floor        string                  `json:"floor,omitempty"`
	Streak       int                     `json:"streak"`
	WarmRequired int                     `json:"warm_required"`
	Probing      bool                    `json:"probing,omitempty"`
	RefSteps     int                     `json:"ref_steps,omitempty"`
	FullJoules   float64                 `json:"full_joules,omitempty"`
	FullDollars  float64                 `json:"full_dollars,omitempty"`
	SavedJoules  float64                 `json:"saved_joules"`
	SavedDollars float64                 `json:"saved_dollars"`
	Evidence     map[string]EvidenceView `json:"evidence,omitempty"`
}

// Snapshot returns the decision table sorted by key.
func (t *Tuner) Snapshot() []EntryView {
	t.mu.Lock()
	out := make([]EntryView, 0, len(t.entries))
	for key, e := range t.entries {
		v := EntryView{
			Key:          key,
			App:          e.App,
			Committed:    e.Committed,
			Floor:        e.Floor,
			Streak:       e.streak,
			WarmRequired: e.warmNeed(t.cfg.WarmRuns),
			Probing:      e.probing,
			RefSteps:     e.RefSteps,
			FullJoules:   e.FullJoules,
			FullDollars:  e.FullDollars,
			SavedJoules:  e.savedJoules,
			SavedDollars: e.savedDollars,
		}
		if len(e.Evidence) > 0 {
			v.Evidence = make(map[string]EvidenceView, len(e.Evidence))
			for m, ev := range e.Evidence {
				v.Evidence[m] = EvidenceView{
					MassError: ev.MassError, Linf: ev.Linf,
					Verified: ev.Verified, Joules: ev.Joules, Dollars: ev.Dollars,
				}
			}
		}
		out = append(out, v)
	}
	t.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k-1].Key > out[k].Key; k-- {
			out[k-1], out[k] = out[k], out[k-1]
		}
	}
	return out
}
