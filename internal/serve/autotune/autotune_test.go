package autotune

import (
	"context"
	"math"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/precision"
	"repro/internal/runner"
	"repro/internal/serve/queue"
	"repro/internal/tuner"
)

// testSpec is the canonical auto-mode request the tests submit.
func testSpec(budget float64) runner.ExperimentSpec {
	return runner.ExperimentSpec{
		App: runner.AppCLAMR, Mode: runner.ModeAuto, Steps: 10,
		NX: 8, NY: 8, MaxMassError: budget,
	}
}

// syntheticVerify returns a VerifyFunc whose probe results carry the given
// per-mode mass error, always shadow-verified.
func syntheticVerify(errFor func(mode string) float64) VerifyFunc {
	return func(_ context.Context, spec runner.ExperimentSpec) (*runner.Result, bool, error) {
		e := errFor(spec.Mode)
		return &runner.Result{
			Spec: spec, Steps: spec.Steps, StateHash: "h-" + spec.Mode, MassError: &e,
		}, true, nil
	}
}

// converge drives the online loop: resolve, "run" at the resolved mode,
// observe, settle probes — until the resolved mode is stable.
func converge(t *testing.T, tn *Tuner, budget float64, errFor func(string) float64, iters int) string {
	t.Helper()
	mode := ""
	for i := 0; i < iters; i++ {
		resolved, err := tn.Resolve(testSpec(budget))
		if err != nil {
			t.Fatalf("resolve: %v", err)
		}
		mode = resolved.Mode
		e := errFor(mode)
		tn.ObserveResult(resolved, &runner.Result{
			Spec: resolved, Steps: resolved.Steps, StateHash: "h-" + mode, MassError: &e,
		})
		tn.Quiesce()
	}
	return mode
}

// TestGreedyParityWithTuner checks the online policy against
// internal/tuner's greedy offline demotion on identical synthetic fidelity
// histories: one knob whose rounding error at each precision is measured by
// the offline tuner, fed verbatim to the online table as per-mode mass
// error. Both searches must settle on the same rung of their ladders for
// every accuracy bound.
func TestGreedyParityWithTuner(t *testing.T) {
	const c = 1.37 // representable in neither binary32 nor binary16
	errSingle := math.Abs(float64(float32(c))-c) / c
	errHalf := math.Abs(precision.Half.Demote(c)-c) / c
	if !(errHalf > errSingle && errSingle > 0) {
		t.Fatalf("bad synthetic errors: half=%g single=%g", errHalf, errSingle)
	}

	off, err := tuner.New(func(r *tuner.Rounder) []float64 {
		return []float64{r.R("x", c)}
	})
	if err != nil {
		t.Fatal(err)
	}

	// The online ladder's half rung carries binary16's error, min and mixed
	// carry binary32's, full is the reference — the same fidelity history
	// the offline knob exhibits, so the searches are comparable: the
	// offline precision maps onto the cheapest online rung with its error.
	errFor := func(mode string) float64 {
		switch mode {
		case "half":
			return errHalf
		case "min", "mixed":
			return errSingle
		default:
			return 0
		}
	}
	precToMode := map[tuner.Prec]string{
		tuner.Half: "half", tuner.Single: "min", tuner.Double: "full",
	}

	for _, bound := range []float64{
		errHalf * 2, errHalf, (errSingle + errHalf) / 2, errSingle, errSingle / 2,
	} {
		offline := off.SearchGreedy(bound)
		want := precToMode[offline.Assignment["x"]]

		tn := New(Config{Verify: syntheticVerify(errFor), WarmRuns: 1})
		got := converge(t, tn, bound, errFor, 40)
		if got != want {
			t.Errorf("bound %g: offline greedy settled at %s (→ want mode %q), online policy resolved %q",
				bound, offline.Assignment["x"], want, got)
		}
	}
}

// TestDemotionCommitAndBudget: a shape warms, probes, and commits only the
// rungs whose measured fidelity fits the requesting budget.
func TestDemotionCommitAndBudget(t *testing.T) {
	em := 1e-6
	errFor := func(mode string) float64 {
		if mode == "full" {
			return 0
		}
		return em
	}
	tn := New(Config{Verify: syntheticVerify(errFor), WarmRuns: 1})

	// Budget below the demoted rungs' error: every probe is rejected.
	if got := converge(t, tn, em/10, errFor, 10); got != "full" {
		t.Fatalf("tight budget resolved %q, want full", got)
	}
	// A generous budget demotes all the way down.
	tn = New(Config{Verify: syntheticVerify(errFor), WarmRuns: 1})
	if got := converge(t, tn, em*10, errFor, 30); got != "half" {
		t.Fatalf("loose budget resolved %q, want half", got)
	}

	// Unverified shadow: demotion never commits.
	noShadow := func(_ context.Context, spec runner.ExperimentSpec) (*runner.Result, bool, error) {
		e := errFor(spec.Mode)
		return &runner.Result{Spec: spec, Steps: spec.Steps, MassError: &e, StateHash: "x"}, false, nil
	}
	tn = New(Config{Verify: noShadow, WarmRuns: 1})
	if got := converge(t, tn, em*10, errFor, 10); got != "full" {
		t.Fatalf("unverified shadow resolved %q, want full", got)
	}
}

// TestEscalationRevertsAndFloors: a numerical failure at a committed rung
// reverts the table above it, quarantines the rung (floor + doubled warm),
// and later resolutions never descend past the floor.
func TestEscalationRevertsAndFloors(t *testing.T) {
	errFor := func(string) float64 { return 0 }
	tn := New(Config{Verify: syntheticVerify(errFor), WarmRuns: 1})
	if got := converge(t, tn, 1e-3, errFor, 30); got != "half" {
		t.Fatalf("warm-up resolved %q, want half", got)
	}

	spec := testSpec(1e-3)
	resolved, _ := tn.Resolve(spec)
	tn.ObserveEscalation(resolved, runner.Escalation{FromMode: "half", ToMode: "min", Reason: "guard"})

	views := tn.Snapshot()
	if len(views) != 1 {
		t.Fatalf("got %d entries, want 1", len(views))
	}
	if views[0].Floor != "min" {
		t.Fatalf("floor = %q, want min", views[0].Floor)
	}
	if views[0].Committed == "half" {
		t.Fatal("committed rung survived the escalation that refuted it")
	}
	// The table re-demotes only down to the floor.
	if got := converge(t, tn, 1e-3, errFor, 40); got != "min" {
		t.Fatalf("post-escalation resolved %q, want min (the floor)", got)
	}
}

// TestConcurrentLearnResolve hammers the table from many goroutines — the
// race detector is the assertion.
func TestConcurrentLearnResolve(t *testing.T) {
	errFor := func(string) float64 { return 1e-9 }
	tn := New(Config{Verify: syntheticVerify(errFor), WarmRuns: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				spec := testSpec(1e-3)
				spec.NX = 8 + g%4 // a few distinct shapes
				resolved, err := tn.Resolve(spec)
				if err != nil {
					t.Error(err)
					return
				}
				e := 1e-9
				res := &runner.Result{Spec: resolved, Steps: resolved.Steps, StateHash: "h", MassError: &e}
				tn.ObserveResult(resolved, res)
				tn.Savings(resolved, res)
				if i%10 == 0 {
					tn.Snapshot()
				}
				if i%17 == 0 {
					tn.ObserveEscalation(resolved, runner.Escalation{FromMode: "half", ToMode: "min"})
				}
			}
		}(g)
	}
	wg.Wait()
	tn.Quiesce()
}

// TestJournalRecovery: learned state round-trips through the WAL — a new
// Tuner over a reopened journal resolves exactly like the one that learned.
func TestJournalRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, err := queue.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	errFor := func(string) float64 { return 0 }
	tn := New(Config{Journal: j, Verify: syntheticVerify(errFor), WarmRuns: 1})
	if got := converge(t, tn, 1e-3, errFor, 30); got != "half" {
		t.Fatalf("warm-up resolved %q, want half", got)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := queue.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	recovered := New(Config{Journal: j2, Verify: syntheticVerify(errFor), WarmRuns: 1})
	if err := recovered.Recover(j2); err != nil {
		t.Fatal(err)
	}
	resolved, err := recovered.Resolve(testSpec(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	if resolved.Mode != "half" {
		t.Fatalf("recovered table resolved %q, want half (no re-warm-up)", resolved.Mode)
	}
}

// TestRecoverDoneEscalations: escalation history of jobs that finished
// before a crash — previously dropped with the done record — floors the
// recovered table.
func TestRecoverDoneEscalations(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal")
	j, err := queue.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := testSpec(0).Concrete("half").Normalized()
	if err != nil {
		t.Fatal(err)
	}
	hash, _ := spec.Hash()
	if err := j.Submitted("job-000001", hash, spec, 2); err != nil {
		t.Fatal(err)
	}
	if err := j.Escalated("job-000001", runner.Escalation{FromMode: "half", ToMode: "min", Reason: "guard"}); err != nil {
		t.Fatal(err)
	}
	if err := j.Done("job-000001"); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := queue.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	if got := len(j2.DoneEscalations()); got != 1 {
		t.Fatalf("DoneEscalations = %d records, want 1", got)
	}
	tn := New(Config{Journal: j2, WarmRuns: 1})
	if err := tn.Recover(j2); err != nil {
		t.Fatal(err)
	}
	views := tn.Snapshot()
	if len(views) != 1 {
		t.Fatalf("got %d entries, want 1", len(views))
	}
	if views[0].Floor != "min" {
		t.Fatalf("recovered floor = %q, want min", views[0].Floor)
	}
}

// TestResolveConcreteHashContract: the spec an auto submission resolves to
// hashes byte-identically to a plain submission of the same shape at the
// same mode — the cache/dedup contract the autotuner must not perturb.
func TestResolveConcreteHashContract(t *testing.T) {
	tn := New(Config{WarmRuns: 1})
	resolved, err := tn.Resolve(testSpec(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	plain := testSpec(0)
	plain.Mode = resolved.Mode
	plainHash, err := plain.Hash()
	if err != nil {
		t.Fatal(err)
	}
	resolvedHash, err := resolved.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if resolvedHash != plainHash {
		t.Fatalf("resolved spec hash %s != plain submission hash %s", resolvedHash, plainHash)
	}
	if resolved.MaxMassError != 0 || resolved.MaxLinecutLinf != 0 {
		t.Fatalf("resolution leaked budgets into the concrete spec: %+v", resolved)
	}
}

// TestSavings prices demoted runs against the full baseline, scaled to the
// run's step count.
func TestSavings(t *testing.T) {
	tn := New(Config{WarmRuns: 100}) // no probes; evidence only
	full, err := testSpec(0).Concrete("full").Normalized()
	if err != nil {
		t.Fatal(err)
	}
	tn.ObserveResult(full, &runner.Result{
		Spec: full, Steps: full.Steps, StateHash: "f",
		Energy:  &runner.Energy{Joules: 100, CostDollars: 2},
		LineCut: &runner.Series{Y: []float64{1, 2, 3}},
	})
	half := full
	half.Mode = "half"
	half.Steps = full.Steps * 2 // savings scale with steps
	res := &runner.Result{
		Spec: half, Steps: half.Steps, StateHash: "h",
		Energy: &runner.Energy{Joules: 30, CostDollars: 0.5},
	}
	joules, dollars, ok := tn.Savings(half, res)
	if !ok {
		t.Fatal("Savings not ok with a full baseline on record")
	}
	if want := 100.0*2 - 30; math.Abs(joules-want) > 1e-9 {
		t.Fatalf("saved joules = %g, want %g", joules, want)
	}
	if want := 2.0*2 - 0.5; math.Abs(dollars-want) > 1e-9 {
		t.Fatalf("saved dollars = %g, want %g", dollars, want)
	}
	if _, _, ok := tn.Savings(full, res); ok {
		t.Fatal("full-mode run reported savings against itself")
	}
}

// TestKeyExcludesModeStepsBudgets: one decision entry serves a sweep that
// varies only steps, mode or budgets.
func TestKeyExcludesModeStepsBudgets(t *testing.T) {
	a := testSpec(1e-3)
	b := testSpec(1e-6)
	b.Steps = 99
	b.Mode = "full"
	ka, err := Key(a)
	if err != nil {
		t.Fatal(err)
	}
	kb, err := Key(b)
	if err != nil {
		t.Fatal(err)
	}
	if ka != kb {
		t.Fatalf("keys differ across mode/steps/budget variation:\n  %s\n  %s", ka, kb)
	}
	c := testSpec(1e-3)
	c.NX = 16
	if kc, _ := Key(c); kc == ka {
		t.Fatal("distinct problem shapes collided onto one key")
	}
}
