package queue

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve/dispatch"
)

// registerWorkerObs registers a worker the way cmd/precision-worker does
// when observability is wired: a replica read address and an arch profile.
func (h *fleetHarness) registerWorkerObs(t *testing.T, name, readAddr string, spec *arch.Spec) *testWorker {
	t.Helper()
	w := &testWorker{t: t, base: h.srv.URL}
	var resp dispatch.RegisterResponse
	status := w.post("/v1/workers/register", dispatch.RegisterRequest{
		Name: name, ReadAddr: readAddr, Arch: spec,
		Capabilities: dispatch.Capabilities{Slots: 1},
	}, &resp)
	if status != http.StatusOK {
		t.Fatalf("register = %d", status)
	}
	w.id = resp.WorkerID
	return w
}

// completeTrace uploads a result with the worker's final span timeline
// riding beside it, like the real worker binary does.
func (w *testWorker) completeTrace(leaseID string, payload []byte, td obs.TraceData) int {
	w.t.Helper()
	return w.post("/v1/workers/"+w.id+"/complete",
		dispatch.CompleteRequest{LeaseID: leaseID, Result: payload, Trace: &td}, nil)
}

// workerTrace builds a closed worker-side timeline for a grant: a root
// "worker" span with one "solve" child, annotated with the lease identity so
// tests can tell whose subtree landed where.
func workerTrace(g *dispatch.LeaseGrant) obs.TraceData {
	tr := obs.NewTrace(g.TraceID, "worker",
		obs.Str("lease", g.LeaseID), obs.Str("parent_span", g.ParentSpan))
	solve := tr.Root().Child("solve", obs.Str("mode", g.Spec.Mode))
	solve.End()
	tr.Root().End()
	return tr.Snapshot()
}

func tdFind(td obs.TraceData, name string) (obs.SpanData, int, bool) {
	for i, sp := range td.Spans {
		if sp.Name == name {
			return sp, i, true
		}
	}
	return obs.SpanData{}, -1, false
}

func tdAttr(sp obs.SpanData, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// childrenOf returns the indices of sp's direct children.
func childrenOf(td obs.TraceData, parent int) []int {
	var out []int
	for i, sp := range td.Spans {
		if sp.Parent == parent {
			out = append(out, i)
		}
	}
	return out
}

// TestFleetWorkerTraceStitchedUnderAttempt is the cross-node timeline
// contract: the worker's spans — shipped partially on heartbeats, finally
// on complete — graft under the job's attempt span, tagged node=worker,
// with the heartbeat partial replaced (not duplicated) by the final
// snapshot, and the upload event recording the payload size.
func TestFleetWorkerTraceStitchedUnderAttempt(t *testing.T) {
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		dispatch.CoordinatorConfig{LeaseTTL: 500 * time.Millisecond, PollWait: 150 * time.Millisecond})

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	w := h.registerWorker(t, "traced")
	g := w.leaseUntilGrant(2 * time.Second)
	if g.TraceID != job.ID || g.ParentSpan != "attempt-1" {
		t.Fatalf("grant trace context = %s/%s, want %s/attempt-1", g.TraceID, g.ParentSpan, job.ID)
	}

	// Heartbeat a partial snapshot first: a long run streams its timeline.
	tr := obs.NewTrace(g.TraceID, "worker", obs.Str("lease", g.LeaseID))
	solve := tr.Root().Child("solve", obs.Str("mode", g.Spec.Mode))
	partial := tr.Snapshot()
	if expired := w.heartbeat(dispatch.LeaseProgress{
		LeaseID: g.LeaseID, Step: 2, Total: 6, Trace: &partial}); len(expired) != 0 {
		t.Fatalf("heartbeat expired %v", expired)
	}
	mid := job.Trace()
	if _, _, ok := tdFind(mid, "worker"); !ok {
		t.Fatal("heartbeat partial not stitched into the live job trace")
	}

	solve.End()
	tr.Root().AggregateChild("checkpoint", time.Millisecond, obs.Str("bytes", "4096"))
	tr.Root().End()
	payload := runPayload(t, g.Spec)
	if status := w.completeTrace(g.LeaseID, payload, tr.Snapshot()); status != http.StatusOK {
		t.Fatalf("complete = %d", status)
	}
	waitDone(t, job)

	td := job.Trace()
	att, ai, ok := tdFind(td, "attempt")
	if !ok {
		t.Fatal("no attempt span")
	}
	workerSpan, wi, ok := tdFind(td, "worker")
	if !ok {
		t.Fatal("worker subtree not stitched")
	}
	if workerSpan.Parent != ai {
		t.Fatalf("worker span parent = %d, want attempt %d", workerSpan.Parent, ai)
	}
	if tdAttr(workerSpan, "node") != "worker" {
		t.Fatalf("grafted root missing node=worker: %+v", workerSpan.Attrs)
	}
	// Replacement semantics: one worker root, one solve — not one per beat.
	count := 0
	for _, sp := range td.Spans {
		if sp.Name == "worker" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d worker roots stitched, want 1 (final snapshot replaces partials)", count)
	}
	sv, _, ok := tdFind(td, "solve")
	if !ok || sv.Parent != wi {
		t.Fatalf("solve span = %+v (found=%v), want child of worker %d", sv, ok, wi)
	}
	if sv.Open {
		t.Fatal("final snapshot's solve span still open — the partial survived")
	}
	if _, _, ok := tdFind(td, "checkpoint"); !ok {
		t.Fatal("worker checkpoint span not stitched")
	}
	up, _, ok := tdFind(td, "upload")
	if !ok || up.Parent != ai {
		t.Fatalf("upload event = %+v (found=%v), want child of attempt", up, ok)
	}
	if b, err := strconv.Atoi(tdAttr(up, "bytes")); err != nil || b != len(payload) {
		t.Fatalf("upload bytes = %q, want %d", tdAttr(up, "bytes"), len(payload))
	}
	// Every grafted span must sit inside its host attempt.
	for _, i := range []int{wi} {
		sp := td.Spans[i]
		if sp.StartNs < att.StartNs || sp.EndNs > att.EndNs {
			t.Fatalf("grafted span [%d,%d] outside attempt [%d,%d]",
				sp.StartNs, sp.EndNs, att.StartNs, att.EndNs)
		}
	}
	// The stitched timeline also rides inside the result payload.
	raw, ok := job.Result()
	if !ok {
		t.Fatal("no result payload")
	}
	var res runner.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil {
		t.Fatal("result payload carries no trace")
	}
	if _, _, ok := tdFind(*res.Trace, "worker"); !ok {
		t.Fatal("result trace missing the stitched worker subtree")
	}
}

// TestFleetTraceRetryRoutesToSecondAttempt: a rejected upload's trace lands
// under attempt 1, the retry's trace under attempt 2 — worker timelines
// follow their own attempt across the retry boundary instead of piling onto
// the latest span.
func TestFleetTraceRetryRoutesToSecondAttempt(t *testing.T) {
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		dispatch.CoordinatorConfig{LeaseTTL: 500 * time.Millisecond, PollWait: 150 * time.Millisecond})

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	w := h.registerWorker(t, "retrier")
	g1 := w.leaseUntilGrant(2 * time.Second)

	good := runPayload(t, g1.Spec)
	var tampered runner.Result
	if err := json.Unmarshal(good, &tampered); err != nil {
		t.Fatal(err)
	}
	tampered.Spec.Steps += 7
	bad, _ := json.Marshal(tampered)
	if status := w.completeTrace(g1.LeaseID, bad, workerTrace(g1)); status != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt upload = %d, want 422", status)
	}

	g2 := w.leaseUntilGrant(2 * time.Second)
	if g2.ParentSpan != "attempt-2" {
		t.Fatalf("retry grant parent span = %s, want attempt-2", g2.ParentSpan)
	}
	if status := w.completeTrace(g2.LeaseID, good, workerTrace(g2)); status != http.StatusOK {
		t.Fatalf("complete = %d", status)
	}
	waitDone(t, job)

	td := job.Trace()
	// Two attempt spans; each owns exactly the worker subtree of its own
	// lease, identified by the lease attr the worker stamped on its root.
	byLease := map[string]int{}
	for i, sp := range td.Spans {
		if sp.Name == "attempt" {
			for _, ci := range childrenOf(td, i) {
				c := td.Spans[ci]
				if c.Name == "worker" {
					byLease[tdAttr(c, "lease")] = i
				}
			}
		}
	}
	if len(byLease) != 2 {
		t.Fatalf("worker subtrees by lease = %v, want one per attempt", byLease)
	}
	a1, ok1 := byLease[g1.LeaseID]
	a2, ok2 := byLease[g2.LeaseID]
	if !ok1 || !ok2 || a1 == a2 {
		t.Fatalf("lease subtrees landed on attempts %d/%d (found %v/%v), want distinct attempts",
			a1, a2, ok1, ok2)
	}
	if n1, n2 := tdAttr(td.Spans[a1], "n"), tdAttr(td.Spans[a2], "n"); n1 != "1" || n2 != "2" {
		t.Fatalf("subtrees under attempts n=%s/n=%s, want 1/2", n1, n2)
	}
}

// TestFleetHedgeTraceSiblingSubtree: when the straggler defense fires, the
// duplicate executor's spans graft under the hedge_attempt span — a sibling
// subtree beside the primary attempt — so a hedged job renders as two
// parallel cross-node timelines.
func TestFleetHedgeTraceSiblingSubtree(t *testing.T) {
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		dispatch.CoordinatorConfig{
			LeaseTTL: 2 * time.Second, PollWait: 150 * time.Millisecond,
			HedgeBudget: 1, HedgeAfter: 50 * time.Millisecond,
		})

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	w1 := h.registerWorker(t, "straggler")
	g1 := w1.leaseUntilGrant(2 * time.Second)

	// A second executor arrives; the primary stalls past HedgeAfter, so the
	// reaper fires a duplicate that only w2 can take.
	w2 := h.registerWorker(t, "rescuer")
	g2 := w2.leaseUntilGrant(5 * time.Second)
	if g2.JobID != job.ID {
		t.Fatalf("hedge grant is job %s, want %s", g2.JobID, job.ID)
	}

	payload := runPayload(t, g1.Spec)
	if status := w2.completeTrace(g2.LeaseID, payload, workerTrace(g2)); status != http.StatusOK {
		t.Fatalf("hedge complete = %d", status)
	}
	waitDone(t, job)
	// The straggler's upload still lands (bit-identity check); its trace
	// grafts under the primary attempt.
	if status := w1.completeTrace(g1.LeaseID, payload, workerTrace(g1)); status != http.StatusOK {
		t.Fatalf("primary complete = %d", status)
	}

	td := job.Trace()
	_, ai, ok := tdFind(td, "attempt")
	if !ok {
		t.Fatal("no primary attempt span")
	}
	_, hi, ok := tdFind(td, "hedge_attempt")
	if !ok {
		t.Fatal("no hedge_attempt span")
	}
	var primaryLease, hedgeLease string
	for _, i := range childrenOf(td, ai) {
		if td.Spans[i].Name == "worker" {
			primaryLease = tdAttr(td.Spans[i], "lease")
		}
	}
	for _, i := range childrenOf(td, hi) {
		if td.Spans[i].Name == "worker" {
			hedgeLease = tdAttr(td.Spans[i], "lease")
		}
	}
	if primaryLease != g1.LeaseID {
		t.Fatalf("primary attempt's worker subtree = lease %q, want %s", primaryLease, g1.LeaseID)
	}
	if hedgeLease != g2.LeaseID {
		t.Fatalf("hedge_attempt's worker subtree = lease %q, want %s (sibling subtree, not a replacement)", hedgeLease, g2.LeaseID)
	}
}

// TestFleetRemoteEnergyAccounting: a worker registering with an arch
// profile gets every upload priced by the coordinator — energy in the
// result payload and span attributes, per-worker joules/cost in the fleet
// view, and the scheduler's per-app counters.
func TestFleetRemoteEnergyAccounting(t *testing.T) {
	reg := obs.NewRegistry()
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry, Obs: reg},
		dispatch.CoordinatorConfig{LeaseTTL: 500 * time.Millisecond, PollWait: 150 * time.Millisecond})

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	p100 := arch.TeslaP100
	w := h.registerWorkerObs(t, "gpu-node", "", &p100)
	g := w.leaseUntilGrant(2 * time.Second)
	if status := w.complete(g.LeaseID, runPayload(t, g.Spec)); status != http.StatusOK {
		t.Fatalf("complete = %d", status)
	}
	waitDone(t, job)

	raw, ok := job.Result()
	if !ok {
		t.Fatal("no result payload")
	}
	var res runner.Result
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	e := res.Energy
	if e == nil {
		t.Fatal("remote result not priced")
	}
	if e.Arch != "Tesla P100" {
		t.Fatalf("priced on %q, want the worker's registered Tesla P100", e.Arch)
	}
	// The figures must be the worker profile × deterministic counters
	// product, nothing else.
	want := dispatch.ComputeEnergy(p100, &res)
	if e.Joules != want.Joules || e.CostDollars != want.CostDollars {
		t.Fatalf("energy = %+v, want recomputed %+v", e, want)
	}
	if e.Joules <= 0 || e.CostDollars <= 0 {
		t.Fatalf("energy not positive: %+v", e)
	}

	// Span attributes on the attempt.
	td := job.Trace()
	att, _, ok := tdFind(td, "attempt")
	if !ok {
		t.Fatal("no attempt span")
	}
	if tdAttr(att, "arch") != "Tesla P100" || tdAttr(att, "joules") == "" || tdAttr(att, "cost_dollars") == "" {
		t.Fatalf("attempt span missing energy attrs: %+v", att.Attrs)
	}

	// Fleet view accumulates per-worker totals.
	resp, err := http.Get(h.srv.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view dispatch.FleetView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, wv := range view.Workers {
		if wv.ID == w.id {
			found = true
			if wv.Arch != "Tesla P100" {
				t.Fatalf("fleet view arch = %q", wv.Arch)
			}
			if wv.JoulesTotal != e.Joules || wv.CostDollarsTotal != e.CostDollars {
				t.Fatalf("fleet totals = %v J / $%v, want %v / %v",
					wv.JoulesTotal, wv.CostDollarsTotal, e.Joules, e.CostDollars)
			}
		}
	}
	if !found {
		t.Fatalf("worker %s missing from fleet view", w.id)
	}

	// Scheduler counters: joules/cost by app and mode.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, wantLine := range []string{
		`precisiond_job_joules_total{app="clamr",mode="full"}`,
		`precisiond_job_cost_dollars_total{app="clamr",mode="full"}`,
	} {
		if !strings.Contains(out, wantLine) {
			t.Fatalf("exposition missing %s:\n%s", wantLine, out)
		}
	}
}

// TestFleetMetricsEndpointMerge: the mounted GET /metrics/fleet merges the
// live scrapes of two workers' /metrics listeners once the coordinator's
// scrape loop has swept them.
func TestFleetMetricsEndpointMerge(t *testing.T) {
	mkWorkerMetrics := func(runs uint64) (*obs.Registry, string, func()) {
		r := obs.NewRegistry()
		r.Counter("precision_worker_heartbeats_total", "Beats.").Add(runs)
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", r.Handler())
		srv := httptest.NewServer(mux)
		return r, srv.URL, srv.Close
	}
	_, u1, c1 := mkWorkerMetrics(3)
	defer c1()
	_, u2, c2 := mkWorkerMetrics(9)
	defer c2()

	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		dispatch.CoordinatorConfig{
			// Heartbeat defaults to LeaseTTL/3: a fast scrape cadence.
			LeaseTTL: 90 * time.Millisecond, PollWait: 100 * time.Millisecond,
		})
	h.registerWorkerObs(t, "m1", u1, nil)
	h.registerWorkerObs(t, "m2", u2, nil)

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(h.srv.URL + "/metrics/fleet")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.Header.Get("X-Fleet-Workers") == "2" {
			if !strings.Contains(string(body), "precision_worker_heartbeats_total 12") {
				t.Fatalf("merged fleet metrics do not sum per-worker scrapes:\n%s", body)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("scrape loop never swept both workers; last body:\n%s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
