package queue

import (
	"context"
	"math/rand"
	"time"
)

// RetryPolicy bounds the scheduler's response to transient failures:
// capped exponential backoff with jitter, a fixed attempt budget per
// precision rung. Timeouts and permanent errors are never retried;
// numerical failures consume the escalation ladder instead, with a fresh
// attempt budget at each rung.
type RetryPolicy struct {
	// MaxAttempts is the total executions allowed per precision rung
	// (default 3; 1 disables retries).
	MaxAttempts int
	// BaseBackoff is the delay before the first retry (default 100ms);
	// each further retry doubles it, capped at MaxBackoff (default 2s).
	// Every delay is jittered ±50% so synchronized failures spread out.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 100 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 2 * time.Second
	}
	return p
}

// backoff returns the jittered delay before retry number attempt (1-based).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < attempt && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	// ±50% jitter; the global rand source is fine — jitter needs spread,
	// not reproducibility.
	half := int64(d) / 2
	if half > 0 {
		d = time.Duration(half + rand.Int63n(int64(d)))
	}
	return d
}

// sleepCtx sleeps d or until ctx is cancelled; false means cancelled.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
