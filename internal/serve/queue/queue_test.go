package queue

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/serve/cache"
)

func testSpec(steps int) runner.ExperimentSpec {
	return runner.ExperimentSpec{
		App: runner.AppCLAMR, Mode: "full", Steps: steps,
		NX: 16, NY: 16, MaxLevel: 1, AMRInterval: 5,
	}
}

// fakeRun builds a RunFunc that blocks until released, counting executions.
type fakeRun struct {
	executions atomic.Int64
	release    chan struct{}
}

func newFakeRun() *fakeRun {
	return &fakeRun{release: make(chan struct{})}
}

func (f *fakeRun) fn(ctx context.Context, req RunRequest) (*runner.Result, error) {
	f.executions.Add(1)
	if req.Progress != nil {
		req.Progress(1, req.Spec.Steps)
	}
	select {
	case <-f.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	h, _ := req.Spec.Hash()
	return &runner.Result{Spec: req.Spec, SpecHash: h, Steps: req.Spec.Steps}, nil
}

func waitDone(t *testing.T, j *Job) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(10 * time.Second):
		t.Fatalf("job %s did not finish: %+v", j.ID, j.Snapshot())
	}
}

func TestSingleflightDedup(t *testing.T) {
	fake := newFakeRun()
	s := New(Config{Workers: 2, Run: fake.fn})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	spec := testSpec(10)
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Concurrent duplicate submissions (alias spelling included) collapse
	// onto the same in-flight job.
	alias := spec
	alias.Mode = "double"
	var dups []*Job
	for i := 0; i < 5; i++ {
		j, err := s.Submit(alias)
		if err != nil {
			t.Fatal(err)
		}
		dups = append(dups, j)
	}
	for _, j := range dups {
		if j != first {
			t.Fatalf("duplicate submission got job %s, want %s", j.ID, first.ID)
		}
	}
	close(fake.release)
	waitDone(t, first)
	if got := fake.executions.Load(); got != 1 {
		t.Errorf("spec executed %d times, want 1", got)
	}
	if st := s.Stats(); st.DedupHits != 5 || st.Executed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestCacheHitSkipsExecution(t *testing.T) {
	c, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	fake := newFakeRun()
	close(fake.release) // run immediately
	s := New(Config{Workers: 1, Cache: c, Run: fake.fn})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	spec := testSpec(10)
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)
	firstBytes, ok := first.Result()
	if !ok {
		t.Fatal("first job has no result")
	}

	second, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, second)
	if !second.Snapshot().Cached {
		t.Error("second submission not served from cache")
	}
	secondBytes, _ := second.Result()
	if string(firstBytes) != string(secondBytes) {
		t.Errorf("cached result differs: %q vs %q", firstBytes, secondBytes)
	}
	if got := fake.executions.Load(); got != 1 {
		t.Errorf("executed %d times, want 1", got)
	}
	if st := s.Stats(); st.CacheHits != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestQueueBound(t *testing.T) {
	fake := newFakeRun() // never released: worker stays busy
	s := New(Config{Workers: 1, QueueDepth: 2, Run: fake.fn})
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)

	// First job occupies the worker (wait until it is picked up so the
	// queue depth is deterministic), then two more fill the queue.
	var jobs []*Job
	j, err := s.Submit(testSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	jobs = append(jobs, j)
	deadline := time.Now().Add(5 * time.Second)
	for fake.executions.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}
	for i := 1; i < 3; i++ {
		j, err := s.Submit(testSpec(10 + i))
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	if _, err := s.Submit(testSpec(99)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-full submit returned %v, want ErrQueueFull", err)
	}
	if st := s.Stats(); st.QueueRejected != 1 {
		t.Errorf("stats = %+v", st)
	}

	// Shutdown fails the queued-but-unstarted jobs and unblocks waiters.
	cancel()
	s.Wait()
	for _, j := range jobs[1:] {
		waitDone(t, j)
		if v := j.Snapshot(); v.Status != StatusFailed {
			t.Errorf("queued job %s after shutdown: %+v", j.ID, v)
		}
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	s := New(Config{})
	if _, err := s.Submit(runner.ExperimentSpec{App: "nope", Mode: "full", Steps: 1}); err == nil {
		t.Fatal("invalid spec admitted")
	}
}

func TestConcurrentDistinctSubmissions(t *testing.T) {
	fake := newFakeRun()
	close(fake.release)
	s := New(Config{Workers: 4, QueueDepth: 32, Run: fake.fn})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	const n = 8
	var wg sync.WaitGroup
	jobs := make([]*Job, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j, err := s.Submit(testSpec(10 + i))
			if err != nil {
				t.Error(err)
				return
			}
			jobs[i] = j
		}(i)
	}
	wg.Wait()
	for _, j := range jobs {
		if j == nil {
			t.Fatal("missing job")
		}
		waitDone(t, j)
		if v := j.Snapshot(); v.Status != StatusDone {
			t.Errorf("job %s: %+v", j.ID, v)
		}
	}
	if got := fake.executions.Load(); got != n {
		t.Errorf("executed %d, want %d", got, n)
	}
	// Distinct specs → distinct jobs with distinct hashes.
	seen := map[string]bool{}
	for _, j := range jobs {
		if seen[j.SpecHash] {
			t.Errorf("hash collision between distinct specs: %s", j.SpecHash)
		}
		seen[j.SpecHash] = true
	}
}

func TestProgressVisibleWhileRunning(t *testing.T) {
	fake := newFakeRun()
	s := New(Config{Workers: 1, Run: fake.fn})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	j, err := s.Submit(testSpec(40))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v := j.Snapshot()
		if v.Status == StatusRunning && v.Step == 1 && v.Total == 40 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("progress never surfaced: %+v", v)
		}
		time.Sleep(time.Millisecond)
	}
	close(fake.release)
	waitDone(t, j)
}

// TestReserveInteractive: bulk flows (campaigns) stop short of the
// interactive reserve, so a saturating campaign can never fill the last
// queue slots — plain POST /v1/jobs traffic still gets in.
func TestReserveInteractive(t *testing.T) {
	fake := newFakeRun() // never released: worker stays busy
	s := New(Config{Workers: 1, QueueDepth: 4, ReserveInteractive: 2, Run: fake.fn})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	// Occupy the worker so queue occupancy is deterministic.
	if _, err := s.Submit(testSpec(10)); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for fake.executions.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never started")
		}
		time.Sleep(time.Millisecond)
	}

	// Bulk traffic is capped at QueueDepth - ReserveInteractive = 2 slots.
	bulk := SubmitOptions{Flow: "campaign/camp-000001"}
	for i := 0; i < 2; i++ {
		if _, err := s.SubmitOpts(testSpec(20+i), bulk); err != nil {
			t.Fatalf("bulk submit %d within quota: %v", i, err)
		}
	}
	if _, err := s.SubmitOpts(testSpec(30), bulk); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("bulk submit into reserve returned %v, want ErrQueueFull", err)
	}

	// Interactive submissions still land in the reserved slots.
	for i := 0; i < 2; i++ {
		if _, err := s.Submit(testSpec(40 + i)); err != nil {
			t.Fatalf("interactive submit %d into reserve: %v", i, err)
		}
	}
	// ... until the queue is truly full, reserve included.
	if _, err := s.Submit(testSpec(50)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-full interactive submit returned %v, want ErrQueueFull", err)
	}

	close(fake.release)
}
