package queue

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/runner"
)

func openTestJournal(t *testing.T, path string) *Journal {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j
}

func submitTestJob(t *testing.T, j *Journal, id string, spec runner.ExperimentSpec, next uint64) string {
	t.Helper()
	n, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	hash, err := n.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Submitted(id, hash, n, next); err != nil {
		t.Fatal(err)
	}
	return hash
}

func TestJournalReplayAndCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j := openTestJournal(t, path)

	h1 := submitTestJob(t, j, "job-000001", testSpec(10), 2)
	submitTestJob(t, j, "job-000002", testSpec(11), 3)
	submitTestJob(t, j, "job-000003", testSpec(12), 4)
	if err := j.Started("job-000001", "full"); err != nil {
		t.Fatal(err)
	}
	if err := j.Done("job-000002"); err != nil {
		t.Fatal(err)
	}
	if err := j.Failed("job-000003", "boom"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Reopen: only job-000001 is owed; the file is compacted to one meta
	// record plus one folded submitted record.
	j2 := openTestJournal(t, path)
	pending := j2.Pending()
	if len(pending) != 1 {
		t.Fatalf("pending = %d jobs, want 1: %+v", len(pending), pending)
	}
	p := pending[0]
	if p.ID != "job-000001" || p.SpecHash != h1 || !p.Started {
		t.Errorf("pending job = %+v", p)
	}
	if got, want := p.Spec.Steps, 10; got != want {
		t.Errorf("replayed spec steps = %d, want %d", got, want)
	}
	if got := j2.NextJobNum(); got != 4 {
		t.Errorf("NextJobNum = %d, want 4", got)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 2 {
		t.Errorf("compacted journal has %d lines, want 2 (meta + 1 live):\n%s", lines, data)
	}
}

func TestJournalTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j := openTestJournal(t, path)
	submitTestJob(t, j, "job-000001", testSpec(10), 2)
	j.Close()

	// Simulate a crash mid-append: a torn, non-JSON tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":99,"type":"done","job_id":"job-0000`)
	f.Close()

	j2 := openTestJournal(t, path)
	if pending := j2.Pending(); len(pending) != 1 || pending[0].ID != "job-000001" {
		t.Fatalf("pending after torn tail = %+v, want job-000001 live", pending)
	}
}

func TestJournalEscalationsSurviveRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j := openTestJournal(t, path)
	spec := testSpec(10)
	spec.Mode = "min"
	submitTestJob(t, j, "job-000001", spec, 2)
	if err := j.Started("job-000001", "min"); err != nil {
		t.Fatal(err)
	}
	esc := runner.Escalation{FromMode: "min", ToMode: "mixed", FromSpecHash: "abc", Reason: "guard"}
	if err := j.Escalated("job-000001", esc); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Two reopens: the first folds the escalation into the compacted
	// submitted record, the second proves the folded form round-trips.
	for reopen := 0; reopen < 2; reopen++ {
		j2 := openTestJournal(t, path)
		pending := j2.Pending()
		if len(pending) != 1 {
			t.Fatalf("reopen %d: pending = %+v", reopen, pending)
		}
		p := pending[0]
		if !p.Started || len(p.Escalations) != 1 || p.Escalations[0] != esc {
			t.Errorf("reopen %d: pending job = %+v, want started with escalation %+v", reopen, p, esc)
		}
		j2.Close()
	}
}

func TestJournalTunedRecordsSurviveCompaction(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j := openTestJournal(t, path)
	if err := j.Tuned("shape-a", []byte(`{"committed":"full"}`)); err != nil {
		t.Fatal(err)
	}
	if err := j.Tuned("shape-b", []byte(`{"committed":"min"}`)); err != nil {
		t.Fatal(err)
	}
	// Superseding write: only the latest state per key may survive.
	if err := j.Tuned("shape-a", []byte(`{"committed":"half"}`)); err != nil {
		t.Fatal(err)
	}
	j.Close()

	// Two reopens: the first compacts, the second proves the compacted
	// form still replays the same table.
	for reopen := 0; reopen < 2; reopen++ {
		j2 := openTestJournal(t, path)
		tuned := j2.TunedRecords()
		if len(tuned) != 2 {
			t.Fatalf("reopen %d: tuned records = %d, want 2", reopen, len(tuned))
		}
		if got := string(tuned["shape-a"]); got != `{"committed":"half"}` {
			t.Errorf("reopen %d: shape-a = %s, want latest write", reopen, got)
		}
		if got := string(tuned["shape-b"]); got != `{"committed":"min"}` {
			t.Errorf("reopen %d: shape-b = %s", reopen, got)
		}
		j2.Close()
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// meta + two tuned records: the superseded shape-a write is gone.
	if lines := strings.Count(string(data), "\n"); lines != 3 {
		t.Errorf("compacted journal has %d lines, want 3:\n%s", lines, data)
	}
}

func TestJournalDoneEscalationsReplayed(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j := openTestJournal(t, path)
	spec := testSpec(10)
	spec.Mode = "half"
	hash := submitTestJob(t, j, "job-000001", spec, 2)
	esc := runner.Escalation{FromMode: "half", ToMode: "min", FromSpecHash: hash, Reason: "guard"}
	if err := j.Escalated("job-000001", esc); err != nil {
		t.Fatal(err)
	}
	if err := j.Done("job-000001"); err != nil {
		t.Fatal(err)
	}
	// A done job without escalations must not surface.
	submitTestJob(t, j, "job-000002", testSpec(11), 3)
	if err := j.Done("job-000002"); err != nil {
		t.Fatal(err)
	}
	// A failed job's escalations count too.
	spec3 := testSpec(12)
	spec3.Mode = "min"
	submitTestJob(t, j, "job-000003", spec3, 4)
	esc3 := runner.Escalation{FromMode: "min", ToMode: "mixed", Reason: "nan"}
	if err := j.Escalated("job-000003", esc3); err != nil {
		t.Fatal(err)
	}
	if err := j.Failed("job-000003", "boom"); err != nil {
		t.Fatal(err)
	}
	j.Close()

	j2 := openTestJournal(t, path)
	defer j2.Close()
	if pending := j2.Pending(); len(pending) != 0 {
		t.Fatalf("pending = %+v, want none", pending)
	}
	done := j2.DoneEscalations()
	if len(done) != 2 {
		t.Fatalf("DoneEscalations = %d records, want 2: %+v", len(done), done)
	}
	byID := map[string]DoneEscalation{}
	for _, d := range done {
		byID[d.JobID] = d
	}
	d1, ok := byID["job-000001"]
	if !ok || len(d1.Escalations) != 1 || d1.Escalations[0] != esc {
		t.Errorf("job-000001 done escalations = %+v, want %+v", d1, esc)
	}
	if d1.Spec.Mode != "half" {
		t.Errorf("job-000001 replayed spec mode = %q, want half", d1.Spec.Mode)
	}
	d3, ok := byID["job-000003"]
	if !ok || len(d3.Escalations) != 1 || d3.Escalations[0] != esc3 {
		t.Errorf("job-000003 done escalations = %+v, want %+v", d3, esc3)
	}
}

func TestJournalSyncFaultDegradesThenHeals(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.ndjson")
	j := openTestJournal(t, path)
	if err := fault.Arm("journal.sync=n:1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()

	err := j.Submitted("job-000001", "hash", testSpec(10), 2)
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("append under armed fault = %v, want ErrInjected", err)
	}
	if j.SyncErr() == nil {
		t.Fatal("SyncErr nil after injected fsync failure")
	}
	// The next append succeeds (n:1 is one-shot) and clears the health
	// signal.
	if err := j.Done("job-000001"); err != nil {
		t.Fatal(err)
	}
	if err := j.SyncErr(); err != nil {
		t.Fatalf("SyncErr after recovery = %v, want nil", err)
	}
}
