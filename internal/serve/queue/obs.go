package queue

import (
	"strconv"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runner"
)

// schedObs is the scheduler's pre-resolved instrument set in a metrics
// registry. All fields are resolved once at New, so the scheduler's
// recording sites are plain atomic updates. Nil *schedObs (no registry
// configured) disables everything via the nil-safe instrument methods.
type schedObs struct {
	submitted, dedupHits, cacheHits Counter
	executed, failed, rejected      Counter
	retried, escalated, timedOut    Counter
	abandoned, recovered            Counter
	requeuedCtr                     Counter
	poisonedEvt, unpoisonedEvt      Counter
	poisonedTotal                   Counter

	queueDepth obs.Gauge

	queueWait *obs.Histogram
	runDur    obs.HistogramVec // labels: app, mode
	fsync     *obs.Histogram

	workersBusy, lanesBusy obs.Gauge

	runFlops       obs.CounterVec // label: width
	runTransc      obs.CounterVec // label: width
	runMemBytes    obs.CounterVec // label: dir
	runConversions obs.Counter
	runLaunches    obs.Counter
	runAllocBytes  obs.Counter
	runAllocCount  obs.Counter

	jobJoules obs.FloatCounterVec // labels: app, mode
	jobCost   obs.FloatCounterVec // labels: app, mode
}

// Counter aliases obs.Counter so schedObs reads cleanly.
type Counter = obs.Counter

// newSchedObs resolves the scheduler's instruments.
func newSchedObs(r *obs.Registry, s *Scheduler) *schedObs {
	jobs := r.CounterVec("precisiond_jobs_total",
		"Scheduler job traffic by event (mirrors /v1/cache/stats).", "event")
	o := &schedObs{
		submitted:     jobs.With("submitted"),
		dedupHits:     jobs.With("dedup_hit"),
		cacheHits:     jobs.With("cache_hit"),
		executed:      jobs.With("executed"),
		failed:        jobs.With("failed"),
		rejected:      jobs.With("queue_rejected"),
		retried:       jobs.With("retried"),
		escalated:     jobs.With("escalated"),
		timedOut:      jobs.With("timed_out"),
		abandoned:     jobs.With("abandoned"),
		recovered:     jobs.With("recovered"),
		requeuedCtr:   jobs.With("requeued"),
		poisonedEvt:   jobs.With("poisoned"),
		unpoisonedEvt: jobs.With("unpoisoned"),

		poisonedTotal: r.Counter("precisiond_jobs_poisoned_total",
			"Jobs parked as poisoned: the same failure kind on two distinct executors."),

		queueDepth: r.Gauge("precisiond_queue_depth",
			"Jobs admitted but not yet placed on a backend."),

		queueWait: r.Histogram("precisiond_queue_wait_seconds",
			"Time from admission to the first execution attempt.", obs.DurationBuckets),
		runDur: r.HistogramVec("precisiond_run_duration_seconds",
			"Duration of one execution attempt.", obs.DurationBuckets, "app", "mode"),
		fsync: r.Histogram("precisiond_journal_fsync_seconds",
			"Write-ahead journal append+fsync latency.", obs.FsyncBuckets),

		workersBusy: r.Gauge("precisiond_workers_busy",
			"Workers currently executing a job."),
		lanesBusy: r.Gauge("precisiond_lanes_busy",
			"Solver lanes currently assigned to running jobs."),

		runFlops: r.CounterVec("precisiond_run_flops_total",
			"Floating-point operations in completed runs, by compute width.", "width"),
		runTransc: r.CounterVec("precisiond_run_transcendental_total",
			"Transcendental evaluations in completed runs, by compute width.", "width"),
		runMemBytes: r.CounterVec("precisiond_run_mem_bytes_total",
			"Algorithmic memory traffic in completed runs, by direction.", "dir"),
		runConversions: r.Counter("precisiond_run_conversions_total",
			"Precision conversions in completed runs."),
		runLaunches: r.Counter("precisiond_run_kernel_launches_total",
			"Kernel sweeps in completed runs."),
		runAllocBytes: r.Counter("precisiond_run_alloc_bytes_total",
			"Heap bytes allocated around instrumented phases of completed runs."),
		runAllocCount: r.Counter("precisiond_run_alloc_objects_total",
			"Heap objects allocated around instrumented phases of completed runs."),

		jobJoules: r.FloatCounterVec("precisiond_job_joules_total",
			"Modeled energy of completed jobs (arch profile × deterministic counters).", "app", "mode"),
		jobCost: r.FloatCounterVec("precisiond_job_cost_dollars_total",
			"Modeled cloud cost of completed jobs (compute + checkpoint storage).", "app", "mode"),
	}
	r.Gauge("precisiond_workers", "Configured concurrent job executors.").Set(int64(s.cfg.Workers))
	r.Gauge("precisiond_lanes_per_worker", "Solver lanes handed to each running job.").Set(int64(s.lanes))
	return o
}

// observeResultCounters streams a completed run's metrics.Counters into the
// aggregate exposition counters.
func (o *schedObs) observeResultCounters(c metrics.Counters) {
	if o == nil {
		return
	}
	o.runFlops.With("16").Add(c.Flops16)
	o.runFlops.With("32").Add(c.Flops32)
	o.runFlops.With("64").Add(c.Flops64)
	o.runTransc.With("32").Add(c.Transcendental32)
	o.runTransc.With("64").Add(c.Transcendental64)
	o.runMemBytes.With("load").Add(c.LoadBytes)
	o.runMemBytes.With("store").Add(c.StoreBytes)
	o.runConversions.Add(c.Conversions)
	o.runLaunches.Add(c.KernelLaunches)
	o.runAllocBytes.Add(c.AllocBytes)
	o.runAllocCount.Add(c.AllocCount)
}

// observeEnergy accumulates a completed job's modeled energy/cost into the
// fleet-facing exposition counters.
func (o *schedObs) observeEnergy(app, mode string, e *runner.Energy) {
	if o == nil || e == nil {
		return
	}
	o.jobJoules.With(app, mode).Add(e.Joules)
	o.jobCost.With(app, mode).Add(e.CostDollars)
}

// attrsForSpec renders the trace attributes identifying a spec.
func attrsForSpec(spec runner.ExperimentSpec, hash string) []obs.Attr {
	return []obs.Attr{
		obs.Str("app", string(spec.App)),
		obs.Str("mode", spec.Mode),
		obs.Str("spec_hash", hash),
	}
}

// intAttr renders an int attribute (obs attributes are strings).
func intAttr(key string, v int64) obs.Attr {
	return obs.Str(key, strconv.FormatInt(v, 10))
}
