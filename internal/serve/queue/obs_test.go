package queue

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve/cache"
)

// checkTraceWellFormed asserts the invariants every job trace must satisfy:
// parents precede children, children are strictly nested inside their
// parents, and no span has a negative duration.
func checkTraceWellFormed(t *testing.T, td obs.TraceData) {
	t.Helper()
	if len(td.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	for i, sp := range td.Spans {
		if sp.DurationNs < 0 || sp.EndNs < sp.StartNs {
			t.Errorf("span %d (%s): negative duration (start %d end %d)", i, sp.Name, sp.StartNs, sp.EndNs)
		}
		if i == 0 {
			if sp.Parent != -1 {
				t.Errorf("root parent = %d, want -1", sp.Parent)
			}
			continue
		}
		if sp.Parent < 0 || sp.Parent >= i {
			t.Fatalf("span %d (%s): parent %d does not precede it", i, sp.Name, sp.Parent)
		}
		p := td.Spans[sp.Parent]
		if sp.StartNs < p.StartNs {
			t.Errorf("span %d (%s) starts before its parent %s", i, sp.Name, p.Name)
		}
		if !p.Open && sp.EndNs > p.EndNs {
			t.Errorf("span %d (%s) ends after its closed parent %s", i, sp.Name, p.Name)
		}
	}
}

func spanNames(td obs.TraceData) []string {
	names := make([]string, len(td.Spans))
	for i, sp := range td.Spans {
		names[i] = sp.Name
	}
	return names
}

func findSpans(td obs.TraceData, name string) []obs.SpanData {
	var out []obs.SpanData
	for _, sp := range td.Spans {
		if sp.Name == name {
			out = append(out, sp)
		}
	}
	return out
}

func attrValue(sp obs.SpanData, key string) string {
	for _, a := range sp.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// TestTraceEscalatedJobWithFaultInjection drives a REAL run (DefaultRun, no
// stub) through the scheduler with the runner.nan fault armed: the first
// attempt at min trips the numerical guard, the job escalates min→mixed and
// completes. The trace must carry the complete timeline — queue wait, the
// failed attempt, the escalation, the successful attempt with the solver's
// phase aggregates — and the metrics registry must show both attempts.
func TestTraceEscalatedJobWithFaultInjection(t *testing.T) {
	if err := fault.Arm("runner.nan=n:1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(fault.Disarm)

	c, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	s := New(Config{Workers: 1, Cache: c, Retry: fastRetry, Obs: reg})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	spec := testSpec(10)
	spec.Mode = "min"
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusDone || len(v.Escalations) != 1 {
		t.Fatalf("job = %+v, want done with one escalation", v)
	}

	td := job.Trace()
	checkTraceWellFormed(t, td)
	if len(findSpans(td, "queue_wait")) != 1 {
		t.Errorf("spans = %v, want one queue_wait", spanNames(td))
	}
	atts := findSpans(td, "attempt")
	if len(atts) != 2 {
		t.Fatalf("spans = %v, want two attempts", spanNames(td))
	}
	if got := attrValue(atts[0], "outcome"); got != "numerical" {
		t.Errorf("first attempt outcome = %q, want numerical", got)
	}
	if got := attrValue(atts[0], "mode"); got != "min" {
		t.Errorf("first attempt mode = %q, want min", got)
	}
	if attrValue(atts[0], "error") == "" {
		t.Error("failed attempt carries no error attribute")
	}
	if got := attrValue(atts[1], "outcome"); got != "ok" {
		t.Errorf("second attempt outcome = %q, want ok", got)
	}
	if got := attrValue(atts[1], "mode"); got != "mixed" {
		t.Errorf("second attempt mode = %q, want mixed", got)
	}
	escs := findSpans(td, "escalation")
	if len(escs) != 1 || attrValue(escs[0], "from") != "min" || attrValue(escs[0], "to") != "mixed" {
		t.Fatalf("escalation events = %+v, want one min→mixed", escs)
	}
	// The solver's phase buckets ride along as aggregate children of the
	// successful attempt.
	var phases int
	for _, sp := range td.Spans {
		if strings.HasPrefix(sp.Name, "phase:") {
			phases++
			if attrValue(sp, "kind") != "aggregate" {
				t.Errorf("phase span %s not marked aggregate", sp.Name)
			}
		}
	}
	if phases == 0 {
		t.Error("no phase aggregates in the trace")
	}
	if got := attrValue(td.Spans[0], "status"); got != "done" {
		t.Errorf("root status = %q, want done", got)
	}

	// The trace is embedded in the result payload (and excluded from the
	// deterministic hash — runner.Result.Deterministic zeroes it).
	payload, _ := job.Result()
	var res runner.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || len(res.Trace.Spans) != len(td.Spans) {
		t.Fatalf("payload trace = %+v, want the job timeline", res.Trace)
	}

	// Metrics: both attempts observed per mode, one queue wait, counters
	// mirrored.
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	for _, want := range []string{
		`precisiond_run_duration_seconds_count{app="clamr",mode="min"} 1`,
		`precisiond_run_duration_seconds_count{app="clamr",mode="mixed"} 1`,
		`precisiond_queue_wait_seconds_count 1`,
		`precisiond_jobs_total{event="escalated"} 1`,
		`precisiond_jobs_total{event="executed"} 1`,
		`precisiond_jobs_total{event="submitted"} 1`,
		`precisiond_run_flops_total{width="32"}`,
		`precisiond_queue_depth 0`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTraceRetriedThenEscalatedOrdering pins the span ordering for the full
// failure ladder: a transient fault (the injected-fault sentinel, as a real
// chaos run produces) retries with backoff, then a numerical failure
// escalates, then the job completes. Stubbed run, real scheduler.
func TestTraceRetriedThenEscalatedOrdering(t *testing.T) {
	calls := 0
	run := func(ctx context.Context, req RunRequest) (*runner.Result, error) {
		calls++
		switch calls {
		case 1:
			return nil, fmt.Errorf("cache woes: %w", fault.ErrInjected) // transient
		case 2:
			return nil, fmt.Errorf("step 4: %w", runner.ErrNumericalFailure)
		}
		return okResult(req.Spec), nil
	}
	reg := obs.NewRegistry()
	s := New(Config{Workers: 1, Run: run, Retry: fastRetry, Obs: reg})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	spec := testSpec(10)
	spec.Mode = "min"
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusDone {
		t.Fatalf("job = %+v, want done", v)
	}

	td := job.Trace()
	checkTraceWellFormed(t, td)
	// Drop phase aggregates (none from the stub) and compare the ordered
	// lifecycle skeleton.
	want := []string{"job", "queue_wait", "attempt", "backoff", "attempt", "escalation", "attempt"}
	got := spanNames(td)
	if len(got) != len(want) {
		t.Fatalf("spans = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("spans = %v, want %v", got, want)
		}
	}
	// The retried attempt numbers ascend and every lifecycle span hangs off
	// the root.
	atts := findSpans(td, "attempt")
	for i, att := range atts {
		if got := attrValue(att, "n"); got != fmt.Sprint(i+1) {
			t.Errorf("attempt %d numbered %q", i, got)
		}
	}
	for i, sp := range td.Spans[1:] {
		if sp.Parent != 0 {
			t.Errorf("span %d (%s) parent = %d, want root", i+1, sp.Name, sp.Parent)
		}
	}
	// Spans on one level are ordered in time: each lifecycle span starts at
	// or after the previous one ends.
	for i := 2; i < len(td.Spans); i++ {
		if td.Spans[i].StartNs < td.Spans[i-1].EndNs {
			t.Errorf("span %s (start %d) overlaps previous %s (end %d)",
				td.Spans[i].Name, td.Spans[i].StartNs, td.Spans[i-1].Name, td.Spans[i-1].EndNs)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exp := b.String()
	for _, want := range []string{
		`precisiond_jobs_total{event="retried"} 1`,
		`precisiond_jobs_total{event="escalated"} 1`,
		`precisiond_run_duration_seconds_count{app="clamr",mode="min"} 2`,
		`precisiond_run_duration_seconds_count{app="clamr",mode="mixed"} 1`,
	} {
		if !strings.Contains(exp, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestTraceCachedSubmission: a repeat submission answered from the cache is
// born done with a cache_hit event and a closed root.
func TestTraceCachedSubmission(t *testing.T) {
	c, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := func(ctx context.Context, req RunRequest) (*runner.Result, error) {
		return okResult(req.Spec), nil
	}
	s := New(Config{Workers: 1, Cache: c, Run: run, Retry: fastRetry, Obs: obs.NewRegistry()})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	spec := testSpec(10)
	first, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, first)
	second, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-second.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("cached submission not immediately done")
	}
	td := second.Trace()
	checkTraceWellFormed(t, td)
	if len(findSpans(td, "cache_hit")) != 1 {
		t.Fatalf("spans = %v, want a cache_hit event", spanNames(td))
	}
	if td.Spans[0].Open {
		t.Error("cached job root span left open")
	}
	// The trace endpoint data also reaches the View-independent accessor
	// for jobs that never ran.
	if got := attrValue(td.Spans[0], "status"); got != "done" {
		t.Errorf("root status = %q, want done", got)
	}
}
