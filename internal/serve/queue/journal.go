// The write-ahead journal makes the job queue durable: every admission is
// journaled before it is acknowledged, every start, precision escalation
// and terminal state is appended as it happens, and a restarted daemon
// replays the live records — so a SIGKILL loses no accepted job and
// re-runs no completed one.
//
// Format: append-only NDJSON, one record per line, fsynced per append.
// A torn final line (crash mid-write) is ignored on open. Opening compacts:
// terminal jobs are dropped, live jobs are folded into single `submitted`
// records carrying their accumulated escalations, and the result is
// committed by temp-file + rename before appending resumes — so the
// journal's size is bounded by the live set, not the traffic history.
package queue

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/runner"
)

// Journal record types.
const (
	recMeta      = "meta"      // next job number (survives compaction)
	recSubmitted = "submitted" // job admitted (spec + hash; pre-ack)
	recStarted   = "started"   // execution attempt began at Mode
	recEscalated = "escalated" // numerical failure climbed the ladder
	recDone      = "done"      // completed (result in the cache)
	recFailed    = "failed"    // terminal failure

	// Poison records park and release jobs without ending their journal
	// ownership: a poisoned job is still live (it replays parked, never
	// re-run) until an operator releases it or it reaches a terminal state.
	recPoisoned   = "poisoned"   // same failure kind on two distinct executors
	recUnpoisoned = "unpoisoned" // operator released the job for retry

	// recHedge is an audit record, not state: a hedged re-dispatch produced
	// two completions of the same attempt and their state hashes were
	// compared. Outcome "verified" (bit-identical) or "mismatch" (the slower
	// worker was quarantined). Replay ignores it; compaction drops it.
	recHedge = "hedge_verified"

	// recTuned is one autotune decision-table entry: the learned state for
	// one (app, scenario-shape) key, written by internal/serve/autotune
	// whenever a demotion commits, reverts, or a full-precision reference
	// is captured. The payload is opaque bytes here (autotune owns the
	// shape). Replay keeps the latest record per key; compaction rewrites
	// exactly those — so the learned table survives restart like the live
	// job set does.
	recTuned = "tuned"

	// Campaign records share the same journal file so one fsync stream
	// orders campaign state against the job admissions it produced. The
	// campaign spec is opaque bytes here (internal/serve/campaign owns the
	// shape); per-job status rides on the ordinary job records above.
	recCampaign       = "campaign"        // campaign admitted (pre-ack)
	recCampaignCursor = "campaign_cursor" // expansion progress high-water
	recCampaignDone   = "campaign_done"   // every expanded job terminal
	recCampaignFailed = "campaign_failed" // terminal failure / cancellation
)

// journalRecord is one NDJSON line.
type journalRecord struct {
	Seq         uint64                 `json:"seq"`
	Type        string                 `json:"type"`
	JobID       string                 `json:"job_id,omitempty"`
	SpecHash    string                 `json:"spec_hash,omitempty"`
	Spec        *runner.ExperimentSpec `json:"spec,omitempty"`
	Mode        string                 `json:"mode,omitempty"`
	Error       string                 `json:"error,omitempty"`
	Escalations []runner.Escalation    `json:"escalations,omitempty"`
	NextJob     uint64                 `json:"next_job,omitempty"`

	CampaignID   string          `json:"campaign_id,omitempty"`
	Campaign     json.RawMessage `json:"campaign,omitempty"`
	Cursor       int64           `json:"cursor,omitempty"`
	NextCampaign uint64          `json:"next_campaign,omitempty"`

	// Autotune fields (recTuned).
	TunedKey string          `json:"tuned_key,omitempty"`
	Tuned    json.RawMessage `json:"tuned,omitempty"`

	// Poison / hedge fields.
	Poisoned  bool   `json:"poisoned,omitempty"` // folded into compacted submitted records
	StateHash string `json:"state_hash,omitempty"`
	Winner    string `json:"winner,omitempty"`
	Loser     string `json:"loser,omitempty"`
	Outcome   string `json:"outcome,omitempty"`
}

// PendingJob is one journal job owed an execution: admitted (and possibly
// started, escalated, or interrupted mid-run) but never terminal.
type PendingJob struct {
	ID          string
	SpecHash    string
	Spec        runner.ExperimentSpec
	Escalations []runner.Escalation
	// Started reports the job was picked up before the crash — its
	// checkpoint, if one exists, is worth resuming from.
	Started bool
	// Poisoned marks a job parked by the poison detector; ErrMsg carries
	// the convicting error. Recovery re-parks it instead of re-running.
	Poisoned bool
	ErrMsg   string
}

// DoneEscalation is the escalation history of a job that reached a terminal
// state before a restart. Replay used to rebuild escalations only for
// unfinished jobs and silently dropped these at the done/failed record;
// they are now surfaced so the autotune table re-learns its precision
// floors on Recover() without having to re-observe the failures.
type DoneEscalation struct {
	JobID       string
	SpecHash    string
	Spec        runner.ExperimentSpec
	Escalations []runner.Escalation
}

// PendingCampaign is one journal campaign owed a resumption: admitted but
// never terminal. Spec is the opaque campaign spec bytes recorded at
// admission; Cursor is the expansion high-water mark (specs with a lower
// generator index were already admitted as jobs before the crash).
type PendingCampaign struct {
	ID     string
	Spec   json.RawMessage
	Cursor int64
}

// Journal is the scheduler's write-ahead log. All appends are serialized
// and fsynced; the last sync failure is retained for health reporting.
type Journal struct {
	mu           sync.Mutex
	f            *os.File
	path         string
	seq          uint64
	nextJob      uint64
	nextCampaign uint64
	pending      []PendingJob
	pendingCamps []PendingCampaign
	tuned        map[string]json.RawMessage // latest autotune state per key
	tunedOrder   []string                   // first-seen key order (stable compaction)
	doneEsc      []DoneEscalation
	syncErr      error
	// lastErr is the most recent append failure ever seen — unlike syncErr
	// it is not cleared by a later success, so /healthz can report the last
	// durability incident even after recovery.
	lastErr   error
	fsyncHist *obs.Histogram
}

// setFsyncHist wires the append+fsync latency histogram (nil disables).
func (j *Journal) setFsyncHist(h *obs.Histogram) {
	j.mu.Lock()
	j.fsyncHist = h
	j.mu.Unlock()
}

// OpenJournal opens (creating if needed) and compacts the journal at path,
// returning it ready for appends. Pending lists the jobs owed an
// execution, in admission order.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{path: path, nextJob: 1, nextCampaign: 1, tuned: map[string]json.RawMessage{}}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	if err := j.replayAndCompact(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	j.f = f
	return j, nil
}

// replayAndCompact reads the existing journal (if any), reduces it to the
// live job set, and atomically rewrites the compacted form.
func (j *Journal) replayAndCompact() error {
	data, err := os.ReadFile(j.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: read %s: %w", j.path, err)
	}

	type liveJob struct {
		PendingJob
		order int
	}
	type liveCampaign struct {
		PendingCampaign
		order int
	}
	live := map[string]*liveJob{}
	liveCamps := map[string]*liveCampaign{}
	order := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 1<<16), 1<<22)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec journalRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn tail (crash mid-append) ends the useful journal; any
			// record after it was never acknowledged.
			break
		}
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
		if rec.NextJob > j.nextJob {
			j.nextJob = rec.NextJob
		}
		if rec.NextCampaign > j.nextCampaign {
			j.nextCampaign = rec.NextCampaign
		}
		switch rec.Type {
		case recSubmitted:
			if rec.Spec == nil || rec.JobID == "" {
				continue
			}
			lj := &liveJob{order: order}
			order++
			lj.ID = rec.JobID
			lj.SpecHash = rec.SpecHash
			lj.Spec = *rec.Spec
			lj.Escalations = rec.Escalations // compacted records carry these
			lj.Started = rec.Mode != ""      // compacted records carry this
			lj.Poisoned = rec.Poisoned       // compacted records carry this
			if rec.Poisoned {
				lj.ErrMsg = rec.Error
			}
			live[rec.JobID] = lj
		case recStarted:
			if lj, ok := live[rec.JobID]; ok {
				lj.Started = true
			}
		case recEscalated:
			if lj, ok := live[rec.JobID]; ok && len(rec.Escalations) == 1 {
				lj.Escalations = append(lj.Escalations, rec.Escalations[0])
			}
		case recPoisoned:
			if lj, ok := live[rec.JobID]; ok {
				lj.Poisoned = true
				lj.ErrMsg = rec.Error
			}
		case recUnpoisoned:
			if lj, ok := live[rec.JobID]; ok {
				lj.Poisoned = false
				lj.ErrMsg = ""
			}
		case recHedge:
			// Audit only; carries no live state.
		case recTuned:
			if rec.TunedKey == "" {
				continue
			}
			if _, seen := j.tuned[rec.TunedKey]; !seen {
				j.tunedOrder = append(j.tunedOrder, rec.TunedKey)
			}
			j.tuned[rec.TunedKey] = append(json.RawMessage(nil), rec.Tuned...)
		case recDone, recFailed:
			// Terminal jobs leave the live set, but their escalation
			// history is fleet evidence the autotune table wants back
			// after a restart — surface it before dropping the record.
			if lj, ok := live[rec.JobID]; ok && len(lj.Escalations) > 0 {
				j.doneEsc = append(j.doneEsc, DoneEscalation{
					JobID:       lj.ID,
					SpecHash:    lj.SpecHash,
					Spec:        lj.Spec,
					Escalations: append([]runner.Escalation(nil), lj.Escalations...),
				})
			}
			delete(live, rec.JobID)
		case recCampaign:
			if rec.CampaignID == "" || len(rec.Campaign) == 0 {
				continue
			}
			lc := &liveCampaign{order: order}
			order++
			lc.ID = rec.CampaignID
			lc.Spec = append(json.RawMessage(nil), rec.Campaign...)
			lc.Cursor = rec.Cursor // compacted records carry the high-water
			liveCamps[rec.CampaignID] = lc
		case recCampaignCursor:
			if lc, ok := liveCamps[rec.CampaignID]; ok && rec.Cursor > lc.Cursor {
				lc.Cursor = rec.Cursor
			}
		case recCampaignDone, recCampaignFailed:
			delete(liveCamps, rec.CampaignID)
		}
	}

	ordered := make([]*liveJob, 0, len(live))
	for _, lj := range live {
		ordered = append(ordered, lj)
	}
	for i := 1; i < len(ordered); i++ { // insertion sort by admission order
		for k := i; k > 0 && ordered[k-1].order > ordered[k].order; k-- {
			ordered[k-1], ordered[k] = ordered[k], ordered[k-1]
		}
	}
	j.pending = make([]PendingJob, len(ordered))
	for i, lj := range ordered {
		j.pending[i] = lj.PendingJob
	}

	orderedCamps := make([]*liveCampaign, 0, len(liveCamps))
	for _, lc := range liveCamps {
		orderedCamps = append(orderedCamps, lc)
	}
	for i := 1; i < len(orderedCamps); i++ { // insertion sort by admission order
		for k := i; k > 0 && orderedCamps[k-1].order > orderedCamps[k].order; k-- {
			orderedCamps[k-1], orderedCamps[k] = orderedCamps[k], orderedCamps[k-1]
		}
	}
	j.pendingCamps = make([]PendingCampaign, len(orderedCamps))
	for i, lc := range orderedCamps {
		j.pendingCamps[i] = lc.PendingCampaign
	}
	return j.writeCompacted()
}

// writeCompacted rewrites the journal as one meta record plus one folded
// submitted record per live job, atomically.
func (j *Journal) writeCompacted() error {
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".journal-compact-*")
	if err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	enc := json.NewEncoder(w)
	j.seq++
	if err := enc.Encode(journalRecord{Seq: j.seq, Type: recMeta, NextJob: j.nextJob, NextCampaign: j.nextCampaign}); err != nil {
		tmp.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	for _, key := range j.tunedOrder {
		j.seq++
		rec := journalRecord{Seq: j.seq, Type: recTuned, TunedKey: key, Tuned: j.tuned[key]}
		if err := enc.Encode(rec); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	for _, c := range j.pendingCamps {
		j.seq++
		rec := journalRecord{
			Seq: j.seq, Type: recCampaign,
			CampaignID: c.ID, Campaign: c.Spec, Cursor: c.Cursor,
		}
		if err := enc.Encode(rec); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	for _, p := range j.pending {
		j.seq++
		rec := journalRecord{
			Seq: j.seq, Type: recSubmitted,
			JobID: p.ID, SpecHash: p.SpecHash, Spec: &p.Spec,
			Escalations: p.Escalations,
		}
		if p.Started {
			rec.Mode = p.Spec.Mode // non-empty Mode marks "was started"
		}
		if p.Poisoned {
			rec.Poisoned = true
			rec.Error = p.ErrMsg
		}
		if err := enc.Encode(rec); err != nil {
			tmp.Close()
			return fmt.Errorf("journal: compact: %w", err)
		}
	}
	if err := w.Flush(); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Close()
		return fmt.Errorf("journal: compact: %w", err)
	}
	if cerr := tmp.Close(); cerr != nil {
		return fmt.Errorf("journal: compact: %w", cerr)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		return fmt.Errorf("journal: compact: %w", err)
	}
	return nil
}

// Pending returns the jobs owed an execution, in admission order.
func (j *Journal) Pending() []PendingJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]PendingJob(nil), j.pending...)
}

// NextJobNum returns the first job number not yet used by any journaled
// job, so recovered and fresh IDs never collide.
func (j *Journal) NextJobNum() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextJob
}

// append writes one record and fsyncs. The fault point "journal.sync"
// injects fsync failures; real or injected, the last failure is retained
// for SyncErr until a subsequent append succeeds.
func (j *Journal) append(rec journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("journal: closed")
	}
	j.seq++
	rec.Seq = j.seq
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	start := time.Now()
	if _, err := j.f.Write(append(data, '\n')); err != nil {
		j.syncErr = err
		j.lastErr = err
		return fmt.Errorf("journal: append: %w", err)
	}
	syncErr := fault.Error("journal.sync")
	if syncErr == nil {
		syncErr = j.f.Sync()
	}
	j.fsyncHist.ObserveSince(start)
	if syncErr != nil {
		j.syncErr = syncErr
		j.lastErr = syncErr
		return fmt.Errorf("journal: fsync: %w", syncErr)
	}
	j.syncErr = nil
	return nil
}

// Submitted journals an admission, recording the next job number alongside
// so ID allocation survives compaction. Must succeed before the submission
// is acknowledged.
func (j *Journal) Submitted(jobID, specHash string, spec runner.ExperimentSpec, nextJobNum uint64) error {
	j.mu.Lock()
	if nextJobNum > j.nextJob {
		j.nextJob = nextJobNum
	}
	j.mu.Unlock()
	return j.append(journalRecord{
		Type: recSubmitted, JobID: jobID, SpecHash: specHash, Spec: &spec,
		NextJob: nextJobNum,
	})
}

// Started journals the beginning of an execution attempt at mode.
func (j *Journal) Started(jobID, mode string) error {
	return j.append(journalRecord{Type: recStarted, JobID: jobID, Mode: mode})
}

// Escalated journals one precision climb.
func (j *Journal) Escalated(jobID string, e runner.Escalation) error {
	return j.append(journalRecord{Type: recEscalated, JobID: jobID, Escalations: []runner.Escalation{e}})
}

// Done journals completion (the payload lives in the result cache).
func (j *Journal) Done(jobID string) error {
	return j.append(journalRecord{Type: recDone, JobID: jobID})
}

// Failed journals a terminal failure.
func (j *Journal) Failed(jobID, errMsg string) error {
	return j.append(journalRecord{Type: recFailed, JobID: jobID, Error: errMsg})
}

// Poisoned journals a job parked by the poison detector. The job stays
// live in the journal: replay re-parks it rather than re-running it.
func (j *Journal) Poisoned(jobID, errMsg string) error {
	return j.append(journalRecord{Type: recPoisoned, JobID: jobID, Error: errMsg})
}

// Unpoisoned journals an operator release of a poisoned job; replay runs
// it again like any other pending job.
func (j *Journal) Unpoisoned(jobID string) error {
	return j.append(journalRecord{Type: recUnpoisoned, JobID: jobID})
}

// HedgeVerified journals the audit trail of a hedged re-dispatch whose two
// completions were compared: match=true records bit-identical state hashes,
// match=false records the divergence that quarantined the loser.
func (j *Journal) HedgeVerified(jobID, specHash, stateHash, winner, loser string, match bool) error {
	outcome := "verified"
	if !match {
		outcome = "mismatch"
	}
	return j.append(journalRecord{
		Type: recHedge, JobID: jobID, SpecHash: specHash, StateHash: stateHash,
		Winner: winner, Loser: loser, Outcome: outcome,
	})
}

// Tuned journals one autotune decision-table entry for key. The latest
// record per key survives replay and compaction; earlier ones are folded
// away. The state bytes are owned by internal/serve/autotune.
func (j *Journal) Tuned(key string, state []byte) error {
	j.mu.Lock()
	if _, seen := j.tuned[key]; !seen {
		j.tunedOrder = append(j.tunedOrder, key)
	}
	j.tuned[key] = append(json.RawMessage(nil), state...)
	j.mu.Unlock()
	return j.append(journalRecord{Type: recTuned, TunedKey: key, Tuned: json.RawMessage(state)})
}

// TunedRecords returns the latest journaled autotune state per key, as
// replayed at open plus any appended since.
func (j *Journal) TunedRecords() map[string][]byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make(map[string][]byte, len(j.tuned))
	for k, v := range j.tuned {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// DoneEscalations returns the escalation histories of jobs that reached a
// terminal state before this open — evidence replay previously discarded.
func (j *Journal) DoneEscalations() []DoneEscalation {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]DoneEscalation(nil), j.doneEsc...)
}

// PendingCampaigns returns the campaigns owed a resumption, in admission
// order.
func (j *Journal) PendingCampaigns() []PendingCampaign {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]PendingCampaign(nil), j.pendingCamps...)
}

// NextCampaignNum returns the first campaign number not yet used by any
// journaled campaign, so recovered and fresh campaign IDs never collide.
func (j *Journal) NextCampaignNum() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.nextCampaign
}

// CampaignSubmitted journals a campaign admission (the opaque spec bytes
// belong to internal/serve/campaign), recording the next campaign number
// alongside so ID allocation survives compaction. Must succeed before the
// campaign is acknowledged.
func (j *Journal) CampaignSubmitted(id string, spec []byte, nextNum uint64) error {
	j.mu.Lock()
	if nextNum > j.nextCampaign {
		j.nextCampaign = nextNum
	}
	j.mu.Unlock()
	return j.append(journalRecord{
		Type: recCampaign, CampaignID: id, Campaign: json.RawMessage(spec),
		NextCampaign: nextNum,
	})
}

// CampaignCursor journals the campaign's expansion high-water mark: every
// generator index below cursor has been admitted as a job (and is therefore
// owned by the job records), so a resumed campaign re-attaches those and
// expands fresh from cursor.
func (j *Journal) CampaignCursor(id string, cursor int64) error {
	return j.append(journalRecord{Type: recCampaignCursor, CampaignID: id, Cursor: cursor})
}

// CampaignDone journals campaign completion (every expanded job terminal).
func (j *Journal) CampaignDone(id string) error {
	return j.append(journalRecord{Type: recCampaignDone, CampaignID: id})
}

// CampaignFailed journals a terminal campaign failure or cancellation so it
// is not replayed on the next boot.
func (j *Journal) CampaignFailed(id, errMsg string) error {
	return j.append(journalRecord{Type: recCampaignFailed, CampaignID: id, Error: errMsg})
}

// SyncErr returns the most recent append/fsync failure, or nil when the
// journal is healthy — the /healthz degraded signal.
func (j *Journal) SyncErr() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.syncErr
}

// LastError returns the last append failure ever observed ("" if none),
// even if a later append succeeded — /healthz forensics.
func (j *Journal) LastError() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.lastErr == nil {
		return ""
	}
	return j.lastErr.Error()
}

// Path returns the journal file location.
func (j *Journal) Path() string { return j.path }

// Close closes the journal file; further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}
