package queue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/serve/cache"
)

// fastRetry keeps test retries from sleeping for real.
var fastRetry = RetryPolicy{MaxAttempts: 3, BaseBackoff: time.Millisecond, MaxBackoff: 2 * time.Millisecond}

func okResult(spec runner.ExperimentSpec) *runner.Result {
	h, _ := spec.Hash()
	return &runner.Result{Spec: spec, SpecHash: h, Steps: spec.Steps, StateHash: "feed" + h[:8]}
}

func TestNumericalFailureEscalatesMinToMixed(t *testing.T) {
	c, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int64
	run := func(ctx context.Context, req RunRequest) (*runner.Result, error) {
		execs.Add(1)
		if req.Spec.Mode == "min" {
			return nil, fmt.Errorf("step 8: mass drift: %w", runner.ErrNumericalFailure)
		}
		return okResult(req.Spec), nil
	}
	s := New(Config{Workers: 1, Cache: c, Run: run, Retry: fastRetry})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	spec := testSpec(10)
	spec.Mode = "min"
	minHash, _ := func() (string, error) { n, _ := spec.Normalized(); return n.Hash() }()
	job, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)

	v := job.Snapshot()
	if v.Status != StatusDone {
		t.Fatalf("escalated job did not complete: %+v", v)
	}
	if len(v.Escalations) != 1 || v.Escalations[0].FromMode != "min" || v.Escalations[0].ToMode != "mixed" {
		t.Fatalf("escalations = %+v, want one min→mixed climb", v.Escalations)
	}
	if v.Escalations[0].FromSpecHash != minHash {
		t.Errorf("escalation FromSpecHash = %s, want submitted hash %s", v.Escalations[0].FromSpecHash, minHash)
	}
	if got := execs.Load(); got != 2 {
		t.Errorf("executions = %d, want 2 (min fails, mixed succeeds)", got)
	}

	// The result payload records the climb and the mode that actually ran.
	payload, _ := job.Result()
	var res runner.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		t.Fatal(err)
	}
	if res.Spec.Mode != "mixed" || len(res.Escalations) != 1 {
		t.Errorf("result spec mode=%q escalations=%+v, want mixed with 1 escalation", res.Spec.Mode, res.Escalations)
	}
	// Cache honesty: the payload is keyed by the ORIGINAL min-mode hash, so
	// a repeat min submission is answered without re-failing — and the
	// payload itself says it was computed one rung up.
	if cached, ok := c.Get(minHash); !ok || string(cached) != string(payload) {
		t.Error("escalated result not cached under the submitted spec hash")
	}
	if st := s.Stats(); st.Escalated != 1 {
		t.Errorf("stats = %+v, want Escalated=1", st)
	}
}

func TestPermanentErrorIsNotRetried(t *testing.T) {
	var execs atomic.Int64
	run := func(ctx context.Context, req RunRequest) (*runner.Result, error) {
		execs.Add(1)
		return nil, errors.New("incompatible checkpoint header")
	}
	s := New(Config{Workers: 1, Run: run, Retry: fastRetry})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	job, err := s.Submit(testSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusFailed {
		t.Fatalf("permanent failure job: %+v", v)
	}
	if got := execs.Load(); got != 1 {
		t.Errorf("permanent failure executed %d times, want 1", got)
	}
	if st := s.Stats(); st.Retried != 0 || st.Failed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTransientFailuresRetryWithBackoff(t *testing.T) {
	var execs atomic.Int64
	run := func(ctx context.Context, req RunRequest) (*runner.Result, error) {
		if execs.Add(1) <= 2 {
			return nil, fmt.Errorf("flaky io: %w", fault.ErrInjected)
		}
		return okResult(req.Spec), nil
	}
	s := New(Config{Workers: 1, Run: run, Retry: fastRetry})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	job, err := s.Submit(testSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusDone || v.Attempts != 3 {
		t.Fatalf("job after transient retries: %+v", v)
	}
	if st := s.Stats(); st.Retried != 2 || st.Executed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTransientRetriesExhaust(t *testing.T) {
	var execs atomic.Int64
	run := func(ctx context.Context, req RunRequest) (*runner.Result, error) {
		execs.Add(1)
		return nil, fmt.Errorf("always flaky: %w", fault.ErrInjected)
	}
	s := New(Config{Workers: 1, Run: run, Retry: RetryPolicy{MaxAttempts: 2, BaseBackoff: time.Millisecond}})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	job, err := s.Submit(testSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusFailed {
		t.Fatalf("exhausted job: %+v", v)
	}
	if got := execs.Load(); got != 2 {
		t.Errorf("executed %d times, want MaxAttempts=2", got)
	}
}

// TestTimeoutFailsFastAndFreesLane is the lane-reclamation guarantee: a
// job that exceeds its deadline is cancelled and failed without retry, and
// the worker immediately picks up the next queued job.
func TestTimeoutFailsFastAndFreesLane(t *testing.T) {
	run := func(ctx context.Context, req RunRequest) (*runner.Result, error) {
		if req.Spec.Steps == 666 { // the slow job honors cancellation
			<-ctx.Done()
			return nil, ctx.Err()
		}
		return okResult(req.Spec), nil
	}
	s := New(Config{Workers: 1, Run: run, Retry: fastRetry, AbandonGrace: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	slow, err := s.SubmitOpts(testSpec(666), SubmitOptions{Timeout: 30 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	next, err := s.Submit(testSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, slow)
	if v := slow.Snapshot(); v.Status != StatusFailed || v.Attempts != 1 {
		t.Fatalf("timed-out job: %+v", v)
	}
	waitDone(t, next) // the lane was reclaimed for the next job
	if v := next.Snapshot(); v.Status != StatusDone {
		t.Fatalf("job after timed-out predecessor: %+v", v)
	}
	if st := s.Stats(); st.TimedOut != 1 {
		t.Errorf("stats = %+v, want TimedOut=1", st)
	}
}

// TestStalledRunIsAbandonedAndRetried covers the wedged-worker path: a run
// that ignores its deadline past the abandon grace is left behind, its
// lane reclaimed, and the attempt retried as transient.
func TestStalledRunIsAbandonedAndRetried(t *testing.T) {
	if err := fault.Arm("worker.stall=n:1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()
	run := func(ctx context.Context, req RunRequest) (*runner.Result, error) {
		return okResult(req.Spec), nil
	}
	s := New(Config{
		Workers: 1, Run: run, Retry: fastRetry,
		JobTimeout: 20 * time.Millisecond, AbandonGrace: 20 * time.Millisecond,
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	job, err := s.Submit(testSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusDone || v.Attempts != 2 {
		t.Fatalf("job after stalled first attempt: %+v", v)
	}
	if st := s.Stats(); st.Abandoned != 1 || st.Retried != 1 {
		t.Errorf("stats = %+v, want Abandoned=1 Retried=1", st)
	}
}

// TestRecoverReplaysAndHeals simulates a crash: jobs admitted and
// journaled, one mid-run and one queued, then the scheduler is torn down
// without terminal records. A second scheduler over the same journal must
// re-run the interrupted job, heal the one whose result is already cached,
// and preserve job IDs.
func TestRecoverReplaysAndHeals(t *testing.T) {
	dir := t.TempDir()
	c, err := cache.Open(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "journal.ndjson")
	j1, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}

	release := make(chan struct{})
	var started atomic.Int64
	run1 := func(ctx context.Context, req RunRequest) (*runner.Result, error) {
		if req.Spec.Steps == 666 { // job B blocks until "crash"
			started.Add(1)
			select {
			case <-release:
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		return okResult(req.Spec), nil
	}
	s1 := New(Config{Workers: 1, Cache: c, Journal: j1, Run: run1, Retry: fastRetry})
	ctx1, cancel1 := context.WithCancel(context.Background())
	s1.Start(ctx1)

	jobA, err := s1.Submit(testSpec(10)) // completes before the crash
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, jobA)
	jobB, err := s1.Submit(testSpec(666)) // running at crash time
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for started.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("job B never started")
		}
		time.Sleep(time.Millisecond)
	}
	jobC, err := s1.Submit(testSpec(777)) // queued at crash time
	if err != nil {
		t.Fatal(err)
	}

	// "Crash": cancel without terminal journal records for B and C.
	cancel1()
	s1.Wait()
	j1.Close()
	for _, job := range []*Job{jobB, jobC} {
		waitDone(t, job)
		if v := job.Snapshot(); v.Status != StatusFailed {
			t.Fatalf("job %s at crash: %+v", job.ID, v)
		}
	}

	// Pre-populate C's result in the cache, simulating a crash that landed
	// between the cache put and the journal's done record.
	specC, _ := testSpec(777).Normalized()
	hashC, _ := specC.Hash()
	payloadC, _ := json.Marshal(okResult(specC))
	if err := c.Put(hashC, payloadC); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	run2 := func(ctx context.Context, req RunRequest) (*runner.Result, error) {
		return okResult(req.Spec), nil
	}
	s2 := New(Config{Workers: 1, Cache: c, Journal: j2, Run: run2, Retry: fastRetry})
	requeued, healed, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 1 || healed != 1 {
		t.Fatalf("Recover = (%d requeued, %d healed), want (1, 1)", requeued, healed)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	s2.Start(ctx2)

	// IDs survive the restart; B re-runs, C is healed without execution.
	rb, ok := s2.Job(jobB.ID)
	if !ok {
		t.Fatalf("job %s lost across restart", jobB.ID)
	}
	waitDone(t, rb)
	v := rb.Snapshot()
	if v.Status != StatusDone || !v.Recovered {
		t.Fatalf("recovered job B: %+v", v)
	}
	rc, ok := s2.Job(jobC.ID)
	if !ok {
		t.Fatalf("job %s lost across restart", jobC.ID)
	}
	waitDone(t, rc)
	if v := rc.Snapshot(); v.Status != StatusDone || !v.Cached {
		t.Fatalf("healed job C: %+v", v)
	}
	// A fresh submission gets an ID after every journaled one.
	fresh, err := s2.Submit(testSpec(888))
	if err != nil {
		t.Fatal(err)
	}
	if fresh.ID <= jobC.ID {
		t.Errorf("fresh job ID %s does not follow recovered %s", fresh.ID, jobC.ID)
	}
	// The journal owes nothing after the recovered jobs complete.
	waitDone(t, fresh)
	j2.Close()
	j3, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j3.Close()
	if pending := j3.Pending(); len(pending) != 0 {
		t.Errorf("journal still owes %+v after full recovery", pending)
	}
}

// TestCheckpointResumeMatchesUninterrupted kills a real CLAMR run mid-way
// (scheduler shutdown, no terminal record), restarts over the same journal
// and checkpoint dir with journal/cache faults armed, and requires the
// resumed run's final-state hash to equal an undisturbed run's.
func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	spec := testSpec(400)
	n, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := runner.Run(context.Background(), n, runner.RunOpts{})
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	c, err := cache.Open(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "journal.ndjson")
	ckptDir := filepath.Join(dir, "ckpt")
	j1, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	// Throttle stepping so the run is reliably mid-flight when "the crash"
	// lands; the sleep cannot change results, only pacing.
	slowRun := func(ctx context.Context, req RunRequest) (*runner.Result, error) {
		orig := req.Progress
		req.Progress = func(step, total int) {
			time.Sleep(200 * time.Microsecond)
			if orig != nil {
				orig(step, total)
			}
		}
		return DefaultRun(ctx, req)
	}
	s1 := New(Config{
		Workers: 1, Cache: c, Journal: j1, Run: slowRun,
		CheckpointDir: ckptDir, CheckpointEvery: 5, Retry: fastRetry,
	})
	ctx1, cancel1 := context.WithCancel(context.Background())
	s1.Start(ctx1)
	job, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the first periodic checkpoint, then crash.
	deadline := time.Now().Add(10 * time.Second)
	for s1.loadCheckpoint(job.ID) == nil {
		if time.Now().After(deadline) {
			t.Fatal("no periodic checkpoint appeared")
		}
		time.Sleep(time.Millisecond)
	}
	cancel1()
	s1.Wait()
	j1.Close()
	if v := job.Snapshot(); v.Status == StatusDone {
		t.Skip("run completed before the crash landed; resume path not exercised")
	}

	// Restart with journal and cache faults armed: the one-shot injected
	// failures land on tolerated paths (a started append, a cache put) and
	// must not change the recovered result.
	if err := fault.Arm("journal.sync=n:1,cache.put=n:1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()
	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := New(Config{
		Workers: 1, Cache: c, Journal: j2,
		CheckpointDir: ckptDir, CheckpointEvery: 5, Retry: fastRetry,
	})
	requeued, _, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if requeued != 1 {
		t.Fatalf("Recover requeued %d jobs, want 1", requeued)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	s2.Start(ctx2)

	resumed, ok := s2.Job(job.ID)
	if !ok {
		t.Fatalf("job %s lost across restart", job.ID)
	}
	waitDone(t, resumed)
	v := resumed.Snapshot()
	if v.Status != StatusDone || !v.Recovered {
		t.Fatalf("resumed job: %+v", v)
	}
	payload, _ := resumed.Result()
	var res runner.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		t.Fatal(err)
	}
	if res.StateHash != direct.StateHash {
		t.Errorf("resumed state hash %s != uninterrupted %s", res.StateHash, direct.StateHash)
	}
}

// TestShutdownHammerNoLostOrDoubleRun hammers Submit while the scheduler
// shuts down, then recovers: every acknowledged job must reach done in
// exactly one of the two lives — journaled-then-acked means none lost, the
// durable done record means none run twice.
func TestShutdownHammerNoLostOrDoubleRun(t *testing.T) {
	dir := t.TempDir()
	c, err := cache.Open(filepath.Join(dir, "cache"))
	if err != nil {
		t.Fatal(err)
	}
	jpath := filepath.Join(dir, "journal.ndjson")
	j1, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}

	var completions sync.Map // spec hash → *atomic.Int64 successful runs
	mkRun := func(delay time.Duration) RunFunc {
		return func(ctx context.Context, req RunRequest) (*runner.Result, error) {
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					return nil, ctx.Err()
				}
			}
			h, _ := req.Spec.Hash()
			v, _ := completions.LoadOrStore(h, &atomic.Int64{})
			v.(*atomic.Int64).Add(1)
			return okResult(req.Spec), nil
		}
	}

	s1 := New(Config{Workers: 4, QueueDepth: 128, Cache: c, Journal: j1, Run: mkRun(2 * time.Millisecond), Retry: fastRetry})
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	s1.Start(ctx1)

	const nJobs = 40
	acked := make([]*Job, nJobs)
	var wg sync.WaitGroup
	for i := 0; i < nJobs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := s1.Submit(testSpec(100 + i))
			if err != nil {
				return // rejected submissions are not acked and owe nothing
			}
			acked[i] = job
		}(i)
		if i == nJobs/2 {
			cancel1() // shutdown lands mid-hammer
		}
	}
	wg.Wait()
	s1.Wait()
	j1.Close()

	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	s2 := New(Config{Workers: 4, QueueDepth: 128, Cache: c, Journal: j2, Run: mkRun(0), Retry: fastRetry})
	requeued, healed, err := s2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("recovery: %d requeued, %d healed", requeued, healed)
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	s2.Start(ctx2)

	for i, job := range acked {
		if job == nil {
			continue
		}
		if v := job.Snapshot(); v.Status == StatusDone {
			continue // finished in the first life
		}
		replayed, ok := s2.Job(job.ID)
		if !ok {
			t.Errorf("acked job %d (%s) lost: not done in life 1, not recovered in life 2", i, job.ID)
			continue
		}
		waitDone(t, replayed)
		if v := replayed.Snapshot(); v.Status != StatusDone {
			t.Errorf("acked job %s never completed: %+v", job.ID, v)
		}
	}
	completions.Range(func(k, v any) bool {
		if n := v.(*atomic.Int64).Load(); n > 1 {
			t.Errorf("spec %v ran to completion %d times", k, n)
		}
		return true
	})
}
