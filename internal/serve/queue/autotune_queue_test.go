package queue

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/runner"
)

// fakeTuner resolves every auto spec to "half" and prices each demoted run
// at fixed savings, recording what the scheduler feeds back.
type fakeTuner struct {
	mu      sync.Mutex
	results []runner.ExperimentSpec
	escs    []runner.Escalation
}

func (f *fakeTuner) Resolve(spec runner.ExperimentSpec) (runner.ExperimentSpec, error) {
	return spec.Concrete("half").Normalized()
}

func (f *fakeTuner) ObserveResult(spec runner.ExperimentSpec, _ *runner.Result) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.results = append(f.results, spec)
}

func (f *fakeTuner) ObserveEscalation(_ runner.ExperimentSpec, esc runner.Escalation) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.escs = append(f.escs, esc)
}

func (f *fakeTuner) Savings(runner.ExperimentSpec, *runner.Result) (float64, float64, bool) {
	return 7, 0.25, true
}

func TestAutoModeRequiresTuner(t *testing.T) {
	s := New(Config{Workers: 1, Run: newFakeRun().fn})
	spec := testSpec(10)
	spec.Mode = "auto"
	if _, err := s.Submit(spec); !errors.Is(err, ErrNoTuner) {
		t.Fatalf("auto submission without a tuner = %v, want ErrNoTuner", err)
	}
}

// TestAutoModeResolvesAtAdmission: an auto submission is resolved to a
// concrete mode before dedup, collapses onto its concrete twin, and its
// view reports the tuned mode, the requested budget and the savings the
// tuner priced.
func TestAutoModeResolvesAtAdmission(t *testing.T) {
	fake := newFakeRun()
	ft := &fakeTuner{}
	s := New(Config{Workers: 1, Run: fake.fn, Tuner: ft})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.Start(ctx)

	auto := testSpec(10)
	auto.Mode = "auto"
	auto.MaxMassError = 1e-6
	j, err := s.Submit(auto)
	if err != nil {
		t.Fatal(err)
	}

	// A plain submission at the resolved mode is the same job.
	twin := testSpec(10)
	twin.Mode = "half"
	tj, err := s.Submit(twin)
	if err != nil {
		t.Fatal(err)
	}
	if tj != j {
		t.Fatalf("concrete twin got job %s, want dedup onto %s", tj.ID, j.ID)
	}

	close(fake.release)
	waitDone(t, j)

	v := j.Snapshot()
	if v.TunedMode != "half" {
		t.Errorf("tuned mode = %q, want half", v.TunedMode)
	}
	if v.Spec.Mode != "half" || v.Spec.MaxMassError != 0 {
		t.Errorf("executed spec = %+v, want concrete half with budgets stripped", v.Spec)
	}
	if v.MaxMassError != 1e-6 {
		t.Errorf("budget echo = %g, want 1e-6", v.MaxMassError)
	}
	if v.SavedJoules != 7 || v.SavedDollars != 0.25 {
		t.Errorf("savings = (%g, %g), want (7, 0.25)", v.SavedJoules, v.SavedDollars)
	}

	ft.mu.Lock()
	defer ft.mu.Unlock()
	if len(ft.results) != 1 || ft.results[0].Mode != "half" {
		t.Errorf("tuner observed %+v, want one half-mode result", ft.results)
	}
}
