package queue

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/serve/dispatch"
)

// completeError uploads a classified failure for a lease, the way a worker
// node reports a run that errored rather than crashed.
func (w *testWorker) completeError(leaseID, msg, kind string) int {
	w.t.Helper()
	return w.post("/v1/workers/"+w.id+"/complete",
		dispatch.CompleteRequest{LeaseID: leaseID, Error: msg, ErrorKind: kind}, nil)
}

// deregister says goodbye like a draining worker, reporting wind-down time.
func (w *testWorker) deregister(drainSeconds float64) int {
	w.t.Helper()
	return w.post("/v1/workers/"+w.id+"/deregister",
		dispatch.DeregisterRequest{DrainSeconds: drainSeconds}, nil)
}

func (h *fleetHarness) listWorkers(t *testing.T) dispatch.FleetView {
	t.Helper()
	resp, err := http.Get(h.srv.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var view dispatch.FleetView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	return view
}

// workerHealth polls GET /v1/workers until the named worker reports the
// wanted health state or the deadline passes; returns the last seen state.
func (h *fleetHarness) waitWorkerHealth(t *testing.T, id, want string, deadline time.Duration) string {
	t.Helper()
	end := time.Now().Add(deadline)
	last := ""
	for time.Now().Before(end) {
		for _, wv := range h.listWorkers(t).Workers {
			if wv.ID == id {
				last = wv.Health
			}
		}
		if last == want {
			return last
		}
		time.Sleep(20 * time.Millisecond)
	}
	return last
}

// TestFleetDeregisterRequeuesLeaseImmediately: a deregistering worker's
// leases are handed back synchronously — the next worker gets the job well
// before the lease TTL, and the deliberate handback consumes no retry
// budget.
func TestFleetDeregisterRequeuesLeaseImmediately(t *testing.T) {
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		dispatch.CoordinatorConfig{LeaseTTL: 10 * time.Second, PollWait: 150 * time.Millisecond})

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	w1 := h.registerWorker(t, "leaving")
	w2 := h.registerWorker(t, "staying")

	g1 := w1.leaseUntilGrant(2 * time.Second)
	if g1.JobID != job.ID {
		t.Fatalf("grant is job %s, want %s", g1.JobID, job.ID)
	}
	start := time.Now()
	if status := w1.deregister(1.25); status != http.StatusOK {
		t.Fatalf("deregister = %d, want 200", status)
	}
	// With a 10s TTL the reaper cannot be the requeue path: the grant to
	// the second worker must come from the deregister itself.
	g2 := w2.leaseUntilGrant(2 * time.Second)
	if took := time.Since(start); took > 5*time.Second {
		t.Fatalf("requeue after deregister took %v — waited for the TTL reaper", took)
	}
	if g2.JobID != job.ID {
		t.Fatalf("requeued grant is job %s, want %s", g2.JobID, job.ID)
	}
	if status := w2.complete(g2.LeaseID, runPayload(t, g2.Spec)); status != http.StatusOK {
		t.Fatalf("complete = %d", status)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusDone {
		t.Fatalf("job = %+v, want done", v)
	}
	st := h.sched.Stats()
	if st.Requeued == 0 || st.Retried != 0 {
		t.Fatalf("stats = %+v, want requeued>0 retried=0 (drain handback is not a retry)", st)
	}
	if view := h.listWorkers(t); len(view.Workers) != 1 {
		t.Fatalf("fleet still lists %d workers after deregister, want 1", len(view.Workers))
	}
}

// TestFleetPoisonedJobParksAndRetryReleases: the same failure kind on two
// distinct workers parks the job as poisoned instead of burning the rest of
// its retry budget; RetryPoisoned releases it for one more try.
func TestFleetPoisonedJobParksAndRetryReleases(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	h := newFleetHarness(t,
		Config{DisableLocal: true, Journal: j, Retry: fastRetry},
		dispatch.CoordinatorConfig{LeaseTTL: 2 * time.Second, PollWait: 100 * time.Millisecond})

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	w1 := h.registerWorker(t, "victim-a")
	w2 := h.registerWorker(t, "victim-b")

	g1 := w1.leaseUntilGrant(2 * time.Second)
	if status := w1.completeError(g1.LeaseID, "solver exploded: boom", "transient"); status != http.StatusOK {
		t.Fatalf("error complete = %d", status)
	}
	// The retry goes to a different worker and fails the same way: two
	// distinct executors agree the spec is at fault — poison, don't retry.
	g2 := w2.leaseUntilGrant(3 * time.Second)
	if g2.JobID != job.ID {
		t.Fatalf("retry grant is job %s, want %s", g2.JobID, job.ID)
	}
	if status := w2.completeError(g2.LeaseID, "solver exploded: boom", "transient"); status != http.StatusOK {
		t.Fatalf("error complete = %d", status)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusPoisoned {
		t.Fatalf("job = %+v, want poisoned", v)
	} else if !strings.Contains(v.Error, "boom") {
		t.Fatalf("poisoned job error %q does not carry the failure", v.Error)
	}
	if st := h.sched.Stats(); st.Poisoned != 1 {
		t.Fatalf("stats = %+v, want poisoned=1", st)
	}
	raw, err := os.ReadFile(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"type":"poisoned"`) {
		t.Fatal("journal does not record the poison verdict")
	}

	// Release semantics: unknown and non-poisoned jobs are rejected.
	if err := h.sched.RetryPoisoned("job-999999"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("RetryPoisoned(unknown) = %v, want ErrUnknownJob", err)
	}
	if err := h.sched.RetryPoisoned(job.ID); err != nil {
		t.Fatalf("RetryPoisoned = %v", err)
	}
	if err := h.sched.RetryPoisoned(job.ID); !errors.Is(err, ErrNotPoisoned) {
		t.Fatalf("second RetryPoisoned = %v, want ErrNotPoisoned", err)
	}

	// The released job re-runs with fresh poison bookkeeping and can finish.
	g3 := w1.leaseUntilGrant(3 * time.Second)
	if g3.JobID != job.ID {
		t.Fatalf("released grant is job %s, want %s", g3.JobID, job.ID)
	}
	if status := w1.complete(g3.LeaseID, runPayload(t, g3.Spec)); status != http.StatusOK {
		t.Fatalf("complete = %d", status)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusDone {
		t.Fatalf("released job = %+v, want done", v)
	}
	if p := j.Pending(); len(p) != 0 {
		t.Fatalf("journal still owes %d jobs after completion", len(p))
	}
}

// TestFleetPoisonedSurvivesJournalReplay: a poison verdict is durable — a
// restart re-parks the job without re-running it, and it stays parked until
// an operator releases it.
func TestFleetPoisonedSurvivesJournalReplay(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "journal")
	j, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	h := newFleetHarness(t,
		Config{DisableLocal: true, Journal: j, Retry: fastRetry},
		dispatch.CoordinatorConfig{LeaseTTL: 2 * time.Second, PollWait: 100 * time.Millisecond})

	job, err := h.sched.Submit(testSpec(8))
	if err != nil {
		t.Fatal(err)
	}
	w1 := h.registerWorker(t, "replay-a")
	w2 := h.registerWorker(t, "replay-b")
	g1 := w1.leaseUntilGrant(2 * time.Second)
	w1.completeError(g1.LeaseID, "numerics diverged", "transient")
	g2 := w2.leaseUntilGrant(3 * time.Second)
	w2.completeError(g2.LeaseID, "numerics diverged", "transient")
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusPoisoned {
		t.Fatalf("setup: job = %+v, want poisoned", v)
	}

	// Crash and restart.
	h.cancel()
	h.sched.Wait()
	j.Close()
	j2, err := OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	var execs int
	run2 := func(ctx context.Context, req RunRequest) (*runner.Result, error) {
		execs++
		return okResult(req.Spec), nil
	}
	s2 := New(Config{Workers: 1, Journal: j2, Run: run2, Retry: fastRetry})
	if _, _, err := s2.Recover(); err != nil {
		t.Fatal(err)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	s2.Start(ctx2)
	t.Cleanup(func() {
		cancel2()
		s2.Wait()
	})

	rj, ok := s2.Job(job.ID)
	if !ok {
		t.Fatalf("poisoned job %s lost across restart", job.ID)
	}
	v := rj.Snapshot()
	if v.Status != StatusPoisoned || !v.Recovered {
		t.Fatalf("recovered job = %+v, want recovered + poisoned", v)
	}
	if !strings.Contains(v.Error, "numerics diverged") {
		t.Fatalf("recovered poison lost its cause: %q", v.Error)
	}
	time.Sleep(50 * time.Millisecond)
	if execs != 0 {
		t.Fatalf("replay re-ran a poisoned job %d times, want 0", execs)
	}
	if st := s2.Stats(); st.Poisoned != 1 {
		t.Fatalf("stats after replay = %+v, want poisoned=1", st)
	}

	// Operator release works after the restart too.
	if err := s2.RetryPoisoned(job.ID); err != nil {
		t.Fatalf("RetryPoisoned after replay = %v", err)
	}
	waitDone(t, rj)
	if v := rj.Snapshot(); v.Status != StatusDone {
		t.Fatalf("released job = %+v, want done", v)
	}
	if execs != 1 {
		t.Fatalf("released job ran %d times, want 1", execs)
	}
}

type hedgeRecord struct {
	jobID, stateHash, winner, loser string
	match                           bool
}

func hedgeCoordinatorConfig(rec chan hedgeRecord) dispatch.CoordinatorConfig {
	return dispatch.CoordinatorConfig{
		LeaseTTL: 2 * time.Second, PollWait: 150 * time.Millisecond,
		HedgeBudget: 1, HedgeAfter: 100 * time.Millisecond,
		VerifyWait: 5 * time.Second,
		HedgeRecord: func(jobID, specHash, stateHash, winner, loser string, match bool) {
			rec <- hedgeRecord{jobID: jobID, stateHash: stateHash, winner: winner, loser: loser, match: match}
		},
	}
}

// TestFleetHedgeFirstWinsAndVerifies: a straggling lease gets a duplicate
// on a second worker; the first completion wins, the straggler's late
// upload still lands, and the pair verifies bit-identical — journaled once.
func TestFleetHedgeFirstWinsAndVerifies(t *testing.T) {
	rec := make(chan hedgeRecord, 2)
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		hedgeCoordinatorConfig(rec))

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	w1 := h.registerWorker(t, "straggler")
	w2 := h.registerWorker(t, "rescuer")

	g1 := w1.leaseUntilGrant(2 * time.Second)
	if g1.JobID != job.ID {
		t.Fatalf("grant is job %s, want %s", g1.JobID, job.ID)
	}
	// w1 sits on the lease past HedgeAfter; the reaper fires a duplicate
	// attempt that only w2 can take (the primary's worker is excluded).
	g2 := w2.leaseUntilGrant(3 * time.Second)
	if g2.JobID != job.ID || g2.SpecHash != g1.SpecHash {
		t.Fatalf("hedge grant = %+v, want duplicate of job %s", g2, job.ID)
	}

	payload := runPayload(t, g2.Spec)
	if status := w2.complete(g2.LeaseID, payload); status != http.StatusOK {
		t.Fatalf("hedge complete = %d", status)
	}
	// First-wins: the hedge's completion finishes the job while the
	// straggler is still holding its lease.
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusDone {
		t.Fatalf("job = %+v, want done before the straggler uploads", v)
	}

	// The straggler's upload is still accepted — and becomes the free
	// cross-node verification of the hedged pair.
	if status := w1.complete(g1.LeaseID, payload); status != http.StatusOK {
		t.Fatalf("straggler complete = %d, want 200", status)
	}
	select {
	case r := <-rec:
		if !r.match || r.jobID != job.ID || r.winner != w1.id || r.loser != w2.id {
			t.Fatalf("hedge record = %+v, want verified pair primary=%s hedge=%s", r, w1.id, w2.id)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no hedge_verified record after both completions landed")
	}
	if st := h.sched.Stats(); st.Executed != 1 {
		t.Fatalf("stats = %+v, want executed=1 (the job completed exactly once)", st)
	}
}

// TestFleetHedgeMismatchQuarantinesSlower: when a hedged pair diverges, the
// slower (second-landing) worker is force-quarantined and the divergence
// journaled with match=false.
func TestFleetHedgeMismatchQuarantinesSlower(t *testing.T) {
	rec := make(chan hedgeRecord, 2)
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		hedgeCoordinatorConfig(rec))

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	w1 := h.registerWorker(t, "honest")
	w2 := h.registerWorker(t, "liar")

	g1 := w1.leaseUntilGrant(2 * time.Second)
	g2 := w2.leaseUntilGrant(3 * time.Second)

	good := runPayload(t, g1.Spec)
	if status := w1.complete(g1.LeaseID, good); status != http.StatusOK {
		t.Fatalf("primary complete = %d", status)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusDone {
		t.Fatalf("job = %+v, want done (primary won)", v)
	}

	// The hedge lands second with a diverged state hash.
	var res runner.Result
	if err := json.Unmarshal(good, &res); err != nil {
		t.Fatal(err)
	}
	res.StateHash = "deadbeef" + res.StateHash[8:]
	diverged, _ := json.Marshal(res)
	if status := w2.complete(g2.LeaseID, diverged); status != http.StatusOK {
		t.Fatalf("hedge complete = %d", status)
	}
	select {
	case r := <-rec:
		if r.match || r.loser != w2.id {
			t.Fatalf("hedge record = %+v, want mismatch with hedge=%s", r, w2.id)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("no hedge record after divergent completions")
	}
	if got := h.waitWorkerHealth(t, w2.id, string(dispatch.HealthQuarantined), 2*time.Second); got != "quarantined" {
		t.Fatalf("diverging worker health = %q, want quarantined", got)
	}
	if got := h.waitWorkerHealth(t, w1.id, string(dispatch.HealthHealthy), time.Second); got != "healthy" {
		t.Fatalf("honest worker health = %q, want healthy", got)
	}
}

// TestFleetQuarantineProbeReadmission: two lease expiries quarantine a
// worker — its polls come back empty while work is queued — and after
// ProbeAfter a single half-open probe lease whose clean completion readmits
// it.
func TestFleetQuarantineProbeReadmission(t *testing.T) {
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		dispatch.CoordinatorConfig{
			LeaseTTL: 100 * time.Millisecond, PollWait: 100 * time.Millisecond,
			ProbeAfter: 400 * time.Millisecond,
		})

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	w := h.registerWorker(t, "flaky")

	// Two grants die by TTL: probation, then quarantine.
	w.leaseUntilGrant(2 * time.Second)
	w.leaseUntilGrant(3 * time.Second)
	if got := h.waitWorkerHealth(t, w.id, string(dispatch.HealthQuarantined), 2*time.Second); got != "quarantined" {
		t.Fatalf("after two expiries health = %q, want quarantined", got)
	}

	// Quarantined: lease matching skips the worker even though the job is
	// queued and it is the only worker.
	if g := w.lease(50 * time.Millisecond); g != nil {
		t.Fatalf("quarantined worker got a grant: %+v", g)
	}
	if v := job.Snapshot(); v.Status == StatusDone || v.Status == StatusFailed {
		t.Fatalf("job settled while the fleet was quarantined: %+v", v)
	}

	// After ProbeAfter the half-open probe grants; a clean completion
	// readmits the worker and finishes the job.
	g := w.leaseUntilGrant(3 * time.Second)
	if g.JobID != job.ID {
		t.Fatalf("probe grant is job %s, want %s", g.JobID, job.ID)
	}
	if status := w.complete(g.LeaseID, runPayload(t, g.Spec)); status != http.StatusOK {
		t.Fatalf("probe complete = %d", status)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusDone {
		t.Fatalf("job = %+v, want done", v)
	}
	if got := h.waitWorkerHealth(t, w.id, string(dispatch.HealthHealthy), 2*time.Second); got != "healthy" {
		t.Fatalf("readmitted worker health = %q, want healthy", got)
	}
	if st := h.sched.Stats(); st.Executed != 1 || st.Retried != 0 {
		t.Fatalf("stats = %+v, want executed=1 retried=0", st)
	}
}
