package queue

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/runner"
	"repro/internal/serve/dispatch"
)

// fleetHarness is a scheduler wired to a fleet coordinator served over
// loopback HTTP — the full lease protocol as workers see it, minus only the
// worker binary.
type fleetHarness struct {
	sched   *Scheduler
	journal *Journal
	co      *dispatch.Coordinator
	srv     *httptest.Server
	cancel  context.CancelFunc
}

func newFleetHarness(t *testing.T, cfg Config, ccfg dispatch.CoordinatorConfig) *fleetHarness {
	t.Helper()
	disp := dispatch.New(dispatch.Options{})
	co := dispatch.NewCoordinator(disp, ccfg)
	cfg.Dispatch = disp
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16
	}
	s := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/workers/register", co.HandleRegister)
	mux.HandleFunc("POST /v1/workers/lease", co.HandleLease)
	mux.HandleFunc("POST /v1/workers/{id}/heartbeat", co.HandleHeartbeat)
	mux.HandleFunc("POST /v1/workers/{id}/complete", co.HandleComplete)
	mux.HandleFunc("POST /v1/workers/{id}/deregister", co.HandleDeregister)
	mux.HandleFunc("GET /v1/workers", co.HandleList)
	mux.HandleFunc("GET /metrics/fleet", co.HandleFleetMetrics)
	srv := httptest.NewServer(mux)

	h := &fleetHarness{sched: s, journal: cfg.Journal, co: co, srv: srv, cancel: cancel}
	t.Cleanup(func() {
		cancel()
		s.Wait()
		srv.Close()
	})
	return h
}

// testWorker drives the lease protocol like cmd/precision-worker does.
type testWorker struct {
	t    *testing.T
	base string
	id   string
}

func (h *fleetHarness) registerWorker(t *testing.T, name string) *testWorker {
	t.Helper()
	w := &testWorker{t: t, base: h.srv.URL}
	var resp dispatch.RegisterResponse
	status := w.post("/v1/workers/register",
		dispatch.RegisterRequest{Name: name, Capabilities: dispatch.Capabilities{Slots: 1}}, &resp)
	if status != http.StatusOK {
		t.Fatalf("register = %d", status)
	}
	w.id = resp.WorkerID
	return w
}

func (w *testWorker) post(path string, in, out any) int {
	w.t.Helper()
	body, err := json.Marshal(in)
	if err != nil {
		w.t.Fatal(err)
	}
	resp, err := http.Post(w.base+path, "application/json", bytes.NewReader(body))
	if err != nil {
		w.t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			w.t.Fatalf("decode %s reply: %v", path, err)
		}
	}
	return resp.StatusCode
}

// lease polls once; nil means an empty poll (204).
func (w *testWorker) lease(wait time.Duration) *dispatch.LeaseGrant {
	w.t.Helper()
	var g dispatch.LeaseGrant
	status := w.post("/v1/workers/lease",
		dispatch.LeaseRequest{WorkerID: w.id, Wait: wait.String()}, &g)
	switch status {
	case http.StatusOK:
		return &g
	case http.StatusNoContent:
		return nil
	default:
		w.t.Fatalf("lease = %d", status)
		return nil
	}
}

// leaseUntilGrant polls until a grant arrives or the deadline passes.
func (w *testWorker) leaseUntilGrant(deadline time.Duration) *dispatch.LeaseGrant {
	w.t.Helper()
	end := time.Now().Add(deadline)
	for time.Now().Before(end) {
		if g := w.lease(100 * time.Millisecond); g != nil {
			return g
		}
	}
	w.t.Fatalf("no lease granted within %v", deadline)
	return nil
}

func (w *testWorker) heartbeat(leases ...dispatch.LeaseProgress) []string {
	w.t.Helper()
	var resp dispatch.HeartbeatResponse
	if status := w.post("/v1/workers/"+w.id+"/heartbeat",
		dispatch.HeartbeatRequest{Leases: leases}, &resp); status != http.StatusOK {
		w.t.Fatalf("heartbeat = %d", status)
	}
	return resp.Expired
}

func (w *testWorker) complete(leaseID string, payload []byte) int {
	w.t.Helper()
	return w.post("/v1/workers/"+w.id+"/complete",
		dispatch.CompleteRequest{LeaseID: leaseID, Result: payload}, nil)
}

// runPayload computes a grant's result exactly like a worker node would.
func runPayload(t *testing.T, spec runner.ExperimentSpec) []byte {
	t.Helper()
	res, err := DefaultRun(context.Background(), RunRequest{Spec: spec, Lanes: 1})
	if err != nil {
		t.Fatal(err)
	}
	payload, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestFleetLeaseExpiryRequeuesUnderOriginalID is the crash contract: a
// worker that takes a lease and goes silent (SIGKILL) loses the lease after
// the TTL, the job re-queues under its original ID without consuming retry
// budget, and the worker's late duplicate completion is rejected with 409.
func TestFleetLeaseExpiryRequeuesUnderOriginalID(t *testing.T) {
	dir := t.TempDir()
	j, err := OpenJournal(filepath.Join(dir, "journal"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	h := newFleetHarness(t,
		Config{DisableLocal: true, Journal: j, Retry: fastRetry},
		dispatch.CoordinatorConfig{LeaseTTL: 80 * time.Millisecond, PollWait: 150 * time.Millisecond})

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}

	w := h.registerWorker(t, "silent")
	g1 := w.leaseUntilGrant(2 * time.Second)
	if g1.JobID != job.ID {
		t.Fatalf("lease granted job %s, want %s", g1.JobID, job.ID)
	}
	if g1.Attempt != 1 {
		t.Fatalf("first grant attempt = %d, want 1", g1.Attempt)
	}

	// No heartbeat: the reaper must expire the lease and the scheduler
	// re-offer the SAME job. The next grant is a fresh lease.
	g2 := w.leaseUntilGrant(3 * time.Second)
	if g2.JobID != job.ID {
		t.Fatalf("requeued grant is job %s, want original %s", g2.JobID, job.ID)
	}
	if g2.LeaseID == g1.LeaseID {
		t.Fatal("requeued attempt reused the expired lease ID")
	}
	if g2.Attempt != 2 {
		t.Fatalf("requeued grant attempt = %d, want 2", g2.Attempt)
	}

	payload := runPayload(t, g2.Spec)
	// The zombie's late upload under the expired lease: rejected, not
	// admitted — the job must complete exactly once.
	if status := w.complete(g1.LeaseID, payload); status != http.StatusConflict {
		t.Fatalf("duplicate complete after expiry = %d, want 409", status)
	}
	if status := w.complete(g2.LeaseID, payload); status != http.StatusOK {
		t.Fatalf("complete = %d, want 200", status)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusDone {
		t.Fatalf("job = %+v, want done", v)
	} else if v.Backend != "fleet/"+w.id {
		t.Fatalf("job backend = %q, want fleet/%s", v.Backend, w.id)
	}
	st := h.sched.Stats()
	if st.Requeued == 0 {
		t.Fatalf("stats = %+v, want requeued > 0", st)
	}
	if st.Executed != 1 || st.Retried != 0 {
		t.Fatalf("stats = %+v, want executed=1 retried=0 (expiry must not consume retry budget)", st)
	}
	if p := j.Pending(); len(p) != 0 {
		t.Fatalf("journal still owes %d jobs after completion", len(p))
	}
}

// TestFleetHeartbeatExtendsLease: heartbeats carry the lease across many
// TTLs and relay solver progress into the job view.
func TestFleetHeartbeatExtendsLease(t *testing.T) {
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		dispatch.CoordinatorConfig{LeaseTTL: 100 * time.Millisecond, PollWait: 150 * time.Millisecond})

	job, err := h.sched.Submit(testSpec(10))
	if err != nil {
		t.Fatal(err)
	}
	w := h.registerWorker(t, "steady")
	g := w.leaseUntilGrant(2 * time.Second)

	// Hold the lease for 5 TTLs, heartbeating at TTL/3.
	deadline := time.Now().Add(500 * time.Millisecond)
	step := int64(0)
	for time.Now().Before(deadline) {
		step++
		if expired := w.heartbeat(dispatch.LeaseProgress{LeaseID: g.LeaseID, Step: step, Total: 10}); len(expired) != 0 {
			t.Fatalf("heartbeated lease expired: %v", expired)
		}
		time.Sleep(30 * time.Millisecond)
	}
	if v := job.Snapshot(); v.Step != step || v.Total != 10 {
		t.Fatalf("progress not relayed: view step=%d/%d, want %d/10", v.Step, v.Total, step)
	}
	if status := w.complete(g.LeaseID, runPayload(t, g.Spec)); status != http.StatusOK {
		t.Fatalf("complete = %d, want 200", status)
	}
	waitDone(t, job)
	if st := h.sched.Stats(); st.Requeued != 0 {
		t.Fatalf("stats = %+v, want no requeues while heartbeating", st)
	}
}

// TestFleetCorruptUploadRetried: a payload that does not round-trip the
// versioned spec hash is rejected with 422 and the attempt retried.
func TestFleetCorruptUploadRetried(t *testing.T) {
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		dispatch.CoordinatorConfig{LeaseTTL: 500 * time.Millisecond, PollWait: 150 * time.Millisecond})

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	w := h.registerWorker(t, "corrupt")
	g1 := w.leaseUntilGrant(2 * time.Second)

	good := runPayload(t, g1.Spec)
	var tampered runner.Result
	if err := json.Unmarshal(good, &tampered); err != nil {
		t.Fatal(err)
	}
	tampered.Spec.Steps += 7 // re-hashes to a different spec: must not round-trip
	bad, _ := json.Marshal(tampered)
	if status := w.complete(g1.LeaseID, bad); status != http.StatusUnprocessableEntity {
		t.Fatalf("corrupt upload = %d, want 422", status)
	}

	g2 := w.leaseUntilGrant(2 * time.Second)
	if g2.JobID != job.ID || g2.Attempt != 2 {
		t.Fatalf("retry grant = %+v, want attempt 2 of %s", g2, job.ID)
	}
	if status := w.complete(g2.LeaseID, good); status != http.StatusOK {
		t.Fatalf("complete = %d, want 200", status)
	}
	waitDone(t, job)
	if st := h.sched.Stats(); st.Retried != 1 || st.Executed != 1 {
		t.Fatalf("stats = %+v, want retried=1 executed=1", st)
	}
}

// TestFleetVerifyMatchAdmitsResult: with -verify-n 1 every remote result is
// re-run on a second worker; bit-identical state hashes admit the first.
func TestFleetVerifyMatchAdmitsResult(t *testing.T) {
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		dispatch.CoordinatorConfig{
			LeaseTTL: 500 * time.Millisecond, PollWait: 150 * time.Millisecond,
			VerifyN: 1, VerifyWait: 5 * time.Second,
		})

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	w1 := h.registerWorker(t, "first")
	w2 := h.registerWorker(t, "second")

	g1 := w1.leaseUntilGrant(2 * time.Second)
	payload := runPayload(t, g1.Spec)
	if status := w1.complete(g1.LeaseID, payload); status != http.StatusOK {
		t.Fatalf("complete = %d", status)
	}

	// The verification attempt must go to a DIFFERENT worker.
	g2 := w2.leaseUntilGrant(3 * time.Second)
	if g2.JobID != job.ID {
		t.Fatalf("shadow grant is job %s, want %s", g2.JobID, job.ID)
	}
	if status := w2.complete(g2.LeaseID, runPayload(t, g2.Spec)); status != http.StatusOK {
		t.Fatalf("shadow complete = %d", status)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusDone {
		t.Fatalf("verified job = %+v, want done", v)
	}
	var res runner.Result
	payloadOut, ok := job.Result()
	if !ok {
		t.Fatal("no result payload")
	}
	if err := json.Unmarshal(payloadOut, &res); err != nil {
		t.Fatal(err)
	}
	var first runner.Result
	if err := json.Unmarshal(payload, &first); err != nil {
		t.Fatal(err)
	}
	if res.StateHash != first.StateHash {
		t.Fatalf("admitted state hash %s, want the verified %s", res.StateHash, first.StateHash)
	}
}

// TestFleetVerifyMismatchFailsJob: divergent state hashes across nodes are
// a permanent failure — non-determinism must never be silently admitted.
func TestFleetVerifyMismatchFailsJob(t *testing.T) {
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		dispatch.CoordinatorConfig{
			LeaseTTL: 500 * time.Millisecond, PollWait: 150 * time.Millisecond,
			VerifyN: 1, VerifyWait: 5 * time.Second,
		})

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	w1 := h.registerWorker(t, "honest")
	w2 := h.registerWorker(t, "divergent")

	g1 := w1.leaseUntilGrant(2 * time.Second)
	payload := runPayload(t, g1.Spec)
	if status := w1.complete(g1.LeaseID, payload); status != http.StatusOK {
		t.Fatalf("complete = %d", status)
	}

	g2 := w2.leaseUntilGrant(3 * time.Second)
	var res runner.Result
	if err := json.Unmarshal(payload, &res); err != nil {
		t.Fatal(err)
	}
	res.StateHash = "deadbeef" + res.StateHash[8:] // same spec, different state
	diverged, _ := json.Marshal(res)
	if status := w2.complete(g2.LeaseID, diverged); status != http.StatusOK {
		t.Fatalf("shadow complete = %d", status)
	}
	waitDone(t, job)
	v := job.Snapshot()
	if v.Status != StatusFailed {
		t.Fatalf("diverged job = %+v, want failed", v)
	}
	if want := "divergence"; !bytes.Contains([]byte(v.Error), []byte(want)) {
		t.Fatalf("error %q does not mention %q", v.Error, want)
	}
}

// TestFleetInjectedLeaseExpiry: the dispatch.lease.expire fault point
// force-expires a heartbeated lease, telling the worker to cancel — the
// partition chaos drill, driven deterministically.
func TestFleetInjectedLeaseExpiry(t *testing.T) {
	if err := fault.Arm("dispatch.lease.expire=n:1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		dispatch.CoordinatorConfig{LeaseTTL: 300 * time.Millisecond, PollWait: 150 * time.Millisecond})

	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	w := h.registerWorker(t, "victim")
	g1 := w.leaseUntilGrant(2 * time.Second)
	expired := w.heartbeat(dispatch.LeaseProgress{LeaseID: g1.LeaseID, Step: 1, Total: 6})
	if len(expired) != 1 || expired[0] != g1.LeaseID {
		t.Fatalf("heartbeat expired = %v, want [%s]", expired, g1.LeaseID)
	}
	if status := w.complete(g1.LeaseID, runPayload(t, g1.Spec)); status != http.StatusConflict {
		t.Fatalf("complete after injected expiry = %d, want 409", status)
	}
	g2 := w.leaseUntilGrant(3 * time.Second)
	if g2.JobID != job.ID {
		t.Fatalf("requeued grant is job %s, want %s", g2.JobID, job.ID)
	}
	if status := w.complete(g2.LeaseID, runPayload(t, g2.Spec)); status != http.StatusOK {
		t.Fatalf("complete = %d", status)
	}
	waitDone(t, job)
	if v := job.Snapshot(); v.Status != StatusDone {
		t.Fatalf("job = %+v, want done", v)
	}
}

// TestFleetOnlyModeQueuesUntilWorkerArrives: -workers 0 (DisableLocal)
// means nothing runs until a worker registers — then everything drains.
func TestFleetOnlyModeQueuesUntilWorkerArrives(t *testing.T) {
	h := newFleetHarness(t,
		Config{DisableLocal: true, Retry: fastRetry},
		dispatch.CoordinatorConfig{LeaseTTL: 500 * time.Millisecond, PollWait: 100 * time.Millisecond})

	if w := h.sched.Stats().Workers; w != 0 {
		t.Fatalf("fleet-only scheduler reports %d local workers, want 0", w)
	}
	job, err := h.sched.Submit(testSpec(6))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	if v := job.Snapshot(); v.Status != StatusQueued {
		t.Fatalf("job with no workers = %s, want still queued", v.Status)
	}
	w := h.registerWorker(t, "late")
	g := w.leaseUntilGrant(2 * time.Second)
	if status := w.complete(g.LeaseID, runPayload(t, g.Spec)); status != http.StatusOK {
		t.Fatalf("complete = %d", status)
	}
	waitDone(t, job)
}
