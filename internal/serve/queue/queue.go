// Package queue is the experiment service's admission and execution layer:
// a bounded job queue, a spec-hash singleflight, and a worker-limited
// scheduler that executes jobs without oversubscribing the machine.
//
// Admission order: a submitted spec is (1) collapsed onto an identical
// queued-or-running job if one exists (singleflight — concurrent duplicate
// sweeps cost one computation), else (2) answered from the content-
// addressed result cache, else (3) enqueued, bounded — a full queue
// rejects with ErrQueueFull rather than buffering unboundedly.
//
// Execution budget: Workers jobs run concurrently, and each is handed an
// equal share of the machine's parallel lanes (GOMAXPROCS / Workers) as
// its solver chunk budget. The solvers dispatch those chunks on the shared
// internal/par pool, whose dispatch serialization already arbitrates
// concurrent solvers, so total parallelism stays at one pool's worth of
// cores regardless of how many jobs are in flight. Worker counts never
// change results (DESIGN.md §5), only latency.
package queue

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/runner"
	"repro/internal/serve/cache"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle: queued → running → done | failed. Cache answers are born
// done.
const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// ErrQueueFull rejects submissions beyond the queue bound.
var ErrQueueFull = errors.New("queue: job queue is full")

// Job tracks one admitted experiment. Progress fields are atomics so the
// NDJSON streamer can poll without locking the scheduler.
type Job struct {
	// ID is the scheduler-assigned identity ("job-000001"); SpecHash is
	// the content address shared by every submission of this spec.
	ID       string
	SpecHash string
	Spec     runner.ExperimentSpec // normalized

	step, total atomic.Int64

	mu      sync.Mutex
	status  Status
	cached  bool
	result  []byte
	errMsg  string
	done    chan struct{}
	doneOne sync.Once
}

// View is an immutable snapshot of a job for handlers and clients.
type View struct {
	ID       string                `json:"id"`
	SpecHash string                `json:"spec_hash"`
	Spec     runner.ExperimentSpec `json:"spec"`
	Status   Status                `json:"status"`
	Cached   bool                  `json:"cached"`
	Step     int64                 `json:"step"`
	Total    int64                 `json:"total"`
	Error    string                `json:"error,omitempty"`
}

// Snapshot captures the job's current state.
func (j *Job) Snapshot() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	return View{
		ID:       j.ID,
		SpecHash: j.SpecHash,
		Spec:     j.Spec,
		Status:   j.status,
		Cached:   j.cached,
		Step:     j.step.Load(),
		Total:    j.total.Load(),
		Error:    j.errMsg,
	}
}

// Done is closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Result returns the serialized result payload once the job is done.
// The bytes are the exact cache payload: byte-identical for every
// submission of the same spec.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.status == StatusDone
}

func (j *Job) progress(step, totalSteps int) {
	j.step.Store(int64(step))
	j.total.Store(int64(totalSteps))
}

func (j *Job) setStatus(st Status) {
	j.mu.Lock()
	j.status = st
	j.mu.Unlock()
}

func (j *Job) finish(st Status, result []byte, errMsg string) {
	j.mu.Lock()
	j.status = st
	j.result = result
	j.errMsg = errMsg
	j.mu.Unlock()
	j.doneOne.Do(func() { close(j.done) })
}

// RunFunc executes a normalized spec with the given solver lane budget and
// progress sink, returning the serialized result. Swapped out in tests.
type RunFunc func(ctx context.Context, spec runner.ExperimentSpec, lanes int, progress func(step, total int)) ([]byte, error)

// DefaultRun executes the spec through the runner and serializes its
// result as canonical JSON — the payload the cache stores and the API
// serves.
func DefaultRun(ctx context.Context, spec runner.ExperimentSpec, lanes int, progress func(step, total int)) ([]byte, error) {
	res, err := runner.Run(ctx, spec, runner.RunOpts{Workers: lanes, Progress: progress})
	if err != nil {
		return nil, err
	}
	return json.Marshal(res)
}

// Config sizes a Scheduler.
type Config struct {
	// Workers is the number of jobs executing concurrently (default 2).
	Workers int
	// QueueDepth bounds the pending-job queue (default 64).
	QueueDepth int
	// Lanes is the machine's total parallel-lane budget divided among the
	// workers (default GOMAXPROCS).
	Lanes int
	// Cache, when non-nil, answers repeat submissions and stores results.
	Cache *cache.Cache
	// Run executes one job (default DefaultRun).
	Run RunFunc
}

// Stats counts scheduler traffic for /v1/cache/stats.
type Stats struct {
	Submitted     uint64 `json:"submitted"`
	DedupHits     uint64 `json:"dedup_hits"`
	CacheHits     uint64 `json:"cache_hits"`
	Executed      uint64 `json:"executed"`
	Failed        uint64 `json:"failed"`
	QueueRejected uint64 `json:"queue_rejected"`
	QueueDepth    int    `json:"queue_depth"`
	Workers       int    `json:"workers"`
}

// Scheduler admits, deduplicates and executes jobs.
type Scheduler struct {
	cfg   Config
	lanes int
	queue chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job // by job ID
	order    []string        // job IDs in admission order
	inflight map[string]*Job // spec hash → queued-or-running job
	nextID   uint64

	submitted, dedupHits, cacheHits uint64
	executed, failed, rejected      uint64

	wg sync.WaitGroup
}

// New builds a scheduler; call Start to begin executing.
func New(cfg Config) *Scheduler {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = runtime.GOMAXPROCS(0)
	}
	if cfg.Run == nil {
		cfg.Run = DefaultRun
	}
	lanes := cfg.Lanes / cfg.Workers
	if lanes < 1 {
		lanes = 1
	}
	return &Scheduler{
		cfg:      cfg,
		lanes:    lanes,
		queue:    make(chan *Job, cfg.QueueDepth),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
	}
}

// Start launches the worker goroutines; they exit when ctx is cancelled
// (cancelling any running solver between steps). Wait blocks until they
// have drained.
func (s *Scheduler) Start(ctx context.Context) {
	for w := 0; w < s.cfg.Workers; w++ {
		s.wg.Add(1)
		go s.worker(ctx)
	}
}

// Wait blocks until every worker has exited (after ctx cancellation),
// then fails any jobs still queued so their waiters unblock.
func (s *Scheduler) Wait() {
	s.wg.Wait()
	for {
		select {
		case job := <-s.queue:
			s.mu.Lock()
			delete(s.inflight, job.SpecHash)
			s.failed++
			s.mu.Unlock()
			job.finish(StatusFailed, nil, "scheduler shut down before execution")
		default:
			return
		}
	}
}

func (s *Scheduler) worker(ctx context.Context) {
	defer s.wg.Done()
	for {
		select {
		case <-ctx.Done():
			return
		case job := <-s.queue:
			s.execute(ctx, job)
		}
	}
}

func (s *Scheduler) execute(ctx context.Context, job *Job) {
	job.setStatus(StatusRunning)
	payload, err := s.cfg.Run(ctx, job.Spec, s.lanes, job.progress)

	s.mu.Lock()
	delete(s.inflight, job.SpecHash)
	if err != nil {
		s.failed++
	} else {
		s.executed++
	}
	s.mu.Unlock()

	if err != nil {
		job.finish(StatusFailed, nil, err.Error())
		return
	}
	if s.cfg.Cache != nil {
		// A put failure only costs a future recompute; the job still
		// completes (the cache's error counter records it).
		_ = s.cfg.Cache.Put(job.SpecHash, payload)
	}
	job.finish(StatusDone, payload, "")
}

// Submit admits a spec. The returned job may be (a) an existing in-flight
// job for the same spec hash (singleflight dedup — its ID is the earlier
// submission's), (b) a new already-done job answered from the cache, or
// (c) a new queued job. ErrQueueFull reports an over-full queue.
func (s *Scheduler) Submit(spec runner.ExperimentSpec) (*Job, error) {
	n, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	hash, err := n.Hash()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	s.submitted++
	if j, ok := s.inflight[hash]; ok {
		s.dedupHits++
		s.mu.Unlock()
		return j, nil
	}
	s.mu.Unlock()

	// Cache probe outside the lock (disk I/O). A concurrent duplicate may
	// race to enqueue first; the re-check under the lock below collapses
	// the race back onto one execution.
	if s.cfg.Cache != nil {
		if payload, ok := s.cfg.Cache.Get(hash); ok {
			s.mu.Lock()
			s.cacheHits++
			job := s.newJobLocked(n, hash)
			job.cached = true
			s.mu.Unlock()
			job.finish(StatusDone, payload, "")
			return job, nil
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.inflight[hash]; ok {
		s.dedupHits++
		return j, nil
	}
	job := s.newJobLocked(n, hash)
	job.status = StatusQueued
	select {
	case s.queue <- job:
	default:
		s.rejected++
		delete(s.jobs, job.ID)
		s.order = s.order[:len(s.order)-1]
		return nil, ErrQueueFull
	}
	s.inflight[hash] = job
	return job, nil
}

// newJobLocked registers a new job; caller holds s.mu.
func (s *Scheduler) newJobLocked(spec runner.ExperimentSpec, hash string) *Job {
	s.nextID++
	job := &Job{
		ID:       fmt.Sprintf("job-%06d", s.nextID),
		SpecHash: hash,
		Spec:     spec,
		status:   StatusDone, // overwritten by callers that queue
		done:     make(chan struct{}),
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	return job
}

// Job looks a job up by ID.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every admitted job in admission order.
func (s *Scheduler) Jobs() []View {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	views := make([]View, len(jobs))
	for i, j := range jobs {
		views[i] = j.Snapshot()
	}
	return views
}

// Stats snapshots scheduler traffic.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Submitted:     s.submitted,
		DedupHits:     s.dedupHits,
		CacheHits:     s.cacheHits,
		Executed:      s.executed,
		Failed:        s.failed,
		QueueRejected: s.rejected,
		QueueDepth:    len(s.queue),
		Workers:       s.cfg.Workers,
	}
}
