// Package queue is the experiment service's admission and execution layer:
// a bounded job queue, a spec-hash singleflight, and a scheduler that
// drives each job's retry/escalation policy while delegating attempt
// placement to internal/serve/dispatch.
//
// Admission order: a submitted spec is (1) collapsed onto an identical
// queued-or-running job if one exists (singleflight — concurrent duplicate
// sweeps cost one computation), else (2) answered from the content-
// addressed result cache, else (3) journaled (when a Journal is
// configured; the write-ahead record lands before the submission is
// acknowledged, so an acked job survives a crash), else (4) admitted,
// bounded — a full queue rejects with ErrQueueFull rather than buffering
// unboundedly.
//
// Execution: each admitted job gets a policy goroutine that offers one
// attempt at a time to the dispatch board. In the single-node default the
// only backend is dispatch.Local — Workers attempts run concurrently, each
// with an equal share of the machine's parallel lanes (GOMAXPROCS /
// Workers), exactly the pre-dispatch behavior. With a shared dispatcher
// (precisiond), remote precision-worker nodes lease attempts off the same
// board; capability-aware placement keeps checkpoint resumes local and
// spreads everything else. Worker counts and placement never change
// results (DESIGN.md §5), only latency.
//
// Fault tolerance (DESIGN.md §7): each attempt runs under the job's
// deadline; failures are classified by runner.Classify — transient errors
// retry with capped exponential backoff, numerical-guard aborts re-run the
// spec one precision rung up (recording the escalation in the result),
// timeouts and permanent errors fail immediately so their lanes go to the
// next queued job. A remote lease that expires (missed heartbeats, a
// SIGKILL'd worker) re-queues the attempt under the job's original ID
// without consuming retry budget. Recover replays journaled jobs after a
// crash, resuming started ones from their latest periodic checkpoint when
// one exists.
package queue

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve/cache"
	"repro/internal/serve/dispatch"
)

// Status is a job's lifecycle state.
type Status string

// Job lifecycle: queued → running → done | failed | poisoned. Cache
// answers are born done. Poisoned jobs — specs that failed identically on
// two distinct executors — are parked, not retried, until an operator
// releases them (DELETE /v1/jobs/{id} → RetryPoisoned).
const (
	StatusQueued   Status = "queued"
	StatusRunning  Status = "running"
	StatusDone     Status = "done"
	StatusFailed   Status = "failed"
	StatusPoisoned Status = "poisoned"
)

// ErrQueueFull rejects submissions beyond the queue bound.
var ErrQueueFull = errors.New("queue: job queue is full")

// ErrUnknownJob reports a job ID the scheduler has never seen.
var ErrUnknownJob = errors.New("queue: unknown job")

// ErrNotPoisoned rejects a RetryPoisoned release of a job that is not
// parked as poisoned.
var ErrNotPoisoned = errors.New("queue: job is not poisoned")

// ErrNoTuner rejects a mode:"auto" submission on a scheduler with no
// autotune policy configured: there is nothing to resolve the mode, and
// silently running at full would hide the misconfiguration.
var ErrNoTuner = errors.New(`queue: spec mode "auto" requires the autotune service (Config.Tuner)`)

// AutoTuner is the closed-loop precision policy's hook surface
// (internal/serve/autotune.Tuner is the implementation; the scheduler sees
// only this interface so the packages stay acyclic). Resolve maps an
// accuracy-budgeted spec onto a concrete precision mode at admission;
// ObserveResult / ObserveEscalation feed execution evidence back;
// Savings prices a completed run against the shape's full-precision
// baseline for the job view.
type AutoTuner interface {
	Resolve(spec runner.ExperimentSpec) (runner.ExperimentSpec, error)
	ObserveResult(spec runner.ExperimentSpec, res *runner.Result)
	ObserveEscalation(spec runner.ExperimentSpec, esc runner.Escalation)
	Savings(spec runner.ExperimentSpec, res *runner.Result) (joules, dollars float64, ok bool)
}

// Job tracks one admitted experiment. Progress fields are atomics so the
// NDJSON streamer can poll without locking the scheduler.
type Job struct {
	// ID is the scheduler-assigned identity ("job-000001"); SpecHash is
	// the content address shared by every submission of this spec — and
	// the cache key even when the job escalates to a higher precision.
	ID       string
	SpecHash string
	Spec     runner.ExperimentSpec // normalized, as submitted

	step, total atomic.Int64
	attempts    atomic.Int64

	mu          sync.Mutex
	status      Status
	cached      bool
	recovered   bool
	tryResume   bool
	everPlaced  bool
	backend     string
	flow        string
	timeout     time.Duration
	escalations []runner.Escalation
	result      []byte
	errMsg      string
	// Autotune provenance: tunedMode is the concrete mode Resolve picked
	// for a mode:"auto" submission (with the requested budgets echoed);
	// savedJoules/savedDollars price the completed run against the shape's
	// full-precision baseline.
	tunedMode      string
	maxMassError   float64
	maxLinecutLinf float64
	savedJoules    float64
	savedDollars   float64
	// done closes at each terminal state; doneClosed guards the close so
	// finish stays idempotent. RetryPoisoned swaps in a fresh channel when
	// it revives a parked job, so Done() reads under the lock.
	done       chan struct{}
	doneClosed bool
	// poisonSeen tracks, per failure kind, the distinct executors
	// (worker ID or backend) that failed this spec with it. Two distinct
	// executors failing the same way convict the spec, not the box.
	poisonSeen map[string]map[string]struct{}

	// trace is the job's span timeline, recorded from admission to the
	// terminal state (obs.Trace is internally synchronized). queueSpan and
	// enqueuedAt are written under s.mu before the policy goroutine starts.
	trace      *obs.Trace
	queueSpan  obs.Span
	enqueuedAt time.Time
}

// Trace snapshots the job's span timeline as recorded so far; spans still
// open (a running attempt) are frozen at the snapshot instant.
func (j *Job) Trace() obs.TraceData { return j.trace.Snapshot() }

// View is an immutable snapshot of a job for handlers and clients.
type View struct {
	ID          string                `json:"id"`
	SpecHash    string                `json:"spec_hash"`
	Spec        runner.ExperimentSpec `json:"spec"`
	Status      Status                `json:"status"`
	Cached      bool                  `json:"cached"`
	Recovered   bool                  `json:"recovered,omitempty"`
	Step        int64                 `json:"step"`
	Total       int64                 `json:"total"`
	Attempts    int64                 `json:"attempts,omitempty"`
	Escalations []runner.Escalation   `json:"escalations,omitempty"`
	// Backend reports where the latest attempt was placed: "local", or
	// "fleet/worker-NNN" for a remote lease.
	Backend string `json:"backend,omitempty"`
	// Flow labels bulk-admission traffic ("" for interactive submissions;
	// "campaign/<id>" for server-side campaign expansion).
	Flow  string `json:"flow,omitempty"`
	Error string `json:"error,omitempty"`
	// TunedMode is the concrete precision mode the autotuner resolved a
	// mode:"auto" submission to; MaxMassError/MaxLinecutLinf echo the
	// requested accuracy budgets (the resolved Spec has them stripped so
	// its hash matches a plain submission). All empty for plain jobs.
	TunedMode      string  `json:"tuned_mode,omitempty"`
	MaxMassError   float64 `json:"max_mass_error,omitempty"`
	MaxLinecutLinf float64 `json:"max_linecut_linf,omitempty"`
	// SavedJoules/SavedDollars are the modeled energy and cost this run
	// saved against the shape's full-precision baseline (0 until the job
	// completes below full with a baseline on record).
	SavedJoules  float64 `json:"saved_joules,omitempty"`
	SavedDollars float64 `json:"saved_dollars,omitempty"`
}

// Snapshot captures the job's current state.
func (j *Job) Snapshot() View {
	j.mu.Lock()
	defer j.mu.Unlock()
	return View{
		ID:             j.ID,
		SpecHash:       j.SpecHash,
		Spec:           j.Spec,
		Status:         j.status,
		Cached:         j.cached,
		Recovered:      j.recovered,
		Step:           j.step.Load(),
		Total:          j.total.Load(),
		Attempts:       j.attempts.Load(),
		Escalations:    append([]runner.Escalation(nil), j.escalations...),
		Backend:        j.backend,
		Flow:           j.flow,
		Error:          j.errMsg,
		TunedMode:      j.tunedMode,
		MaxMassError:   j.maxMassError,
		MaxLinecutLinf: j.maxLinecutLinf,
		SavedJoules:    j.savedJoules,
		SavedDollars:   j.savedDollars,
	}
}

// Done is closed when the job reaches a terminal state. A poisoned job
// revived by RetryPoisoned gets a fresh channel; callers that need the
// next terminal state re-call Done.
func (j *Job) Done() <-chan struct{} {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.done
}

// Result returns the serialized result payload once the job is done.
// The bytes are the exact cache payload: byte-identical for every
// submission of the same spec.
func (j *Job) Result() ([]byte, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.status == StatusDone
}

func (j *Job) progress(step, totalSteps int) {
	j.step.Store(int64(step))
	j.total.Store(int64(totalSteps))
}

func (j *Job) addEscalation(e runner.Escalation) {
	j.mu.Lock()
	j.escalations = append(j.escalations, e)
	j.mu.Unlock()
}

func (j *Job) escalationsCopy() []runner.Escalation {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.escalations) == 0 {
		return nil
	}
	return append([]runner.Escalation(nil), j.escalations...)
}

func (j *Job) finish(st Status, result []byte, errMsg string) {
	j.mu.Lock()
	j.status = st
	j.result = result
	j.errMsg = errMsg
	ch, closed := j.done, j.doneClosed
	j.doneClosed = true
	j.mu.Unlock()
	if !closed {
		close(ch)
	}
}

// notePoisonExecutor records one failed (kind, executor) pair and returns
// how many distinct executors have failed this job with that kind.
func (j *Job) notePoisonExecutor(kind, executor string) int {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.poisonSeen == nil {
		j.poisonSeen = make(map[string]map[string]struct{})
	}
	set := j.poisonSeen[kind]
	if set == nil {
		set = make(map[string]struct{})
		j.poisonSeen[kind] = set
	}
	set[executor] = struct{}{}
	return len(set)
}

// RunRequest carries one execution attempt's inputs to a RunFunc.
type RunRequest struct {
	Spec     runner.ExperimentSpec // normalized; Mode may be escalated
	Lanes    int
	Progress func(step, total int)
	// Resume, when non-nil, restores the solver from a checkpoint instead
	// of the initial condition (crash recovery of a started job).
	Resume io.Reader
	// CheckpointEvery/CheckpointSink request periodic in-flight
	// checkpoints so a crashed daemon can resume this job mid-run.
	CheckpointEvery int
	CheckpointSink  func(step int) (io.WriteCloser, error)
}

// RunFunc executes one attempt. Swapped out in tests.
type RunFunc func(ctx context.Context, req RunRequest) (*runner.Result, error)

// DefaultRun executes the attempt through the runner.
func DefaultRun(ctx context.Context, req RunRequest) (*runner.Result, error) {
	return runner.Run(ctx, req.Spec, runner.RunOpts{
		Workers:         req.Lanes,
		Progress:        req.Progress,
		Resume:          req.Resume,
		CheckpointEvery: req.CheckpointEvery,
		CheckpointSink:  req.CheckpointSink,
	})
}

// Config sizes a Scheduler.
type Config struct {
	// Workers is the number of jobs executing concurrently on the local
	// backend (default 2; ignored when DisableLocal is set).
	Workers int
	// QueueDepth bounds the pending-job queue (default 64).
	QueueDepth int
	// Lanes is the machine's total parallel-lane budget divided among the
	// workers (default GOMAXPROCS).
	Lanes int
	// Cache, when non-nil, answers repeat submissions and stores results.
	Cache *cache.Cache
	// Run executes one attempt (default DefaultRun).
	Run RunFunc
	// Journal, when non-nil, write-ahead-logs every admission and state
	// change so Recover can replay accepted jobs after a crash.
	Journal *Journal
	// CheckpointDir, with CheckpointEvery > 0, makes running jobs write a
	// periodic checkpoint (<dir>/<jobID>.ckpt, atomically replaced) that
	// recovery resumes from. Off by default: periodic checkpoints count
	// toward the result's store counters, so they are an explicit opt-in
	// (DESIGN.md §7).
	CheckpointDir   string
	CheckpointEvery int
	// JobTimeout is the per-attempt deadline for jobs submitted without
	// their own (0 = none). A timed-out job fails immediately — its lanes
	// go to the next queued job, never a rerun of the same budget.
	JobTimeout time.Duration
	// AbandonGrace is how long a cancelled attempt may keep running before
	// the local backend abandons it and moves on (default 2s).
	AbandonGrace time.Duration
	// ReserveInteractive holds this many queue slots exclusively for
	// interactive submissions (Flow == ""): flow-labelled bulk traffic — a
	// campaign expanding thousands of specs — is bounced with ErrQueueFull
	// once the queue is within the reserve, so a single POST /v1/jobs
	// always finds room no matter how large the campaign behind it is
	// (0 = no reserve; the pre-campaign behavior).
	ReserveInteractive int
	// Retry bounds transient-failure retries (see RetryPolicy defaults).
	Retry RetryPolicy
	// Dispatch, when non-nil, is a shared dispatcher the scheduler places
	// attempts on — precisiond wires one dispatcher carrying both the
	// local backend and the remote-fleet coordinator. Nil builds a private
	// dispatcher with just the local backend (the single-node default).
	Dispatch *dispatch.Dispatcher
	// DisableLocal skips registering the local backend; every attempt must
	// then be leased by a remote worker (precisiond -workers 0). Requires
	// a Dispatch carrying a fleet coordinator.
	DisableLocal bool
	// Obs, when non-nil, registers the scheduler's instruments (job
	// counters, queue-wait/run-duration histograms, journal fsync latency,
	// worker/lane gauges, the queue-depth gauge) into the registry. Job
	// traces are recorded regardless — they are per-job, not per-registry.
	Obs *obs.Registry
	// Log, when non-nil, receives job-correlated structured log records.
	Log *obs.Logger
	// Energy, when non-nil, models a completed run's energy/cost when the
	// backend did not already account for it (res.Energy == nil — i.e.
	// local-backend runs; the fleet coordinator prices remote uploads with
	// the executing worker's registered profile before the result reaches
	// the scheduler). Receives the placement so it can pick a profile.
	Energy func(backend, worker string, res *runner.Result) *runner.Energy
	// OnComplete, when non-nil, observes every successfully finished job
	// after its trace is frozen into the result — precisiond's
	// -trace-export hook. Called synchronously on the job's goroutine;
	// keep it cheap or hand off.
	OnComplete func(job *Job, res *runner.Result)
	// Tuner, when non-nil, is the closed-loop precision policy: mode
	// "auto" submissions resolve through it at admission, and every
	// executed result / escalation feeds its decision table. Nil rejects
	// auto submissions with ErrNoTuner.
	Tuner AutoTuner
}

// SubmitOptions carries per-submission execution knobs.
type SubmitOptions struct {
	// Timeout overrides Config.JobTimeout for this job (0 = inherit).
	Timeout time.Duration
	// Flow labels the admission's traffic class ("" = interactive). A
	// non-empty flow is subject to Config.ReserveInteractive: bulk traffic
	// never occupies the queue slots reserved for interactive submissions.
	Flow string
}

// Stats counts scheduler traffic for /v1/cache/stats.
type Stats struct {
	Submitted     uint64 `json:"submitted"`
	DedupHits     uint64 `json:"dedup_hits"`
	CacheHits     uint64 `json:"cache_hits"`
	Executed      uint64 `json:"executed"`
	Failed        uint64 `json:"failed"`
	QueueRejected uint64 `json:"queue_rejected"`
	Retried       uint64 `json:"retried"`
	Escalated     uint64 `json:"escalated"`
	TimedOut      uint64 `json:"timed_out"`
	Abandoned     uint64 `json:"abandoned"`
	Recovered     uint64 `json:"recovered"`
	// Requeued counts attempts whose remote lease expired and were put
	// back on the board under the job's original ID.
	Requeued uint64 `json:"requeued"`
	// Poisoned counts jobs parked after failing identically on two
	// distinct executors.
	Poisoned   uint64 `json:"poisoned"`
	QueueDepth int    `json:"queue_depth"`
	Workers    int    `json:"workers"`
}

// Scheduler admits, deduplicates and executes jobs.
type Scheduler struct {
	cfg   Config
	lanes int
	disp  *dispatch.Dispatcher

	// started gates policy goroutines until Start supplies the lifecycle
	// context.
	started   chan struct{}
	startOnce sync.Once
	runCtx    context.Context

	mu       sync.Mutex
	jobs     map[string]*Job // by job ID
	order    []string        // job IDs in admission order
	inflight map[string]*Job // spec hash → queued-or-running job
	nextID   uint64
	waiting  int // admitted jobs not yet placed on a backend (the queue depth)

	submitted, dedupHits, cacheHits uint64
	executed, failed, rejected      uint64
	retried, escalated, timedOut    uint64
	abandoned, recovered, requeued  uint64
	poisoned, unpoisoned            uint64

	// obs mirrors the counters above into the metrics registry (a zero-value
	// schedObs when none is configured — every handle no-ops). log is the
	// structured logger (nil-safe).
	obs *schedObs
	log *obs.Logger

	wg sync.WaitGroup
}

// New builds a scheduler; call Recover (if journaled) then Start.
func New(cfg Config) *Scheduler {
	if cfg.DisableLocal {
		cfg.Workers = 0
	} else if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Lanes <= 0 {
		cfg.Lanes = runtime.GOMAXPROCS(0)
	}
	if cfg.Run == nil {
		cfg.Run = DefaultRun
	}
	if cfg.AbandonGrace <= 0 {
		cfg.AbandonGrace = 2 * time.Second
	}
	cfg.Retry = cfg.Retry.withDefaults()
	if cfg.CheckpointDir != "" {
		_ = os.MkdirAll(cfg.CheckpointDir, 0o755)
	}
	lanes := cfg.Lanes
	if cfg.Workers > 0 {
		lanes = cfg.Lanes / cfg.Workers
	}
	if lanes < 1 {
		lanes = 1
	}
	s := &Scheduler{
		cfg:      cfg,
		lanes:    lanes,
		started:  make(chan struct{}),
		jobs:     make(map[string]*Job),
		inflight: make(map[string]*Job),
		obs:      &schedObs{},
		log:      cfg.Log,
	}
	if cfg.Obs != nil {
		s.obs = newSchedObs(cfg.Obs, s)
		if cfg.Journal != nil {
			cfg.Journal.setFsyncHist(s.obs.fsync)
		}
	}
	s.disp = cfg.Dispatch
	if s.disp == nil {
		s.disp = dispatch.New(dispatch.Options{Obs: cfg.Obs, Log: cfg.Log})
	}
	if !cfg.DisableLocal {
		s.disp.Register(dispatch.NewLocal(dispatch.LocalConfig{
			Slots: cfg.Workers,
			Grace: cfg.AbandonGrace,
			Exec: func(ctx context.Context, a *dispatch.Attempt) (*runner.Result, error) {
				// Coordinator-spawned verification attempts carry no Run
				// closure; execute them like any other attempt.
				return s.cfg.Run(ctx, RunRequest{Spec: a.Spec, Lanes: s.lanes, Progress: a.Progress})
			},
			OnBusy: func(delta int) {
				s.obs.workersBusy.Add(int64(delta))
				s.obs.lanesBusy.Add(int64(delta) * int64(s.lanes))
			},
			Log: cfg.Log,
		}))
	}
	return s
}

// Dispatcher exposes the board the scheduler places attempts on (the one
// from Config.Dispatch, or the private single-node dispatcher).
func (s *Scheduler) Dispatcher() *dispatch.Dispatcher { return s.disp }

// Start launches the dispatch backends and releases the policy goroutines;
// everything exits when ctx is cancelled (cancelling any running solver
// between steps). Wait blocks until they have drained.
func (s *Scheduler) Start(ctx context.Context) {
	s.startOnce.Do(func() {
		s.runCtx = ctx
		close(s.started)
		s.disp.Start(ctx)
	})
}

// Wait blocks until every job's policy goroutine and every dispatch
// backend goroutine has exited (after ctx cancellation). Jobs that never
// ran get no terminal journal record — an acked job that never ran is owed
// to the journal, and the next boot's Recover replays it.
func (s *Scheduler) Wait() {
	s.wg.Wait()
	s.disp.Wait()
}

// JournalLastError returns the journal's last append failure ever observed
// ("" when un-journaled or never-failed) — /healthz forensics.
func (s *Scheduler) JournalLastError() string {
	if s.cfg.Journal == nil {
		return ""
	}
	return s.cfg.Journal.LastError()
}

// Health reports nil when the scheduler's durability machinery is sound;
// a journal whose last append could not fsync degrades the daemon.
func (s *Scheduler) Health() error {
	if s.cfg.Journal != nil {
		if err := s.cfg.Journal.SyncErr(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	return nil
}

// runJob is one job's policy goroutine: it waits for Start, then drives the
// job to a terminal state.
func (s *Scheduler) runJob(job *Job) {
	defer s.wg.Done()
	<-s.started
	s.execute(s.runCtx, job)
}

// jobPlaced records that a backend took one of the job's attempts: the
// queue_wait span closes on the first-ever placement, the queue-depth
// gauge drops, and the view shows where the attempt landed.
func (s *Scheduler) jobPlaced(job *Job, att obs.Span, backend, worker string, wait time.Duration) {
	label := backend
	if worker != "" {
		label = backend + "/" + worker
		// Remote placements record the lease wait retroactively (local
		// placements add no span — the local timeline is pinned by tests
		// and dashboards).
		att.PrefixChild("lease_wait", wait, obs.Str("worker", worker))
		att.Annotate(obs.Str("backend", backend), obs.Str("worker", worker))
	} else {
		att.Annotate(obs.Str("backend", backend))
	}
	job.mu.Lock()
	first := !job.everPlaced
	job.everPlaced = true
	if job.status == StatusQueued {
		job.status = StatusRunning
	}
	job.backend = label
	job.mu.Unlock()
	if first {
		if !job.enqueuedAt.IsZero() {
			s.obs.queueWait.ObserveSince(job.enqueuedAt)
		}
		s.decWaiting()
	}
}

// releaseNeverPlaced balances the waiting counter for a job that reaches a
// terminal state without any backend ever taking it (shutdown, recovery
// overflow). Idempotent with jobPlaced via everPlaced.
func (s *Scheduler) releaseNeverPlaced(job *Job) {
	job.mu.Lock()
	first := !job.everPlaced
	job.everPlaced = true
	job.mu.Unlock()
	if first {
		job.queueSpan.End()
		s.decWaiting()
	}
}

func (s *Scheduler) decWaiting() {
	s.mu.Lock()
	s.waiting--
	w := s.waiting
	s.mu.Unlock()
	s.obs.queueDepth.Set(int64(w))
}

// execute drives one job to a terminal state: offer an attempt to the
// dispatch board, classify the outcome, then retry / escalate / requeue /
// fail per the policy in the package comment. Every phase lands in the
// job's trace: the queue_wait span closes at first placement, each attempt
// gets a span (with its backend and outcome and, on success, the solver's
// phase aggregates), backoffs, escalations and lease-expiry requeues are
// recorded as they happen.
func (s *Scheduler) execute(ctx context.Context, job *Job) {
	jl := s.log.With(obs.Str("job", job.ID))

	spec := job.Spec
	if esc := job.escalationsCopy(); len(esc) > 0 {
		spec.Mode = esc[len(esc)-1].ToMode // recovered job resumes at its rung
	}
	var resume []byte
	job.mu.Lock()
	if job.tryResume {
		resume = s.loadCheckpoint(job.ID)
	}
	timeout := job.timeout
	job.mu.Unlock()
	if timeout == 0 {
		timeout = s.cfg.JobTimeout
	}

	attempt := 0
	for {
		if ctx.Err() != nil {
			s.shutdownFinish(job)
			return
		}
		if s.cfg.Journal != nil {
			// A failed Started append is tolerated: it only widens the
			// resume window (SyncErr degrades /healthz regardless).
			_ = s.cfg.Journal.Started(job.ID, spec.Mode)
		}
		req := RunRequest{
			Spec:            spec,
			Lanes:           s.lanes,
			Progress:        job.progress,
			CheckpointEvery: s.cfg.CheckpointEvery,
			CheckpointSink:  s.checkpointSink(job.ID),
		}
		usedResume := resume != nil
		if usedResume {
			req.Resume = bytes.NewReader(resume)
		}
		n := job.attempts.Add(1)
		attAttrs := []obs.Attr{obs.Str("mode", spec.Mode), intAttr("n", n)}
		if usedResume {
			attAttrs = append(attAttrs, obs.Str("resume", "checkpoint"))
		}
		// The queue_wait span closes when the first attempt is offered to the
		// board (idempotent on retries); any further wait — a busy local
		// slot, no eligible remote worker — lands inside the attempt span
		// (as a lease_wait child for remote placements). The queue-wait
		// histogram and depth gauge track actual placement instead.
		job.queueSpan.End()
		att := job.trace.Root().Child("attempt", attAttrs...)
		jl.Debug("attempt start", obs.Str("mode", spec.Mode), intAttr("n", n))
		started := time.Now()
		hedgeEvents, hedgeTrace := hedgeRecorders(job)
		a := &dispatch.Attempt{
			JobID:     job.ID,
			Spec:      spec,
			N:         n,
			LocalOnly: usedResume, // a checkpoint resume reads local state
			Run:       func(rc context.Context) (*runner.Result, error) { return s.cfg.Run(rc, req) },
			Progress:  job.progress,
			OnPlaced: func(backend, worker string, wait time.Duration) {
				s.jobPlaced(job, att, backend, worker, wait)
			},
			OnHedge:            hedgeEvents,
			OnWorkerTrace:      workerTraceRecorder(att),
			OnHedgeWorkerTrace: hedgeTrace,
		}
		out := s.runAttempt(ctx, a, timeout)
		s.obs.runDur.With(string(spec.App), spec.Mode).ObserveSince(started)
		if out.Abandoned {
			s.mu.Lock()
			s.abandoned++
			s.mu.Unlock()
			s.obs.abandoned.Inc()
		}
		res, err := out.Res, out.Err
		if err == nil {
			for _, p := range res.Phases {
				att.AggregateChild("phase:"+p.Name, time.Duration(p.Seconds*float64(time.Second)))
			}
			// Energy accounting: remote uploads arrive already priced (the
			// coordinator applies the executing worker's registered profile);
			// the configured fallback covers local-backend runs. Either way
			// the figures derive from the deterministic counters, so they
			// ride as span attributes and metrics without perturbing the
			// result hash.
			if res.Energy == nil && s.cfg.Energy != nil {
				res.Energy = s.cfg.Energy(out.Backend, out.Worker, res)
			}
			if e := res.Energy; e != nil {
				att.Annotate(obs.Str("arch", e.Arch),
					obs.Str("joules", formatEnergy(e.Joules)),
					obs.Str("cost_dollars", formatEnergy(e.CostDollars)))
				s.obs.observeEnergy(string(spec.App), spec.Mode, e)
			}
			att.Annotate(obs.Str("outcome", "ok"))
			att.End()
			res.Escalations = job.escalationsCopy()
			res.Trace = finishTrace(job, "done")
			s.obs.observeResultCounters(res.Counters)
			payload, merr := json.Marshal(res)
			if merr != nil {
				err = &runner.Error{Kind: runner.KindPermanent, Op: "marshal result", Err: merr}
			} else {
				jl.Info("job done",
					obs.Str("mode", spec.Mode), intAttr("attempts", n),
					obs.Str("backend", out.Backend+backendWorkerSuffix(out.Worker)),
					obs.Str("wall", time.Since(job.enqueuedAt).Round(time.Millisecond).String()))
				if s.cfg.Tuner != nil {
					// Every executed result is fleet evidence: full runs
					// refresh the shape's fidelity reference and savings
					// baseline, demoted runs fold their measured fidelity in
					// and may warm the next demotion probe.
					s.cfg.Tuner.ObserveResult(spec, res)
					if sj, sd, ok := s.cfg.Tuner.Savings(spec, res); ok {
						job.mu.Lock()
						job.savedJoules, job.savedDollars = sj, sd
						job.mu.Unlock()
					}
				}
				s.complete(job, payload)
				if s.cfg.OnComplete != nil {
					s.cfg.OnComplete(job, res)
				}
				return
			}
		}
		if ctx.Err() != nil {
			att.Annotate(obs.Str("outcome", "shutdown"))
			att.End()
			s.shutdownFinish(job)
			return
		}
		if errors.Is(err, dispatch.ErrLeaseExpired) {
			// A placement failure, not a run failure: the worker died or
			// went silent mid-lease. Re-offer the attempt under the job's
			// original ID without consuming retry budget — the journal's
			// admission record still owns the job, so a crash here replays
			// it exactly as before.
			att.Annotate(obs.Str("outcome", "lease_expired"), obs.Str("error", err.Error()))
			att.End()
			s.mu.Lock()
			s.requeued++
			s.mu.Unlock()
			s.obs.requeuedCtr.Inc()
			job.trace.Root().Event("requeued", obs.Str("cause", err.Error()))
			jl.Warn("lease expired; requeueing attempt", obs.Str("error", err.Error()))
			continue
		}
		kind := runner.Classify(err)
		att.Annotate(obs.Str("outcome", kind.String()), obs.Str("error", err.Error()))
		att.End()
		if usedResume {
			// A checkpoint that fails to resume (corrupt, stale rung) is
			// discarded and the job retried from the initial condition; this
			// happens at most once and does not consume the retry budget.
			jl.Warn("checkpoint resume failed; restarting from the initial condition",
				obs.Str("error", err.Error()))
			job.trace.Root().Event("resume_discarded", obs.Str("error", err.Error()))
			resume = nil
			s.removeCheckpoint(job.ID)
			continue
		}
		switch kind {
		case runner.KindNumerical:
			next, ok := runner.NextPrecision(spec.Mode)
			if !ok {
				s.fail(job, fmt.Errorf("numerical failure at top precision rung: %w", err))
				return
			}
			failedHash, herr := spec.Hash()
			if herr != nil {
				failedHash = job.SpecHash
			}
			esc := runner.Escalation{
				FromMode:     spec.Mode,
				ToMode:       next,
				FromSpecHash: failedHash,
				Reason:       err.Error(),
			}
			job.addEscalation(esc)
			s.mu.Lock()
			s.escalated++
			s.mu.Unlock()
			s.obs.escalated.Inc()
			job.trace.Root().Event("escalation",
				obs.Str("from", esc.FromMode), obs.Str("to", esc.ToMode),
				obs.Str("reason", esc.Reason))
			jl.Warn("numerical failure; escalating precision",
				obs.Str("from", esc.FromMode), obs.Str("to", esc.ToMode),
				obs.Str("reason", esc.Reason))
			if s.cfg.Journal != nil {
				_ = s.cfg.Journal.Escalated(job.ID, esc)
			}
			if s.cfg.Tuner != nil {
				// Feed the failure into the autotune table while spec still
				// names the failing mode: the floor rises above it and any
				// committed demotion at or below it reverts.
				s.cfg.Tuner.ObserveEscalation(spec, esc)
			}
			spec.Mode = next
			attempt = 0 // fresh retry budget at the new rung
			s.removeCheckpoint(job.ID)
			continue
		case runner.KindTransient:
			// A "transient" failure that reproduces with the same kind on two
			// distinct executors is not the environment's fault — it is the
			// job. Park it as poisoned instead of burning the rest of the
			// retry budget (and any future fleet capacity) on it.
			exec := out.Worker
			if exec == "" {
				exec = out.Backend
			}
			if exec == "" {
				exec = "local"
			}
			if job.notePoisonExecutor(kind.String(), exec) >= 2 {
				s.poison(job, err)
				return
			}
			attempt++
			if attempt >= s.cfg.Retry.MaxAttempts {
				s.fail(job, fmt.Errorf("gave up after %d attempts: %w", attempt, err))
				return
			}
			s.mu.Lock()
			s.retried++
			s.mu.Unlock()
			s.obs.retried.Inc()
			backoff := s.cfg.Retry.backoff(attempt)
			jl.Warn("transient failure; retrying",
				intAttr("retry", int64(attempt)), obs.Str("backoff", backoff.String()),
				obs.Str("error", err.Error()))
			b := job.trace.Root().Child("backoff", intAttr("retry", int64(attempt)))
			ok := sleepCtx(ctx, backoff)
			b.End()
			if !ok {
				s.shutdownFinish(job)
				return
			}
			continue
		case runner.KindTimeout:
			s.mu.Lock()
			s.timedOut++
			s.mu.Unlock()
			s.obs.timedOut.Inc()
			s.fail(job, err)
			return
		default: // KindPermanent
			s.fail(job, err)
			return
		}
	}
}

// workerTraceRecorder grafts a remote executor's shipped span timeline
// under the given attempt span. Snapshots arrive from coordinator HTTP
// handler goroutines — partials on heartbeats, the final one on complete —
// and each replaces the previous (SetRemote takes the trace lock, so no
// extra synchronisation is needed). The final snapshot carries the upload
// payload size, recorded as an event so the cross-node timeline shows when
// the result landed back on the coordinator and how big it was.
func workerTraceRecorder(att obs.Span) func(worker string, td obs.TraceData, uploadBytes int) {
	return func(worker string, td obs.TraceData, uploadBytes int) {
		att.SetRemote(td)
		if uploadBytes > 0 {
			att.Event("upload",
				obs.Str("worker", worker), intAttr("bytes", int64(uploadBytes)))
		}
	}
}

// hedgeRecorders renders straggler-defense activity into the job trace:
// the duplicate attempt becomes a "hedge_attempt" span, a sibling of the
// primary "attempt" span, annotated with its outcome; verification
// results land as events on the root; the duplicate executor's own span
// timeline (routed here via Attempt.OnHedgeWorkerTrace) grafts under the
// hedge span so hedged attempts render as full sibling subtrees. Events
// arrive from coordinator goroutines, possibly after the job completed
// (the loser's upload lands late), so the recorders share a lock.
func hedgeRecorders(job *Job) (func(event, worker string), func(worker string, td obs.TraceData, uploadBytes int)) {
	var mu sync.Mutex
	var span obs.Span
	var created, open bool
	events := func(event, worker string) {
		mu.Lock()
		defer mu.Unlock()
		switch event {
		case "fired":
			span = job.trace.Root().Child("hedge_attempt", obs.Str("primary", worker))
			created, open = true, true
		case "won", "lost", "skipped":
			if open {
				span.Annotate(obs.Str("outcome", event), obs.Str("worker", worker))
				span.End()
				open = false
			}
		case "verified", "mismatch":
			job.trace.Root().Event("hedge_"+event, obs.Str("worker", worker))
		}
	}
	trace := func(worker string, td obs.TraceData, uploadBytes int) {
		mu.Lock()
		defer mu.Unlock()
		if !created {
			return // no hedge span to graft under (never fired)
		}
		span.SetRemote(td)
		if uploadBytes > 0 {
			span.Event("upload",
				obs.Str("worker", worker), intAttr("bytes", int64(uploadBytes)))
		}
	}
	return events, trace
}

// formatEnergy renders joules/dollars compactly for span attributes.
func formatEnergy(v float64) string {
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func backendWorkerSuffix(worker string) string {
	if worker == "" {
		return ""
	}
	return "/" + worker
}

// finishTrace closes the job's root span with a terminal status and returns
// the frozen timeline for embedding in the result payload.
func finishTrace(job *Job, status string) *obs.TraceData {
	root := job.trace.Root()
	root.Annotate(obs.Str("status", status))
	root.End()
	td := job.trace.Snapshot()
	return &td
}

// runAttempt offers one attempt to the dispatch board under the job
// deadline and blocks for its outcome. Abandonment (a local run ignoring
// cancellation past the grace) and lease expiry (a remote worker going
// silent) both surface as error outcomes for the policy loop to classify.
func (s *Scheduler) runAttempt(ctx context.Context, a *dispatch.Attempt, timeout time.Duration) dispatch.Outcome {
	runCtx := ctx
	var cancel context.CancelFunc
	if timeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, timeout)
	} else {
		runCtx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	return s.disp.Do(runCtx, a)
}

// complete finishes a job successfully: cache the payload under the
// originally submitted spec hash (Put precedes the journal's done record,
// so a crash between the two is healed by Recover's cache probe), journal
// completion, drop the periodic checkpoint.
func (s *Scheduler) complete(job *Job, payload []byte) {
	if s.cfg.Cache != nil {
		// A put failure only costs a future recompute; the job still
		// completes (the cache's error counter records it).
		_ = s.cfg.Cache.Put(job.SpecHash, payload)
	}
	if s.cfg.Journal != nil {
		_ = s.cfg.Journal.Done(job.ID)
	}
	s.removeCheckpoint(job.ID)
	s.mu.Lock()
	delete(s.inflight, job.SpecHash)
	s.executed++
	s.mu.Unlock()
	s.obs.executed.Inc()
	job.finish(StatusDone, payload, "")
}

// fail finishes a job terminally: the failure is journaled so it is not
// replayed on the next boot.
func (s *Scheduler) fail(job *Job, err error) {
	if s.cfg.Journal != nil {
		_ = s.cfg.Journal.Failed(job.ID, err.Error())
	}
	s.removeCheckpoint(job.ID)
	s.releaseNeverPlaced(job)
	s.mu.Lock()
	delete(s.inflight, job.SpecHash)
	s.failed++
	s.mu.Unlock()
	s.obs.failed.Inc()
	job.trace.Root().Annotate(obs.Str("status", "failed"), obs.Str("error", err.Error()))
	job.trace.Root().End()
	s.log.Error("job failed", obs.Str("job", job.ID), obs.Str("error", err.Error()))
	job.finish(StatusFailed, nil, err.Error())
}

// poison parks a job whose transient failure reproduced with the same
// runner.Error kind on two distinct executors: different machines failing
// identically convict the spec, not the environment. The job is journaled
// poisoned (replay-safe: a restart re-parks it without re-running), keeps
// its inflight-map entry so duplicate submissions dedup onto the parked
// record instead of re-running a known-bad spec, and waits for an operator
// release (DELETE /v1/jobs/{id} → RetryPoisoned). Unlike fail, the trace
// root stays open: a revived job continues the same timeline.
func (s *Scheduler) poison(job *Job, err error) {
	if s.cfg.Journal != nil {
		_ = s.cfg.Journal.Poisoned(job.ID, err.Error())
	}
	s.removeCheckpoint(job.ID)
	s.releaseNeverPlaced(job)
	s.mu.Lock()
	s.poisoned++
	s.mu.Unlock()
	s.obs.poisonedEvt.Inc()
	s.obs.poisonedTotal.Inc()
	job.trace.Root().Event("poisoned", obs.Str("error", err.Error()))
	job.trace.Root().Annotate(obs.Str("status", "poisoned"))
	s.log.Error("job poisoned; parked pending operator release",
		obs.Str("job", job.ID), obs.Str("error", err.Error()))
	job.finish(StatusPoisoned, nil, err.Error())
}

// RetryPoisoned releases a poisoned job back onto the queue with a fresh
// retry budget and a clean executor-failure ledger. The release is
// journaled before the job becomes runnable so a crash between the two
// re-parks rather than silently re-runs. ErrUnknownJob / ErrNotPoisoned
// report a bad target; a journal append failure leaves the job parked.
func (s *Scheduler) RetryPoisoned(id string) error {
	s.mu.Lock()
	job, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return ErrUnknownJob
	}

	// Claim the job under its lock so two concurrent releases cannot both
	// revive it; revert the claim if the journal refuses the release.
	job.mu.Lock()
	if job.status != StatusPoisoned {
		job.mu.Unlock()
		return ErrNotPoisoned
	}
	job.status = StatusQueued
	job.mu.Unlock()
	if s.cfg.Journal != nil {
		if jerr := s.cfg.Journal.Unpoisoned(id); jerr != nil {
			job.mu.Lock()
			job.status = StatusPoisoned
			job.mu.Unlock()
			return fmt.Errorf("queue: journal release: %w", jerr)
		}
	}

	job.mu.Lock()
	job.done = make(chan struct{})
	job.doneClosed = false
	job.errMsg = ""
	job.result = nil
	job.poisonSeen = nil
	job.everPlaced = false
	job.tryResume = false
	job.mu.Unlock()

	job.trace.Root().Event("unpoisoned")
	job.queueSpan = job.trace.Root().Child("queue_wait")
	job.enqueuedAt = time.Now()

	s.mu.Lock()
	s.unpoisoned++
	s.inflight[job.SpecHash] = job
	s.waiting++
	s.obs.queueDepth.Set(int64(s.waiting))
	s.wg.Add(1)
	s.mu.Unlock()
	s.obs.unpoisonedEvt.Inc()
	go s.runJob(job)
	s.log.Info("poisoned job released for retry", obs.Str("job", id))
	return nil
}

// shutdownFinish fails a job locally on scheduler shutdown WITHOUT a
// terminal journal record: the job is still owed to the journal and the
// next boot's Recover replays it. Its checkpoint is kept for the resume.
func (s *Scheduler) shutdownFinish(job *Job) {
	s.releaseNeverPlaced(job)
	s.mu.Lock()
	delete(s.inflight, job.SpecHash)
	s.failed++
	s.mu.Unlock()
	s.obs.failed.Inc()
	job.trace.Root().Annotate(obs.Str("status", "shutdown"))
	job.trace.Root().End()
	job.finish(StatusFailed, nil, "scheduler shut down before completion; the job will be recovered from the journal")
}

// Submit admits a spec with default options; see SubmitOpts.
func (s *Scheduler) Submit(spec runner.ExperimentSpec) (*Job, error) {
	return s.SubmitOpts(spec, SubmitOptions{})
}

// SubmitOpts admits a spec. The returned job may be (a) an existing
// in-flight job for the same spec hash (singleflight dedup — its ID is the
// earlier submission's), (b) a new already-done job answered from the
// cache, or (c) a new admitted job, journaled before this call returns.
// ErrQueueFull reports an over-full queue; a journal append failure
// rejects the submission (never acked ⇒ never owed).
//
// Mode "auto" resolves through Config.Tuner to a concrete mode before
// anything else: the dedup map, the cache and the journal only ever see
// the resolved concrete spec, whose hash is identical to a plain
// submission at that mode — so an auto submission collapses onto (and
// warms the cache for) its concrete twin and vice versa.
func (s *Scheduler) SubmitOpts(spec runner.ExperimentSpec, opts SubmitOptions) (*Job, error) {
	n, err := spec.Normalized()
	if err != nil {
		return nil, err
	}
	var tunedMode string
	reqMass, reqLinf := n.MaxMassError, n.MaxLinecutLinf
	if n.IsAuto() {
		if s.cfg.Tuner == nil {
			return nil, ErrNoTuner
		}
		if n, err = s.cfg.Tuner.Resolve(n); err != nil {
			return nil, err
		}
		tunedMode = n.Mode
	}
	hash, err := n.Hash()
	if err != nil {
		return nil, err
	}

	s.mu.Lock()
	s.submitted++
	s.obs.submitted.Inc()
	if j, ok := s.inflight[hash]; ok {
		s.dedupHits++
		s.obs.dedupHits.Inc()
		s.mu.Unlock()
		j.trace.Root().Event("dedup_hit")
		return j, nil
	}
	s.mu.Unlock()

	// Cache probe outside the lock (disk I/O). A concurrent duplicate may
	// race to enqueue first; the re-check under the lock below collapses
	// the race back onto one execution.
	if s.cfg.Cache != nil {
		if payload, src, ok := s.cfg.Cache.Fetch(hash); ok {
			s.mu.Lock()
			s.cacheHits++
			s.obs.cacheHits.Inc()
			job := s.newJobLocked(n, hash)
			job.cached = true
			job.status = StatusDone
			if tunedMode != "" {
				job.tunedMode = tunedMode
				job.maxMassError, job.maxLinecutLinf = reqMass, reqLinf
			}
			s.mu.Unlock()
			job.trace.Root().Event("cache_hit", obs.Str("source", string(src)))
			job.trace.Root().Annotate(obs.Str("status", "done"))
			job.trace.Root().End()
			s.log.Debug("cache hit", obs.Str("job", job.ID), obs.Str("spec_hash", hash))
			job.finish(StatusDone, payload, "")
			return job, nil
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.inflight[hash]; ok {
		s.dedupHits++
		s.obs.dedupHits.Inc()
		j.trace.Root().Event("dedup_hit")
		return j, nil
	}
	limit := s.cfg.QueueDepth
	if opts.Flow != "" && s.cfg.ReserveInteractive > 0 {
		// Bulk flows stop short of the interactive reserve.
		if limit -= s.cfg.ReserveInteractive; limit < 1 {
			limit = 1
		}
	}
	if s.waiting >= limit {
		// Bounded admission, checked before the journal append so a
		// rejected submission leaves no record to compensate.
		s.rejected++
		s.obs.rejected.Inc()
		return nil, ErrQueueFull
	}
	job := s.newJobLocked(n, hash)
	job.status = StatusQueued
	job.timeout = opts.Timeout
	job.flow = opts.Flow
	if tunedMode != "" {
		job.tunedMode = tunedMode
		job.maxMassError, job.maxLinecutLinf = reqMass, reqLinf
	}
	if s.cfg.Journal != nil {
		// Journal-then-ack: the admission record must be durable before the
		// job is visible or acknowledged (the fsync under s.mu serializes
		// submissions; admission is not the hot path).
		if jerr := s.cfg.Journal.Submitted(job.ID, hash, n, s.nextID+1); jerr != nil {
			s.unregisterLastLocked(job)
			return nil, fmt.Errorf("queue: journal admission: %w", jerr)
		}
	}
	job.queueSpan = job.trace.Root().Child("queue_wait")
	job.enqueuedAt = time.Now()
	s.inflight[hash] = job
	s.waiting++
	s.obs.queueDepth.Set(int64(s.waiting))
	s.wg.Add(1)
	go s.runJob(job)
	s.log.Debug("job queued",
		obs.Str("job", job.ID), obs.Str("spec_hash", hash),
		obs.Str("app", string(n.App)), obs.Str("mode", n.Mode))
	return job, nil
}

// newJobLocked registers a new job; caller holds s.mu.
func (s *Scheduler) newJobLocked(spec runner.ExperimentSpec, hash string) *Job {
	s.nextID++
	return s.registerJobLocked(fmt.Sprintf("job-%06d", s.nextID), spec, hash)
}

// registerJobLocked installs a job under a fixed ID (recovery preserves
// the crashed daemon's IDs); caller holds s.mu.
func (s *Scheduler) registerJobLocked(id string, spec runner.ExperimentSpec, hash string) *Job {
	job := &Job{
		ID:       id,
		SpecHash: hash,
		Spec:     spec,
		status:   StatusDone, // overwritten by callers that queue
		done:     make(chan struct{}),
		trace:    obs.NewTrace(id, "job", attrsForSpec(spec, hash)...),
	}
	s.jobs[job.ID] = job
	s.order = append(s.order, job.ID)
	return job
}

// unregisterLastLocked rolls back the most recent newJobLocked; caller
// holds s.mu.
func (s *Scheduler) unregisterLastLocked(job *Job) {
	delete(s.jobs, job.ID)
	s.order = s.order[:len(s.order)-1]
	s.nextID--
}

// Recover replays the journal's pending jobs onto the board. Call after
// New and before Start. Completed-but-unjournaled jobs (crash between the
// cache put and the done record) are healed straight from the cache —
// guaranteeing an accepted job is never run twice to completion. Started
// jobs whose periodic checkpoint survived resume mid-run (pinned to the
// local backend — the checkpoint is local state); their recorded
// escalations are restored so they re-run at the rung they had reached.
func (s *Scheduler) Recover() (requeued, healed int, err error) {
	if s.cfg.Journal == nil {
		return 0, 0, nil
	}
	pending := s.cfg.Journal.Pending()
	s.mu.Lock()
	if n := s.cfg.Journal.NextJobNum(); n > s.nextID+1 {
		s.nextID = n - 1
	}
	s.mu.Unlock()

	for _, p := range pending {
		if p.Poisoned {
			// Re-park without re-running: the poison verdict (same failure
			// on two distinct executors) survives restarts until an operator
			// releases the job.
			s.mu.Lock()
			job := s.registerJobLocked(p.ID, p.Spec, p.SpecHash)
			job.recovered = true
			s.inflight[p.SpecHash] = job
			s.recovered++
			s.poisoned++
			s.mu.Unlock()
			s.obs.recovered.Inc()
			job.trace.Root().Event("recovered", obs.Str("parked", "poisoned"))
			job.trace.Root().Annotate(obs.Str("status", "poisoned"))
			s.log.Warn("recovery re-parked poisoned job",
				obs.Str("job", p.ID), obs.Str("error", p.ErrMsg))
			job.finish(StatusPoisoned, nil, p.ErrMsg)
			continue
		}
		if s.cfg.Cache != nil {
			if payload, ok := s.cfg.Cache.Get(p.SpecHash); ok {
				s.mu.Lock()
				job := s.registerJobLocked(p.ID, p.Spec, p.SpecHash)
				job.cached = true
				job.recovered = true
				s.recovered++
				s.mu.Unlock()
				s.obs.recovered.Inc()
				job.trace.Root().Event("recovered", obs.Str("healed", "cache"))
				job.trace.Root().Annotate(obs.Str("status", "done"))
				job.trace.Root().End()
				s.log.Info("recovery healed job from cache", obs.Str("job", p.ID))
				_ = s.cfg.Journal.Done(p.ID)
				job.finish(StatusDone, payload, "")
				healed++
				continue
			}
		}
		s.mu.Lock()
		job := s.registerJobLocked(p.ID, p.Spec, p.SpecHash)
		job.recovered = true
		if s.waiting >= s.cfg.QueueDepth {
			s.mu.Unlock()
			_ = s.cfg.Journal.Failed(p.ID, "recovery: queue full")
			job.finish(StatusFailed, nil, "recovery: queue full")
			continue
		}
		job.status = StatusQueued
		job.tryResume = p.Started && !s.cfg.DisableLocal
		job.escalations = append([]runner.Escalation(nil), p.Escalations...)
		job.trace.Root().Event("recovered", obs.Str("resume", fmt.Sprint(job.tryResume)))
		job.queueSpan = job.trace.Root().Child("queue_wait")
		job.enqueuedAt = time.Now()
		s.inflight[p.SpecHash] = job
		s.recovered++
		s.waiting++
		s.obs.queueDepth.Set(int64(s.waiting))
		s.wg.Add(1)
		s.mu.Unlock()
		s.obs.recovered.Inc()
		go s.runJob(job)
		s.log.Info("recovery requeued job", obs.Str("job", p.ID), obs.Str("resume", fmt.Sprint(p.Started)))
		requeued++
	}
	return requeued, healed, nil
}

// checkpointSink returns the periodic-checkpoint opener for a job, or nil
// when checkpoints are not configured. Each checkpoint is written to a
// temp file and renamed over <dir>/<jobID>.ckpt on Close, so the file is
// always a complete checkpoint — never a torn one.
func (s *Scheduler) checkpointSink(jobID string) func(step int) (io.WriteCloser, error) {
	if s.cfg.CheckpointDir == "" || s.cfg.CheckpointEvery <= 0 {
		return nil
	}
	final := s.ckptPath(jobID)
	dir := s.cfg.CheckpointDir
	return func(step int) (io.WriteCloser, error) {
		tmp, err := os.CreateTemp(dir, "."+jobID+"-*")
		if err != nil {
			return nil, err
		}
		return &atomicCkpt{f: tmp, final: final}, nil
	}
}

type atomicCkpt struct {
	f     *os.File
	final string
}

func (a *atomicCkpt) Write(p []byte) (int, error) { return a.f.Write(p) }

func (a *atomicCkpt) Close() error {
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(a.f.Name())
		return err
	}
	if err := a.f.Close(); err != nil {
		os.Remove(a.f.Name())
		return err
	}
	return os.Rename(a.f.Name(), a.final)
}

func (s *Scheduler) ckptPath(jobID string) string {
	return filepath.Join(s.cfg.CheckpointDir, jobID+".ckpt")
}

func (s *Scheduler) loadCheckpoint(jobID string) []byte {
	if s.cfg.CheckpointDir == "" {
		return nil
	}
	b, err := os.ReadFile(s.ckptPath(jobID))
	if err != nil || len(b) == 0 {
		return nil
	}
	return b
}

func (s *Scheduler) removeCheckpoint(jobID string) {
	if s.cfg.CheckpointDir == "" {
		return
	}
	_ = os.Remove(s.ckptPath(jobID))
}

// Job looks a job up by ID.
func (s *Scheduler) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Jobs snapshots every admitted job in admission order.
func (s *Scheduler) Jobs() []View {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	views := make([]View, len(jobs))
	for i, j := range jobs {
		views[i] = j.Snapshot()
	}
	return views
}

// Stats snapshots scheduler traffic.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Submitted:     s.submitted,
		DedupHits:     s.dedupHits,
		CacheHits:     s.cacheHits,
		Executed:      s.executed,
		Failed:        s.failed,
		QueueRejected: s.rejected,
		Retried:       s.retried,
		Escalated:     s.escalated,
		TimedOut:      s.timedOut,
		Abandoned:     s.abandoned,
		Recovered:     s.recovered,
		Requeued:      s.requeued,
		Poisoned:      s.poisoned,
		QueueDepth:    s.waiting,
		Workers:       s.cfg.Workers,
	}
}
