package campaign

import "math"

// wfq is virtual-time weighted fair queueing over campaign flows. A flow
// joining at virtual time V gets its first virtual finish V + 1/weight;
// each admission it wins advances its finish by another 1/weight, and the
// pump always serves the eligible flow with the smallest finish. Over any
// interval in which two flows stay backlogged, their admission counts
// converge to the ratio of their weights — a weight-10 tenant drains ten
// jobs for each job of a weight-1 tenant, and neither can starve the
// other. A flow held ineligible (slot caps) keeps its frozen finish time
// and catches up when readmitted, bounded by the service it missed.
// Callers hold the manager lock.
type wfq struct {
	vnow  float64
	flows map[string]*wfqFlow
}

type wfqFlow struct {
	weight  float64
	vfinish float64
}

func newWFQ() *wfq { return &wfq{flows: make(map[string]*wfqFlow)} }

// pick selects the next flow among the eligible ids and charges it one
// admission. Returns "" when ids is empty. weightOf supplies each flow's
// weight (clamped to ≥ 1); a flow seen for the first time joins at the
// current virtual time, so late arrivals get their fair share going
// forward without back-credit for the past.
func (q *wfq) pick(ids []string, weightOf func(string) float64) string {
	best, bestF := "", math.Inf(1)
	for _, id := range ids {
		f, ok := q.flows[id]
		if !ok {
			w := weightOf(id)
			if w < 1 {
				w = 1
			}
			f = &wfqFlow{weight: w, vfinish: q.vnow + 1/w}
			q.flows[id] = f
		}
		if f.vfinish < bestF {
			best, bestF = id, f.vfinish
		}
	}
	if best == "" {
		return ""
	}
	f := q.flows[best]
	q.vnow = f.vfinish
	f.vfinish += 1 / f.weight
	return best
}

// forget drops a terminal flow's state.
func (q *wfq) forget(id string) { delete(q.flows, id) }
