package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
	"repro/internal/serve/queue"
)

// ErrBudget rejects a campaign whose estimated expansion, together with
// the unexpanded remainder of every live campaign, exceeds the configured
// budget. The API layer maps it to 429 + Retry-After.
var ErrBudget = errors.New("campaign: expansion budget exhausted")

// ErrNotFound reports an unknown campaign ID.
var ErrNotFound = errors.New("campaign: not found")

// Config parameterizes a Manager.
type Config struct {
	// Sched admits expanded specs; required.
	Sched *queue.Scheduler
	// Journal persists campaign records (nil = no durability). Pass the
	// same journal the scheduler uses so one fsync stream orders campaign
	// state against job admissions.
	Journal *queue.Journal
	// Budget caps the total estimated expansion (new campaign + live
	// remainders); 0 defaults to 1<<20 — a million jobs.
	Budget int64
	// Slots caps campaign jobs concurrently in flight across all
	// campaigns (0 = 16). Deduped cache answers are born done and never
	// hold a slot.
	Slots int
	// TenantSlots caps per-tenant in-flight jobs (0 = Slots).
	TenantSlots int
	// HealthyCapacity, when non-nil, reports the execution slots currently
	// backed by non-quarantined capacity (local lanes + healthy fleet).
	// Campaign admission sheds to min(Slots, max(1, HealthyCapacity())):
	// bulk expansion stops piling onto a degraded fleet, while interactive
	// submissions (which bypass this manager) keep their full queue. The
	// floor of 1 keeps the pump from wedging when everything is
	// quarantined — one probe-sized trickle continues.
	HealthyCapacity func() int
	// CursorEvery journals the expansion cursor every N admissions
	// (0 = 32). The cursor trails admissions, never leads them: a crash
	// re-admits at most CursorEvery indices, each of which dedups onto
	// the cache or the journal-recovered job.
	CursorEvery int
	// Obs registers campaign metrics when non-nil.
	Obs *obs.Registry
	// Log is the manager's logger (nil discards).
	Log *obs.Logger
}

// Manager expands campaigns lazily and fairly. One pump goroutine owns
// admission: it picks the next (campaign, index) by weighted fair
// queueing, materializes exactly that spec, and submits it through the
// scheduler; per-job watcher goroutines fold terminal results into the
// campaign's aggregates and release admission slots.
type Manager struct {
	cfg   Config
	sched *queue.Scheduler
	log   *obs.Logger
	o     *mgrObs

	mu             sync.Mutex
	camps          map[string]*Campaign
	order          []string
	nextID         uint64
	fair           *wfq
	inflight       int
	tenantInflight map[string]int

	kick   chan struct{}
	runCtx context.Context
	wg     sync.WaitGroup
}

// Campaign is one live or terminal campaign.
type Campaign struct {
	id  string
	gen *Generator

	mu     sync.Mutex
	spec   Spec // normalized
	status Status
	errMsg string

	// next is the first unexpanded generator index; recoveredBelow marks
	// indices admitted by a pre-crash incarnation (re-admissions of those
	// count as "recovered", not fresh work); cursorHW is the journaled
	// cursor high-water.
	next           int64
	recoveredBelow int64
	cursorHW       int64

	expanded, admitted, running int64
	completed, deduped, failed  int64
	recovered                   int64
	entries                     []entry
	agg                         *agg
	digest                      string

	done     chan struct{}
	doneOnce sync.Once
}

// entry is the per-expanded-index record backing JobRef.
type entry struct {
	index              int64
	jobID, specHash    string
	mode               string
	status             string
	stateHash          string
	deduped, recovered bool
	errMsg             string
}

// New builds a Manager. Call Recover (optionally) then Start.
func New(cfg Config) *Manager {
	if cfg.Budget <= 0 {
		cfg.Budget = 1 << 20
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 16
	}
	if cfg.TenantSlots <= 0 {
		cfg.TenantSlots = cfg.Slots
	}
	if cfg.CursorEvery <= 0 {
		cfg.CursorEvery = 32
	}
	m := &Manager{
		cfg:            cfg,
		sched:          cfg.Sched,
		log:            cfg.Log.With(obs.Str("sub", "campaign")),
		camps:          make(map[string]*Campaign),
		fair:           newWFQ(),
		tenantInflight: make(map[string]int),
		kick:           make(chan struct{}, 1),
		nextID:         1,
	}
	if cfg.Journal != nil {
		m.nextID = cfg.Journal.NextCampaignNum()
	}
	if cfg.Obs != nil {
		m.o = newMgrObs(cfg.Obs)
	}
	return m
}

// Recover re-registers the journal's live campaigns under their original
// IDs. Call after the scheduler's own Recover and before Start: the pump
// then re-admits indices below each journaled cursor (they dedup onto the
// cache or the recovered jobs, counted as outcome "recovered") and
// resumes fresh expansion from the cursor. Returns the number of
// campaigns resumed.
func (m *Manager) Recover() (int, error) {
	if m.cfg.Journal == nil {
		return 0, nil
	}
	resumed := 0
	for _, pc := range m.cfg.Journal.PendingCampaigns() {
		var spec Spec
		err := json.Unmarshal(pc.Spec, &spec)
		if err == nil {
			spec, err = spec.Normalized()
		}
		var gen *Generator
		if err == nil {
			gen, err = NewGenerator(spec.Generator)
		}
		if err != nil {
			// A journaled campaign that no longer validates (e.g. written
			// by a newer build) is failed rather than wedged forever.
			m.log.Warn("recovered campaign invalid", obs.Str("campaign", pc.ID), obs.Str("err", err.Error()))
			if jerr := m.cfg.Journal.CampaignFailed(pc.ID, "recovery: "+err.Error()); jerr != nil {
				return resumed, jerr
			}
			continue
		}
		c := &Campaign{
			id:             pc.ID,
			gen:            gen,
			spec:           spec,
			status:         StatusRunning,
			recoveredBelow: pc.Cursor,
			cursorHW:       pc.Cursor,
			agg:            newAgg(),
			done:           make(chan struct{}),
		}
		m.mu.Lock()
		m.camps[c.id] = c
		m.order = append(m.order, c.id)
		m.mu.Unlock()
		m.o.campaignEvent("recovered")
		m.log.Info("campaign recovered",
			obs.Str("campaign", c.id), obs.Str("tenant", spec.Tenant),
			obs.Str("cursor", strconv.FormatInt(pc.Cursor, 10)),
			obs.Str("total", strconv.FormatInt(gen.Total(), 10)))
		resumed++
	}
	m.o.setActive(m.activeCount())
	return resumed, nil
}

// Start launches the admission pump. ctx cancellation stops expansion;
// live campaigns stay journaled for the next incarnation's Recover.
func (m *Manager) Start(ctx context.Context) {
	m.runCtx = ctx
	m.wg.Add(1)
	go m.pump(ctx)
	m.kickPump()
}

// Wait blocks until the pump and every watcher have exited. Call after
// the scheduler's own shutdown has resolved outstanding jobs.
func (m *Manager) Wait() { m.wg.Wait() }

// Submit validates, journals and registers a new campaign. The campaign
// is expanded asynchronously; the returned Campaign is live immediately.
func (m *Manager) Submit(spec Spec) (*Campaign, error) {
	spec, err := spec.Normalized()
	if err != nil {
		m.o.campaignEvent("rejected")
		return nil, err
	}
	gen, err := NewGenerator(spec.Generator)
	if err != nil {
		m.o.campaignEvent("rejected")
		return nil, err
	}

	m.mu.Lock()
	if gen.Total()+m.liveRemainderLocked() > m.cfg.Budget {
		m.mu.Unlock()
		m.o.campaignEvent("rejected")
		return nil, fmt.Errorf("%w: estimated %d jobs over budget %d", ErrBudget, gen.Total(), m.cfg.Budget)
	}
	id := fmt.Sprintf("camp-%06d", m.nextID)
	next := m.nextID + 1
	m.mu.Unlock()

	if m.cfg.Journal != nil {
		// Journal-then-ack, mirroring job admission: the campaign record
		// must be durable before the ID is visible.
		raw, err := json.Marshal(spec)
		if err != nil {
			return nil, err
		}
		if err := m.cfg.Journal.CampaignSubmitted(id, raw, next); err != nil {
			return nil, fmt.Errorf("campaign: journal admission: %w", err)
		}
	}

	c := &Campaign{
		id:     id,
		gen:    gen,
		spec:   spec,
		status: StatusRunning,
		agg:    newAgg(),
		done:   make(chan struct{}),
	}
	m.mu.Lock()
	m.nextID = next
	m.camps[id] = c
	m.order = append(m.order, id)
	m.mu.Unlock()
	m.o.campaignEvent("submitted")
	m.o.setActive(m.activeCount())
	m.log.Info("campaign submitted",
		obs.Str("campaign", id), obs.Str("tenant", spec.Tenant),
		obs.Str("kind", gen.Kind()),
		obs.Str("total", strconv.FormatInt(gen.Total(), 10)))
	m.kickPump()
	return c, nil
}

// liveRemainderLocked sums the unfinished estimate of every live
// campaign; caller holds m.mu.
func (m *Manager) liveRemainderLocked() int64 {
	var sum int64
	for _, c := range m.camps {
		c.mu.Lock()
		if c.status == StatusRunning {
			if rem := c.gen.Total() - (c.completed + c.failed); rem > 0 {
				sum += rem
			}
		}
		c.mu.Unlock()
	}
	return sum
}

// Get returns a campaign by ID.
func (m *Manager) Get(id string) (*Campaign, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.camps[id]
	return c, ok
}

// List snapshots every campaign in submission order.
func (m *Manager) List() []View {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	m.mu.Unlock()
	out := make([]View, 0, len(ids))
	for _, id := range ids {
		if c, ok := m.Get(id); ok {
			out = append(out, c.View(false))
		}
	}
	return out
}

// Cancel stops a campaign's expansion. Jobs already admitted run to
// completion under the scheduler; the campaign's journal record is
// closed so it will not be resumed.
func (m *Manager) Cancel(id string) (View, error) {
	c, ok := m.Get(id)
	if !ok {
		return View{}, ErrNotFound
	}
	c.mu.Lock()
	if c.status != StatusRunning {
		c.mu.Unlock()
		return c.View(false), nil
	}
	c.status = StatusCancelled
	c.errMsg = "cancelled"
	c.mu.Unlock()
	if m.cfg.Journal != nil {
		if err := m.cfg.Journal.CampaignFailed(id, "cancelled"); err != nil {
			m.log.Warn("journal cancel", obs.Str("campaign", id), obs.Str("err", err.Error()))
		}
	}
	m.mu.Lock()
	m.fair.forget(id)
	m.mu.Unlock()
	m.o.campaignEvent("cancelled")
	m.o.setActive(m.activeCount())
	c.signalDone()
	m.kickPump()
	m.log.Info("campaign cancelled", obs.Str("campaign", id))
	return c.View(false), nil
}

func (m *Manager) kickPump() {
	select {
	case m.kick <- struct{}{}:
	default:
	}
}

func (m *Manager) activeCount() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var n int64
	for _, c := range m.camps {
		c.mu.Lock()
		if c.status == StatusRunning {
			n++
		}
		c.mu.Unlock()
	}
	return n
}

// pump is the single admission loop: WFQ pick, lazy expansion of exactly
// one index, submission, repeat. Queue-full is throttling, never loss —
// the pump backs off and retries the same index.
func (m *Manager) pump(ctx context.Context) {
	defer m.wg.Done()
	for {
		if ctx.Err() != nil {
			return
		}
		c := m.pickCampaign()
		if c == nil {
			select {
			case <-ctx.Done():
				return
			case <-m.kick:
			}
			continue
		}
		m.admitNext(ctx, c)
	}
}

// pickCampaign returns the WFQ choice among campaigns that are running,
// not fully expanded, and within the global and per-tenant slot quotas.
func (m *Manager) pickCampaign() *Campaign {
	m.mu.Lock()
	defer m.mu.Unlock()
	slots := m.cfg.Slots
	if m.cfg.HealthyCapacity != nil {
		if hc := m.cfg.HealthyCapacity(); hc < slots {
			if hc < 1 {
				hc = 1
			}
			slots = hc
		}
	}
	if m.inflight >= slots {
		return nil
	}
	var ids []string
	weights := make(map[string]float64)
	var backlog int64
	for _, id := range m.order {
		c := m.camps[id]
		c.mu.Lock()
		eligible := c.status == StatusRunning && c.next < c.gen.Total()
		if eligible {
			backlog += c.gen.Total() - c.next
		}
		tenant, w := c.spec.Tenant, float64(c.spec.Weight)
		c.mu.Unlock()
		if !eligible || m.tenantInflight[tenant] >= m.cfg.TenantSlots {
			continue
		}
		ids = append(ids, id)
		weights[id] = w
	}
	m.o.setBacklog(backlog)
	pick := m.fair.pick(ids, func(id string) float64 { return weights[id] })
	if pick == "" {
		return nil
	}
	return m.camps[pick]
}

// admitNext expands campaign index c.next and submits it.
func (m *Manager) admitNext(ctx context.Context, c *Campaign) {
	c.mu.Lock()
	if c.status != StatusRunning || c.next >= c.gen.Total() {
		c.mu.Unlock()
		return
	}
	idx := c.next
	c.next++
	c.expanded++
	recovered := idx < c.recoveredBelow
	tenant := c.spec.Tenant
	c.mu.Unlock()

	spec, err := c.gen.At(idx)
	if err != nil {
		// An index whose decoded values don't fit the spec fields is a
		// terminal per-index failure, not a campaign failure.
		c.mu.Lock()
		c.entries = append(c.entries, entry{index: idx, status: "invalid", errMsg: err.Error()})
		c.failed++
		c.mu.Unlock()
		m.o.jobOutcome("invalid")
		m.journalCursor(c)
		m.maybeFinalize(c)
		return
	}

	var job *queue.Job
	for {
		job, err = m.sched.SubmitOpts(spec, queue.SubmitOptions{Flow: "campaign/" + c.id})
		if err == nil {
			break
		}
		if errors.Is(err, queue.ErrQueueFull) {
			// Throttled, never dropped: hold this index until the queue
			// drains below the bulk-admission limit.
			if !sleepCtx(ctx, 50*time.Millisecond) {
				// Shutdown mid-backoff: rewind so the index is not lost to
				// this incarnation's counters (the journal cursor already
				// trails it, so the next incarnation re-expands it anyway).
				c.mu.Lock()
				if c.next == idx+1 {
					c.next--
					c.expanded--
				}
				c.mu.Unlock()
				return
			}
			continue
		}
		c.mu.Lock()
		c.entries = append(c.entries, entry{index: idx, status: "invalid", errMsg: err.Error()})
		c.failed++
		c.mu.Unlock()
		m.o.jobOutcome("invalid")
		m.journalCursor(c)
		m.maybeFinalize(c)
		return
	}

	snap := job.Snapshot()
	e := entry{
		index:     idx,
		jobID:     job.ID,
		specHash:  job.SpecHash,
		mode:      snap.Spec.Mode,
		status:    string(snap.Status),
		deduped:   snap.Cached,
		recovered: recovered,
	}

	terminal := false
	select {
	case <-job.Done():
		terminal = true
	default:
	}

	c.mu.Lock()
	c.admitted++
	c.agg.admit(e.mode)
	eIdx := len(c.entries)
	c.entries = append(c.entries, e)
	if !terminal {
		c.running++
	}
	c.mu.Unlock()

	switch {
	case recovered:
		m.o.jobOutcome("recovered")
	case snap.Cached:
		m.o.jobOutcome("deduped")
	default:
		m.o.jobOutcome("admitted")
	}

	if terminal {
		// Cache answers are born done: fold the cached result into the
		// aggregates right away — a deduped job still reports.
		m.finishEntry(c, eIdx, job, false)
	} else {
		m.mu.Lock()
		m.inflight++
		m.tenantInflight[tenant]++
		m.o.setInflight(int64(m.inflight))
		m.mu.Unlock()
		m.wg.Add(1)
		go m.watch(c, eIdx, job, tenant)
	}
	m.journalCursor(c)
}

// journalCursor persists the expansion cursor when it has advanced by
// CursorEvery since the last write (or the campaign is fully expanded).
// Written after the admissions it covers, so a crash can only re-admit —
// and re-admissions dedup.
func (m *Manager) journalCursor(c *Campaign) {
	if m.cfg.Journal == nil {
		return
	}
	c.mu.Lock()
	cur := c.next
	write := c.status == StatusRunning &&
		cur > c.cursorHW &&
		(cur-c.cursorHW >= int64(m.cfg.CursorEvery) || cur == c.gen.Total())
	if write {
		c.cursorHW = cur
	}
	c.mu.Unlock()
	if !write {
		return
	}
	if err := m.cfg.Journal.CampaignCursor(c.id, cur); err != nil {
		m.log.Warn("journal cursor", obs.Str("campaign", c.id), obs.Str("err", err.Error()))
	}
}

// watch waits for one admitted job's terminal state.
func (m *Manager) watch(c *Campaign, eIdx int, job *queue.Job, tenant string) {
	defer m.wg.Done()
	<-job.Done()
	m.finishEntry(c, eIdx, job, true)
	m.mu.Lock()
	m.inflight--
	m.tenantInflight[tenant]--
	if m.tenantInflight[tenant] <= 0 {
		delete(m.tenantInflight, tenant)
	}
	m.o.setInflight(int64(m.inflight))
	m.mu.Unlock()
	m.kickPump()
}

// finishEntry folds one terminal job into the campaign.
func (m *Manager) finishEntry(c *Campaign, eIdx int, job *queue.Job, fromWatch bool) {
	payload, ok := job.Result()
	var res runner.Result
	if ok {
		if err := json.Unmarshal(payload, &res); err != nil {
			ok = false
		}
	}
	snap := job.Snapshot()

	shuttingDown := m.runCtx != nil && m.runCtx.Err() != nil

	c.mu.Lock()
	e := &c.entries[eIdx]
	if fromWatch {
		c.running--
	}
	if ok {
		e.status = string(queue.StatusDone)
		e.stateHash = res.StateHash
		c.completed++
		if e.deduped {
			c.deduped++
		}
		if e.recovered {
			c.recovered++
		}
		c.agg.complete(e.mode, &res)
	} else if shuttingDown {
		// Scheduler shutdown fails queued jobs; don't count those against
		// the campaign — the next incarnation re-runs them.
		e.status = string(queue.StatusQueued)
	} else {
		e.status = string(queue.StatusFailed)
		e.errMsg = snap.Error
		c.failed++
		c.agg.fail(e.mode)
	}
	c.mu.Unlock()

	if ok {
		m.o.jobOutcome("completed")
	} else if !shuttingDown {
		m.o.jobOutcome("failed")
	}
	m.maybeFinalize(c)
}

// maybeFinalize completes the campaign once fully expanded and drained.
// During shutdown it leaves the campaign live so the journal's pending
// record carries it into the next incarnation.
func (m *Manager) maybeFinalize(c *Campaign) {
	if m.runCtx != nil && m.runCtx.Err() != nil {
		return
	}
	c.mu.Lock()
	if c.status != StatusRunning || c.next < c.gen.Total() || c.running > 0 ||
		c.completed+c.failed < c.gen.Total() {
		c.mu.Unlock()
		return
	}
	pairs := make([]string, 0, len(c.entries))
	for i := range c.entries {
		e := &c.entries[i]
		if e.status == string(queue.StatusDone) && e.stateHash != "" {
			pairs = append(pairs, e.specHash+" "+e.stateHash)
		}
	}
	c.digest = ResultDigest(pairs)
	c.status = StatusCompleted
	completed, failed := c.completed, c.failed
	c.mu.Unlock()

	if m.cfg.Journal != nil {
		if err := m.cfg.Journal.CampaignDone(c.id); err != nil {
			m.log.Warn("journal done", obs.Str("campaign", c.id), obs.Str("err", err.Error()))
		}
	}
	m.mu.Lock()
	m.fair.forget(c.id)
	m.mu.Unlock()
	m.o.campaignEvent("completed")
	m.o.setActive(m.activeCount())
	c.signalDone()
	m.log.Info("campaign completed",
		obs.Str("campaign", c.id),
		obs.Str("completed", strconv.FormatInt(completed, 10)),
		obs.Str("failed", strconv.FormatInt(failed, 10)))
}

// sleepCtx sleeps for d, returning false if ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// ID returns the campaign's stable identity ("camp-000001").
func (c *Campaign) ID() string { return c.id }

// Done is closed when the campaign reaches a terminal state.
func (c *Campaign) Done() <-chan struct{} { return c.done }

func (c *Campaign) signalDone() { c.doneOnce.Do(func() { close(c.done) }) }

// Aggregates snapshots the campaign's running aggregates.
func (c *Campaign) Aggregates() Aggregates {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.aggregatesLocked()
}

func (c *Campaign) aggregatesLocked() Aggregates {
	out := Aggregates{
		Total:     c.gen.Total(),
		Expanded:  c.expanded,
		Admitted:  c.admitted,
		Running:   c.running,
		Completed: c.completed,
		Deduped:   c.deduped,
		Recovered: c.recovered,
		Failed:    c.failed,
	}
	c.agg.stats(&out)
	out.ResultDigest = c.digest
	return out
}

// View snapshots the campaign; includeJobs adds one JobRef per expanded
// index, in expansion order.
func (c *Campaign) View(includeJobs bool) View {
	c.mu.Lock()
	defer c.mu.Unlock()
	v := View{
		ID:         c.id,
		Tenant:     c.spec.Tenant,
		Weight:     c.spec.Weight,
		Status:     c.status,
		Error:      c.errMsg,
		Spec:       c.spec,
		Aggregates: c.aggregatesLocked(),
	}
	if includeJobs {
		v.Jobs = make([]JobRef, len(c.entries))
		for i := range c.entries {
			e := &c.entries[i]
			v.Jobs[i] = JobRef{
				Index:     e.index,
				JobID:     e.jobID,
				SpecHash:  e.specHash,
				Mode:      e.mode,
				Status:    e.status,
				StateHash: e.stateHash,
				Deduped:   e.deduped,
				Recovered: e.recovered,
				Error:     e.errMsg,
			}
		}
	}
	return v
}
