package campaign

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"repro/internal/precision"
	"repro/internal/runner"
)

// Generator is a validated, pure index→spec mapping. At(i) depends on the
// generator spec and i alone — no internal cursor, no accumulated state —
// so the same generator expands to the same ordered spec sequence on every
// incarnation, which is the contract journal replay relies on.
type Generator struct {
	spec  GeneratorSpec
	total int64
	rungs []string // ladder kind, canonical spellings
}

// NewGenerator validates the spec and returns its expander.
func NewGenerator(gs GeneratorSpec) (*Generator, error) {
	g := &Generator{spec: gs}
	kind := strings.ToLower(strings.TrimSpace(gs.Kind))
	g.spec.Kind = kind
	for _, ax := range gs.Axes {
		if len(ax.Values) == 0 {
			return nil, fmt.Errorf("campaign: axis %q has no values", ax.Field)
		}
		if !knownField(ax.Field) {
			return nil, fmt.Errorf("campaign: unknown axis field %q", ax.Field)
		}
	}
	switch kind {
	case KindGrid:
		total := int64(1)
		for _, ax := range gs.Axes {
			n := int64(len(ax.Values))
			if total > math.MaxInt64/n {
				return nil, fmt.Errorf("campaign: grid expansion overflows int64")
			}
			total *= n
		}
		g.total = total
	case KindEnsemble:
		if gs.Draws <= 0 {
			return nil, fmt.Errorf("campaign: ensemble needs positive draws, got %d", gs.Draws)
		}
		if len(gs.Axes) == 0 {
			return nil, fmt.Errorf("campaign: ensemble needs at least one axis to sample")
		}
		g.total = int64(gs.Draws)
	case KindLadder:
		rungs := gs.Rungs
		if len(rungs) == 0 {
			rungs = []string{"min", "mixed", "full"}
		}
		for _, r := range rungs {
			// "auto" is a valid rung: the scheduler's autotuner resolves it
			// per-point at admission, so an auto rung in a ladder compares
			// the learned mode against the explicit ones.
			if strings.ToLower(strings.TrimSpace(r)) == runner.ModeAuto {
				g.rungs = append(g.rungs, runner.ModeAuto)
				continue
			}
			m, err := precision.Parse(r)
			if err != nil {
				return nil, fmt.Errorf("campaign: ladder rung: %w", err)
			}
			g.rungs = append(g.rungs, strings.ToLower(m.String()))
		}
		g.total = int64(len(g.rungs))
	default:
		return nil, fmt.Errorf("campaign: unknown generator kind %q (want %q, %q or %q)",
			gs.Kind, KindGrid, KindEnsemble, KindLadder)
	}
	// Probe the first expansion so a base/axes combination that can never
	// normalize is rejected at submit time, not a million indices later.
	if g.total > 0 {
		spec, err := g.At(0)
		if err != nil {
			return nil, err
		}
		if _, err := spec.Normalized(); err != nil {
			return nil, fmt.Errorf("campaign: first expanded spec invalid: %w", err)
		}
	}
	return g, nil
}

// Total is the exact expansion size.
func (g *Generator) Total() int64 { return g.total }

// Kind returns the canonical generator kind.
func (g *Generator) Kind() string { return g.spec.Kind }

// At materializes spec i. An error means the index decoded to values the
// spec fields cannot hold (e.g. a fractional value on an int field);
// callers record such indices as failed entries and move on.
func (g *Generator) At(i int64) (runner.ExperimentSpec, error) {
	if i < 0 || i >= g.total {
		return runner.ExperimentSpec{}, fmt.Errorf("campaign: index %d out of range [0, %d)", i, g.total)
	}
	spec := g.spec.Base
	switch g.spec.Kind {
	case KindGrid:
		// Mixed-radix decode, axes[0] slowest: the order a nested loop
		// over axes in declaration order would produce.
		rem := i
		for k := len(g.spec.Axes) - 1; k >= 0; k-- {
			ax := g.spec.Axes[k]
			n := int64(len(ax.Values))
			if err := applyField(&spec, ax.Field, ax.Values[rem%n]); err != nil {
				return spec, err
			}
			rem /= n
		}
	case KindEnsemble:
		// One independent, well-mixed stream per index: O(1) random access
		// and draw i is identical no matter which draws ran before it.
		rng := rand.New(rand.NewSource(int64(mix64(uint64(g.spec.Seed) ^ mix64(uint64(i)+1)))))
		for _, ax := range g.spec.Axes {
			if err := applyField(&spec, ax.Field, ax.Values[rng.Intn(len(ax.Values))]); err != nil {
				return spec, err
			}
		}
	case KindLadder:
		spec.Mode = g.rungs[i]
	}
	return spec, nil
}

// mix64 is SplitMix64's finalizer — a cheap, high-quality bijection used
// to decorrelate per-index ensemble seeds.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func knownField(f string) bool {
	switch strings.ToLower(strings.TrimSpace(f)) {
	case "app", "mode", "steps", "line_cut_n",
		"nx", "ny", "max_level", "kernel", "amr_interval", "dry_tol",
		"elements", "order", "math_mode",
		"max_mass_error", "max_linecut_linf":
		return true
	}
	return false
}

// applyField sets one ExperimentSpec field by its JSON name. Values come
// from encoding/json, so numbers arrive as float64; strings are accepted
// for every field and parsed as needed.
func applyField(s *runner.ExperimentSpec, field string, v any) error {
	f := strings.ToLower(strings.TrimSpace(field))
	switch f {
	case "app", "mode", "kernel", "math_mode":
		sv, err := asString(v)
		if err != nil {
			return fmt.Errorf("campaign: axis %q: %w", field, err)
		}
		switch f {
		case "app":
			s.App = sv
		case "mode":
			s.Mode = sv
		case "kernel":
			s.Kernel = sv
		case "math_mode":
			s.MathMode = sv
		}
	case "dry_tol", "max_mass_error", "max_linecut_linf":
		fv, err := asFloat(v)
		if err != nil {
			return fmt.Errorf("campaign: axis %q: %w", field, err)
		}
		switch f {
		case "dry_tol":
			s.DryTol = fv
		case "max_mass_error":
			s.MaxMassError = fv
		case "max_linecut_linf":
			s.MaxLinecutLinf = fv
		}
	default:
		iv, err := asInt(v)
		if err != nil {
			return fmt.Errorf("campaign: axis %q: %w", field, err)
		}
		switch f {
		case "steps":
			s.Steps = iv
		case "line_cut_n":
			s.LineCutN = iv
		case "nx":
			s.NX = iv
		case "ny":
			s.NY = iv
		case "max_level":
			s.MaxLevel = iv
		case "amr_interval":
			s.AMRInterval = iv
		case "elements":
			s.Elements = iv
		case "order":
			s.Order = iv
		default:
			return fmt.Errorf("campaign: unknown axis field %q", field)
		}
	}
	return nil
}

func asString(v any) (string, error) {
	if s, ok := v.(string); ok {
		return s, nil
	}
	return "", fmt.Errorf("want string, got %T", v)
}

func asFloat(v any) (float64, error) {
	switch t := v.(type) {
	case float64:
		return t, nil
	case int:
		return float64(t), nil
	case string:
		return strconv.ParseFloat(t, 64)
	}
	return 0, fmt.Errorf("want number, got %T", v)
}

func asInt(v any) (int, error) {
	switch t := v.(type) {
	case int:
		return t, nil
	case float64:
		if t != math.Trunc(t) {
			return 0, fmt.Errorf("want integer, got %v", t)
		}
		return int(t), nil
	case string:
		return strconv.Atoi(t)
	}
	return 0, fmt.Errorf("want integer, got %T", v)
}
