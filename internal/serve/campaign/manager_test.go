package campaign

import (
	"context"
	"math"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runner"
	"repro/internal/serve/cache"
	"repro/internal/serve/queue"
)

// recordRun is a stub RunFunc that records execution order and per-hash
// completion counts. With a gate, executions beyond `allow` block until
// release (or their context ends) — how tests freeze a campaign mid-drain.
type recordRun struct {
	mu          sync.Mutex
	order       []int // Steps value of each started execution
	completions map[string]int

	started atomic.Int64
	allow   int64
	gate    chan struct{}
}

func newRecordRun(allow int64) *recordRun {
	return &recordRun{completions: make(map[string]int), allow: allow, gate: make(chan struct{})}
}

func (r *recordRun) fn(ctx context.Context, req queue.RunRequest) (*runner.Result, error) {
	r.mu.Lock()
	r.order = append(r.order, req.Spec.Steps)
	r.mu.Unlock()
	if n := r.started.Add(1); r.allow > 0 && n > r.allow {
		select {
		case <-r.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	h, err := req.Spec.Hash()
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.completions[h]++
	r.mu.Unlock()
	return &runner.Result{
		Spec: req.Spec, SpecHash: h, Steps: req.Spec.Steps,
		StateHash: "st-" + h[:16],
	}, nil
}

func (r *recordRun) orderCopy() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.order...)
}

func stepsGrid(tenant string, weight int, firstSteps, n int) Spec {
	vals := make([]any, n)
	for i := range vals {
		vals[i] = firstSteps + i
	}
	return Spec{
		Tenant: tenant, Weight: weight,
		Generator: GeneratorSpec{
			Kind: KindGrid, Base: clamrBase(10),
			Axes: []Axis{{Field: "steps", Values: vals}},
		},
	}
}

func waitCampaign(t *testing.T, c *Campaign) {
	t.Helper()
	select {
	case <-c.Done():
	case <-time.After(30 * time.Second):
		t.Fatalf("campaign %s did not finish: %+v", c.ID(), c.View(false))
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// Two backlogged tenants with 10:1 weights are admitted — and on a
// single-worker scheduler, executed — in ~10:1 proportion.
func TestWFQFairnessAcrossTenants(t *testing.T) {
	rec := newRecordRun(0)
	sched := queue.New(queue.Config{Workers: 1, QueueDepth: 128, Run: rec.fn})
	m := New(Config{Sched: sched, Slots: 2})

	// Register both campaigns before the pump starts so neither gets a
	// head start the fairness assertion would have to absorb.
	a, err := m.Submit(stepsGrid("alpha", 10, 1001, 30))
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Submit(stepsGrid("beta", 1, 2001, 30))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sched.Start(ctx)
	m.Start(ctx)
	waitCampaign(t, a)
	waitCampaign(t, b)

	// While both flows were backlogged — the first 22 admissions, since
	// each campaign holds 30 — WFQ owes beta ~1 in 11 admissions. One
	// worker preserves admission order in execution order.
	order := rec.orderCopy()
	if len(order) != 60 {
		t.Fatalf("executions = %d, want 60", len(order))
	}
	beta := 0
	for _, steps := range order[:22] {
		if steps >= 2000 {
			beta++
		}
	}
	if beta < 1 || beta > 5 {
		t.Errorf("beta got %d of the first 22 admissions, want ~2 (1..5): order=%v", beta, order[:22])
	}
	av, bv := a.View(false), b.View(false)
	if av.Status != StatusCompleted || bv.Status != StatusCompleted {
		t.Errorf("status = %s/%s, want completed/completed", av.Status, bv.Status)
	}
	if av.Aggregates.Completed != 30 || bv.Aggregates.Completed != 30 {
		t.Errorf("completed = %d/%d, want 30/30", av.Aggregates.Completed, bv.Aggregates.Completed)
	}
}

// A campaign killed mid-expansion (no terminal journal record, in-flight
// jobs lost) resumes under its original ID and completes without any
// spec hash being executed twice to completion.
func TestJournalReplayResumesHalfExpandedCampaign(t *testing.T) {
	dir := t.TempDir()
	jpath := filepath.Join(dir, "wal")
	cdir := filepath.Join(dir, "cache")
	rec := newRecordRun(5) // freeze the drain after 5 completions

	j1, err := queue.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	c1, err := cache.Open(cdir)
	if err != nil {
		t.Fatal(err)
	}
	sched1 := queue.New(queue.Config{Workers: 2, QueueDepth: 64, Cache: c1, Journal: j1, Run: rec.fn})
	m1 := New(Config{Sched: sched1, Journal: j1, Slots: 2, CursorEvery: 4})
	ctx1, cancel1 := context.WithCancel(context.Background())
	sched1.Start(ctx1)
	m1.Start(ctx1)

	camp, err := m1.Submit(stepsGrid("t", 1, 3001, 12))
	if err != nil {
		t.Fatal(err)
	}
	id := camp.ID()
	waitFor(t, "5 completions", func() bool { return camp.Aggregates().Completed >= 5 })

	// "SIGKILL": stop the first incarnation with the campaign half
	// expanded. Blocked executions abort via their context; nothing
	// terminal is journaled for the campaign.
	cancel1()
	sched1.Wait()
	m1.Wait()
	if err := j1.Close(); err != nil {
		t.Fatal(err)
	}
	if got := camp.Aggregates().Completed; got >= 12 {
		t.Fatalf("first incarnation completed %d jobs; wanted a half-drained campaign", got)
	}

	close(rec.gate) // second incarnation runs unthrottled
	j2, err := queue.OpenJournal(jpath)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	c2, err := cache.Open(cdir)
	if err != nil {
		t.Fatal(err)
	}
	sched2 := queue.New(queue.Config{Workers: 2, QueueDepth: 64, Cache: c2, Journal: j2, Run: rec.fn})
	if _, _, err := sched2.Recover(); err != nil {
		t.Fatal(err)
	}
	m2 := New(Config{Sched: sched2, Journal: j2, Slots: 2, CursorEvery: 4})
	resumed, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if resumed != 1 {
		t.Fatalf("resumed %d campaigns, want 1", resumed)
	}
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer func() { cancel2(); sched2.Wait(); m2.Wait() }()
	sched2.Start(ctx2)
	m2.Start(ctx2)

	camp2, ok := m2.Get(id)
	if !ok {
		t.Fatalf("campaign %s not resumed under its original ID", id)
	}
	waitCampaign(t, camp2)

	v := camp2.View(true)
	if v.Status != StatusCompleted {
		t.Fatalf("status = %s, want completed (%+v)", v.Status, v.Aggregates)
	}
	if got := v.Aggregates.Completed; got != 12 {
		t.Errorf("completed = %d, want 12", got)
	}
	if v.Aggregates.Failed != 0 {
		t.Errorf("failed = %d, want 0", v.Aggregates.Failed)
	}
	if len(v.Jobs) != 12 {
		t.Fatalf("job refs = %d, want 12", len(v.Jobs))
	}
	seenIdx := make(map[int64]bool)
	seenHash := make(map[string]bool)
	for _, ref := range v.Jobs {
		if seenIdx[ref.Index] {
			t.Errorf("index %d expanded twice", ref.Index)
		}
		seenIdx[ref.Index] = true
		if seenHash[ref.SpecHash] {
			t.Errorf("spec hash %s admitted twice in the resumed campaign", ref.SpecHash)
		}
		seenHash[ref.SpecHash] = true
	}
	// The determinism contract across incarnations: a spec that completed
	// before the kill is answered from cache/journal, never re-executed.
	rec.mu.Lock()
	defer rec.mu.Unlock()
	for h, n := range rec.completions {
		if n != 1 {
			t.Errorf("spec %s executed to completion %d times, want 1", h, n)
		}
	}
	if v.Aggregates.ResultDigest == "" {
		t.Error("terminal aggregates missing result_digest")
	}
}

// A warm re-submit of a completed campaign is answered entirely from the
// cache: every job deduped, aggregates still fully populated.
func TestWarmResubmitDedupsAndStillAggregates(t *testing.T) {
	rec := newRecordRun(0)
	c, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := queue.New(queue.Config{Workers: 2, QueueDepth: 64, Cache: c, Run: rec.fn})
	m := New(Config{Sched: sched, Slots: 4})
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); sched.Wait(); m.Wait() }()
	sched.Start(ctx)
	m.Start(ctx)

	spec := stepsGrid("t", 1, 4001, 8)
	cold, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, cold)
	warm, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, warm)

	a := warm.Aggregates()
	if a.Deduped != 8 || a.Completed != 8 {
		t.Errorf("warm campaign deduped=%d completed=%d, want 8/8", a.Deduped, a.Completed)
	}
	if a.PerMode["full"] == nil || a.PerMode["full"].Completed != 8 {
		t.Errorf("deduped jobs did not contribute to per-mode aggregates: %+v", a.PerMode)
	}
	if cold.Aggregates().ResultDigest != a.ResultDigest {
		t.Errorf("warm digest %s != cold digest %s", a.ResultDigest, cold.Aggregates().ResultDigest)
	}
	rec.mu.Lock()
	executions := len(rec.order)
	rec.mu.Unlock()
	if executions != 8 {
		t.Errorf("%d executions across cold+warm, want 8", executions)
	}
}

// Over-budget submissions are rejected with ErrBudget (the API's 429).
func TestBudgetRejection(t *testing.T) {
	rec := newRecordRun(1) // first job completes, the rest hold slots
	sched := queue.New(queue.Config{Workers: 1, QueueDepth: 64, Run: rec.fn})
	m := New(Config{Sched: sched, Budget: 10, Slots: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); sched.Wait(); m.Wait() }()
	sched.Start(ctx)
	m.Start(ctx)

	if _, err := m.Submit(stepsGrid("t", 1, 5001, 11)); err == nil {
		t.Fatal("11-job campaign admitted over a 10-job budget")
	}
	live, err := m.Submit(stepsGrid("t", 1, 5001, 8))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(stepsGrid("t", 1, 6001, 8)); err == nil {
		t.Fatal("second campaign admitted although live remainder exhausts the budget")
	}
	close(rec.gate)
	waitCampaign(t, live)
	// Budget frees as live campaigns drain.
	if _, err := m.Submit(stepsGrid("t", 1, 6001, 8)); err != nil {
		t.Fatalf("post-drain submission rejected: %v", err)
	}
}

// Aggregates computed online match a direct offline pass over the same
// generator (real solver runs, real mass errors and line cuts) — and the
// campaign digest matches the client-side pair digest, the bit-match
// contract the smoke test leans on.
func TestAggregatesMatchDirectRuns(t *testing.T) {
	gs := GeneratorSpec{
		Kind: KindGrid, Base: clamrBase(8),
		Axes: []Axis{{Field: "mode", Values: []any{"mixed", "full"}}},
	}
	gen, err := NewGenerator(gs)
	if err != nil {
		t.Fatal(err)
	}

	// Direct pass: the client-side sweep a campaign replaces.
	type direct struct {
		res  *runner.Result
		hash string
	}
	var runs []direct
	for i := int64(0); i < gen.Total(); i++ {
		spec, err := gen.At(i)
		if err != nil {
			t.Fatal(err)
		}
		res, err := runner.Run(context.Background(), spec, runner.RunOpts{Workers: 2})
		if err != nil {
			t.Fatalf("direct run %d: %v", i, err)
		}
		h, _ := spec.Hash()
		runs = append(runs, direct{res: res, hash: h})
	}
	var pairs []string
	var wantMassMax float64
	massN := 0
	for _, d := range runs {
		pairs = append(pairs, d.hash+" "+d.res.StateHash)
		if d.res.MassError != nil {
			massN++
			if v := math.Abs(*d.res.MassError); v > wantMassMax {
				wantMassMax = v
			}
		}
	}
	wantDelta := maxAbsDiff(runs[0].res.LineCut.Y, runs[1].res.LineCut.Y)

	// Campaign pass over a real scheduler + cache.
	c, err := cache.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	sched := queue.New(queue.Config{Workers: 2, QueueDepth: 16, Cache: c})
	m := New(Config{Sched: sched, Slots: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); sched.Wait(); m.Wait() }()
	sched.Start(ctx)
	m.Start(ctx)
	camp, err := m.Submit(Spec{Generator: gs})
	if err != nil {
		t.Fatal(err)
	}
	waitCampaign(t, camp)

	a := camp.Aggregates()
	if a.Completed != gen.Total() || a.Failed != 0 {
		t.Fatalf("completed=%d failed=%d, want %d/0", a.Completed, a.Failed, gen.Total())
	}
	if got := a.ResultDigest; got != ResultDigest(pairs) {
		t.Errorf("campaign digest %s != direct-pass digest %s", got, ResultDigest(pairs))
	}
	if massN > 0 {
		if a.MassError == nil {
			t.Fatal("aggregates missing mass_error")
		}
		if a.MassError.Count != int64(massN) || a.MassError.Max != wantMassMax {
			t.Errorf("mass_error = %+v, want count=%d max=%g", a.MassError, massN, wantMassMax)
		}
	}
	if a.LineCutDelta == nil {
		t.Fatal("aggregates missing line_cut_delta")
	}
	if a.LineCutDelta.Count != 1 || a.LineCutDelta.Max != wantDelta {
		t.Errorf("line_cut_delta = %+v, want count=1 max=%g", a.LineCutDelta, wantDelta)
	}
	for _, mode := range []string{"mixed", "full"} {
		ms := a.PerMode[mode]
		if ms == nil || ms.Jobs != 1 || ms.Completed != 1 {
			t.Errorf("per_mode[%s] = %+v, want jobs=1 completed=1", mode, ms)
		}
	}
}

// Cancelling a live campaign stops expansion; already-admitted jobs
// finish and the campaign reports cancelled.
func TestCancelStopsExpansion(t *testing.T) {
	rec := newRecordRun(1)
	sched := queue.New(queue.Config{Workers: 1, QueueDepth: 64, Run: rec.fn})
	m := New(Config{Sched: sched, Slots: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer func() { cancel(); sched.Wait(); m.Wait() }()
	sched.Start(ctx)
	m.Start(ctx)

	camp, err := m.Submit(stepsGrid("t", 1, 7001, 20))
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "first completion", func() bool { return camp.Aggregates().Completed >= 1 })
	v, err := m.Cancel(camp.ID())
	if err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusCancelled {
		t.Fatalf("status = %s, want cancelled", v.Status)
	}
	close(rec.gate)
	waitCampaign(t, camp)
	waitFor(t, "expansion to stop", func() bool { return camp.Aggregates().Running == 0 })
	if a := camp.Aggregates(); a.Expanded >= 20 {
		t.Errorf("expanded = %d of 20 after cancel; expansion did not stop", a.Expanded)
	}
	// Idempotent second cancel.
	if v, err := m.Cancel(camp.ID()); err != nil || v.Status != StatusCancelled {
		t.Errorf("re-cancel = %v, %v", v.Status, err)
	}
	if _, err := m.Cancel("camp-999999"); err == nil {
		t.Error("cancel of unknown campaign succeeded")
	}
}
