package campaign

import "repro/internal/obs"

// mgrObs is the manager's pre-resolved instrument set. A nil *mgrObs (no
// registry configured) disables everything through the nil-receiver
// guards, mirroring the scheduler's schedObs.
type mgrObs struct {
	campaigns obs.CounterVec // label: event
	jobs      obs.CounterVec // label: outcome

	active, inflight, backlog obs.Gauge
}

func newMgrObs(r *obs.Registry) *mgrObs {
	return &mgrObs{
		campaigns: r.CounterVec("precisiond_campaigns_total",
			"Campaign lifecycle traffic by event.", "event"),
		jobs: r.CounterVec("precisiond_campaign_jobs_total",
			"Campaign job expansion traffic by outcome (deduped = answered from cache before admission).", "outcome"),
		active: r.Gauge("precisiond_campaigns_active",
			"Campaigns currently expanding or draining."),
		inflight: r.Gauge("precisiond_campaign_inflight",
			"Campaign jobs admitted and not yet terminal (slot usage)."),
		backlog: r.Gauge("precisiond_campaign_backlog",
			"Unexpanded indices across live campaigns."),
	}
}

// campaignEvent counts one campaign lifecycle event:
// submitted | completed | cancelled | rejected | recovered.
func (o *mgrObs) campaignEvent(event string) {
	if o == nil {
		return
	}
	o.campaigns.With(event).Inc()
}

// jobOutcome counts one expanded index's outcome:
// admitted | deduped | recovered | completed | failed | invalid.
func (o *mgrObs) jobOutcome(outcome string) {
	if o == nil {
		return
	}
	o.jobs.With(outcome).Inc()
}

func (o *mgrObs) setActive(n int64) {
	if o == nil {
		return
	}
	o.active.Set(n)
}

func (o *mgrObs) setInflight(n int64) {
	if o == nil {
		return
	}
	o.inflight.Set(n)
}

func (o *mgrObs) setBacklog(n int64) {
	if o == nil {
		return
	}
	o.backlog.Set(n)
}
