package campaign

import (
	"testing"

	"repro/internal/runner"
)

func clamrBase(steps int) runner.ExperimentSpec {
	return runner.ExperimentSpec{
		App: runner.AppCLAMR, Mode: "full", Steps: steps,
		NX: 12, NY: 6, MaxLevel: 1, AMRInterval: 5, LineCutN: 16,
	}
}

func hashSeq(t *testing.T, g *Generator) []string {
	t.Helper()
	out := make([]string, 0, g.Total())
	for i := int64(0); i < g.Total(); i++ {
		spec, err := g.At(i)
		if err != nil {
			t.Fatalf("At(%d): %v", i, err)
		}
		h, err := spec.Hash()
		if err != nil {
			t.Fatalf("hash At(%d): %v", i, err)
		}
		out = append(out, h)
	}
	return out
}

// Lazy-generator determinism: the same campaign spec expands to the same
// ordered spec-hash sequence — across repeat walks of one generator and
// across independently constructed generators (the journal-replay
// contract).
func TestGeneratorDeterministicHashSequence(t *testing.T) {
	cases := map[string]GeneratorSpec{
		"grid": {
			Kind: KindGrid, Base: clamrBase(10),
			Axes: []Axis{
				{Field: "mode", Values: []any{"min", "mixed", "full"}},
				{Field: "steps", Values: []any{10, 20}},
			},
		},
		"ensemble": {
			Kind: KindEnsemble, Base: clamrBase(10), Draws: 16, Seed: 42,
			Axes: []Axis{
				{Field: "mode", Values: []any{"min", "full"}},
				{Field: "steps", Values: []any{10, 20, 30}},
				{Field: "nx", Values: []any{8, 12, 16}},
			},
		},
		"ladder": {Kind: KindLadder, Base: clamrBase(10)},
	}
	for name, gs := range cases {
		t.Run(name, func(t *testing.T) {
			g1, err := NewGenerator(gs)
			if err != nil {
				t.Fatal(err)
			}
			g2, err := NewGenerator(gs)
			if err != nil {
				t.Fatal(err)
			}
			first := hashSeq(t, g1)
			if int64(len(first)) != g1.Total() {
				t.Fatalf("sequence length %d != Total %d", len(first), g1.Total())
			}
			for _, again := range [][]string{hashSeq(t, g1), hashSeq(t, g2)} {
				if len(again) != len(first) {
					t.Fatalf("re-expansion length %d != %d", len(again), len(first))
				}
				for i := range first {
					if first[i] != again[i] {
						t.Fatalf("index %d: hash %s != %s", i, again[i], first[i])
					}
				}
			}
		})
	}
}

// Grid order is the nested-loop order over axes in declaration order,
// axes[0] slowest.
func TestGridExpansionOrder(t *testing.T) {
	g, err := NewGenerator(GeneratorSpec{
		Kind: KindGrid, Base: clamrBase(10),
		Axes: []Axis{
			{Field: "mode", Values: []any{"min", "full"}},
			{Field: "steps", Values: []any{10, 20}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		mode  string
		steps int
	}{{"min", 10}, {"min", 20}, {"full", 10}, {"full", 20}}
	if g.Total() != int64(len(want)) {
		t.Fatalf("Total = %d, want %d", g.Total(), len(want))
	}
	for i, w := range want {
		spec, err := g.At(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if spec.Mode != w.mode || spec.Steps != w.steps {
			t.Errorf("At(%d) = %s/%d, want %s/%d", i, spec.Mode, spec.Steps, w.mode, w.steps)
		}
	}
}

// Ensemble draws are random-access: draw i is identical whether it is
// computed first, last, or alone — O(1) cursor recovery depends on it.
func TestEnsembleRandomAccess(t *testing.T) {
	gs := GeneratorSpec{
		Kind: KindEnsemble, Base: clamrBase(10), Draws: 32, Seed: 7,
		Axes: []Axis{
			{Field: "steps", Values: []any{10, 20, 30, 40}},
			{Field: "nx", Values: []any{8, 12}},
		},
	}
	g, err := NewGenerator(gs)
	if err != nil {
		t.Fatal(err)
	}
	inOrder := hashSeq(t, g)
	for _, i := range []int64{31, 0, 17, 5, 17} {
		spec, err := g.At(i)
		if err != nil {
			t.Fatal(err)
		}
		h, _ := spec.Hash()
		if h != inOrder[i] {
			t.Errorf("out-of-order At(%d) hash differs from in-order expansion", i)
		}
	}
	// A different seed must actually change the draw sequence.
	gs.Seed = 8
	g2, err := NewGenerator(gs)
	if err != nil {
		t.Fatal(err)
	}
	other := hashSeq(t, g2)
	same := 0
	for i := range inOrder {
		if inOrder[i] == other[i] {
			same++
		}
	}
	if same == len(inOrder) {
		t.Error("seed change produced an identical draw sequence")
	}
}

// Ladder defaults to the min→mixed→full escalation rungs.
func TestLadderRungs(t *testing.T) {
	g, err := NewGenerator(GeneratorSpec{Kind: KindLadder, Base: clamrBase(10)})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"min", "mixed", "full"}
	if g.Total() != int64(len(want)) {
		t.Fatalf("Total = %d, want %d", g.Total(), len(want))
	}
	for i, mode := range want {
		spec, err := g.At(int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if spec.Mode != mode {
			t.Errorf("rung %d = %q, want %q", i, spec.Mode, mode)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	base := clamrBase(10)
	bad := map[string]GeneratorSpec{
		"unknown kind":     {Kind: "zigzag", Base: base},
		"unknown field":    {Kind: KindGrid, Base: base, Axes: []Axis{{Field: "warp", Values: []any{1}}}},
		"empty axis":       {Kind: KindGrid, Base: base, Axes: []Axis{{Field: "steps"}}},
		"no draws":         {Kind: KindEnsemble, Base: base, Axes: []Axis{{Field: "steps", Values: []any{1}}}},
		"bad rung":         {Kind: KindLadder, Base: base, Rungs: []string{"octuple"}},
		"fractional int":   {Kind: KindGrid, Base: base, Axes: []Axis{{Field: "steps", Values: []any{1.5}}}},
		"bad first expand": {Kind: KindGrid, Base: base, Axes: []Axis{{Field: "steps", Values: []any{-3}}}},
	}
	for name, gs := range bad {
		if _, err := NewGenerator(gs); err == nil {
			t.Errorf("%s: NewGenerator accepted invalid spec", name)
		}
	}
	if _, err := (Spec{Weight: -2, Generator: GeneratorSpec{Kind: KindLadder, Base: base}}).Normalized(); err == nil {
		t.Error("negative weight accepted")
	}
	norm, err := (Spec{Generator: GeneratorSpec{Kind: KindLadder, Base: base}}).Normalized()
	if err != nil {
		t.Fatal(err)
	}
	if norm.Tenant != "default" || norm.Weight != 1 {
		t.Errorf("defaults = %q/%d, want default/1", norm.Tenant, norm.Weight)
	}
}

// WFQ admits backlogged flows in proportion to their weights.
func TestWFQRatio(t *testing.T) {
	q := newWFQ()
	weightOf := func(id string) float64 {
		if id == "a" {
			return 10
		}
		return 1
	}
	counts := map[string]int{}
	for i := 0; i < 1100; i++ {
		counts[q.pick([]string{"a", "b"}, weightOf)]++
	}
	ratio := float64(counts["a"]) / float64(counts["b"])
	if ratio < 8 || ratio > 12 {
		t.Fatalf("admission ratio a:b = %d:%d (%.1f), want ~10", counts["a"], counts["b"], ratio)
	}
}

// BenchmarkCampaignExpand measures lazy expansion + content addressing —
// the per-spec cost of walking a campaign cursor (the dedup key
// derivation included, since every expanded spec is hashed before
// admission).
func BenchmarkCampaignExpand(b *testing.B) {
	steps := make([]any, 50)
	for i := range steps {
		steps[i] = 10 + i
	}
	nx := make([]any, 10)
	for i := range nx {
		nx[i] = 8 + 2*i
	}
	g, err := NewGenerator(GeneratorSpec{
		Kind: KindGrid, Base: clamrBase(10),
		Axes: []Axis{
			{Field: "mode", Values: []any{"min", "mixed", "full"}},
			{Field: "kernel", Values: []any{"unvectorized", "vectorized"}},
			{Field: "steps", Values: steps},
			{Field: "nx", Values: nx},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		spec, err := g.At(int64(i) % g.Total())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := spec.Hash(); err != nil {
			b.Fatal(err)
		}
	}
}
