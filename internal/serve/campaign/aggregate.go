package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"math"
	"sort"

	"repro/internal/runner"
)

// Aggregates is the running summary a campaign streams over NDJSON: the
// online version of the paper's sweep tables. Counts advance as jobs
// reach terminal states; the statistical fields fold in every completed
// result — including deduped jobs, whose cached payloads are folded in at
// admission so a warm campaign still reports full statistics.
type Aggregates struct {
	Total     int64 `json:"total"`
	Expanded  int64 `json:"expanded"`
	Admitted  int64 `json:"admitted"`
	Running   int64 `json:"running"`
	Completed int64 `json:"completed"`
	Deduped   int64 `json:"deduped"`
	Recovered int64 `json:"recovered,omitempty"`
	Failed    int64 `json:"failed"`

	// MassError summarizes conservation error over completed runs that
	// report one (CLAMR).
	MassError *Quantiles `json:"mass_error,omitempty"`
	// LineCutDelta is the max-abs deviation of each non-full line cut
	// from the full-precision run of the same scenario, when the campaign
	// contains both.
	LineCutDelta *DeltaStats `json:"line_cut_delta,omitempty"`
	// Energy, when any completed result carried energy accounting, sums
	// the fleet's modeled joules and dollars over the campaign — the
	// $/experiment figure the client prints.
	Energy *EnergyStats `json:"energy,omitempty"`
	// PerMode keys on the submitted precision mode.
	PerMode map[string]*ModeStats `json:"per_mode,omitempty"`
	// ResultDigest is the SHA-256 over the sorted "spec_hash state_hash"
	// pairs of completed jobs, set once the campaign is terminal — the
	// bit-match handle smoke tests compare against a client-side sweep.
	ResultDigest string `json:"result_digest,omitempty"`
}

// Quantiles are nearest-rank quantiles over an observed sample.
type Quantiles struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
	Max   float64 `json:"max"`
}

// DeltaStats summarize line-cut deviations from the full-precision run.
type DeltaStats struct {
	Count int64   `json:"count"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
}

// EnergyStats is the campaign's modeled energy/cost roll-up: sums over
// every completed result that carried per-job accounting. Jobs counts the
// contributors, so a partially accounted campaign (some workers registered
// without an arch profile) is visible as Jobs < Completed.
type EnergyStats struct {
	Jobs        int64   `json:"jobs"`
	Joules      float64 `json:"joules"`
	CostDollars float64 `json:"cost_dollars"`
}

// ModeStats is the per-precision slice of the aggregates.
type ModeStats struct {
	Jobs      int64 `json:"jobs"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Escalated int64 `json:"escalated"`
	// EscalationRate is Escalated / Completed — the online per-precision
	// escalation-rate trend.
	EscalationRate float64      `json:"escalation_rate"`
	LineCutDelta   *DeltaStats  `json:"line_cut_delta,omitempty"`
	Energy         *EnergyStats `json:"energy,omitempty"`
}

// agg accumulates the statistical half of Aggregates. Counts live on the
// campaign; agg owns mass-error samples, per-mode tallies and the
// line-cut-vs-full matching. Callers hold the campaign lock.
type agg struct {
	massErrs []float64
	sorted   bool

	modes     map[string]*modeAcc
	scenarios map[string]*scenario

	deltaN   int64
	deltaSum float64
	deltaMax float64

	energyJobs   int64
	joules, cost float64
}

type modeAcc struct {
	jobs, completed, failed, escalated int64
	deltaN                             int64
	deltaSum, deltaMax                 float64
	energyJobs                         int64
	joules, cost                       float64
}

// scenario tracks one problem (spec with mode erased) so non-full line
// cuts can be diffed against the full-precision reference regardless of
// the order results land in.
type scenario struct {
	fullY   []float64
	pending []pendingCut
}

type pendingCut struct {
	mode string
	y    []float64
}

func newAgg() *agg {
	return &agg{modes: make(map[string]*modeAcc), scenarios: make(map[string]*scenario)}
}

func (a *agg) mode(m string) *modeAcc {
	acc, ok := a.modes[m]
	if !ok {
		acc = &modeAcc{}
		a.modes[m] = acc
	}
	return acc
}

// admit records one admitted index under its submitted mode.
func (a *agg) admit(mode string) { a.mode(mode).jobs++ }

// fail records a terminal failure under its submitted mode.
func (a *agg) fail(mode string) { a.mode(mode).failed++ }

// complete folds one completed result in under its submitted mode.
func (a *agg) complete(mode string, res *runner.Result) {
	acc := a.mode(mode)
	acc.completed++
	if len(res.Escalations) > 0 {
		acc.escalated++
	}
	if e := res.Energy; e != nil {
		a.energyJobs++
		a.joules += e.Joules
		a.cost += e.CostDollars
		acc.energyJobs++
		acc.joules += e.Joules
		acc.cost += e.CostDollars
	}
	if res.MassError != nil {
		a.massErrs = append(a.massErrs, math.Abs(*res.MassError))
		a.sorted = false
	}
	if res.LineCut == nil {
		return
	}
	key := scenarioKey(res.Spec)
	sc, ok := a.scenarios[key]
	if !ok {
		sc = &scenario{}
		a.scenarios[key] = sc
	}
	// res.Spec carries the mode that actually ran, so a min job that
	// escalated to full doubles as the scenario's full reference.
	if res.Spec.Mode == "full" && sc.fullY == nil {
		sc.fullY = append([]float64(nil), res.LineCut.Y...)
		for _, p := range sc.pending {
			a.recordDelta(p.mode, maxAbsDiff(p.y, sc.fullY))
		}
		sc.pending = nil
	}
	if mode == "full" {
		return
	}
	if sc.fullY != nil {
		a.recordDelta(mode, maxAbsDiff(res.LineCut.Y, sc.fullY))
	} else {
		sc.pending = append(sc.pending, pendingCut{mode: mode, y: append([]float64(nil), res.LineCut.Y...)})
	}
}

func (a *agg) recordDelta(mode string, d float64) {
	a.deltaN++
	a.deltaSum += d
	if d > a.deltaMax {
		a.deltaMax = d
	}
	acc := a.mode(mode)
	acc.deltaN++
	acc.deltaSum += d
	if d > acc.deltaMax {
		acc.deltaMax = d
	}
}

// stats renders the statistical fields into out.
func (a *agg) stats(out *Aggregates) {
	if n := len(a.massErrs); n > 0 {
		if !a.sorted {
			sort.Float64s(a.massErrs)
			a.sorted = true
		}
		out.MassError = &Quantiles{
			Count: int64(n),
			P50:   rank(a.massErrs, 0.50),
			P90:   rank(a.massErrs, 0.90),
			P99:   rank(a.massErrs, 0.99),
			Max:   a.massErrs[n-1],
		}
	}
	if a.deltaN > 0 {
		out.LineCutDelta = &DeltaStats{Count: a.deltaN, Mean: a.deltaSum / float64(a.deltaN), Max: a.deltaMax}
	}
	if a.energyJobs > 0 {
		out.Energy = &EnergyStats{Jobs: a.energyJobs, Joules: a.joules, CostDollars: a.cost}
	}
	if len(a.modes) > 0 {
		out.PerMode = make(map[string]*ModeStats, len(a.modes))
		for m, acc := range a.modes {
			ms := &ModeStats{
				Jobs:      acc.jobs,
				Completed: acc.completed,
				Failed:    acc.failed,
				Escalated: acc.escalated,
			}
			if acc.completed > 0 {
				ms.EscalationRate = float64(acc.escalated) / float64(acc.completed)
			}
			if acc.deltaN > 0 {
				ms.LineCutDelta = &DeltaStats{Count: acc.deltaN, Mean: acc.deltaSum / float64(acc.deltaN), Max: acc.deltaMax}
			}
			if acc.energyJobs > 0 {
				ms.Energy = &EnergyStats{Jobs: acc.energyJobs, Joules: acc.joules, CostDollars: acc.cost}
			}
			out.PerMode[m] = ms
		}
	}
}

// rank is the nearest-rank quantile of a sorted sample.
func rank(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// maxAbsDiff is the L∞ distance between two cuts; mismatched lengths
// (different line_cut_n on one axis) compare over the shared prefix and
// count the tail as full deviation of the longer cut.
func maxAbsDiff(a, b []float64) float64 {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	var max float64
	for i := 0; i < n; i++ {
		if d := math.Abs(a[i] - b[i]); d > max {
			max = d
		}
	}
	for _, rest := range [][]float64{a[n:], b[n:]} {
		for _, v := range rest {
			if d := math.Abs(v); d > max {
				max = d
			}
		}
	}
	return max
}

// scenarioKey canonicalizes a spec with its precision mode erased: the
// identity under which precision variants of the same problem meet.
func scenarioKey(spec runner.ExperimentSpec) string {
	spec.Mode = ""
	b, err := json.Marshal(spec)
	if err != nil {
		return spec.App
	}
	return string(b)
}

// ResultDigest hashes the sorted "spec_hash state_hash" pairs of a
// campaign's completed jobs — the same bytes `precision-client -grid`
// digests client-side, so equality means bit-identical results.
func ResultDigest(pairs []string) string {
	sort.Strings(pairs)
	h := sha256.New()
	for _, p := range pairs {
		io.WriteString(h, p)
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
