// Package campaign turns parameter sweeps into a first-class server-side
// workload. A campaign spec declares a *generator* — a cartesian grid over
// ExperimentSpec fields, a seeded Monte Carlo ensemble, or a
// precision-refinement ladder — and the Manager expands it lazily: a
// cursor walks indices [0, Total) and materializes one spec at a time, so
// a million-job campaign never exists as a slice in memory.
//
// Every expanded spec is admitted through the scheduler's normal Submit
// path, which means the cache probe and singleflight dedup of
// internal/serve/queue act as dedup-before-admission: a spec whose result
// is already cached (or already in flight) costs one lookup, is counted
// under outcome "deduped", and still contributes its cached result to the
// campaign's running aggregates.
//
// Admission order across live campaigns is weighted-fair (wfq.go): each
// campaign is a flow with a virtual finish time advanced by 1/weight per
// admission, and the pump always picks the eligible flow with the
// smallest finish time. Combined with the scheduler's interactive queue
// reserve (queue.Config.ReserveInteractive), a large campaign cannot
// starve interactive POST /v1/jobs traffic.
//
// Campaign state — the spec, the expansion cursor, terminal status — is
// journaled through the scheduler's WAL (queue.Journal campaign records),
// so Recover resumes a half-expanded campaign under its original ID:
// indices below the journaled cursor are re-admitted through the same
// Submit path (cache hits for completed work, dedup hits onto
// journal-recovered in-flight jobs) and fresh expansion continues from
// the cursor. No spec hash is ever executed twice across incarnations.
package campaign

import (
	"fmt"
	"strings"

	"repro/internal/runner"
)

// Status is a campaign's lifecycle state.
type Status string

// Campaign lifecycle: running → completed | cancelled. A campaign with
// failed jobs still completes; the failure count is in the aggregates.
const (
	StatusRunning   Status = "running"
	StatusCompleted Status = "completed"
	StatusCancelled Status = "cancelled"
)

// Generator kinds.
const (
	KindGrid     = "grid"
	KindEnsemble = "ensemble"
	KindLadder   = "ladder"
)

// Spec is the submitted description of a campaign.
type Spec struct {
	// Tenant scopes fairness quotas; empty normalizes to "default".
	Tenant string `json:"tenant,omitempty"`
	// Weight is the campaign's WFQ share (1..1000, default 1). A weight-10
	// campaign is admitted ten jobs for every one of a weight-1 campaign.
	Weight int `json:"weight,omitempty"`
	// Generator declares how specs are derived from indices.
	Generator GeneratorSpec `json:"generator"`
}

// GeneratorSpec declares a pure index→spec mapping. All three kinds are
// random-access: spec i is computed from (spec, i) alone, which is what
// makes lazy cursors, journal replay and deterministic re-expansion work.
type GeneratorSpec struct {
	// Kind is "grid", "ensemble" or "ladder".
	Kind string `json:"kind"`
	// Base is the template spec every expansion starts from.
	Base runner.ExperimentSpec `json:"base"`
	// Axes lists the fields a grid sweeps (cartesian product, axes[0]
	// slowest) or an ensemble samples from.
	Axes []Axis `json:"axes,omitempty"`
	// Draws is the ensemble size (required for kind "ensemble").
	Draws int `json:"draws,omitempty"`
	// Seed seeds the ensemble's per-index RNG streams.
	Seed int64 `json:"seed,omitempty"`
	// Rungs lists the ladder's precision modes, low to high; empty
	// defaults to ["min", "mixed", "full"].
	Rungs []string `json:"rungs,omitempty"`
}

// Axis is one swept ExperimentSpec field and its candidate values.
// Fields are addressed by their JSON names ("mode", "steps", "nx", ...).
type Axis struct {
	Field  string `json:"field"`
	Values []any  `json:"values"`
}

// Normalized validates the campaign spec and returns its canonical form.
func (s Spec) Normalized() (Spec, error) {
	out := s
	out.Tenant = strings.TrimSpace(s.Tenant)
	if out.Tenant == "" {
		out.Tenant = "default"
	}
	if out.Weight == 0 {
		out.Weight = 1
	}
	if out.Weight < 1 || out.Weight > 1000 {
		return out, fmt.Errorf("campaign: weight must be in [1, 1000], got %d", s.Weight)
	}
	if _, err := NewGenerator(out.Generator); err != nil {
		return out, err
	}
	return out, nil
}

// JobRef is one expanded index's admission record in a campaign view.
type JobRef struct {
	Index    int64  `json:"index"`
	JobID    string `json:"job_id,omitempty"`
	SpecHash string `json:"spec_hash,omitempty"`
	Mode     string `json:"mode,omitempty"`
	// Status is the queue lifecycle state ("queued", "running", "done",
	// "failed") or "invalid" when the expanded spec failed validation.
	Status    string `json:"status"`
	StateHash string `json:"state_hash,omitempty"`
	Deduped   bool   `json:"deduped,omitempty"`
	Recovered bool   `json:"recovered,omitempty"`
	Error     string `json:"error,omitempty"`
}

// View is an immutable snapshot of a campaign for handlers and clients.
type View struct {
	ID         string     `json:"id"`
	Tenant     string     `json:"tenant"`
	Weight     int        `json:"weight"`
	Status     Status     `json:"status"`
	Error      string     `json:"error,omitempty"`
	Spec       Spec       `json:"spec"`
	Aggregates Aggregates `json:"aggregates"`
	// Jobs is populated only when explicitly requested (?jobs=1): one
	// entry per expanded index, in expansion order.
	Jobs []JobRef `json:"jobs,omitempty"`
}
