// Hot tier: a byte-capped LRU of pre-serialized result payloads held in
// memory, in front of the content-addressed disk store.
//
// The tier stores the exact response bytes — never decoded Results — so a
// hot hit is one map lookup and one slice handoff: no file I/O, no JSON
// round-trip, no digest re-verification (the bytes were verified on the
// way in, by Put or by the disk read that filled them). Payloads are
// shared read-only between the tier and its callers; nothing in the serve
// stack mutates a result payload after it is built.
//
// The cap is bytes, not entries: result payloads vary by orders of
// magnitude with grid size, so an entry-count cap would make memory use a
// function of the workload mix. Eviction is strict LRU from the cold end;
// a payload larger than the whole cap is simply not admitted (it would
// evict everything and then be evicted by the next admission anyway).
package cache

import (
	"container/list"
	"sync"
)

// HotTier is a byte-capped LRU of pre-serialized payloads. The zero value
// is not usable; build one with NewHotTier. All methods are safe for
// concurrent use. It is exported so cmd/precision-worker can reuse it as
// the fleet replica store.
type HotTier struct {
	mu       sync.Mutex
	maxBytes int64
	bytes    int64
	ll       *list.List // front = most recently used
	entries  map[string]*list.Element
}

type hotEntry struct {
	key     string
	payload []byte
}

// NewHotTier builds a tier capped at maxBytes of payload (keys and
// bookkeeping are not counted; they are small and proportional). A cap
// <= 0 returns nil — the disabled tier — and every method on a nil
// *HotTier is a safe no-op miss, so callers never branch.
func NewHotTier(maxBytes int64) *HotTier {
	if maxBytes <= 0 {
		return nil
	}
	return &HotTier{
		maxBytes: maxBytes,
		ll:       list.New(),
		entries:  make(map[string]*list.Element),
	}
}

// Get returns the payload stored under key and marks it most recently
// used. The returned slice is shared — callers must treat it as read-only.
func (h *HotTier) Get(key string) ([]byte, bool) {
	if h == nil {
		return nil, false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	el, ok := h.entries[key]
	if !ok {
		return nil, false
	}
	h.ll.MoveToFront(el)
	return el.Value.(*hotEntry).payload, true
}

// Put admits payload under key, evicting from the LRU cold end until the
// tier fits its byte cap. Re-putting a key refreshes its recency and
// replaces its bytes (payloads for one key are content-equal by
// construction, so the swap is invisible). Oversized payloads are ignored.
func (h *HotTier) Put(key string, payload []byte) {
	if h == nil || int64(len(payload)) > h.maxBytes {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if el, ok := h.entries[key]; ok {
		e := el.Value.(*hotEntry)
		h.bytes += int64(len(payload)) - int64(len(e.payload))
		e.payload = payload
		h.ll.MoveToFront(el)
	} else {
		h.entries[key] = h.ll.PushFront(&hotEntry{key: key, payload: payload})
		h.bytes += int64(len(payload))
	}
	for h.bytes > h.maxBytes {
		h.evictOldestLocked()
	}
}

func (h *HotTier) evictOldestLocked() {
	el := h.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*hotEntry)
	h.ll.Remove(el)
	delete(h.entries, e.key)
	h.bytes -= int64(len(e.payload))
}

// Remove drops key from the tier (a corrupt disk entry must not leave a
// stale twin in memory).
func (h *HotTier) Remove(key string) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if el, ok := h.entries[key]; ok {
		e := el.Value.(*hotEntry)
		h.ll.Remove(el)
		delete(h.entries, key)
		h.bytes -= int64(len(e.payload))
	}
}

// Keys lists the resident keys, most recently used first — the fleet
// replica store reports this set on worker heartbeats.
func (h *HotTier) Keys() []string {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	keys := make([]string, 0, len(h.entries))
	for el := h.ll.Front(); el != nil; el = el.Next() {
		keys = append(keys, el.Value.(*hotEntry).key)
	}
	return keys
}

// Len reports the resident entry count.
func (h *HotTier) Len() int {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.entries)
}

// Bytes reports the resident payload bytes.
func (h *HotTier) Bytes() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.bytes
}

// MaxBytes reports the configured cap (0 for the disabled tier).
func (h *HotTier) MaxBytes() int64 {
	if h == nil {
		return 0
	}
	return h.maxBytes
}
