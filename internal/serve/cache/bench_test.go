package cache

import (
	"bytes"
	"testing"
)

// benchPayload approximates a real result payload: a quick-scale sweep
// entry with its embedded trace runs a few tens of KB.
func benchPayload() []byte {
	return bytes.Repeat([]byte(`{"field":0.123456789,"trace":"x"}`), 2048) // ~64 KiB
}

// BenchmarkReadPathColdDisk measures a tier-3 read: hot tier disabled, so
// every Fetch pays the file read plus header and digest verification —
// the per-hit cost of the pre-tiering read path.
func BenchmarkReadPathColdDisk(b *testing.B) {
	c, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	key := testKey("bench")
	if err := c.Put(key, benchPayload()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, src, ok := c.Fetch(key); !ok || src != SourceDisk {
			b.Fatalf("fetch = %q, %v", src, ok)
		}
	}
}

// BenchmarkReadPathHotTier measures a tier-0 read: the same payload served
// from the in-memory LRU — one map lookup, zero I/O, zero re-verification.
func BenchmarkReadPathHotTier(b *testing.B) {
	c, err := Open(b.TempDir(), WithHotBytes(1<<20))
	if err != nil {
		b.Fatal(err)
	}
	key := testKey("bench")
	if err := c.Put(key, benchPayload()); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, src, ok := c.Fetch(key); !ok || src != SourceHot {
			b.Fatalf("fetch = %q, %v", src, ok)
		}
	}
}
