package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/fault"
)

func testKey(seed string) string {
	sum := sha256.Sum256([]byte(seed))
	return hex.EncodeToString(sum[:])
}

func TestPutGetRoundTrip(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("a")
	payload := []byte(`{"result":42}`)
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, %v; want %q", got, ok, payload)
	}
	// Byte-identity on repeated reads.
	again, ok := c.Get(key)
	if !ok || !bytes.Equal(again, got) {
		t.Fatal("second read differs")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Puts != 1 || s.Entries != 1 || s.Bytes == 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRejectsInvalidKeys(t *testing.T) {
	c, _ := Open(t.TempDir())
	for _, key := range []string{"", "short", "../../etc/passwd", testKey("x")[:40] + "Z" + testKey("x")[41:]} {
		if err := c.Put(key, []byte("p")); err == nil {
			t.Errorf("Put accepted key %q", key)
		}
		if _, ok := c.Get(key); ok {
			t.Errorf("Get accepted key %q", key)
		}
	}
}

func TestCorruptEntriesAreDroppedAsMisses(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	key := testKey("victim")
	if err := c.Put(key, []byte("precious bytes")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key[:2], key+".res")

	corruptions := []func(t *testing.T){
		func(t *testing.T) { // flipped payload byte
			data, _ := os.ReadFile(path)
			data[len(data)-1] ^= 0xff
			os.WriteFile(path, data, 0o644)
		},
		func(t *testing.T) { // truncation
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:len(data)/2], 0o644)
		},
		func(t *testing.T) { // wrong key in header
			other := testKey("other")
			payload := []byte("precious bytes")
			sum := sha256.Sum256(payload)
			os.WriteFile(path, []byte(fmt.Sprintf("PCACHE1 %s %s\n%s", other, hex.EncodeToString(sum[:]), payload)), 0o644)
		},
		func(t *testing.T) { // not an entry at all
			os.WriteFile(path, []byte("garbage with no newline"), 0o644)
		},
	}
	for i, corrupt := range corruptions {
		if err := c.Put(key, []byte("precious bytes")); err != nil {
			t.Fatal(err)
		}
		corrupt(t)
		if _, ok := c.Get(key); ok {
			t.Fatalf("corruption %d served", i)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("corruption %d: entry not dropped", i)
		}
		// The bad bytes are quarantined beside the entry, not destroyed.
		if _, err := os.Stat(path + ".corrupt"); err != nil {
			t.Fatalf("corruption %d: no quarantine file: %v", i, err)
		}
	}
	s := c.Stats()
	if s.CorruptDropped != uint64(len(corruptions)) {
		t.Errorf("CorruptDropped = %d, want %d", s.CorruptDropped, len(corruptions))
	}
	// Repeated corruptions of one key quarantine over the same .corrupt
	// name, so exactly one quarantined file remains.
	if s.QuarantinedFiles != 1 {
		t.Errorf("QuarantinedFiles = %d, want 1", s.QuarantinedFiles)
	}
	// A fresh put of the key works and serves again: quarantine cleared
	// the lookup path.
	if err := c.Put(key, []byte("precious bytes")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("re-put after quarantine not served")
	}
}

func TestPutFaultInjection(t *testing.T) {
	c, _ := Open(t.TempDir())
	if err := fault.Arm("cache.put=n:1"); err != nil {
		t.Fatal(err)
	}
	defer fault.Disarm()
	key := testKey("faulty")
	err := c.Put(key, []byte("payload"))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("Put under armed fault = %v, want ErrInjected", err)
	}
	if _, ok := c.Get(key); ok {
		t.Fatal("failed put left a readable entry")
	}
	// n:1 trips once; the retry lands.
	if err := c.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(key); !ok {
		t.Fatal("post-fault put not served")
	}
	if s := c.Stats(); s.Errors != 1 {
		t.Errorf("Errors = %d, want 1", s.Errors)
	}
}

func TestWriteProbe(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	if err := c.WriteProbe(); err != nil {
		t.Fatalf("probe on healthy dir: %v", err)
	}
	// An unwritable cache dir must degrade the probe.
	if err := os.Chmod(dir, 0o555); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o755)
	if os.Getuid() == 0 {
		t.Skip("running as root: chmod does not revoke write access")
	}
	if err := c.WriteProbe(); err == nil {
		t.Fatal("probe succeeded on read-only dir")
	}
}

func TestTempFilesAreInvisible(t *testing.T) {
	dir := t.TempDir()
	c, _ := Open(dir)
	key := testKey("t")
	// Simulate a crash mid-write: a temp file but no rename.
	sub := filepath.Join(dir, key[:2])
	os.MkdirAll(sub, 0o755)
	os.WriteFile(filepath.Join(sub, "."+key+".tmp123"), []byte("partial"), 0o644)
	if _, ok := c.Get(key); ok {
		t.Fatal("temp file served as entry")
	}
	if s := c.Stats(); s.Entries != 0 {
		t.Errorf("temp file counted as entry: %+v", s)
	}
}

func TestConcurrentPutGet(t *testing.T) {
	c, _ := Open(t.TempDir())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := testKey(fmt.Sprintf("k%d", i%4)) // overlapping keys
			payload := []byte(fmt.Sprintf("payload-%d", i%4))
			for j := 0; j < 50; j++ {
				if err := c.Put(key, payload); err != nil {
					t.Error(err)
					return
				}
				if got, ok := c.Get(key); ok && !bytes.Equal(got, payload) {
					t.Errorf("torn read: %q", got)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if s := c.Stats(); s.Entries != 4 {
		t.Errorf("entries = %d, want 4", s.Entries)
	}
}
