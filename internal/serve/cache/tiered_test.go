package cache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func digestOf(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// TestSingleflightCollapsesStampede holds the flight leader inside its fill
// (via a blocking remote hook) while a stampede of readers piles onto the
// same uncached key, then releases it and checks exactly one below-hot read
// happened: one remote probe, one disk read, everyone else served from
// memory with byte-identical payloads.
func TestSingleflightCollapsesStampede(t *testing.T) {
	dir := t.TempDir()
	writer, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("stampede")
	payload := bytes.Repeat([]byte("stampede-payload "), 64)
	if err := writer.Put(key, payload); err != nil {
		t.Fatal(err)
	}

	c, err := Open(dir, WithHotBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	// Make the key remote-eligible so the hook below can gate the leader.
	c.recordDigest(key, digestOf(payload))
	entered := make(chan struct{})
	release := make(chan struct{})
	var remoteCalls atomic.Int32
	c.SetRemote(func(k, want string) ([]byte, bool) {
		if remoteCalls.Add(1) == 1 {
			close(entered)
		}
		<-release
		return nil, false // fall through to the disk tier
	})

	const stampede = 16
	results := make([][]byte, stampede)
	var wg sync.WaitGroup
	fetch := func(i int) {
		defer wg.Done()
		got, _, ok := c.Fetch(key)
		if !ok {
			t.Errorf("reader %d: miss", i)
			return
		}
		results[i] = got
	}

	wg.Add(1)
	go fetch(0)
	<-entered // the leader is inside its fill; the flight is registered
	for i := 1; i < stampede; i++ {
		wg.Add(1)
		go fetch(i)
	}
	time.Sleep(50 * time.Millisecond) // let the stampede join the flight
	close(release)
	wg.Wait()

	for i, got := range results {
		if !bytes.Equal(got, payload) {
			t.Fatalf("reader %d: payload differs", i)
		}
	}
	s := c.Stats()
	if remoteCalls.Load() != 1 {
		t.Errorf("remote probed %d times, want 1", remoteCalls.Load())
	}
	if s.DiskHits != 1 {
		t.Errorf("DiskHits = %d, want exactly 1", s.DiskHits)
	}
	if s.HotHits != stampede-1 {
		t.Errorf("HotHits = %d, want %d (flight followers)", s.HotHits, stampede-1)
	}
	if s.Misses != 0 {
		t.Errorf("Misses = %d, want 0", s.Misses)
	}
	// The fill populated the hot tier: one more read stays in memory.
	if _, src, ok := c.Fetch(key); !ok || src != SourceHot {
		t.Errorf("post-fill Fetch source = %q, %v; want hot hit", src, ok)
	}
}

func TestHotTierEvictionUnderByteCap(t *testing.T) {
	h := NewHotTier(100)
	pay := func(c byte) []byte { return bytes.Repeat([]byte{c}, 40) }
	h.Put(testKey("a"), pay('a'))
	h.Put(testKey("b"), pay('b'))
	if h.Len() != 2 || h.Bytes() != 80 {
		t.Fatalf("len=%d bytes=%d, want 2/80", h.Len(), h.Bytes())
	}
	// Touch "a" so "b" is the LRU victim when "c" arrives.
	if _, ok := h.Get(testKey("a")); !ok {
		t.Fatal("a missing")
	}
	h.Put(testKey("c"), pay('c'))
	if h.Bytes() > h.MaxBytes() {
		t.Fatalf("bytes=%d over cap %d", h.Bytes(), h.MaxBytes())
	}
	if _, ok := h.Get(testKey("b")); ok {
		t.Fatal("LRU victim b still resident")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := h.Get(testKey(k)); !ok {
			t.Fatalf("%s evicted, want resident", k)
		}
	}
	// A payload larger than the whole cap is not admitted and evicts nothing.
	h.Put(testKey("huge"), bytes.Repeat([]byte{'h'}, 101))
	if _, ok := h.Get(testKey("huge")); ok {
		t.Fatal("oversized payload admitted")
	}
	if h.Len() != 2 {
		t.Fatalf("oversized put disturbed residents: len=%d", h.Len())
	}
	// Re-putting a key refreshes recency instead of double-counting bytes.
	h.Put(testKey("a"), pay('a'))
	if h.Bytes() != 80 {
		t.Fatalf("re-put double-counted: bytes=%d", h.Bytes())
	}
}

func TestCacheEvictsThroughWriteThrough(t *testing.T) {
	c, err := Open(t.TempDir(), WithHotBytes(1024))
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 400)
	keys := []string{testKey("1"), testKey("2"), testKey("3")}
	for _, k := range keys {
		if err := c.Put(k, payload); err != nil {
			t.Fatal(err)
		}
	}
	s := c.Stats()
	if s.HotBytes > s.HotMaxBytes {
		t.Fatalf("hot tier over cap: %d > %d", s.HotBytes, s.HotMaxBytes)
	}
	if s.HotEntries != 2 {
		t.Fatalf("HotEntries = %d, want 2 (one evicted)", s.HotEntries)
	}
	// The evicted key is still a hit — from disk — and refills the tier.
	if _, src, ok := c.Fetch(keys[0]); !ok || src != SourceDisk {
		t.Fatalf("evicted key Fetch = %q, %v; want disk hit", src, ok)
	}
	if _, src, ok := c.Fetch(keys[0]); !ok || src != SourceHot {
		t.Fatalf("refilled key Fetch = %q, %v; want hot hit", src, ok)
	}
}

// TestCorruptEntryDoesNotPoisonHotTier corrupts the disk entry behind the
// hot tier's back and checks the degradation contract: the read is a miss,
// the entry is quarantined, and no stale or corrupt bytes remain in memory.
func TestCorruptEntryDoesNotPoisonHotTier(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, WithHotBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("poison")
	payload := []byte("good bytes")
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	// Simulate an eviction so the next read must go to disk.
	c.Hot().Remove(key)

	path := filepath.Join(dir, key[:2], key+".res")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	if _, src, ok := c.Fetch(key); ok || src != SourceMiss {
		t.Fatalf("corrupt entry served (source %q)", src)
	}
	if c.Hot().Len() != 0 {
		t.Fatal("corrupt read left bytes in the hot tier")
	}
	// Degraded to a miss, not an outage: Fetch again is still a clean miss
	// (the entry was quarantined), and a fresh put serves hot again.
	if _, _, ok := c.Fetch(key); ok {
		t.Fatal("quarantined entry served")
	}
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	got, src, ok := c.Fetch(key)
	if !ok || src != SourceHot || !bytes.Equal(got, payload) {
		t.Fatalf("re-put Fetch = %q, %q, %v", got, src, ok)
	}
	if s := c.Stats(); s.CorruptDropped != 1 {
		t.Errorf("CorruptDropped = %d, want 1", s.CorruptDropped)
	}
}

// TestRemoteTierServesVerifiedBytes deletes the local disk entry and checks
// a digest-matching replica payload is served as SourceRemote — and that it
// is byte-identical to what the disk held.
func TestRemoteTierServesVerifiedBytes(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, WithHotBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("replica")
	payload := []byte(`{"replicated":true}`)
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	c.Hot().Remove(key)
	if err := os.Remove(filepath.Join(dir, key[:2], key+".res")); err != nil {
		t.Fatal(err)
	}
	c.SetRemote(func(k, want string) ([]byte, bool) {
		if k != key || want != digestOf(payload) {
			t.Errorf("remote asked for %q digest %q", k, want)
		}
		return payload, true
	})
	got, src, ok := c.Fetch(key)
	if !ok || src != SourceRemote || !bytes.Equal(got, payload) {
		t.Fatalf("Fetch = %q, %q, %v; want remote hit", got, src, ok)
	}
	if s := c.Stats(); s.RemoteHits != 1 || s.DiskHits != 0 {
		t.Errorf("stats = %+v, want one remote hit, zero disk", s)
	}
	// The replica fill populated the hot tier.
	if _, src, ok := c.Fetch(key); !ok || src != SourceHot {
		t.Errorf("second Fetch source = %q, %v; want hot", src, ok)
	}
}

// TestRemoteTierRejectsWrongBytes feeds the remote hook a payload that does
// not hash to the recorded digest: it must be rejected, never served, and
// the read must fall through to the (correct) disk entry.
func TestRemoteTierRejectsWrongBytes(t *testing.T) {
	dir := t.TempDir()
	c, err := Open(dir, WithHotBytes(1<<20))
	if err != nil {
		t.Fatal(err)
	}
	key := testKey("liar")
	payload := []byte("the truth")
	if err := c.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	c.Hot().Remove(key)
	c.SetRemote(func(k, want string) ([]byte, bool) {
		return []byte("a convincing lie"), true
	})
	got, src, ok := c.Fetch(key)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("Fetch = %q, %v; want the disk payload", got, ok)
	}
	if src != SourceDisk {
		t.Fatalf("source = %q, want disk fallthrough", src)
	}
	s := c.Stats()
	if s.RemoteRejected != 1 {
		t.Errorf("RemoteRejected = %d, want 1", s.RemoteRejected)
	}
	if s.RemoteHits != 0 {
		t.Errorf("RemoteHits = %d, want 0", s.RemoteHits)
	}
}

// TestRemoteTierSkippedWithoutDigest: a key this process has never stored
// or verified-read is not remote-eligible at all.
func TestRemoteTierSkippedWithoutDigest(t *testing.T) {
	dir := t.TempDir()
	writer, _ := Open(dir)
	key := testKey("unknown-digest")
	payload := []byte("written by another process")
	if err := writer.Put(key, payload); err != nil {
		t.Fatal(err)
	}
	c, _ := Open(dir, WithHotBytes(1<<20))
	c.SetRemote(func(k, want string) ([]byte, bool) {
		t.Error("remote consulted for a digest-unknown key")
		return nil, false
	})
	got, src, ok := c.Fetch(key)
	if !ok || src != SourceDisk || !bytes.Equal(got, payload) {
		t.Fatalf("Fetch = %q, %q, %v; want disk hit", got, src, ok)
	}
	// The verified disk read recorded the digest: the key is now eligible.
	if _, ok := c.Digest(key); !ok {
		t.Error("disk read did not record the payload digest")
	}
}

func TestFetchSourcesConcurrently(t *testing.T) {
	// A broad race exerciser: concurrent Put/Fetch across overlapping keys
	// with a small hot tier forcing constant eviction and refill.
	c, err := Open(t.TempDir(), WithHotBytes(2048))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := testKey(fmt.Sprintf("k%d", i%3))
			payload := bytes.Repeat([]byte{byte('a' + i%3)}, 700)
			for j := 0; j < 40; j++ {
				if err := c.Put(key, payload); err != nil {
					t.Error(err)
					return
				}
				if got, _, ok := c.Fetch(key); ok && !bytes.Equal(got, payload) {
					t.Errorf("torn read on %s", key[:8])
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
