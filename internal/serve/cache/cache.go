// Package cache is the experiment service's content-addressed result
// store: spec hash → serialized result payload, behind a tiered read path
// (DESIGN.md §11).
//
// Tier 0 — hot: an optional byte-capped in-memory LRU (WithHotBytes)
// holding the pre-serialized response bytes. A hot hit is one map lookup;
// no file I/O, no JSON round-trip.
//
// Tier 2 — remote: an optional fleet hook (SetRemote) consulted on a hot
// miss, before the local disk. Fleet workers replicate payloads they
// computed; fetching from a replica offloads this node's disk, so
// aggregate read throughput scales with fleet size. A remote payload is
// admitted only if it hashes to the digest this cache recorded when the
// payload was stored — bit-identity is enforced locally, never trusted to
// the network.
//
// Tier 3 — disk: the durable store. Entries live at <dir>/<h[:2]>/<h>.res
// (two-level fan-out so huge sweeps do not produce one enormous
// directory). Each file is a one-line header — format tag, key, payload
// SHA-256 — followed by the payload bytes. Writes go through a temp file
// in the same directory plus rename, so a concurrent reader sees either
// the whole entry or none of it, and a crash mid-write leaves only a temp
// file that is ignored. Reads verify the header and payload digest;
// anything torn, truncated or foreign is quarantined (renamed to
// <entry>.corrupt, preserving the evidence for inspection) and reported
// as a miss (the job simply recomputes), never as an error — a corrupt
// cache must degrade to a cold cache, not an outage. A corrupt entry
// never reaches the hot tier: only bytes that passed digest verification
// are admitted upward.
//
// Fills below the hot tier are collapsed by a per-key singleflight: a
// stampede of concurrent readers on one uncached key performs exactly one
// remote-or-disk read; the followers are handed the leader's verified
// bytes from memory (and counted as hot hits — they were served at
// memory speed).
//
// (Tier 1 of the read path — ETag/If-None-Match revalidation — lives in
// internal/serve/api; it short-circuits before any cache call.)
//
// The fault point "cache.put" (internal/fault) injects put failures for
// chaos testing; an injected failure costs a recompute, exactly like a
// real disk error.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/obs"
)

// headerTag identifies (and versions) the entry encoding.
const headerTag = "PCACHE1"

// digestIndexCap bounds the in-memory key→digest index that gates remote
// reads. At ~100 bytes per entry the cap is a few MiB; when it fills the
// index is reset and repopulates from subsequent puts and disk reads (a
// reset only costs remote-tier eligibility until a key is re-seen).
const digestIndexCap = 1 << 16

// Source reports which tier served a Fetch.
type Source string

// Fetch sources. A singleflight follower is reported (and counted) as
// SourceHot: it was served verified bytes from memory, whatever tier the
// flight leader read.
const (
	SourceHot    Source = "hot"
	SourceRemote Source = "remote"
	SourceDisk   Source = "disk"
	SourceMiss   Source = ""
)

// RemoteFetch retrieves the payload for key from a fleet replica, or
// reports false. wantDigest is the hex SHA-256 the payload must hash to;
// implementations may use it to pick or pre-check a source, but the cache
// re-verifies the returned bytes regardless, so a buggy or malicious
// replica can only cause a fallthrough to disk, never a wrong payload.
type RemoteFetch func(key, wantDigest string) ([]byte, bool)

// Cache is a content-addressed store rooted at one directory, fronted by
// the optional hot and remote tiers. All methods are safe for concurrent
// use; the atomic counters feed /v1/cache/stats.
type Cache struct {
	dir string
	hot *HotTier // nil = tier disabled

	// remote is the tier-2 hook (atomic: wired after Open, once the fleet
	// coordinator exists).
	remote atomic.Value // RemoteFetch

	// digests records the payload SHA-256 for every key this process has
	// stored or verified-read — the local ground truth a remote payload
	// must match. Keys absent here are simply not remote-eligible.
	digestMu sync.Mutex
	digests  map[string]string

	// flights collapses concurrent below-hot fills per key.
	flightMu sync.Mutex
	flights  map[string]*flight

	hotHits, remoteHits, diskHits atomic.Uint64
	misses, puts                  atomic.Uint64
	remoteRejected                atomic.Uint64
	corruptDropped                atomic.Uint64
	errors                        atomic.Uint64
	// lastErr retains the most recent put failure or corruption notice for
	// /healthz forensics; it is never cleared.
	lastErr atomic.Value // string
}

// flight is one in-progress below-hot fill; followers wait on done and
// share the leader's outcome.
type flight struct {
	done    chan struct{}
	payload []byte
	ok      bool
}

// Option adjusts a Cache at Open.
type Option func(*Cache)

// WithHotBytes fronts the disk store with an in-memory hot tier capped at
// maxBytes of pre-serialized payload (<= 0 leaves the tier disabled).
func WithHotBytes(maxBytes int64) Option {
	return func(c *Cache) { c.hot = NewHotTier(maxBytes) }
}

// recordErr counts an error, retains its message, and returns it.
func (c *Cache) recordErr(err error) error {
	c.errors.Add(1)
	c.lastErr.Store(err.Error())
	return err
}

// LastError returns the most recent put failure or corruption notice
// ("" if the cache has never misbehaved).
func (c *Cache) LastError() string {
	if v, ok := c.lastErr.Load().(string); ok {
		return v
	}
	return ""
}

// RegisterMetrics contributes the cache's traffic counters to a metrics
// registry as scrape-time samples (the atomics are the source of truth;
// mirroring them continuously would just race the mirror). "hit" is kept
// as the sum of the per-tier hit events for dashboard compatibility.
func (c *Cache) RegisterMetrics(r *obs.Registry) {
	r.Collect(func(emit func(obs.Sample)) {
		const name = "precisiond_cache_events_total"
		const help = "Result-cache traffic by event (mirrors /v1/cache/stats)."
		hot, remote, disk := c.hotHits.Load(), c.remoteHits.Load(), c.diskHits.Load()
		for _, e := range []struct {
			event string
			v     uint64
		}{
			{"hit", hot + remote + disk},
			{"hot_hit", hot},
			{"remote_hit", remote},
			{"disk_hit", disk},
			{"miss", c.misses.Load()},
			{"put", c.puts.Load()},
			{"remote_rejected", c.remoteRejected.Load()},
			{"corrupt_dropped", c.corruptDropped.Load()},
			{"error", c.errors.Load()},
		} {
			emit(obs.Sample{
				Name: name, Help: help, Type: "counter",
				Value: float64(e.v), LabelPairs: []string{"event", e.event},
			})
		}
		if c.hot != nil {
			emit(obs.Sample{
				Name: "precisiond_cache_hot_bytes",
				Help: "Pre-serialized payload bytes resident in the hot tier.",
				Type: "gauge", Value: float64(c.hot.Bytes()),
			})
			emit(obs.Sample{
				Name: "precisiond_cache_hot_entries",
				Help: "Payloads resident in the hot tier.",
				Type: "gauge", Value: float64(c.hot.Len()),
			})
		}
	})
}

// Open roots a cache at dir, creating it if needed.
func Open(dir string, opts ...Option) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: open %s: %w", dir, err)
	}
	c := &Cache{
		dir:     dir,
		digests: make(map[string]string),
		flights: make(map[string]*flight),
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// SetRemote wires the tier-2 fleet hook (nil-safe to never call). Wired
// after Open because the fleet coordinator is built later in the daemon's
// startup; reads before the call simply skip the remote tier.
func (c *Cache) SetRemote(fetch RemoteFetch) {
	if fetch != nil {
		c.remote.Store(fetch)
	}
}

// Hot exposes the hot tier (nil when disabled) — stats and tests.
func (c *Cache) Hot() *HotTier { return c.hot }

// Digest returns the recorded payload SHA-256 for key, if this process
// has stored or verified-read it.
func (c *Cache) Digest(key string) (string, bool) {
	c.digestMu.Lock()
	defer c.digestMu.Unlock()
	d, ok := c.digests[key]
	return d, ok
}

// recordDigest remembers a verified payload digest, resetting the index
// at its cap (see digestIndexCap).
func (c *Cache) recordDigest(key, digest string) {
	c.digestMu.Lock()
	if len(c.digests) >= digestIndexCap {
		c.digests = make(map[string]string)
	}
	c.digests[key] = digest
	c.digestMu.Unlock()
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// validKey reports whether key looks like a lowercase hex content hash —
// the only keys the cache stores, and incidentally a guard against path
// traversal in handler-supplied keys.
func validKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".res")
}

// Put stores payload under key, atomically. Re-putting an existing key
// rewrites it (the payloads are content-equal by construction, so last
// writer wins is harmless).
func (c *Cache) Put(key string, payload []byte) error {
	if !validKey(key) {
		return c.recordErr(fmt.Errorf("cache: invalid key %q", key))
	}
	if err := fault.Error("cache.put"); err != nil {
		return c.recordErr(fmt.Errorf("cache: put %s: %w", key, err))
	}
	dir := filepath.Join(c.dir, key[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return c.recordErr(fmt.Errorf("cache: put %s: %w", key, err))
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %s\n", headerTag, key, hex.EncodeToString(sum[:]))

	tmp, err := os.CreateTemp(dir, "."+key+".tmp*")
	if err != nil {
		return c.recordErr(fmt.Errorf("cache: put %s: %w", key, err))
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.WriteString(header); err == nil {
		_, err = tmp.Write(payload)
		if err == nil {
			err = tmp.Sync()
		}
	} else {
		tmp.Close()
		return c.recordErr(fmt.Errorf("cache: put %s: %w", key, err))
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return c.recordErr(fmt.Errorf("cache: put %s: %w", key, err))
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		return c.recordErr(fmt.Errorf("cache: put %s: %w", key, err))
	}
	c.puts.Add(1)
	// Write-through population: a just-completed job is the likeliest next
	// read (sweep replays, duplicate submissions), so the response bytes go
	// hot immediately and the digest becomes the remote-tier ground truth.
	c.recordDigest(key, hex.EncodeToString(sum[:]))
	c.hot.Put(key, payload)
	return nil
}

// Get returns the payload stored under key (see Fetch).
func (c *Cache) Get(key string) ([]byte, bool) {
	payload, _, ok := c.Fetch(key)
	return payload, ok
}

// Fetch returns the payload stored under key and the tier that served it:
// hot memory, a verified fleet replica, or the local disk — in that
// order, each tier falling back to the next. A missing, torn or corrupt
// entry reports (nil, SourceMiss, false); corrupt disk entries are
// quarantined out of the lookup path so they are recomputed rather than
// rediscovered on every request, while the bad bytes stay on disk for
// inspection. Returned payloads are shared read-only slices.
func (c *Cache) Fetch(key string) ([]byte, Source, bool) {
	if !validKey(key) {
		c.misses.Add(1)
		return nil, SourceMiss, false
	}
	if payload, ok := c.hot.Get(key); ok {
		c.hotHits.Add(1)
		return payload, SourceHot, true
	}

	// Below the hot tier, collapse the stampede: one flight per key does
	// the remote-or-disk read; followers share its verified bytes.
	c.flightMu.Lock()
	if f, inFlight := c.flights[key]; inFlight {
		c.flightMu.Unlock()
		<-f.done
		if !f.ok {
			c.misses.Add(1)
			return nil, SourceMiss, false
		}
		c.hotHits.Add(1) // served from memory, whatever the leader read
		return f.payload, SourceHot, true
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.flightMu.Unlock()

	payload, src, ok := c.fill(key)
	f.payload, f.ok = payload, ok
	c.flightMu.Lock()
	delete(c.flights, key)
	c.flightMu.Unlock()
	close(f.done)
	return payload, src, ok
}

// fill reads one key from the remote tier or disk (the flight leader's
// path) and populates the hot tier on success.
func (c *Cache) fill(key string) ([]byte, Source, bool) {
	if payload, ok := c.fetchRemote(key); ok {
		c.remoteHits.Add(1)
		c.hot.Put(key, payload)
		return payload, SourceRemote, true
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, SourceMiss, false
	}
	payload, ok := c.verify(key, data)
	if !ok {
		// The corrupt bytes never reach the hot tier — only the verified
		// path above admits payloads upward — so a bad disk entry degrades
		// to a miss without poisoning memory.
		c.corruptDropped.Add(1)
		c.misses.Add(1)
		c.lastErr.Store("corrupt entry quarantined: " + key)
		c.quarantine(key)
		return nil, SourceMiss, false
	}
	c.diskHits.Add(1)
	sum := sha256.Sum256(payload)
	c.recordDigest(key, hex.EncodeToString(sum[:]))
	c.hot.Put(key, payload)
	return payload, SourceDisk, true
}

// fetchRemote tries the fleet tier: only keys whose payload digest this
// process has locally recorded are eligible (bit-identity is never
// delegated), and the returned bytes must hash to that digest.
func (c *Cache) fetchRemote(key string) ([]byte, bool) {
	fetch, _ := c.remote.Load().(RemoteFetch)
	if fetch == nil {
		return nil, false
	}
	want, ok := c.Digest(key)
	if !ok {
		return nil, false
	}
	payload, ok := fetch(key, want)
	if !ok {
		return nil, false
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != want {
		c.remoteRejected.Add(1)
		c.lastErr.Store("remote replica payload rejected: " + key)
		return nil, false
	}
	return payload, true
}

// quarantine moves a corrupt entry aside to <entry>.corrupt — a rename,
// so the lookup path is cleared atomically. If the rename itself fails
// (unwritable dir) the entry is deleted outright; a corrupt file must
// never stay where Get can keep finding it.
func (c *Cache) quarantine(key string) {
	p := c.path(key)
	if err := os.Rename(p, p+".corrupt"); err != nil {
		os.Remove(p)
	}
}

// WriteProbe verifies the cache directory accepts writes — the /healthz
// degraded signal. It creates and removes a throwaway file; any failure is
// returned verbatim.
func (c *Cache) WriteProbe() error {
	f, err := os.CreateTemp(c.dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("write probe: %w", err)
	}
	name := f.Name()
	_, werr := f.WriteString("probe\n")
	cerr := f.Close()
	os.Remove(name)
	if werr != nil {
		return fmt.Errorf("write probe: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("write probe: %w", cerr)
	}
	return nil
}

// verify checks the entry header and payload digest.
func (c *Cache) verify(key string, data []byte) ([]byte, bool) {
	nl := strings.IndexByte(string(data[:min(len(data), 256)]), '\n')
	if nl < 0 {
		return nil, false
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 || fields[0] != headerTag || fields[1] != key {
		return nil, false
	}
	payload := data[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[2] {
		return nil, false
	}
	return payload, true
}

// Stats is a point-in-time snapshot of the cache's traffic and contents.
// Hits is kept as the sum of the per-tier hit counters so pre-tiering
// consumers keep working; the split fields say where each hit was served.
type Stats struct {
	Hits uint64 `json:"hits"` // hot + remote + disk (compatibility sum)
	// HotHits counts reads served from the in-memory tier, including
	// singleflight followers handed the leader's bytes.
	HotHits uint64 `json:"hot_hits"`
	// RemoteHits counts reads served by a fleet replica; RemoteRejected
	// counts replica payloads that failed local digest verification.
	RemoteHits     uint64 `json:"remote_hits"`
	DiskHits       uint64 `json:"disk_hits"`
	Misses         uint64 `json:"misses"`
	Puts           uint64 `json:"puts"`
	RemoteRejected uint64 `json:"remote_rejected"`
	CorruptDropped uint64 `json:"corrupt_dropped"`
	Errors         uint64 `json:"errors"`
	// HotEntries/HotBytes/HotMaxBytes describe the hot tier (zero when
	// disabled).
	HotEntries  int   `json:"hot_entries"`
	HotBytes    int64 `json:"hot_bytes"`
	HotMaxBytes int64 `json:"hot_max_bytes"`
	// Entries, Bytes and QuarantinedFiles are counted by walking the store
	// at snapshot time; quarantined files are corrupt entries set aside as
	// <entry>.corrupt by Get.
	Entries          int   `json:"entries"`
	Bytes            int64 `json:"bytes"`
	QuarantinedFiles int   `json:"quarantined_files"`
}

// Stats snapshots the counters and walks the store for entry counts.
func (c *Cache) Stats() Stats {
	s := Stats{
		HotHits:        c.hotHits.Load(),
		RemoteHits:     c.remoteHits.Load(),
		DiskHits:       c.diskHits.Load(),
		Misses:         c.misses.Load(),
		Puts:           c.puts.Load(),
		RemoteRejected: c.remoteRejected.Load(),
		CorruptDropped: c.corruptDropped.Load(),
		Errors:         c.errors.Load(),
		HotEntries:     c.hot.Len(),
		HotBytes:       c.hot.Bytes(),
		HotMaxBytes:    c.hot.MaxBytes(),
	}
	s.Hits = s.HotHits + s.RemoteHits + s.DiskHits
	filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		switch {
		case strings.HasSuffix(path, ".res"):
			if info, err := d.Info(); err == nil {
				s.Entries++
				s.Bytes += info.Size()
			}
		case strings.HasSuffix(path, ".corrupt"):
			s.QuarantinedFiles++
		}
		return nil
	})
	return s
}
