// Package cache is the experiment service's content-addressed result
// store: spec hash → serialized result, on disk.
//
// Entries live at <dir>/<h[:2]>/<h>.res (two-level fan-out so huge sweeps
// do not produce one enormous directory). Each file is a one-line header
// — format tag, key, payload SHA-256 — followed by the payload bytes.
// Writes go through a temp file in the same directory plus rename, so a
// concurrent reader sees either the whole entry or none of it, and a crash
// mid-write leaves only a temp file that is ignored. Reads verify the
// header and payload digest; anything torn, truncated or foreign is
// quarantined (renamed to <entry>.corrupt, preserving the evidence for
// inspection) and reported as a miss (the job simply recomputes), never as
// an error — a corrupt cache must degrade to a cold cache, not an outage.
//
// The fault point "cache.put" (internal/fault) injects put failures for
// chaos testing; an injected failure costs a recompute, exactly like a
// real disk error.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"repro/internal/fault"
	"repro/internal/obs"
)

// headerTag identifies (and versions) the entry encoding.
const headerTag = "PCACHE1"

// Cache is a content-addressed store rooted at one directory. All methods
// are safe for concurrent use; the atomic counters feed /v1/cache/stats.
type Cache struct {
	dir string

	hits, misses, puts atomic.Uint64
	corruptDropped     atomic.Uint64
	errors             atomic.Uint64
	// lastErr retains the most recent put failure or corruption notice for
	// /healthz forensics; it is never cleared.
	lastErr atomic.Value // string
}

// recordErr counts an error, retains its message, and returns it.
func (c *Cache) recordErr(err error) error {
	c.errors.Add(1)
	c.lastErr.Store(err.Error())
	return err
}

// LastError returns the most recent put failure or corruption notice
// ("" if the cache has never misbehaved).
func (c *Cache) LastError() string {
	if v, ok := c.lastErr.Load().(string); ok {
		return v
	}
	return ""
}

// RegisterMetrics contributes the cache's traffic counters to a metrics
// registry as scrape-time samples (the atomics are the source of truth;
// mirroring them continuously would just race the mirror).
func (c *Cache) RegisterMetrics(r *obs.Registry) {
	r.Collect(func(emit func(obs.Sample)) {
		const name = "precisiond_cache_events_total"
		const help = "Result-cache traffic by event (mirrors /v1/cache/stats)."
		for _, e := range []struct {
			event string
			v     uint64
		}{
			{"hit", c.hits.Load()},
			{"miss", c.misses.Load()},
			{"put", c.puts.Load()},
			{"corrupt_dropped", c.corruptDropped.Load()},
			{"error", c.errors.Load()},
		} {
			emit(obs.Sample{
				Name: name, Help: help, Type: "counter",
				Value: float64(e.v), LabelPairs: []string{"event", e.event},
			})
		}
	})
}

// Open roots a cache at dir, creating it if needed.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: open %s: %w", dir, err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// validKey reports whether key looks like a lowercase hex content hash —
// the only keys the cache stores, and incidentally a guard against path
// traversal in handler-supplied keys.
func validKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for _, r := range key {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".res")
}

// Put stores payload under key, atomically. Re-putting an existing key
// rewrites it (the payloads are content-equal by construction, so last
// writer wins is harmless).
func (c *Cache) Put(key string, payload []byte) error {
	if !validKey(key) {
		return c.recordErr(fmt.Errorf("cache: invalid key %q", key))
	}
	if err := fault.Error("cache.put"); err != nil {
		return c.recordErr(fmt.Errorf("cache: put %s: %w", key, err))
	}
	dir := filepath.Join(c.dir, key[:2])
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return c.recordErr(fmt.Errorf("cache: put %s: %w", key, err))
	}
	sum := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %s %s\n", headerTag, key, hex.EncodeToString(sum[:]))

	tmp, err := os.CreateTemp(dir, "."+key+".tmp*")
	if err != nil {
		return c.recordErr(fmt.Errorf("cache: put %s: %w", key, err))
	}
	defer os.Remove(tmp.Name()) // no-op after successful rename
	if _, err := tmp.WriteString(header); err == nil {
		_, err = tmp.Write(payload)
		if err == nil {
			err = tmp.Sync()
		}
	} else {
		tmp.Close()
		return c.recordErr(fmt.Errorf("cache: put %s: %w", key, err))
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return c.recordErr(fmt.Errorf("cache: put %s: %w", key, err))
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		return c.recordErr(fmt.Errorf("cache: put %s: %w", key, err))
	}
	c.puts.Add(1)
	return nil
}

// Get returns the payload stored under key. A missing, torn or corrupt
// entry reports (nil, false); corrupt entries are quarantined out of the
// lookup path so they are recomputed rather than rediscovered on every
// request, while the bad bytes stay on disk for inspection.
func (c *Cache) Get(key string) ([]byte, bool) {
	if !validKey(key) {
		c.misses.Add(1)
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return nil, false
	}
	payload, ok := c.verify(key, data)
	if !ok {
		c.corruptDropped.Add(1)
		c.misses.Add(1)
		c.lastErr.Store("corrupt entry quarantined: " + key)
		c.quarantine(key)
		return nil, false
	}
	c.hits.Add(1)
	return payload, true
}

// quarantine moves a corrupt entry aside to <entry>.corrupt — a rename,
// so the lookup path is cleared atomically. If the rename itself fails
// (unwritable dir) the entry is deleted outright; a corrupt file must
// never stay where Get can keep finding it.
func (c *Cache) quarantine(key string) {
	p := c.path(key)
	if err := os.Rename(p, p+".corrupt"); err != nil {
		os.Remove(p)
	}
}

// WriteProbe verifies the cache directory accepts writes — the /healthz
// degraded signal. It creates and removes a throwaway file; any failure is
// returned verbatim.
func (c *Cache) WriteProbe() error {
	f, err := os.CreateTemp(c.dir, ".probe-*")
	if err != nil {
		return fmt.Errorf("write probe: %w", err)
	}
	name := f.Name()
	_, werr := f.WriteString("probe\n")
	cerr := f.Close()
	os.Remove(name)
	if werr != nil {
		return fmt.Errorf("write probe: %w", werr)
	}
	if cerr != nil {
		return fmt.Errorf("write probe: %w", cerr)
	}
	return nil
}

// verify checks the entry header and payload digest.
func (c *Cache) verify(key string, data []byte) ([]byte, bool) {
	nl := strings.IndexByte(string(data[:min(len(data), 256)]), '\n')
	if nl < 0 {
		return nil, false
	}
	fields := strings.Fields(string(data[:nl]))
	if len(fields) != 3 || fields[0] != headerTag || fields[1] != key {
		return nil, false
	}
	payload := data[nl+1:]
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != fields[2] {
		return nil, false
	}
	return payload, true
}

// Stats is a point-in-time snapshot of the cache's traffic and contents.
type Stats struct {
	Hits           uint64 `json:"hits"`
	Misses         uint64 `json:"misses"`
	Puts           uint64 `json:"puts"`
	CorruptDropped uint64 `json:"corrupt_dropped"`
	Errors         uint64 `json:"errors"`
	// Entries, Bytes and QuarantinedFiles are counted by walking the store
	// at snapshot time; quarantined files are corrupt entries set aside as
	// <entry>.corrupt by Get.
	Entries          int   `json:"entries"`
	Bytes            int64 `json:"bytes"`
	QuarantinedFiles int   `json:"quarantined_files"`
}

// Stats snapshots the counters and walks the store for entry counts.
func (c *Cache) Stats() Stats {
	s := Stats{
		Hits:           c.hits.Load(),
		Misses:         c.misses.Load(),
		Puts:           c.puts.Load(),
		CorruptDropped: c.corruptDropped.Load(),
		Errors:         c.errors.Load(),
	}
	filepath.WalkDir(c.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		switch {
		case strings.HasSuffix(path, ".res"):
			if info, err := d.Info(); err == nil {
				s.Entries++
				s.Bytes += info.Size()
			}
		case strings.HasSuffix(path, ".corrupt"):
			s.QuarantinedFiles++
		}
		return nil
	})
	return s
}
