package dispatch

import (
	"context"
	"fmt"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/runner"
)

// LocalConfig sizes a Local backend.
type LocalConfig struct {
	// Slots is the number of attempts executing concurrently (the
	// scheduler's Workers knob).
	Slots int
	// Grace is how long a cancelled run may keep going before its slot is
	// reclaimed and the attempt abandoned.
	Grace time.Duration
	// Exec executes one attempt when the attempt carries no Run closure of
	// its own (coordinator-spawned verification attempts).
	Exec func(ctx context.Context, a *Attempt) (*runner.Result, error)
	// OnBusy is invoked with +1/-1 around each executing attempt (drives
	// the scheduler's worker/lane busy gauges).
	OnBusy func(delta int)
	// Log, when non-nil, receives abandonment warnings.
	Log *obs.Logger
}

// Local drains the board onto in-process solver lanes. It matches every
// attempt — including LocalOnly checkpoint resumes and verification
// attempts — and is the only backend that can be abandoned: a run that
// ignores cancellation past Grace is left behind and its slot reclaimed.
type Local struct {
	cfg LocalConfig
}

// NewLocal builds a local backend.
func NewLocal(cfg LocalConfig) *Local {
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.Grace <= 0 {
		cfg.Grace = 2 * time.Second
	}
	return &Local{cfg: cfg}
}

// Name implements Backend.
func (l *Local) Name() string { return "local" }

// Start implements Backend: one drain goroutine per slot.
func (l *Local) Start(ctx context.Context, d *Dispatcher) {
	for i := 0; i < l.cfg.Slots; i++ {
		d.Go(func() {
			for {
				a := d.Take(ctx, l.Name(), "", func(*Attempt) bool { return true })
				if a == nil {
					return
				}
				l.runOne(ctx, a)
			}
		})
	}
}

// runOne executes a taken attempt on this slot and delivers its outcome.
// The fault point "worker.stall" simulates a wedged run that ignores its
// deadline (it only unblocks with the backend's lifecycle ctx) — the
// abandonment path chaos tests exercise.
func (l *Local) runOne(ctx context.Context, a *Attempt) {
	if l.cfg.OnBusy != nil {
		l.cfg.OnBusy(1)
		defer l.cfg.OnBusy(-1)
	}
	runCtx := a.Context()
	type result struct {
		res *runner.Result
		err error
	}
	ch := make(chan result, 1)
	go func() {
		if fault.Hit("worker.stall") {
			<-ctx.Done() // simulate a wedged run: ignores its own deadline
			ch <- result{nil, &runner.Error{Kind: runner.KindTransient, Op: "run", Err: fmt.Errorf("stalled: %w", fault.ErrInjected)}}
			return
		}
		run := a.Run
		if run == nil {
			run = func(ctx context.Context) (*runner.Result, error) { return l.cfg.Exec(ctx, a) }
		}
		res, err := run(runCtx)
		ch <- result{res, err}
	}()

	select {
	case out := <-ch:
		a.finish(Outcome{Res: out.res, Err: out.err, Backend: l.Name()})
		return
	case <-runCtx.Done():
	}
	// Cancelled (deadline or shutdown): give the run one grace period to
	// observe it — the solvers check ctx every step, so a healthy run
	// returns almost immediately.
	grace := time.NewTimer(l.cfg.Grace)
	defer grace.Stop()
	select {
	case out := <-ch:
		if out.err == nil && runCtx.Err() == context.DeadlineExceeded {
			// Finished after its deadline but before abandonment: the work
			// is done and deterministic; keep it.
			a.finish(Outcome{Res: out.res, Backend: l.Name()})
			return
		}
		a.finish(Outcome{Res: out.res, Err: out.err, Backend: l.Name()})
	case <-grace.C:
		l.cfg.Log.Warn("attempt abandoned",
			obs.Str("job", a.JobID),
			obs.Str("grace", l.cfg.Grace.String()),
			obs.Str("cause", fmt.Sprint(runCtx.Err())))
		a.finish(Outcome{
			Err: &runner.Error{
				Kind: runner.KindTransient,
				Op:   "run abandoned",
				Err:  fmt.Errorf("no response %v after cancellation (%w)", l.cfg.Grace, runCtx.Err()),
			},
			Backend:   l.Name(),
			Abandoned: true,
		})
	}
}
