package dispatch

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/runner"
)

func testSpec() runner.ExperimentSpec {
	return runner.ExperimentSpec{
		App: runner.AppCLAMR, Mode: "full", Steps: 4,
		NX: 16, NY: 16, MaxLevel: 1, AMRInterval: 5,
	}
}

func okResult(t *testing.T, spec runner.ExperimentSpec) *runner.Result {
	t.Helper()
	n, err := spec.Normalized()
	if err != nil {
		t.Fatal(err)
	}
	h, err := n.Hash()
	if err != nil {
		t.Fatal(err)
	}
	return &runner.Result{Spec: n, SpecHash: h, StateHash: "feed" + h[:8], Steps: spec.Steps}
}

// TestLocalBackendDeliversOutcome is the basic round trip: Do posts, the
// local backend takes, runs, and the outcome comes back labeled.
func TestLocalBackendDeliversOutcome(t *testing.T) {
	t.Parallel()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d := New(Options{})
	d.Register(NewLocal(LocalConfig{Slots: 2}))
	d.Start(ctx)

	spec := testSpec()
	want := okResult(t, spec)
	var placed atomic.Int64
	out := d.Do(ctx, &Attempt{
		JobID: "job-1",
		Spec:  spec,
		Run:   func(context.Context) (*runner.Result, error) { return want, nil },
		OnPlaced: func(backend, worker string, wait time.Duration) {
			placed.Add(1)
			if backend != "local" || worker != "" {
				t.Errorf("placed on %q/%q, want local", backend, worker)
			}
		},
	})
	if out.Err != nil || out.Res != want {
		t.Fatalf("outcome = %+v, want the run's result", out)
	}
	if out.Backend != "local" {
		t.Fatalf("outcome backend = %q, want local", out.Backend)
	}
	if placed.Load() != 1 {
		t.Fatalf("OnPlaced fired %d times, want 1", placed.Load())
	}
	cancel()
	d.Wait()
}

// TestCancelWithdrawsPendingAttempt: an attempt no backend has taken is
// withdrawn when its context dies, and Do returns the cancellation cause.
func TestCancelWithdrawsPendingAttempt(t *testing.T) {
	t.Parallel()
	d := New(Options{}) // no backends: nothing will ever take it
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	out := d.Do(ctx, &Attempt{
		JobID: "job-1",
		Spec:  testSpec(),
		Run:   func(context.Context) (*runner.Result, error) { t.Error("ran a withdrawn attempt"); return nil, nil },
	})
	if !errors.Is(out.Err, context.DeadlineExceeded) {
		t.Fatalf("outcome err = %v, want the context cause", out.Err)
	}
}

// TestTakeHonorsMatch: a taker whose predicate rejects the posted attempt
// must not receive it, while a matching taker does.
func TestTakeHonorsMatch(t *testing.T) {
	t.Parallel()
	d := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	a := &Attempt{JobID: "job-1", Spec: testSpec(), LocalOnly: true}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		out := d.Do(ctx, a)
		if out.Err != nil {
			t.Errorf("outcome err = %v", out.Err)
		}
	}()

	// A remote-style taker refuses LocalOnly attempts and must time out.
	shortCtx, shortCancel := context.WithTimeout(ctx, 50*time.Millisecond)
	defer shortCancel()
	if got := d.Take(shortCtx, "fleet", "worker-001", func(a *Attempt) bool { return !a.LocalOnly }); got != nil {
		t.Fatalf("remote taker got a LocalOnly attempt: job %s", got.JobID)
	}

	// A local-style taker matches everything.
	got := d.Take(ctx, "local", "", func(*Attempt) bool { return true })
	if got != a {
		t.Fatalf("local taker got %+v, want the posted attempt", got)
	}
	got.finish(Outcome{Res: okResult(t, got.Spec)})
	wg.Wait()
}

// TestFinishIsExactlyOnce: only the first finish delivers; Do observes it
// and later finishes are dropped.
func TestFinishIsExactlyOnce(t *testing.T) {
	t.Parallel()
	d := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	a := &Attempt{JobID: "job-1", Spec: testSpec()}
	outCh := make(chan Outcome, 1)
	go func() { outCh <- d.Do(ctx, a) }()

	got := d.Take(ctx, "fleet", "w1", func(*Attempt) bool { return true })
	if got == nil {
		t.Fatal("take returned nil")
	}
	first := okResult(t, got.Spec)
	if !got.finish(Outcome{Res: first, Backend: "fleet", Worker: "w1"}) {
		t.Fatal("first finish rejected")
	}
	if got.finish(Outcome{Err: errors.New("late duplicate")}) {
		t.Fatal("second finish accepted")
	}
	out := <-outCh
	if out.Err != nil || out.Res != first {
		t.Fatalf("outcome = %+v, want the first finish", out)
	}
	if out.Backend != "fleet" || out.Worker != "w1" {
		t.Fatalf("outcome placement = %s/%s, want fleet/w1", out.Backend, out.Worker)
	}
}

// TestEnergyTieBreakPrefersCoolestWorker: among parked capability-equal
// takers, a posted attempt leases to the worker with the lowest modeled
// joules per slot.
func TestEnergyTieBreakPrefersCoolestWorker(t *testing.T) {
	t.Parallel()
	d := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	d.SetWorkerScore("w-hot", 40)
	d.SetWorkerScore("w-cool", 8)

	leased := make(chan string, 2)
	var wg sync.WaitGroup
	for _, w := range []string{"w-hot", "w-cool"} {
		wg.Add(1)
		go func(w string) {
			defer wg.Done()
			if a := d.Take(ctx, "fleet", w, func(*Attempt) bool { return true }); a != nil {
				leased <- w
				a.finish(Outcome{Res: okResult(t, a.Spec), Backend: "fleet", Worker: w})
			}
		}(w)
	}
	time.Sleep(50 * time.Millisecond) // let both takers park

	out := d.Do(ctx, &Attempt{JobID: "job-1", Spec: testSpec()})
	if out.Err != nil {
		t.Fatalf("outcome err = %v", out.Err)
	}
	select {
	case w := <-leased:
		if w != "w-cool" {
			t.Fatalf("attempt leased to %s, want w-cool (8 J/slot vs 40)", w)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no taker received the attempt")
	}
	cancel()
	wg.Wait()
}

// TestWaiterWakesOnPost: a parked taker is handed a freshly posted attempt
// without polling.
func TestWaiterWakesOnPost(t *testing.T) {
	t.Parallel()
	d := New(Options{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	takerGot := make(chan *Attempt, 1)
	go func() { takerGot <- d.Take(ctx, "fleet", "w1", func(*Attempt) bool { return true }) }()
	time.Sleep(20 * time.Millisecond) // let the taker park

	a := &Attempt{JobID: "job-1", Spec: testSpec()}
	go func() {
		out := d.Do(ctx, a)
		if out.Res == nil {
			t.Errorf("outcome = %+v, want a result", out)
		}
	}()
	select {
	case got := <-takerGot:
		if got != a {
			t.Fatalf("taker got %v, want the posted attempt", got)
		}
		got.finish(Outcome{Res: okResult(t, got.Spec)})
	case <-time.After(2 * time.Second):
		t.Fatal("parked taker never woke")
	}
}
