package dispatch

import (
	"math"
	"time"
)

// HealthState is a worker's circuit-breaker position. The coordinator
// scores every lease outcome into an EWMA "badness" per worker; crossing
// thresholds walks the worker healthy → probation → quarantined, and a
// half-open probe lease is the only way back out of quarantine.
type HealthState string

const (
	// HealthHealthy workers take leases normally.
	HealthHealthy HealthState = "healthy"
	// HealthProbation workers still take leases but are one bad outcome
	// from quarantine; sustained good completions decay them back.
	HealthProbation HealthState = "probation"
	// HealthQuarantined workers are skipped by lease matching except for a
	// single half-open probe lease every ProbeAfter.
	HealthQuarantined HealthState = "quarantined"
)

// Penalty weights folded into the EWMA. A clean completion contributes
// penGood (0), so a recovering worker's score decays geometrically.
const (
	penGood   = 0.0
	penFlap   = 0.4 // heartbeat gap: a beat arrived late (or was dropped)
	penSlow   = 0.8 // completion ≥ slowFactor × fleet median for its shape, or hedge lost
	penExpiry = 1.0 // lease died by TTL — the worker went dark mid-run
	penReject = 1.0 // upload failed the spec-hash round-trip (422)
)

// healthParams fixes the breaker geometry. The defaults quarantine after
// ~2 consecutive expiries or ~3 consecutive slow completions from a clean
// score, and the readmit threshold sits well below the probation trip so
// the breaker cannot chatter at the boundary (hysteresis).
type healthParams struct {
	alpha          float64       // EWMA weight of the newest observation
	probationAt    float64       // score ≥ this: healthy → probation
	quarantineAt   float64       // score ≥ this: → quarantined
	readmitBelow   float64       // score < this: → healthy
	probeAfter     time.Duration // quarantine age before a half-open probe
	probeDiscount  float64       // score multiplier on a successful probe
	slowFactor     float64       // completion slower than factor × median is "slow"
	minSlowSamples int           // median needs this many samples to judge slowness
}

func defaultHealthParams(leaseTTL time.Duration) healthParams {
	return healthParams{
		alpha:          0.4,
		probationAt:    0.3,
		quarantineAt:   0.6,
		readmitBelow:   0.15,
		probeAfter:     2 * leaseTTL,
		probeDiscount:  0.3,
		slowFactor:     2.0,
		minSlowSamples: 3,
	}
}

// workerHealth is one worker's rolling score and breaker state. All
// methods are called with the coordinator mutex held; the struct has no
// locking of its own so it stays trivially testable.
type workerHealth struct {
	p     healthParams
	score float64
	state HealthState
	// since is when the current state was entered; probeAt is the earliest
	// time a quarantined worker may receive its half-open probe; probing
	// marks an outstanding probe lease (at most one).
	since   time.Time
	probeAt time.Time
	probing bool
}

func newWorkerHealth(p healthParams, now time.Time) *workerHealth {
	return &workerHealth{p: p, state: HealthHealthy, since: now}
}

// observe folds one outcome penalty into the EWMA and walks the state
// machine. Quarantine is entered from any state the moment the score
// crosses quarantineAt; leaving quarantine happens only through probe.
func (h *workerHealth) observe(penalty float64, now time.Time) {
	h.score = h.score*(1-h.p.alpha) + penalty*h.p.alpha
	switch h.state {
	case HealthHealthy:
		if h.score >= h.p.quarantineAt {
			h.enter(HealthQuarantined, now)
		} else if h.score >= h.p.probationAt {
			h.enter(HealthProbation, now)
		}
	case HealthProbation:
		if h.score >= h.p.quarantineAt {
			h.enter(HealthQuarantined, now)
		} else if h.score < h.p.readmitBelow {
			h.enter(HealthHealthy, now)
		}
	case HealthQuarantined:
		// Scored while quarantined (an old lease finishing, a flap): stay
		// put — only probeResult readmits.
	}
}

func (h *workerHealth) enter(s HealthState, now time.Time) {
	if h.state == s {
		return
	}
	h.state = s
	h.since = now
	if s == HealthQuarantined {
		h.probeAt = now.Add(h.p.probeAfter)
		h.probing = false
	}
}

// admissible reports whether the worker may take a lease now. probe is
// true when the grant must be marked a half-open probe (the worker is
// quarantined and its probe window opened); the caller sets h.probing
// via beginProbe when it actually grants one.
func (h *workerHealth) admissible(now time.Time) (probe, ok bool) {
	switch h.state {
	case HealthQuarantined:
		if !h.probing && !now.Before(h.probeAt) {
			return true, true
		}
		return false, false
	default:
		return false, true
	}
}

// beginProbe marks the single outstanding half-open probe lease.
func (h *workerHealth) beginProbe() { h.probing = true }

// probeAborted releases the probe slot without judging it — the long-poll
// timed out before any attempt was granted.
func (h *workerHealth) probeAborted(now time.Time) { h.probing = false }

// probeResult settles a half-open probe. Success discounts the score and
// readmits (to probation, or straight to healthy if the score cleared the
// readmit threshold); failure re-arms the probe timer and keeps the
// quarantine.
func (h *workerHealth) probeResult(success bool, now time.Time) {
	h.probing = false
	if !success {
		h.probeAt = now.Add(h.p.probeAfter)
		return
	}
	h.score *= h.p.probeDiscount
	if h.score < h.p.readmitBelow {
		h.enter(HealthHealthy, now)
	} else {
		h.enter(HealthProbation, now)
	}
}

// roundScore trims the EWMA for JSON views.
func roundScore(s float64) float64 { return math.Round(s*1000) / 1000 }
