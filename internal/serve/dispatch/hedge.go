package dispatch

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
)

// Hedged re-dispatch: when a leased attempt outlives a percentile deadline
// for its shape (p99 of completed same-shape leases, floored at
// CoordinatorConfig.HedgeAfter), the coordinator posts a duplicate attempt
// excluded from the primary's worker. The board's once-guarded finish takes
// whichever completion lands first; the loser's lease is deliberately left
// alive so its upload still arrives — a duplicate completion of a
// deterministic run is a free cross-node verify, and both state hashes are
// demanded bit-identical. A mismatch quarantines the slower worker and is
// journaled loud; a match journals a hedge_verified record. Hedges are
// budgeted (HedgeBudget × fleet slots concurrently), per Godoy et al.
// (arXiv:2505.05623): wasted re-execution is wasted joules.

// shapeOf buckets specs for latency statistics: same app, mode and step
// count runs the same arithmetic, so its completion times are comparable.
func shapeOf(spec runner.ExperimentSpec) string {
	return string(spec.App) + "|" + spec.Mode + "|" + fmt.Sprint(spec.Steps)
}

// latRing is a bounded sample ring per shape; quantiles copy-sort at most
// latRingSize float64s, cheap at reaper cadence.
const latRingSize = 64

type latRing struct {
	buf  [latRingSize]float64
	n    int // samples stored (≤ latRingSize)
	next int
}

func (r *latRing) add(sec float64) {
	r.buf[r.next] = sec
	r.next = (r.next + 1) % latRingSize
	if r.n < latRingSize {
		r.n++
	}
}

// quantile returns the q-quantile (0 ≤ q ≤ 1) of the stored samples and
// how many samples back it; 0, 0 when empty.
func (r *latRing) quantile(q float64) (float64, int) {
	if r.n == 0 {
		return 0, 0
	}
	s := make([]float64, r.n)
	copy(s, r.buf[:r.n])
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	idx := int(q * float64(len(s)-1))
	return s[idx], r.n
}

// latTracker holds per-shape completion latencies. Guarded by the
// coordinator mutex.
type latTracker struct {
	shapes map[string]*latRing
}

func newLatTracker() *latTracker { return &latTracker{shapes: make(map[string]*latRing)} }

func (t *latTracker) observe(shape string, d time.Duration) {
	r := t.shapes[shape]
	if r == nil {
		r = &latRing{}
		t.shapes[shape] = r
	}
	r.add(d.Seconds())
}

func (t *latTracker) quantile(shape string, q float64) (float64, int) {
	r := t.shapes[shape]
	if r == nil {
		return 0, 0
	}
	return r.quantile(q)
}

// hedgeState is the shared scoreboard of one hedged lease: the primary
// upload and the duplicate attempt each land exactly once, and whichever
// lands second runs the bit-identity comparison.
type hedgeState struct {
	mu            sync.Mutex
	primaryWorker string
	hedgeWorker   string
	primary       *runner.Result
	hedge         *runner.Result
	primaryDead   bool // primary landed without a usable result (error/expiry/422)
	hedgeDead     bool // hedge landed without a usable result
	settled       bool
}

// hedgeDeadline is how long a lease of this shape may run before a hedge
// fires: p99 of completed same-shape leases when enough samples exist,
// never below the configured floor. Caller holds co.mu.
func (co *Coordinator) hedgeDeadlineLocked(shape string) time.Duration {
	dl := co.cfg.HedgeAfter
	if p99, n := co.lat.quantile(shape, 0.99); n >= co.hp.minSlowSamples {
		if d := time.Duration(p99 * float64(time.Second)); d > dl {
			dl = d
		}
	}
	return dl
}

// maybeHedge scans active leases on the reaper tick and fires duplicates
// for stragglers, within the global budget.
func (co *Coordinator) maybeHedge(now time.Time) {
	if co.cfg.HedgeBudget <= 0 {
		return
	}
	co.mu.Lock()
	totalSlots := 0
	for _, ws := range co.workers {
		totalSlots += ws.caps.Slots
	}
	maxHedges := int(co.cfg.HedgeBudget * float64(totalSlots))
	if maxHedges < 1 {
		maxHedges = 1
	}
	var fire []*lease
	for _, l := range co.leases {
		if co.hedgeInflight+len(fire) >= maxHedges {
			break
		}
		// Shadows (verify runs and other hedges) and half-open probes are
		// never hedged; a verify-sampled lease already gets a second run.
		if l.hedge != nil || l.verify || l.probe || l.a.shadow {
			continue
		}
		if now.Sub(l.granted) < co.hedgeDeadlineLocked(shapeOf(l.a.Spec)) {
			continue
		}
		if !co.secondExecutorLocked(l, now) {
			continue
		}
		l.hedge = &hedgeState{primaryWorker: l.worker.id}
		fire = append(fire, l)
	}
	co.hedgeInflight += len(fire)
	co.mu.Unlock()
	for _, l := range fire {
		co.fireHedge(l)
	}
}

// secondExecutorLocked reports whether some other admissible worker could
// take the duplicate — firing a hedge nobody can serve only burns budget.
func (co *Coordinator) secondExecutorLocked(l *lease, now time.Time) bool {
	for _, ws := range co.workers {
		if ws.id == l.worker.id || !ws.caps.matches(l.a.Spec) {
			continue
		}
		if _, ok := ws.health.admissible(now); ok {
			return true
		}
	}
	return false
}

// fireHedge posts the duplicate attempt and resolves its outcome against
// the primary through the shared hedgeState.
func (co *Coordinator) fireHedge(l *lease) {
	a, hs := l.a, l.hedge
	co.hedgeCtr.With("fired").Inc()
	co.log.Info("hedge fired",
		obs.Str("job", a.JobID), obs.Str("lease", l.id),
		obs.Str("primary", hs.primaryWorker),
		obs.Str("running", time.Since(l.granted).Round(time.Millisecond).String()))
	if a.OnHedge != nil {
		a.OnHedge("fired", hs.primaryWorker)
	}
	co.d.Go(func() {
		defer func() {
			co.mu.Lock()
			co.hedgeInflight--
			co.mu.Unlock()
		}()
		base := co.runCtx
		if base == nil {
			base = context.Background()
		}
		ctx, cancel := context.WithTimeout(base, co.cfg.VerifyWait)
		defer cancel()
		dup := &Attempt{
			JobID:         a.JobID,
			Spec:          a.Spec,
			N:             a.N,
			ExcludeWorker: hs.primaryWorker,
			shadow:        true,
			// The duplicate's executor ships its own span timeline; route
			// it to the hedge-specific recorder so it grafts as a sibling
			// subtree rather than replacing the primary's snapshots.
			OnWorkerTrace: a.OnHedgeWorkerTrace,
		}
		out := co.d.Do(ctx, dup)
		if out.Err != nil || out.Res == nil {
			co.hedgeCtr.With("skipped").Inc()
			if a.OnHedge != nil {
				a.OnHedge("skipped", out.Worker)
			}
			co.hedgeLanded(l, hs, nil, out.Worker)
			return
		}
		won := a.finish(Outcome{Res: out.Res, Backend: co.Name(), Worker: out.Worker})
		if won {
			co.hedgeCtr.With("won").Inc()
		} else {
			co.hedgeCtr.With("lost").Inc()
		}
		if a.OnHedge != nil {
			if won {
				a.OnHedge("won", out.Worker)
			} else {
				a.OnHedge("lost", out.Worker)
			}
		}
		co.hedgeLanded(l, hs, out.Res, out.Worker)
	})
}

// hedgeLanded records one side of a hedged pair (res nil = landed without
// a usable result). When the caller is the hedge goroutine, worker is the
// duplicate's executor; when it is HandleComplete, worker is the primary.
// The second arrival settles: both results present ⇒ demand bit-identical
// state hashes.
func (co *Coordinator) hedgeLanded(l *lease, hs *hedgeState, res *runner.Result, worker string) {
	hs.mu.Lock()
	fromPrimary := worker == hs.primaryWorker
	if fromPrimary {
		hs.primary = res
		hs.primaryDead = res == nil
	} else {
		hs.hedgeWorker = worker
		hs.hedge = res
		hs.hedgeDead = res == nil
	}
	bothLanded := (hs.primary != nil || hs.primaryDead) && (hs.hedge != nil || hs.hedgeDead)
	if !bothLanded || hs.settled {
		hs.mu.Unlock()
		return
	}
	hs.settled = true
	primary, hedge, hedgeWorker := hs.primary, hs.hedge, hs.hedgeWorker
	hs.mu.Unlock()

	a := l.a
	if primary == nil || hedge == nil {
		// One side never produced a result — nothing to verify. The side
		// that did (if any) already finished the attempt.
		return
	}
	// The second lander is the slower executor: this callback runs on its
	// arrival, so `worker` names it.
	slower := worker
	if primary.StateHash == hedge.StateHash {
		co.hedgeCtr.With("verified").Inc()
		if a.OnHedge != nil {
			a.OnHedge("verified", slower)
		}
		co.log.Info("hedge verified bit-identical",
			obs.Str("job", a.JobID), obs.Str("primary", hs.primaryWorker),
			obs.Str("hedge", hedgeWorker), obs.Str("state", primary.StateHash))
		if co.cfg.HedgeRecord != nil {
			co.cfg.HedgeRecord(a.JobID, a.Hash(), primary.StateHash, hs.primaryWorker, hedgeWorker, true)
		}
		return
	}
	co.hedgeCtr.With("mismatch").Inc()
	if a.OnHedge != nil {
		a.OnHedge("mismatch", slower)
	}
	co.log.Error("hedge state hash divergence",
		obs.Str("job", a.JobID),
		obs.Str("primary", hs.primaryWorker), obs.Str("primary_state", primary.StateHash),
		obs.Str("hedge", hedgeWorker), obs.Str("hedge_state", hedge.StateHash),
		obs.Str("quarantining", slower))
	if co.cfg.HedgeRecord != nil {
		co.cfg.HedgeRecord(a.JobID, a.Hash(), primary.StateHash, hs.primaryWorker, hedgeWorker, false)
	}
	now := time.Now()
	co.mu.Lock()
	if ws, ok := co.workers[slower]; ok {
		ws.health.score = co.hp.quarantineAt
		ws.health.enter(HealthQuarantined, now)
	}
	co.mu.Unlock()
	co.updateHealthGauge()
}
