// Package dispatch places execution attempts onto backends: the daemon's
// own solver lanes (Local) and a fleet of remote precision-worker nodes
// (Coordinator), both draining one board.
//
// The scheduler in internal/serve/queue owns job policy — retries,
// precision escalation, journaling, caching. Each individual execution
// attempt is handed to a Dispatcher, which posts it on the board and blocks
// until some backend delivers an Outcome. Backends pull with Take, which
// performs capability-aware matching: an attempt resuming from a local
// checkpoint is LocalOnly, a cross-node verification attempt excludes the
// worker whose result it is checking, and remote workers only match specs
// their advertised capabilities cover.
//
// Delivery is exactly-once per attempt (an internal once-guard), so the
// failure paths compose: a remote lease that expires finishes the attempt
// with ErrLeaseExpired and a later duplicate upload is rejected; a
// cancelled attempt that was never placed is withdrawn from the board; a
// wedged local run is bounded by the abandon grace.
package dispatch

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/runner"
)

// ErrLeaseExpired reports a remote attempt whose worker stopped
// heartbeating (or was cancelled) before uploading a result. The scheduler
// treats it as a placement failure, not a run failure: the job is re-queued
// under its original ID without consuming retry budget.
var ErrLeaseExpired = errors.New("dispatch: lease expired")

// Outcome is the terminal state of one dispatched attempt.
type Outcome struct {
	Res *runner.Result
	Err error
	// Backend/Worker identify where the attempt ran ("local", or "fleet"
	// plus the worker ID).
	Backend string
	Worker  string
	// Abandoned marks a local run that ignored cancellation past the grace
	// period; its goroutine was left behind.
	Abandoned bool
}

// Attempt is one execution attempt offered to the backends. The scheduler
// fills the exported fields; Dispatcher.Do owns the rest.
type Attempt struct {
	JobID string
	Spec  runner.ExperimentSpec // normalized; Mode may be escalated
	N     int64                 // attempt number within the job (1-based)

	// LocalOnly pins the attempt to the local backend — a checkpoint resume
	// reads state only this process has.
	LocalOnly bool
	// ExcludeWorker bars one remote worker from taking the attempt — a
	// verification attempt must not re-run on the worker it is checking.
	ExcludeWorker string

	// Run executes the attempt in-process (used by the local backend).
	Run func(ctx context.Context) (*runner.Result, error)
	// Progress, when non-nil, receives step/total updates (remote workers
	// relay them on heartbeats).
	Progress func(step, total int)
	// OnPlaced, when non-nil, is invoked once when a backend takes the
	// attempt, with the time it spent waiting on the board.
	OnPlaced func(backend, worker string, wait time.Duration)
	// OnHedge, when non-nil, receives straggler-defense lifecycle events
	// for this attempt: "fired" (worker = the straggling primary), then
	// "won"/"lost"/"skipped" (worker = the duplicate's executor), then
	// "verified"/"mismatch" when both completions landed. Called from
	// coordinator goroutines — implementations must be safe for
	// concurrent use. The scheduler renders these as hedge spans in the
	// job trace.
	OnHedge func(event, worker string)
	// OnWorkerTrace, when non-nil, receives the executing worker's own span
	// timeline for this attempt: partial snapshots on heartbeats (long runs
	// stream their solver spans incrementally) and the final snapshot on
	// complete, where uploadBytes is the uploaded payload size (0 for
	// partials). Each snapshot replaces the previous one. Called from
	// coordinator HTTP handler goroutines — implementations must be safe
	// for concurrent use. The scheduler grafts these under the attempt span
	// so the job trace renders one cross-node timeline.
	OnWorkerTrace func(worker string, td obs.TraceData, uploadBytes int)
	// OnHedgeWorkerTrace is OnWorkerTrace for the straggler-defense
	// duplicate of this attempt: fireHedge copies it onto the duplicate it
	// posts, so the duplicate executor's spans graft under the scheduler's
	// hedge_attempt span — a sibling subtree — instead of replacing the
	// primary's snapshots on the attempt span.
	OnHedgeWorkerTrace func(worker string, td obs.TraceData, uploadBytes int)

	// shadow marks a coordinator-spawned verification attempt, so it is
	// never itself picked for verification.
	shadow bool

	d        *Dispatcher
	ctx      context.Context
	hash     string
	postedAt time.Time
	out      chan Outcome

	mu          sync.Mutex
	finished    bool
	backend     string
	worker      string
	cancelled   error       // set by Dispatcher.cancel; sticky
	cancelLease func(error) // set while a remote lease is active
}

// Hash is the attempt's versioned spec hash (of the possibly-escalated
// spec), computed once at Do. Remote uploads must round-trip it.
func (a *Attempt) Hash() string { return a.hash }

// Context is the attempt's execution context (deadline included).
func (a *Attempt) Context() context.Context { return a.ctx }

// finish delivers the outcome exactly once; later calls are no-ops.
func (a *Attempt) finish(o Outcome) bool {
	a.mu.Lock()
	if a.finished {
		a.mu.Unlock()
		return false
	}
	a.finished = true
	if o.Backend == "" {
		o.Backend = a.backend
	}
	if o.Worker == "" {
		o.Worker = a.worker
	}
	placed := a.backend
	a.mu.Unlock()
	if a.d != nil {
		a.d.noteFinish(placed, o)
	}
	a.out <- o
	return true
}

// setCancelLease registers the remote-lease canceller. If the attempt was
// already cancelled (the race where the context dies between a backend
// taking the attempt and the lease being recorded), the canceller runs
// immediately so the lease is reclaimed rather than left to the reaper.
func (a *Attempt) setCancelLease(cl func(error)) {
	a.mu.Lock()
	cause := a.cancelled
	a.cancelLease = cl
	a.mu.Unlock()
	if cause != nil && cl != nil {
		cl(cause)
	}
}

// Backend is one attempt executor draining the board.
type Backend interface {
	// Name labels the backend in metrics, traces and job views.
	Name() string
	// Start launches the backend's drain loops; they must exit when ctx is
	// cancelled. Spawn goroutines through d.Go so Dispatcher.Wait covers
	// them.
	Start(ctx context.Context, d *Dispatcher)
}

// Options configures a Dispatcher.
type Options struct {
	// Obs, when non-nil, registers the dispatch instruments (inflight
	// gauge, placement-wait histogram, outcome counters).
	Obs *obs.Registry
	// Log, when non-nil, receives dispatch-correlated log records.
	Log *obs.Logger
}

// Dispatcher is the board: posted attempts on one side, backend takers on
// the other.
type Dispatcher struct {
	log *obs.Logger

	inflight        obs.GaugeVec     // label: backend
	placeWait       obs.HistogramVec // label: backend
	outcomes        obs.CounterVec   // labels: backend, outcome
	energyPreferred obs.Counter

	mu       sync.Mutex
	items    []*Attempt
	waiters  []*waiter
	scores   map[string]float64 // modeled joules/slot per worker
	backends []Backend
	started  bool
	runCtx   context.Context

	wg sync.WaitGroup
}

type waiter struct {
	worker string
	match  func(*Attempt) bool
	ch     chan *Attempt
}

// New builds a Dispatcher. A nil-field Options is fine: instruments and
// logging degrade to no-ops.
func New(opts Options) *Dispatcher {
	d := &Dispatcher{log: opts.Log, scores: map[string]float64{}}
	if opts.Obs != nil {
		d.inflight = opts.Obs.GaugeVec("dispatch_inflight",
			"Attempts currently executing, by backend.", "backend")
		d.placeWait = opts.Obs.HistogramVec("dispatch_place_wait_seconds",
			"Time an attempt waited on the board before a backend took it.",
			obs.DurationBuckets, "backend")
		d.outcomes = opts.Obs.CounterVec("dispatch_attempts_total",
			"Dispatched attempts by backend and outcome.", "backend", "outcome")
		d.energyPreferred = opts.Obs.Counter("precisiond_lease_energy_preferred_total",
			"Lease deliveries where the energy tie-break picked a cheaper "+
				"worker than strict board order would have.")
	}
	return d
}

// SetWorkerScore registers a worker's energy score — modeled joules per
// slot from its arch profile. Among capability-equal idle workers, lease
// delivery prefers the lowest score. A worker without a score competes in
// strict board order only.
func (d *Dispatcher) SetWorkerScore(worker string, joulesPerSlot float64) {
	d.mu.Lock()
	d.scores[worker] = joulesPerSlot
	d.mu.Unlock()
}

// ClearWorkerScore drops a departed worker's energy score.
func (d *Dispatcher) ClearWorkerScore(worker string) {
	d.mu.Lock()
	delete(d.scores, worker)
	d.mu.Unlock()
}

// Register adds a backend. Backends registered after Start are started
// immediately.
func (d *Dispatcher) Register(b Backend) {
	d.mu.Lock()
	d.backends = append(d.backends, b)
	started, ctx := d.started, d.runCtx
	d.mu.Unlock()
	if started {
		b.Start(ctx, d)
	}
}

// Backends lists the registered backend names.
func (d *Dispatcher) Backends() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, len(d.backends))
	for i, b := range d.backends {
		names[i] = b.Name()
	}
	return names
}

// Start launches every registered backend; their loops exit when ctx is
// cancelled. Idempotent.
func (d *Dispatcher) Start(ctx context.Context) {
	d.mu.Lock()
	if d.started {
		d.mu.Unlock()
		return
	}
	d.started = true
	d.runCtx = ctx
	bs := append([]Backend(nil), d.backends...)
	d.mu.Unlock()
	for _, b := range bs {
		b.Start(ctx, d)
	}
}

// Go runs f on a dispatcher-tracked goroutine (covered by Wait).
func (d *Dispatcher) Go(f func()) {
	d.wg.Add(1)
	go func() {
		defer d.wg.Done()
		f()
	}()
}

// Wait blocks until every backend goroutine has exited.
func (d *Dispatcher) Wait() { d.wg.Wait() }

// Do posts the attempt and blocks until a backend delivers its outcome or
// ctx dies. On cancellation a still-pending attempt is withdrawn, an active
// remote lease is revoked, and a running local attempt is waited for (its
// executor observes the same ctx and is bounded by the abandon grace) — Do
// always returns a real Outcome.
func (d *Dispatcher) Do(ctx context.Context, a *Attempt) Outcome {
	a.d = d
	a.ctx = ctx
	a.out = make(chan Outcome, 1)
	a.postedAt = time.Now()
	if a.hash == "" {
		if n, err := a.Spec.Normalized(); err == nil {
			a.hash, _ = n.Hash()
		}
	}

	d.mu.Lock()
	delivered := false
	if i := d.pickWaiterLocked(a); i >= 0 {
		w := d.waiters[i]
		d.waiters = append(d.waiters[:i], d.waiters[i+1:]...)
		w.ch <- a
		delivered = true
	}
	if !delivered {
		d.items = append(d.items, a)
	}
	d.mu.Unlock()

	select {
	case out := <-a.out:
		return out
	case <-ctx.Done():
		d.cancel(a, ctx.Err())
		return <-a.out
	}
}

// pickWaiterLocked chooses which matching waiter (index, -1 for none)
// receives a. Delivery is first-match — board order — unless the first
// match carries a registered energy score (modeled joules/slot from the
// worker's arch profile): then the lowest-scored matching scored waiter
// wins, so among capability-equal idle workers the fleet leases to the
// most energy-efficient one first. Unscored waiters (local lanes,
// unprofiled workers) keep strict board order. Caller holds d.mu.
func (d *Dispatcher) pickWaiterLocked(a *Attempt) int {
	first := -1
	best, bestScore := -1, 0.0
	for i, w := range d.waiters {
		if !w.match(a) {
			continue
		}
		score, scored := d.scores[w.worker]
		if first < 0 {
			if !scored {
				return i
			}
			first = i
		}
		if scored && (best < 0 || score < bestScore) {
			best, bestScore = i, score
		}
	}
	if best >= 0 {
		if best != first {
			d.energyPreferred.Inc()
		}
		return best
	}
	return first
}

// cancel resolves a cancelled attempt: withdraw it if still pending, revoke
// its lease if remotely placed. A locally placed attempt needs no action —
// its executor watches the same context.
func (d *Dispatcher) cancel(a *Attempt, cause error) {
	d.mu.Lock()
	for i, it := range d.items {
		if it == a {
			d.items = append(d.items[:i], d.items[i+1:]...)
			d.mu.Unlock()
			a.finish(Outcome{Err: cause})
			return
		}
	}
	d.mu.Unlock()
	a.mu.Lock()
	a.cancelled = cause
	cl := a.cancelLease
	a.mu.Unlock()
	if cl != nil {
		cl(cause)
	}
}

// Take blocks until an attempt matching match is available (placement is
// recorded and OnPlaced invoked before it returns) or ctx dies (returns
// nil). The caller must drive the attempt to an Outcome.
func (d *Dispatcher) Take(ctx context.Context, backend, worker string, match func(*Attempt) bool) *Attempt {
	for {
		a := d.takeOne(ctx, worker, match)
		if a == nil {
			return nil
		}
		if err := a.ctx.Err(); err != nil {
			// Died on the board between post and take.
			a.finish(Outcome{Err: err})
			continue
		}
		d.place(a, backend, worker)
		return a
	}
}

func (d *Dispatcher) takeOne(ctx context.Context, worker string, match func(*Attempt) bool) *Attempt {
	d.mu.Lock()
	for i, a := range d.items {
		if match(a) {
			d.items = append(d.items[:i], d.items[i+1:]...)
			d.mu.Unlock()
			return a
		}
	}
	w := &waiter{worker: worker, match: match, ch: make(chan *Attempt, 1)}
	d.waiters = append(d.waiters, w)
	d.mu.Unlock()

	select {
	case a := <-w.ch:
		return a
	case <-ctx.Done():
	}
	d.mu.Lock()
	for i, it := range d.waiters {
		if it == w {
			d.waiters = append(d.waiters[:i], d.waiters[i+1:]...)
			break
		}
	}
	d.mu.Unlock()
	select {
	case a := <-w.ch:
		// Delivered in the same instant the wait timed out: put it back at
		// the front so board order is preserved.
		d.mu.Lock()
		d.items = append([]*Attempt{a}, d.items...)
		d.mu.Unlock()
	default:
	}
	return nil
}

func (d *Dispatcher) place(a *Attempt, backend, worker string) {
	wait := time.Since(a.postedAt)
	a.mu.Lock()
	a.backend, a.worker = backend, worker
	a.mu.Unlock()
	d.inflight.With(backend).Add(1)
	d.placeWait.With(backend).Observe(wait.Seconds())
	if a.OnPlaced != nil {
		a.OnPlaced(backend, worker, wait)
	}
}

func (d *Dispatcher) noteFinish(placedBackend string, o Outcome) {
	if placedBackend == "" {
		return
	}
	d.inflight.With(placedBackend).Add(-1)
	outcome := "ok"
	if o.Err != nil {
		outcome = "error"
	}
	d.outcomes.With(placedBackend, outcome).Inc()
}
