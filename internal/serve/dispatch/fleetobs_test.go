package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/runner"
)

// relClose tolerates the nanosecond truncation Predict's time.Duration
// round-trip introduces; everything else in the model is exact float math.
func relClose(got, want float64) bool {
	if want == 0 {
		return got == 0
	}
	return math.Abs(got-want)/math.Abs(want) < 1e-6
}

// TestComputeEnergyGoldenHaswell hand-computes the full arch × counter
// product for a CPU profile: roofline runtime from the counters, joules as
// TDP × seconds, dollars from the paper's AWS rates — the exact numbers the
// coordinator attaches to every remote completion.
func TestComputeEnergyGoldenHaswell(t *testing.T) {
	res := &runner.Result{
		Counters: metrics.Counters{
			Flops32:          2e9,
			Flops64:          4e9,
			Transcendental64: 1e8,
			Conversions:      5e7,
			LoadBytes:        60e9,
			StoreBytes:       20e9,
		},
		StateBytes:      1 << 28,
		CheckpointBytes: 3e9,
	}
	e := ComputeEnergy(arch.Haswell, res)

	// Roofline by hand (vectorized CPU profile: 10% of peak flops, 50% of
	// nominal bandwidth, transcendental = 12 flops, conversion = 1 wide op).
	f32 := 2e9
	f64 := 4e9 + 12*1e8 + 5e7
	computeSec := f32/(832e9*0.10) + f64/(416e9*0.10)
	memSec := 80e9 / (68e9 * 0.50)
	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	wantJoules := 105 * sec
	wantDollars := sec/3600*1.591*1.2337 + 3.0*0.023

	if e.Arch != "Haswell" || e.Watts != 105 {
		t.Fatalf("energy profile = %s/%gW, want Haswell/105W", e.Arch, e.Watts)
	}
	if !relClose(e.ModelSeconds, sec) {
		t.Fatalf("model seconds = %v, want %v", e.ModelSeconds, sec)
	}
	if !relClose(e.Joules, wantJoules) {
		t.Fatalf("joules = %v, want %v", e.Joules, wantJoules)
	}
	if !relClose(e.CostDollars, wantDollars) {
		t.Fatalf("cost = %v, want %v", e.CostDollars, wantDollars)
	}
}

// TestComputeEnergyGoldenTitanX pins the GPU path: the TITAN X's 32:1 DP
// throttle is floored at SP/8 (address arithmetic issues at full rate), and
// kernel launches add their published overhead.
func TestComputeEnergyGoldenTitanX(t *testing.T) {
	res := &runner.Result{
		Counters: metrics.Counters{
			Flops64:        10e9,
			LoadBytes:      1e9,
			KernelLaunches: 1000,
		},
	}
	e := ComputeEnergy(arch.TitanX, res)

	// DP peak 192 GF floors at 6144/8 = 768 GF; 8% achievable.
	computeSec := 10e9 / (768e9 * 0.08)
	memSec := 1e9 / (336e9 * 0.60)
	sec := computeSec
	if memSec > sec {
		sec = memSec
	}
	sec += 1000 * 8e-6 // 8µs per launch
	if !relClose(e.ModelSeconds, sec) {
		t.Fatalf("model seconds = %v, want %v (DP floor + launch overhead)", e.ModelSeconds, sec)
	}
	if !relClose(e.Joules, 250*sec) {
		t.Fatalf("joules = %v, want %v", e.Joules, 250*sec)
	}
	// No checkpoint: cost is pure compute.
	if !relClose(e.CostDollars, sec/3600*1.591*1.2337) {
		t.Fatalf("cost = %v, want compute-only", e.CostDollars)
	}
}

// TestComputeEnergyCacheStable: pricing derives from the deterministic
// counters, never wall time, so the same result prices bit-identically —
// the invariant that lets cached re-runs report the same joules.
func TestComputeEnergyCacheStable(t *testing.T) {
	res := &runner.Result{
		Counters:        metrics.Counters{Flops64: 7e9, LoadBytes: 11e9},
		CheckpointBytes: 1e8,
	}
	a := ComputeEnergy(arch.TeslaP100, res)
	b := ComputeEnergy(arch.TeslaP100, res)
	if a.Joules != b.Joules || a.CostDollars != b.CostDollars {
		t.Fatalf("re-pricing drifted: %+v vs %+v", a, b)
	}
}

// registerTestWorker registers one worker straight through the HTTP handler
// and returns its assigned ID.
func registerTestWorker(t *testing.T, co *Coordinator, req RegisterRequest) string {
	t.Helper()
	body, _ := json.Marshal(req)
	rec := httptest.NewRecorder()
	co.HandleRegister(rec, httptest.NewRequest(http.MethodPost, "/v1/workers/register", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("register = %d: %s", rec.Code, rec.Body)
	}
	var resp RegisterResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp.WorkerID
}

func fleetMetricsBody(t *testing.T, co *Coordinator) (string, string) {
	t.Helper()
	rec := httptest.NewRecorder()
	co.HandleFleetMetrics(rec, httptest.NewRequest(http.MethodGet, "/metrics/fleet", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("fleet metrics = %d", rec.Code)
	}
	return rec.Body.String(), rec.Header().Get("X-Fleet-Workers")
}

// TestFleetMetricsStalenessAgeing: a worker that stops being scraped ages
// out of the merged view after the staleness window instead of freezing its
// last numbers into the aggregate forever.
func TestFleetMetricsStalenessAgeing(t *testing.T) {
	d := New(Options{})
	co := NewCoordinator(d, CoordinatorConfig{
		LeaseTTL:  100 * time.Millisecond,
		WorkerTTL: 400 * time.Millisecond,
	})
	w1 := registerTestWorker(t, co, RegisterRequest{Name: "fresh", Capabilities: Capabilities{Slots: 1}})
	w2 := registerTestWorker(t, co, RegisterRequest{Name: "flappy", Capabilities: Capabilities{Slots: 1}})

	parse := func(text string) *obs.ParsedMetrics {
		pm, err := obs.ParsePrometheus(strings.NewReader(text))
		if err != nil {
			t.Fatal(err)
		}
		return pm
	}
	now := time.Now()
	co.mu.Lock()
	co.workers[w1].scrape = parse("# TYPE w_leases_total counter\nw_leases_total 3\n")
	co.workers[w1].scrapedAt = now
	co.workers[w2].scrape = parse("# TYPE w_leases_total counter\nw_leases_total 4\n")
	co.workers[w2].scrapedAt = now
	co.mu.Unlock()

	body, workers := fleetMetricsBody(t, co)
	if workers != "2" || !strings.Contains(body, "w_leases_total 7") {
		t.Fatalf("fresh merge: workers=%s body=%q, want 2 workers summing to 7", workers, body)
	}

	// The flapping worker's scrape slides past the staleness window: its
	// sample must fall out of the merge, not wedge it.
	co.mu.Lock()
	co.workers[w2].scrapedAt = now.Add(-co.staleness() - time.Millisecond)
	co.mu.Unlock()
	body, workers = fleetMetricsBody(t, co)
	if workers != "1" || !strings.Contains(body, "w_leases_total 3") {
		t.Fatalf("aged merge: workers=%s body=%q, want only the fresh worker's 3", workers, body)
	}
	if strings.Contains(body, "w_leases_total 7") {
		t.Fatal("stale scrape still contributes to the fleet merge")
	}
}

// TestCoordinatorScrapeLoop drives scrapeWorkers against two live /metrics
// endpoints — one healthy, one serving garbage. The healthy worker lands in
// the merge; the garbage one reads as a failed scrape and contributes
// nothing (it keeps whatever sample it had, here none).
func TestCoordinatorScrapeLoop(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("w_runs_total", "Runs.").Add(5)
	good := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/metrics" {
			http.NotFound(w, r)
			return
		}
		reg.Handler().ServeHTTP(w, r)
	}))
	defer good.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("this is not a prometheus exposition\n"))
	}))
	defer bad.Close()

	d := New(Options{})
	co := NewCoordinator(d, CoordinatorConfig{LeaseTTL: 100 * time.Millisecond})
	registerTestWorker(t, co, RegisterRequest{
		Name: "good", ReadAddr: good.URL, Capabilities: Capabilities{Slots: 1}})
	registerTestWorker(t, co, RegisterRequest{
		Name: "bad", ReadAddr: bad.URL, Capabilities: Capabilities{Slots: 1}})

	co.scrapeWorkers(context.Background())

	body, workers := fleetMetricsBody(t, co)
	if workers != "1" {
		t.Fatalf("X-Fleet-Workers = %s, want 1 (garbage endpoint must read as a failed scrape)", workers)
	}
	if !strings.Contains(body, "w_runs_total 5") {
		t.Fatalf("merged body missing the healthy worker's series:\n%s", body)
	}

	// The per-worker view reports scrape freshness for the healthy worker
	// and none for the garbage one.
	rec := httptest.NewRecorder()
	co.HandleList(rec, httptest.NewRequest(http.MethodGet, "/v1/workers", nil))
	var view FleetView
	if err := json.Unmarshal(rec.Body.Bytes(), &view); err != nil {
		t.Fatal(err)
	}
	for _, wv := range view.Workers {
		if wv.Name == "good" && wv.MetricsAge == "" {
			t.Fatal("scraped worker reports no metrics age")
		}
		if wv.Name == "bad" && wv.MetricsAge != "" {
			t.Fatalf("unscrapeable worker reports metrics age %q", wv.MetricsAge)
		}
	}
}

// TestWorkerProfileChangeWarning: worker IDs are fresh per registration but
// names are the stable identity — the same name re-registering with a
// different arch profile is logged loud, because the energy model now
// prices that name's uploads differently.
func TestWorkerProfileChangeWarning(t *testing.T) {
	var logBuf bytes.Buffer
	d := New(Options{})
	co := NewCoordinator(d, CoordinatorConfig{
		LeaseTTL: 100 * time.Millisecond,
		Log:      obs.NewLogger(&logBuf, obs.LevelWarn),
	})
	hw := arch.Haswell
	p100 := arch.TeslaP100
	registerTestWorker(t, co, RegisterRequest{
		Name: "node-a", Arch: &hw, Capabilities: Capabilities{Slots: 1}})
	registerTestWorker(t, co, RegisterRequest{
		Name: "node-a", Arch: &hw, Capabilities: Capabilities{Slots: 1}})
	if s := logBuf.String(); strings.Contains(s, "profile changed") {
		t.Fatalf("identical re-registration warned:\n%s", s)
	}
	registerTestWorker(t, co, RegisterRequest{
		Name: "node-a", Arch: &p100, Capabilities: Capabilities{Slots: 1}})
	s := logBuf.String()
	if !strings.Contains(s, "worker profile changed") || !strings.Contains(s, "node-a") {
		t.Fatalf("arch swap under a stable name not warned:\n%s", s)
	}
}
