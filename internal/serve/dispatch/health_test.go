package dispatch

import (
	"testing"
	"time"
)

func testHealthParams() healthParams {
	return defaultHealthParams(time.Second)
}

// TestHealthExpiryWalksToQuarantine: with the default geometry two
// consecutive lease expiries from a clean score cross probation, then
// quarantine — the "worker went dark twice" breaker trip.
func TestHealthExpiryWalksToQuarantine(t *testing.T) {
	now := time.Now()
	h := newWorkerHealth(testHealthParams(), now)
	if h.state != HealthHealthy || h.score != 0 {
		t.Fatalf("fresh worker = %s score %.3f, want healthy 0", h.state, h.score)
	}

	h.observe(penExpiry, now)
	if h.state != HealthProbation {
		t.Fatalf("after 1 expiry: %s score %.3f, want probation", h.state, h.score)
	}
	h.observe(penExpiry, now)
	if h.state != HealthQuarantined {
		t.Fatalf("after 2 expiries: %s score %.3f, want quarantined", h.state, h.score)
	}
	if h.probeAt.IsZero() || h.probeAt.Before(now.Add(h.p.probeAfter)) {
		t.Fatalf("quarantine did not arm the probe timer: probeAt %v", h.probeAt)
	}
}

// TestHealthGoodCompletionsDecayProbation: a slow completion trips
// probation; clean completions decay the score geometrically back below the
// readmit threshold (hysteresis: readmitBelow < probationAt).
func TestHealthGoodCompletionsDecayProbation(t *testing.T) {
	now := time.Now()
	h := newWorkerHealth(testHealthParams(), now)

	h.observe(penSlow, now) // 0.32 ≥ probationAt 0.3
	if h.state != HealthProbation {
		t.Fatalf("after 1 slow completion: %s score %.3f, want probation", h.state, h.score)
	}
	h.observe(penGood, now) // 0.192: still ≥ readmitBelow 0.15
	if h.state != HealthProbation {
		t.Fatalf("one good completion readmitted too early: %s score %.3f", h.state, h.score)
	}
	h.observe(penGood, now) // 0.1152 < 0.15
	if h.state != HealthHealthy {
		t.Fatalf("decayed score did not readmit: %s score %.3f", h.state, h.score)
	}
}

// TestHealthQuarantineExitsOnlyViaProbe: good observations while
// quarantined decay the score but never change the state — only a settled
// half-open probe readmits.
func TestHealthQuarantineExitsOnlyViaProbe(t *testing.T) {
	now := time.Now()
	h := newWorkerHealth(testHealthParams(), now)
	h.observe(penExpiry, now)
	h.observe(penExpiry, now)
	if h.state != HealthQuarantined {
		t.Fatalf("setup: %s, want quarantined", h.state)
	}

	for i := 0; i < 20; i++ {
		h.observe(penGood, now)
	}
	if h.state != HealthQuarantined {
		t.Fatalf("good observations alone readmitted a quarantined worker: %s score %.3f", h.state, h.score)
	}
	if h.score >= h.p.readmitBelow {
		t.Fatalf("score did not decay while quarantined: %.3f", h.score)
	}

	// Before the probe window: inadmissible. After: exactly one probe.
	if probe, ok := h.admissible(now); probe || ok {
		t.Fatalf("admissible before probeAt = (%v, %v), want (false, false)", probe, ok)
	}
	later := now.Add(h.p.probeAfter + time.Millisecond)
	probe, ok := h.admissible(later)
	if !probe || !ok {
		t.Fatalf("admissible after probeAt = (%v, %v), want (true, true)", probe, ok)
	}
	h.beginProbe()
	if probe, ok := h.admissible(later); probe || ok {
		t.Fatalf("second concurrent probe admitted: (%v, %v)", probe, ok)
	}

	// A timed-out poll releases the slot without judging the probe.
	h.probeAborted(later)
	if probe, ok := h.admissible(later); !probe || !ok {
		t.Fatalf("aborted probe did not release the slot: (%v, %v)", probe, ok)
	}

	// A failed probe re-arms the timer and keeps the quarantine.
	h.beginProbe()
	h.probeResult(false, later)
	if h.state != HealthQuarantined {
		t.Fatalf("failed probe readmitted: %s", h.state)
	}
	if probe, ok := h.admissible(later); probe || ok {
		t.Fatalf("failed probe did not re-arm the timer: (%v, %v)", probe, ok)
	}
	again := later.Add(h.p.probeAfter + time.Millisecond)
	if probe, ok := h.admissible(again); !probe || !ok {
		t.Fatalf("re-armed probe window never opened: (%v, %v)", probe, ok)
	}

	// A successful probe discounts the score and readmits.
	h.beginProbe()
	h.probeResult(true, again)
	if h.state == HealthQuarantined {
		t.Fatalf("successful probe left the worker quarantined (score %.3f)", h.score)
	}
}

// TestHealthProbeSuccessLandsOnProbation: a probe that succeeds with a
// still-elevated score readmits to probation, not straight to healthy.
func TestHealthProbeSuccessLandsOnProbation(t *testing.T) {
	now := time.Now()
	h := newWorkerHealth(testHealthParams(), now)
	h.observe(penExpiry, now)
	h.observe(penExpiry, now) // score 0.64, quarantined

	later := now.Add(h.p.probeAfter + time.Millisecond)
	h.beginProbe()
	h.probeResult(true, later) // 0.64 × 0.3 = 0.192 ≥ readmitBelow
	if h.state != HealthProbation {
		t.Fatalf("probe success from score 0.64 = %s score %.3f, want probation", h.state, h.score)
	}
}

func TestLatRingQuantile(t *testing.T) {
	var r latRing
	if v, n := r.quantile(0.5); v != 0 || n != 0 {
		t.Fatalf("empty ring quantile = (%v, %d), want (0, 0)", v, n)
	}
	for i := 1; i <= 10; i++ {
		r.add(float64(i))
	}
	if v, n := r.quantile(0.5); v != 5 || n != 10 {
		t.Fatalf("median of 1..10 = (%v, %d), want (5, 10)", v, n)
	}
	if v, _ := r.quantile(0.99); v != 9 {
		t.Fatalf("p99 of 1..10 = %v, want 9", v)
	}
	if v, _ := r.quantile(0); v != 1 {
		t.Fatalf("p0 of 1..10 = %v, want 1", v)
	}
	// Overflow wraps: the ring keeps the newest latRingSize samples.
	for i := 0; i < 3*latRingSize; i++ {
		r.add(42)
	}
	if v, n := r.quantile(0.5); v != 42 || n != latRingSize {
		t.Fatalf("wrapped ring = (%v, %d), want (42, %d)", v, n, latRingSize)
	}
}
