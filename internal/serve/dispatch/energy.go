package dispatch

import (
	"repro/internal/arch"
	"repro/internal/cost"
	"repro/internal/runner"
)

// ComputeEnergy models one completed run's energy and cloud cost on the
// given platform: the roofline model predicts runtime from the result's
// measured flop/byte counters by precision width, joules follow as nominal
// power × predicted seconds (the paper's estimate), and dollars price the
// predicted compute plus the checkpoint bytes at the paper's AWS rates.
// Everything derives from the platform profile and the deterministic
// counters — never from the measured wall time — so the same result costed
// on the same profile always prices identically, which is what lets the
// fleetobs smoke assert joules are stable across a re-run from cache.
func ComputeEnergy(spec arch.Spec, res *runner.Result) *runner.Energy {
	w := arch.Workload{
		Counters:   res.Counters,
		Vectorized: true,
		StateBytes: res.StateBytes,
	}
	t := spec.Predict(w)
	var ckpt uint64
	if res.CheckpointBytes > 0 {
		ckpt = uint64(res.CheckpointBytes)
	}
	return &runner.Energy{
		Arch:         spec.Name,
		Watts:        spec.TDPWatts,
		ModelSeconds: t.Seconds(),
		Joules:       spec.Energy(t),
		CostDollars:  cost.AWS2017.JobDollars(t.Seconds(), ckpt),
	}
}
